package powercontainers

import (
	"strings"
	"testing"
	"time"
)

func TestMachinesAndWorkloadsListed(t *testing.T) {
	if len(Machines()) != 3 {
		t.Fatalf("machines = %v", Machines())
	}
	if len(Workloads()) != 6 {
		t.Fatalf("workloads = %v", Workloads())
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem("PDP-11"); err == nil {
		t.Fatal("unknown machine accepted")
	}
	sys, err := NewSystem("SandyBridge", WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if sys.MachineName() != "SandyBridge" || sys.Cores() != 4 {
		t.Fatal("system metadata wrong")
	}
	if _, err := sys.NewRun("FORTRAN", PeakLoad); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunProducesAccounting(t *testing.T) {
	sys, err := NewSystem("SandyBridge", WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.NewRun("Solr", HalfLoad)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := run.Execute(6 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Requests) < 100 {
		t.Fatalf("requests = %d", len(rep.Requests))
	}
	if rep.MeasuredActiveWatts <= 0 || rep.AccountedWatts <= 0 {
		t.Fatal("missing power readings")
	}
	if rep.ValidationError() > 0.30 {
		t.Fatalf("validation error %.1f%% too high", 100*rep.ValidationError())
	}
	for _, q := range rep.Requests[:5] {
		if q.EnergyJoules <= 0 || q.MeanActiveWatts <= 0 || q.Response <= 0 {
			t.Fatalf("degenerate request report %+v", q)
		}
	}
	if !strings.Contains(rep.Summary(), "Solr") {
		t.Fatal("summary missing workload name")
	}
	// A run executes once.
	if _, err := run.Execute(time.Second * 3); err == nil {
		t.Fatal("re-execute accepted")
	}
}

func TestRunTooShortRejected(t *testing.T) {
	sys, _ := NewSystem("SandyBridge")
	run, _ := sys.NewRun("Solr", HalfLoad)
	if _, err := run.Execute(time.Second); err == nil {
		t.Fatal("too-short run accepted")
	}
}

func TestPowerCapThrottlesViruses(t *testing.T) {
	sys, err := NewSystem("SandyBridge", WithSeed(7), WithPowerCap(56),
		WithAttribution(WithRecalibration))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.NewRun("GAE-Vosao", PeakLoad)
	if err != nil {
		t.Fatal(err)
	}
	if err := run.InjectPowerViruses(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := run.Execute(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var virusDuty, normalDuty float64
	var nv, nn int
	for _, q := range rep.Requests {
		if q.Type == "gae/virus" {
			virusDuty += q.DutyRatio
			nv++
		} else {
			normalDuty += q.DutyRatio
			nn++
		}
	}
	if nv == 0 {
		t.Fatal("no viruses completed")
	}
	if virusDuty/float64(nv) > 0.9 {
		t.Fatalf("viruses not throttled: duty %.2f", virusDuty/float64(nv))
	}
	if normalDuty/float64(nn) < 0.97 {
		t.Fatalf("normal requests throttled: duty %.2f", normalDuty/float64(nn))
	}
}

func TestRequestTracing(t *testing.T) {
	sys, err := NewSystem("SandyBridge", WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.NewRun("WeBWorK", HalfLoad)
	if err != nil {
		t.Fatal(err)
	}
	run.EnableRequestTracing()
	rep, err := run.Execute(4 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Requests) == 0 {
		t.Fatal("no requests")
	}
	q := rep.Requests[0]
	if len(q.Stages) < 4 {
		t.Fatalf("stages = %d, want the multi-stage flow", len(q.Stages))
	}
	if len(q.FlowEvents) == 0 {
		t.Fatal("tracing produced no flow events")
	}
}

func TestListAndRunExperiments(t *testing.T) {
	infos := ListExperiments()
	if len(infos) < 10 {
		t.Fatalf("experiments = %d", len(infos))
	}
	out, err := RunExperiment("coeffs", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Cidle") {
		t.Fatal("coeffs output malformed")
	}
	if _, err := RunExperiment("nope", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDeterministicReports(t *testing.T) {
	run := func() float64 {
		sys, err := NewSystem("SandyBridge", WithSeed(11))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.NewRun("RSA-crypto", HalfLoad)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := r.Execute(4 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep.AccountedWatts
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds diverged: %g vs %g", a, b)
	}
}

func TestPerRequestPowerTargets(t *testing.T) {
	sys, err := NewSystem("SandyBridge", WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.NewRun("GAE-Hybrid", HalfLoad)
	if err != nil {
		t.Fatal(err)
	}
	// Throttle only the viruses via a request-level policy; no system cap.
	run.SetRequestPowerTarget("gae/virus", 12)
	rep, err := run.Execute(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var virusDuty, otherDuty float64
	var nv, no int
	for _, q := range rep.Requests {
		if q.Type == "gae/virus" {
			virusDuty += q.DutyRatio
			nv++
		} else {
			otherDuty += q.DutyRatio
			no++
		}
	}
	if nv == 0 || no == 0 {
		t.Fatal("missing request classes")
	}
	if virusDuty/float64(nv) > 0.85 {
		t.Fatalf("targeted viruses not throttled: duty %.2f", virusDuty/float64(nv))
	}
	if otherDuty/float64(no) < 0.99 {
		t.Fatalf("untargeted requests throttled: duty %.2f", otherDuty/float64(no))
	}
}

func TestAnomalyDetectionInReport(t *testing.T) {
	sys, err := NewSystem("SandyBridge", WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.NewRun("GAE-Vosao", HalfLoad)
	if err != nil {
		t.Fatal(err)
	}
	run.EnableAnomalyDetection()
	if err := run.InjectPowerViruses(2, 3*time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := run.Execute(8 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Anomalies) == 0 {
		t.Fatal("no anomalies reported")
	}
	for _, a := range rep.Anomalies {
		if a.RequestType != "gae/virus" {
			t.Fatalf("false positive: %+v", a)
		}
		if a.PowerWatts <= a.BaselineWatts {
			t.Fatalf("anomaly below baseline: %+v", a)
		}
	}
}

func TestPerClientAccounting(t *testing.T) {
	sys, err := NewSystem("SandyBridge", WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	run, err := sys.NewRun("Solr", HalfLoad)
	if err != nil {
		t.Fatal(err)
	}
	run.AssignClients(20)
	rep, err := run.Execute(6 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clients) < 10 {
		t.Fatalf("clients = %d", len(rep.Clients))
	}
	var total float64
	reqs := 0
	for i, u := range rep.Clients {
		if u.Client == "" || u.Requests == 0 || u.EnergyJoules <= 0 {
			t.Fatalf("degenerate client usage %+v", u)
		}
		if i > 0 && u.EnergyJoules > rep.Clients[i-1].EnergyJoules {
			t.Fatal("clients not sorted by energy")
		}
		total += u.EnergyJoules
		reqs += u.Requests
	}
	if reqs != len(rep.Requests) {
		t.Fatalf("client request counts %d != requests %d", reqs, len(rep.Requests))
	}
	// Zipf skew: the top client clearly outweighs the median one.
	if rep.Clients[0].EnergyJoules < 2*rep.Clients[len(rep.Clients)/2].EnergyJoules {
		t.Fatal("expected skewed per-client energy")
	}
	var sum float64
	for _, q := range rep.Requests {
		sum += q.EnergyJoules
	}
	if d := total - sum; d > 1e-9 || d < -1e-9 {
		t.Fatalf("client totals %.4f != request totals %.4f", total, sum)
	}
}
