package powercontainers

import (
	"fmt"
	"time"

	"powercontainers/internal/experiments"
	"powercontainers/internal/runner"
)

// ExperimentInfo describes one reproducible table or figure of the paper's
// evaluation.
type ExperimentInfo struct {
	ID      string
	Title   string
	Aliases []string
}

// ListExperiments enumerates the paper's tables and figures in order.
func ListExperiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Aliases: e.Aliases})
	}
	return out
}

// RunExperiment reproduces one of the paper's tables or figures by id
// (fig1..fig14, table1, coeffs, overhead) and returns its textual
// rendering. Identical seeds reproduce identical results.
func RunExperiment(id string, seed uint64) (string, error) {
	return RunExperimentJobs(id, seed, 0)
}

// RunExperimentJobs is RunExperiment with an explicit worker bound for
// the experiment's internal job plan (0 = GOMAXPROCS). The rendering is
// byte-identical at any jobs value; jobs trades only wall-clock for
// cores. Each call audits (when PC_AUDIT is set) into its own per-run
// collector, so concurrent calls never interleave violation lists.
func RunExperimentJobs(id string, seed uint64, jobs int) (string, error) {
	e, err := experiments.Lookup(id)
	if err != nil {
		return "", err
	}
	r, err := e.Run(experiments.NewRunExec(jobs), seed)
	if err != nil {
		return "", fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	return r.Render(), nil
}

// ExperimentRun is one experiment's outcome in a multi-experiment run.
type ExperimentRun struct {
	// ID is the resolved experiment id (aliases resolve to their owner).
	ID string
	// Output is the experiment's textual rendering.
	Output string
	// Elapsed is the experiment's own wall-clock time; concurrent
	// experiments overlap, so the sum can exceed the batch wall-clock.
	Elapsed time.Duration
}

// RunExperiments reproduces several experiments, fanning distinct
// experiments out across up to jobs workers (0 = GOMAXPROCS) while each
// experiment's internal grid shares the same bound. Results arrive in
// input order regardless of completion order, and every rendering is
// byte-identical to a serial run. Experiments marked Exclusive measure
// real host wall-clock (the §3.5 overhead microbenchmarks) and run one
// at a time after the simulation experiments, so concurrent simulations
// never inflate their timings.
func RunExperiments(ids []string, seed uint64, jobs int) ([]ExperimentRun, error) {
	resolved := make([]experiments.Experiment, len(ids))
	for i, id := range ids {
		e, err := experiments.Lookup(id)
		if err != nil {
			return nil, err
		}
		resolved[i] = e
	}
	runOne := func(e experiments.Experiment) (ExperimentRun, error) {
		//pclint:allow detlint Elapsed is operator-facing wall-clock telemetry, not experiment output
		start := time.Now()
		r, err := e.Run(experiments.NewRunExec(jobs), seed)
		if err != nil {
			return ExperimentRun{}, fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		//pclint:allow detlint Elapsed is operator-facing wall-clock telemetry, not experiment output
		return ExperimentRun{ID: e.ID, Output: r.Render(), Elapsed: time.Since(start)}, nil
	}
	out := make([]ExperimentRun, len(resolved))
	plan := &runner.Plan{}
	var planIdx []int
	for i, e := range resolved {
		if e.Exclusive {
			continue
		}
		planIdx = append(planIdx, i)
		plan.Add("experiment/"+e.ID, func() (any, error) { return runOne(e) })
	}
	cells, err := runner.Collect[ExperimentRun](plan, jobs)
	if err != nil {
		return nil, err
	}
	for k, i := range planIdx {
		out[i] = cells[k]
	}
	for i, e := range resolved {
		if !e.Exclusive {
			continue
		}
		r, err := runOne(e)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
