package powercontainers

import (
	"fmt"

	"powercontainers/internal/experiments"
)

// ExperimentInfo describes one reproducible table or figure of the paper's
// evaluation.
type ExperimentInfo struct {
	ID      string
	Title   string
	Aliases []string
}

// ListExperiments enumerates the paper's tables and figures in order.
func ListExperiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range experiments.Registry() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title, Aliases: e.Aliases})
	}
	return out
}

// RunExperiment reproduces one of the paper's tables or figures by id
// (fig1..fig14, table1, coeffs, overhead) and returns its textual
// rendering. Identical seeds reproduce identical results.
func RunExperiment(id string, seed uint64) (string, error) {
	e, err := experiments.Lookup(id)
	if err != nil {
		return "", err
	}
	r, err := e.Run(seed)
	if err != nil {
		return "", fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	return r.Render(), nil
}
