package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// A ScannedAlloc is one allocation site found in a function body.
type ScannedAlloc struct {
	Pos  token.Pos
	Kind string // see AllocSite.Kind
	Desc string // human description, no position
}

// AllocScan finds the allocation constructs in a function body that the
// hotpath discipline forbids: growing appends, make/new, map, slice and
// pointer composite literals, closures, string concatenation and
// string<->[]byte conversions, fmt calls, and interface boxing of
// non-pointer-shaped values.
//
// An append dominated by a branch fact mentioning both len and cap of its
// destination (`if len(buf) < cap(buf) { buf = append(buf, v) }`) is
// considered non-growing and is not reported: the code proved the
// capacity is already there.
func AllocScan(body *ast.BlockStmt, info *types.Info) []ScannedAlloc {
	var out []ScannedAlloc
	add := func(pos token.Pos, kind, desc string) {
		out = append(out, ScannedAlloc{Pos: pos, Kind: kind, Desc: desc})
	}
	WalkFuncWithFacts(body, func(n ast.Node, facts []Fact) {
		switch e := n.(type) {
		case *ast.CallExpr:
			scanCall(e, facts, info, add)
		case *ast.CompositeLit:
			tv, ok := info.Types[e]
			if !ok {
				return
			}
			switch tv.Type.Underlying().(type) {
			case *types.Map:
				add(e.Pos(), "maplit", "map literal allocates")
			case *types.Slice:
				add(e.Pos(), "slicelit", "slice literal allocates backing array")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					add(e.Pos(), "ptrlit", "&T{...} heap-allocates the struct")
				}
			}
		case *ast.FuncLit:
			add(e.Pos(), "closure", "closure literal allocates")
		case *ast.BinaryExpr:
			if e.Op != token.ADD {
				return
			}
			tv, ok := info.Types[e]
			if !ok || tv.Value != nil {
				return // constant-folded
			}
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				add(e.Pos(), "concat", "string concatenation allocates")
			}
		}
	})
	return out
}

func scanCall(call *ast.CallExpr, facts []Fact, info *types.Info, add func(token.Pos, string, string)) {
	// Builtins.
	if id := calleeIdent(call); id != nil {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				if len(call.Args) > 0 && appendGuarded(facts, call.Args[0]) {
					return
				}
				add(call.Pos(), "append", "append may grow the backing array (prove capacity with a dominating len/cap check, or preallocate)")
			case "make":
				add(call.Pos(), "make", "make allocates")
			case "new":
				add(call.Pos(), "new", "new allocates")
			}
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: free except string <-> []byte/[]rune copies.
		if len(call.Args) == 1 && stringCopyConversion(tv.Type, info.TypeOf(call.Args[0])) {
			add(call.Pos(), "strconv", fmt.Sprintf("conversion to %s copies its data", tv.Type))
		}
		return
	}
	if fn := calleeObject(call, info); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		add(call.Pos(), "fmt", fmt.Sprintf("fmt.%s formats through reflection and boxes its operands", fn.Name()))
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	// Interface boxing of non-pointer-shaped arguments.
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				continue
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if tv, ok := info.Types[arg]; ok && tv.IsNil() {
			continue
		}
		add(arg.Pos(), "box", fmt.Sprintf("%s value boxed into interface parameter", at))
	}
}

// appendGuarded reports whether a dominating fact mentions both len and
// cap of the append destination.
func appendGuarded(facts []Fact, dst ast.Expr) bool {
	dstStr := types.ExprString(ast.Unparen(dst))
	for _, f := range facts {
		var sawLen, sawCap bool
		ast.Inspect(f.Cond, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if types.ExprString(ast.Unparen(call.Args[0])) != dstStr {
				return true
			}
			switch id.Name {
			case "len":
				sawLen = true
			case "cap":
				sawCap = true
			}
			return true
		})
		if sawLen && sawCap {
			return true
		}
	}
	return false
}

// pointerShaped reports whether boxing a value of type t into an
// interface stores the value directly in the interface word (no heap
// allocation): pointers, channels, maps, and funcs.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func stringCopyConversion(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteRuneSlice := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return isStr(to) && isByteRuneSlice(from) || isByteRuneSlice(to) && isStr(from)
}

// calleeIdent returns the identifier a call's Fun resolves through
// (the final selector for methods/qualified names).
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// CalleeFunc resolves a call to the *types.Func it statically invokes,
// or nil for dynamic calls, builtins, and conversions.
func CalleeFunc(call *ast.CallExpr, info *types.Info) *types.Func {
	return calleeObject(call, info)
}

// calleeObject resolves a call to the *types.Func it invokes, if static.
func calleeObject(call *ast.CallExpr, info *types.Info) *types.Func {
	id := calleeIdent(call)
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
