// Package maporder flags direct `for ... range` over maps in the packages
// whose results feed rendering, export, or aggregation, where Go's
// randomized map iteration order would leak into experiment output.
// PR 2 had to hand-fix exactly this in fig6 and cluster3; the analyzer
// makes the rule mechanical. Iterate experiments.SortedKeys(m) (or a
// local collect-and-sort) instead, or annotate //pclint:allow maporder
// when order provably cannot reach any rendering.
package maporder

import (
	"go/ast"
	"go/types"

	"powercontainers/internal/analysis"
)

var (
	scopeExact = []string{"powercontainers"}
	scopeLast  = []string{"experiments", "export", "stats", "stream", "trace", "core", "powerctl"}
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags raw map iteration in rendering/export/aggregation packages; " +
		"iterate sorted keys instead (experiments.SortedKeys)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatch(pass.Pkg.Path(), scopeExact, scopeLast) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			// Test assertions may range maps freely; order-dependent
			// output is what the renderers themselves must avoid.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.Pos(), "iteration over map %s has nondeterministic order; range over sorted keys (experiments.SortedKeys) or annotate //pclint:allow maporder <reason>", types.ExprString(rs.X))
			}
			return true
		})
	}
	return nil
}
