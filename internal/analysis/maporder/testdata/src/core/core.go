// Package core is a maporder fixture named after the real accounting
// core, pinning the scope extension: hierarchy roll-ups feed rendering and
// persistence, so map iteration order must never reach them.
package core

import "sort"

// RollUp leaks map iteration order into an accumulated float sum.
func RollUp(byTenant map[string]float64) float64 {
	var sum float64
	for _, v := range byTenant { // want `iteration over map byTenant has nondeterministic order`
		sum += v
	}
	return sum
}

// RollUpSorted is the sanctioned shape: collect, sort, then fold.
func RollUpSorted(byTenant map[string]float64) float64 {
	names := make([]string, 0, len(byTenant))
	//pclint:allow maporder key collection is sorted before any use
	for name := range byTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum float64
	for _, name := range names {
		sum += byTenant[name]
	}
	return sum
}
