// Package experiments is a maporder fixture named after the real
// experiment harness so it lands in the analyzer's scope.
package experiments

import "sort"

// Render leaks map iteration order straight into its output.
func Render(m map[string]int) []string {
	var out []string
	for k := range m { // want `iteration over map m has nondeterministic order`
		out = append(out, k)
	}
	return out
}

// RenderSorted collects keys under an annotated loop and iterates them
// sorted — the sanctioned shape (the real helper is
// experiments.SortedKeys).
func RenderSorted(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	//pclint:allow maporder key collection is sorted before any use
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Nested flags the inner map range but not the outer slice range.
func Nested(ms []map[string]int) int {
	n := 0
	for _, m := range ms {
		for range m { // want `iteration over map m has nondeterministic order`
			n++
		}
	}
	return n
}
