package experiments

// rangeInTest is in a _test.go file: test assertions may range maps
// freely, so maporder must stay silent here.
func rangeInTest(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
