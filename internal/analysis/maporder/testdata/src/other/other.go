// Package other is outside every maporder scope; raw map iteration is
// fine here.
package other

// Sum may range the map directly.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
