// Package powerctl is a maporder fixture named after the hierarchy CLI,
// pinning the scope extension: everything powerctl prints must be stable
// across invocations, so raw map iteration cannot reach its output.
package powerctl

// ListBudgets leaks map iteration order straight into CLI output lines.
func ListBudgets(budgets map[string]float64) []string {
	var out []string
	for tenant := range budgets { // want `iteration over map budgets has nondeterministic order`
		out = append(out, tenant)
	}
	return out
}
