package maporder_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "experiments")
}

func TestMaporderCoreScope(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "core")
}

func TestMaporderPowerctlScope(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "powerctl")
}

func TestMaporderOutOfScope(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "other")
}
