package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// UnitConfig mirrors the JSON compilation-unit description that `go vet
// -vettool=...` hands to the tool (the unitchecker protocol). Only the
// fields pclint consumes are declared.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // canonical package path → export data file
	VetxOnly                  bool              // analyze only for facts (pclint has none)
	VetxOutput                string            // fact file the build system expects us to write
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by the JSON
// config file, printing diagnostics to stderr. It returns the process
// exit code: 0 clean, 1 diagnostics or analysis errors.
//
// pclint exports no facts, so dependency units (VetxOnly) and packages
// outside the module under analysis are dismissed with an empty fact file.
func RunUnit(configFile string, suite []*Analyzer) int {
	cfg, err := readUnitConfig(configFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	// Always satisfy the build system's fact-file expectation first.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || !inModule(cfg) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, compilerName(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pclint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := RunAnalyzers(fset, files, pkg, info, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	diags = Filter(fset, files, diags, KnownSet(suite))
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

func readUnitConfig(filename string) (*UnitConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// inModule reports whether the unit belongs to the module being vetted
// (as opposed to a standard-library or external dependency).
func inModule(cfg *UnitConfig) bool {
	if cfg.ModulePath == "" {
		return true // be permissive when the build system omits it
	}
	return cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/")
}

func compilerName(cfg *UnitConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
