package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// UnitConfig mirrors the JSON compilation-unit description that `go vet
// -vettool=...` hands to the tool (the unitchecker protocol). Only the
// fields pclint consumes are declared.
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ModulePath                string
	ImportMap                 map[string]string // import path → canonical package path
	PackageFile               map[string]string // canonical package path → export data file
	PackageVetx               map[string]string // canonical package path → dependency fact file
	VetxOnly                  bool              // gather facts only, no diagnostics
	VetxOutput                string            // fact file the build system expects us to write
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by the JSON
// config file, printing diagnostics to stderr. It returns the process
// exit code: 0 clean, 1 diagnostics or analysis errors.
//
// This is the two-pass engine's driver half: for every module unit it
// first gathers the package's fact set (GatherFacts) — reading its
// dependencies' facts from the vetx files the build system recorded in
// PackageVetx — and serializes it to VetxOutput, so dependent units can
// import it. VetxOnly units stop there; full units then run the analyzer
// suite with the assembled FactStore. Packages outside the module export
// an empty fact file and are not analyzed.
func RunUnit(configFile string, suite []*Analyzer) int {
	cfg, err := readUnitConfig(configFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	// Satisfy the build system's fact-file expectation up front; module
	// units overwrite the placeholder with real facts below.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
	}
	if !inModule(cfg) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0 // the compiler will report it
			}
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, compilerName(cfg), func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	tc := &types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			path, ok := cfg.ImportMap[importPath]
			if !ok {
				return nil, fmt.Errorf("can't resolve import %q", importPath)
			}
			return compilerImporter.Import(path)
		}),
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := NewTypesInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "pclint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Pass 1: assemble dependency facts, gather and export this unit's.
	store := NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // missing dep facts degrade gracefully
		}
		pf, err := DecodePackageFacts(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
		store.Add(pf)
	}
	facts, usedSlots, gatherDiags := GatherFacts(fset, files, pkg, info, store)
	store.Add(facts)
	if cfg.VetxOutput != "" {
		data, err := facts.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Pass 2: run the suite against the fact store.
	diags, err := RunAnalyzers(fset, files, pkg, info, store, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pclint: %v\n", err)
		return 1
	}
	diags = append(diags, gatherDiags...)
	// The real driver always runs the whole suite, so every well-formed
	// directive is eligible for staleness.
	diags = FilterStale(fset, files, diags, KnownSet(suite), func(string) bool { return true }, usedSlots)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

func readUnitConfig(filename string) (*UnitConfig, error) {
	data, err := os.ReadFile(filename)
	if err != nil {
		return nil, err
	}
	cfg := new(UnitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("cannot decode JSON config %s: %v", filename, err)
	}
	if len(cfg.GoFiles) == 0 {
		return nil, fmt.Errorf("package has no files: %s", cfg.ImportPath)
	}
	return cfg, nil
}

// inModule reports whether the unit belongs to the module being vetted
// (as opposed to a standard-library or external dependency).
func inModule(cfg *UnitConfig) bool {
	if cfg.ModulePath == "" {
		// Standard-library and GOPATH units arrive without a module
		// path. They must not be analyzed or fact-gathered: a
		// permissive default here once exported seed-parameter facts
		// for strconv.FormatFloat's fmt byte, flagging every caller.
		return false
	}
	return cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/")
}

func compilerName(cfg *UnitConfig) string {
	if cfg.Compiler != "" {
		return cfg.Compiler
	}
	return "gc"
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
