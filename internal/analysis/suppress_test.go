package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

//pclint:allow detlint reason one
var a = 1

var b = 2 //pclint:allow maporder trailing reason // extra comment

//pclint:allow unknownzzz some reason
var c = 3

//pclint:allow detlint
var d = 4

//pclint:allow
var e = 5
`

func parseSuppressSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func knownForTest(name string) bool { return name == "detlint" || name == "maporder" }

func TestDirectivesParsing(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	dirs := Directives(fset, []*ast.File{f}, knownForTest)
	want := []Directive{
		{Line: 3, Analyzer: "detlint", Reason: "reason one"},
		{Line: 6, Analyzer: "maporder", Reason: "trailing reason"},
		{Line: 8, Analyzer: "unknownzzz", Malformed: `unknown analyzer "unknownzzz"`},
		{Line: 11, Analyzer: "detlint", Malformed: "missing reason (want //pclint:allow detlint <reason>)"},
		{Line: 14, Malformed: "missing analyzer name and reason"},
	}
	if len(dirs) != len(want) {
		t.Fatalf("got %d directives, want %d: %+v", len(dirs), len(want), dirs)
	}
	for i, w := range want {
		g := dirs[i]
		if g.Line != w.Line || g.Analyzer != w.Analyzer || g.Reason != w.Reason || g.Malformed != w.Malformed {
			t.Errorf("directive %d = {line %d %q reason %q malformed %q}, want {line %d %q reason %q malformed %q}",
				i, g.Line, g.Analyzer, g.Reason, g.Malformed, w.Line, w.Analyzer, w.Reason, w.Malformed)
		}
	}
}

// posAt returns a position on the given 1-based line of the fixture file.
func posAt(t *testing.T, fset *token.FileSet, f *ast.File, line int) token.Pos {
	t.Helper()
	return fset.File(f.Pos()).LineStart(line)
}

func TestFilterSuppression(t *testing.T) {
	fset, f := parseSuppressSrc(t)
	diags := []Diagnostic{
		// Covered by the own-line directive on line 3.
		{Pos: posAt(t, fset, f, 4), Analyzer: "detlint", Message: "suppressed below directive"},
		// Covered by the trailing directive on the same line.
		{Pos: posAt(t, fset, f, 6), Analyzer: "maporder", Message: "suppressed same line"},
		// Same line as a maporder directive, but a different analyzer.
		{Pos: posAt(t, fset, f, 6), Analyzer: "detlint", Message: "kept: wrong analyzer"},
		// Below a malformed (unknown-analyzer) directive: not suppressed.
		{Pos: posAt(t, fset, f, 9), Analyzer: "detlint", Message: "kept: malformed directive"},
	}
	out := Filter(fset, []*ast.File{f}, diags, knownForTest)

	var kept, malformed []string
	for _, d := range out {
		if d.Analyzer == "pclint" {
			malformed = append(malformed, d.Message)
			continue
		}
		kept = append(kept, d.Message)
	}
	wantKept := []string{"kept: wrong analyzer", "kept: malformed directive"}
	if len(kept) != len(wantKept) {
		t.Fatalf("kept %v, want %v", kept, wantKept)
	}
	for i := range wantKept {
		if kept[i] != wantKept[i] {
			t.Errorf("kept[%d] = %q, want %q", i, kept[i], wantKept[i])
		}
	}
	if len(malformed) != 3 {
		t.Fatalf("got %d malformed-directive diagnostics, want 3: %v", len(malformed), malformed)
	}
	for _, m := range malformed {
		if !strings.HasPrefix(m, "malformed //pclint:allow directive: ") {
			t.Errorf("malformed diagnostic %q lacks the standard prefix", m)
		}
	}
}
