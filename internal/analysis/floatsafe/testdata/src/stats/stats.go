// Package stats is a floatsafe fixture named after the real stats package,
// pinning that the analyzer's scope covers it.
package stats

// Rate divides by an unchecked interval, as the real package's rate
// conversions would without their constructor validation annotations.
func Rate(v, interval float64) float64 {
	return v / interval // want `division by interval with no dominating guard`
}

// ZeroVariance compares a variance bit-for-bit against zero.
func ZeroVariance(sxx float64) bool {
	return sxx == 0 // want `exact float comparison sxx == 0`
}

// SuppressedRate mirrors the real package's annotated conversions.
func SuppressedRate(v, interval float64) float64 {
	//pclint:allow floatsafe interval is validated positive at construction
	return v / interval
}
