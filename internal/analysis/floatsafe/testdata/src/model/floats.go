// Package model is a floatsafe fixture named after the real model package
// so it lands in the analyzer's scope.
package model

// EqualExact compares floats bit-for-bit.
func EqualExact(a, b float64) bool {
	return a == b // want `exact float comparison a == b`
}

// NotEqualExact is the negated form.
func NotEqualExact(a, b float64) bool {
	return a != b // want `exact float comparison a != b`
}

// EqualInts is fine: integers compare exactly.
func EqualInts(a, b int) bool { return a == b }

// DivideUnguarded divides by an unchecked denominator.
func DivideUnguarded(x, y float64) float64 {
	return x / y // want `division by y with no dominating guard`
}

// DivideGuarded checks the denominator before dividing.
func DivideGuarded(x, y float64) float64 {
	if y > 0 {
		return x / y
	}
	return 0
}

// DivideEarlyReturn rejects a bad denominator up front; the negated guard
// dominates the rest of the function.
func DivideEarlyReturn(x, y float64) float64 {
	if y <= 0 {
		return 0
	}
	return x / y
}

// DivideConstant is fine: constant denominators cannot surprise.
func DivideConstant(x float64) float64 { return x / 2 }

// PartialGuard checks only one of the denominator's variables, which does
// not count as a dominating guard of the product.
func PartialGuard(x, y, z float64) float64 {
	if y > 0 {
		return x / (y * z) // want `division by \(y \* z\) with no dominating guard`
	}
	return 0
}

// SuppressedSentinel compares against a documented exact sentinel.
func SuppressedSentinel(w float64) float64 {
	//pclint:allow floatsafe zero is the documented unset sentinel of this weight
	if w == 0 {
		return 1
	}
	return w
}

// SuppressedDivide divides by a quantity positive by construction.
func SuppressedDivide(x float64, n int) float64 {
	//pclint:allow floatsafe n is a non-negative count so the denominator is at least 1
	return x / float64(1+n)
}
