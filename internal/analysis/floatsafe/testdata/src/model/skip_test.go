package model

// exactInTest is in a _test.go file: tests intentionally compare floats
// bit-for-bit to assert determinism, so floatsafe must stay silent here.
func exactInTest(a, b float64) bool { return a == b }
