// Package other is outside every floatsafe scope; exact comparisons and
// unguarded divisions pass here.
package other

// Ratio divides without a guard.
func Ratio(a, b float64) float64 {
	if a == b {
		return 1
	}
	return a / b
}
