// Package core is a floatsafe fixture named after the real accounting
// core, pinning that the scope extension covers it: the facility's metric
// normalizations and the hierarchy's budget arithmetic are float paths.
package core

// Normalize divides counter deltas by an unchecked cycle count, as the
// facility's per-period metrics would without their elapsed-cycles guard.
func Normalize(delta, elapsedCycles float64) float64 {
	return delta / elapsedCycles // want `division by elapsedCycles with no dominating guard`
}

// NormalizeGuarded is the sanctioned shape: the denominator is checked by
// a dominating branch before the division.
func NormalizeGuarded(delta, elapsedCycles float64) float64 {
	if elapsedCycles <= 0 {
		return 0
	}
	return delta / elapsedCycles
}

// OverBudget compares a tenant's draw bit-for-bit against its budget.
func OverBudget(sumW, budgetW float64) bool {
	return sumW != budgetW // want `exact float comparison sumW != budgetW`
}

// SuppressedMean mirrors the real package's annotated running-mean update,
// whose denominator is a freshly incremented sample count.
func SuppressedMean(mean, delta float64, n int) float64 {
	n++
	//pclint:allow floatsafe n was incremented above, so the denominator is at least 1
	return mean + delta/float64(n)
}
