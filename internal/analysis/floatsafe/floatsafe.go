// Package floatsafe enforces the numeric-safety conventions of the model
// fitting and power accounting packages:
//
//   - no exact ==/!= comparison of floating-point values (bitwise float
//     equality is reserved for deliberately exact idioms, which must carry
//     a //pclint:allow floatsafe annotation explaining the exactness), and
//   - no division by a non-constant float denominator unless every
//     variable of the denominator is mentioned by a dominating branch
//     condition (a zero/finite guard), so power and energy quantities
//     cannot silently become NaN or ±Inf and bypass the pipeline's
//     finite-value guards.
package floatsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"powercontainers/internal/analysis"
)

var (
	scopeExact []string
	scopeLast  = []string{"model", "align", "linalg", "power", "stats", "stream", "core"}
)

var Analyzer = &analysis.Analyzer{
	Name: "floatsafe",
	Doc: "flags exact float ==/!= comparisons and unguarded float divisions in " +
		"the numeric packages (model, align, linalg, power, stats, stream, core)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatch(pass.Pkg.Path(), scopeExact, scopeLast) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			// Tests intentionally compare floats bit-for-bit to assert
			// determinism; the production invariants live in non-test code.
			continue
		}
		analysis.WalkWithFacts(file, func(n ast.Node, facts []analysis.Fact) {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return
			}
			switch be.Op {
			case token.EQL, token.NEQ:
				if isFloat(pass.TypesInfo.TypeOf(be.X)) && isFloat(pass.TypesInfo.TypeOf(be.Y)) {
					pass.Reportf(be.Pos(), "exact float comparison %s %s %s; compare with a tolerance, or annotate //pclint:allow floatsafe <why exactness is correct>", types.ExprString(be.X), be.Op, types.ExprString(be.Y))
				}
			case token.QUO:
				if !isFloat(pass.TypesInfo.TypeOf(be)) {
					return
				}
				den := be.Y
				if tv, ok := pass.TypesInfo.Types[den]; ok && tv.Value != nil {
					return // constant denominator
				}
				if guarded(pass, den, facts) {
					return
				}
				pass.Reportf(be.Pos(), "division by %s with no dominating guard on the denominator; check it (!= 0, > 0, isFinite) before dividing, or annotate //pclint:allow floatsafe <reason>", types.ExprString(den))
			}
		})
	}
	return nil
}

// guarded reports whether every variable appearing in the denominator is
// mentioned by some dominating branch condition. A denominator with no
// variables at all (say, a bare function call) can never be guarded by
// mention — hoist it into a local and check that instead.
func guarded(pass *analysis.Pass, den ast.Expr, facts []analysis.Fact) bool {
	vars := denominatorVars(pass, den)
	if len(vars) == 0 {
		return false
	}
	mentioned := analysis.FactIdentNames(facts)
	for v := range vars {
		if !mentioned[v] {
			return false
		}
	}
	return true
}

// denominatorVars collects the names of identifiers in the denominator
// that resolve to variables (locals, params, fields). Constants, package
// names, types, and functions do not need guarding.
func denominatorVars(pass *analysis.Pass, den ast.Expr) map[string]bool {
	vars := make(map[string]bool)
	ast.Inspect(den, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if _, isVar := pass.TypesInfo.Uses[id].(*types.Var); isVar {
			vars[id.Name] = true
		}
		return true
	})
	return vars
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
