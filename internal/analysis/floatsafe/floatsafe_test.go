package floatsafe_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/floatsafe"
)

func TestFloatsafe(t *testing.T) {
	analysistest.Run(t, floatsafe.Analyzer, "model")
}

func TestFloatsafeStatsScope(t *testing.T) {
	analysistest.Run(t, floatsafe.Analyzer, "stats")
}

func TestFloatsafeCoreScope(t *testing.T) {
	analysistest.Run(t, floatsafe.Analyzer, "core")
}

func TestFloatsafeOutOfScope(t *testing.T) {
	analysistest.Run(t, floatsafe.Analyzer, "other")
}
