package analysis

import "testing"

func TestPathMatch(t *testing.T) {
	exact := []string{"powercontainers"}
	last := []string{"experiments", "sim"}
	cases := []struct {
		path string
		want bool
	}{
		{"powercontainers", true},
		{"powercontainers/internal/experiments", true},
		{"powercontainers/internal/experiments [powercontainers/internal/experiments.test]", true},
		{"powercontainers/internal/experiments.test", true},
		{"powercontainers/internal/experiments_test", true},
		{"experiments", true},
		{"powercontainers/internal/model", false},
		{"powercontainers/internal/export", false},
		{"other/experimentsuffix", false},
	}
	for _, c := range cases {
		if got := PathMatch(c.path, exact, last); got != c.want {
			t.Errorf("PathMatch(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestNormalizePkgPath(t *testing.T) {
	cases := [][2]string{
		{"p", "p"},
		{"p [q.test]", "p"},
		{"p.test", "p"},
		{"p_test", "p"},
		{"a/b/c [a/b/c.test]", "a/b/c"},
	}
	for _, c := range cases {
		if got := NormalizePkgPath(c[0]); got != c[1] {
			t.Errorf("NormalizePkgPath(%q) = %q, want %q", c[0], got, c[1])
		}
	}
}
