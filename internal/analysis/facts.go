package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"strings"
)

// FactsVersion guards the serialized fact format. A vetx file written by a
// different pclint build is never read: the go command invalidates vet
// caches whenever the tool binary changes (the -V=full handshake hashes
// the executable), so a version mismatch can only mean a foreign file —
// it is treated as empty.
const FactsVersion = 1

// An AllocSite is one allocation a function performs on some path,
// recorded in its fact summary so that hotalloc can flag calls to
// allocating functions from //pclint:hotpath code across package
// boundaries.
type AllocSite struct {
	// Kind classifies the allocation: append, make, new, maplit,
	// slicelit, ptrlit, closure, concat, strconv, box, fmt, call.
	Kind string
	// What is a short human description including the position
	// (file:line) of the site, or — for Kind "call" — the callee and
	// its representative allocation.
	What string
}

// A FuncFact summarizes one function declaration for cross-package
// (and cross-function) reasoning.
type FuncFact struct {
	// Hotpath records a //pclint:hotpath mark on the declaration.
	Hotpath bool `json:",omitempty"`
	// Allocs holds representative allocation sites (capped; empty means
	// the function was proven allocation-free by the scanner, modulo the
	// scanner's documented approximations). Sites individually waived
	// with //pclint:allow hotalloc <reason> are excluded: the waiver
	// vouches for the whole call chain above them.
	Allocs []AllocSite `json:",omitempty"`
	// SeedParams lists the indices of integer parameters that flow into
	// an RNG seed position (sim.NewRand, runner.SeedFor's base, or a
	// seed parameter of another function). Callers must pass
	// provenance-checked seed expressions there.
	SeedParams []int `json:",omitempty"`
	// SeedSource marks functions whose result is itself a well-derived
	// seed (a return value tracing to runner.SeedFor or a fork of a
	// seed), so their calls satisfy seedflow at the use site.
	SeedSource bool `json:",omitempty"`
	// NilCheckParam is the index of a parameter the function proves
	// non-nil when it returns true (a `return p != nil` predicate
	// helper), or -1. hooklint accepts `if helper(h) { ... }` as a nil
	// guard on h through this fact.
	NilCheckParam int `json:",omitempty"`
}

// PackageFacts is the fact set pclint exports for one package: the
// cross-package half of the two-pass analysis. It is serialized into the
// unitchecker protocol's vetx files and imported by dependent units.
type PackageFacts struct {
	Version int
	// Path is the package's normalized import path.
	Path string
	// Units maps declaration keys (see objKey) to `// unit:` override
	// strings — "none" opts a declaration out of unit inference.
	// Suffix-derived units are not recorded: consumers re-derive them
	// from the declaration names, which travel in export data.
	Units map[string]string `json:",omitempty"`
	// Funcs maps function keys (Name or Recv.Name) to summaries.
	Funcs map[string]FuncFact `json:",omitempty"`
	// SeedConsts names package-level constants and variables registered
	// as experiment seed roots with a //pclint:seed directive.
	SeedConsts map[string]bool `json:",omitempty"`
}

// NewPackageFacts returns an empty fact set for a package path.
func NewPackageFacts(path string) *PackageFacts {
	return &PackageFacts{
		Version:    FactsVersion,
		Path:       NormalizePkgPath(path),
		Units:      map[string]string{},
		Funcs:      map[string]FuncFact{},
		SeedConsts: map[string]bool{},
	}
}

// Encode serializes the facts for a vetx file.
func (f *PackageFacts) Encode() ([]byte, error) { return json.Marshal(f) }

// DecodePackageFacts parses a vetx fact file. Empty data (the fact file of
// a package outside the module) and foreign formats decode to nil facts
// without error.
func DecodePackageFacts(data []byte) (*PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	f := new(PackageFacts)
	if err := json.Unmarshal(data, f); err != nil {
		return nil, nil // foreign vetx format: ignore
	}
	if f.Version != FactsVersion {
		return nil, nil
	}
	return f, nil
}

// A FactStore holds the facts of every package visible to one analysis
// unit: its dependencies' imported facts plus the unit's own, added by the
// gatherer before analyzers run.
type FactStore struct {
	pkgs map[string]*PackageFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{pkgs: map[string]*PackageFacts{}} }

// Add registers a package's facts (nil is ignored).
func (s *FactStore) Add(f *PackageFacts) {
	if f == nil {
		return
	}
	s.pkgs[NormalizePkgPath(f.Path)] = f
}

// Pkg returns the facts for a package path, or nil.
func (s *FactStore) Pkg(path string) *PackageFacts {
	if s == nil {
		return nil
	}
	return s.pkgs[NormalizePkgPath(path)]
}

// FuncFact returns the summary for a function object, if any.
func (s *FactStore) FuncFact(fn *types.Func) (FuncFact, bool) {
	if s == nil || fn == nil || fn.Pkg() == nil {
		return FuncFact{}, false
	}
	pf := s.Pkg(fn.Pkg().Path())
	if pf == nil {
		return FuncFact{}, false
	}
	ff, ok := pf.Funcs[FuncKey(fn)]
	return ff, ok
}

// SeedConst reports whether obj is a registered experiment seed root.
func (s *FactStore) SeedConst(obj types.Object) bool {
	if s == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	pf := s.Pkg(obj.Pkg().Path())
	return pf != nil && pf.SeedConsts[obj.Name()]
}

// UnitOverride resolves a `// unit:` override for a declaration key in a
// package. The second result reports whether an override exists; when it
// does, the bool result of ParseUnit semantics applies: ok=false means
// the declaration is opted out of unit inference ("none").
func (s *FactStore) UnitOverride(pkgPath, key string) (u Unit, isUnit, present bool) {
	if s == nil {
		return Unit{}, false, false
	}
	pf := s.Pkg(pkgPath)
	if pf == nil {
		return Unit{}, false, false
	}
	spec, ok := pf.Units[key]
	if !ok {
		return Unit{}, false, false
	}
	u, isUnit, err := ParseUnit(spec)
	if err != nil {
		return Unit{}, false, false
	}
	return u, isUnit, true
}

// FuncKey returns the stable per-package key for a function or method:
// "Name" for package-level functions, "Recv.Name" for methods (pointer
// receivers and type parameters are stripped).
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	return recvTypeName(sig.Recv().Type()) + "." + fn.Name()
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return "?"
}

// ParamKey and ResultKey address a function's parameters and results in
// the Units override map.
func ParamKey(funcKey string, i int) string  { return fmt.Sprintf("%s#p%d", funcKey, i) }
func ResultKey(funcKey string, i int) string { return fmt.Sprintf("%s#r%d", funcKey, i) }

// FieldKey addresses a struct field by its owner type's name.
func FieldKey(typeName, field string) string { return typeName + "." + field }

// NamedTypeName returns the name of the (possibly pointer-wrapped) named
// type of t, or "".
func NamedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return t.Obj().Name()
	}
	return ""
}

// pkgLastSegment returns the final path segment of a package path, the
// form analyzers use for scope and intrinsic matching.
func pkgLastSegment(path string) string {
	path = NormalizePkgPath(path)
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
