package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// HotpathDirective marks a function declaration whose steady-state body
// (and everything it calls) must stay allocation-free.
const HotpathDirective = "//pclint:hotpath"

// SeedDirective registers a package-level constant or variable as an
// experiment seed root for seedflow provenance.
const SeedDirective = "//pclint:seed"

// unitPrefix introduces a `// unit:` override in a declaration's doc or
// trailing comment.
const unitPrefix = "unit:"

// GatherFacts is pass 1 of the cross-package analysis: it walks one
// type-checked package and computes its exported fact set — unit
// overrides, seed parameters and sources, hotpath marks, allocation
// summaries, and nil-check predicates — consuming the already-computed
// facts of its dependencies from deps.
//
// It returns the facts, the set of suppression-directive slots consumed
// during gathering (a //pclint:allow hotalloc waiver that pruned a site
// from a summary is not stale), and any diagnostics about malformed
// directives encountered while gathering.
func GatherFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *FactStore) (*PackageFacts, map[DirectiveKey]bool, []Diagnostic) {
	facts := NewPackageFacts(pkg.Path())
	used := map[DirectiveKey]bool{}
	var diags []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{Pos: pos, Analyzer: "pclint", Message: fmt.Sprintf(format, args...)})
	}

	gatherMarks(files, info, facts, report)

	// Collect per-function structure.
	waived := hotallocWaivers(fset, files)
	var fns []*funcInfo
	for _, file := range files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{
				decl:    fd,
				obj:     obj,
				key:     FuncKey(obj),
				params:  IntParams(fd, info),
				trusted: LitParams(fd.Body, info),
				defs:    LocalDefs(fd.Body, info),
				returns: ownReturns(fd.Body),
			}
			if hasDirective(fd.Doc, HotpathDirective) {
				fi.hotpath = true
			}
			fi.nilCheck = nilCheckParam(fd, info)
			fi.intResult = singleIntResult(obj)
			// Local allocation sites, minus waived ones.
			for _, a := range AllocScan(fd.Body, info) {
				if slot, ok := waiverSlot(fset, waived, a.Pos); ok {
					used[slot] = true
					continue
				}
				fi.allocs = append(fi.allocs, a)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					fi.calls = append(fi.calls, call)
				}
				return true
			})
			fns = append(fns, fi)
		}
	}

	gatherSeeds(fns, pkg, info, facts, deps)
	gatherAllocSummaries(fset, fns, pkg, info, facts, deps, waived, used)

	for _, fi := range fns {
		ff := facts.Funcs[fi.key]
		ff.Hotpath = fi.hotpath
		ff.NilCheckParam = fi.nilCheck
		facts.Funcs[fi.key] = ff
	}
	// Drop empty summaries to keep vetx files small: a missing entry and
	// an all-zero entry mean the same thing to consumers, except for
	// Allocs, where presence distinguishes "proven clean" from
	// "unknown"; bodies were scanned for every declaration above, so
	// every scanned function keeps its entry.
	return facts, used, diags
}

type funcInfo struct {
	decl      *ast.FuncDecl
	obj       *types.Func
	key       string
	hotpath   bool
	nilCheck  int
	intResult bool
	allocs    []ScannedAlloc
	calls     []*ast.CallExpr
	params    map[types.Object]int
	trusted   map[types.Object]bool
	defs      map[types.Object][]ast.Expr
	returns   []*ast.ReturnStmt
}

// gatherMarks extracts comment-driven facts: `// unit:` overrides on
// consts, vars, struct fields and function results, and //pclint:seed
// registrations.
func gatherMarks(files []*ast.File, info *types.Info, facts *PackageFacts, report func(token.Pos, string, ...any)) {
	checkUnit := func(pos token.Pos, spec string) bool {
		if _, _, err := ParseUnit(spec); err != nil {
			report(pos, "bad // unit: override: %v", err)
			return false
		}
		return true
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if spec, pos, ok := unitLine(d.Doc); ok && checkUnit(pos, spec) {
					obj, _ := info.Defs[d.Name].(*types.Func)
					if obj != nil {
						facts.Units[ResultKey(FuncKey(obj), 0)] = spec
					}
				}
			case *ast.GenDecl:
				for _, s := range d.Specs {
					switch s := s.(type) {
					case *ast.ValueSpec:
						groups := []*ast.CommentGroup{d.Doc, s.Doc, s.Comment}
						var unit string
						var uok bool
						for _, g := range groups {
							if spec, pos, ok := unitLine(g); ok && checkUnit(pos, spec) {
								unit, uok = spec, true
							}
						}
						seed := false
						for _, g := range groups {
							if hasDirective(g, SeedDirective) {
								seed = true
							}
						}
						for _, name := range s.Names {
							if uok {
								facts.Units[name.Name] = unit
							}
							if seed {
								facts.SeedConsts[name.Name] = true
							}
						}
					case *ast.TypeSpec:
						st, ok := s.Type.(*ast.StructType)
						if !ok || st.Fields == nil {
							continue
						}
						for _, f := range st.Fields.List {
							spec, pos, ok := unitLine(f.Doc)
							if !ok {
								spec, pos, ok = unitLine(f.Comment)
							}
							if !ok || !checkUnit(pos, spec) {
								continue
							}
							for _, name := range f.Names {
								facts.Units[FieldKey(s.Name.Name, name.Name)] = spec
							}
						}
					}
				}
			}
		}
	}
}

// seedPrimitiveLast names the packages (by import-path last segment) that
// implement the RNG primitives and therefore export no seed facts; it must
// stay in sync with seedflow's own scope exclusion.
var seedPrimitiveLast = []string{"sim", "runner"}

// gatherSeeds runs the intra-package fixpoint that discovers seed
// parameters (integer parameters flowing into an RNG seed position) and
// seed sources (functions returning a well-derived seed).
func gatherSeeds(fns []*funcInfo, pkg *types.Package, info *types.Info, facts *PackageFacts, deps *FactStore) {
	// The RNG primitives themselves are exempt: inside sim and runner,
	// integer parameters (Fork labels, stream indices) are generator
	// implementation details, not caller-side seed obligations. The
	// blessed entry points (sim.NewRand, runner.SeedFor, Rand methods)
	// are recognized intrinsically and need no exported facts.
	if PathMatch(pkg.Path(), nil, seedPrimitiveLast) {
		return
	}
	seedParams := map[string]map[int]bool{}
	seedSource := map[string]bool{}
	lookup := func(fn *types.Func) (FuncFact, bool) {
		if fn.Pkg() == pkg {
			key := FuncKey(fn)
			sp := seedParams[key]
			if len(sp) == 0 && !seedSource[key] {
				return FuncFact{}, false
			}
			return FuncFact{SeedParams: sortedInts(sp), SeedSource: seedSource[key]}, true
		}
		return deps.FuncFact(fn)
	}
	isSeedConst := func(obj types.Object) bool {
		if obj.Pkg() == pkg && facts.SeedConsts[obj.Name()] {
			return true
		}
		return deps.SeedConst(obj)
	}
	mark := func(key string, used map[int]bool, changed *bool) {
		for p := range used {
			if seedParams[key] == nil {
				seedParams[key] = map[int]bool{}
			}
			if !seedParams[key][p] {
				seedParams[key][p] = true
				*changed = true
			}
		}
	}
	for changed, rounds := true, 0; changed && rounds < len(fns)+2; rounds++ {
		changed = false
		for _, fi := range fns {
			ev := &SeedEval{Info: info, Lookup: lookup, IsSeedConst: isSeedConst, Params: fi.params, Trusted: fi.trusted, Defs: fi.defs}
			for _, call := range fi.calls {
				for _, idx := range SeedArgPositions(call, info, lookup) {
					if idx >= len(call.Args) {
						continue
					}
					u := map[int]bool{}
					if ev.IsSeed(call.Args[idx], u) {
						mark(fi.key, u, &changed)
					}
				}
			}
			if fi.intResult && len(fi.returns) > 0 && !seedSource[fi.key] {
				// A function is a seed source only if every return is a
				// seed AND each derivation is grounded in a concrete root
				// (SeedFor, a Rand draw, a registered constant, a seed
				// field, or another seed source). Without the grounding
				// requirement every integer passthrough — ChipOf(core) —
				// would be promoted to a source and drag its parameter
				// into the obligation graph.
				ok := true
				u := map[int]bool{}
				for _, r := range fi.returns {
					if len(r.Results) != 1 {
						ok = false
						break
					}
					isSeed, grounded := ev.IsSeedGrounded(r.Results[0], u)
					if !isSeed || !grounded {
						ok = false
						break
					}
				}
				if ok {
					seedSource[fi.key] = true
					changed = true
					mark(fi.key, u, &changed)
				}
			}
		}
	}
	for _, fi := range fns {
		if len(seedParams[fi.key]) == 0 && !seedSource[fi.key] {
			continue
		}
		ff := facts.Funcs[fi.key]
		ff.SeedParams = sortedInts(seedParams[fi.key])
		ff.SeedSource = seedSource[fi.key]
		facts.Funcs[fi.key] = ff
	}
}

// SeedArgPositions returns the argument indices of call that must hold
// provenance-correct seeds: position 0 of sim.NewRand and runner.SeedFor,
// plus any parameter the callee's fact summary marks as a seed parameter.
func SeedArgPositions(call *ast.CallExpr, info *types.Info, lookup func(*types.Func) (FuncFact, bool)) []int {
	if IsNewRandCall(call, info) || IsSeedForCall(call, info) {
		return []int{0}
	}
	fn := calleeObject(call, info)
	if fn == nil || lookup == nil {
		return nil
	}
	if ff, ok := lookup(fn); ok && len(ff.SeedParams) > 0 {
		return ff.SeedParams
	}
	return nil
}

// gatherAllocSummaries propagates "allocates" through the intra-package
// call graph (dependency packages' summaries are already transitive) and
// records each function's representative allocation sites.
func gatherAllocSummaries(fset *token.FileSet, fns []*funcInfo, pkg *types.Package, info *types.Info, facts *PackageFacts, deps *FactStore, waived map[DirectiveKey]bool, used map[DirectiveKey]bool) {
	const maxSites = 8
	local := map[string]*funcInfo{}
	for _, fi := range fns {
		local[fi.key] = fi
	}
	// calleeAllocs reports whether a static callee allocates, with a
	// representative description.
	calleeAllocs := func(caller *funcInfo, fn *types.Func, allocating map[string]bool) (string, bool) {
		if fn.Pkg() == pkg {
			key := FuncKey(fn)
			if key == caller.key {
				return "", false // self-recursion
			}
			if g, ok := local[key]; ok && allocating[key] {
				if len(g.allocs) > 0 {
					return g.allocs[0].Desc, true
				}
				return "transitively allocates", true
			}
			return "", false
		}
		if ff, ok := deps.FuncFact(fn); ok && len(ff.Allocs) > 0 {
			return ff.Allocs[0].What, true
		}
		return "", false
	}
	allocating := map[string]bool{}
	for _, fi := range fns {
		allocating[fi.key] = len(fi.allocs) > 0
	}
	for changed, rounds := true, 0; changed && rounds < len(fns)+2; rounds++ {
		changed = false
		for _, fi := range fns {
			if allocating[fi.key] {
				continue
			}
			for _, call := range fi.calls {
				fn := calleeObject(call, info)
				if fn == nil {
					continue
				}
				if _, ok := waiverSlot(fset, waived, call.Pos()); ok {
					continue
				}
				if _, allocs := calleeAllocs(fi, fn, allocating); allocs {
					allocating[fi.key] = true
					changed = true
					break
				}
			}
		}
	}
	for _, fi := range fns {
		var sites []AllocSite
		for _, a := range fi.allocs {
			if len(sites) >= maxSites {
				break
			}
			sites = append(sites, AllocSite{Kind: a.Kind, What: fmt.Sprintf("%s at %s", a.Desc, shortPos(fset, a.Pos))})
		}
		seen := map[string]bool{}
		for _, call := range fi.calls {
			if len(sites) >= maxSites {
				break
			}
			fn := calleeObject(call, info)
			if fn == nil || seen[fn.FullName()] {
				continue
			}
			if slot, ok := waiverSlot(fset, waived, call.Pos()); ok {
				if desc, allocs := calleeAllocs(fi, fn, allocating); allocs {
					_ = desc
					used[slot] = true
				}
				continue
			}
			if desc, allocs := calleeAllocs(fi, fn, allocating); allocs {
				seen[fn.FullName()] = true
				sites = append(sites, AllocSite{Kind: "call", What: fmt.Sprintf("calls %s at %s: %s", fn.Name(), shortPos(fset, call.Pos()), desc)})
			}
		}
		if len(sites) == 0 {
			continue
		}
		ff := facts.Funcs[fi.key]
		ff.Allocs = sites
		facts.Funcs[fi.key] = ff
	}
}

// hotallocWaivers collects the line slots covered by well-formed
// `//pclint:allow hotalloc <reason>` directives; they prune allocation
// sites from fact summaries as well as suppressing diagnostics.
func hotallocWaivers(fset *token.FileSet, files []*ast.File) map[DirectiveKey]bool {
	out := map[DirectiveKey]bool{}
	for _, d := range Directives(fset, files, func(n string) bool { return n == "hotalloc" }) {
		if d.Malformed != "" || d.Analyzer != "hotalloc" {
			continue
		}
		out[DirectiveKey{d.File, d.Line, "hotalloc"}] = true
		out[DirectiveKey{d.File, d.Line + 1, "hotalloc"}] = true
	}
	return out
}

func waiverSlot(fset *token.FileSet, waived map[DirectiveKey]bool, pos token.Pos) (DirectiveKey, bool) {
	posn := fset.Position(pos)
	k := DirectiveKey{posn.Filename, posn.Line, "hotalloc"}
	if waived[k] {
		return k, true
	}
	return DirectiveKey{}, false
}

// nilCheckParam recognizes the `func f(..., p T, ...) bool { return p != nil }`
// predicate shape and returns p's index, or -1.
func nilCheckParam(fd *ast.FuncDecl, info *types.Info) int {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return -1
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return -1
	}
	be, ok := ast.Unparen(ret.Results[0]).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return -1
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	var target ast.Expr
	switch {
	case isNilIdent(y):
		target = x
	case isNilIdent(x):
		target = y
	default:
		return -1
	}
	id, ok := target.(*ast.Ident)
	if !ok {
		return -1
	}
	obj := info.Uses[id]
	if obj == nil || fd.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if info.Defs[name] == obj {
				return i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return -1
}

func singleIntResult(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	return isIntegerType(sig.Results().At(0).Type())
}

// ownReturns collects the return statements belonging to the function
// itself, not to nested function literals.
func ownReturns(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	})
	return out
}

// hasDirective reports whether a comment group contains a line starting
// with the directive.
func hasDirective(g *ast.CommentGroup, directive string) bool {
	if g == nil {
		return false
	}
	for _, c := range g.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// unitLine extracts the payload of the first `// unit: <spec>` line in a
// comment group.
func unitLine(g *ast.CommentGroup) (string, token.Pos, bool) {
	if g == nil {
		return "", token.NoPos, false
	}
	for _, c := range g.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(text, unitPrefix) {
			continue
		}
		spec := text[len(unitPrefix):]
		// Tolerate a trailing comment on the override line.
		if i := strings.Index(spec, "//"); i >= 0 {
			spec = spec[:i]
		}
		return strings.TrimSpace(spec), c.Pos(), true
	}
	return "", token.NoPos, false
}

func sortedInts(set map[int]bool) []int {
	if len(set) == 0 {
		return nil
	}
	out := make([]int, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	posn := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
}
