package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// A Fact is one branch condition known to hold at a program point. If
// Negated is false the condition itself holds (we are inside the taken
// branch); if Negated is true its negation holds (we are past an early
// return, or inside an else branch).
type Fact struct {
	Cond    ast.Expr
	Negated bool
}

// WalkWithFacts traverses every function body in the file and calls visit
// for each expression node together with the branch facts in scope at that
// point. The tracking is a deliberately simple lexical approximation of
// dominance — sound enough for lint, with //pclint:allow as the escape
// hatch — covering:
//
//   - if bodies and else branches (including `if init; cond` forms),
//   - short-circuit && and || operands,
//   - the remainder of a block after `if bad { return/continue/... }`,
//   - the remainder of a block after `if bad { x = ... }` (a repair
//     branch that reassigns a variable mentioned in the condition),
//   - for-loop conditions inside the loop body.
//
// Facts are not invalidated by later reassignment, and function literals
// inherit the facts of their creation site.
func WalkWithFacts(file *ast.File, visit func(n ast.Node, facts []Fact)) {
	w := &factWalker{visit: visit}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				w.facts = w.facts[:0]
				w.stmt(d.Body)
			}
		case *ast.GenDecl:
			// Package-level var initializers.
			w.facts = w.facts[:0]
			for _, spec := range d.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// WalkFuncWithFacts traverses a single function body with branch-fact
// tracking, for callers (the fact gatherer, hotalloc) that reason about
// one declaration at a time rather than a whole file.
func WalkFuncWithFacts(body *ast.BlockStmt, visit func(n ast.Node, facts []Fact)) {
	if body == nil {
		return
	}
	w := &factWalker{visit: visit}
	w.stmt(body)
}

type factWalker struct {
	visit func(ast.Node, []Fact)
	facts []Fact
}

func (w *factWalker) push(f Fact) int {
	w.facts = append(w.facts, f)
	return len(w.facts) - 1
}

func (w *factWalker) truncate(n int) { w.facts = w.facts[:n] }

func (w *factWalker) stmtList(list []ast.Stmt) {
	mark := len(w.facts)
	for _, s := range list {
		w.stmt(s)
		// An `if bad { ... }` whose body cannot fall through — or which
		// repairs a variable named in the condition — establishes the
		// negation of the condition for the rest of this block.
		if ifs, ok := s.(*ast.IfStmt); ok && ifs.Cond != nil {
			if terminates(ifs.Body) || reassignsCondVar(ifs.Body, ifs.Cond) {
				w.push(Fact{Cond: ifs.Cond, Negated: true})
			}
		}
	}
	w.truncate(mark)
}

func (w *factWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmtList(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		mark := w.push(Fact{Cond: s.Cond})
		w.stmt(s.Body)
		w.truncate(mark)
		if s.Else != nil {
			mark := w.push(Fact{Cond: s.Cond, Negated: true})
			w.stmt(s.Else)
			w.truncate(mark)
		}
	case *ast.ForStmt:
		w.stmt(s.Init)
		mark := len(w.facts)
		if s.Cond != nil {
			w.expr(s.Cond)
			w.push(Fact{Cond: s.Cond})
		}
		w.stmt(s.Post)
		w.stmt(s.Body)
		w.truncate(mark)
	case *ast.RangeStmt:
		w.expr(s.Key)
		w.expr(s.Value)
		w.expr(s.X)
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmtList(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmtList(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (w *factWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	w.visit(e, w.facts)
	switch e := e.(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			w.expr(e.X)
			mark := w.push(Fact{Cond: e.X})
			w.expr(e.Y)
			w.truncate(mark)
		case token.LOR:
			w.expr(e.X)
			mark := w.push(Fact{Cond: e.X, Negated: true})
			w.expr(e.Y)
			w.truncate(mark)
		default:
			w.expr(e.X)
			w.expr(e.Y)
		}
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.CallExpr:
		w.expr(e.Fun)
		for _, a := range e.Args {
			w.expr(a)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	case *ast.FuncLit:
		// The literal body runs later; treating creation-site facts as
		// still valid is the documented approximation.
		w.stmt(e.Body)
	}
}

// terminates reports whether the block cannot fall through: its last
// statement is a return, branch, panic, os.Exit, log.Fatal*, or
// (testing.TB).Fatal*/Skip* call.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "panic"
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Exit", "Fatal", "Fatalf", "Fatalln", "Skip", "Skipf", "SkipNow", "Goexit":
				return true
			}
		}
	}
	return false
}

// reassignsCondVar reports whether the block assigns to an identifier that
// appears in cond — the `if x == 0 { x = 1 }` repair idiom.
func reassignsCondVar(b *ast.BlockStmt, cond ast.Expr) bool {
	names := map[string]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			names[id.Name] = true
		}
		return true
	})
	if len(names) == 0 {
		return false
	}
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && names[id.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// NilGuarded reports whether the facts establish that the expression whose
// printed form is exprStr is non-nil: a positive conjunct `expr != nil`,
// or the negation of a disjunct `expr == nil`.
func NilGuarded(facts []Fact, exprStr string) bool {
	return NilGuardedBy(facts, exprStr, nil)
}

// NilGuardedBy is NilGuarded extended with nil-check predicate helpers:
// when proves is non-nil, a positive fact `helper(..., expr, ...)` also
// establishes expr non-nil if proves(call) returns the argument index the
// helper vouches for (the helper's NilCheckParam fact). This lets a guard
// routed through `if hookOK(h) { h.Emit(...) }` count, across packages.
func NilGuardedBy(facts []Fact, exprStr string, proves func(call *ast.CallExpr) (int, bool)) bool {
	for _, f := range facts {
		if factEstablishesNonNil(f.Cond, f.Negated, exprStr, proves) {
			return true
		}
	}
	return false
}

func factEstablishesNonNil(cond ast.Expr, negated bool, exprStr string, proves func(*ast.CallExpr) (int, bool)) bool {
	cond = ast.Unparen(cond)
	if ue, ok := cond.(*ast.UnaryExpr); ok && ue.Op == token.NOT {
		return factEstablishesNonNil(ue.X, !negated, exprStr, proves)
	}
	if call, ok := cond.(*ast.CallExpr); ok && !negated && proves != nil {
		if i, ok := proves(call); ok && i >= 0 && i < len(call.Args) {
			return types.ExprString(ast.Unparen(call.Args[i])) == exprStr
		}
		return false
	}
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if !negated && be.Op == token.LAND {
		return factEstablishesNonNil(be.X, false, exprStr, proves) || factEstablishesNonNil(be.Y, false, exprStr, proves)
	}
	if negated && be.Op == token.LOR {
		return factEstablishesNonNil(be.X, true, exprStr, proves) || factEstablishesNonNil(be.Y, true, exprStr, proves)
	}
	want := token.NEQ
	if negated {
		want = token.EQL
	}
	if be.Op != want {
		return false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	return (isNilIdent(y) && types.ExprString(x) == exprStr) ||
		(isNilIdent(x) && types.ExprString(y) == exprStr)
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// FactIdentNames returns the set of identifier names appearing anywhere
// in the facts' conditions. It is the generous "the code thought about
// this value" test used by floatsafe: a dominating branch that mentions
// every variable of a denominator — whatever the exact comparison shape —
// counts as a guard on it.
func FactIdentNames(facts []Fact) map[string]bool {
	names := make(map[string]bool)
	for _, f := range facts {
		ast.Inspect(f.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				names[id.Name] = true
			}
			return true
		})
	}
	return names
}
