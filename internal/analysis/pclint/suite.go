// Package pclint assembles the repo's analyzer suite. cmd/pclint and the
// analysistest harness both consume it, so the set of analyzer names that
// //pclint:allow directives may reference is defined in exactly one place.
package pclint

import (
	"powercontainers/internal/analysis"
	"powercontainers/internal/analysis/detlint"
	"powercontainers/internal/analysis/floatsafe"
	"powercontainers/internal/analysis/hooklint"
	"powercontainers/internal/analysis/hotalloc"
	"powercontainers/internal/analysis/maporder"
	"powercontainers/internal/analysis/seedflow"
	"powercontainers/internal/analysis/unitsafe"
)

// Suite returns the full pclint analyzer suite in reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detlint.Analyzer,
		maporder.Analyzer,
		hooklint.Analyzer,
		floatsafe.Analyzer,
		unitsafe.Analyzer,
		seedflow.Analyzer,
		hotalloc.Analyzer,
	}
}
