package analysis

import (
	"reflect"
	"testing"
)

func TestPackageFactsRoundTrip(t *testing.T) {
	f := NewPackageFacts("powercontainers/internal/power")
	f.Units["BudgetW"] = "W"
	f.Units[ResultKey("Drain", 0)] = "J"
	f.Units[FieldKey("Reading", "Level")] = "none"
	f.Funcs["Drain"] = FuncFact{Allocs: []AllocSite{{Kind: "make", What: "make allocates at power.go:10"}}, NilCheckParam: -1}
	f.Funcs["SeedOf"] = FuncFact{SeedParams: []int{0}, SeedSource: true, NilCheckParam: -1}
	f.Funcs["Ring.Push"] = FuncFact{Hotpath: true, NilCheckParam: 0}
	f.SeedConsts["BaseSeed"] = true

	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePackageFacts(data)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("round trip decoded to nil")
	}
	if !reflect.DeepEqual(f, got) {
		t.Errorf("round trip mismatch:\n  in:  %+v\n  out: %+v", f, got)
	}
}

func TestDecodePackageFactsForeign(t *testing.T) {
	for _, data := range [][]byte{nil, {}, []byte("not json"), []byte(`{"Version": 99, "Path": "x"}`)} {
		got, err := DecodePackageFacts(data)
		if err != nil || got != nil {
			t.Errorf("DecodePackageFacts(%q) = %v, %v; want nil, nil", data, got, err)
		}
	}
}

func TestFactStoreNormalizesTestVariants(t *testing.T) {
	s := NewFactStore()
	f := NewPackageFacts("powercontainers/internal/power")
	f.SeedConsts["BaseSeed"] = true
	s.Add(f)
	if s.Pkg("powercontainers/internal/power [powercontainers/internal/power.test]") == nil {
		t.Error("test-variant path did not resolve to the package's facts")
	}
	if s.Pkg("powercontainers/internal/power.test") == nil {
		t.Error(".test path did not resolve")
	}
	if s.Pkg("powercontainers/internal/other") != nil {
		t.Error("unrelated path resolved")
	}
}
