// Package hooklint enforces the PR 1 audit-seam convention: every call
// through a nil-able hook interface (AuditSink, AuditHook, Probe) must
// be dominated by a nil check on the receiver, so that running without
// auditing costs a single predictable branch and never panics.
package hooklint

import (
	"go/ast"
	"go/types"

	"powercontainers/internal/analysis"
)

// hookInterfaceNames are the named interface types that constitute the
// nil-checked hook seams.
var hookInterfaceNames = map[string]bool{
	"AuditSink": true,
	"AuditHook": true,
	// Probe is the sim engine's per-dispatch observation seam (PR 9): it
	// fires on every event dispatch, so an unguarded call would both
	// panic without a probe installed and defeat the zero-cost default.
	"Probe": true,
}

// scopeExcludedLast exempts the audit package itself: it is the home of
// the hook implementations, where collectors fan out over auditors that
// are non-nil by construction.
var scopeExcludedLast = []string{"audit"}

var Analyzer = &analysis.Analyzer{
	Name: "hooklint",
	Doc: "flags calls through AuditSink/AuditHook/Probe hook interfaces that are " +
		"not guarded by a `hook != nil` check on the receiver",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathMatch(pass.Pkg.Path(), nil, scopeExcludedLast) {
		return nil
	}
	// A guard may be routed through a predicate helper — `if hookOK(h) {
	// h.Emit(...) }` — in this package or another: the helper's
	// NilCheckParam fact says which argument it proves non-nil.
	proves := func(call *ast.CallExpr) (int, bool) {
		fn := analysis.CalleeFunc(call, pass.TypesInfo)
		if fn == nil {
			return 0, false
		}
		ff, ok := pass.Facts.FuncFact(fn)
		if !ok || ff.NilCheckParam < 0 {
			return 0, false
		}
		return ff.NilCheckParam, true
	}
	for _, file := range pass.Files {
		analysis.WalkWithFacts(file, func(n ast.Node, facts []analysis.Fact) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return
			}
			recvType := pass.TypesInfo.TypeOf(sel.X)
			name, isHook := hookInterface(recvType)
			if !isHook {
				return
			}
			recv := types.ExprString(sel.X)
			if !analysis.NilGuardedBy(facts, recv, proves) {
				pass.Reportf(call.Pos(), "call to %s.%s through hook interface %s without a dominating `%s != nil` check (audit seams are nil-checked by convention)", recv, sel.Sel.Name, name, recv)
			}
		})
	}
	return nil
}

// hookInterface reports whether t is (a pointer to) a named interface
// type whose name marks it as a hook seam.
func hookInterface(t types.Type) (string, bool) {
	if t == nil {
		return "", false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if _, isIface := n.Underlying().(*types.Interface); !isIface {
		return "", false
	}
	name := n.Obj().Name()
	return name, hookInterfaceNames[name]
}
