package hooklint_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/hooklint"
)

func TestHooklint(t *testing.T) {
	analysistest.Run(t, hooklint.Analyzer, "server")
}

func TestHooklintFaultsSeam(t *testing.T) {
	analysistest.Run(t, hooklint.Analyzer, "faults")
}

func TestHooklintAuditPackageExempt(t *testing.T) {
	analysistest.Run(t, hooklint.Analyzer, "audit")
}

func TestHooklintPredicateHelperFacts(t *testing.T) {
	analysistest.Run(t, hooklint.Analyzer, "server2")
}

func TestHooklintSimProbeSeam(t *testing.T) {
	analysistest.Run(t, hooklint.Analyzer, "sim")
}
