// Package hookutil exports a hook seam interface and a nil-check
// predicate helper; the helper's NilCheckParam fact lets guards routed
// through it count across package boundaries.
package hookutil

// AuditHook is the hook seam interface.
type AuditHook interface {
	Emit(kind string)
}

// Enabled reports whether the hook is live.
func Enabled(h AuditHook) bool { return h != nil }

// Misleading is NOT a nil-check predicate: it must not vouch.
func Misleading(h AuditHook) bool { return h == nil }
