// Package server is a hooklint fixture exercising the audit-seam
// convention on a locally declared hook interface.
package server

// AuditSink is the hook seam; hooklint keys on the interface name.
type AuditSink interface {
	Event(kind string)
}

// Ledger carries an optional audit hook, nil when auditing is off.
type Ledger struct {
	Audit AuditSink
}

// Unguarded calls the hook without any nil check.
func (l *Ledger) Unguarded() {
	l.Audit.Event("unguarded") // want `call to l\.Audit\.Event through hook interface AuditSink`
}

// Guarded uses the canonical seam shape.
func (l *Ledger) Guarded() {
	if l.Audit != nil {
		l.Audit.Event("guarded")
	}
}

// EarlyReturn guards with a negated check that exits the function.
func (l *Ledger) EarlyReturn() {
	if l.Audit == nil {
		return
	}
	l.Audit.Event("early-return")
}

// AndChain guards inside a short-circuit conjunction.
func (l *Ledger) AndChain(ok bool) {
	if l.Audit != nil && ok {
		l.Audit.Event("and-chain")
	}
}

// WrongBranch calls the hook inside the nil branch: the check exists but
// does not establish non-nilness, so the call must still be flagged.
func (l *Ledger) WrongBranch() {
	if l.Audit == nil {
		l.Audit.Event("wrong-branch") // want `without a dominating`
	}
}

// Closure inherits the guard established at its creation site.
func (l *Ledger) Closure() func() {
	if l.Audit == nil {
		return func() {}
	}
	return func() { l.Audit.Event("closure") }
}

// hookOK is a local nil-check predicate; its NilCheckParam fact lets the
// guard below count.
func hookOK(s AuditSink) bool { return s != nil }

// PredicateGuard routes the nil check through the helper.
func (l *Ledger) PredicateGuard() {
	if hookOK(l.Audit) {
		l.Audit.Event("predicate")
	}
}

// Suppressed vouches for a receiver that is non-nil by construction.
func (l *Ledger) Suppressed() {
	l.Audit.Event("suppressed") //pclint:allow hooklint fixture receiver is assigned in the constructor and never nil
}
