// Package audit mirrors the real audit package, which hooklint exempts:
// it is the home of the hook implementations, where collectors fan out
// over auditors that are non-nil by construction.
package audit

// AuditSink is the hook seam interface.
type AuditSink interface {
	Event(kind string)
}

// Collector fans out to a sink it constructed itself.
type Collector struct {
	Sink AuditSink
}

// Emit is unguarded, but the package is out of hooklint's scope.
func (c *Collector) Emit() { c.Sink.Event("emit") }
