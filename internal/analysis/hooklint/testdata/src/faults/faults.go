// Package faults is a hooklint fixture mirroring the fault-injection
// subsystem's audit seam: fault emission sites report through an optional
// AuditSink and must guard it like every other hook.
package faults

// Event is one injected fault.
type Event struct {
	Site, Kind string
}

// AuditSink observes injected faults; nil disables observation.
type AuditSink interface {
	OnFault(e Event)
}

// Plan carries the optional fault audit hook.
type Plan struct {
	Audit AuditSink
}

// emitUnguarded reports a fault without the nil guard.
func (p *Plan) emitUnguarded(e Event) {
	p.Audit.OnFault(e) // want `call to p\.Audit\.OnFault through hook interface AuditSink`
}

// emit is the canonical guarded emission seam.
func (p *Plan) emit(e Event) {
	if p.Audit != nil {
		p.Audit.OnFault(e)
	}
}
