// Package server2 exercises hooklint's fact-based predicate helpers:
// a guard routed through hookutil.Enabled counts as a nil check because
// the helper's NilCheckParam fact crosses the package boundary.
package server2

import "hookutil"

// Probe carries an optional hook.
type Probe struct {
	Hook hookutil.AuditHook
}

// Fire guards through the imported predicate helper.
func (p *Probe) Fire() {
	if hookutil.Enabled(p.Hook) {
		p.Hook.Emit("fire") // ok: Enabled's fact vouches for p.Hook
	}
	p.Hook.Emit("bare") // want `call to p\.Hook\.Emit through hook interface AuditHook`
}

// Mislead guards through a predicate that checks the wrong way around.
func (p *Probe) Mislead() {
	if hookutil.Misleading(p.Hook) {
		p.Hook.Emit("mislead") // want `without a dominating`
	}
}

// WrongArg guards a different value than the one called through.
func (p *Probe) WrongArg(q *Probe) {
	if hookutil.Enabled(q.Hook) {
		p.Hook.Emit("wrong-arg") // want `without a dominating`
	}
}
