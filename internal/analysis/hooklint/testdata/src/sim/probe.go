// Package sim is a hooklint fixture for the engine's Probe seam: the
// per-dispatch observation hook fires on every event, so unguarded
// calls are both a panic hazard and a hot-path cost.
package sim

// Probe observes every event dispatch; hooklint keys on the name.
type Probe interface {
	OnStep(now, at int64, seq uint64)
}

// Engine carries an optional probe, nil when observation is off.
type Engine struct {
	probe Probe
	now   int64
}

// StepUnguarded dispatches without checking the probe.
func (e *Engine) StepUnguarded(at int64, seq uint64) {
	e.probe.OnStep(e.now, at, seq) // want `call to e\.probe\.OnStep through hook interface Probe`
}

// Step uses the canonical seam shape from internal/sim.Engine.Step.
func (e *Engine) Step(at int64, seq uint64) {
	if e.probe != nil {
		e.probe.OnStep(e.now, at, seq)
	}
}

// Drain guards once with an early return and dispatches in a loop.
func (e *Engine) Drain(n int, seq uint64) {
	if e.probe == nil {
		return
	}
	for i := 0; i < n; i++ {
		e.probe.OnStep(e.now, int64(i), seq)
	}
}

// WrongBranch calls inside the nil branch: the check exists but does
// not establish non-nilness.
func (e *Engine) WrongBranch(at int64, seq uint64) {
	if e.probe == nil {
		e.probe.OnStep(e.now, at, seq) // want `without a dominating`
	}
}
