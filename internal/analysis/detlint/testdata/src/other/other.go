// Package other is outside every detlint scope; nothing here may be
// flagged.
package other

import "time"

// WallClock may read the wall clock freely outside the deterministic
// packages.
func WallClock() time.Time { return time.Now() }
