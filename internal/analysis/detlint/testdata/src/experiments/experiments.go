// Package experiments is a detlint fixture named after the real experiment
// harness so it lands in the analyzer's scope.
package experiments

import (
	"math/rand" // want `import of math/rand: the global generator is nondeterministic`
	"time"

	"sim"
)

// WallClock trips both wall-clock rules.
func WallClock() time.Duration {
	start := time.Now()      // want `wall-clock call time\.Now`
	return time.Since(start) // want `wall-clock call time\.Since`
}

// Deadline trips the remaining wall-clock entry point.
func Deadline(t time.Time) time.Duration {
	return time.Until(t) // want `wall-clock call time\.Until`
}

// GlobalRand uses the (already-flagged) global generator import.
func GlobalRand() int { return rand.Int() }

// HardSeed constructs a generator from a literal seed.
func HardSeed() *sim.Rand {
	return sim.NewRand(42) // want `hard-coded seed 42`
}

// DerivedSeed threads a caller-provided seed; this is the sanctioned shape.
func DerivedSeed(seed uint64) *sim.Rand {
	return sim.NewRand(seed)
}

// NotTime calls a same-named method on a non-time type; detlint must not
// confuse it with time.Now.
type clock struct{}

func (clock) Now() int { return 0 }

// NotWallClock exercises the non-time Now.
func NotWallClock() int { return clock{}.Now() }
