package experiments

import "time"

// AllowedTrailing suppresses with a trailing directive on the offending
// line.
func AllowedTrailing() time.Time {
	return time.Now() //pclint:allow detlint fixture exercises trailing suppression
}

// AllowedAbove suppresses with a directive on the line immediately above.
func AllowedAbove() time.Time {
	//pclint:allow detlint fixture exercises own-line suppression
	return time.Now()
}

// WrongAnalyzer names a real analyzer that did not produce the finding;
// the detlint diagnostic must still fire.
func WrongAnalyzer() time.Time {
	//pclint:allow maporder directive names the wrong analyzer
	return time.Now() // want `wall-clock call time\.Now`
}

// MissingReason omits the mandatory reason: the finding fires and the
// directive itself is reported as malformed.
func MissingReason() time.Time {
	return time.Now() //pclint:allow detlint // want `wall-clock call time\.Now` `missing reason`
}

// UnknownAnalyzer names an analyzer outside the suite.
func UnknownAnalyzer() time.Time {
	return time.Now() //pclint:allow nosuch because reasons // want `wall-clock call time\.Now` `unknown analyzer "nosuch"`
}

// BareDirective has neither analyzer nor reason.
func BareDirective() time.Time {
	return time.Now() //pclint:allow // want `wall-clock call time\.Now` `missing analyzer name and reason`
}
