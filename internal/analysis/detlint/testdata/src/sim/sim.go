// Package sim is a minimal stand-in for the real simulation core: just
// enough surface for detlint's hard-coded-seed rule to resolve the
// sim.NewRand constructor.
package sim

// Rand is a deterministic generator stub.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 advances the stub state.
func (r *Rand) Uint64() uint64 {
	r.state++
	return r.state
}
