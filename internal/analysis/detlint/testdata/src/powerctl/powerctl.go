// Package powerctl is a detlint fixture named after the hierarchy CLI,
// pinning the scope extension: the store the CLI writes must be
// byte-stable across runs, so wall-clock stamps are off limits.
package powerctl

import "time"

// Stamp would bake a wall-clock timestamp into the persistent store.
func Stamp() int64 {
	return time.Now().Unix() // want `wall-clock call time\.Now`
}

// Age computes a wall-clock-relative quantity.
func Age(saved time.Time) time.Duration {
	return time.Since(saved) // want `wall-clock call time\.Since`
}
