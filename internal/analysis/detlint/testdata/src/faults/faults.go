// Package faults is a detlint fixture named after the fault-injection
// subsystem: injected fault streams must replay identically across runs,
// so the package sits in the analyzer's deterministic scope.
package faults

import (
	"time"

	"sim"
)

// StampEvent trips the wall-clock rule: fault events carry virtual time,
// never host time.
func StampEvent() int64 {
	return time.Now().UnixNano() // want `wall-clock call time\.Now`
}

// HardSeededPlan constructs a fault stream from a literal seed.
func HardSeededPlan() *sim.Rand {
	return sim.NewRand(1) // want `hard-coded seed 1`
}

// SeededPlan threads the plan's configured seed; the sanctioned shape.
func SeededPlan(seed uint64) *sim.Rand {
	return sim.NewRand(seed)
}
