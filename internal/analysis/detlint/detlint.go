// Package detlint flags nondeterminism sources — wall-clock reads, the
// global math/rand generator, and hard-coded RNG seeds — in the packages
// whose output must be byte-identical across runs and -jobs counts.
package detlint

import (
	"go/ast"
	"strings"

	"powercontainers/internal/analysis"
)

// Scope: the simulation core, the experiment harness and renderers, the
// export layer, the parallel runner, the (sim-driven) kernel, and the
// CLI binaries that render experiment output.
var (
	scopeExact = []string{"powercontainers"}
	scopeLast  = []string{"sim", "experiments", "export", "runner", "kernel", "faults", "stream", "pcbench", "pcreport", "pctrace", "pccalib", "pcstream", "powerctl"}
)

var Analyzer = &analysis.Analyzer{
	Name: "detlint",
	Doc: "flags time.Now/Since/Until, math/rand, and hard-coded sim.NewRand seeds " +
		"in deterministic paths; seeds must derive via runner.SeedFor",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathMatch(pass.Pkg.Path(), scopeExact, scopeLast) {
		return nil
	}
	for _, file := range pass.Files {
		isTest := pass.IsTestFile(file.Pos())
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: the global generator is nondeterministic across runs; use sim.Rand seeded via runner.SeedFor", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn.pkgPath == "" {
				return true
			}
			if fn.pkgPath == "time" {
				switch fn.name {
				case "Now", "Since", "Until":
					pass.Reportf(call.Pos(), "wall-clock call time.%s in a deterministic path; derive timing from sim.Clock (or annotate //pclint:allow detlint <reason> if intentionally wall-clock)", fn.name)
				}
				return true
			}
			if fn.name == "NewRand" && lastSegment(fn.pkgPath) == "sim" && !isTest && len(call.Args) == 1 {
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
					pass.Reportf(call.Pos(), "sim.NewRand with hard-coded seed %s: derive job seeds via runner.SeedFor(base, key) so parallel cells stay independent", tv.Value)
				}
			}
			return true
		})
	}
	return nil
}

// calleeInfo identifies the package-level function a call resolves to.
type calleeInfo struct {
	pkgPath string
	name    string
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) calleeInfo {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return calleeInfo{}
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil || obj.Pkg() == nil {
		return calleeInfo{}
	}
	return calleeInfo{pkgPath: obj.Pkg().Path(), name: obj.Name()}
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
