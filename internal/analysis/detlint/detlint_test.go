package detlint_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "experiments")
}

func TestDetlintFaultsScope(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "faults")
}

func TestDetlintPowerctlScope(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "powerctl")
}

func TestDetlintOutOfScope(t *testing.T) {
	analysistest.Run(t, detlint.Analyzer, "other")
}
