// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus the repo-specific plumbing shared by the pclint analyzers:
// package-scope matching, guard-fact tracking, and the //pclint:allow
// suppression directive.
//
// The x/tools module is deliberately not imported: the reproduction builds
// offline with only the standard library, so the framework speaks the
// "go vet -vettool" unitchecker protocol itself (see unit.go) and loads
// test fixtures with its own loader (see the analysistest subpackage).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check. Run inspects a single
// type-checked package via the Pass and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pclint:allow directives. It must be a valid identifier.
	Name string
	// Doc is a short description shown by `pclint help`.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the syntax and type information of a
// single package, and a sink for its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts holds the fact summaries of this package and its
	// dependencies, gathered in pass 1 (see GatherFacts). Never nil when
	// run through RunAnalyzers.
	Facts  *FactStore
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos, attributed to the pass's analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// RunAnalyzers executes each analyzer over the package and returns the raw
// (unsuppressed) diagnostics sorted by position. facts carries the package's
// own gathered facts plus its dependencies' (nil is treated as empty).
// Analyzer errors are returned combined; diagnostics gathered before an
// error are kept.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore, suite []*Analyzer) ([]Diagnostic, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	var diags []Diagnostic
	var errs []string
	for _, a := range suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Facts:     facts,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", a.Name, err))
		}
	}
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	if len(errs) > 0 {
		return diags, fmt.Errorf("%s", strings.Join(errs, "; "))
	}
	return diags, nil
}

// PathMatch reports whether a package path is in an analyzer's scope:
// either an exact path in exact, or a path whose final segment is in last.
// Build-system decorations are normalized away first, so the test variants
// "p [p.test]", "p.test", and the external test package "p_test" all match
// the scope of p.
func PathMatch(pkgPath string, exact, last []string) bool {
	path := NormalizePkgPath(pkgPath)
	for _, e := range exact {
		if path == e {
			return true
		}
	}
	seg := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		seg = path[i+1:]
	}
	for _, l := range last {
		if seg == l {
			return true
		}
	}
	return false
}

// NormalizePkgPath strips go-command test-variant decorations from a
// package path: "p [q.test]" → "p", "p.test" → "p", "p_test" → "p".
func NormalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	path = strings.TrimSuffix(path, ".test")
	path = strings.TrimSuffix(path, "_test")
	return path
}
