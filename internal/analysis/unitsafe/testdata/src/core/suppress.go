package core

func Suppressed(totalJ, elapsedSeconds float64) {
	_ = totalJ + elapsedSeconds //pclint:allow unitsafe raw telemetry mixes fields deliberately
	//pclint:allow unitsafe nothing wrong on this line // want `stale //pclint:allow unitsafe directive`
	_ = totalJ + totalJ
}
