// Package core exercises unitsafe within a single package: suffix-derived
// dimensions, // unit: overrides, and the constant-wildcard rule.
package core

// BudgetW is the package power budget.
const BudgetW = 95.0

// unit: W
var rate = 1.5 // suffix lies are corrected by overrides

// unit: none
var refTempW = 3.0 // not actually watts: opted out

// unit: furlongs // want `bad // unit: override: unknown unit "furlongs"`
var distance = 1.0

// Sample carries one attribution reading.
type Sample struct {
	EnergyJ   float64
	Energy_mJ float64
	Dur       float64 // unit: Seconds
}

func Mixups(s Sample, elapsedSeconds, totalJ float64) {
	_ = totalJ + elapsedSeconds // want `unit mismatch: mixing J and Seconds`
	_ = s.EnergyJ - s.Energy_mJ // want `unit mismatch: mixing J and mJ`
	_ = totalJ > elapsedSeconds // want `unit mismatch: comparing J and Seconds`
	_ = s.EnergyJ + s.Dur       // want `unit mismatch: mixing J and Seconds`

	powerW := totalJ / elapsedSeconds // ok: J/Seconds is W
	_ = powerW + BudgetW              // ok: same dimension
	wrongJ := powerW * 2              // want `unit mismatch: W value bound to "wrongJ" which is declared J`
	_ = wrongJ
	energyJ := powerW * s.Dur // ok: W*Seconds is J
	_ = energyJ
	_ = totalJ + 5        // ok: bare constants are wildcards
	_ = rate + powerW     // ok: override says rate is W
	_ = refTempW + totalJ // ok: refTempW opted out with unit: none
	_ = distance

	// Named constants are not wildcards: their suffix declares a dimension.
	_ = BudgetW + totalJ       // want `unit mismatch: mixing W and J`
	budgetJ := BudgetW * s.Dur // ok: W*Seconds is J
	_ = budgetJ
}

// Consume takes a duration.
func Consume(durSeconds float64) { _ = durSeconds }

func CallMismatch(totalJ float64) {
	Consume(totalJ) // want `unit mismatch: passing J value to parameter "durSeconds" of Consume which is declared Seconds`
	Consume(0.5)    // ok: constant wildcard
}
