// Package other is outside unitsafe's scope; mixed dimensions are not
// reported here.
package other

func Mix(totalJ, elapsedSeconds float64) float64 { return totalJ + elapsedSeconds }
