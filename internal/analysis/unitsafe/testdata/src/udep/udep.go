// Package udep exports a dimensioned API for the unitsafe cross-package
// fixture: its // unit: overrides travel to importers as package facts,
// and its parameter names travel in export data.
package udep

// Window is the averaging window.
// unit: Seconds
var Window = 0.25

// Drain reports the energy drained over a window.
// unit: J
func Drain(durSeconds float64) float64 { return 12 * durSeconds }

// Reading is one meter sample.
type Reading struct {
	// unit: W
	Level float64
}
