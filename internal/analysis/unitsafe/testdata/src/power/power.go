// Package power consumes udep's dimensioned API across a package
// boundary: every unit here comes from imported facts or export-data
// parameter names.
package power

import "udep"

func Use(totalJ, freqHz float64) {
	_ = udep.Window + totalJ // want `unit mismatch: mixing Seconds and J`
	udep.Drain(totalJ)       // want `unit mismatch: passing J value to parameter "durSeconds" of Drain which is declared Seconds`

	got := udep.Drain(udep.Window) // ok: Seconds into Seconds
	_ = got + freqHz               // want `unit mismatch: mixing J and Hz`

	var r udep.Reading
	_ = r.Level - totalJ // want `unit mismatch: mixing W and J`
	_ = r.Level * 2      // ok
}
