// Package unitsafe enforces dimensional consistency over the repo's
// quantity-suffix naming convention (EnergyJ, powerW, tickSeconds,
// elapsedCycles, FreqHz; see analysis.UnitFromName). It flags
//
//   - additions, subtractions and comparisons whose operands carry
//     different dimensions (J + Seconds, mJ < J without rescaling),
//   - multiplication/division results bound to an identifier whose
//     declared unit disagrees (energyJ := powerW * countCycles),
//   - dimensioned arguments passed to parameters declared with a
//     conflicting dimension, across package boundaries via facts.
//
// Unit information comes from identifier suffixes — re-derived at every
// use site from names, which travel in export data — plus `// unit:`
// doc-comment overrides exported as package facts (a declaration whose
// name lies about its unit can be corrected with `// unit: W`, or opted
// out entirely with `// unit: none`).
//
// Untyped and typed constants are treated as wildcards: multiplying or
// comparing against a bare number is always legal (2*budgetW stays W),
// so only mixtures of two *named* dimensions are reported.
package unitsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"powercontainers/internal/analysis"
)

// scopeLast names the packages under the unit discipline: the attribution
// core and the physical-quantity pipelines around it.
var scopeLast = []string{"core", "power", "model", "calib", "stream", "cluster"}

var Analyzer = &analysis.Analyzer{
	Name: "unitsafe",
	Doc: "flags arithmetic, bindings, and calls that mix physical dimensions " +
		"(J, mJ, W, Seconds, Cycles, Hz) inferred from identifier suffixes and // unit: overrides",
	Run: run,
}

// kind classifies how much we know about an expression's unit.
type kind int

const (
	kUnknown kind = iota // no unit information: never flag
	kConst               // a constant: compatible with anything
	kKnown               // a definite dimension
)

type uval struct {
	u Unit
	k kind
}

// Unit aliases the framework's dimension type for brevity.
type Unit = analysis.Unit

func run(pass *analysis.Pass) error {
	if !analysis.PathMatch(pass.Pkg.Path(), nil, scopeLast) {
		return nil
	}
	c := &checker{pass: pass, visiting: map[types.Object]bool{}}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				// Track local definitions so unsuffixed locals inherit
				// the unit of what was assigned to them.
				c.defs = analysis.LocalDefs(fd.Body, pass.TypesInfo)
			} else {
				c.defs = nil
			}
			c.walk(decl)
		}
	}
	return nil
}

func (c *checker) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			c.checkBinary(n)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					c.checkBinding(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					c.checkBinding(n.Names[i], n.Values[i])
				}
			}
		case *ast.CallExpr:
			c.checkCall(n)
		}
		return true
	})
}

type checker struct {
	pass     *analysis.Pass
	defs     map[types.Object][]ast.Expr
	visiting map[types.Object]bool
}

var cmpOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.LEQ: true,
	token.GTR: true, token.GEQ: true,
}

func (c *checker) checkBinary(e *ast.BinaryExpr) {
	if e.Op != token.ADD && e.Op != token.SUB && !cmpOps[e.Op] {
		return
	}
	x, y := c.unitOf(e.X), c.unitOf(e.Y)
	if x.k != kKnown || y.k != kKnown || x.u == y.u {
		return
	}
	verb := "comparing"
	if e.Op == token.ADD || e.Op == token.SUB {
		verb = "mixing"
	}
	c.pass.Reportf(e.OpPos, "unit mismatch: %s %s and %s with %q (rescale or convert explicitly)",
		verb, x.u, y.u, e.Op)
}

// checkBinding flags a dimensioned value bound to an identifier whose
// declared unit disagrees — the lie that outlives the expression.
func (c *checker) checkBinding(lhs, rhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	lu := c.identUnit(id)
	if lu.k != kKnown {
		return
	}
	ru := c.unitOf(rhs)
	if ru.k != kKnown || lu.u == ru.u {
		return
	}
	c.pass.Reportf(rhs.Pos(), "unit mismatch: %s value bound to %q which is declared %s",
		ru.u, id.Name, lu.u)
}

// checkCall flags dimensioned arguments against conflicting parameter
// dimensions, resolved from the callee's parameter names (present in
// export data) and its package's `// unit:` override facts.
func (c *checker) checkCall(call *ast.CallExpr) {
	fn := analysis.CalleeFunc(call, c.pass.TypesInfo)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	key := analysis.FuncKey(fn)
	for i, arg := range call.Args {
		if sig.Variadic() && i >= params.Len()-1 {
			break // variadic tails carry no per-argument declaration
		}
		if i >= params.Len() {
			break
		}
		p := params.At(i)
		pu := c.declUnit(fn.Pkg().Path(), analysis.ParamKey(key, i), p.Name())
		if pu.k != kKnown {
			continue
		}
		au := c.unitOf(arg)
		if au.k != kKnown || au.u == pu.u {
			continue
		}
		c.pass.Reportf(arg.Pos(), "unit mismatch: passing %s value to parameter %q of %s which is declared %s",
			au.u, p.Name(), fn.Name(), pu.u)
	}
}

// unitOf evaluates the unit of an expression.
func (c *checker) unitOf(e ast.Expr) uval {
	e = ast.Unparen(e)
	info := c.pass.TypesInfo
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		// A constant expression is a wildcard scalar — unless it is a
		// *named* constant, whose suffix or override may declare a
		// dimension (const BudgetW = 95 is a W quantity).
		switch e := e.(type) {
		case *ast.Ident:
			return c.identUnit(e)
		case *ast.SelectorExpr:
			return c.selectorUnit(e)
		}
		return uval{k: kConst}
	}
	switch e := e.(type) {
	case *ast.Ident:
		return c.identUnit(e)
	case *ast.SelectorExpr:
		return c.selectorUnit(e)
	case *ast.StarExpr:
		return c.unitOf(e.X)
	case *ast.UnaryExpr:
		return c.unitOf(e.X)
	case *ast.IndexExpr:
		// An element of samplesJ is a J quantity.
		return c.unitOf(e.X)
	case *ast.CallExpr:
		return c.callUnit(e)
	case *ast.BinaryExpr:
		x, y := c.unitOf(e.X), c.unitOf(e.Y)
		switch e.Op {
		case token.MUL:
			return combine(x, y, Unit.Mul)
		case token.QUO:
			return combine(x, y, Unit.Div)
		case token.ADD, token.SUB:
			// The mismatch, if any, is reported at the operator; the
			// sum's unit is whichever side declared one.
			if x.k == kKnown {
				return x
			}
			return y
		case token.SHL, token.SHR:
			return x
		}
		return uval{}
	}
	return uval{}
}

// combine folds two operand units under a product/quotient, treating
// constants as dimensionless scalars.
func combine(x, y uval, op func(Unit, Unit) Unit) uval {
	if x.k == kUnknown || y.k == kUnknown {
		return uval{}
	}
	if x.k == kConst && y.k == kConst {
		return uval{k: kConst}
	}
	return uval{u: op(x.u, y.u), k: kKnown}
}

func (c *checker) identUnit(id *ast.Ident) uval {
	info := c.pass.TypesInfo
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return uval{}
	}
	if _, isConst := obj.(*types.Const); isConst {
		// A named constant still carries its suffix's dimension if it has
		// one (const BudgetW = 95 is a W quantity); otherwise wildcard.
		if u, ok := c.objUnit(obj); ok {
			return u
		}
		return uval{k: kConst}
	}
	if u, ok := c.objUnit(obj); ok {
		return u
	}
	// An unsuffixed local inherits the unit of its definitions when they
	// all agree (got := udep.Drain(w) makes got a J quantity).
	if exprs := c.defs[obj]; len(exprs) > 0 && !c.visiting[obj] {
		c.visiting[obj] = true
		defer delete(c.visiting, obj)
		res := uval{k: kConst}
		for _, e := range exprs {
			u := c.unitOf(e)
			switch {
			case u.k == kUnknown:
				return uval{}
			case u.k == kConst:
			case res.k == kConst:
				res = u
			case res.u != u.u:
				return uval{} // conflicting definitions: give up
			}
		}
		if res.k == kKnown {
			return res
		}
	}
	return uval{}
}

// objUnit resolves a declared object's unit: `// unit:` override facts for
// package-level declarations first, then the name-suffix grammar.
func (c *checker) objUnit(obj types.Object) (uval, bool) {
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		if u, isUnit, present := c.pass.Facts.UnitOverride(obj.Pkg().Path(), obj.Name()); present {
			if !isUnit {
				return uval{}, true // unit: none — opted out
			}
			return uval{u: u, k: kKnown}, true
		}
	}
	if u, ok := analysis.UnitFromName(obj.Name()); ok {
		return uval{u: u, k: kKnown}, true
	}
	return uval{}, false
}

func (c *checker) selectorUnit(e *ast.SelectorExpr) uval {
	info := c.pass.TypesInfo
	if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
		field := sel.Obj()
		owner := analysis.NamedTypeName(sel.Recv())
		if field.Pkg() != nil && owner != "" {
			key := analysis.FieldKey(owner, field.Name())
			if u, isUnit, present := c.pass.Facts.UnitOverride(field.Pkg().Path(), key); present {
				if !isUnit {
					return uval{}
				}
				return uval{u: u, k: kKnown}
			}
		}
		if u, ok := analysis.UnitFromName(field.Name()); ok {
			return uval{u: u, k: kKnown}
		}
		return uval{}
	}
	// Qualified package identifier (pkg.TickSeconds) or method value.
	return c.identUnit(e.Sel)
}

func (c *checker) callUnit(call *ast.CallExpr) uval {
	info := c.pass.TypesInfo
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		// Conversions preserve dimension: uint64(energyJ) is still J.
		if len(call.Args) == 1 {
			return c.unitOf(call.Args[0])
		}
		return uval{}
	}
	fn := analysis.CalleeFunc(call, info)
	if fn == nil || fn.Pkg() == nil {
		return uval{}
	}
	return c.declUnit(fn.Pkg().Path(), analysis.ResultKey(analysis.FuncKey(fn), 0), fn.Name())
}

// declUnit resolves a unit from an override key in a package's facts,
// falling back to the suffix grammar on the declared name.
func (c *checker) declUnit(pkgPath, key, name string) uval {
	if u, isUnit, present := c.pass.Facts.UnitOverride(pkgPath, key); present {
		if !isUnit {
			return uval{}
		}
		return uval{u: u, k: kKnown}
	}
	if u, ok := analysis.UnitFromName(name); ok {
		return uval{u: u, k: kKnown}
	}
	return uval{}
}
