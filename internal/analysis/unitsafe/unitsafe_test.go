package unitsafe_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/unitsafe"
)

func TestSinglePackage(t *testing.T) { analysistest.Run(t, unitsafe.Analyzer, "core") }
func TestCrossPackage(t *testing.T)  { analysistest.Run(t, unitsafe.Analyzer, "power") }
func TestOutOfScope(t *testing.T)    { analysistest.Run(t, unitsafe.Analyzer, "other") }
