package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// DirectivePrefix introduces a suppression comment. The full syntax is
//
//	//pclint:allow <analyzer> <reason...>
//
// placed either at the end of the offending line or on its own line
// immediately above. The analyzer name must be one of the suite's
// analyzers and the reason must be non-empty; a malformed directive
// suppresses nothing and is itself reported as a "pclint" diagnostic.
// The reason runs to the end of the line or to an embedded "//".
const DirectivePrefix = "//pclint:allow"

// A Directive is one parsed //pclint:allow comment.
type Directive struct {
	Pos      token.Pos
	File     string
	Line     int
	Analyzer string
	Reason   string
	// Malformed describes why the directive is invalid ("" if valid).
	Malformed string
}

// Directives extracts every //pclint:allow comment from the files.
// known reports whether an analyzer name belongs to the suite.
func Directives(fset *token.FileSet, files []*ast.File, known func(string) bool) []Directive {
	var out []Directive
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := c.Text[len(DirectivePrefix):]
				// Tolerate a trailing comment on the directive line.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				posn := fset.Position(c.Pos())
				d := Directive{Pos: c.Pos(), File: posn.Filename, Line: posn.Line}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.Malformed = "missing analyzer name and reason"
				case !known(fields[0]):
					d.Analyzer = fields[0]
					d.Malformed = fmt.Sprintf("unknown analyzer %q", fields[0])
				case len(fields) == 1:
					d.Analyzer = fields[0]
					d.Malformed = fmt.Sprintf("missing reason (want %s %s <reason>)", DirectivePrefix, fields[0])
				default:
					d.Analyzer = fields[0]
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// A DirectiveKey locates one (line, analyzer) coverage slot of a
// suppression directive. Fact gathering reports the slots it consumed
// (e.g. a //pclint:allow hotalloc waiver that pruned an allocation from a
// function's exported summary) through this type so that such directives
// are not reported stale.
type DirectiveKey struct {
	File     string
	Line     int
	Analyzer string
}

// Filter applies the suppression directives found in files to diags: a
// diagnostic is dropped when a well-formed directive for its analyzer sits
// on the same line or the line immediately above. Each malformed directive
// is reported as an additional "pclint" diagnostic. The result is sorted
// by position.
func Filter(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known func(string) bool) []Diagnostic {
	return FilterStale(fset, files, diags, known, nil, nil)
}

// FilterStale is Filter with stale-suppression detection: when ran is
// non-nil, a well-formed directive whose analyzer actually ran this pass
// but which suppressed no diagnostic (and consumed no fact-gathering
// waiver slot in used) is itself reported as a "pclint" diagnostic, so
// dead annotations fail the lint gate instead of rotting in place.
func FilterStale(fset *token.FileSet, files []*ast.File, diags []Diagnostic, known func(string) bool, ran func(string) bool, used map[DirectiveKey]bool) []Diagnostic {
	dirs := Directives(fset, files, known)
	allowed := make(map[DirectiveKey]int) // slot → index into dirs
	hit := make([]bool, len(dirs))
	var out []Diagnostic
	for i, d := range dirs {
		if d.Malformed != "" {
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "pclint",
				Message:  fmt.Sprintf("malformed %s directive: %s", DirectivePrefix, d.Malformed),
			})
			continue
		}
		// The directive covers its own line (trailing comment) and the
		// line below (own-line comment above the offending statement).
		allowed[DirectiveKey{d.File, d.Line, d.Analyzer}] = i
		allowed[DirectiveKey{d.File, d.Line + 1, d.Analyzer}] = i
		if used[DirectiveKey{d.File, d.Line, d.Analyzer}] || used[DirectiveKey{d.File, d.Line + 1, d.Analyzer}] {
			hit[i] = true
		}
	}
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		if i, ok := allowed[DirectiveKey{posn.Filename, posn.Line, d.Analyzer}]; ok {
			hit[i] = true
			continue
		}
		out = append(out, d)
	}
	if ran != nil {
		for i, d := range dirs {
			if d.Malformed != "" || hit[i] || !ran(d.Analyzer) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      d.Pos,
				Analyzer: "pclint",
				Message:  fmt.Sprintf("stale %s %s directive: it suppressed nothing this run; delete it", DirectivePrefix, d.Analyzer),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// KnownSet adapts a suite of analyzers to the `known` predicate used by
// Directives and Filter.
func KnownSet(suite []*Analyzer) func(string) bool {
	names := make(map[string]bool, len(suite))
	for _, a := range suite {
		names[a.Name] = true
	}
	return func(name string) bool { return names[name] }
}
