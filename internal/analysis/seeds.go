package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// IsNewRandCall reports whether call invokes sim.NewRand (matched by
// package last-segment so fixtures and the real tree both resolve).
func IsNewRandCall(call *ast.CallExpr, info *types.Info) bool {
	fn := calleeObject(call, info)
	return fn != nil && fn.Pkg() != nil && fn.Name() == "NewRand" && pkgLastSegment(fn.Pkg().Path()) == "sim"
}

// IsSeedForCall reports whether call invokes runner.SeedFor, the blessed
// seed-derivation primitive.
func IsSeedForCall(call *ast.CallExpr, info *types.Info) bool {
	fn := calleeObject(call, info)
	return fn != nil && fn.Pkg() != nil && fn.Name() == "SeedFor" && pkgLastSegment(fn.Pkg().Path()) == "runner"
}

// isRandMethodCall reports whether call is a method call on sim.Rand —
// drawing from an existing generator is the canonical way to fork a seed.
func isRandMethodCall(call *ast.CallExpr, info *types.Info) bool {
	fn := calleeObject(call, info)
	if fn == nil || fn.Pkg() == nil || pkgLastSegment(fn.Pkg().Path()) != "sim" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && recvTypeName(sig.Recv().Type()) == "Rand"
}

// A SeedEval evaluates whether an expression is a provenance-correct RNG
// seed: one that traces, through locals, arithmetic and the call graph,
// to runner.SeedFor, a //pclint:seed-registered constant, a seed-carrying
// field or parameter, or a draw from an existing sim.Rand.
type SeedEval struct {
	Info *types.Info
	// Lookup resolves a function's fact summary; during gathering it
	// consults the in-progress local map before imported facts.
	Lookup func(fn *types.Func) (FuncFact, bool)
	// IsSeedConst reports whether an object is a registered seed root.
	IsSeedConst func(obj types.Object) bool
	// Params maps the enclosing declaration's integer parameters to
	// their indices; parameters relied on during evaluation are recorded
	// in the used set (the caller's proof obligation).
	Params map[types.Object]int
	// Trusted holds additional objects assumed seed-derived without
	// recording: parameters of enclosing function literals, whose call
	// sites are dynamic and carry the contract by convention.
	Trusted map[types.Object]bool
	// Defs maps local variables to every expression assigned to them.
	Defs map[types.Object][]ast.Expr

	// grounded records whether the last evaluation touched a concrete
	// seed root (SeedFor, a Rand draw, a registered constant, a seed
	// field, a SeedSource call) rather than relying on trusted
	// parameters alone. See IsSeedGrounded.
	grounded bool
}

// IsSeed evaluates e, accumulating the enclosing function's parameters the
// derivation depends on into used (which may be nil to discard).
func (ev *SeedEval) IsSeed(e ast.Expr, used map[int]bool) bool {
	ok, _ := ev.IsSeedGrounded(e, used)
	return ok
}

// IsSeedGrounded is IsSeed plus a report of whether the derivation passed
// through a concrete seed root, as opposed to being a pure function of
// trusted parameters. The distinction keeps integer passthroughs
// (func ChipOf(core int) int { return core / k }) from being exported as
// seed sources: a parameter is an acceptable seed *input*, but a function
// is only a seed *source* if it actually derives.
func (ev *SeedEval) IsSeedGrounded(e ast.Expr, used map[int]bool) (isSeed, grounded bool) {
	ev.grounded = false
	ok := ev.isSeed(e, used, 0)
	return ok, ev.grounded
}

func (ev *SeedEval) isSeed(e ast.Expr, used map[int]bool, depth int) bool {
	if depth > 32 {
		return false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return ev.identSeed(e, used, depth)
	case *ast.SelectorExpr:
		// A qualified package identifier resolves like a plain one; a
		// field selection named ...Seed carries a blessed seed by the
		// field-write rule (seedflow checks every write to such fields).
		if obj := ev.Info.Uses[e.Sel]; obj != nil {
			if _, isField := obj.(*types.Var); isField && strings.HasSuffix(e.Sel.Name, "Seed") {
				ev.grounded = true
				return true
			}
			if ev.IsSeedConst != nil && ev.IsSeedConst(obj) {
				ev.grounded = true
				return true
			}
		}
		return false
	case *ast.StarExpr:
		return ev.isSeed(e.X, used, depth+1)
	case *ast.UnaryExpr:
		return ev.isSeed(e.X, used, depth+1)
	case *ast.BinaryExpr:
		lu := map[int]bool{}
		ru := map[int]bool{}
		l := ev.isSeed(e.X, lu, depth+1)
		r := ev.isSeed(e.Y, ru, depth+1)
		if !l && !r {
			return false
		}
		if used != nil {
			if l {
				for i := range lu {
					used[i] = true
				}
			}
			if r {
				for i := range ru {
					used[i] = true
				}
			}
		}
		return true
	case *ast.CallExpr:
		if tv, ok := ev.Info.Types[e.Fun]; ok && tv.IsType() {
			if len(e.Args) == 1 {
				return ev.isSeed(e.Args[0], used, depth+1)
			}
			return false
		}
		if IsSeedForCall(e, ev.Info) || isRandMethodCall(e, ev.Info) {
			ev.grounded = true
			return true
		}
		if fn := calleeObject(e, ev.Info); fn != nil && ev.Lookup != nil {
			if ff, ok := ev.Lookup(fn); ok && ff.SeedSource {
				ev.grounded = true
				return true
			}
		}
		return false
	}
	return false
}

func (ev *SeedEval) identSeed(id *ast.Ident, used map[int]bool, depth int) bool {
	obj := ev.Info.Uses[id]
	if obj == nil {
		obj = ev.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	if idx, ok := ev.Params[obj]; ok {
		if used != nil {
			used[idx] = true
		}
		return true
	}
	if ev.Trusted[obj] {
		return true
	}
	if ev.IsSeedConst != nil && ev.IsSeedConst(obj) {
		ev.grounded = true
		return true
	}
	if defs, ok := ev.Defs[obj]; ok && len(defs) > 0 {
		for _, d := range defs {
			if !ev.isSeed(d, used, depth+1) {
				return false
			}
		}
		return true
	}
	return false
}

// IntParams returns the integer-typed parameters (including the receiver's
// position being excluded) of a function declaration, mapped to indices.
func IntParams(decl *ast.FuncDecl, info *types.Info) map[types.Object]int {
	out := map[types.Object]int{}
	if decl.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil && isIntegerType(obj.Type()) {
				out[obj] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

// LitParams collects the parameters of every function literal nested in
// body, the Trusted set for seed evaluation.
func LitParams(body *ast.BlockStmt, info *types.Info) map[types.Object]bool {
	out := map[types.Object]bool{}
	if body == nil {
		return out
	}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || lit.Type.Params == nil {
			return true
		}
		for _, field := range lit.Type.Params.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// LocalDefs maps every local variable in body to the expressions assigned
// to it (short declarations, assignments, and var declarations).
func LocalDefs(body *ast.BlockStmt, info *types.Info) map[types.Object][]ast.Expr {
	out := map[types.Object][]ast.Expr{}
	if body == nil {
		return out
	}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			out[obj] = append(out[obj], rhs)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					record(s.Lhs[i], s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(s.Names) == len(s.Values) {
				for i := range s.Names {
					record(s.Names[i], s.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
