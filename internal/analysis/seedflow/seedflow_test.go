package seedflow_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/seedflow"
)

func TestSinglePackage(t *testing.T) { analysistest.Run(t, seedflow.Analyzer, "exp") }
func TestCrossPackage(t *testing.T)  { analysistest.Run(t, seedflow.Analyzer, "drv") }
func TestOutOfScope(t *testing.T)    { analysistest.Run(t, seedflow.Analyzer, "sim") }
