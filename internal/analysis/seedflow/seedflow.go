// Package seedflow enforces RNG seed provenance across the call graph:
// every argument reaching a seed position — sim.NewRand's seed,
// runner.SeedFor's base, or a parameter another function's fact summary
// marks as seed-carrying — must trace, through locals, arithmetic, and
// calls, to one of the blessed roots:
//
//   - runner.SeedFor(base, key) derivations and their arithmetic,
//   - a draw from an existing sim.Rand (Fork, Uint64, ...),
//   - a package-level constant or variable registered with //pclint:seed,
//   - a struct field whose name ends in Seed (every *write* to such a
//     field is itself checked, so reads are trustworthy),
//   - a parameter of the enclosing function — sound because the
//     gatherer then exports that parameter as a SeedParams fact, moving
//     the obligation to every caller.
//
// This is the determinism contract of the experiment harness: a run is
// replayable iff every generator's seed is a pure function of the
// experiment's registered base seed.
//
// _test.go files are exempt: tests pin explicit literal seeds on purpose
// (that IS the reproducibility mechanism there), so the provenance
// obligation applies only to the production harness.
package seedflow

import (
	"go/ast"
	"go/types"
	"strings"

	"powercontainers/internal/analysis"
)

// scope: everywhere in the module except the seed primitives' own homes —
// sim implements the generator and runner implements the derivation, so
// their internals necessarily touch raw integers.
var scopeExcludedLast = []string{"sim", "runner"}

var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc: "flags RNG seed positions (sim.NewRand, runner.SeedFor bases, seed-carrying " +
		"parameters) whose argument does not trace to a registered seed root",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathMatch(pass.Pkg.Path(), nil, scopeExcludedLast) {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ev := &analysis.SeedEval{
		Info:   info,
		Lookup: func(fn *types.Func) (analysis.FuncFact, bool) { return pass.Facts.FuncFact(fn) },
		IsSeedConst: func(obj types.Object) bool {
			return pass.Facts.SeedConst(obj)
		},
		// Parameters of the enclosing declaration are trusted here; the
		// fact gatherer exports them as SeedParams, so each caller is
		// checked in turn. Function-literal parameters are trusted by
		// convention (registry closures receive the harness seed).
		Params:  analysis.IntParams(fd, info),
		Trusted: analysis.LitParams(fd.Body, info),
		Defs:    analysis.LocalDefs(fd.Body, info),
	}
	lookup := ev.Lookup
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, idx := range analysis.SeedArgPositions(n, info, lookup) {
				if idx >= len(n.Args) {
					continue
				}
				arg := n.Args[idx]
				if ev.IsSeed(arg, nil) {
					continue
				}
				what := describeSeedSink(n, info, idx)
				pass.Reportf(arg.Pos(), "seed provenance: %s does not trace to runner.SeedFor, a //pclint:seed root, or a seed parameter (got %s)",
					what, types.ExprString(arg))
			}
		case *ast.AssignStmt:
			// Writes to ...Seed struct fields must themselves be
			// provenance-correct: reads of such fields are blessed.
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !strings.HasSuffix(sel.Sel.Name, "Seed") {
					continue
				}
				if s, ok := info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
					continue
				}
				if !ev.IsSeed(n.Rhs[i], nil) {
					pass.Reportf(n.Rhs[i].Pos(), "seed provenance: value stored in seed field %s does not trace to a seed root (got %s)",
						sel.Sel.Name, types.ExprString(n.Rhs[i]))
				}
			}
		}
		return true
	})
}

func describeSeedSink(call *ast.CallExpr, info *types.Info, idx int) string {
	switch {
	case analysis.IsNewRandCall(call, info):
		return "sim.NewRand seed"
	case analysis.IsSeedForCall(call, info):
		return "runner.SeedFor base"
	}
	if fn := analysis.CalleeFunc(call, info); fn != nil {
		return "seed parameter " + paramName(fn, idx) + " of " + fn.Name()
	}
	return "seed argument"
}

func paramName(fn *types.Func, idx int) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || idx >= sig.Params().Len() {
		return "?"
	}
	if name := sig.Params().At(idx).Name(); name != "" {
		return name
	}
	return "?"
}
