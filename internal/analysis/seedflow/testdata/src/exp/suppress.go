package exp

import "sim"

func Waived() *sim.Rand {
	return sim.NewRand(7) //pclint:allow seedflow fixture rig pins a fixed generator
}

func Stale() {
	//pclint:allow seedflow nothing to suppress here // want `stale //pclint:allow seedflow directive`
	_ = 1
}
