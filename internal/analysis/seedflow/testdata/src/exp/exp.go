// Package exp exercises seed provenance within one package and exports
// the facts (seed params, seed sources, seed roots) the cross-package
// fixture consumes.
package exp

import (
	"runner"
	"sim"
)

// BaseSeed is the registered experiment seed root.
//
//pclint:seed
var BaseSeed uint64 = 0x5eed

// Config carries a per-run derived seed; reads of RunSeed are blessed
// because every write to it is checked.
type Config struct {
	RunSeed uint64
}

func Bad() *sim.Rand {
	return sim.NewRand(42) // want `seed provenance: sim.NewRand seed does not trace`
}

func Good(cfg Config) *sim.Rand {
	r := sim.NewRand(runner.SeedFor(BaseSeed, 1))
	_ = sim.NewRand(cfg.RunSeed) // ok: blessed seed field
	_ = sim.NewRand(r.Uint64())  // ok: drawn from an existing generator
	return r.Fork()
}

// MakeRand's parameter becomes a SeedParams fact: the obligation moves
// to every caller.
func MakeRand(seed uint64) *sim.Rand {
	return sim.NewRand(seed*7919 + 1)
}

// DeriveSeed is a SeedSource: its result is a well-derived seed.
func DeriveSeed(i int) uint64 {
	return runner.SeedFor(BaseSeed, uint64(i))
}

func UsesDerived(i int) *sim.Rand {
	return sim.NewRand(DeriveSeed(i)) // ok: SeedSource fact
}

func ChainsParam(runSeed uint64) *sim.Rand {
	return MakeRand(runSeed ^ 0xff) // ok: enclosing seed param, re-exported as a fact
}

func BadChain() *sim.Rand {
	return MakeRand(1234) // want `seed provenance: seed parameter seed of MakeRand does not trace`
}

// Halve is plain integer arithmetic over its parameter — its result is a
// seed only if its input was. The grounding rule keeps it from being
// promoted to a SeedSource (and its parameter from becoming a caller
// obligation): a function is a source only if it actually derives.
func Halve(n uint64) uint64 { return n / 2 }

func UsesHalve() *sim.Rand {
	return sim.NewRand(Halve(4)) // want `seed provenance: sim.NewRand seed does not trace`
}

func StoreSeeds(cfg *Config, runSeed uint64) {
	cfg.RunSeed = runner.SeedFor(runSeed, 2) // ok
	cfg.RunSeed = 99                         // want `seed provenance: value stored in seed field RunSeed`
}
