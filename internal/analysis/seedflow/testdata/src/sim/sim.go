// Package sim is a fixture stand-in for the engine's RNG: seedflow
// exempts it, since the generator internals necessarily touch raw
// integers.
package sim

// Rand is a deterministic generator.
type Rand struct{ s uint64 }

// NewRand seeds a generator.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Uint64 draws the next value.
func (r *Rand) Uint64() uint64 { r.s += 0x9e3779b97f4a7c15; return r.s }

// Fork derives an independent child generator.
func (r *Rand) Fork() *Rand { return NewRand(r.Uint64()) }

// Clone uses a raw constant, legal inside sim itself.
func Clone() *Rand { return NewRand(1) }
