// Package drv exercises seedflow's cross-package facts: exp.MakeRand's
// parameter is a seed position learned from imported facts, and
// exp.DeriveSeed's result is a seed by its SeedSource fact.
package drv

import (
	"exp"
	"runner"
)

func Bad() {
	exp.MakeRand(1234) // want `seed provenance: seed parameter seed of MakeRand does not trace`
}

func Good(baseSeed uint64) {
	exp.MakeRand(runner.SeedFor(baseSeed, 2))
	exp.MakeRand(exp.DeriveSeed(3))
	exp.MakeRand(exp.BaseSeed) // ok: registered root crosses packages
}
