// Package runner is a fixture stand-in for the experiment harness's
// seed-derivation primitive.
package runner

// SeedFor derives a stream seed from a base seed and a key.
func SeedFor(base, key uint64) uint64 { return (base ^ key) * 0x9e3779b97f4a7c15 }
