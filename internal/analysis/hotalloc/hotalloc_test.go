package hotalloc_test

import (
	"testing"

	"powercontainers/internal/analysis/analysistest"
	"powercontainers/internal/analysis/hotalloc"
)

func TestSinglePackage(t *testing.T) { analysistest.Run(t, hotalloc.Analyzer, "hot") }
func TestCrossPackage(t *testing.T)  { analysistest.Run(t, hotalloc.Analyzer, "hot2") }
func TestOutOfScope(t *testing.T)    { analysistest.Run(t, hotalloc.Analyzer, "cold") }
