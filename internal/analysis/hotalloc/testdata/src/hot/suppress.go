package hot

// Refill is the deliberate cold path: the waiver suppresses the local
// finding and prunes the site from Refill's exported summary, so hot
// callers stay clean.
//
//pclint:hotpath
func Refill() []uint64 {
	return make([]uint64, 64) //pclint:allow hotalloc cold-path refill preallocates a batch
}

//pclint:hotpath
func UsesRefill() []uint64 {
	return Refill() // ok: the waiver vouches for the chain
}

//pclint:hotpath
func Steady(buf []uint64) uint64 {
	//pclint:allow hotalloc this line allocates nothing // want `stale //pclint:allow hotalloc directive`
	return buf[0]
}
