// Package hot exercises the hotpath allocation discipline in one
// package: direct allocation sites, the capacity-guard escape, and
// intra-package transitive summaries.
package hot

import "fmt"

type ring struct {
	buf []uint64
	pos int
}

// Push appends one value on the steady-state path.
//
//pclint:hotpath
func (r *ring) Push(v uint64) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, v) // ok: capacity proven by the dominating check
	}
	r.buf = append(r.buf, v) // want `hotpath Push: append may grow`
	m := make([]uint64, 4)   // want `hotpath Push: make allocates`
	_ = m
	fmt.Println(v) // want `hotpath Push: fmt.Println formats through reflection`
}

// Emit is hot and calls an allocating helper: the finding rides the
// helper's fact summary.
//
//pclint:hotpath
func Emit(v uint64) {
	sink(v) // want `hotpath Emit: call to sink which allocates`
}

func sink(v uint64) {
	_ = fmt.Sprintf("%d", v)
}

// Cold is unmarked; it may allocate freely.
func Cold() []uint64 {
	out := make([]uint64, 0, 8)
	return append(out, 1)
}
