// Package cold has no hotpath marks; allocations are unconstrained.
package cold

func Lots() []int {
	m := make([]int, 0, 10)
	m = append(m, 1)
	return m
}
