// Package hot2 exercises hotalloc's cross-package fact flow.
package hot2

import "allocdep"

//pclint:hotpath
func Tick(xs []int) []int {
	_ = allocdep.Flat(3)        // ok: proven allocation-free
	return allocdep.Grow(xs, 1) // want `hotpath Tick: call to Grow which allocates`
}
