// Package allocdep exports helpers for the hotalloc cross-package
// fixture; their allocation summaries travel as facts.
package allocdep

// Grow allocates: hot callers in other packages are flagged through its
// fact summary.
func Grow(xs []int, v int) []int {
	return append(xs, v)
}

// Flat is allocation-free.
func Flat(x int) int { return x + 1 }
