// Package hotalloc enforces the steady-state zero-allocation discipline
// on functions marked //pclint:hotpath: the event-clock and ring-buffer
// fast paths that PR 4 and PR 6 built free lists for. Inside a hotpath
// function it flags every allocating construct the scanner recognizes —
// growing appends, make/new, composite and closure literals, string
// concatenation and copies, fmt calls, interface boxing — and every call
// to a module function whose fact summary says it allocates, so the
// discipline holds transitively across package boundaries.
//
// An append dominated by a len/cap capacity check is accepted as
// non-growing. Deliberate cold paths (free-list refills, first-use
// growth) are waived site-by-site with `//pclint:allow hotalloc <reason>`;
// a waiver also prunes the site from the function's exported summary, so
// the vouching extends to callers. Allocations in functions the module
// calls but does not compile (the standard library) are invisible —
// container/heap and friends must be waived or avoided by hand.
package hotalloc

import (
	"go/ast"
	"go/types"

	"powercontainers/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocations (and calls to allocating module functions) inside " +
		"//pclint:hotpath functions",
	Run: run,
}

func run(pass *analysis.Pass) error {
	own := pass.Facts.Pkg(pass.Pkg.Path())
	if own == nil {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := analysis.FuncKey(obj)
			if !own.Funcs[key].Hotpath {
				continue
			}
			checkHot(pass, fd, obj)
		}
	}
	return nil
}

func checkHot(pass *analysis.Pass, fd *ast.FuncDecl, self *types.Func) {
	info := pass.TypesInfo
	for _, a := range analysis.AllocScan(fd.Body, info) {
		pass.Reportf(a.Pos, "hotpath %s: %s", fd.Name.Name, a.Desc)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(call, info)
		if fn == nil || fn == self {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			return true // already reported by the direct scan
		}
		if ff, ok := pass.Facts.FuncFact(fn); ok && len(ff.Allocs) > 0 {
			pass.Reportf(call.Pos(), "hotpath %s: call to %s which allocates: %s",
				fd.Name.Name, fn.Name(), ff.Allocs[0].What)
		}
		return true
	})
}
