package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

const guardSrc = `package p

type I interface{ M() }

func f1(h I, ok bool) {
	probe("top")
	if h != nil {
		probe("pos")
	} else {
		probe("pos-else")
	}
	if h != nil && ok {
		probe("and")
	}
	if h == nil || ok {
		probe("or")
	}
}

func f2(h I) {
	if h == nil {
		probe("neg-then")
		return
	}
	probe("after-return")
	g := func() { probe("closure") }
	g()
}

func probe(string) {}
`

// collectProbeFacts maps each probe label to the facts in scope at its
// call site.
func collectProbeFacts(t *testing.T) map[string][]Fact {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", guardSrc, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]Fact{}
	WalkWithFacts(f, func(n ast.Node, facts []Fact) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "probe" || len(call.Args) != 1 {
			return
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return
		}
		label, err := strconv.Unquote(lit.Value)
		if err != nil {
			t.Fatalf("bad probe label %s: %v", lit.Value, err)
		}
		got[label] = append([]Fact(nil), facts...)
	})
	return got
}

func TestNilGuarded(t *testing.T) {
	facts := collectProbeFacts(t)
	cases := []struct {
		label string
		want  bool
	}{
		{"top", false},
		{"pos", true},       // inside `if h != nil`
		{"pos-else", false}, // the else branch sees h == nil
		{"neg-then", false}, // inside `if h == nil`
		{"after-return", true},
		{"and", true}, // `h != nil && ok` conjunct
		{"or", false}, // `h == nil || ok` establishes nothing
	}
	for _, c := range cases {
		fs, ok := facts[c.label]
		if !ok {
			t.Fatalf("probe %q not visited", c.label)
		}
		if got := NilGuarded(fs, "h"); got != c.want {
			t.Errorf("NilGuarded at %q = %v, want %v (facts: %d)", c.label, got, c.want, len(fs))
		}
	}
	// The closure is created after the terminating `if h == nil { return }`
	// and inherits that fact.
	if fs, ok := facts["closure"]; !ok {
		t.Fatal("closure probe not visited")
	} else if !NilGuarded(fs, "h") {
		t.Error("closure did not inherit the creation-site nil guard")
	}
}

func TestFactIdentNames(t *testing.T) {
	facts := collectProbeFacts(t)
	names := FactIdentNames(facts["and"])
	for _, want := range []string{"h", "ok"} {
		if !names[want] {
			t.Errorf("FactIdentNames at \"and\" missing %q (got %v)", want, names)
		}
	}
	if names["probe"] {
		t.Error("FactIdentNames leaked the call identifier")
	}
}
