package analysis

import (
	"fmt"
	"strings"
)

// Unit is a physical dimension in the repo's quantity vocabulary, tracked
// as integer exponents over three bases — energy (J), time (Seconds),
// event counts (Cycles) — plus a decimal scale exponent that separates
// same-dimension units of different magnitude (mJ vs J).
//
// The derived suffixes resolve as:
//
//	W  = J/Seconds        (energy rate)
//	Hz = Cycles/Seconds   (event rate)
//	mJ = J × 10⁻³
//
// The zero Unit is dimensionless: untyped constants and unsuffixed scalars
// multiply freely without changing a quantity's dimension.
type Unit struct {
	Energy int // exponent of J
	Time   int // exponent of Seconds
	Count  int // exponent of Cycles
	Scale  int // decimal exponent relative to the base unit (mJ = -3)
}

// Dimensionless reports whether the unit is the neutral scalar unit.
func (u Unit) Dimensionless() bool { return u == Unit{} }

// Mul returns the unit of a product of quantities.
func (u Unit) Mul(v Unit) Unit {
	return Unit{u.Energy + v.Energy, u.Time + v.Time, u.Count + v.Count, u.Scale + v.Scale}
}

// Div returns the unit of a quotient of quantities.
func (u Unit) Div(v Unit) Unit {
	return Unit{u.Energy - v.Energy, u.Time - v.Time, u.Count - v.Count, u.Scale - v.Scale}
}

// baseUnits maps each suffix of the grammar to its resolved dimension.
var baseUnits = map[string]Unit{
	"J":       {Energy: 1},
	"mJ":      {Energy: 1, Scale: -3},
	"W":       {Energy: 1, Time: -1},
	"Seconds": {Time: 1},
	"Cycles":  {Count: 1},
	"Hz":      {Count: 1, Time: -1},
}

// String renders the unit with the grammar's names where possible
// (J, mJ, W, Seconds, Cycles, Hz) and as an explicit product otherwise.
func (u Unit) String() string {
	for name, base := range baseUnits {
		if u == base {
			return name
		}
	}
	if u.Dimensionless() {
		return "dimensionless"
	}
	// Prefer a W- or Hz-based spelling when the time exponent is absorbed
	// by a rate unit (e.g. W*Seconds^... forms read better than J*...).
	var parts []string
	add := func(name string, exp int) {
		switch {
		case exp == 0:
		case exp == 1:
			parts = append(parts, name)
		default:
			parts = append(parts, fmt.Sprintf("%s^%d", name, exp))
		}
	}
	add("J", u.Energy)
	add("Seconds", u.Time)
	add("Cycles", u.Count)
	if u.Scale != 0 {
		parts = append(parts, fmt.Sprintf("x10^%d", u.Scale))
	}
	if len(parts) == 0 {
		return "dimensionless"
	}
	return strings.Join(parts, "*")
}

// unitSuffixes is the grammar in longest-match-first order. "mJ" must be
// tried before "J" so that an explicit milli suffix wins where it applies.
var unitSuffixes = []string{"Cycles", "Seconds", "mJ", "Hz", "W", "J"}

// UnitFromName infers a declaration's unit from the trailing suffix of its
// identifier, per the repo naming convention (EnergyJ, powerW, tickSeconds,
// elapsedCycles, FreqHz). A suffix only matches at a word boundary: the
// character before it must be a lowercase letter, a digit, or an
// underscore (so GHz — a scaled unit — and SandyBridge stay unitless, and
// acronym tails like "...MW" are not misread).
//
// The "mJ" suffix is stricter: because English words ending in 'm'
// (cumJ = *cumulative* joules) collide with a lowercase boundary, mJ is
// recognized only after an underscore or at the start of the name
// (energy_mJ, mJ). Everything else spells milli-joules with an explicit
// `// unit: mJ` override.
func UnitFromName(name string) (Unit, bool) {
	for _, suf := range unitSuffixes {
		if !strings.HasSuffix(name, suf) {
			continue
		}
		if len(name) == len(suf) {
			// A bare "J"/"W"/"Seconds"/... identifier is its unit.
			return baseUnits[suf], true
		}
		b := name[len(name)-len(suf)-1]
		if suf == "mJ" {
			if b == '_' {
				return baseUnits[suf], true
			}
			continue
		}
		if b == '_' || b >= '0' && b <= '9' || b >= 'a' && b <= 'z' {
			return baseUnits[suf], true
		}
	}
	return Unit{}, false
}

// ParseUnit parses the argument of a `// unit:` override: a single suffix
// name, a product/quotient of them ("W*Seconds", "J/Seconds"), "1" for an
// explicit dimensionless quantity, or "none" to opt an unfortunately
// suffixed identifier out of unit checking entirely.
//
// The second result distinguishes "none" (false: no unit, stop inferring)
// from a real unit (true).
func ParseUnit(s string) (Unit, bool, error) {
	s = strings.TrimSpace(s)
	if s == "none" {
		return Unit{}, false, nil
	}
	u := Unit{}
	rest := s
	div := false
	for rest != "" {
		i := strings.IndexAny(rest, "*/")
		var tok string
		if i < 0 {
			tok, rest = rest, ""
		} else {
			tok = rest[:i]
		}
		tok = strings.TrimSpace(tok)
		base, ok := baseUnits[tok]
		if !ok && tok != "1" {
			return Unit{}, false, fmt.Errorf("unknown unit %q (want J, mJ, W, Seconds, Cycles, Hz, 1, or none)", tok)
		}
		if div {
			u = u.Div(base)
		} else {
			u = u.Mul(base)
		}
		if i >= 0 {
			div = rest[i] == '/'
			rest = rest[i+1:]
			if strings.TrimSpace(rest) == "" {
				return Unit{}, false, fmt.Errorf("trailing operator in unit %q", s)
			}
		}
	}
	return u, true, nil
}
