// Package analysistest runs a pclint analyzer over a fixture package under
// testdata/src and checks its (suppression-filtered) diagnostics against
// `// want "regexp"` expectations embedded in the fixture, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages may import the standard library (resolved through the
// go command's export data) and sibling fixture packages under the same
// testdata/src root (type-checked from source).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"powercontainers/internal/analysis"
	"powercontainers/internal/analysis/pclint"
)

// Run loads testdata/src/<pkg> (relative to the test's working directory,
// i.e. the analyzer package), gathers facts for it and every sibling
// fixture package it imports (in dependency order, mirroring the vettool
// driver), runs the analyzer over it with those facts, applies the
// //pclint:allow suppression filter with the full suite's analyzer names —
// including stale-directive detection scoped to the analyzer under test —
// and compares the surviving diagnostics against the fixture's `// want`
// expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	ld, err := newLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	fset, files, typesPkg, info, err := ld.loadTarget(pkg)
	if err != nil {
		t.Fatalf("analysistest: load %s: %v", pkg, err)
	}

	diags, err := analysis.RunAnalyzers(fset, files, typesPkg, info, ld.facts, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s on %s: %v", a.Name, pkg, err)
	}
	g := ld.gathered[pkg]
	diags = append(diags, g.diags...)
	// Only the analyzer under test ran, so only its directives can be
	// judged stale; the real driver passes the whole suite here.
	ran := func(name string) bool { return name == a.Name }
	diags = analysis.FilterStale(fset, files, diags, analysis.KnownSet(pclint.Suite()), ran, g.used)
	checkExpectations(t, fset, files, diags)
}

// checkExpectations matches diagnostics against `// want` comments by
// file and line.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type loc struct {
		file string
		line int
	}
	remaining := make(map[loc][]analysis.Diagnostic)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		k := loc{posn.Filename, posn.Line}
		remaining[k] = append(remaining[k], d)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, perr := wantPatterns(c.Text)
				if perr != nil {
					t.Errorf("%s: %v", fset.Position(c.Pos()), perr)
					continue
				}
				if len(patterns) == 0 {
					continue
				}
				posn := fset.Position(c.Pos())
				k := loc{posn.Filename, posn.Line}
				for _, re := range patterns {
					matched := false
					for i, d := range remaining[k] {
						if re.MatchString(d.Message) {
							remaining[k] = append(remaining[k][:i], remaining[k][i+1:]...)
							matched = true
							break
						}
					}
					if !matched {
						t.Errorf("%s: expected diagnostic matching %q, got none", posn, re)
					}
				}
			}
		}
	}
	var leftover []string
	for k, ds := range remaining {
		for _, d := range ds {
			leftover = append(leftover, fmt.Sprintf("%s:%d: unexpected diagnostic: %s: %s", k.file, k.line, d.Analyzer, d.Message))
		}
	}
	sort.Strings(leftover)
	for _, l := range leftover {
		t.Error(l)
	}
}

// wantPatterns extracts the `// want "re" `+"`re`"+` ...` expectations
// embedded anywhere in a comment's text (so a want may trail a
// //pclint:allow directive on the same line).
func wantPatterns(comment string) ([]*regexp.Regexp, error) {
	idx := strings.Index(comment, "// want ")
	if idx < 0 {
		return nil, nil
	}
	rest := strings.TrimSpace(comment[idx+len("// want "):])
	var out []*regexp.Regexp
	for rest != "" {
		var lit string
		switch rest[0] {
		case '"':
			end := -1
			for i := 1; i < len(rest); i++ {
				if rest[i] == '\\' {
					i++
					continue
				}
				if rest[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in want expectation: %s", rest)
			}
			unq, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want expectation %s: %v", rest[:end+1], err)
			}
			lit, rest = unq, strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in want expectation: %s", rest)
			}
			lit, rest = rest[1:1+end], strings.TrimSpace(rest[2+end:])
		default:
			return nil, fmt.Errorf("want expectation must be a quoted regexp, got: %s", rest)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", lit, err)
		}
		out = append(out, re)
	}
	return out, nil
}

// loader type-checks fixture packages, resolving imports first against
// sibling fixture directories and then against the standard library.
type loader struct {
	src      string
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	exports  map[string]string // std package path → export data file
	gcImp    types.Importer
	facts    *analysis.FactStore
	gathered map[string]gatherResult
}

// gatherResult is what GatherFacts produced for one fixture package.
type gatherResult struct {
	used  map[analysis.DirectiveKey]bool
	diags []analysis.Diagnostic
}

func newLoader(src string) (*loader, error) {
	ld := &loader{
		src:      src,
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*types.Package),
		facts:    analysis.NewFactStore(),
		gathered: make(map[string]gatherResult),
	}
	stdPaths, err := ld.scanStdImports()
	if err != nil {
		return nil, err
	}
	ld.exports, err = stdExportData(stdPaths)
	if err != nil {
		return nil, err
	}
	ld.gcImp = importer.ForCompiler(ld.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ld.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ld, nil
}

// scanStdImports walks the whole fixture tree and collects every import
// path that is not a sibling fixture package — those must come from the
// standard library.
func (ld *loader) scanStdImports() ([]string, error) {
	seen := make(map[string]bool)
	err := filepath.WalkDir(ld.src, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if fi, serr := os.Stat(filepath.Join(ld.src, p)); serr == nil && fi.IsDir() {
				continue // sibling fixture package
			}
			seen[p] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(seen))
	for p := range seen {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths, nil
}

func (ld *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if fi, err := os.Stat(filepath.Join(ld.src, path)); err == nil && fi.IsDir() {
		pkg, _, _, err := ld.typecheck(path)
		return pkg, err
	}
	return ld.gcImp.Import(path)
}

func (ld *loader) loadTarget(path string) (*token.FileSet, []*ast.File, *types.Package, *types.Info, error) {
	pkg, files, info, err := ld.typecheck(path)
	return ld.fset, files, pkg, info, err
}

func (ld *loader) typecheck(path string) (*types.Package, []*ast.File, *types.Info, error) {
	dir := filepath.Join(ld.src, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{
		Importer: ld,
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	info := analysis.NewTypesInfo()
	pkg, err := tc.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	ld.pkgs[path] = pkg
	// Import recursion type-checks dependencies before their importers,
	// so gathering here sees every dependency's facts already in the
	// store — the same order the vettool driver gets from the build
	// system.
	facts, used, gdiags := analysis.GatherFacts(ld.fset, files, pkg, info, ld.facts)
	ld.facts.Add(facts)
	ld.gathered[path] = gatherResult{used: used, diags: gdiags}
	return pkg, files, info, nil
}

var (
	stdExportMu    sync.Mutex
	stdExportCache = map[string]map[string]string{}
)

// stdExportData compiles the named standard-library packages (and their
// dependencies) via the go command and returns package path → export data
// file. Results are cached per path set for the test process.
func stdExportData(paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	key := strings.Join(paths, ",")
	stdExportMu.Lock()
	defer stdExportMu.Unlock()
	if m, ok := stdExportCache[key]; ok {
		return m, nil
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	m := make(map[string]string)
	dec := json.NewDecoder(&out)
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	stdExportCache[key] = m
	return m, nil
}
