package analysis

import "testing"

func TestUnitFromName(t *testing.T) {
	cases := []struct {
		name string
		want string
		ok   bool
	}{
		{"EnergyJ", "J", true},
		{"totalJ", "J", true},
		{"powerW", "W", true},
		{"BudgetW", "W", true},
		{"tickSeconds", "Seconds", true},
		{"elapsedCycles", "Cycles", true},
		{"FreqHz", "Hz", true},
		{"J", "J", true},
		{"W", "W", true},
		{"energy_mJ", "mJ", true},
		{"mJ", "mJ", true},
		{"x2J", "J", true},
		// Boundary rules: uppercase boundaries and acronym tails do not
		// match, and 'm'-ending words are cumulative joules, not milli.
		{"GHz", "", false},
		{"SandyBridge", "", false},
		{"cumJ", "J", true}, // ...mJ needs an underscore; plain J applies
		{"CumJ", "J", true},
		{"MW", "", false},
		{"Raw", "", false},
		{"seconds", "", false}, // lowercase: not the suffix grammar
		{"count", "", false},
	}
	for _, c := range cases {
		u, ok := UnitFromName(c.name)
		if ok != c.ok {
			t.Errorf("UnitFromName(%q) ok = %v, want %v", c.name, ok, c.ok)
			continue
		}
		if ok && u.String() != c.want {
			t.Errorf("UnitFromName(%q) = %s, want %s", c.name, u, c.want)
		}
	}
}

func TestUnitAlgebra(t *testing.T) {
	J := baseUnits["J"]
	W := baseUnits["W"]
	s := baseUnits["Seconds"]
	hz := baseUnits["Hz"]
	cyc := baseUnits["Cycles"]
	if got := J.Div(s); got != W {
		t.Errorf("J/Seconds = %s, want W", got)
	}
	if got := W.Mul(s); got != J {
		t.Errorf("W*Seconds = %s, want J", got)
	}
	if got := cyc.Div(s); got != hz {
		t.Errorf("Cycles/Seconds = %s, want Hz", got)
	}
	if got := J.Div(J); !got.Dimensionless() {
		t.Errorf("J/J = %s, want dimensionless", got)
	}
	mJ := baseUnits["mJ"]
	if mJ == J {
		t.Error("mJ must differ from J by scale")
	}
}

func TestParseUnit(t *testing.T) {
	for _, c := range []struct {
		in     string
		want   string
		isUnit bool
		err    bool
	}{
		{"J", "J", true, false},
		{"W*Seconds", "J", true, false},
		{"J/Seconds", "W", true, false},
		{"Cycles/Seconds", "Hz", true, false},
		{"1", "dimensionless", true, false},
		{"none", "", false, false},
		{"furlongs", "", false, true},
		{"J/", "", false, true},
	} {
		u, isUnit, err := ParseUnit(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseUnit(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if isUnit != c.isUnit {
			t.Errorf("ParseUnit(%q) isUnit = %v, want %v", c.in, isUnit, c.isUnit)
		}
		if isUnit && u.String() != c.want {
			t.Errorf("ParseUnit(%q) = %s, want %s", c.in, u, c.want)
		}
	}
}
