package stream_test

import (
	"bytes"
	"testing"

	"powercontainers/internal/stream"
)

// FuzzDecodeCheckpoint feeds arbitrary bytes through the checkpoint
// decoder and pins the invariant behind the durable store's fallback
// ladder: DecodeCheckpoint either rejects the input with an error or
// returns a checkpoint whose re-encoding decodes to the identical
// canonical form — accepted checkpoints are stable, never half-parsed.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":2,"tick":3,"t":300000000,"records":7,"containers_seen":1,"live":[{"id":0}],"attributed":{},"modeled":{}}`))
	f.Add([]byte(`{"version":2,"tick":-1}`))
	f.Add([]byte(`{"version":99,"tick":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := stream.DecodeCheckpoint(data)
		if err != nil {
			return
		}
		enc := stream.EncodeCheckpoint(cp)
		cp2, err := stream.DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("accepted checkpoint re-decode failed: %v\nencoded: %s", err, enc)
		}
		if !bytes.Equal(enc, stream.EncodeCheckpoint(cp2)) {
			t.Fatalf("re-encoding not stable:\n%s\n%s", enc, stream.EncodeCheckpoint(cp2))
		}
	})
}
