package stream_test

import (
	"bytes"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/model"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// TestCheckpointReplayReproducesStream is the exact-replay contract: for
// several cut points, checkpointing a streaming run at the cut, encoding
// and decoding the checkpoint, restoring it into a fresh engine over a
// freshly built identically-seeded machine (ReplayTo), and continuing to
// the horizon must reproduce the remaining record stream byte-for-byte —
// same canonical encodings, same SHA-256.
func TestCheckpointReplayReproducesStream(t *testing.T) {
	cases := []struct {
		name string
		cfg  stream.Config
		cuts []int
	}{
		{"default-window", stream.Config{Tick: 100 * sim.Millisecond}, []int{1, 17, 38}},
		// Resume around the attributed-ring eviction boundary: with an
		// 8-tick window, cut 7 checkpoints a not-yet-full ring, cut 8
		// an exactly-full one (the next append evicts), and cut 9 a
		// ring whose first slot has been folded into the prefix sum.
		{"eviction-boundary", stream.Config{Tick: 100 * sim.Millisecond, TickWindow: 8}, []int{7, 8, 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { testCheckpointReplay(t, tc.cfg, tc.cuts) })
	}
}

func testCheckpointReplay(t *testing.T, cfg stream.Config, cuts []int) {
	const seed = 31

	// Baseline: one uninterrupted streaming run collecting everything.
	base := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
	be := stream.New(stream.Sources{Eng: base.m.Eng, Fac: base.m.Fac, Meter: base.m.Chip, Scope: model.ScopePackage}, cfg)
	var baseCol stream.Collector
	be.Sink = &baseCol
	be.RunUntil(base.end())
	if len(baseCol.Records) == 0 {
		t.Fatal("baseline emitted no records")
	}

	for _, cut := range cuts {
		// Run a fresh bed to the cut and checkpoint there.
		bed := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
		e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, cfg)
		e.RunTicks(cut)
		enc := stream.EncodeCheckpoint(e.Checkpoint())
		cp, err := stream.DecodeCheckpoint(enc)
		if err != nil {
			t.Fatalf("cut %d: decode: %v", cut, err)
		}

		// Restore into a fresh engine over a fresh machine and continue.
		bed2 := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
		re, err := stream.ReplayTo(stream.Sources{Eng: bed2.m.Eng, Fac: bed2.m.Fac, Meter: bed2.m.Chip, Scope: model.ScopePackage}, cfg, cp)
		if err != nil {
			t.Fatalf("cut %d: ReplayTo: %v", cut, err)
		}
		var tail stream.Collector
		re.Sink = &tail
		re.RunUntil(bed2.end())

		// The remaining stream must match the uninterrupted run exactly.
		var want stream.Collector
		for _, r := range baseCol.Records {
			if r.Tick > cut {
				want.OnRecord(r)
			}
		}
		if got, exp := stream.HashRecords(tail.Records), stream.HashRecords(want.Records); got != exp {
			t.Fatalf("cut %d: restored tail SHA-256 %s, uninterrupted tail %s (%d vs %d records)",
				cut, got, exp, len(tail.Records), len(want.Records))
		}
		if !bytes.Equal(tail.Encode(), want.Encode()) {
			t.Fatalf("cut %d: restored tail encoding differs from uninterrupted run", cut)
		}
		// Final engine state agrees too.
		if re.Records() != be.Records() || re.CumAttributedJ() != be.CumAttributedJ() {
			t.Fatalf("cut %d: final state records=%d cum=%v, want records=%d cum=%v",
				cut, re.Records(), re.CumAttributedJ(), be.Records(), be.CumAttributedJ())
		}
	}
}

// TestReplayToRejectsForeignCheckpoint pins the divergence guard: a
// checkpoint replayed over a machine built from a different seed must be
// refused (the quiet replay's natural state cannot match).
func TestReplayToRejectsForeignCheckpoint(t *testing.T) {
	cfg := stream.Config{Tick: 100 * sim.Millisecond}
	bed := deployBed(t, core.ApproachRecalibrated, 31, workload.Stress{}, 0.5)
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, cfg)
	e.RunTicks(25)
	cp := e.Checkpoint()

	other := deployBed(t, core.ApproachRecalibrated, 32, workload.Stress{}, 0.5)
	if _, err := stream.ReplayTo(stream.Sources{Eng: other.m.Eng, Fac: other.m.Fac, Meter: other.m.Chip, Scope: model.ScopePackage}, cfg, cp); err == nil {
		t.Fatal("ReplayTo accepted a checkpoint from a differently-seeded run")
	}

	// A mismatched tick grid is rejected up front.
	bad := stream.Config{Tick: 70 * sim.Millisecond}
	third := deployBed(t, core.ApproachRecalibrated, 31, workload.Stress{}, 0.5)
	if _, err := stream.ReplayTo(stream.Sources{Eng: third.m.Eng, Fac: third.m.Fac, Meter: third.m.Chip, Scope: model.ScopePackage}, bad, cp); err == nil {
		t.Fatal("ReplayTo accepted a checkpoint off the configured tick grid")
	}
}

func TestDecodeCheckpointValidates(t *testing.T) {
	if _, err := stream.DecodeCheckpoint([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := stream.DecodeCheckpoint([]byte(`{"version":99}`)); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := stream.DecodeCheckpoint([]byte(`{"version":1}`)); err == nil {
		t.Fatal("superseded version accepted")
	}
	if _, err := stream.DecodeCheckpoint([]byte(`{"version":2,"tick":-1}`)); err == nil {
		t.Fatal("negative tick accepted")
	}
}

// auditProbe records AuditSink callbacks.
type auditProbe struct {
	checkpoints []int
	violations  []string
}

func (p *auditProbe) OnCheckpoint(tick int, t sim.Time, encodedBytes int) {
	p.checkpoints = append(p.checkpoints, tick)
	if encodedBytes <= 0 {
		panic("empty checkpoint encoding")
	}
}
func (p *auditProbe) OnStreamViolation(check string, t sim.Time, detail string) {
	p.violations = append(p.violations, check)
}

// TestAutomaticCheckpoints pins the periodic snapshot path: with
// CheckpointEvery set, the engine retains its latest checkpoint, fires
// the OnCheckpoint audit hook at each boundary, and the retained
// checkpoint is itself restorable.
func TestAutomaticCheckpoints(t *testing.T) {
	bed := deployBed(t, core.ApproachRecalibrated, 33, workload.Stress{}, 0.5)
	probe := &auditProbe{}
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond, CheckpointEvery: 10})
	e.Audit = probe
	e.RunTicks(35)
	if e.LastCheckpoint() == nil || e.LastCheckpoint().Tick != 30 {
		t.Fatalf("LastCheckpoint = %+v, want tick 30", e.LastCheckpoint())
	}
	if len(probe.checkpoints) != 3 || probe.checkpoints[0] != 10 || probe.checkpoints[2] != 30 {
		t.Fatalf("OnCheckpoint ticks = %v, want [10 20 30]", probe.checkpoints)
	}
	if len(probe.violations) != 0 {
		t.Fatalf("stream violations on a clean run: %v", probe.violations)
	}

	bed2 := deployBed(t, core.ApproachRecalibrated, 33, workload.Stress{}, 0.5)
	re, err := stream.ReplayTo(stream.Sources{Eng: bed2.m.Eng, Fac: bed2.m.Fac, Meter: bed2.m.Chip, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond, CheckpointEvery: 10}, e.LastCheckpoint())
	if err != nil {
		t.Fatalf("replaying the automatic checkpoint: %v", err)
	}
	if re.Tick() != 30 {
		t.Fatalf("restored engine at tick %d, want 30", re.Tick())
	}
}
