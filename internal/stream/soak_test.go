package stream_test

import (
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/model"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// longBed deploys a GAE machine with an open loop running to the given
// horizon — the soak/bench variant of deployBed. Every request is filed
// under a tenant/service derived from its type, so the soak exercises
// the hierarchy record path and (under PC_AUDIT=1) the conservation
// checker alongside the flat machinery.
func longBed(tb testing.TB, seed uint64, until sim.Time) testbed {
	tb.Helper()
	m, err := experiments.Assembly{}.NewMachine(cpu.SandyBridge, core.ApproachRecalibrated, seed)
	if err != nil {
		tb.Fatal(err)
	}
	dep := workload.GAE{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	m.Fac.AttachHierarchy(core.NewHierarchy())
	gen.ServiceFor = func(reqType string) (string, string) {
		if i := strings.IndexByte(reqType, '/'); i >= 0 {
			return reqType[:i], reqType[i+1:]
		}
		return "misc", reqType
	}
	gen.RunOpenLoop(0.4*experiments.PeakRate(m.K.Spec, dep), until, m.Rng.Fork(13))
	return testbed{m: m, gen: gen, t1: until}
}

// TestStreamSoak runs the streaming engine continuously for 30 virtual
// seconds of GAE traffic with auditing and automatic checkpoints on: no
// stream violations, a checkpoint at every boundary, a system record
// every tick, containers retiring throughout, and the ring memory bound
// holding (retained never exceeds capacity). This is the long-running
// stability test the CI race job exercises.
func TestStreamSoak(t *testing.T) {
	const horizon = 30 * sim.Second
	bed := longBed(t, 51, horizon-2*sim.Second)
	probe := &auditProbe{}
	hasher := stream.NewHasher()
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond, CheckpointEvery: 50})
	e.Audit = probe
	done, tenantRecs := 0, 0
	e.Sink = stream.Tee{hasher, sinkFunc(func(r stream.Record) {
		if r.Kind == stream.KindContainer && r.Done {
			done++
		}
		if r.Kind == stream.KindTenant {
			tenantRecs++
		}
	})}
	e.RunUntil(horizon)

	ticks := int(horizon / (100 * sim.Millisecond))
	if e.Tick() != ticks {
		t.Fatalf("engine at tick %d, want %d", e.Tick(), ticks)
	}
	if len(probe.violations) != 0 {
		t.Fatalf("stream violations during soak: %v", probe.violations)
	}
	if want := ticks / 50; len(probe.checkpoints) != want {
		t.Fatalf("%d automatic checkpoints, want %d", len(probe.checkpoints), want)
	}
	if hasher.Count() == 0 || done == 0 {
		t.Fatalf("soak emitted %d records with %d container retirements", hasher.Count(), done)
	}
	if tenantRecs == 0 {
		t.Fatal("hierarchical soak emitted no tenant records")
	}
	// Under PC_AUDIT=1 this runs the hierarchy conservation checker over
	// the whole soak; without an auditor it is a no-op.
	if err := bed.m.FinalizeAudit(); err != nil {
		t.Fatalf("end-of-soak audit: %v", err)
	}
	// The engine stayed within its configured memory bounds.
	if got, bound := e.DriftWindow(), e.Config().DriftWindow; len(got) > bound {
		t.Fatalf("drift window grew to %d pairs, bound %d", len(got), bound)
	}
	if e.Drained() {
		// The open loop stops before the horizon, but chip maintenance
		// and recalibration reschedule forever.
		t.Fatal("engine reports drained with periodic events pending")
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(stream.Record)

func (f sinkFunc) OnRecord(r stream.Record) { f(r) }

// BenchmarkStreamIngest measures steady-state streaming cost: virtual
// ticks consumed per wall second, meter samples ingested per wall second,
// and allocations per tick. scripts/bench_stream.sh parses this into
// BENCH_stream.json.
func BenchmarkStreamIngest(b *testing.B) {
	bed := longBed(b, 53, sim.Time(1)<<62)
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond})
	e.Sink = stream.NewHasher()
	// Warm past model bring-up so the benchmark sees steady state.
	e.RunTicks(50)
	start := e.Records()
	var samples int64
	e.Sink = stream.Tee{sinkFunc(func(r stream.Record) {
		if r.Kind == stream.KindSystem {
			samples += int64(r.Samples)
		}
	})}
	b.ReportAllocs()
	b.ResetTimer()
	e.RunTicks(b.N)
	b.StopTimer()
	if e.Records() == start {
		b.Fatal("benchmark ingested nothing")
	}
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "ticks/sec")
		b.ReportMetric(float64(samples)/sec, "samples/sec")
	}
	b.ReportMetric(float64(samples)/float64(b.N), "samples/tick")
}
