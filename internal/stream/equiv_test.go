package stream_test

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"strconv"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// testbed is one deployed machine + workload, the shared setup of the
// batch and streaming arms. Both arms must execute the identical event
// schedule; only the driving (one RunUntil vs tick-by-tick consumption)
// differs.
type testbed struct {
	m   *experiments.Machine
	gen *server.LoadGen
	t1  sim.Time // load stops here; runs are driven to t1+3s
}

const (
	equivWarmup = 2 * sim.Second
	equivWindow = 4 * sim.Second
)

// deployBed replicates experiments.RunOn's deployment sequence (same rng
// fork points, same load schedule) without executing the run.
func deployBed(t testing.TB, approach core.Approach, seed uint64, wl workload.Workload, rateFrac float64) testbed {
	t.Helper()
	m, err := experiments.Assembly{}.NewMachine(cpu.SandyBridge, approach, seed)
	if err != nil {
		t.Fatal(err)
	}
	dep := wl.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	t1 := equivWarmup + equivWindow
	gen.RunOpenLoop(rateFrac*experiments.PeakRate(m.K.Spec, dep), t1, m.Rng.Fork(13))
	return testbed{m: m, gen: gen, t1: t1}
}

func (b testbed) end() sim.Time { return b.t1 + 3*sim.Second }

// meterFor selects the stream engine's measured tap.
func meterFor(b testbed, which string) (power.Meter, model.FitScope) {
	switch which {
	case "chip":
		return b.m.Chip, model.ScopePackage
	case "wattsup":
		return b.m.Wattsup, model.ScopeMachine
	default:
		return nil, model.ScopeMachine
	}
}

// containerDigest canonically encodes every container's full attribution
// state and hashes it: equal digests mean bit-identical attribution.
func containerDigest(fac *core.Facility) string {
	h := sha256.New()
	buf := make([]byte, 0, 256)
	for i := 0; i < fac.NumContainers(); i++ {
		c := fac.ContainerAt(i)
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(c.ID), 10)
		buf = append(buf, ',')
		buf = append(buf, c.Label...)
		buf = append(buf, ',')
		buf = append(buf, c.Client...)
		buf = strconv.AppendInt(append(buf, ','), int64(c.CPUTime), 10)
		buf = strconv.AppendFloat(append(buf, ','), c.CPUEnergyJ, 'g', -1, 64)
		buf = strconv.AppendFloat(append(buf, ','), c.ChipEnergyJ, 'g', -1, 64)
		buf = strconv.AppendFloat(append(buf, ','), c.DeviceEnergyJ, 'g', -1, 64)
		if c.Released {
			buf = append(buf, ",r"...)
		}
		buf = append(buf, '\n')
		h.Write(buf)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestStreamMatchesBatch is the batch-equivalence property harness: for
// seeded deterministic traces varying attribution approach, workload
// (container population), load level, streaming tick (sample rate), and
// the engine's measured tap (meter delay: 1ms chip vs 1.2s wattsup), the
// streaming engine's attribution must be bit-identical to the batch path
// — a single RunUntil over the identical machine. Under recalibration the
// tick must sit on the recalibration grid (see the package comment);
// without it any tick is exact. The drift refit additionally reproduces a
// batch fit over its retained window bit-for-bit until the first
// eviction, and within 1e-9 after.
func TestStreamMatchesBatch(t *testing.T) {
	cases := []struct {
		name     string
		approach core.Approach
		wl       workload.Workload
		rate     float64
		tick     sim.Time
		meter    string
		seed     uint64
	}{
		{"recal-aligned-chip", core.ApproachRecalibrated, workload.Stress{}, 0.5, 100 * sim.Millisecond, "chip", 21},
		{"recal-2x-tick-wattsup", core.ApproachRecalibrated, workload.GAE{}, 0.4, 200 * sim.Millisecond, "wattsup", 22},
		{"chipshare-offgrid-tick", core.ApproachChipShare, workload.Stress{}, 0.6, 30 * sim.Millisecond, "chip", 23},
		{"coreonly-no-meter", core.ApproachCoreOnly, workload.Stress{}, 0.5, 100 * sim.Millisecond, "", 24},
		{"chipshare-slow-meter", core.ApproachChipShare, workload.GAE{}, 0.3, 500 * sim.Millisecond, "wattsup", 25},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Batch arm: one uninterrupted run to the horizon.
			batch := deployBed(t, tc.approach, tc.seed, tc.wl, tc.rate)
			batch.m.Eng.RunUntil(batch.end())
			wantDigest := containerDigest(batch.m.Fac)

			// Streaming arm: identical machine, tick-by-tick consumption.
			bed := deployBed(t, tc.approach, tc.seed, tc.wl, tc.rate)
			meter, scope := meterFor(bed, tc.meter)
			e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: meter, Scope: scope},
				stream.Config{Tick: tc.tick})
			var col stream.Collector
			e.Sink = &col
			e.RunUntil(bed.end())

			if got := containerDigest(bed.m.Fac); got != wantDigest {
				t.Fatalf("streaming attribution diverged from batch: digest %s vs %s", got, wantDigest)
			}
			if len(col.Records) == 0 {
				t.Fatal("stream emitted no records")
			}
			// The streamed ledger must reconcile with the facility's full
			// accounting (summation order differs, so 1e-9 relative).
			want := bed.m.Fac.TotalAccountedEnergyJ()
			if diff := math.Abs(e.CumAttributedJ() - want); diff > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("streamed ledger %g J vs accounted %g J (diff %g)", e.CumAttributedJ(), want, diff)
			}
			checkDriftWindowEquivalence(t, bed, e, scope)

			// Both arms completed the same requests.
			if bg, sg := len(batch.gen.Completed()), len(bed.gen.Completed()); bg != sg || bg == 0 {
				t.Fatalf("completed requests: batch %d, stream %d", bg, sg)
			}
		})
	}
}

// checkDriftWindowEquivalence pins the stream-level incremental-fit
// property: the engine's windowed drift refit equals a from-scratch batch
// fit over the same retained pairs — bit-identically before any eviction,
// within 1e-9 relative after (Gram Remove residue).
func checkDriftWindowEquivalence(t *testing.T, bed testbed, e *stream.Engine, scope model.FitScope) {
	t.Helper()
	got, ok := e.DriftFit()
	pairs := e.DriftWindow()
	if !ok {
		if len(pairs) >= 64 {
			t.Fatalf("drift fit unavailable despite %d pairs", len(pairs))
		}
		return
	}
	want, err := model.Fit(pairs, model.FitOptions{
		Scope:            scope,
		IncludeChipShare: bed.m.Fac.Coeff.IncludesChipShare,
		IdleW:            got.IdleW,
		Base:             bed.m.Fac.Coeff,
	})
	if err != nil {
		t.Fatalf("batch fit over drift window: %v", err)
	}
	if e.DriftEvictions() == 0 {
		gv, wv := got.Vector(), want.Vector()
		for i := range gv {
			if gv[i] != wv[i] {
				t.Fatalf("pre-eviction drift coefficient %d not bit-identical: %v vs %v", i, gv[i], wv[i])
			}
		}
		return
	}
	// After evictions, Remove residue perturbs the normal equations at
	// rounding level; the solve amplifies it by the conditioning of the
	// normal matrix, so individual coefficients are the wrong scale to
	// bound. The well-conditioned equivalent claim is prediction-space:
	// the incremental fit and the batch fit must model every retained
	// pair's power within 1e-9 relative of each other.
	for i, s := range pairs {
		var gp, wp float64
		if scope == model.ScopeMachine {
			gp, wp = got.Estimate(s.M), want.Estimate(s.M)
		} else {
			gp, wp = got.EstimateCPU(s.M), want.EstimateCPU(s.M)
		}
		if math.Abs(gp-wp) > 1e-9*(1+math.Abs(wp)) {
			t.Fatalf("post-eviction drift prediction for pair %d beyond 1e-9: %v vs %v (evictions=%d)", i, gp, wp, e.DriftEvictions())
		}
	}
}
