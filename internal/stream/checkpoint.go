package stream

import (
	"bytes"
	"encoding/json"
	"fmt"

	"powercontainers/internal/linalg"
	"powercontainers/internal/model"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
)

// CheckpointVersion identifies the checkpoint encoding. Version 2 added
// the hierarchy roll-up cursors (svc_last/ten_last).
const CheckpointVersion = 2

// ContainerState is one live container's cursor in a checkpoint.
type ContainerState struct {
	ID      int      `json:"id"`
	LastJ   float64  `json:"last_j"`
	LastCPU sim.Time `json:"last_cpu"`
}

// Checkpoint is the engine's complete consumer-side state at a tick
// boundary. The simulation itself is not serialized: it is deterministic,
// so a restore rebuilds an identical machine and replays it quietly to
// the checkpoint time (ReplayTo), then swaps in the decoded consumer
// state. Every field round-trips exactly through JSON (float64 encodes as
// shortest-round-trip), so Checkpoint → Encode → Decode → restore →
// continue produces the byte-identical record stream an uninterrupted run
// produces — the contract pinned by the checkpoint-replay tests.
type Checkpoint struct {
	Version int      `json:"version"`
	Tick    int      `json:"tick"`
	T       sim.Time `json:"t"`
	Records int64    `json:"records"`
	CumJ    float64  `json:"cum_j"`

	MeterSeen      int              `json:"meter_seen"`
	ContainersSeen int              `json:"containers_seen"`
	Live           []ContainerState `json:"live"`

	// Hierarchy roll-up cursors, indexed by registration order (absent on
	// flat runs).
	SvcLast []float64 `json:"svc_last,omitempty"`
	TenLast []float64 `json:"ten_last,omitempty"`

	Measured   *stats.RingState `json:"measured,omitempty"`
	Attributed stats.RingState  `json:"attributed"`
	Modeled    stats.RingState  `json:"modeled"`

	MPCoeff model.Coefficients `json:"mp_coeff"`
	MPValid bool               `json:"mp_valid"`

	Delay      sim.Time           `json:"delay"`
	DelayKnown bool               `json:"delay_known"`
	Plan       model.FitPlan      `json:"plan"`
	PlanKnown  bool               `json:"plan_known"`
	Pairs      []model.CalSample  `json:"pairs,omitempty"`
	Evictions  int                `json:"evictions"`
	EvTotal    int64              `json:"ev_total"`
	Gram       *linalg.GramState  `json:"gram,omitempty"`
	Drift      model.Coefficients `json:"drift"`
	DriftOK    bool               `json:"drift_ok"`
	DriftErr   float64            `json:"drift_err"`
}

// Checkpoint captures the engine's consumer state. It is a pure read —
// taking a checkpoint never perturbs the stream. The Audit sink's
// OnCheckpoint hook fires with the encoded size.
func (e *Engine) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Version:        CheckpointVersion,
		Tick:           e.tick,
		T:              e.Now(),
		Records:        e.records,
		CumJ:           e.cumJ,
		MeterSeen:      e.meterSeen,
		ContainersSeen: e.containersSeen,
		Attributed:     e.attributed.State(),
		Modeled:        e.modeled.State(),
		MPCoeff:        e.mpCoeff,
		MPValid:        e.mpValid,
		Delay:          e.delay,
		DelayKnown:     e.delayKnown,
		Plan:           e.plan,
		PlanKnown:      e.planKnown,
		Evictions:      e.evictions,
		EvTotal:        e.evTotal,
		Drift:          e.drift,
		DriftOK:        e.driftOK,
		DriftErr:       e.driftErr,
	}
	if e.measured != nil {
		st := e.measured.State()
		cp.Measured = &st
	}
	for _, cc := range e.live {
		cp.Live = append(cp.Live, ContainerState{ID: cc.c.ID, LastJ: cc.lastJ, LastCPU: cc.lastCPU})
	}
	if len(e.svcLast) > 0 {
		cp.SvcLast = append([]float64(nil), e.svcLast...)
	}
	if len(e.tenLast) > 0 {
		cp.TenLast = append([]float64(nil), e.tenLast...)
	}
	if len(e.pairs) > 0 {
		cp.Pairs = append([]model.CalSample(nil), e.pairs...)
	}
	if e.gram != nil {
		st := e.gram.State()
		cp.Gram = &st
	}
	if e.Audit != nil {
		e.Audit.OnCheckpoint(cp.Tick, cp.T, len(EncodeCheckpoint(cp)))
	}
	return cp
}

// EncodeCheckpoint serializes a checkpoint. The encoding is deterministic
// (fixed field order, shortest-round-trip floats), so equal states encode
// to equal bytes — which is what lets ReplayTo verify a restore.
func EncodeCheckpoint(cp *Checkpoint) []byte {
	out, err := json.Marshal(cp)
	if err != nil {
		// Checkpoint contains only JSON-safe field types; Marshal cannot
		// fail unless a NaN leaks in, which the fold paths exclude.
		panic(fmt.Sprintf("stream: checkpoint encode: %v", err))
	}
	return out
}

// DecodeCheckpoint parses an encoded checkpoint and validates every
// structural invariant a truncated, bit-flipped, or hand-rolled payload
// can break. Semantic validation against the rebuilt machine (ring
// restores, container resolution) happens later in restore; everything
// checkable from the bytes alone is checked here, so a damaged
// checkpoint is refused with a clear error instead of failing deep
// inside a replay.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("stream: checkpoint decode: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	if cp.Tick < 0 || cp.T < 0 {
		return nil, fmt.Errorf("stream: checkpoint at negative tick %d (t=%d)", cp.Tick, cp.T)
	}
	if cp.Records < 0 {
		return nil, fmt.Errorf("stream: checkpoint with negative record count %d", cp.Records)
	}
	if cp.MeterSeen < 0 || cp.ContainersSeen < 0 {
		return nil, fmt.Errorf("stream: checkpoint with negative cursors (meter %d, containers %d)", cp.MeterSeen, cp.ContainersSeen)
	}
	if len(cp.Live) > cp.ContainersSeen {
		return nil, fmt.Errorf("stream: checkpoint holds %d live containers but saw only %d", len(cp.Live), cp.ContainersSeen)
	}
	if cp.Evictions < 0 || cp.EvTotal < int64(cp.Evictions) {
		return nil, fmt.Errorf("stream: checkpoint eviction counters inconsistent (%d since rebuild, %d total)", cp.Evictions, cp.EvTotal)
	}
	if badFloat(cp.CumJ) || badFloat(cp.DriftErr) {
		return nil, fmt.Errorf("stream: checkpoint carries non-finite accumulators")
	}
	if cp.Tick == 0 && (cp.Records != 0 || len(cp.Live) != 0) {
		return nil, fmt.Errorf("stream: checkpoint at tick 0 claims %d records", cp.Records)
	}
	return &cp, nil
}

// badFloat reports a value JSON should never have produced for an
// accumulator: json.Unmarshal rejects NaN/Inf literals, but a checkpoint
// assembled by other means must not smuggle them in.
func badFloat(v float64) bool { return v != v || v > 1e308 || v < -1e308 } //pclint:allow floatsafe v != v is the NaN test; exactness is the point

// restore overwrites the engine's consumer state with the checkpoint's.
// The engine must already sit at the checkpoint tick (ReplayTo arranges
// this); restore resolves live container IDs against the facility.
func (e *Engine) restore(cp *Checkpoint) error {
	if e.tick != cp.Tick {
		return fmt.Errorf("stream: restore at tick %d, checkpoint at %d", e.tick, cp.Tick)
	}
	att, err := stats.RestoreRing(cp.Attributed)
	if err != nil {
		return err
	}
	mod, err := stats.RestoreRing(cp.Modeled)
	if err != nil {
		return err
	}
	var meas *stats.Ring
	if cp.Measured != nil {
		if meas, err = stats.RestoreRing(*cp.Measured); err != nil {
			return err
		}
	}
	var gram *linalg.Gram
	if cp.Gram != nil {
		if gram, err = linalg.GramFromState(*cp.Gram); err != nil {
			return err
		}
	}
	// Resolve live container IDs by merge scan: both the checkpoint's
	// live list and the facility's container list are in creation order.
	live := make([]*contCursor, 0, len(cp.Live))
	if cp.ContainersSeen > e.src.Fac.NumContainers() {
		return fmt.Errorf("stream: checkpoint saw %d containers, facility has %d", cp.ContainersSeen, e.src.Fac.NumContainers())
	}
	i := 0
	for _, st := range cp.Live {
		for i < cp.ContainersSeen && e.src.Fac.ContainerAt(i).ID != st.ID {
			i++
		}
		if i == cp.ContainersSeen {
			return fmt.Errorf("stream: checkpoint live container %d not found in facility", st.ID)
		}
		live = append(live, &contCursor{c: e.src.Fac.ContainerAt(i), lastJ: st.LastJ, lastCPU: st.LastCPU})
		i++
	}

	// Hierarchy cursors resolve against the rebuilt facility's hierarchy:
	// the checkpointed run cannot have seen more services or tenants than
	// the replayed machine has registered by now.
	h := e.src.Fac.Hierarchy()
	if len(cp.SvcLast) > 0 || len(cp.TenLast) > 0 {
		if h == nil {
			return fmt.Errorf("stream: checkpoint carries hierarchy cursors but the facility has no hierarchy")
		}
		if len(cp.SvcLast) > h.NumServices() || len(cp.TenLast) > h.NumTenants() {
			return fmt.Errorf("stream: checkpoint saw %d services / %d tenants, hierarchy has %d / %d",
				len(cp.SvcLast), len(cp.TenLast), h.NumServices(), h.NumTenants())
		}
	}

	e.records = cp.Records
	e.cumJ = cp.CumJ
	e.meterSeen = cp.MeterSeen
	e.containersSeen = cp.ContainersSeen
	e.live = live
	e.svcLast = append(e.svcLast[:0], cp.SvcLast...)
	e.tenLast = append(e.tenLast[:0], cp.TenLast...)
	e.attributed = att
	e.modeled = mod
	e.measured = meas
	e.mpCoeff = cp.MPCoeff
	e.mpValid = cp.MPValid
	e.delay = cp.Delay
	e.delayKnown = cp.DelayKnown
	e.plan = cp.Plan
	e.planKnown = cp.PlanKnown
	e.pairs = append(e.pairs[:0], cp.Pairs...)
	e.evictions = cp.Evictions
	e.evTotal = cp.EvTotal
	e.gram = gram
	e.drift = cp.Drift
	e.driftOK = cp.DriftOK
	e.driftErr = cp.DriftErr
	return nil
}

// ReplayTo restores a checkpoint into a fresh engine over a freshly built,
// identically seeded machine: it drives the engine quietly (no sink, no
// audit) through cp.Tick ticks — reproducing the exact pull/flush pattern
// of the original run, which the simulation's float state depends on —
// verifies that the naturally replayed consumer state encodes
// byte-identically to the checkpoint (catching any state the checkpoint
// failed to capture, or any divergence in the rebuilt machine), and then
// installs the decoded checkpoint state. The returned engine continues
// the stream exactly where the checkpointed run left off.
func ReplayTo(src Sources, cfg Config, cp *Checkpoint) (*Engine, error) {
	e := New(src, cfg)
	if got := sim.Time(cp.Tick) * e.cfg.Tick; got != cp.T {
		return nil, fmt.Errorf("stream: checkpoint time %d does not sit on the configured tick grid (tick %d × %s)", cp.T, cp.Tick, sim.FormatTime(e.cfg.Tick))
	}
	e.RunTicks(cp.Tick)
	natural := EncodeCheckpoint(e.Checkpoint())
	want := EncodeCheckpoint(cp)
	if !bytes.Equal(natural, want) {
		return nil, fmt.Errorf("stream: quiet replay diverged from checkpoint at tick %d (%d vs %d encoded bytes)", cp.Tick, len(natural), len(want))
	}
	if err := e.restore(cp); err != nil {
		return nil, err
	}
	return e, nil
}
