package stream

import "fmt"

// Supervisor restarts a crashing streaming attempt with a bounded
// budget. It is deliberately mechanism-free: the caller supplies what a
// crash looks like (IsCrash), how long to wait between restarts (Sleep
// — exponential backoff in the CLI, nothing in deterministic tests),
// and how to measure durable progress (Progress — typically
// Store.LastSeq). Crash-loop detection lives on the progress axis: a
// crash is tolerable while the durable frontier advances between
// attempts; repeated deaths with no new durable record mean restarting
// cannot help, and the supervisor gives up before burning the budget.
type Supervisor struct {
	// MaxRestarts bounds restarts after the first attempt (default 8).
	MaxRestarts int
	// IsCrash classifies recovered panic values; panics it rejects are
	// real bugs and propagate. Nil recovers nothing (every panic
	// propagates), making the supervisor a plain retry-never loop.
	IsCrash func(r any) bool
	// Sleep waits before restart n (1-based); nil skips waiting.
	Sleep func(restart int)
	// Progress reports the durable frontier; nil disables crash-loop
	// detection.
	Progress func() int64
	// MaxStalls is how many consecutive zero-progress crashes are
	// tolerated before declaring a crash loop (default 2).
	MaxStalls int
	// OnRestart observes each restart decision; may be nil.
	OnRestart func(restart int, cause string)
}

// Run drives attempt until it returns, restarting on crashes within the
// budget. An attempt error is fatal (no restart: errors are reasoned
// refusals — corrupt store, bad config — that a restart cannot fix); a
// crash panic consumes budget; success returns nil.
func (s *Supervisor) Run(attempt func() error) error {
	maxRestarts := s.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 8
	}
	maxStalls := s.MaxStalls
	if maxStalls == 0 {
		maxStalls = 2
	}
	var lastProgress int64
	if s.Progress != nil {
		lastProgress = s.Progress()
	}
	stalls := 0
	for restart := 0; ; restart++ {
		crash, err := s.try(attempt)
		if err != nil {
			return err
		}
		if crash == nil {
			return nil
		}
		if restart >= maxRestarts {
			return fmt.Errorf("stream: giving up after %d restarts: %v", restart, crash)
		}
		if s.Progress != nil {
			p := s.Progress()
			if p <= lastProgress {
				stalls++
				if stalls > maxStalls {
					return fmt.Errorf("stream: crash loop: %d consecutive restarts without durable progress (frontier %d): %v", stalls, p, crash)
				}
			} else {
				stalls = 0
			}
			lastProgress = p
		}
		if s.OnRestart != nil {
			s.OnRestart(restart+1, fmt.Sprint(crash))
		}
		if s.Sleep != nil {
			s.Sleep(restart + 1)
		}
	}
}

// try runs one attempt, converting an expected crash panic into a
// returned value and letting anything else propagate.
func (s *Supervisor) try(attempt func() error) (crash any, err error) {
	defer func() {
		if r := recover(); r != nil {
			if s.IsCrash == nil || !s.IsCrash(r) {
				panic(r)
			}
			crash = r
		}
	}()
	return nil, attempt()
}
