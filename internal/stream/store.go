package stream

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io/fs"
	"path/filepath"

	"powercontainers/internal/durable"
)

// Store persists the engine's output through internal/durable: every
// emitted record becomes one WAL frame — an 8-byte little-endian
// sequence number followed by the record's canonical line encoding — and
// the engine's automatic checkpoints land next to the log as a checked
// blob. The WAL is the durable output stream: after any number of
// crashes, reading it back yields exactly the records an uninterrupted
// run would have emitted, in order, each exactly once.
//
// Durability cadence: records accumulate unsynced within a tick and are
// fsynced when the tick's closing system record arrives, so a crash can
// only tear the current tick. The newest engine checkpoint is persisted
// right after the sync that covers it, which keeps the invariant
// checkpoint.Records ≤ synced WAL frames — the recovery paths below
// depend on it and treat its violation (a truncated WAL tail overtaken
// by a checkpoint) as a signal to fall back to from-scratch replay.
type Store struct {
	// Next receives records that were actually appended (not suppressed
	// as already-durable); may be nil.
	Next Sink

	fs    durable.FS
	dir   string
	log   *durable.Log
	audit StoreAuditSink

	seq        int64 // last sequence number handled this process
	appended   int64 // last sequence number present in the WAL
	suppressTo int64 // regenerated records up to here are deduped
	storedSum  string
	h          hash.Hash
	scratch    []byte

	eng         *Engine
	cpPersisted int64 // Records of the last persisted checkpoint
}

// StoreAuditSink observes recovery: WAL tail repairs and the recovery
// decision itself. audit.Auditor implements it; may be nil everywhere.
type StoreAuditSink interface {
	OnWALTruncate(path string, off, lost int64, reason string)
	// OnRecovery fires once per open: mode is "fresh", "checkpoint", or
	// "scratch"; lastSeq is the highest durable record; cpTick the
	// checkpoint tick resumed from (-1 when none).
	OnRecovery(mode string, lastSeq int64, cpTick int, detail string)
}

// Recovered is what OpenStore found on disk: the durable frontier and
// the checkpoint to resume from (nil means replay from scratch). Mode
// records the decision for reporting.
type Recovered struct {
	LastSeq    int64
	Checkpoint *Checkpoint
	Mode       string // "fresh", "checkpoint", "scratch"
	Detail     string

	suffixSum string // SHA-256 of stored records (cp.Records, LastSeq]
}

const checkpointFile = "checkpoint.ck"

// OpenStore opens (or creates) a durable store in dir, running WAL
// recovery: validate and count every durable record, repair a torn tail,
// load the newest valid checkpoint, and decide the resume mode. A
// corrupt or missing checkpoint is never fatal — the checkpoint is an
// optimization; determinism plus the WAL give correctness — but interior
// WAL corruption is (durable.ErrCorrupt).
func OpenStore(fsys durable.FS, dir string, audit StoreAuditSink) (*Store, *Recovered, error) {
	s := &Store{fs: fsys, dir: dir, audit: audit, h: sha256.New()}
	rec := &Recovered{Mode: "fresh"}

	// Load the checkpoint first: its Records count splits the WAL into
	// the prefix it covers and the suffix the resumed engine must
	// regenerate, and the suffix hash is computed during the WAL scan.
	var cp *Checkpoint
	cpPath := filepath.Join(dir, checkpointFile)
	if data, err := durable.ReadChecked(fsys, cpPath); err == nil {
		if c, derr := DecodeCheckpoint(data); derr == nil {
			cp = c
		} else {
			rec.Detail = fmt.Sprintf("checkpoint undecodable: %v; ", derr)
		}
	} else if errors.Is(err, durable.ErrCorrupt) {
		rec.Detail = fmt.Sprintf("checkpoint corrupt: %v; ", err)
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}
	cpRecords := int64(0)
	if cp != nil {
		cpRecords = cp.Records
	}

	suffix := sha256.New()
	full := sha256.New()
	var lastSeq int64
	truncs := &truncRelay{audit: audit}
	log, err := durable.OpenLog(fsys, dir, durable.Options{
		Audit: truncs,
		Replay: func(payload []byte) error {
			if len(payload) < 8 {
				return &durable.CorruptError{Path: dir, Off: 0, Reason: fmt.Sprintf("record frame %d bytes, need ≥ 8", len(payload))}
			}
			seq := int64(binary.LittleEndian.Uint64(payload))
			if seq != lastSeq+1 {
				return &durable.CorruptError{Path: dir, Off: 0, Reason: fmt.Sprintf("record sequence jumped %d → %d", lastSeq, seq)}
			}
			lastSeq = seq
			line := payload[8:]
			full.Write(line)
			if seq > cpRecords {
				suffix.Write(line)
			}
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}
	s.log = log
	s.appended = lastSeq
	rec.LastSeq = lastSeq

	switch {
	case cp != nil && cpRecords <= lastSeq:
		rec.Checkpoint = cp
		rec.Mode = "checkpoint"
		rec.suffixSum = hex.EncodeToString(suffix.Sum(nil))
		s.cpPersisted = cpRecords
	case cp != nil:
		// The checkpoint got ahead of the surviving WAL (a corruption
		// truncated frames the checkpoint already covers): resuming from
		// it could never re-emit the lost records, so replay from scratch.
		rec.Detail += fmt.Sprintf("checkpoint covers %d records but WAL holds %d; ", cpRecords, lastSeq)
		fallthrough
	case lastSeq > 0:
		rec.Mode = "scratch"
		rec.suffixSum = hex.EncodeToString(full.Sum(nil))
	}
	if audit != nil {
		cpTick := -1
		if rec.Checkpoint != nil {
			cpTick = rec.Checkpoint.Tick
		}
		audit.OnRecovery(rec.Mode, rec.LastSeq, cpTick, rec.Detail)
	}
	return s, rec, nil
}

// truncRelay forwards durable tail repairs to the store's audit sink.
type truncRelay struct{ audit StoreAuditSink }

func (r *truncRelay) OnWALTruncate(path string, off, lost int64, reason string) {
	if r.audit != nil {
		r.audit.OnWALTruncate(path, off, lost, reason)
	}
}

// Resume builds the engine continuing the stored stream: from the
// recovered checkpoint via the deterministic quiet-replay path when one
// survived, from scratch otherwise. The engine's sink is the store;
// records the WAL already holds are suppressed instead of re-appended,
// while their regenerated canonical encodings are hashed and checked
// against the stored bytes — the exactly-once guarantee is enforced, not
// assumed. Attach the user-facing sink to store.Next.
func Resume(src Sources, cfg Config, st *Store, rec *Recovered) (*Engine, error) {
	var e *Engine
	if rec.Checkpoint != nil {
		var err error
		if e, err = ReplayTo(src, cfg, rec.Checkpoint); err != nil {
			return nil, err
		}
		st.seq = rec.Checkpoint.Records
	} else {
		e = New(src, cfg)
		st.seq = 0
	}
	st.suppressTo = rec.LastSeq
	st.storedSum = rec.suffixSum
	st.eng = e
	e.Sink = st
	return e, nil
}

// OnRecord implements Sink: suppress-and-verify inside the recovered
// prefix, append-and-forward beyond it.
func (s *Store) OnRecord(r Record) {
	s.seq++
	s.scratch = AppendRecord(s.scratch[:0], r)
	if s.seq <= s.suppressTo {
		s.h.Write(s.scratch)
		if s.seq == s.suppressTo {
			if got := hex.EncodeToString(s.h.Sum(nil)); got != s.storedSum {
				// A regenerated record differing from its durable copy is a
				// determinism violation, not a recoverable condition: carrying
				// on would silently fork the stream.
				panic(fmt.Sprintf("stream: recovered replay diverged from durable WAL through seq %d (regenerated %s, stored %s)", s.seq, got, s.storedSum))
			}
		}
		return
	}
	payload := make([]byte, 8+len(s.scratch))
	binary.LittleEndian.PutUint64(payload, uint64(s.seq))
	copy(payload[8:], s.scratch)
	if err := s.log.Append(payload); err != nil {
		panic(fmt.Sprintf("stream: WAL append: %v", err))
	}
	s.appended = s.seq
	if r.Kind == KindSystem {
		s.syncTick()
	}
	if s.Next != nil {
		s.Next.OnRecord(r)
	}
}

// syncTick is the tick-boundary durability point: fsync the WAL, then
// persist the newest engine checkpoint if it advanced — in that order,
// so a persisted checkpoint never covers unsynced frames.
func (s *Store) syncTick() {
	if err := s.log.Sync(); err != nil {
		panic(fmt.Sprintf("stream: WAL sync: %v", err))
	}
	if s.eng == nil {
		return
	}
	if cp := s.eng.LastCheckpoint(); cp != nil && cp.Records > s.cpPersisted {
		s.persistCheckpoint(cp)
	}
}

func (s *Store) persistCheckpoint(cp *Checkpoint) {
	if err := durable.WriteChecked(s.fs, filepath.Join(s.dir, checkpointFile), EncodeCheckpoint(cp)); err != nil {
		panic(fmt.Sprintf("stream: checkpoint persist: %v", err))
	}
	s.cpPersisted = cp.Records
}

// LastSeq returns the highest record sequence number the WAL holds —
// the supervisor's progress metric.
func (s *Store) LastSeq() int64 { return s.appended }

// Close syncs the WAL, persists the newest checkpoint, and closes the
// log.
func (s *Store) Close() error {
	if err := s.log.Sync(); err != nil {
		return err
	}
	if s.eng != nil {
		if cp := s.eng.LastCheckpoint(); cp != nil && cp.Records > s.cpPersisted {
			if err := durable.WriteChecked(s.fs, filepath.Join(s.dir, checkpointFile), EncodeCheckpoint(cp)); err != nil {
				return err
			}
			s.cpPersisted = cp.Records
		}
	}
	return s.log.Close()
}

// ReadStream replays the durable record stream in dir, calling deliver
// with each record's sequence number and canonical line encoding. This
// is the read side of the store's output contract: what ReadStream
// yields is, byte for byte, the stream the (possibly crash-riddled) run
// emitted.
func ReadStream(fsys durable.FS, dir string, deliver func(seq int64, line []byte) error) error {
	var last int64
	log, err := durable.OpenLog(fsys, dir, durable.Options{
		Replay: func(payload []byte) error {
			if len(payload) < 8 {
				return &durable.CorruptError{Path: dir, Off: 0, Reason: "short record frame"}
			}
			seq := int64(binary.LittleEndian.Uint64(payload))
			if seq != last+1 {
				return &durable.CorruptError{Path: dir, Off: 0, Reason: fmt.Sprintf("record sequence jumped %d → %d", last, seq)}
			}
			last = seq
			return deliver(seq, payload[8:])
		},
	})
	if err != nil {
		return err
	}
	return log.Close()
}
