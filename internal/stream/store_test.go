package stream_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/durable"
	"powercontainers/internal/faults"
	"powercontainers/internal/model"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// storeCfg keeps segments small so crash tests exercise rotation.
func storeCfg() stream.Config {
	return stream.Config{Tick: 100 * sim.Millisecond, CheckpointEvery: 10}
}

// goldenStream runs an uninterrupted durable run on mem and returns the
// canonical stream bytes read back from the WAL.
func goldenStream(t *testing.T, seed uint64) []byte {
	t.Helper()
	mem := durable.NewMemFS()
	runDurable(t, mem, nil, seed)
	return dumpStream(t, mem)
}

// runDurable opens the store on fsys (wrapping mem), resumes, and drives
// the engine to the bed's horizon. fsys nil means use mem directly.
func runDurable(t testing.TB, mem *durable.MemFS, fsys durable.FS, seed uint64) {
	t.Helper()
	if fsys == nil {
		fsys = mem
	}
	bed := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
	st, rec, err := stream.OpenStore(fsys, "wal", nil)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	e, err := stream.Resume(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, storeCfg(), st, rec)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	e.RunUntil(bed.end())
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// dumpStream reads the durable record stream back as one byte blob.
func dumpStream(t *testing.T, mem *durable.MemFS) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := stream.ReadStream(mem, "wal", func(seq int64, line []byte) error {
		out.Write(line)
		return nil
	}); err != nil {
		t.Fatalf("ReadStream: %v", err)
	}
	return out.Bytes()
}

// TestDurableRunMatchesPlainRun pins the store's pass-through fidelity:
// the WAL contents of a durable run equal the canonical encoding of a
// plain collector run, record for record.
func TestDurableRunMatchesPlainRun(t *testing.T) {
	const seed = 41
	bed := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, storeCfg())
	var col stream.Collector
	e.Sink = &col
	e.RunUntil(bed.end())

	if got, want := goldenStream(t, seed), col.Encode(); !bytes.Equal(got, want) {
		t.Fatalf("durable stream (%d bytes) differs from plain run (%d bytes)", len(got), len(want))
	}
}

// TestDurableResumeAfterCrash sweeps a handful of crash points at the
// store level (the full sweep is the crashmatrix experiment): each crash
// kills the run mid-flight, recovery resumes it, and the final WAL must
// be byte-identical to the uninterrupted run's.
func TestDurableResumeAfterCrash(t *testing.T) {
	const seed = 41
	golden := goldenStream(t, seed)
	plans := []string{
		"crash:op=write,match=wal-,index=40",
		"crash:op=write,match=wal-,index=120,keep=5",
		"crash:op=sync,match=wal-,index=7",
		"crash:op=sync,match=wal-,index=13,at=post",
		"crash:op=rename,match=checkpoint.ck,index=2",
		"crash:op=sync,match=checkpoint.ck.tmp,index=1",
	}
	for _, spec := range plans {
		t.Run(spec, func(t *testing.T) {
			plan, err := faults.ParseCrashPlan(spec)
			if err != nil {
				t.Fatal(err)
			}
			mem := durable.NewMemFS()
			cfs := faults.NewCrashFS(mem, plan)
			crashed := func() (c bool) {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(faults.Crash); !ok {
							panic(r)
						}
						c = true
					}
				}()
				runDurable(t, mem, cfs, seed)
				return false
			}()
			if !crashed {
				t.Fatalf("plan %q never fired", spec)
			}
			// The process is dead; restart on the surviving filesystem.
			runDurable(t, mem, nil, seed)
			if got := dumpStream(t, mem); !bytes.Equal(got, golden) {
				t.Fatalf("recovered stream (%d bytes) differs from golden (%d bytes)", len(got), len(golden))
			}
		})
	}
}

// TestDurableRecoveryModes pins the resume decision ladder: fresh on an
// empty dir, checkpoint once one is persisted, scratch when the
// checkpoint is corrupt — and scratch again when a corruption truncates
// the WAL behind the checkpoint's coverage.
func TestDurableRecoveryModes(t *testing.T) {
	const seed = 41
	mem := durable.NewMemFS()

	probe := &recoveryProbe{}
	st, rec, err := stream.OpenStore(mem, "wal", probe)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Mode != "fresh" || rec.LastSeq != 0 {
		t.Fatalf("empty dir recovered as %q lastSeq=%d", rec.Mode, rec.LastSeq)
	}
	bed := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
	e, err := stream.Resume(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, storeCfg(), st, rec)
	if err != nil {
		t.Fatal(err)
	}
	e.RunTicks(25)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2, err := stream.OpenStore(mem, "wal", probe)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Mode != "checkpoint" || rec2.Checkpoint == nil || rec2.Checkpoint.Tick != 20 {
		t.Fatalf("after 25 ticks recovered as %q (cp %v)", rec2.Mode, rec2.Checkpoint)
	}
	if rec2.LastSeq != st.LastSeq() {
		t.Fatalf("recovered lastSeq %d, store reported %d", rec2.LastSeq, st.LastSeq())
	}

	// Bit-flip the checkpoint blob: recovery must fall back to scratch,
	// not fail.
	if err := mem.Corrupt("wal/checkpoint.ck", 20, 0x08); err != nil {
		t.Fatal(err)
	}
	_, rec3, err := stream.OpenStore(mem, "wal", probe)
	if err != nil {
		t.Fatal(err)
	}
	if rec3.Mode != "scratch" || rec3.Checkpoint != nil {
		t.Fatalf("corrupt checkpoint recovered as %q", rec3.Mode)
	}
	if got := probe.modes; len(got) != 3 || got[0] != "fresh" || got[1] != "checkpoint" || got[2] != "scratch" {
		t.Fatalf("OnRecovery modes = %v", got)
	}
}

// TestDurableScratchFallbackReplaysExactly drives the subtle matrix
// case: a bit-flip destroys the WAL's final frame right after a
// checkpoint was persisted, so the surviving WAL holds fewer records
// than the checkpoint covers. Resume must reject the checkpoint, replay
// from scratch, and still converge to the golden stream.
func TestDurableScratchFallbackReplaysExactly(t *testing.T) {
	const seed = 41
	golden := goldenStream(t, seed)

	mem := durable.NewMemFS()
	bed := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
	st, rec, err := stream.OpenStore(mem, "wal", nil)
	if err != nil {
		t.Fatal(err)
	}
	e, err := stream.Resume(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, storeCfg(), st, rec)
	if err != nil {
		t.Fatal(err)
	}
	// Stop exactly at the tick-20 checkpoint: Close persists it, so the
	// checkpoint covers every record the WAL holds.
	e.RunTicks(20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy the last WAL frame (a record the checkpoint already
	// covers after truncation): lastSeq drops below cp.Records.
	segs := mem.Paths()
	last := segs[0]
	for _, p := range segs {
		if p > last && p != "wal/checkpoint.ck" {
			last = p
		}
	}
	if err := mem.Corrupt(last, mem.Size(last)-1, 0x01); err != nil {
		t.Fatal(err)
	}

	probe := &recoveryProbe{}
	st2, rec2, err := stream.OpenStore(mem, "wal", probe)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Mode != "scratch" {
		t.Fatalf("recovered as %q, want scratch (cp overtook WAL)", rec2.Mode)
	}
	if probe.truncates == 0 {
		t.Fatal("no OnWALTruncate for the destroyed final frame")
	}
	bed2 := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
	e2, err := stream.Resume(stream.Sources{Eng: bed2.m.Eng, Fac: bed2.m.Fac, Meter: bed2.m.Chip, Scope: model.ScopePackage}, storeCfg(), st2, rec2)
	if err != nil {
		t.Fatal(err)
	}
	e2.RunUntil(bed2.end())
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := dumpStream(t, mem); !bytes.Equal(got, golden) {
		t.Fatalf("scratch-fallback stream (%d bytes) differs from golden (%d bytes)", len(got), len(golden))
	}
}

type recoveryProbe struct {
	modes     []string
	truncates int
}

func (p *recoveryProbe) OnWALTruncate(path string, off, lost int64, reason string) { p.truncates++ }
func (p *recoveryProbe) OnRecovery(mode string, lastSeq int64, cpTick int, detail string) {
	p.modes = append(p.modes, mode)
}

// TestSupervisorBudgetAndCrashLoop pins the supervisor's control logic
// with synthetic attempts (no engine involved).
func TestSupervisorBudgetAndCrashLoop(t *testing.T) {
	isCrash := func(r any) bool { _, ok := r.(faults.Crash); return ok }
	boom := func() { panic(faults.Crash{Op: "sync", Name: "x"}) }

	// Crashes with progress: restarts until the attempt succeeds.
	var progress int64
	attempts := 0
	sup := &stream.Supervisor{IsCrash: isCrash, Progress: func() int64 { return progress }}
	err := sup.Run(func() error {
		attempts++
		progress++
		if attempts < 4 {
			boom()
		}
		return nil
	})
	if err != nil || attempts != 4 {
		t.Fatalf("progressing run: err=%v attempts=%d", err, attempts)
	}

	// No progress: crash-loop detection fires well inside the budget.
	attempts = 0
	sup = &stream.Supervisor{IsCrash: isCrash, MaxRestarts: 50, Progress: func() int64 { return 0 }}
	err = sup.Run(func() error { attempts++; boom(); return nil })
	if err == nil || attempts > 4 {
		t.Fatalf("stalled run: err=%v attempts=%d, want crash-loop abort", err, attempts)
	}

	// Budget exhaustion with steady progress.
	var n int64
	sup = &stream.Supervisor{IsCrash: isCrash, MaxRestarts: 3, Progress: func() int64 { return n }}
	err = sup.Run(func() error { n++; boom(); return nil })
	if err == nil || n != 4 {
		t.Fatalf("budget run: err=%v attempts=%d, want give-up after 3 restarts", err, n)
	}

	// Errors are fatal immediately; foreign panics propagate.
	calls := 0
	sentinel := errors.New("refused")
	if err := (&stream.Supervisor{IsCrash: isCrash}).Run(func() error { calls++; return sentinel }); !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("error run: err=%v calls=%d", err, calls)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign panic swallowed")
			}
		}()
		_ = (&stream.Supervisor{IsCrash: isCrash}).Run(func() error { panic("bug") })
	}()

	// Sleep and OnRestart observe each restart in order.
	var slept, restarts []int
	sup = &stream.Supervisor{
		IsCrash:   isCrash,
		Sleep:     func(r int) { slept = append(slept, r) },
		OnRestart: func(r int, cause string) { restarts = append(restarts, r) },
		Progress:  func() int64 { progress++; return progress },
	}
	attempts = 0
	if err := sup.Run(func() error {
		attempts++
		if attempts < 3 {
			boom()
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(slept) != "[1 2]" || fmt.Sprint(restarts) != "[1 2]" {
		t.Fatalf("slept=%v restarts=%v", slept, restarts)
	}
}

// TestSupervisedStoreRunConverges glues supervisor + store + crash plan:
// a supervised run that dies twice still produces the golden stream.
func TestSupervisedStoreRunConverges(t *testing.T) {
	const seed = 41
	golden := goldenStream(t, seed)
	mem := durable.NewMemFS()
	plan, err := faults.ParseCrashPlan("crash:op=sync,match=wal-,index=9")
	if err != nil {
		t.Fatal(err)
	}
	cfs := faults.NewCrashFS(mem, plan)
	restarts := 0
	sup := &stream.Supervisor{
		IsCrash:   func(r any) bool { _, ok := r.(faults.Crash); return ok },
		OnRestart: func(r int, cause string) { restarts = r },
	}
	err = sup.Run(func() error {
		bed := deployBed(t, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
		st, rec, err := stream.OpenStore(durable.FS(cfs), "wal", nil)
		if err != nil {
			return err
		}
		e, err := stream.Resume(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, storeCfg(), st, rec)
		if err != nil {
			return err
		}
		e.RunUntil(bed.end())
		return st.Close()
	})
	if err != nil {
		t.Fatalf("supervised run: %v", err)
	}
	if restarts != 1 {
		t.Fatalf("restarts = %d, want 1", restarts)
	}
	if got := dumpStream(t, mem); !bytes.Equal(got, golden) {
		t.Fatalf("supervised stream differs from golden")
	}
}

// BenchmarkStreamRecover measures restart latency: reopening a populated
// durable store (checkpoint decode plus full WAL segment scan) and
// rebuilding the engine via the quiet-replay path — the gap between
// process start and the first new record after a crash. The store is
// written once by a clean run ending on a checkpoint boundary, so every
// iteration recovers the identical state and appends nothing. The
// recovery-ms metric feeds BENCH_stream.json.
func BenchmarkStreamRecover(b *testing.B) {
	const seed = 41
	mem := durable.NewMemFS()
	runDurable(b, mem, nil, seed)
	if _, rec, err := stream.OpenStore(mem, "wal", nil); err != nil || rec.Mode != "checkpoint" {
		b.Fatalf("populated store did not recover in checkpoint mode: %v %v", rec, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bed := deployBed(b, core.ApproachRecalibrated, seed, workload.GAE{}, 0.4)
		st, rec, err := stream.OpenStore(mem, "wal", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := stream.Resume(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, storeCfg(), st, rec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/1e6/float64(b.N), "recovery-ms")
}
