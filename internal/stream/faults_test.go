package stream_test

import (
	"math"
	"testing"

	"powercontainers/internal/align"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/experiments"
	"powercontainers/internal/faults"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// streamFaultCounter counts fault events the plan delivered.
type streamFaultCounter struct{ n int }

func (c *streamFaultCounter) OnFault(faults.Event) { c.n++ }

// faultBed builds a faultmatrix-style rig driven by the stream engine: a
// SandyBridge machine whose chip meter is (optionally) wrapped with a
// fault plan before online recalibration is wired against it, with the
// robust degradation responses armed.
func faultBed(t *testing.T, seed uint64, mf *faults.MeterFaults, counter *streamFaultCounter) (testbed, *align.Recalibrator, power.Meter) {
	t.Helper()
	m, err := experiments.Assembly{}.NewMachine(cpu.SandyBridge, core.ApproachChipShare, seed)
	if err != nil {
		t.Fatal(err)
	}
	var meter power.Meter = m.Chip
	if mf != nil {
		plan := &faults.Plan{Seed: seed + 1000, Meter: mf, Audit: counter}
		meter = plan.WrapMeter(m.Chip)
	}
	r := m.Fac.EnableRecalibration(meter, model.ScopePackage, m.Calib.Samples, 0)
	// Pin the known chip-meter lag, as the faultmatrix experiment does:
	// estimating it from a spiked stream would confound the fault axis
	// with delay-search error.
	r.SetDelay(sim.Millisecond)
	r.Robust = align.Robust{Enabled: true}
	dep := workload.Stress{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	t1 := equivWarmup + equivWindow
	gen.RunOpenLoop(0.5*experiments.PeakRate(m.K.Spec, dep), t1, m.Rng.Fork(13))
	return testbed{m: m, gen: gen, t1: t1}, r, meter
}

// streamRun drives a bed through the streaming engine to its horizon —
// tapping the (possibly fault-wrapped) meter, so the engine's own sample
// ingest rides through the fault stream too — and returns the engine plus
// its collected records.
func streamRun(bed testbed, meter power.Meter) (*stream.Engine, *stream.Collector) {
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: meter, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond})
	col := &stream.Collector{}
	e.Sink = col
	e.RunUntil(bed.end())
	return e, col
}

// TestStreamUnderMeterDropout drives the PR 5 graceful-degradation path
// online through the streaming engine: with 10% sample dropout and x8
// spikes at 5% injected into the recalibration meter and robust
// recalibration armed, the streamed attribution must stay within 5% of
// the fault-free streaming run (the faultmatrix degraded-cell threshold),
// the recalibrator must actually reject outlier pairs, and the stream's
// own conservation ledger must still reconcile exactly.
func TestStreamUnderMeterDropout(t *testing.T) {
	const seed = 41
	clean, _, cm := faultBed(t, seed, nil, nil)
	ce, _ := streamRun(clean, cm)
	baseJ := clean.m.Fac.TotalAccountedEnergyJ()
	if baseJ <= 0 {
		t.Fatal("fault-free run accounted no energy")
	}

	counter := &streamFaultCounter{}
	faulted, r, fm := faultBed(t, seed, &faults.MeterFaults{DropoutP: 0.10, SpikeP: 0.05, SpikeMag: 8}, counter)
	fe, col := streamRun(faulted, fm)

	if counter.n == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if r.Rejected() == 0 {
		t.Fatal("robust recalibrator rejected no pairs despite injected spikes")
	}
	gotJ := faulted.m.Fac.TotalAccountedEnergyJ()
	if relErr := math.Abs(gotJ-baseJ) / baseJ; relErr > 0.05 {
		t.Fatalf("faulted streaming attribution off by %.2f%% (%g J vs %g J), budget 5%%", 100*relErr, gotJ, baseJ)
	}
	// Faults perturb the measurements, never the stream's internal
	// accounting: the ledger reconciles as tightly as in the clean run.
	if diff := math.Abs(fe.CumAttributedJ() - gotJ); diff > 1e-9*(1+gotJ) {
		t.Fatalf("faulted stream ledger %g J vs accounted %g J", fe.CumAttributedJ(), gotJ)
	}
	// The engine kept emitting through the fault stream: one system
	// record per tick on both runs.
	sys := 0
	for _, rec := range col.Records {
		if rec.Kind == stream.KindSystem {
			sys++
		}
	}
	if want := int(clean.end() / (100 * sim.Millisecond)); sys != want {
		t.Fatalf("faulted run emitted %d system records, want %d", sys, want)
	}
	if ce.Records() == 0 || fe.Records() == 0 {
		t.Fatal("a run emitted no records")
	}
}

// TestStreamMeterDeathFailsOver kills the primary chip meter mid-stream
// (injected meter death) with the facility's failover watchdog armed: the
// streaming engine must ride through the failover — the facility swaps
// recalibration to the wall meter, the engine keeps emitting every tick,
// and end-to-end attribution stays within 8% of the death-free run.
func TestStreamMeterDeathFailsOver(t *testing.T) {
	const seed = 43
	run := func(mf *faults.MeterFaults) (testbed, *align.Recalibrator, *stream.Engine, *stream.Collector) {
		m, err := experiments.Assembly{}.NewMachine(cpu.SandyBridge, core.ApproachChipShare, seed)
		if err != nil {
			t.Fatal(err)
		}
		var primary power.Meter = m.Chip
		if mf != nil {
			plan := &faults.Plan{Seed: seed + 1000, Meter: mf}
			primary = plan.WrapMeter(m.Chip)
		}
		r := m.Fac.EnableRecalibrationFailover(core.FailoverConfig{
			Primary:       primary,
			PrimaryScope:  model.ScopePackage,
			Fallback:      m.Wattsup,
			FallbackScope: model.ScopeMachine,
			Offline:       m.Calib.Samples,
			DeadAfter:     500 * sim.Millisecond,
			Robust:        align.Robust{Enabled: true},
		})
		r.SetDelay(sim.Millisecond)
		dep := workload.Stress{}.Deploy(m.K, m.Rng.Fork(11))
		gen := server.NewLoadGen(m.K, m.Fac, dep)
		t1 := equivWarmup + equivWindow
		gen.RunOpenLoop(0.5*experiments.PeakRate(m.K.Spec, dep), t1, m.Rng.Fork(13))
		bed := testbed{m: m, gen: gen, t1: t1}
		e, col := streamRun(bed, primary)
		return bed, r, e, col
	}

	clean, cr, _, _ := run(nil)
	if clean.m.Fac.Recalibrator() != cr {
		t.Fatal("healthy primary was failed over")
	}
	baseJ := clean.m.Fac.TotalAccountedEnergyJ()

	dead, dr, de, col := run(&faults.MeterFaults{DeathAt: 3 * sim.Second})
	active := dead.m.Fac.Recalibrator()
	if active == dr {
		t.Fatal("watchdog did not fail over from the dead primary meter")
	}
	if active.Meter != dead.m.Wattsup {
		t.Fatalf("failover selected meter %q, want the wall meter", active.Meter.Name())
	}
	if active.Delivered() == 0 {
		t.Fatal("fallback recalibrator received no samples after failover")
	}
	sys := 0
	for _, rec := range col.Records {
		if rec.Kind == stream.KindSystem {
			sys++
		}
	}
	if want := int(dead.end() / (100 * sim.Millisecond)); sys != want {
		t.Fatalf("stream stalled around the failover: %d system records, want %d", sys, want)
	}
	gotJ := dead.m.Fac.TotalAccountedEnergyJ()
	if relErr := math.Abs(gotJ-baseJ) / baseJ; relErr > 0.08 {
		t.Fatalf("attribution across meter death off by %.2f%% (%g J vs %g J), budget 8%%", 100*relErr, gotJ, baseJ)
	}
	if diff := math.Abs(de.CumAttributedJ() - gotJ); diff > 1e-9*(1+gotJ) {
		t.Fatalf("stream ledger %g J vs accounted %g J across failover", de.CumAttributedJ(), gotJ)
	}
}
