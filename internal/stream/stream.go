// Package stream turns the repo's run-to-completion pipeline (meters →
// align → recalibrate → containers) into a long-running streaming
// attribution engine: a pull-based consumer that drives the simulation in
// fixed ticks and, at each tick boundary, incrementally consumes meter
// samples (power.ReadFresh cursors), per-container attribution deltas
// (core.Facility creation-order scans), and the modeled-power trace
// (model.MetricCursor dirty marks) into bounded-memory ring buffers
// (stats.Ring), emitting a per-container power/energy record stream.
//
// Determinism contract: the engine is a pure consumer — it never schedules
// simulation events, so driving the engine tick by tick processes the
// exact event sequence a single batch RunUntil would. The one side effect
// of consumption is that reading a meter flushes the power recorder up to
// the read time, which splits the chip-maintenance energy integration at
// the pull instant. When online recalibration is enabled its 100ms
// ingest event already flushes at every multiple of
// core.DefaultRecalibrationPeriod — so a tick that is a multiple of that
// period makes the engine's pull a no-op flush and keeps the whole run,
// attribution and measurement alike, bit-identical to the batch path.
// Without recalibration the flush split perturbs only measured readings
// at rounding level (nothing feeds back into the simulation), and
// attribution remains bit-identical for any tick. TestStreamMatchesBatch
// pins both claims.
package stream

import (
	"powercontainers/internal/align"
	"powercontainers/internal/core"
	"powercontainers/internal/linalg"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
)

// DefaultTick is the default streaming period: the recalibration ingest
// period, so that pulls coincide with flushes the simulation already
// performs (see the package comment's determinism contract).
const DefaultTick = core.DefaultRecalibrationPeriod

// Sources are the simulation-side taps the engine consumes. The engine
// reads them; it never mutates the simulation beyond meter-read flushes.
type Sources struct {
	Eng *sim.Engine
	Fac *core.Facility
	// Meter is the measured-power stream (nil disables the measured ring
	// and the drift refit).
	Meter power.Meter
	// Scope selects the drift refit target matching Meter (machine scope
	// for a wall meter, package scope for the on-chip meter).
	Scope model.FitScope
}

// Config bounds the engine's memory and sets its cadence. Zero values
// select the defaults.
type Config struct {
	// Tick is the streaming period (default DefaultTick). For bit-exact
	// equivalence with the batch path under online recalibration it must
	// be a multiple of core.DefaultRecalibrationPeriod.
	Tick sim.Time
	// MeterWindow caps the measured ring in meter samples (default 4096).
	MeterWindow int
	// TickWindow caps the attributed-energy ring in ticks (default 1024).
	TickWindow int
	// ModelWindow caps the modeled-power ring in metric buckets
	// (default 8192).
	ModelWindow int
	// DriftWindow caps the retained aligned pairs of the windowed drift
	// refit (default 512).
	DriftWindow int
	// CheckpointEvery takes an automatic checkpoint every that many ticks
	// (0 disables; the checkpoint is retained, see LastCheckpoint).
	CheckpointEvery int
	// LedgerCheckEvery re-reconciles the streamed per-container energy
	// ledger against the facility's full accounting every that many ticks
	// (default 50; negative disables).
	LedgerCheckEvery int
	// LedgerTol is the relative tolerance of the ledger check
	// (default 1e-6).
	LedgerTol float64
}

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = DefaultTick
	}
	if c.MeterWindow == 0 {
		c.MeterWindow = 4096
	}
	if c.TickWindow == 0 {
		c.TickWindow = 1024
	}
	if c.ModelWindow == 0 {
		c.ModelWindow = 8192
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = 512
	}
	if c.LedgerCheckEvery == 0 {
		c.LedgerCheckEvery = 50
	}
	//pclint:allow floatsafe zero is the unset sentinel; any explicit tolerance is nonzero
	if c.LedgerTol == 0 {
		c.LedgerTol = 1e-6
	}
	return c
}

// Sink receives the engine's record stream.
type Sink interface {
	OnRecord(r Record)
}

// AuditSink receives the engine's audit events; audit.Auditor implements
// it. OnStreamViolation reports live conservation-check failures.
type AuditSink interface {
	OnCheckpoint(tick int, t sim.Time, encodedBytes int)
	OnStreamViolation(check string, t sim.Time, detail string)
}

// contCursor tracks one live container's last observed cumulative stats;
// per-tick records are deltas of these.
type contCursor struct {
	c       *core.Container
	lastJ   float64
	lastCPU sim.Time
}

// driftMinPairs is the observation count below which the windowed drift
// refit withholds a solution; driftRebuildEvery bounds Remove residue by
// rebuilding the Gram from the retained window (the align.Recalibrator
// policy, but tighter: the stream contract promises the windowed refit
// stays within 1e-9 relative of a batch fit over the same pairs, and ~30
// removes of residue keep it there where 256 would not).
const (
	driftMinPairs     = 8
	driftRebuildEvery = 32
)

// Engine is the streaming attribution engine. Drive it with RunTicks or
// RunUntil; records flow to Sink, audit events to Audit. All engine state
// outside the Sources is bounded by Config.
type Engine struct {
	src Sources
	cfg Config

	// Sink receives records; nil discards them (Records still counts).
	Sink Sink
	// Audit receives checkpoint and conservation events; may be nil.
	Audit AuditSink

	tick    int // completed ticks; engine time is tick*cfg.Tick
	records int64
	cumJ    float64 // running attributed energy, summed in emission order

	meterSeen int
	measured  *stats.Ring // per delivered meter sample: active watts

	containersSeen int
	live           []*contCursor // creation order; released entries removed
	attributed     *stats.Ring   // per tick: attributed joules

	// Hierarchy cursors: last observed cumulative energy per service and
	// per tenant, indexed by registration order (Service.Index and
	// Tenant.Index). Empty on flat runs, whose streams therefore stay
	// byte-identical to pre-hierarchy builds.
	svcLast []float64
	tenLast []float64

	modeled  *stats.Ring // per metric bucket: modeled active watts
	mpCursor *model.MetricCursor
	mpCoeff  model.Coefficients
	mpValid  bool

	delay      sim.Time // drift-pair alignment delay
	delayKnown bool
	plan       model.FitPlan
	planKnown  bool
	pairs      []model.CalSample
	gram       *linalg.Gram
	evictions  int // since the last rebuild
	evTotal    int64
	drift      model.Coefficients
	driftOK    bool
	driftErr   float64

	lastCP *Checkpoint
}

// New attaches a streaming engine to the given sources. The engine
// assumes exclusive ownership of the facility metric cursor it creates
// and of its meter-read cursor; the recalibrator's own cursors are
// independent and untouched.
func New(src Sources, cfg Config) *Engine {
	if src.Eng == nil || src.Fac == nil {
		panic("stream: New requires Eng and Fac sources")
	}
	cfg = cfg.withDefaults()
	ms := src.Fac.Metrics()
	e := &Engine{
		src:        src,
		cfg:        cfg,
		attributed: stats.NewRing(cfg.Tick, cfg.TickWindow),
		modeled:    stats.NewRing(ms.Interval(), cfg.ModelWindow),
		mpCursor:   ms.NewCursor(),
	}
	if src.Meter != nil {
		e.measured = stats.NewRing(src.Meter.Interval(), cfg.MeterWindow)
	}
	return e
}

// Config returns the engine's effective (default-filled) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Tick returns the number of completed ticks.
func (e *Engine) Tick() int { return e.tick }

// Now returns the engine's time: the end of the last completed tick.
func (e *Engine) Now() sim.Time { return sim.Time(e.tick) * e.cfg.Tick }

// Records returns how many records the engine has emitted.
func (e *Engine) Records() int64 { return e.records }

// CumAttributedJ returns the streamed attribution ledger: total energy
// attributed across all containers, accumulated from per-tick deltas.
func (e *Engine) CumAttributedJ() float64 { return e.cumJ }

// DriftFit returns the windowed online refit over the retained aligned
// pairs, if enough observations have arrived. It answers "what would the
// model look like fit over recent data only" — diverging from the
// facility's coefficients signals model drift.
func (e *Engine) DriftFit() (model.Coefficients, bool) { return e.drift, e.driftOK }

// DriftWindow returns a copy of the retained aligned pairs backing the
// drift refit.
func (e *Engine) DriftWindow() []model.CalSample {
	return append([]model.CalSample(nil), e.pairs...)
}

// DriftEvictions returns how many pairs have ever been evicted from the
// drift window; zero means the incremental fit is still bit-identical to
// a batch fit over the window (no Remove residue).
func (e *Engine) DriftEvictions() int64 { return e.evTotal }

// LastCheckpoint returns the most recent automatic checkpoint (nil before
// the first CheckpointEvery boundary).
func (e *Engine) LastCheckpoint() *Checkpoint { return e.lastCP }

// Drained reports whether the simulation has no pending events: nothing
// remains but clock advancement (and meter tail delivery, which needs no
// events). Long-running drivers use it to stop early.
func (e *Engine) Drained() bool {
	_, ok := e.src.Eng.NextEventAt()
	return !ok
}

// RunTicks advances the engine by n ticks.
func (e *Engine) RunTicks(n int) {
	for i := 0; i < n; i++ {
		e.step()
	}
}

// RunUntil advances the engine through every tick boundary ≤ t. Time
// between the last boundary and t is not consumed (the engine only
// observes whole ticks).
func (e *Engine) RunUntil(t sim.Time) {
	for sim.Time(e.tick+1)*e.cfg.Tick <= t {
		e.step()
	}
}

// step advances the simulation one tick and consumes everything that
// became observable, emitting container records (creation order) followed
// by one system record.
func (e *Engine) step() {
	e.tick++
	t := sim.Time(e.tick) * e.cfg.Tick
	e.src.Eng.RunUntil(t)

	// Meter ingestion: the fresh tail since the last pull, as active watts.
	var freshSamples []power.Sample
	if e.src.Meter != nil {
		freshSamples, e.meterSeen = power.ReadFresh(e.src.Meter, t, e.meterSeen)
		idle := e.src.Meter.IdleW()
		for _, s := range freshSamples {
			e.measured.Append(s.Watts - idle)
		}
	}

	// Container scan: adopt containers born since the last tick, then
	// walk the live set in creation order diffing cumulative stats.
	fac := e.src.Fac
	for n := fac.NumContainers(); e.containersSeen < n; e.containersSeen++ {
		e.live = append(e.live, &contCursor{c: fac.ContainerAt(e.containersSeen)})
	}
	var tickJ float64
	keep := e.live[:0]
	for _, cc := range e.live {
		c := cc.c
		j := c.EnergyJ()
		delta := j - cc.lastJ
		done := c.Released && c.Refs() == 0
		tickJ += delta
		//pclint:allow floatsafe exact-zero fast path: an untouched container contributes no record
		if delta != 0 || done {
			e.cumJ += delta
			e.emit(Record{
				Tick: e.tick, T: t, Kind: KindContainer,
				ID: c.ID, Label: c.Label, Client: c.Client,
				//pclint:allow floatsafe tickSeconds is positive: withDefaults forces cfg.Tick > 0
				PowerW:     delta / e.tickSeconds(),
				EnergyJ:    delta,
				CumEnergyJ: j,
				Done:       done,
			})
		}
		cc.lastJ = j
		cc.lastCPU = c.CPUTime
		if !done {
			keep = append(keep, cc)
		}
	}
	// Zero dropped tail cursors so released containers become collectable.
	for i := len(keep); i < len(e.live); i++ {
		e.live[i] = nil
	}
	e.live = keep
	e.attributed.Append(tickJ)

	// Hierarchy roll-up records: per-service then per-tenant deltas over
	// the same tick, mirroring the container scan. Flat runs skip this
	// entirely — no hierarchy, no records, byte-identical stream.
	if h := fac.Hierarchy(); h != nil {
		e.emitHierarchy(h, t)
	}

	// Modeled-power cache: recompute only buckets at or above this
	// engine's own dirty cursor (late writes reach back), from scratch on
	// coefficient change — the recalibrator's cache policy, on an
	// independent cursor and into a bounded ring.
	e.patchModeled()

	// Drift refit: align fresh samples and fold them into the windowed
	// Gram, evicting beyond the window.
	e.foldDrift(freshSamples)

	e.emit(Record{
		Tick: e.tick, T: t, Kind: KindSystem,
		EnergyJ:    tickJ,
		CumEnergyJ: e.cumJ,
		//pclint:allow floatsafe tickSeconds is positive: withDefaults forces cfg.Tick > 0
		AttributedW: tickJ / e.tickSeconds(),
		ModeledW:    e.modeledTickMean(),
		MeasuredW:   meanActive(freshSamples, e.src.Meter),
		Samples:     len(freshSamples),
		FitN:        len(e.pairs),
		DriftErr:    e.driftErr,
	})

	if e.cfg.LedgerCheckEvery > 0 && e.tick%e.cfg.LedgerCheckEvery == 0 {
		e.checkLedger(t)
	}
	if e.cfg.CheckpointEvery > 0 && e.tick%e.cfg.CheckpointEvery == 0 {
		e.lastCP = e.Checkpoint()
	}
}

// emitHierarchy walks the hierarchy's services and tenants in
// registration order, adopting nodes born since the last tick and
// emitting a record for every node whose cumulative energy moved. The
// cumulative values are the incremental accumulators (charged in
// simulation order) — the same view enforcement reads — so the streamed
// per-tenant ledger reconciles with the container records it aggregates.
func (e *Engine) emitHierarchy(h *core.Hierarchy, t sim.Time) {
	for len(e.svcLast) < h.NumServices() {
		e.svcLast = append(e.svcLast, 0)
	}
	for i := range e.svcLast {
		s := h.ServiceAt(i)
		j := s.Usage().EnergyJ()
		delta := j - e.svcLast[i]
		//pclint:allow floatsafe exact-zero fast path: an idle service contributes no record
		if delta != 0 {
			e.emit(Record{
				Tick: e.tick, T: t, Kind: KindService,
				ID: s.Index, Label: s.Qualified(), Client: s.Tenant.Name,
				//pclint:allow floatsafe tickSeconds is positive: withDefaults forces cfg.Tick > 0
				PowerW:     delta / e.tickSeconds(),
				EnergyJ:    delta,
				CumEnergyJ: j,
			})
		}
		e.svcLast[i] = j
	}
	for len(e.tenLast) < h.NumTenants() {
		e.tenLast = append(e.tenLast, 0)
	}
	for i := range e.tenLast {
		ten := h.TenantAt(i)
		j := ten.Usage().EnergyJ()
		delta := j - e.tenLast[i]
		//pclint:allow floatsafe exact-zero fast path: an idle tenant contributes no record
		if delta != 0 {
			e.emit(Record{
				Tick: e.tick, T: t, Kind: KindTenant,
				ID: ten.Index, Label: ten.Name,
				//pclint:allow floatsafe tickSeconds is positive: withDefaults forces cfg.Tick > 0
				PowerW:     delta / e.tickSeconds(),
				EnergyJ:    delta,
				CumEnergyJ: j,
			})
		}
		e.tenLast[i] = j
	}
}

func (e *Engine) tickSeconds() float64 {
	return float64(e.cfg.Tick) / float64(sim.Second)
}

func (e *Engine) emit(r Record) {
	e.records++
	if e.Sink != nil {
		e.Sink.OnRecord(r)
	}
}

// checkLedger reconciles the streamed ledger (cumJ, accumulated from
// per-tick per-container deltas in emission order) against the facility's
// authoritative full-scan accounting — the live-stream conservation check.
func (e *Engine) checkLedger(t sim.Time) {
	want := e.src.Fac.TotalAccountedEnergyJ()
	diff := e.cumJ - want
	if diff < 0 {
		diff = -diff
	}
	bound := e.cfg.LedgerTol * (1 + abs(want))
	if diff > bound && e.Audit != nil {
		e.Audit.OnStreamViolation("stream-ledger", t,
			"streamed ledger "+formatFloat(e.cumJ)+" J vs accounted "+formatFloat(want)+" J")
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// patchModeled maintains the bounded modeled-power ring: slot b holds the
// modeled active power of metric bucket b under the facility's current
// coefficients. Dirty buckets below the ring's retained window are stale
// by construction and dropped.
func (e *Engine) patchModeled() {
	ms := e.src.Fac.Metrics()
	cur := e.src.Fac.Coeff
	n := ms.Len()
	from := e.modeled.Len()
	if e.mpValid && cur == e.mpCoeff {
		if d := e.mpCursor.DirtyLow(); d < from {
			from = d
		}
	} else {
		from = e.modeled.Lo()
		e.mpCoeff = cur
		e.mpValid = true
	}
	if from < e.modeled.Lo() {
		from = e.modeled.Lo()
	}
	for b := from; b < n; b++ {
		v := cur.Estimate(ms.At(b))
		if b < e.modeled.Len() {
			e.modeled.Set(b, v)
		} else {
			e.modeled.Append(v)
		}
	}
	e.mpCursor.Clear()
}

// modeledTickMean averages the modeled-power slots covering the last tick.
func (e *Engine) modeledTickMean() float64 {
	t := sim.Time(e.tick) * e.cfg.Tick
	iv := e.modeled.Interval()
	lo := int((t - e.cfg.Tick) / iv)
	hi := int(t / iv)
	var sum float64
	n := 0
	for b := lo; b < hi; b++ {
		if v, ok := e.modeled.At(b); ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func meanActive(samples []power.Sample, m power.Meter) float64 {
	if len(samples) == 0 || m == nil {
		return 0
	}
	var sum float64
	for _, s := range samples {
		sum += s.Watts - m.IdleW()
	}
	return sum / float64(len(samples))
}

// foldDrift aligns freshly delivered meter samples into (metrics, active
// power) pairs and maintains the windowed online refit: Fold on arrival,
// Unfold on eviction, periodic exact rebuild to bound Remove residue —
// the PR 4 incremental-fit machinery applied at stream level.
func (e *Engine) foldDrift(fresh []power.Sample) {
	if e.src.Meter == nil || len(fresh) == 0 {
		return
	}
	if !e.delayKnown {
		// Take the delay from the facility's recalibrator once it has
		// aligned (the estimate the attribution pipeline itself uses);
		// without a recalibrator fall back to the meter's nominal delay.
		// Samples arriving before the delay resolves are not aligned —
		// the drift monitor has a warm-up, deterministically.
		if r := e.src.Fac.Recalibrator(); r != nil {
			if d, ok := r.Delay(); ok {
				e.delay, e.delayKnown = d, true
			}
		} else {
			e.delay, e.delayKnown = e.src.Meter.Delay(), true
		}
		if !e.delayKnown {
			return
		}
	}
	ms := e.src.Fac.Metrics()
	plan := model.FitPlan{Scope: e.src.Scope, IncludeChipShare: e.src.Fac.Coeff.IncludesChipShare}
	if !e.planKnown || plan != e.plan || e.gram == nil {
		e.plan = plan
		e.planKnown = true
		e.rebuildGram()
	}
	for _, p := range align.AlignSamples(fresh, e.src.Meter.IdleW(), e.src.Meter.Interval(), ms, e.delay) {
		s := model.CalSample{M: p.M, Weight: 1}
		if e.src.Scope == model.ScopePackage {
			s.PkgActiveW = p.ActiveW
			s.MachineActiveW = p.ActiveW // unused in package scope
		} else {
			s.MachineActiveW = p.ActiveW
		}
		if err := e.plan.Fold(e.gram, s); err != nil {
			continue
		}
		e.pairs = append(e.pairs, s)
	}
	if over := len(e.pairs) - e.cfg.DriftWindow; over > 0 {
		for _, s := range e.pairs[:over] {
			if err := e.plan.Unfold(e.gram, s); err != nil {
				break
			}
		}
		e.pairs = append(e.pairs[:0], e.pairs[over:]...)
		e.evictions += over
		e.evTotal += int64(over)
		if e.evictions >= driftRebuildEvery {
			e.evictions = 0
			e.rebuildGram()
		}
	}
	e.solveDrift()
}

// rebuildGram reaccumulates the window from scratch — the exact fold
// sequence a batch FitGram over the retained pairs performs.
func (e *Engine) rebuildGram() {
	e.gram = linalg.NewGram(e.plan.K())
	for _, s := range e.pairs {
		if err := e.plan.Fold(e.gram, s); err != nil {
			continue
		}
	}
}

// solveDrift refreshes the windowed fit and its in-window error.
func (e *Engine) solveDrift() {
	if e.gram == nil || e.gram.N() < driftMinPairs {
		e.driftOK = false
		e.driftErr = 0
		return
	}
	c, err := model.FitFromGram(e.gram, model.FitOptions{
		Scope:            e.src.Scope,
		IncludeChipShare: e.plan.IncludeChipShare,
		IdleW:            e.src.Meter.IdleW(),
		Base:             e.src.Fac.Coeff,
	})
	if err != nil {
		e.driftOK = false
		e.driftErr = 0
		return
	}
	e.drift = c
	e.driftOK = true
	e.driftErr = model.FitError(c, e.pairs, e.src.Scope)
}
