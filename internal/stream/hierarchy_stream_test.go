package stream_test

import (
	"bytes"
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/model"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// TestStreamEmitsHierarchyRecords pins the hierarchy record contract:
// a machine with a hierarchy attached streams per-service and per-tenant
// roll-up records each tick — service labels qualified "tenant/service"
// with Client naming the tenant, tick ordering container → service →
// tenant → system — and the final cumulative values agree bit-for-bit
// with the hierarchy's incremental accumulators.
func TestStreamEmitsHierarchyRecords(t *testing.T) {
	const horizon = 4 * sim.Second
	bed := longBed(t, 61, horizon-sim.Second)
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond})
	var col stream.Collector
	e.Sink = &col
	e.RunUntil(horizon)

	lastSvc := map[string]stream.Record{}
	lastTen := map[string]stream.Record{}
	rank := func(k stream.Kind) int {
		switch k {
		case stream.KindContainer:
			return 0
		case stream.KindService:
			return 1
		case stream.KindTenant:
			return 2
		default:
			return 3
		}
	}
	prevTick, prevRank := 0, 0
	for _, r := range col.Records {
		if r.Tick != prevTick {
			prevTick, prevRank = r.Tick, 0
		}
		if got := rank(r.Kind); got < prevRank {
			t.Fatalf("tick %d: record kind %v out of order", r.Tick, r.Kind)
		} else {
			prevRank = got
		}
		switch r.Kind {
		case stream.KindService:
			if !strings.HasPrefix(r.Label, r.Client+"/") {
				t.Fatalf("service record label %q not qualified under tenant %q", r.Label, r.Client)
			}
			lastSvc[r.Label] = r
		case stream.KindTenant:
			if r.Client != "" || strings.Contains(r.Label, "/") {
				t.Fatalf("tenant record carries %q/%q", r.Label, r.Client)
			}
			lastTen[r.Label] = r
		}
	}
	if len(lastSvc) == 0 || len(lastTen) == 0 {
		t.Fatalf("hierarchical stream emitted %d service and %d tenant labels", len(lastSvc), len(lastTen))
	}

	// The load stops a second before the horizon, so by the final tick
	// every cumulative is settled: the last streamed value per node must
	// equal the hierarchy accumulator exactly.
	h := bed.m.Fac.Hierarchy()
	for i := 0; i < h.NumServices(); i++ {
		s := h.ServiceAt(i)
		r, ok := lastSvc[s.Qualified()]
		if !ok {
			t.Fatalf("service %s never streamed", s.Qualified())
		}
		if r.CumEnergyJ != s.Usage().EnergyJ() {
			t.Fatalf("service %s streamed cum %v J, accumulator %v J", s.Qualified(), r.CumEnergyJ, s.Usage().EnergyJ())
		}
		if r.ID != s.Index {
			t.Fatalf("service %s streamed ID %d, index %d", s.Qualified(), r.ID, s.Index)
		}
	}
	for i := 0; i < h.NumTenants(); i++ {
		ten := h.TenantAt(i)
		r, ok := lastTen[ten.Name]
		if !ok {
			t.Fatalf("tenant %s never streamed", ten.Name)
		}
		if r.CumEnergyJ != ten.Usage().EnergyJ() {
			t.Fatalf("tenant %s streamed cum %v J, accumulator %v J", ten.Name, r.CumEnergyJ, ten.Usage().EnergyJ())
		}
	}
}

// TestFlatStreamHasNoHierarchyRecords pins flat-mode byte-identity at the
// stream level: without a hierarchy attached, no service or tenant record
// is ever emitted, so a flat machine's canonical stream encoding is
// untouched by the hierarchy machinery.
func TestFlatStreamHasNoHierarchyRecords(t *testing.T) {
	bed := deployBed(t, core.ApproachChipShare, 62, workload.Stress{}, 0.5)
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage},
		stream.Config{Tick: 100 * sim.Millisecond})
	var col stream.Collector
	e.Sink = &col
	e.RunUntil(bed.end())
	for _, r := range col.Records {
		if r.Kind == stream.KindService || r.Kind == stream.KindTenant {
			t.Fatalf("flat stream emitted a %v record for %q", r.Kind, r.Label)
		}
	}
	if cp := e.Checkpoint(); len(cp.SvcLast) != 0 || len(cp.TenLast) != 0 {
		t.Fatalf("flat checkpoint carries hierarchy cursors: %v / %v", cp.SvcLast, cp.TenLast)
	}
}

// TestHierarchyCheckpointReplay extends the exact-replay contract to
// hierarchy mode: a checkpoint taken mid-run over a hierarchical machine
// carries the roll-up cursors, and ReplayTo over a freshly built
// identically-seeded machine reproduces the remaining stream — service
// and tenant records included — byte-for-byte.
func TestHierarchyCheckpointReplay(t *testing.T) {
	const seed, horizon = 63, 5 * sim.Second
	cfg := stream.Config{Tick: 100 * sim.Millisecond}

	base := longBed(t, seed, horizon-sim.Second)
	be := stream.New(stream.Sources{Eng: base.m.Eng, Fac: base.m.Fac, Meter: base.m.Chip, Scope: model.ScopePackage}, cfg)
	var baseCol stream.Collector
	be.Sink = &baseCol
	be.RunUntil(horizon)

	const cut = 23
	bed := longBed(t, seed, horizon-sim.Second)
	e := stream.New(stream.Sources{Eng: bed.m.Eng, Fac: bed.m.Fac, Meter: bed.m.Chip, Scope: model.ScopePackage}, cfg)
	e.RunTicks(cut)
	enc := stream.EncodeCheckpoint(e.Checkpoint())
	if !bytes.Contains(enc, []byte(`"svc_last"`)) || !bytes.Contains(enc, []byte(`"ten_last"`)) {
		t.Fatal("hierarchical checkpoint encoding lacks the roll-up cursors")
	}
	cp, err := stream.DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}

	bed2 := longBed(t, seed, horizon-sim.Second)
	re, err := stream.ReplayTo(stream.Sources{Eng: bed2.m.Eng, Fac: bed2.m.Fac, Meter: bed2.m.Chip, Scope: model.ScopePackage}, cfg, cp)
	if err != nil {
		t.Fatalf("ReplayTo: %v", err)
	}
	var tail stream.Collector
	re.Sink = &tail
	re.RunUntil(horizon)

	var want stream.Collector
	hadHier := false
	for _, r := range baseCol.Records {
		if r.Tick > cut {
			want.OnRecord(r)
			if r.Kind == stream.KindService || r.Kind == stream.KindTenant {
				hadHier = true
			}
		}
	}
	if !hadHier {
		t.Fatal("baseline tail contains no hierarchy records — test is vacuous")
	}
	if !bytes.Equal(tail.Encode(), want.Encode()) {
		t.Fatalf("restored tail (%d records) differs from uninterrupted run (%d records)",
			len(tail.Records), len(want.Records))
	}
	if stream.HashRecords(tail.Records) != stream.HashRecords(want.Records) {
		t.Fatal("tail SHA-256 mismatch")
	}
}
