package stream

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"strconv"

	"powercontainers/internal/sim"
)

// Kind distinguishes record types in the stream.
type Kind int

const (
	// KindContainer is a per-container attribution delta for one tick.
	KindContainer Kind = iota
	// KindSystem is the per-tick system summary record, emitted after
	// the tick's container, service and tenant records.
	KindSystem
	// KindService is a per-service roll-up delta for one tick, emitted
	// only when the source facility has a hierarchy attached.
	KindService
	// KindTenant is a per-tenant roll-up delta for one tick, emitted
	// only when the source facility has a hierarchy attached.
	KindTenant
)

// Record is one element of the engine's output stream. Container records
// report the energy attributed to one container during the tick (emitted
// only for containers with activity, plus a final Done record at
// release); service and tenant records report the hierarchy roll-up
// deltas over the same tick (hierarchy mode only); the system record
// summarizes the tick.
type Record struct {
	Tick int
	T    sim.Time
	Kind Kind

	// Container fields (service/tenant records reuse ID, Label, Client
	// and the power/energy trio: a service's Label is its qualified
	// "tenant/service" name with Client naming the tenant; a tenant
	// record's Label is the tenant name).
	ID         int
	Label      string
	Client     string
	PowerW     float64 // mean attributed power over the tick
	EnergyJ    float64 // energy attributed during the tick
	CumEnergyJ float64 // cumulative (container: its total; system: ledger)
	Done       bool    // final record: container released with no refs

	// System fields.
	AttributedW float64 // all-container attributed power over the tick
	ModeledW    float64 // mean modeled active power over the tick
	MeasuredW   float64 // mean active power of samples arrived this tick
	Samples     int     // meter samples arrived this tick
	FitN        int     // drift-window pairs retained
	DriftErr    float64 // in-window error of the drift refit
}

// formatFloat renders a float64 in the shortest representation that
// parses back to the same bits — the canonical float encoding of the
// record stream, so equal streams imply bit-equal values.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// AppendRecord appends the record's canonical single-line encoding
// (newline-terminated) to dst. The encoding is the unit of stream
// equality: two runs whose encoded streams are byte-identical attributed
// bit-identically.
func AppendRecord(dst []byte, r Record) []byte {
	switch r.Kind {
	case KindContainer:
		dst = append(dst, 'c')
		dst = appendInt(dst, int64(r.Tick))
		dst = appendInt(dst, int64(r.T))
		dst = appendInt(dst, int64(r.ID))
		dst = append(dst, ',')
		dst = strconv.AppendQuote(dst, r.Label)
		dst = append(dst, ',')
		dst = strconv.AppendQuote(dst, r.Client)
		dst = appendFloat(dst, r.PowerW)
		dst = appendFloat(dst, r.EnergyJ)
		dst = appendFloat(dst, r.CumEnergyJ)
		dst = append(dst, ',')
		if r.Done {
			dst = append(dst, '1')
		} else {
			dst = append(dst, '0')
		}
	case KindService:
		dst = append(dst, 'v')
		dst = appendInt(dst, int64(r.Tick))
		dst = appendInt(dst, int64(r.T))
		dst = appendInt(dst, int64(r.ID))
		dst = append(dst, ',')
		dst = strconv.AppendQuote(dst, r.Label)
		dst = append(dst, ',')
		dst = strconv.AppendQuote(dst, r.Client)
		dst = appendFloat(dst, r.PowerW)
		dst = appendFloat(dst, r.EnergyJ)
		dst = appendFloat(dst, r.CumEnergyJ)
	case KindTenant:
		dst = append(dst, 't')
		dst = appendInt(dst, int64(r.Tick))
		dst = appendInt(dst, int64(r.T))
		dst = appendInt(dst, int64(r.ID))
		dst = append(dst, ',')
		dst = strconv.AppendQuote(dst, r.Label)
		dst = appendFloat(dst, r.PowerW)
		dst = appendFloat(dst, r.EnergyJ)
		dst = appendFloat(dst, r.CumEnergyJ)
	case KindSystem:
		dst = append(dst, 's')
		dst = appendInt(dst, int64(r.Tick))
		dst = appendInt(dst, int64(r.T))
		dst = appendFloat(dst, r.AttributedW)
		dst = appendFloat(dst, r.ModeledW)
		dst = appendFloat(dst, r.MeasuredW)
		dst = appendInt(dst, int64(r.Samples))
		dst = appendFloat(dst, r.CumEnergyJ)
		dst = appendInt(dst, int64(r.FitN))
		dst = appendFloat(dst, r.DriftErr)
	default:
		dst = append(dst, '?')
	}
	return append(dst, '\n')
}

func appendInt(dst []byte, v int64) []byte {
	dst = append(dst, ',')
	return strconv.AppendInt(dst, v, 10)
}

func appendFloat(dst []byte, v float64) []byte {
	dst = append(dst, ',')
	return strconv.AppendFloat(dst, v, 'g', -1, 64)
}

// Hasher incrementally hashes a record stream (SHA-256 over the canonical
// encodings) without retaining it — the bounded-memory way to compare
// streams, used by the checkpoint-replay tests.
type Hasher struct {
	h       hash.Hash
	scratch []byte
	n       int64
}

// NewHasher returns an empty stream hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// OnRecord implements Sink.
func (h *Hasher) OnRecord(r Record) {
	h.scratch = AppendRecord(h.scratch[:0], r)
	h.h.Write(h.scratch)
	h.n++
}

// Sum returns the hex SHA-256 of the records hashed so far.
func (h *Hasher) Sum() string { return hex.EncodeToString(h.h.Sum(nil)) }

// Count returns how many records were hashed.
func (h *Hasher) Count() int64 { return h.n }

// Collector is a Sink that retains every record.
type Collector struct {
	Records []Record
}

// OnRecord implements Sink.
func (c *Collector) OnRecord(r Record) { c.Records = append(c.Records, r) }

// Encode returns the canonical encoding of the collected stream.
func (c *Collector) Encode() []byte {
	var out []byte
	for _, r := range c.Records {
		out = AppendRecord(out, r)
	}
	return out
}

// HashRecords returns the hex SHA-256 of the records' canonical stream
// encoding.
func HashRecords(recs []Record) string {
	h := NewHasher()
	for _, r := range recs {
		h.OnRecord(r)
	}
	return h.Sum()
}

// Tee fans a record out to multiple sinks in order.
type Tee []Sink

// OnRecord implements Sink.
func (t Tee) OnRecord(r Record) {
	for _, s := range t {
		if s != nil {
			s.OnRecord(r)
		}
	}
}
