// Package model implements the paper's event-driven multicore power model:
// the metric vector of §3.1, the Eq. 1 (core-level events only) and Eq. 2
// (plus shared chip maintenance power) linear estimators, least-squares
// coefficient fitting, and the bucketed system-wide metric series that the
// alignment/recalibration machinery (§3.2) regresses against measured power.
package model

import (
	"fmt"

	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
)

// Metrics is the model input vector for one sampling period. CPU metrics
// are rates per *elapsed* core cycle, so a half-utilized core contributes
// half the rates of a fully-busy one:
//
//	Core  — non-halt cycles / elapsed cycles (utilization, Mcore)
//	Ins   — retired instructions per elapsed cycle (Mins)
//	Float — floating point ops per elapsed cycle (Mfloat)
//	Cache — last-level cache references per elapsed cycle (Mcache)
//	Mem   — memory transactions per elapsed cycle (Mmem)
//	Chip  — share of on-chip maintenance power, Eq. 3 (Mchipshare)
//	Disk, Net — device utilization fractions
//
// For a single task the metrics describe the core it runs on; for the whole
// system they are summed over cores (Chip then approximates the number of
// active chips, since the shares on one chip sum to ≈1).
type Metrics struct {
	Core  float64
	Ins   float64
	Float float64
	Cache float64
	Mem   float64
	Chip  float64
	Disk  float64
	Net   float64
}

// Add returns the element-wise sum.
func (m Metrics) Add(o Metrics) Metrics {
	return Metrics{
		Core: m.Core + o.Core, Ins: m.Ins + o.Ins, Float: m.Float + o.Float,
		Cache: m.Cache + o.Cache, Mem: m.Mem + o.Mem, Chip: m.Chip + o.Chip,
		Disk: m.Disk + o.Disk, Net: m.Net + o.Net,
	}
}

// Scale returns m with every field multiplied by f.
func (m Metrics) Scale(f float64) Metrics {
	return Metrics{
		Core: m.Core * f, Ins: m.Ins * f, Float: m.Float * f,
		Cache: m.Cache * f, Mem: m.Mem * f, Chip: m.Chip * f,
		Disk: m.Disk * f, Net: m.Net * f,
	}
}

// Max returns the element-wise maximum; calibration uses it to report the
// paper's C·Mmax table (§4.1).
func (m Metrics) Max(o Metrics) Metrics {
	mx := func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	return Metrics{
		Core: mx(m.Core, o.Core), Ins: mx(m.Ins, o.Ins), Float: mx(m.Float, o.Float),
		Cache: mx(m.Cache, o.Cache), Mem: mx(m.Mem, o.Mem), Chip: mx(m.Chip, o.Chip),
		Disk: mx(m.Disk, o.Disk), Net: mx(m.Net, o.Net),
	}
}

// MetricNames lists the metric vector components in canonical order.
var MetricNames = []string{"core", "ins", "float", "cache", "mem", "chipshare", "disk", "net"}

// Vector returns the metrics in canonical order.
func (m Metrics) Vector() []float64 {
	return []float64{m.Core, m.Ins, m.Float, m.Cache, m.Mem, m.Chip, m.Disk, m.Net}
}

// MetricsFromVector is the inverse of Vector.
func MetricsFromVector(v []float64) (Metrics, error) {
	if len(v) != 8 {
		return Metrics{}, fmt.Errorf("model: metric vector has %d entries, want 8", len(v))
	}
	return Metrics{
		Core: v[0], Ins: v[1], Float: v[2], Cache: v[3],
		Mem: v[4], Chip: v[5], Disk: v[6], Net: v[7],
	}, nil
}

// Coefficients holds the calibrated linear model parameters (the C's of
// Eq. 1/2) plus the machine's constant idle power for reference. A zero
// Chip coefficient with IncludesChipShare=false is the paper's Approach #1;
// with the chip term it is Approach #2/3.
type Coefficients struct {
	IdleW float64 // Cidle — constant, not part of the active model

	Core  float64
	Ins   float64
	Float float64
	Cache float64
	Mem   float64
	Chip  float64
	Disk  float64
	Net   float64

	// IncludesChipShare records whether the chip maintenance term was
	// part of the fit (Eq. 2) or excluded (Eq. 1).
	IncludesChipShare bool
}

// Vector returns the coefficients in canonical metric order.
func (c Coefficients) Vector() []float64 {
	return []float64{c.Core, c.Ins, c.Float, c.Cache, c.Mem, c.Chip, c.Disk, c.Net}
}

// EstimateCPU returns the modeled active power of the processor-side terms
// only (everything except disk/net) — the per-task and package-scope
// estimate.
func (c Coefficients) EstimateCPU(m Metrics) float64 {
	return c.Core*m.Core + c.Ins*m.Ins + c.Float*m.Float +
		c.Cache*m.Cache + c.Mem*m.Mem + c.Chip*m.Chip
}

// Estimate returns the modeled whole-machine active power including device
// terms.
func (c Coefficients) Estimate(m Metrics) float64 {
	return c.EstimateCPU(m) + c.Disk*m.Disk + c.Net*m.Net
}

func (c Coefficients) String() string {
	return fmt.Sprintf("Coefficients{idle=%.1f core=%.2f ins=%.2f float=%.2f cache=%.1f mem=%.1f chip=%.2f disk=%.2f net=%.2f}",
		c.IdleW, c.Core, c.Ins, c.Float, c.Cache, c.Mem, c.Chip, c.Disk, c.Net)
}

// MetricSeries stores time-weighted system-wide metrics on a fixed bucket
// grid: bucket b of each component holds the time-average of that metric
// over the bucket, summed across cores. The facility feeds it from every
// attribution period; recalibration regresses its buckets against aligned
// meter readings, and the modeled-power trace for alignment is computed
// from it.
type MetricSeries struct {
	interval sim.Time
	series   [8]*stats.Series
}

// NewMetricSeries returns a metric series on the given bucket grid.
func NewMetricSeries(interval sim.Time) *MetricSeries {
	ms := &MetricSeries{interval: interval}
	for i := range ms.series {
		ms.series[i] = stats.NewSeries(interval)
	}
	return ms
}

// Interval returns the bucket width.
func (ms *MetricSeries) Interval() sim.Time { return ms.interval }

// Len returns the number of buckets touched.
func (ms *MetricSeries) Len() int {
	n := 0
	for _, s := range ms.series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	return n
}

// AddSpread accumulates a period's metrics over [t0, t1): each bucket gains
// metric × (overlap / interval), so a fully covered bucket of a fully
// utilized core accumulates Core = 1.
func (ms *MetricSeries) AddSpread(t0, t1 sim.Time, m Metrics) {
	if t1 <= t0 {
		return
	}
	//pclint:allow floatsafe series are constructed with a positive bucket interval
	scale := float64(t1-t0) / float64(ms.interval)
	// A stack array instead of m.Vector(): this runs on every attribution
	// period and device-I/O completion, so it must not allocate.
	v := [8]float64{m.Core, m.Ins, m.Float, m.Cache, m.Mem, m.Chip, m.Disk, m.Net}
	for i, s := range ms.series {
		//pclint:allow floatsafe exact-zero fast path skipping metrics that were never observed
		if v[i] == 0 {
			continue
		}
		s.AddSpread(t0, t1, v[i]*scale)
	}
}

// At returns the time-averaged metrics of bucket b.
func (ms *MetricSeries) At(b int) Metrics {
	return Metrics{
		Core:  ms.series[0].Bucket(b),
		Ins:   ms.series[1].Bucket(b),
		Float: ms.series[2].Bucket(b),
		Cache: ms.series[3].Bucket(b),
		Mem:   ms.series[4].Bucket(b),
		Chip:  ms.series[5].Bucket(b),
		Disk:  ms.series[6].Bucket(b),
		Net:   ms.series[7].Bucket(b),
	}
}

// DirtyLow returns the lowest bucket index any component series has written
// since the last ClearDirty (≥ Len() when nothing changed). Like
// stats.Series, the mark supports a single consumer — in this repo, the
// recalibrator's incremental modeled-power cache.
func (ms *MetricSeries) DirtyLow() int {
	lo := ms.series[0].DirtyLow()
	for _, s := range ms.series[1:] {
		if d := s.DirtyLow(); d < lo {
			lo = d
		}
	}
	return lo
}

// ClearDirty resets the dirty mark of every component series.
func (ms *MetricSeries) ClearDirty() {
	for _, s := range ms.series {
		s.ClearDirty()
	}
}

// MetricCursor is an independent dirty low-water mark over a MetricSeries,
// one stats.Cursor per component. It lets a second incremental consumer
// (the streaming engine's modeled-power cache) coexist with the
// recalibrator, which owns the legacy DirtyLow/ClearDirty mark.
type MetricCursor struct {
	cursors [8]*stats.Cursor
}

// NewCursor registers an independent cursor; it starts fully dirty.
func (ms *MetricSeries) NewCursor() *MetricCursor {
	mc := &MetricCursor{}
	for i, s := range ms.series {
		mc.cursors[i] = s.NewCursor()
	}
	return mc
}

// DirtyLow returns the lowest bucket any component wrote since Clear.
func (mc *MetricCursor) DirtyLow() int {
	lo := mc.cursors[0].DirtyLow()
	for _, c := range mc.cursors[1:] {
		if d := c.DirtyLow(); d < lo {
			lo = d
		}
	}
	return lo
}

// Clear resets this cursor without touching other consumers.
func (mc *MetricCursor) Clear() {
	for _, c := range mc.cursors {
		c.Clear()
	}
}

// WindowMean returns the mean metrics over buckets [lo, hi).
func (ms *MetricSeries) WindowMean(lo, hi int) Metrics {
	if hi <= lo {
		return Metrics{}
	}
	var sum Metrics
	for b := lo; b < hi; b++ {
		sum = sum.Add(ms.At(b))
	}
	return sum.Scale(1 / float64(hi-lo))
}

// ModeledPower returns the modeled active power series (watts per bucket)
// under the given coefficients, for buckets [0, n).
func (ms *MetricSeries) ModeledPower(c Coefficients, n int) []float64 {
	if max := ms.Len(); n > max {
		n = max
	}
	out := make([]float64, n)
	for b := 0; b < n; b++ {
		out[b] = c.Estimate(ms.At(b))
	}
	return out
}
