package model

import (
	"testing"

	"powercontainers/internal/linalg"
	"powercontainers/internal/sim"
)

func gramTestSamples(n int) []CalSample {
	truth := Coefficients{Core: 9, Ins: 1.5, Float: 0.8, Cache: 120, Mem: 300, Chip: 5, Disk: 2, Net: 6}
	rng := sim.NewRand(123)
	samples := make([]CalSample, 0, n)
	for i := 0; i < n; i++ {
		m := Metrics{
			Core: rng.Float64() * 4, Ins: rng.Float64() * 6, Float: rng.Float64(),
			Cache: rng.Float64() * 0.08, Mem: rng.Float64() * 0.02,
			Chip: rng.Float64(), Disk: rng.Float64(), Net: rng.Float64(),
		}
		samples = append(samples, CalSample{
			M:              m,
			MachineActiveW: truth.Estimate(m) + rng.NormFloat64(0.1),
			PkgActiveW:     truth.EstimateCPU(m) + rng.NormFloat64(0.1),
			Weight:         1 + rng.Float64(),
		})
	}
	return samples
}

// TestFitFromGramMatchesFit pins the refactor: a fit through an explicitly
// accumulated Gram must equal the one-call Fit bit-for-bit, for every
// scope/chip-share plan.
func TestFitFromGramMatchesFit(t *testing.T) {
	samples := gramTestSamples(50)
	base := Coefficients{Disk: 2.5, Net: 7.5}
	for _, opts := range []FitOptions{
		{Scope: ScopeMachine, IncludeChipShare: false, IdleW: 30},
		{Scope: ScopeMachine, IncludeChipShare: true, IdleW: 30},
		{Scope: ScopePackage, IncludeChipShare: false, Base: base},
		{Scope: ScopePackage, IncludeChipShare: true, Base: base},
	} {
		want, err := Fit(samples, opts)
		if err != nil {
			t.Fatalf("%+v: Fit: %v", opts, err)
		}
		g, err := FitGram(samples, FitPlan{Scope: opts.Scope, IncludeChipShare: opts.IncludeChipShare})
		if err != nil {
			t.Fatalf("%+v: FitGram: %v", opts, err)
		}
		got, err := FitFromGram(g, opts)
		if err != nil {
			t.Fatalf("%+v: FitFromGram: %v", opts, err)
		}
		if got != want {
			t.Fatalf("scope=%v chip=%v: gram fit %+v differs from batch fit %+v",
				opts.Scope, opts.IncludeChipShare, got, want)
		}
	}
}

// TestFitGramSubsetMatchesEq1 pins the shared-accumulation trick offline
// calibration uses: projecting the Eq. 2 Gram onto the non-chip columns must
// reproduce a direct Eq. 1 fit bit-for-bit, because each retained
// accumulator entry saw the identical addition sequence.
func TestFitGramSubsetMatchesEq1(t *testing.T) {
	samples := gramTestSamples(50)
	eq2Plan := FitPlan{Scope: ScopeMachine, IncludeChipShare: true}
	g2, err := FitGram(samples, eq2Plan)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2 machine layout: core, ins, float, cache, mem, chip, disk, net —
	// dropping column 5 leaves the Eq. 1 layout.
	g1 := g2.Subset([]int{0, 1, 2, 3, 4, 6, 7})
	got, err := FitFromGram(g1, FitOptions{Scope: ScopeMachine, IncludeChipShare: false, IdleW: 12})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Fit(samples, FitOptions{Scope: ScopeMachine, IncludeChipShare: false, IdleW: 12})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("subset Eq1 fit %+v differs from direct fit %+v", got, want)
	}
}

// TestFitPlanFoldUnfoldRoundTrip checks that Unfold removes exactly what
// Fold added: fold everything, unfold a prefix, and the solution must agree
// with a batch fit of the suffix to rounding-level tolerance.
func TestFitPlanFoldUnfoldRoundTrip(t *testing.T) {
	samples := gramTestSamples(40)
	plan := FitPlan{Scope: ScopeMachine, IncludeChipShare: true}
	g, err := FitGram(samples, plan)
	if err != nil {
		t.Fatal(err)
	}
	const drop = 15
	for _, s := range samples[:drop] {
		if err := plan.Unfold(g, s); err != nil {
			t.Fatalf("Unfold: %v", err)
		}
	}
	if g.N() != len(samples)-drop {
		t.Fatalf("N = %d, want %d", g.N(), len(samples)-drop)
	}
	got, err := FitFromGram(g, FitOptions{Scope: ScopeMachine, IncludeChipShare: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Fit(samples[drop:], FitOptions{Scope: ScopeMachine, IncludeChipShare: true})
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"core": {got.Core, want.Core}, "ins": {got.Ins, want.Ins},
		"float": {got.Float, want.Float}, "cache": {got.Cache, want.Cache},
		"mem": {got.Mem, want.Mem}, "chip": {got.Chip, want.Chip},
		"disk": {got.Disk, want.Disk}, "net": {got.Net, want.Net},
	} {
		diff := pair[0] - pair[1]
		if diff < 0 {
			diff = -diff
		}
		scale := pair[1]
		if scale < 0 {
			scale = -scale
		}
		if diff > 1e-9*(1+scale) {
			t.Errorf("%s drifted past tolerance: %v vs %v", name, pair[0], pair[1])
		}
	}
}

// TestFitPlanErrors mirrors TestFitErrors for the Gram-based entry points.
func TestFitPlanErrors(t *testing.T) {
	if _, err := FitGram(nil, FitPlan{}); err == nil {
		t.Fatal("empty samples accepted")
	}
	if _, err := FitGram(gramTestSamples(3), FitPlan{Scope: FitScope(99)}); err == nil {
		t.Fatal("bad scope accepted")
	}
	g := linalg.NewGram(3)
	g.Add([]float64{1, 2, 3}, 1, 1)
	if _, err := FitFromGram(g, FitOptions{Scope: ScopeMachine}); err == nil {
		t.Fatal("feature-count mismatch accepted")
	}
}
