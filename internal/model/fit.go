package model

import (
	"fmt"
	"math"

	"powercontainers/internal/linalg"
)

// CalSample is one calibration observation: system-wide mean metrics over a
// steady-state window paired with the measured mean active power over the
// same window. PkgActiveW is NaN on machines without an on-chip meter.
type CalSample struct {
	M Metrics
	// MachineActiveW is the wall-meter reading minus machine idle.
	MachineActiveW float64
	// PkgActiveW is the on-chip meter reading minus package idle
	// (math.NaN() when the machine has no on-chip meter).
	PkgActiveW float64
	// Weight is the regression weight (1 if zero).
	Weight float64
}

// FitScope selects the regression target and feature set.
type FitScope int

const (
	// ScopeMachine fits all eight coefficients against machine active
	// power (offline calibration, and online recalibration on machines
	// with only a wall meter).
	ScopeMachine FitScope = iota
	// ScopePackage fits the six CPU coefficients against package active
	// power (online recalibration against the on-chip meter); device
	// coefficients are carried over unchanged.
	ScopePackage
)

// FitOptions configures a model fit.
type FitOptions struct {
	Scope FitScope
	// IncludeChipShare selects Eq. 2 (true) or Eq. 1 (false). Without
	// it, the shared maintenance power has no column to land in and
	// smears into the utilization coefficient — the Approach #1 error
	// source Figure 8 quantifies.
	IncludeChipShare bool
	// IdleW is recorded into the result for reporting (§4.1's Cidle).
	IdleW float64
	// Base supplies coefficients for terms outside the fitted scope
	// (package-scope fits keep Base's disk/net terms).
	Base Coefficients
}

// Fit calibrates model coefficients from samples by weighted least squares,
// the procedure the paper uses both offline (§4.1) and online (§3.2, where
// offline and online samples are weighed equally).
func Fit(samples []CalSample, opts FitOptions) (Coefficients, error) {
	if len(samples) == 0 {
		return Coefficients{}, fmt.Errorf("model: no calibration samples")
	}
	// Column layout: core, ins, float, cache, mem, [chip], [disk, net].
	var rows [][]float64
	var y []float64
	var w []float64
	for _, s := range samples {
		v := s.M.Vector()
		row := v[:5:5]
		if opts.IncludeChipShare {
			row = append(row, v[5])
		}
		var target float64
		switch opts.Scope {
		case ScopeMachine:
			row = append(row, v[6], v[7])
			target = s.MachineActiveW
		case ScopePackage:
			target = s.PkgActiveW
			if math.IsNaN(target) {
				return Coefficients{}, fmt.Errorf("model: package-scope fit with sample lacking package measurement")
			}
		default:
			return Coefficients{}, fmt.Errorf("model: unknown fit scope %d", opts.Scope)
		}
		weight := s.Weight
		//pclint:allow floatsafe exact zero is the documented unset sentinel of CalSample.Weight
		if weight == 0 {
			weight = 1
		}
		rows = append(rows, row)
		y = append(y, target)
		w = append(w, weight)
	}
	beta, err := linalg.LeastSquares(rows, y, w)
	if err != nil {
		return Coefficients{}, fmt.Errorf("model: fit failed: %w", err)
	}

	c := opts.Base
	c.IdleW = opts.IdleW
	c.IncludesChipShare = opts.IncludeChipShare
	c.Core, c.Ins, c.Float, c.Cache, c.Mem = beta[0], beta[1], beta[2], beta[3], beta[4]
	i := 5
	if opts.IncludeChipShare {
		c.Chip = beta[i]
		i++
	} else {
		c.Chip = 0
	}
	if opts.Scope == ScopeMachine {
		c.Disk, c.Net = beta[i], beta[i+1]
	}
	return c, nil
}

// FitError returns the mean absolute relative error of the model over the
// samples, in the fitted scope; calibration reports it as a sanity check.
func FitError(c Coefficients, samples []CalSample, scope FitScope) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, s := range samples {
		var est, meas float64
		if scope == ScopeMachine {
			est, meas = c.Estimate(s.M), s.MachineActiveW
		} else {
			est, meas = c.EstimateCPU(s.M), s.PkgActiveW
		}
		if meas <= 0 || math.IsNaN(meas) {
			continue
		}
		sum += math.Abs(est-meas) / meas
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
