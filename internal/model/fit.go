package model

import (
	"fmt"
	"math"

	"powercontainers/internal/linalg"
)

// CalSample is one calibration observation: system-wide mean metrics over a
// steady-state window paired with the measured mean active power over the
// same window. PkgActiveW is NaN on machines without an on-chip meter.
type CalSample struct {
	M Metrics
	// MachineActiveW is the wall-meter reading minus machine idle.
	MachineActiveW float64
	// PkgActiveW is the on-chip meter reading minus package idle
	// (math.NaN() when the machine has no on-chip meter).
	PkgActiveW float64
	// Weight is the regression weight (1 if zero).
	Weight float64
}

// FitScope selects the regression target and feature set.
type FitScope int

const (
	// ScopeMachine fits all eight coefficients against machine active
	// power (offline calibration, and online recalibration on machines
	// with only a wall meter).
	ScopeMachine FitScope = iota
	// ScopePackage fits the six CPU coefficients against package active
	// power (online recalibration against the on-chip meter); device
	// coefficients are carried over unchanged.
	ScopePackage
)

// FitOptions configures a model fit.
type FitOptions struct {
	Scope FitScope
	// IncludeChipShare selects Eq. 2 (true) or Eq. 1 (false). Without
	// it, the shared maintenance power has no column to land in and
	// smears into the utilization coefficient — the Approach #1 error
	// source Figure 8 quantifies.
	IncludeChipShare bool
	// IdleW is recorded into the result for reporting (§4.1's Cidle).
	IdleW float64
	// Base supplies coefficients for terms outside the fitted scope
	// (package-scope fits keep Base's disk/net terms).
	Base Coefficients
}

// FitPlan is the feature layout of a fit configuration: which regression
// columns a calibration sample contributes and which measurement it targets.
// Column layout: core, ins, float, cache, mem, [chip], [disk, net]. Two fits
// with equal plans accumulate structurally identical normal equations, which
// is what lets a Recalibrator maintain one Gram across refits.
type FitPlan struct {
	Scope            FitScope
	IncludeChipShare bool
}

// K returns the number of regression columns under the plan.
func (p FitPlan) K() int {
	k := 5
	if p.IncludeChipShare {
		k++
	}
	if p.Scope == ScopeMachine {
		k += 2
	}
	return k
}

// rowInto appends the sample's regression row to dst and returns it with the
// regression target and weight. dst lets callers reuse a stack scratch
// buffer on the per-sample hot path.
func (p FitPlan) rowInto(dst []float64, s CalSample) (row []float64, target, weight float64, err error) {
	row = append(dst, s.M.Core, s.M.Ins, s.M.Float, s.M.Cache, s.M.Mem)
	if p.IncludeChipShare {
		row = append(row, s.M.Chip)
	}
	switch p.Scope {
	case ScopeMachine:
		row = append(row, s.M.Disk, s.M.Net)
		target = s.MachineActiveW
	case ScopePackage:
		target = s.PkgActiveW
		if math.IsNaN(target) {
			return nil, 0, 0, fmt.Errorf("model: package-scope fit with sample lacking package measurement")
		}
	default:
		return nil, 0, 0, fmt.Errorf("model: unknown fit scope %d", p.Scope)
	}
	weight = s.Weight
	//pclint:allow floatsafe exact zero is the documented unset sentinel of CalSample.Weight
	if weight == 0 {
		weight = 1
	}
	return row, target, weight, nil
}

// Fold accumulates one sample into a Gram built for this plan.
func (p FitPlan) Fold(g *linalg.Gram, s CalSample) error {
	var scratch [8]float64
	row, target, weight, err := p.rowInto(scratch[:0], s)
	if err != nil {
		return err
	}
	g.Add(row, target, weight)
	return nil
}

// Unfold removes one previously folded sample from a Gram (the MaxOnline
// eviction path of online recalibration).
func (p FitPlan) Unfold(g *linalg.Gram, s CalSample) error {
	var scratch [8]float64
	row, target, weight, err := p.rowInto(scratch[:0], s)
	if err != nil {
		return err
	}
	return g.Remove(row, target, weight)
}

// FitGram accumulates the samples' normal equations under the plan without
// solving. Folding happens in sample order, so the result is bit-identical
// to the accumulation a direct Fit over the same samples performs.
func FitGram(samples []CalSample, plan FitPlan) (*linalg.Gram, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("model: no calibration samples")
	}
	g := linalg.NewGram(plan.K())
	for _, s := range samples {
		if err := plan.Fold(g, s); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// FitFromGram solves prebuilt normal equations and assembles coefficients
// exactly as Fit does — the entry point for callers that maintain a Gram
// incrementally (online recalibration) or share one accumulation across
// nested feature layouts (offline calibration's Eq. 1/Eq. 2).
func FitFromGram(g *linalg.Gram, opts FitOptions) (Coefficients, error) {
	plan := FitPlan{Scope: opts.Scope, IncludeChipShare: opts.IncludeChipShare}
	if g.K() != plan.K() {
		return Coefficients{}, fmt.Errorf("model: gram has %d features, plan wants %d", g.K(), plan.K())
	}
	beta, err := g.Solve()
	if err != nil {
		return Coefficients{}, fmt.Errorf("model: fit failed: %w", err)
	}
	c := opts.Base
	c.IdleW = opts.IdleW
	c.IncludesChipShare = opts.IncludeChipShare
	c.Core, c.Ins, c.Float, c.Cache, c.Mem = beta[0], beta[1], beta[2], beta[3], beta[4]
	i := 5
	if opts.IncludeChipShare {
		c.Chip = beta[i]
		i++
	} else {
		c.Chip = 0
	}
	if opts.Scope == ScopeMachine {
		c.Disk, c.Net = beta[i], beta[i+1]
	}
	return c, nil
}

// Fit calibrates model coefficients from samples by weighted least squares,
// the procedure the paper uses both offline (§4.1) and online (§3.2, where
// offline and online samples are weighed equally).
func Fit(samples []CalSample, opts FitOptions) (Coefficients, error) {
	g, err := FitGram(samples, FitPlan{Scope: opts.Scope, IncludeChipShare: opts.IncludeChipShare})
	if err != nil {
		return Coefficients{}, err
	}
	return FitFromGram(g, opts)
}

// FitError returns the mean absolute relative error of the model over the
// samples, in the fitted scope; calibration reports it as a sanity check.
func FitError(c Coefficients, samples []CalSample, scope FitScope) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	n := 0
	for _, s := range samples {
		var est, meas float64
		if scope == ScopeMachine {
			est, meas = c.Estimate(s.M), s.MachineActiveW
		} else {
			est, meas = c.EstimateCPU(s.M), s.PkgActiveW
		}
		if meas <= 0 || math.IsNaN(meas) {
			continue
		}
		sum += math.Abs(est-meas) / meas
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
