package model

import (
	"powercontainers/internal/cpu"
)

// IdleChecker reports whether the OS is currently scheduling the idle task
// on a core. Eq. 3 uses it to treat stale samples from idle siblings as
// zero activity: an idle core takes no overflow interrupts, so its last
// published utilization sample can be arbitrarily old.
type IdleChecker interface {
	CoreIdle(core int) bool
}

// ChipShare computes Eq. 3 for the task currently running on core self:
//
//	Mchipshare(c) = Mcore(c) / (1 + Σ_{siblings i} Mcore(i))
//
// myUtil is the current period's utilization of core self; sibling
// utilizations are read from each sibling's most recent published sample
// without any cross-core synchronization — the paper's deliberately
// approximate, coordination-free estimate. If a core is busy while all
// siblings idle, the full chip maintenance power attributes to it
// (share = myUtil / 1); with k fully-busy cores each gets ≈1/k.
func ChipShare(spec cpu.MachineSpec, cores []*cpu.Core, self int, myUtil float64, idle IdleChecker) float64 {
	if myUtil <= 0 {
		return 0
	}
	chip := spec.ChipOf(self)
	var siblings float64
	for _, sib := range cores {
		if sib.ID == self || sib.Chip != chip {
			continue
		}
		if idle != nil && idle.CoreIdle(sib.ID) {
			continue // stale sample from an idle sibling counts as zero
		}
		u := sib.LastUtil
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		siblings += u
	}
	//pclint:allow floatsafe siblings sums utilizations clamped to [0,1], so the denominator is >= 1
	return myUtil / (1 + siblings)
}

// OracleChipShare computes the share with perfect global knowledge of how
// many sibling cores are busy right now. It is the ablation baseline the
// synchronization-free estimate is compared against.
func OracleChipShare(spec cpu.MachineSpec, self int, myUtil float64, idle IdleChecker) float64 {
	if myUtil <= 0 {
		return 0
	}
	chip := spec.ChipOf(self)
	busy := 0
	for c := chip * spec.CoresPerChip; c < (chip+1)*spec.CoresPerChip; c++ {
		if c == self {
			continue
		}
		if idle == nil || !idle.CoreIdle(c) {
			busy++
		}
	}
	//pclint:allow floatsafe busy is a non-negative count, so the denominator is >= 1
	return myUtil / float64(1+busy)
}
