package model

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// TestChipShareSiblingPermutationInvariance: Eq. 3 sums sibling
// utilizations, so the share must not depend on the order in which the
// cores slice enumerates the siblings (the kernel rebuilds that slice in
// different orders across configurations). Tolerance 1e-12 allows only
// float summation reordering.
func TestChipShareSiblingPermutationInvariance(t *testing.T) {
	spec := cpu.SandyBridge
	rng := sim.NewRand(11)
	for trial := 0; trial < 200; trial++ {
		cores := make([]*cpu.Core, spec.Cores())
		for i := range cores {
			cores[i] = cpu.NewCore(i, spec)
			cores[i].LastUtil = 2*rng.Float64() - 0.5 // includes out-of-range samples
		}
		self := rng.Intn(spec.Cores())
		myUtil := rng.Float64()
		if myUtil == 0 {
			myUtil = 0.5
		}

		base := ChipShare(spec, cores, self, myUtil, nil)
		if base <= 0 || base > myUtil+1e-12 || base > 1+1e-12 {
			t.Fatalf("trial %d: share %v outside (0, min(1, myUtil %v)]", trial, base, myUtil)
		}
		perm := make([]*cpu.Core, len(cores))
		for i, j := range rng.Perm(len(cores)) {
			perm[i] = cores[j]
		}
		got := ChipShare(spec, perm, self, myUtil, nil)
		if math.Abs(got-base) > 1e-12 {
			t.Fatalf("trial %d: share changed under permutation: %v vs %v", trial, got, base)
		}
	}
}

// TestChipShareBusySiblingsBound: with k fully busy cores on a chip each
// core's share is exactly 1/k of its utilization denominator — the
// paper's "with k fully-busy cores each gets ≈1/k" sanity case — and an
// all-idle chip attributes the whole maintenance power to the one busy
// core.
func TestChipShareBusySiblingsBound(t *testing.T) {
	spec := cpu.Westmere
	cores := make([]*cpu.Core, spec.Cores())
	for i := range cores {
		cores[i] = cpu.NewCore(i, spec)
		cores[i].LastUtil = 1
	}
	got := ChipShare(spec, cores, 0, 1, nil)
	want := 1 / float64(spec.CoresPerChip)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("fully busy chip: share %v, want %v", got, want)
	}

	for i := range cores {
		cores[i].LastUtil = 0
	}
	if got := ChipShare(spec, cores, 0, 1, nil); got != 1 {
		t.Fatalf("lone busy core: share %v, want 1", got)
	}
	if got := ChipShare(spec, cores, 0, 0, nil); got != 0 {
		t.Fatalf("idle core: share %v, want 0", got)
	}
}
