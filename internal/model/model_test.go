package model

import (
	"math"
	"testing"
	"testing/quick"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

func TestMetricsVectorRoundTrip(t *testing.T) {
	f := func(a, b, c, d, e, g, h, i float32) bool {
		m := Metrics{
			Core: float64(a), Ins: float64(b), Float: float64(c), Cache: float64(d),
			Mem: float64(e), Chip: float64(g), Disk: float64(h), Net: float64(i),
		}
		back, err := MetricsFromVector(m.Vector())
		return err == nil && back == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if _, err := MetricsFromVector([]float64{1, 2}); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestMetricsArithmetic(t *testing.T) {
	a := Metrics{Core: 1, Ins: 2, Mem: 0.5}
	b := Metrics{Core: 3, Cache: 1}
	sum := a.Add(b)
	if sum.Core != 4 || sum.Ins != 2 || sum.Cache != 1 || sum.Mem != 0.5 {
		t.Fatalf("Add = %+v", sum)
	}
	sc := a.Scale(2)
	if sc.Core != 2 || sc.Ins != 4 || sc.Mem != 1 {
		t.Fatalf("Scale = %+v", sc)
	}
	mx := a.Max(b)
	if mx.Core != 3 || mx.Ins != 2 || mx.Cache != 1 {
		t.Fatalf("Max = %+v", mx)
	}
}

func TestEstimateSplitsScopes(t *testing.T) {
	c := Coefficients{Core: 10, Ins: 2, Cache: 100, Mem: 200, Chip: 5, Disk: 3, Net: 7}
	m := Metrics{Core: 1, Ins: 1.5, Cache: 0.01, Mem: 0.002, Chip: 0.5, Disk: 0.5, Net: 0.25}
	cpuPart := 10 + 3.0 + 1 + 0.4 + 2.5
	if got := c.EstimateCPU(m); math.Abs(got-cpuPart) > 1e-12 {
		t.Fatalf("EstimateCPU = %g, want %g", got, cpuPart)
	}
	if got := c.Estimate(m); math.Abs(got-(cpuPart+1.5+1.75)) > 1e-12 {
		t.Fatalf("Estimate = %g", got)
	}
}

func TestMetricSeriesTimeWeighting(t *testing.T) {
	ms := NewMetricSeries(sim.Millisecond)
	// A fully utilized period covering half of bucket 0.
	ms.AddSpread(0, sim.Millisecond/2, Metrics{Core: 1, Ins: 2})
	got := ms.At(0)
	if math.Abs(got.Core-0.5) > 1e-9 || math.Abs(got.Ins-1.0) > 1e-9 {
		t.Fatalf("bucket 0 = %+v, want Core 0.5 Ins 1.0", got)
	}
	// Sum across cores: a second core's full-bucket period adds 1.0.
	ms.AddSpread(0, sim.Millisecond, Metrics{Core: 1})
	if got := ms.At(0); math.Abs(got.Core-1.5) > 1e-9 {
		t.Fatalf("summed Core = %g, want 1.5", got.Core)
	}
}

func TestMetricSeriesWindowMeanAndModeledPower(t *testing.T) {
	ms := NewMetricSeries(sim.Millisecond)
	for b := sim.Time(0); b < 10; b++ {
		ms.AddSpread(b*sim.Millisecond, (b+1)*sim.Millisecond, Metrics{Core: float64(b % 2)})
	}
	mean := ms.WindowMean(0, 10)
	if math.Abs(mean.Core-0.5) > 1e-9 {
		t.Fatalf("window mean = %g, want 0.5", mean.Core)
	}
	c := Coefficients{Core: 10}
	pw := ms.ModeledPower(c, 10)
	if len(pw) != 10 || pw[1] != 10 || pw[0] != 0 {
		t.Fatalf("modeled power = %v", pw)
	}
}

// fixedIdle implements IdleChecker with a fixed busy set.
type fixedIdle map[int]bool // true = idle

func (f fixedIdle) CoreIdle(core int) bool { return f[core] }

func TestChipShareEquation(t *testing.T) {
	spec := cpu.MachineSpec{Name: "q", Chips: 1, CoresPerChip: 4, FreqHz: 1e9, DutyLevels: 8}
	cores := make([]*cpu.Core, 4)
	for i := range cores {
		cores[i] = cpu.NewCore(i, spec)
	}
	// All siblings idle: full chip share.
	idle := fixedIdle{1: true, 2: true, 3: true}
	if got := ChipShare(spec, cores, 0, 1.0, idle); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("solo share = %g, want 1", got)
	}
	// Three busy siblings at full utilization: share = 1/(1+3).
	for _, c := range cores[1:] {
		c.PublishSample(0, 1.0)
	}
	busy := fixedIdle{}
	if got := ChipShare(spec, cores, 0, 1.0, busy); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("quarter share = %g, want 0.25", got)
	}
	// Stale sample from an idle sibling must be ignored via the idle
	// check even though LastUtil says busy.
	idleOne := fixedIdle{3: true}
	want := 1.0 / (1 + 2)
	if got := ChipShare(spec, cores, 0, 1.0, idleOne); math.Abs(got-want) > 1e-12 {
		t.Fatalf("share with idle sibling = %g, want %g", got, want)
	}
	// Zero utilization → zero share.
	if got := ChipShare(spec, cores, 0, 0, busy); got != 0 {
		t.Fatalf("idle self share = %g", got)
	}
	// Out-of-range published samples clamp.
	cores[1].PublishSample(0, 42)
	cores[2].PublishSample(0, -3)
	got := ChipShare(spec, cores, 0, 1.0, fixedIdle{3: true})
	if got < 0.4 || got > 0.6 { // 1/(1+1+0)
		t.Fatalf("clamped share = %g, want 0.5", got)
	}
}

func TestChipShareOnlySameChip(t *testing.T) {
	spec := cpu.MachineSpec{Name: "d", Chips: 2, CoresPerChip: 2, FreqHz: 1e9, DutyLevels: 8}
	cores := make([]*cpu.Core, 4)
	for i := range cores {
		cores[i] = cpu.NewCore(i, spec)
		cores[i].PublishSample(0, 1.0)
	}
	// Core 0's share depends only on core 1, not on chip 1's cores.
	got := ChipShare(spec, cores, 0, 1.0, fixedIdle{})
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("cross-chip leakage: share = %g, want 0.5", got)
	}
}

func TestOracleChipShare(t *testing.T) {
	spec := cpu.MachineSpec{Name: "q", Chips: 1, CoresPerChip: 4, FreqHz: 1e9, DutyLevels: 8}
	if got := OracleChipShare(spec, 0, 1.0, fixedIdle{1: true, 2: true, 3: true}); got != 1.0 {
		t.Fatalf("oracle solo = %g", got)
	}
	if got := OracleChipShare(spec, 0, 1.0, fixedIdle{}); got != 0.25 {
		t.Fatalf("oracle full = %g", got)
	}
}

func TestFitRecoversSyntheticModel(t *testing.T) {
	truth := Coefficients{Core: 9, Ins: 1.5, Float: 0.8, Cache: 120, Mem: 300, Chip: 5, Disk: 2, Net: 6}
	rng := sim.NewRand(77)
	var samples []CalSample
	for i := 0; i < 200; i++ {
		m := Metrics{
			Core: rng.Float64() * 4, Ins: rng.Float64() * 6, Float: rng.Float64(),
			Cache: rng.Float64() * 0.08, Mem: rng.Float64() * 0.02,
			Chip: rng.Float64(), Disk: rng.Float64(), Net: rng.Float64(),
		}
		samples = append(samples, CalSample{
			M:              m,
			MachineActiveW: truth.Estimate(m) + rng.NormFloat64(0.1),
			PkgActiveW:     truth.EstimateCPU(m) + rng.NormFloat64(0.1),
		})
	}
	got, err := Fit(samples, FitOptions{Scope: ScopeMachine, IncludeChipShare: true, IdleW: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got.IdleW != 30 || !got.IncludesChipShare {
		t.Fatal("metadata not carried")
	}
	check := func(name string, gotV, wantV, tol float64) {
		if math.Abs(gotV-wantV) > tol {
			t.Errorf("%s = %g, want %g", name, gotV, wantV)
		}
	}
	check("core", got.Core, truth.Core, 0.1)
	check("ins", got.Ins, truth.Ins, 0.1)
	check("cache", got.Cache, truth.Cache, 5)
	check("mem", got.Mem, truth.Mem, 15)
	check("chip", got.Chip, truth.Chip, 0.3)
	check("disk", got.Disk, truth.Disk, 0.2)
	check("net", got.Net, truth.Net, 0.2)

	// Package-scope fit keeps device coefficients from the base.
	pkgGot, err := Fit(samples, FitOptions{
		Scope: ScopePackage, IncludeChipShare: true, Base: got,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pkgGot.Disk != got.Disk || pkgGot.Net != got.Net {
		t.Fatal("package fit clobbered device terms")
	}
	check("pkg core", pkgGot.Core, truth.Core, 0.1)

	// Eq. 1 fit: chip term zeroed.
	eq1, err := Fit(samples, FitOptions{Scope: ScopeMachine, IncludeChipShare: false})
	if err != nil {
		t.Fatal(err)
	}
	if eq1.Chip != 0 || eq1.IncludesChipShare {
		t.Fatal("Eq1 fit has chip term")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, FitOptions{}); err == nil {
		t.Fatal("empty samples accepted")
	}
	s := []CalSample{{M: Metrics{Core: 1}, MachineActiveW: 10, PkgActiveW: math.NaN()}}
	if _, err := Fit(s, FitOptions{Scope: ScopePackage}); err == nil {
		t.Fatal("NaN package target accepted")
	}
	if _, err := Fit(s, FitOptions{Scope: FitScope(99)}); err == nil {
		t.Fatal("bad scope accepted")
	}
}

func TestFitErrorMetric(t *testing.T) {
	c := Coefficients{Core: 10}
	samples := []CalSample{
		{M: Metrics{Core: 1}, MachineActiveW: 10},
		{M: Metrics{Core: 2}, MachineActiveW: 25}, // model says 20 → 20% err
	}
	got := FitError(c, samples, ScopeMachine)
	if math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("fit error = %g, want 0.1", got)
	}
	if FitError(c, nil, ScopeMachine) != 0 {
		t.Fatal("empty fit error not zero")
	}
}

func TestMetricCursorIndependentOfLegacyMark(t *testing.T) {
	ms := NewMetricSeries(sim.Millisecond)
	ms.AddSpread(0, 4*sim.Millisecond, Metrics{Core: 1, Ins: 2})
	mc := ms.NewCursor()
	if mc.DirtyLow() != 0 {
		t.Fatalf("fresh cursor DirtyLow = %d, want 0", mc.DirtyLow())
	}
	mc.Clear()
	ms.ClearDirty()
	ms.AddSpread(2*sim.Millisecond, 3*sim.Millisecond, Metrics{Cache: 1})
	if mc.DirtyLow() != 2 || ms.DirtyLow() != 2 {
		t.Fatalf("cursor=%d legacy=%d after write, want 2/2", mc.DirtyLow(), ms.DirtyLow())
	}
	ms.ClearDirty() // the recalibrator clearing its view must not clear ours
	if mc.DirtyLow() != 2 {
		t.Fatalf("cursor DirtyLow = %d after legacy ClearDirty, want 2", mc.DirtyLow())
	}
	mc.Clear()
	if mc.DirtyLow() < ms.Len() {
		t.Fatalf("cleared cursor DirtyLow = %d, want ≥ %d", mc.DirtyLow(), ms.Len())
	}
}
