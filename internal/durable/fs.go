// Package durable is the crash-safety layer under the streaming
// attribution engine's persistence surfaces: a CRC32C-framed,
// length-prefixed segment log (WAL) with an explicit recovery rule — a
// torn tail is truncated, interior corruption is an error — and
// fsync-before-rename atomic file writes, all over an injectable
// filesystem seam so tests can cut power at any byte.
//
// The package models exactly the guarantees a production daemon gets from
// a POSIX filesystem, no more: bytes are durable once the file has been
// fsynced; unsynced bytes may survive a crash only as an arbitrary prefix
// of what was written (a torn write); metadata operations (create,
// rename, remove) are treated as journaled atomically. MemFS implements
// that model in memory for deterministic crash testing; OSFS is the real
// thing for production stores.
package durable

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable half of the seam: an append stream with explicit
// durability points.
type File interface {
	io.Writer
	// Sync makes every byte written so far durable.
	Sync() error
	Close() error
}

// FS is the injectable filesystem seam. All paths are slash-separated and
// interpreted by the backing implementation; callers keep every store
// file inside one directory. ReadDir returns file names (not paths)
// sorted ascending, so directory scans are deterministic on every
// backend.
type FS interface {
	// Create truncates or creates the named file for writing.
	Create(name string) (File, error)
	// OpenAppend opens the named file for appending, creating it if
	// needed.
	OpenAppend(name string) (File, error)
	// ReadFile returns the file's full contents. A missing file satisfies
	// errors.Is(err, fs.ErrNotExist).
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// Truncate cuts the named file to size bytes.
	Truncate(name string, size int64) error
	// ReadDir lists the directory's file names, sorted ascending.
	ReadDir(dir string) ([]string, error)
	// MkdirAll ensures the directory (and parents) exist.
	MkdirAll(dir string) error
	// SyncDir makes prior metadata operations in the directory durable.
	SyncDir(dir string) error
}

// OSFS is the production backend: the real filesystem.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) { return os.Create(name) }

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS: fsync the directory fd so renames inside it are
// durable.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// notExist wraps fs.ErrNotExist with the offending path, matching the
// errors.Is contract of os file errors.
func notExist(name string) error {
	return &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
}

// base returns the final path element, shared by MemFS directory checks.
func base(name string) string { return filepath.Base(name) }

var _ FS = OSFS{}
