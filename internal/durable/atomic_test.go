package durable

import (
	"bytes"
	"errors"
	"io/fs"
	"testing"
)

func TestWriteCheckedRoundTrip(t *testing.T) {
	m := NewMemFS()
	payload := []byte(`{"version":2,"tick":41}`)
	if err := WriteChecked(m, "dir/state.bin", payload); err != nil {
		t.Fatalf("WriteChecked: %v", err)
	}
	got, err := ReadChecked(m, "dir/state.bin")
	if err != nil {
		t.Fatalf("ReadChecked: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadChecked = %q, want %q", got, payload)
	}
	// The temp file must not linger.
	if m.Size("dir/.state.bin.tmp") != 0 {
		t.Fatalf("temp file left behind")
	}
}

func TestReadCheckedMissingFile(t *testing.T) {
	m := NewMemFS()
	_, err := ReadChecked(m, "absent")
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("ReadChecked(absent) = %v, want fs.ErrNotExist", err)
	}
}

func TestReadCheckedRejectsDamage(t *testing.T) {
	m := NewMemFS()
	if err := WriteChecked(m, "blob", []byte("payload-bytes")); err != nil {
		t.Fatalf("WriteChecked: %v", err)
	}
	// Bit-flip every byte position in turn: header, checksum, and payload
	// damage must all surface as ErrCorrupt.
	n := m.Size("blob")
	for off := int64(0); off < n; off++ {
		if err := m.Corrupt("blob", off, 0x10); err != nil {
			t.Fatalf("Corrupt: %v", err)
		}
		if _, err := ReadChecked(m, "blob"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("off=%d: ReadChecked = %v, want ErrCorrupt", off, err)
		}
		if err := m.Corrupt("blob", off, 0x10); err != nil { // undo
			t.Fatalf("Corrupt undo: %v", err)
		}
	}
	if _, err := ReadChecked(m, "blob"); err != nil {
		t.Fatalf("restored blob unreadable: %v", err)
	}
}

func TestReadCheckedRejectsTruncation(t *testing.T) {
	m := NewMemFS()
	if err := WriteChecked(m, "blob", []byte("some longer payload body")); err != nil {
		t.Fatalf("WriteChecked: %v", err)
	}
	for _, cut := range []int64{0, 3, int64(blobHeader) - 1, int64(blobHeader), m.Size("blob") - 1} {
		mm := NewMemFS()
		if err := WriteChecked(mm, "blob", []byte("some longer payload body")); err != nil {
			t.Fatalf("WriteChecked: %v", err)
		}
		if err := mm.Truncate("blob", cut); err != nil {
			t.Fatalf("Truncate(%d): %v", cut, err)
		}
		if _, err := ReadChecked(mm, "blob"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: ReadChecked = %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestWriteFileAtomicSurvivesCrashBeforeRename(t *testing.T) {
	m := NewMemFS()
	if err := WriteChecked(m, "state", []byte("old-state")); err != nil {
		t.Fatalf("WriteChecked: %v", err)
	}
	// Start a replacement write but cut power after the temp file's bytes
	// were written and before rename: temp is unsynced, so at most a torn
	// prefix survives under the temp name — the target is untouched.
	w, err := m.Create(".state.tmp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("new-state-half-written")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m.Crash(".state.tmp", 7)
	got, err := ReadChecked(m, "state")
	if err != nil || string(got) != "old-state" {
		t.Fatalf("after torn temp crash: %q, %v; want intact old state", got, err)
	}
}

func TestMemFSRenameCarriesDurabilityMark(t *testing.T) {
	// Rename an unsynced temp over the target and crash: the torn-temp
	// hazard must surface, proving the model punishes a skipped fsync.
	m := NewMemFS()
	w, err := m.Create("tmp")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("unsynced contents")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := m.Rename("tmp", "target"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	m.Crash("", 0)
	data, err := m.ReadFile("target")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(data) != 0 {
		t.Fatalf("unsynced renamed bytes survived a crash: %q", data)
	}
}

func TestMemFSCrashKeepsDurablePrefixOnly(t *testing.T) {
	m := NewMemFS()
	w, err := m.Create("f")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := w.Write([]byte("durable-part")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := w.Write([]byte("-and-unsynced-tail")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	m.Crash("f", 4)
	data, err := m.ReadFile("f")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(data) != "durable-part-and" {
		t.Fatalf("crash kept %q, want durable prefix + 4 torn bytes", data)
	}
}
