package durable

import (
	"fmt"
	"path/filepath"
	"sort"
)

// memFile is one in-memory file with an explicit durability mark: data is
// what the running process observes, data[:durable] is what survives a
// power cut.
type memFile struct {
	data    []byte
	durable int
}

// MemFS is the deterministic in-memory backend for crash testing. It
// tracks, per file, both the visible contents and the durable prefix
// (the bytes covered by the last Sync). Crash reverts every file to its
// durable prefix — optionally keeping a chosen number of unsynced bytes
// of one file, the torn-write tail — which lets a test cut power at any
// byte of any write and then run recovery against exactly the state a
// real disk could expose.
//
// Metadata operations (Create, Rename, Remove, Truncate) are modeled as
// journaled: they are durable as soon as they return. SyncDir is
// therefore a no-op. A MemFS is confined to one goroutine at a time, the
// same discipline as the simulation engine it tests.
type MemFS struct {
	files map[string]*memFile
	dirs  map[string]bool

	// Ops counts completed operations by kind ("create", "write", "sync",
	// "rename", "remove", "truncate"), the op clock crash plans schedule
	// against.
	Ops map[string]int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{}, Ops: map[string]int{}}
}

func (m *MemFS) bump(op string) { m.Ops[op]++ }

// memWriter appends to one MemFS file.
type memWriter struct {
	fs   *MemFS
	name string
}

// Write implements File.
func (w *memWriter) Write(p []byte) (int, error) {
	f, ok := w.fs.files[w.name]
	if !ok {
		return 0, notExist(w.name)
	}
	f.data = append(f.data, p...)
	w.fs.bump("write")
	return len(p), nil
}

// Sync implements File: the visible contents become durable.
func (w *memWriter) Sync() error {
	f, ok := w.fs.files[w.name]
	if !ok {
		return notExist(w.name)
	}
	f.durable = len(f.data)
	w.fs.bump("sync")
	return nil
}

// Close implements File.
func (w *memWriter) Close() error { return nil }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.files[name] = &memFile{}
	m.bump("create")
	return &memWriter{fs: m, name: name}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{}
		m.bump("create")
	}
	return &memWriter{fs: m, name: name}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	f, ok := m.files[name]
	if !ok {
		return nil, notExist(name)
	}
	return append([]byte(nil), f.data...), nil
}

// Rename implements FS. The rename is atomic and, per the journaled
// metadata model, immediately durable — but it carries the file's
// *current* durability mark with it: renaming an unsynced temp file does
// not make its bytes safe, which is exactly the torn-temp hazard
// fsync-before-rename discipline exists to close.
func (m *MemFS) Rename(oldname, newname string) error {
	f, ok := m.files[oldname]
	if !ok {
		return notExist(oldname)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	m.bump("rename")
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	if _, ok := m.files[name]; !ok {
		return notExist(name)
	}
	delete(m.files, name)
	m.bump("remove")
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	f, ok := m.files[name]
	if !ok {
		return notExist(name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("durable: truncate %s to %d outside [0,%d]", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	m.bump("truncate")
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir {
			names = append(names, base(name))
		}
	}
	if len(names) == 0 && !m.dirs[dir] {
		return nil, notExist(dir)
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.dirs[dir] = true
	return nil
}

// SyncDir implements FS: metadata is journaled, so there is nothing to
// flush.
func (m *MemFS) SyncDir(dir string) error { return nil }

// Crash simulates a power cut: every file reverts to its durable prefix.
// tornFile, when non-empty, names one file that additionally keeps up to
// keepUnsynced bytes of its unsynced tail — the partial page a dying disk
// may or may not have flushed. After a crash, whatever survived is by
// definition on stable storage, so the durable marks are reset to the
// surviving lengths.
func (m *MemFS) Crash(tornFile string, keepUnsynced int) {
	for name, f := range m.files {
		keepTo := f.durable
		if name == tornFile && keepUnsynced > 0 {
			keepTo += keepUnsynced
			if keepTo > len(f.data) {
				keepTo = len(f.data)
			}
		}
		f.data = f.data[:keepTo]
		f.durable = keepTo
	}
}

// Corrupt XORs the byte at off in the named file with mask — the bit-flip
// fault a crashed disk or firmware bug can leave behind. Corruption edits
// stable storage, so the durable mark is untouched.
func (m *MemFS) Corrupt(name string, off int64, mask byte) error {
	f, ok := m.files[name]
	if !ok {
		return notExist(name)
	}
	if off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("durable: corrupt %s at %d outside [0,%d)", name, off, len(f.data))
	}
	f.data[off] ^= mask
	return nil
}

// Paths returns every file path in the filesystem, sorted ascending, so
// crash plans can resolve "the last WAL segment" deterministically.
func (m *MemFS) Paths() []string {
	var names []string
	for name := range m.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Size returns the visible length of the named file (0 if missing).
func (m *MemFS) Size(name string) int64 {
	if f, ok := m.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

var _ FS = (*MemFS)(nil)
