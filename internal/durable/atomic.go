package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"path/filepath"
)

// blobMagic heads every checked blob: 8-byte magic, 4-byte LE CRC32C of
// the payload, then the payload. Like WAL frames, the checksum turns
// both bit rot and a torn temp file into detectable corruption rather
// than silently wrong state.
const (
	blobMagic  = "PCBLOB01"
	blobHeader = len(blobMagic) + 4
)

// WriteFileAtomic durably replaces name with data using the full
// fsync-before-rename discipline: write a temp file in the same
// directory, fsync it, rename over the target, fsync the directory. A
// crash at any point leaves either the complete old file or the complete
// new one — never a prefix of the new contents under the final name.
func WriteFileAtomic(fsys FS, name string, data []byte) error {
	tmp := filepath.Join(filepath.Dir(name), "."+filepath.Base(name)+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if err := fsys.SyncDir(filepath.Dir(name)); err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	return nil
}

// WriteChecked atomically writes payload under a CRC32C envelope, so
// ReadChecked can distinguish a valid blob from any damaged one.
func WriteChecked(fsys FS, name string, payload []byte) error {
	buf := make([]byte, blobHeader+len(payload))
	copy(buf, blobMagic)
	binary.LittleEndian.PutUint32(buf[len(blobMagic):], crc32.Checksum(payload, castagnoli))
	copy(buf[blobHeader:], payload)
	return WriteFileAtomic(fsys, name, buf)
}

// ReadChecked reads a WriteChecked blob, verifying envelope and checksum.
// A missing file reports fs.ErrNotExist; any damage — short file, wrong
// magic, checksum mismatch — reports a CorruptError matching ErrCorrupt.
func ReadChecked(fsys FS, name string) ([]byte, error) {
	data, err := fsys.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if len(data) < blobHeader || string(data[:len(blobMagic)]) != blobMagic {
		return nil, &CorruptError{Path: name, Off: 0, Reason: "missing or torn blob header"}
	}
	want := binary.LittleEndian.Uint32(data[len(blobMagic):blobHeader])
	payload := data[blobHeader:]
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, &CorruptError{Path: name, Off: int64(blobHeader), Reason: "blob CRC32C mismatch"}
	}
	return payload, nil
}
