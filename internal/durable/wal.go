package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
)

// Segment layout. Every segment starts with a 12-byte header — an 8-byte
// magic naming the format version and a 4-byte little-endian segment
// index — followed by frames. A frame is [4-byte LE payload length]
// [4-byte LE CRC32C of payload][payload]. CRC32C (Castagnoli) is the
// checksum production WALs use; the length prefix bounds reads, the CRC
// catches both bit rot and torn writes.
const (
	segMagic    = "PCWAL001"
	segHeader   = len(segMagic) + 4
	frameHeader = 8
	// maxFrame bounds a single payload; a length above it is corruption,
	// not a huge record.
	maxFrame = 1 << 26
)

// DefaultMaxSegmentBytes is the auto-rotation threshold: Append starts a
// new segment once the current one would exceed it.
const DefaultMaxSegmentBytes = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt is the sentinel all interior-corruption failures match with
// errors.Is: damage recovery must not repair silently, because the frames
// beyond it are already durable and a truncation there would tear a hole
// in the record sequence.
var ErrCorrupt = errors.New("durable: corrupt")

// CorruptError reports unrecoverable log or blob damage.
type CorruptError struct {
	Path   string
	Off    int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("durable: %s corrupt at byte %d: %s", e.Path, e.Off, e.Reason)
}

// Unwrap lets errors.Is(err, ErrCorrupt) match.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// AuditSink observes durability repairs. Implemented by internal/audit;
// every call site nil-guards the sink.
type AuditSink interface {
	// OnWALTruncate fires when recovery discards a torn tail: off is the
	// byte offset the segment was cut to, lost the discarded byte count.
	OnWALTruncate(path string, off int64, lost int64, reason string)
}

// Options configures OpenLog.
type Options struct {
	// Replay receives every recovered payload in append order before
	// OpenLog returns. A nil Replay skips delivery (the frames still
	// validate); a Replay error aborts the open.
	Replay func(payload []byte) error
	// Audit observes tail truncations; may be nil.
	Audit AuditSink
	// MaxSegmentBytes caps a segment (default DefaultMaxSegmentBytes).
	MaxSegmentBytes int64
}

// Log is a single-writer segmented append log. Appends accumulate in the
// current segment; Sync makes them durable; the segment rolls over
// automatically at MaxSegmentBytes. Reopening a log after a crash runs
// the recovery rule: a torn tail in the final segment is truncated
// (reported through the audit seam), corruption anywhere else is an
// error.
type Log struct {
	fs    FS
	dir   string
	audit AuditSink
	max   int64

	seg     int  // current segment index
	f       File // open append handle on the current segment
	segSize int64
	frames  int64 // frames ever appended, recovered included
}

// segName renders a segment file name.
func segName(idx int) string { return fmt.Sprintf("wal-%08d.seg", idx) }

// parseSegName extracts a segment index, reporting whether the name is a
// segment file at all.
func parseSegName(name string) (int, bool) {
	s, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	s, ok = strings.CutSuffix(s, ".seg")
	if !ok || len(s) != 8 {
		return 0, false
	}
	idx, err := strconv.Atoi(s)
	if err != nil || idx <= 0 {
		return 0, false
	}
	return idx, true
}

// segmentHeader renders the 12-byte header for a segment index.
func segmentHeader(idx int) []byte {
	h := make([]byte, segHeader)
	copy(h, segMagic)
	binary.LittleEndian.PutUint32(h[len(segMagic):], uint32(idx))
	return h
}

// scanSegment walks one segment's frames. final selects the recovery
// rule: in the final segment a bad header, frame, or CRC truncates the
// scan there (goodLen is the byte offset to keep); in an interior
// segment the same condition is a CorruptError, because later segments
// hold durable frames that a truncation would orphan.
func scanSegment(path string, data []byte, idx int, final bool, deliver func(payload []byte) error) (goodLen int64, frames int64, err error) {
	bad := func(off int64, reason string) (int64, int64, error) {
		if final {
			return off, frames, nil
		}
		return off, frames, &CorruptError{Path: path, Off: off, Reason: reason}
	}
	if len(data) < segHeader || string(data[:len(segMagic)]) != segMagic {
		return bad(0, "missing or torn segment header")
	}
	if got := int(binary.LittleEndian.Uint32(data[len(segMagic):segHeader])); got != idx {
		// A wrong index is never a torn write: the header was synced when
		// the segment was created.
		return 0, 0, &CorruptError{Path: path, Off: int64(len(segMagic)), Reason: fmt.Sprintf("segment index %d, want %d", got, idx)}
	}
	off := int64(segHeader)
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return bad(off, "torn frame header")
		}
		n := binary.LittleEndian.Uint32(rest)
		sum := binary.LittleEndian.Uint32(rest[4:])
		if n > maxFrame {
			return bad(off, fmt.Sprintf("frame length %d exceeds limit", n))
		}
		if int64(len(rest)) < frameHeader+int64(n) {
			return bad(off, "torn frame payload")
		}
		payload := rest[frameHeader : frameHeader+int64(n)]
		if crc32.Checksum(payload, castagnoli) != sum {
			// A checksum failure is only a torn write when nothing follows
			// the frame; durable frames after it prove interior damage, which
			// must not be truncated away even in the final segment.
			if frameHeader+int64(n) < int64(len(rest)) {
				return off, frames, &CorruptError{Path: path, Off: off, Reason: "frame CRC32C mismatch before end of log"}
			}
			return bad(off, "frame CRC32C mismatch")
		}
		if deliver != nil {
			if err := deliver(payload); err != nil {
				return off, frames, err
			}
		}
		frames++
		off += frameHeader + int64(n)
	}
	return off, frames, nil
}

// OpenLog opens (or creates) the segment log in dir, validating and
// replaying every durable frame and repairing a torn tail before
// returning a handle positioned for append.
func OpenLog(fsys FS, dir string, opts Options) (*Log, error) {
	if opts.MaxSegmentBytes <= 0 {
		opts.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("durable: open log: %w", err)
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: open log: %w", err)
	}
	var segs []int
	for _, name := range names {
		if idx, ok := parseSegName(name); ok {
			segs = append(segs, idx)
		}
	}
	// ReadDir sorts names; zero-padded segment names sort numerically.
	for i, idx := range segs {
		if idx != i+1 {
			return nil, &CorruptError{Path: filepath.Join(dir, segName(idx)), Off: 0,
				Reason: fmt.Sprintf("segment sequence broken: found segment %d at position %d", idx, i+1)}
		}
	}
	l := &Log{fs: fsys, dir: dir, audit: opts.Audit, max: opts.MaxSegmentBytes}
	if len(segs) == 0 {
		if err := l.startSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	for i, idx := range segs {
		final := i == len(segs)-1
		path := filepath.Join(dir, segName(idx))
		data, err := l.fs.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("durable: open log: %w", err)
		}
		goodLen, frames, err := scanSegment(path, data, idx, final, opts.Replay)
		if err != nil {
			return nil, err
		}
		l.frames += frames
		if !final {
			continue
		}
		if lost := int64(len(data)) - goodLen; lost > 0 {
			if err := l.fs.Truncate(path, goodLen); err != nil {
				return nil, fmt.Errorf("durable: truncate torn tail: %w", err)
			}
			if l.audit != nil {
				l.audit.OnWALTruncate(path, goodLen, lost, "torn tail")
			}
		}
		if goodLen < int64(segHeader) {
			// The whole final segment was torn away, header included;
			// rewrite it so the segment is valid again.
			f, err := l.fs.Create(path)
			if err != nil {
				return nil, fmt.Errorf("durable: rewrite torn segment: %w", err)
			}
			if _, err := f.Write(segmentHeader(idx)); err != nil {
				f.Close()
				return nil, fmt.Errorf("durable: rewrite torn segment: %w", err)
			}
			if err := f.Close(); err != nil {
				return nil, fmt.Errorf("durable: rewrite torn segment: %w", err)
			}
			goodLen = int64(segHeader)
		}
		f, err := l.fs.OpenAppend(path)
		if err != nil {
			return nil, fmt.Errorf("durable: open log: %w", err)
		}
		l.seg, l.f, l.segSize = idx, f, goodLen
	}
	return l, nil
}

// startSegment creates and enters segment idx.
func (l *Log) startSegment(idx int) error {
	path := filepath.Join(l.dir, segName(idx))
	f, err := l.fs.Create(path)
	if err != nil {
		return fmt.Errorf("durable: start segment: %w", err)
	}
	if _, err := f.Write(segmentHeader(idx)); err != nil {
		f.Close()
		return fmt.Errorf("durable: start segment: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("durable: start segment: %w", err)
	}
	l.seg, l.f, l.segSize = idx, f, int64(segHeader)
	return nil
}

// Frames returns the total number of frames in the log, recovered plus
// appended.
func (l *Log) Frames() int64 { return l.frames }

// Segment returns the current segment index.
func (l *Log) Segment() int { return l.seg }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// SegmentPath returns the path of segment idx.
func (l *Log) SegmentPath(idx int) string { return filepath.Join(l.dir, segName(idx)) }

// Append adds one frame. The frame is written in a single Write call, so
// a crash mid-append tears at most this frame — exactly the case the
// recovery rule repairs. Durability requires a following Sync.
func (l *Log) Append(payload []byte) error {
	if int64(len(payload)) > maxFrame {
		return fmt.Errorf("durable: payload %d bytes exceeds frame limit", len(payload))
	}
	if l.segSize+frameHeader+int64(len(payload)) > l.max && l.segSize > int64(segHeader) {
		if err := l.Rotate(); err != nil {
			return err
		}
	}
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	l.segSize += int64(len(buf))
	l.frames++
	return nil
}

// Sync makes every appended frame durable.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("durable: sync: %w", err)
	}
	return nil
}

// Rotate syncs and closes the current segment and starts the next one.
func (l *Log) Rotate() error {
	if err := l.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("durable: rotate: %w", err)
	}
	return l.startSegment(l.seg + 1)
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	if err := l.Sync(); err != nil {
		return err
	}
	return l.f.Close()
}
