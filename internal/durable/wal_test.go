package durable

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// replayAll reopens the log and collects every recovered payload.
func replayAll(t *testing.T, fsys FS, dir string, audit AuditSink) (*Log, [][]byte) {
	t.Helper()
	var got [][]byte
	l, err := OpenLog(fsys, dir, Options{
		Replay: func(p []byte) error { got = append(got, append([]byte(nil), p...)); return nil },
		Audit:  audit,
	})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	return l, got
}

func appendAll(t *testing.T, l *Log, payloads ...[]byte) {
	t.Helper()
	for _, p := range payloads {
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

type truncRecorder struct {
	calls []string
}

func (r *truncRecorder) OnWALTruncate(path string, off, lost int64, reason string) {
	r.calls = append(r.calls, fmt.Sprintf("%s@%d-%d:%s", path, off, lost, reason))
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	m := NewMemFS()
	l, got := replayAll(t, m, "wal", nil)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d payloads", len(got))
	}
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma with a longer body")}
	appendAll(t, l, payloads...)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := replayAll(t, m, "wal", nil)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d payloads, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	if l2.Frames() != int64(len(payloads)) {
		t.Fatalf("Frames() = %d, want %d", l2.Frames(), len(payloads))
	}
}

func TestWALTornTailTruncatedAtEveryByte(t *testing.T) {
	// Build a reference log of three synced frames plus one unsynced frame,
	// then cut power keeping every possible torn prefix of the last append.
	build := func() (*MemFS, *Log) {
		m := NewMemFS()
		l, _ := replayAll(t, m, "wal", nil)
		appendAll(t, l, []byte("one"), []byte("two"), []byte("three"))
		if err := l.Sync(); err != nil {
			t.Fatalf("Sync: %v", err)
		}
		appendAll(t, l, []byte("four-unsynced"))
		return m, l
	}
	_, probe := build()
	tornLen := int(probe.segSize) // total bytes including the unsynced frame
	path := probe.SegmentPath(1)

	for keep := 0; keep < frameHeader+len("four-unsynced"); keep++ {
		m, _ := build()
		m.Crash(path, keep)
		rec := &truncRecorder{}
		_, got := replayAll(t, m, "wal", rec)
		if len(got) != 3 {
			t.Fatalf("keep=%d: recovered %d frames, want 3", keep, len(got))
		}
		if keep > 0 && len(rec.calls) != 1 {
			t.Fatalf("keep=%d: %d truncate audit events, want 1", keep, len(rec.calls))
		}
		if keep == 0 && len(rec.calls) != 0 {
			t.Fatalf("keep=0: unexpected truncate audit %v", rec.calls)
		}
	}
	_ = tornLen
}

func TestWALBitFlipLastFrameTruncates(t *testing.T) {
	m := NewMemFS()
	l, _ := replayAll(t, m, "wal", nil)
	appendAll(t, l, []byte("first"), []byte("second"), []byte("last"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a payload byte of the final frame: CRC fails, and because it is
	// the final frame of the final segment the recovery rule truncates it.
	path := l.SegmentPath(1)
	if err := m.Corrupt(path, m.Size(path)-1, 0x40); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	rec := &truncRecorder{}
	_, got := replayAll(t, m, "wal", rec)
	if len(got) != 2 || string(got[1]) != "second" {
		t.Fatalf("recovered %q, want first two frames", got)
	}
	if len(rec.calls) != 1 {
		t.Fatalf("truncate audit events = %v, want exactly one", rec.calls)
	}
}

func TestWALInteriorCorruptionIsError(t *testing.T) {
	m := NewMemFS()
	l, _ := replayAll(t, m, "wal", nil)
	appendAll(t, l, []byte("first"), []byte("second"), []byte("third"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a byte inside the FIRST frame's payload: later durable frames
	// would be orphaned by a truncation, so this must refuse to open.
	path := l.SegmentPath(1)
	if err := m.Corrupt(path, int64(segHeader+frameHeader), 0x01); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	_, err := OpenLog(m, "wal", Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenLog after interior bit-flip: %v, want ErrCorrupt", err)
	}
}

func TestWALRotationAndInteriorSegmentCorruption(t *testing.T) {
	m := NewMemFS()
	l, _ := replayAll(t, m, "wal", nil)
	appendAll(t, l, []byte("seg1-a"), []byte("seg1-b"))
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, []byte("seg2-a"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if l.Segment() != 2 {
		t.Fatalf("Segment() = %d, want 2", l.Segment())
	}

	l2, got := replayAll(t, m, "wal", nil)
	want := []string{"seg1-a", "seg1-b", "seg2-a"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("frame %d = %q, want %q", i, got[i], w)
		}
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corruption in segment 1 is interior even though it hits that
	// segment's final frame: segment 2 exists after it.
	if err := m.Corrupt(l.SegmentPath(1), m.Size(l.SegmentPath(1))-1, 0x80); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	_, err := OpenLog(m, "wal", Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenLog with corrupt interior segment: %v, want ErrCorrupt", err)
	}
}

func TestWALAutoRotateAtSegmentCap(t *testing.T) {
	m := NewMemFS()
	l, err := OpenLog(m, "wal", Options{MaxSegmentBytes: 64})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("payload-%02d", i)
		want = append(want, p)
		if err := l.Append([]byte(p)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if l.Segment() < 2 {
		t.Fatalf("expected auto-rotation past segment 1, still at %d", l.Segment())
	}
	var got []string
	if _, err := OpenLog(m, "wal", Options{
		MaxSegmentBytes: 64,
		Replay:          func(p []byte) error { got = append(got, string(p)); return nil },
	}); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frame %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestWALMissingSegmentIsError(t *testing.T) {
	m := NewMemFS()
	l, _ := replayAll(t, m, "wal", nil)
	appendAll(t, l, []byte("a"))
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, []byte("b"))
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendAll(t, l, []byte("c"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Remove(l.SegmentPath(2)); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	_, err := OpenLog(m, "wal", Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("OpenLog with missing middle segment: %v, want ErrCorrupt", err)
	}
}

func TestWALAppendAfterRecoveryContinuesStream(t *testing.T) {
	m := NewMemFS()
	l, _ := replayAll(t, m, "wal", nil)
	appendAll(t, l, []byte("kept"))
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	appendAll(t, l, []byte("lost"))
	m.Crash("", 0) // power cut with nothing torn: unsynced frame vanishes

	l2, got := replayAll(t, m, "wal", nil)
	if len(got) != 1 || string(got[0]) != "kept" {
		t.Fatalf("recovered %q, want just the synced frame", got)
	}
	appendAll(t, l2, []byte("resumed"))
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	_, got = replayAll(t, m, "wal", nil)
	if len(got) != 2 || string(got[1]) != "resumed" {
		t.Fatalf("after resume recovered %q, want [kept resumed]", got)
	}
}

func TestWALReplayErrorAborts(t *testing.T) {
	m := NewMemFS()
	l, _ := replayAll(t, m, "wal", nil)
	appendAll(t, l, []byte("x"))
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	sentinel := errors.New("stop")
	_, err := OpenLog(m, "wal", Options{Replay: func([]byte) error { return sentinel }})
	if !errors.Is(err, sentinel) {
		t.Fatalf("OpenLog = %v, want replay error", err)
	}
}

// FuzzWALReplay feeds arbitrary bytes as a single-segment log and checks
// the recovery invariant: OpenLog either fails with a structured error or
// succeeds having truncated to a clean frame boundary, and a second open
// of the repaired log replays identical frames with no further repair.
func FuzzWALReplay(f *testing.F) {
	valid := append(segmentHeader(1), 0, 0, 0, 0, 0, 0, 0, 0) // header + empty frame (CRC of "" is 0)
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), 0xff, 0xff))
	f.Add([]byte("PCWAL001garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := NewMemFS()
		if err := m.MkdirAll("wal"); err != nil {
			t.Fatal(err)
		}
		w, err := m.Create("wal/" + segName(1))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		l, err := OpenLog(m, "wal", Options{Replay: func(p []byte) error {
			first = append(first, append([]byte(nil), p...))
			return nil
		}})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("OpenLog failed without CorruptError: %v", err)
			}
			return
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		var second [][]byte
		rec := &truncRecorder{}
		if _, err := OpenLog(m, "wal", Options{Audit: rec, Replay: func(p []byte) error {
			second = append(second, append([]byte(nil), p...))
			return nil
		}}); err != nil {
			t.Fatalf("second open of repaired log: %v", err)
		}
		if len(rec.calls) != 0 {
			t.Fatalf("second open repaired again: %v", rec.calls)
		}
		if len(first) != len(second) {
			t.Fatalf("replay not stable: %d then %d frames", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("frame %d differs between opens", i)
			}
		}
	})
}
