package core

import (
	"powercontainers/internal/align"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// DefaultRecalibrationPeriod is how often the facility ingests newly
// delivered meter samples and refits the model. The least-square refit
// costs ~16 µs (§3.5), negligible at this cadence.
const DefaultRecalibrationPeriod = 100 * sim.Millisecond

// EnableRecalibration switches the facility to Approach #3: a periodic task
// aligns newly delivered readings from the meter with the system metric
// series and refits the model over offline + online samples. The returned
// recalibrator exposes the estimated delay and refit statistics.
//
// The periodic event reschedules itself forever; drive the engine with
// RunUntil rather than Run.
func (f *Facility) EnableRecalibration(meter power.Meter, scope model.FitScope,
	offline []model.CalSample, period sim.Time) *align.Recalibrator {

	if period <= 0 {
		period = DefaultRecalibrationPeriod
	}
	f.cfg.Approach = ApproachRecalibrated
	f.recal = align.NewRecalibrator(meter, scope, offline)
	r := f.recal
	var tick func()
	tick = func() {
		if f.recal != r {
			return // superseded or disabled
		}
		f.RecalibrateNow()
		f.K.Eng.After(period, tick)
	}
	f.K.Eng.After(period, tick)
	return r
}

// RecalibrateNow performs one ingest+refit step immediately.
func (f *Facility) RecalibrateNow() {
	if f.recal == nil {
		return
	}
	added := f.recal.Ingest(f.K.Now(), f.metrics, f.Coeff)
	if added == 0 {
		return
	}
	if c, err := f.recal.Refit(f.Coeff); err == nil {
		f.Coeff = c
	}
}

// Recalibrator returns the active recalibrator (nil when disabled).
func (f *Facility) Recalibrator() *align.Recalibrator { return f.recal }
