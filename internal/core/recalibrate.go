package core

import (
	"powercontainers/internal/align"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// DefaultRecalibrationPeriod is how often the facility ingests newly
// delivered meter samples and refits the model. The least-square refit
// costs ~16 µs (§3.5), negligible at this cadence.
const DefaultRecalibrationPeriod = 100 * sim.Millisecond

// alignAudit adapts the facility's audit hook to the recalibrator's sink:
// nil unless the attached hook also implements align.AuditSink (the full
// auditor does; lightweight test hooks need not).
func (f *Facility) alignAudit() align.AuditSink {
	if s, ok := f.Audit.(align.AuditSink); ok {
		return s
	}
	return nil
}

// EnableRecalibration switches the facility to Approach #3: a periodic task
// aligns newly delivered readings from the meter with the system metric
// series and refits the model over offline + online samples. The returned
// recalibrator exposes the estimated delay and refit statistics.
//
// The periodic event reschedules itself forever; drive the engine with
// RunUntil rather than Run.
func (f *Facility) EnableRecalibration(meter power.Meter, scope model.FitScope,
	offline []model.CalSample, period sim.Time) *align.Recalibrator {

	if period <= 0 {
		period = DefaultRecalibrationPeriod
	}
	f.cfg.Approach = ApproachRecalibrated
	f.recal = align.NewRecalibrator(meter, scope, offline)
	f.recal.Audit = f.alignAudit()
	r := f.recal
	var tick func()
	tick = func() {
		if f.recal != r {
			return // superseded or disabled
		}
		f.RecalibrateNow()
		f.K.Eng.After(period, tick)
	}
	f.K.Eng.After(period, tick)
	return r
}

// FailoverConfig describes a recalibration setup with a meter-health
// watchdog: if the primary meter stops delivering samples for DeadAfter of
// virtual time, the facility fails over to the fallback meter, building a
// fresh recalibrator whose delivery delay is re-estimated from scratch via
// the usual cross-correlation path.
type FailoverConfig struct {
	// Primary is the preferred meter (typically the chip meter).
	Primary power.Meter
	// PrimaryScope is the fit scope matching Primary.
	PrimaryScope model.FitScope
	// Fallback is the standby meter (typically the wall meter).
	Fallback power.Meter
	// FallbackScope is the fit scope matching Fallback.
	FallbackScope model.FitScope
	// Offline is the offline calibration block shared by both fits.
	Offline []model.CalSample
	// Period is the recalibration cadence (DefaultRecalibrationPeriod
	// when zero).
	Period sim.Time
	// DeadAfter is how long the primary may deliver nothing before the
	// watchdog declares it dead. Zero defaults to 10 recalibration
	// periods — long enough to tolerate the meter's own delivery delay.
	DeadAfter sim.Time
	// Robust configures the recalibrator's degradation responses; it is
	// carried over to the fallback recalibrator on failover.
	Robust align.Robust
}

// EnableRecalibrationFailover is EnableRecalibration plus a meter-health
// watchdog. Each tick, after the usual ingest+refit, the watchdog checks
// whether the primary recalibrator has received any new samples since the
// last tick; once the silence exceeds cfg.DeadAfter the facility swaps in
// a recalibrator on the fallback meter (same offline block, same Robust
// policy) and reports the failover through the audit seam. The failover
// fires at most once; the returned pointer tracks the active recalibrator
// via Facility.Recalibrator.
func (f *Facility) EnableRecalibrationFailover(cfg FailoverConfig) *align.Recalibrator {
	period := cfg.Period
	if period <= 0 {
		period = DefaultRecalibrationPeriod
	}
	deadAfter := cfg.DeadAfter
	if deadAfter <= 0 {
		deadAfter = 10 * period
	}
	r := f.EnableRecalibration(cfg.Primary, cfg.PrimaryScope, cfg.Offline, period)
	r.Robust = cfg.Robust

	lastDelivered := 0
	var silentSince sim.Time
	failedOver := false
	var watch func()
	watch = func() {
		if f.recal == nil || (f.recal != r && !failedOver) {
			return // superseded or disabled
		}
		now := f.K.Now()
		if failedOver {
			return // single failover; the fallback has no further standby
		}
		if d := r.Delivered(); d > lastDelivered {
			lastDelivered = d
			silentSince = now
		} else if now-silentSince > deadAfter {
			failedOver = true
			fb := align.NewRecalibrator(cfg.Fallback, cfg.FallbackScope, cfg.Offline)
			fb.Robust = cfg.Robust
			fb.Audit = f.alignAudit()
			if s := f.alignAudit(); s != nil {
				s.OnRecalFallback(now, "primary meter "+cfg.Primary.Name()+" silent; failing over to "+cfg.Fallback.Name())
			}
			f.recal = fb
			var tick func()
			tick = func() {
				if f.recal != fb {
					return
				}
				f.RecalibrateNow()
				f.K.Eng.After(period, tick)
			}
			f.K.Eng.After(period, tick)
			return
		}
		f.K.Eng.After(period, watch)
	}
	f.K.Eng.After(period+1, watch) // strictly after each recalibration tick
	return r
}

// RecalibrateNow performs one ingest+refit step immediately.
func (f *Facility) RecalibrateNow() {
	if f.recal == nil {
		return
	}
	added := f.recal.Ingest(f.K.Now(), f.metrics, f.Coeff)
	if added == 0 {
		return
	}
	if c, err := f.recal.Refit(f.Coeff); err == nil {
		f.Coeff = c
	}
}

// Recalibrator returns the active recalibrator (nil when disabled).
func (f *Facility) Recalibrator() *align.Recalibrator { return f.recal }
