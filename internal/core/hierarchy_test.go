package core

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
)

func TestHierarchyRegistryGetOrCreate(t *testing.T) {
	h := NewHierarchy()
	a := h.Tenant("acme")
	if h.Tenant("acme") != a {
		t.Fatal("tenant not deduplicated")
	}
	web := h.Service("acme", "web")
	if h.Service("acme", "web") != web {
		t.Fatal("service not deduplicated")
	}
	if web.Tenant != a || web.Qualified() != "acme/web" {
		t.Fatalf("service wiring wrong: %+v", web)
	}
	h.Service("mallory", "burn")
	if h.NumTenants() != 2 || h.NumServices() != 2 {
		t.Fatalf("counts = %d tenants, %d services", h.NumTenants(), h.NumServices())
	}
	if h.TenantAt(0) != a || h.ServiceAt(0) != web {
		t.Fatal("registration order not preserved")
	}
	if _, ok := h.FindService("acme", "db"); ok {
		t.Fatal("FindService invented a service")
	}
	if _, ok := h.FindTenant("nobody"); ok {
		t.Fatal("FindTenant invented a tenant")
	}
}

func TestNewContainerInTagsAndAdopts(t *testing.T) {
	_, f := newRig(t, uniSpec, Config{})
	h := NewHierarchy()
	f.AttachHierarchy(h)
	c := f.NewContainerIn("acme", "web", "req")
	if c.Tenant != "acme" || c.Service != "web" || c.svc == nil {
		t.Fatalf("container not filed: %+v", c)
	}
	s, _ := h.FindService("acme", "web")
	if got := s.Containers(); len(got) != 1 || got[0] != c {
		t.Fatalf("service containers = %v", got)
	}
	if s.Usage().Requests != 1 || h.Tenant("acme").Usage().Requests != 1 {
		t.Fatal("request counts not rolled up")
	}
	// Flat containers stay flat even with a hierarchy attached.
	flat := f.NewContainer("flat")
	if flat.Tenant != "" || flat.svc != nil {
		t.Fatal("flat container was filed under the hierarchy")
	}
}

func TestNewContainerInPanicsWithoutHierarchy(t *testing.T) {
	_, f := newRig(t, uniSpec, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	f.NewContainerIn("acme", "web", "req")
}

func TestHierarchyChargingMatchesContainers(t *testing.T) {
	k, f := newRig(t, quadSpec, Config{Approach: ApproachChipShare})
	h := NewHierarchy()
	f.AttachHierarchy(h)

	web1 := f.NewContainerIn("acme", "web", "w1")
	web2 := f.NewContainerIn("acme", "web", "w2")
	burn := f.NewContainerIn("mallory", "burn", "b1")
	flat := f.NewContainer("flat")

	act := cpu.Activity{IPC: 1}
	k.Spawn("w1", kernel.Script(kernel.OpCompute{BaseCycles: 30e6, Act: act}), web1)
	k.Spawn("w2", kernel.Script(kernel.OpCompute{BaseCycles: 20e6, Act: act}, kernel.OpDisk{Bytes: 1e6}), web2)
	k.Spawn("b1", kernel.Script(kernel.OpCompute{BaseCycles: 40e6, Act: act}), burn)
	k.Spawn("f", kernel.Script(kernel.OpCompute{BaseCycles: 10e6, Act: act}), flat)
	k.Eng.Run()

	svc, _ := h.FindService("acme", "web")
	wantE := web1.EnergyJ() + web2.EnergyJ()
	if got := svc.Usage().EnergyJ(); math.Abs(got-wantE) > 1e-9 {
		t.Fatalf("service energy %.9f J, containers sum %.9f J", got, wantE)
	}
	if got := svc.RollUp().EnergyJ(); math.Abs(got-wantE) > 1e-9 {
		t.Fatalf("roll-up %.9f J, containers sum %.9f J", got, wantE)
	}
	if svc.Usage().CPUTime != web1.CPUTime+web2.CPUTime {
		t.Fatal("service cpu time mismatch")
	}
	if svc.Usage().DeviceEnergyJ != web2.DeviceEnergyJ {
		t.Fatal("device energy not charged to service")
	}
	acme := h.Tenant("acme")
	if math.Abs(acme.Usage().EnergyJ()-wantE) > 1e-9 {
		t.Fatal("tenant energy != sum of its services")
	}
	mallory := h.Tenant("mallory")
	if math.Abs(mallory.Usage().EnergyJ()-burn.EnergyJ()) > 1e-9 {
		t.Fatal("mallory tenant energy mismatch")
	}
	// Flat and background containers never leak into the hierarchy.
	var hierTotal float64
	for i := 0; i < h.NumTenants(); i++ {
		hierTotal += h.TenantAt(i).Usage().EnergyJ()
	}
	if hierTotal >= f.TotalAccountedEnergyJ() {
		t.Fatal("hierarchy swallowed flat/background energy")
	}
}

// TestHierarchyRollUpPermutationInvariant is the satellite property test:
// shuffling request completion order never changes tenant totals. Each
// trial applies the same per-container period charges, but interleaves
// whole requests in a random order; the incremental accumulators see
// different float addition orders, while the canonical roll-up (creation-
// order walk) must stay bit-identical — and the two must agree within the
// audit tolerance of 1e-9.
func TestHierarchyRollUpPermutationInvariant(t *testing.T) {
	const nReq = 24
	type charge struct {
		wall           sim.Time
		energyJ, chipJ float64
	}

	build := func() (*Hierarchy, []*Container, [][]charge) {
		h := NewHierarchy()
		gen := sim.NewRand(42)
		var conts []*Container
		var charges [][]charge
		for i := 0; i < nReq; i++ {
			ten := []string{"acme", "mallory", "zeta"}[gen.Intn(3)]
			svc := []string{"web", "db"}[gen.Intn(2)]
			c := &Container{ID: i + 1, Label: "req", Kind: KindRequest}
			h.Service(ten, svc).adopt(c)
			var cs []charge
			for p := 0; p < 1+gen.Intn(6); p++ {
				cs = append(cs, charge{
					wall:    sim.Time(1+gen.Intn(1000)) * sim.Microsecond,
					energyJ: gen.Float64() * 0.01,
					chipJ:   gen.Float64() * 0.002,
				})
			}
			conts = append(conts, c)
			charges = append(charges, cs)
		}
		return h, conts, charges
	}

	apply := func(h *Hierarchy, conts []*Container, charges [][]charge, order []int) {
		for _, i := range order {
			c := conts[i]
			for _, ch := range charges[i] {
				c.CPUTime += ch.wall
				c.CPUEnergyJ += ch.energyJ
				c.ChipEnergyJ += ch.chipJ
				c.svc.charge(ch.wall, ch.energyJ, ch.chipJ)
			}
		}
	}

	tenantTotals := func(h *Hierarchy) map[string]Usage {
		out := map[string]Usage{}
		for i := 0; i < h.NumTenants(); i++ {
			out[h.TenantAt(i).Name] = h.TenantAt(i).RollUp()
		}
		return out
	}

	// Reference: creation order.
	h0, conts0, charges0 := build()
	base := make([]int, nReq)
	for i := range base {
		base[i] = i
	}
	apply(h0, conts0, charges0, base)
	want := tenantTotals(h0)
	wantShares := h0.TenantChipShares()

	for trial := uint64(1); trial <= 20; trial++ {
		h, conts, charges := build()
		order := sim.NewRand(trial).Perm(nReq)
		apply(h, conts, charges, order)

		got := tenantTotals(h)
		for name, w := range want {
			g := got[name]
			// Canonical roll-ups must be bit-identical, not merely close:
			// the walk order is pinned to container creation order.
			if g != w {
				t.Fatalf("trial %d: tenant %s roll-up %+v != reference %+v", trial, name, g, w)
			}
			// Incremental accumulators saw a different addition order;
			// they must still agree within the audit tolerance.
			ten, _ := h.FindTenant(name)
			acc := ten.Usage()
			if math.Abs(acc.EnergyJ()-w.EnergyJ()) > 1e-9*math.Max(1, math.Abs(w.EnergyJ())) {
				t.Fatalf("trial %d: tenant %s incremental %.12f J vs canonical %.12f J",
					trial, name, acc.EnergyJ(), w.EnergyJ())
			}
			if acc.CPUTime != w.CPUTime || acc.Requests != w.Requests {
				t.Fatalf("trial %d: tenant %s integer totals drifted", trial, name)
			}
		}
		shares := h.TenantChipShares()
		for i := range shares {
			if shares[i] != wantShares[i] {
				t.Fatalf("trial %d: chip share %d = %+v != %+v", trial, i, shares[i], wantShares[i])
			}
		}
	}
}

func TestTenantChipSharesNormalizeAndSort(t *testing.T) {
	// Registration order differs from name order; shares must come back
	// name-sorted and sum to 1.
	h := NewHierarchy()
	for i, spec := range []struct {
		ten  string
		chip float64
	}{{"zeta", 3}, {"acme", 1}} {
		c := &Container{ID: i + 1}
		h.Service(spec.ten, "s").adopt(c)
		c.ChipEnergyJ = spec.chip
	}
	shares := h.TenantChipShares()
	if len(shares) != 2 || shares[0].Tenant != "acme" || shares[1].Tenant != "zeta" {
		t.Fatalf("shares = %+v", shares)
	}
	if shares[0].Share != 0.25 || shares[1].Share != 0.75 {
		t.Fatalf("shares = %+v", shares)
	}
	// No chip energy at all: shares are zero, not NaN.
	empty := NewHierarchy()
	empty.Tenant("a")
	if s := empty.TenantChipShares(); len(s) != 1 || s[0].Share != 0 {
		t.Fatalf("empty shares = %+v", s)
	}
}

func TestHierarchySnapshotRoundTrip(t *testing.T) {
	h := NewHierarchy()
	h.Tenant("acme").Budget = Budget{PowerW: 25}
	c := &Container{ID: 1}
	h.Service("acme", "web").adopt(c)
	c.CPUEnergyJ = 1.5
	c.DeviceEnergyJ = 0.25
	c.CPUTime = 2 * sim.Second
	h.Service("mallory", "burn")

	snap := h.Snapshot()
	if snap.Version != SnapshotVersion || len(snap.Tenants) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	web := snap.FindTenant("acme").Services[0]
	if web.CPUEnergyJ != 1.5 || web.DeviceEnergyJ != 0.25 || web.CPUSeconds != 2 || web.Requests != 1 {
		t.Fatalf("service snapshot = %+v", web)
	}
	if web.EnergyJ() != 1.75 {
		t.Fatalf("EnergyJ = %g", web.EnergyJ())
	}

	h2, err := HierarchyFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Tenant("acme").Budget != (Budget{PowerW: 25}) {
		t.Fatal("budget not restored")
	}
	if _, ok := h2.FindService("mallory", "burn"); !ok {
		t.Fatal("structure not restored")
	}
	// Usage is run-scoped: the rebuilt registry starts from zero.
	if h2.Tenant("acme").Usage().Requests != 0 {
		t.Fatal("usage leaked into a fresh run")
	}

	if _, err := HierarchyFromSnapshot(HierarchySnapshot{Version: 99}); err == nil {
		t.Fatal("version mismatch accepted")
	}
	if _, err := HierarchyFromSnapshot(HierarchySnapshot{
		Version: SnapshotVersion, Tenants: []TenantSnapshot{{}},
	}); err == nil {
		t.Fatal("nameless tenant accepted")
	}
}

func TestSnapshotMergeAccumulates(t *testing.T) {
	var store HierarchySnapshot
	store.Version = SnapshotVersion
	store.EnsureService("acme", "web").Requests = 2
	store.EnsureTenant("acme").Budget = Budget{PowerW: 25}

	var run HierarchySnapshot
	run.Version = SnapshotVersion
	s := run.EnsureService("acme", "web")
	s.Requests = 3
	s.CPUEnergyJ = 1.25
	run.EnsureService("zeta", "db").Requests = 1

	store.Merge(run)
	web := store.FindTenant("acme").Services[0]
	if web.Requests != 5 || web.CPUEnergyJ != 1.25 {
		t.Fatalf("merged service = %+v", web)
	}
	// The run carried no budget: the stored one survives.
	if store.FindTenant("acme").Budget != (Budget{PowerW: 25}) {
		t.Fatal("merge clobbered stored budget")
	}
	if store.FindTenant("zeta") == nil {
		t.Fatal("merge dropped new tenant")
	}
	if got := store.FindTenant("acme").Totals(); got.Requests != 5 {
		t.Fatalf("totals = %+v", got)
	}
}
