package core

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"

	"powercontainers/internal/durable"
)

// ErrCorruptState marks a persisted hierarchy store whose checksum does
// not cover its contents: damage, not a version skew or a torn write
// (torn writes fail JSON decoding; version skews have their own error).
var ErrCorruptState = errors.New("core: hierarchy state corrupt")

// HierarchyState is the persistence seam for hierarchy configuration and
// roll-up snapshots. Two backends implement it, the dual-store shape
// podman uses for container state: an in-memory store for tests and
// single-run tooling, and a versioned JSON file store that powerctl and
// long-lived deployments share.
type HierarchyState interface {
	// Save persists the snapshot, replacing any previous one.
	Save(snap HierarchySnapshot) error
	// Load returns the stored snapshot. ok is false when nothing has been
	// saved yet, in which case an empty current-version snapshot is
	// returned.
	Load() (snap HierarchySnapshot, ok bool, err error)
}

// MemoryState is the in-memory backend: snapshots live only as long as the
// process. Save and Load deep-copy, so callers can mutate their snapshot
// without aliasing the store.
type MemoryState struct {
	snap  HierarchySnapshot
	saved bool
}

// NewMemoryState creates an empty in-memory store.
func NewMemoryState() *MemoryState { return &MemoryState{} }

// Save implements HierarchyState.
func (m *MemoryState) Save(snap HierarchySnapshot) error {
	if err := checkSnapshotVersion(snap); err != nil {
		return err
	}
	m.snap = copySnapshot(snap)
	m.saved = true
	return nil
}

// Load implements HierarchyState.
func (m *MemoryState) Load() (HierarchySnapshot, bool, error) {
	if !m.saved {
		return HierarchySnapshot{Version: SnapshotVersion}, false, nil
	}
	return copySnapshot(m.snap), true, nil
}

// JSONState is the persistent backend: one versioned, checksummed JSON
// document at Path. Writes go through internal/durable's full
// fsync-before-rename discipline (temp file, fsync, atomic rename,
// directory fsync), so a crash mid-save never leaves a torn or
// half-durable store behind; the embedded CRC32C catches bit rot that
// atomicity cannot.
type JSONState struct {
	Path string
	// FS is the filesystem seam (default the real filesystem); crash
	// tests inject durable.MemFS here.
	FS durable.FS
}

// NewJSONState creates a file-backed store at path (the file itself is
// created on first Save).
func NewJSONState(path string) *JSONState { return &JSONState{Path: path} }

func (j *JSONState) fs() durable.FS {
	if j.FS != nil {
		return j.FS
	}
	return durable.OSFS{}
}

// snapshotChecksum computes the CRC32C (hex) of the snapshot's canonical
// compact encoding with the checksum field cleared. snap is a value, so
// clearing the field never touches the caller's copy.
func snapshotChecksum(snap HierarchySnapshot) (string, error) {
	snap.Checksum = ""
	data, err := json.Marshal(snap)
	if err != nil {
		return "", fmt.Errorf("core: encode hierarchy state: %w", err)
	}
	sum := crc32.Checksum(data, crc32.MakeTable(crc32.Castagnoli))
	return hex.EncodeToString([]byte{byte(sum >> 24), byte(sum >> 16), byte(sum >> 8), byte(sum)}), nil
}

// Save implements HierarchyState.
func (j *JSONState) Save(snap HierarchySnapshot) error {
	if err := checkSnapshotVersion(snap); err != nil {
		return err
	}
	sum, err := snapshotChecksum(snap)
	if err != nil {
		return err
	}
	snap.Checksum = sum
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode hierarchy state: %w", err)
	}
	data = append(data, '\n')
	if err := durable.WriteFileAtomic(j.fs(), j.Path, data); err != nil {
		return fmt.Errorf("core: write hierarchy state: %w", err)
	}
	return nil
}

// Load implements HierarchyState.
func (j *JSONState) Load() (HierarchySnapshot, bool, error) {
	data, err := j.fs().ReadFile(j.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return HierarchySnapshot{Version: SnapshotVersion}, false, nil
	}
	if err != nil {
		return HierarchySnapshot{}, false, fmt.Errorf("core: read hierarchy state: %w", err)
	}
	var snap HierarchySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return HierarchySnapshot{}, false, fmt.Errorf("core: decode hierarchy state %s: %w", j.Path, err)
	}
	if err := checkSnapshotVersion(snap); err != nil {
		return HierarchySnapshot{}, false, fmt.Errorf("core: %s: %w", j.Path, err)
	}
	if snap.Checksum != "" {
		want, err := snapshotChecksum(snap)
		if err != nil {
			return HierarchySnapshot{}, false, err
		}
		if snap.Checksum != want {
			return HierarchySnapshot{}, false, fmt.Errorf("%w: %s: checksum %s, contents hash to %s", ErrCorruptState, j.Path, snap.Checksum, want)
		}
	}
	snap.Checksum = ""
	return snap, true, nil
}

func checkSnapshotVersion(snap HierarchySnapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("core: hierarchy state version %d (want %d)", snap.Version, SnapshotVersion)
	}
	return nil
}

func copySnapshot(snap HierarchySnapshot) HierarchySnapshot {
	out := HierarchySnapshot{Version: snap.Version}
	if snap.Tenants != nil {
		out.Tenants = make([]TenantSnapshot, len(snap.Tenants))
		for i, t := range snap.Tenants {
			ct := t
			ct.Services = append([]ServiceSnapshot(nil), t.Services...)
			out.Tenants[i] = ct
		}
	}
	return out
}

var (
	_ HierarchyState = (*MemoryState)(nil)
	_ HierarchyState = (*JSONState)(nil)
)
