package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// HierarchyState is the persistence seam for hierarchy configuration and
// roll-up snapshots. Two backends implement it, the dual-store shape
// podman uses for container state: an in-memory store for tests and
// single-run tooling, and a versioned JSON file store that powerctl and
// long-lived deployments share.
type HierarchyState interface {
	// Save persists the snapshot, replacing any previous one.
	Save(snap HierarchySnapshot) error
	// Load returns the stored snapshot. ok is false when nothing has been
	// saved yet, in which case an empty current-version snapshot is
	// returned.
	Load() (snap HierarchySnapshot, ok bool, err error)
}

// MemoryState is the in-memory backend: snapshots live only as long as the
// process. Save and Load deep-copy, so callers can mutate their snapshot
// without aliasing the store.
type MemoryState struct {
	snap  HierarchySnapshot
	saved bool
}

// NewMemoryState creates an empty in-memory store.
func NewMemoryState() *MemoryState { return &MemoryState{} }

// Save implements HierarchyState.
func (m *MemoryState) Save(snap HierarchySnapshot) error {
	if err := checkSnapshotVersion(snap); err != nil {
		return err
	}
	m.snap = copySnapshot(snap)
	m.saved = true
	return nil
}

// Load implements HierarchyState.
func (m *MemoryState) Load() (HierarchySnapshot, bool, error) {
	if !m.saved {
		return HierarchySnapshot{Version: SnapshotVersion}, false, nil
	}
	return copySnapshot(m.snap), true, nil
}

// JSONState is the persistent backend: one versioned JSON document at
// Path. Writes go through a temporary file in the same directory followed
// by a rename, so a crash mid-save never leaves a torn store behind.
type JSONState struct {
	Path string
}

// NewJSONState creates a file-backed store at path (the file itself is
// created on first Save).
func NewJSONState(path string) *JSONState { return &JSONState{Path: path} }

// Save implements HierarchyState.
func (j *JSONState) Save(snap HierarchySnapshot) error {
	if err := checkSnapshotVersion(snap); err != nil {
		return err
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("core: encode hierarchy state: %w", err)
	}
	data = append(data, '\n')
	dir := filepath.Dir(j.Path)
	tmp, err := os.CreateTemp(dir, ".hierarchy-*.json")
	if err != nil {
		return fmt.Errorf("core: write hierarchy state: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("core: write hierarchy state: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: write hierarchy state: %w", err)
	}
	if err := os.Rename(tmpName, j.Path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("core: write hierarchy state: %w", err)
	}
	return nil
}

// Load implements HierarchyState.
func (j *JSONState) Load() (HierarchySnapshot, bool, error) {
	data, err := os.ReadFile(j.Path)
	if os.IsNotExist(err) {
		return HierarchySnapshot{Version: SnapshotVersion}, false, nil
	}
	if err != nil {
		return HierarchySnapshot{}, false, fmt.Errorf("core: read hierarchy state: %w", err)
	}
	var snap HierarchySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return HierarchySnapshot{}, false, fmt.Errorf("core: decode hierarchy state %s: %w", j.Path, err)
	}
	if err := checkSnapshotVersion(snap); err != nil {
		return HierarchySnapshot{}, false, fmt.Errorf("core: %s: %w", j.Path, err)
	}
	return snap, true, nil
}

func checkSnapshotVersion(snap HierarchySnapshot) error {
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("core: hierarchy state version %d (want %d)", snap.Version, SnapshotVersion)
	}
	return nil
}

func copySnapshot(snap HierarchySnapshot) HierarchySnapshot {
	out := HierarchySnapshot{Version: snap.Version}
	if snap.Tenants != nil {
		out.Tenants = make([]TenantSnapshot, len(snap.Tenants))
		for i, t := range snap.Tenants {
			ct := t
			ct.Services = append([]ServiceSnapshot(nil), t.Services...)
			out.Tenants[i] = ct
		}
	}
	return out
}

var (
	_ HierarchyState = (*MemoryState)(nil)
	_ HierarchyState = (*JSONState)(nil)
)
