package core

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// quadSpec is a single-chip quad-core 1 GHz machine for deterministic tests.
var quadSpec = cpu.MachineSpec{
	Name:         "Quad",
	Chips:        1,
	CoresPerChip: 4,
	FreqHz:       1e9,
	DutyLevels:   8,
}

// uniSpec is a single-core variant.
var uniSpec = cpu.MachineSpec{
	Name:         "Uni",
	Chips:        1,
	CoresPerChip: 1,
	FreqHz:       1e9,
	DutyLevels:   8,
}

// testProfile is a purely linear ground truth so a matching coefficient set
// attributes exactly.
var testProfile = power.TrueProfile{
	MachineIdleW: 40,
	PkgIdleW:     2,
	ChipMaintW:   6,
	CoreW:        8,
	InsW:         2,
	FloatW:       1,
	CacheW:       100,
	MemW:         200,
	SynW:         0,
	DiskW:        1.7,
	NetW:         5.8,
}

// matching coefficients: the model equals the hidden truth.
var trueCoeff = model.Coefficients{
	IdleW: 40, Core: 8, Ins: 2, Float: 1, Cache: 100, Mem: 200,
	Chip: 6, Disk: 1.7, Net: 5.8, IncludesChipShare: true,
}

func newRig(t *testing.T, spec cpu.MachineSpec, cfg Config) (*kernel.Kernel, *Facility) {
	t.Helper()
	eng := sim.NewEngine()
	k, err := kernel.New("test", spec, testProfile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := Attach(k, trueCoeff, cfg)
	return k, f
}

func TestAttachProgramsOverflowThresholds(t *testing.T) {
	k, f := newRig(t, quadSpec, Config{})
	for _, c := range k.Cores {
		if got := c.OverflowThreshold(); got != 1e6 { // 1ms at 1 GHz
			t.Fatalf("threshold = %g, want 1e6", got)
		}
	}
	if k.Monitor != f {
		t.Fatal("facility not installed as monitor")
	}
	if f.Background == nil || f.Background.Kind != KindBackground {
		t.Fatal("background container missing")
	}
}

func TestSingleTaskAttribution(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{Approach: ApproachChipShare})
	cont := f.NewContainer("req")
	act := cpu.Activity{IPC: 1.5, LLCPC: 0.01, MemPC: 0.001}
	k.Spawn("worker", kernel.Script(kernel.OpCompute{BaseCycles: 50e6, Act: act}), cont)
	k.Eng.Run()

	// 50e6 cycles at 1 GHz = 50 ms busy. Expected power: linear terms +
	// full chip share (only core busy).
	wantP := 8 + 2*1.5 + 100*0.01 + 200*0.001 + 6.0
	wantJ := wantP * 0.050
	if math.Abs(cont.CPUEnergyJ-wantJ)/wantJ > 0.02 {
		t.Fatalf("attributed %.4f J, want ≈%.4f J", cont.CPUEnergyJ, wantJ)
	}
	if math.Abs(float64(cont.CPUTime)-50e6)/50e6 > 0.01 {
		t.Fatalf("cpu time = %v, want ≈50ms", cont.CPUTime)
	}
	if cont.MeanActivePowerW() < wantP*0.97 || cont.MeanActivePowerW() > wantP*1.03 {
		t.Fatalf("mean power = %.2f, want ≈%.2f", cont.MeanActivePowerW(), wantP)
	}
	// Ground truth must agree since coefficients equal the hidden model.
	const windowSeconds = 0.050
	truth := k.Rec.PkgActivePowerW(0, 50*sim.Millisecond) * windowSeconds
	if math.Abs(cont.CPUEnergyJ-truth)/truth > 0.05 {
		t.Fatalf("attribution %.4f J diverges from ground truth %.4f J", cont.CPUEnergyJ, truth)
	}
}

func TestChipShareSplitsAcrossConcurrentTasks(t *testing.T) {
	k, f := newRig(t, quadSpec, Config{Approach: ApproachChipShare})
	var conts []*Container
	for i := 0; i < 4; i++ {
		c := f.NewContainer("req")
		conts = append(conts, c)
		k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 50e6, Act: cpu.Activity{IPC: 1}}), c)
	}
	k.Eng.Run()
	var chipTotal float64
	for _, c := range conts {
		chipTotal += c.ChipEnergyJ
	}
	// All four cores busy for 50 ms: total chip maintenance energy = 6 W
	// × 50 ms = 0.3 J, split about evenly.
	if math.Abs(chipTotal-0.3)/0.3 > 0.10 {
		t.Fatalf("chip energy total = %.4f J, want ≈0.3 J", chipTotal)
	}
	for i, c := range conts {
		if math.Abs(c.ChipEnergyJ-0.075)/0.075 > 0.25 {
			t.Errorf("container %d chip share %.4f J, want ≈0.075 J", i, c.ChipEnergyJ)
		}
	}
}

func TestCoreOnlyApproachSkipsChipShare(t *testing.T) {
	k, f := newRig(t, quadSpec, Config{Approach: ApproachCoreOnly})
	cont := f.NewContainer("req")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 20e6, Act: cpu.Activity{IPC: 1}}), cont)
	k.Eng.Run()
	if cont.ChipEnergyJ != 0 {
		t.Fatalf("core-only attribution recorded chip energy %.4f J", cont.ChipEnergyJ)
	}
}

func TestBackgroundAbsorbsUnboundTasks(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	k.Spawn("daemon", kernel.Script(kernel.OpCompute{BaseCycles: 10e6, Act: cpu.Activity{IPC: 1}}), nil)
	k.Eng.Run()
	if f.Background.CPUEnergyJ <= 0 {
		t.Fatal("background container got no energy")
	}
	if f.TotalAccountedEnergyJ() != f.Background.EnergyJ() {
		t.Fatal("total accounted should equal background for unbound-only run")
	}
}

func TestRefcountLifecycle(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	cont := f.NewContainer("req")
	if cont.Refs() != 0 || cont.Released {
		t.Fatal("fresh container state wrong")
	}
	done := make(chan struct{})
	_ = done
	task := k.Spawn("w", kernel.Script(
		kernel.OpCompute{BaseCycles: 1e6, Act: cpu.Activity{IPC: 1}},
		kernel.OpFork{Name: "child", Prog: kernel.Script(
			kernel.OpCompute{BaseCycles: 1e6, Act: cpu.Activity{IPC: 1}},
		)},
		kernel.OpWaitChild{},
	), cont)
	_ = task
	k.Eng.RunUntil(100 * sim.Microsecond)
	if cont.Refs() < 1 {
		t.Fatalf("refs = %d while running", cont.Refs())
	}
	k.Eng.Run()
	if cont.Refs() != 0 || !cont.Released {
		t.Fatalf("container not released after all tasks exited: refs=%d released=%v",
			cont.Refs(), cont.Released)
	}
}

func TestBindTransfersAttribution(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	a := f.NewContainer("reqA")
	b := f.NewContainer("reqB")
	l := kernel.NewListener("in")
	step := 0
	k.Spawn("server", kernel.FuncProgram(func(k *kernel.Kernel, t *kernel.Task) kernel.Op {
		step++
		switch step {
		case 1, 3:
			return kernel.OpRecvListener{L: l}
		case 2, 4:
			return kernel.OpCompute{BaseCycles: 10e6, Act: cpu.Activity{IPC: 1}}
		}
		return nil
	}), nil)
	k.Inject(l, 100, a, nil)
	k.Eng.After(30*sim.Millisecond, func() { k.Inject(l, 100, b, nil) })
	k.Eng.Run()

	if a.CPUEnergyJ <= 0 || b.CPUEnergyJ <= 0 {
		t.Fatalf("both requests must receive energy: a=%.4f b=%.4f", a.CPUEnergyJ, b.CPUEnergyJ)
	}
	// Equal work → similar energy.
	if math.Abs(a.CPUEnergyJ-b.CPUEnergyJ)/a.CPUEnergyJ > 0.10 {
		t.Fatalf("unequal attribution: a=%.4f b=%.4f", a.CPUEnergyJ, b.CPUEnergyJ)
	}
}

func TestObserverCompensation(t *testing.T) {
	run := func(disable bool) float64 {
		kk, f := newRig(t, uniSpec, Config{DisableObserverComp: disable})
		cont := f.NewContainer("req")
		kk.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 100e6, Act: cpu.Activity{IPC: 1}}), cont)
		kk.Eng.Run()
		return cont.Counters.Instructions
	}
	withComp := run(false)
	without := run(true)
	// The run takes ~100 samples; each maintenance op injects 1656
	// instructions that compensation must remove.
	if without <= withComp {
		t.Fatalf("compensation did not reduce counted instructions: %g vs %g", withComp, without)
	}
	extra := without - withComp
	if extra < 50*1656 || extra > 250*1656 {
		t.Fatalf("compensated instruction count %g outside plausible maintenance range", extra)
	}
	// Compensated counts should be close to the task's true 100e6.
	if math.Abs(withComp-100e6)/100e6 > 0.01 {
		t.Fatalf("compensated instructions %g, want ≈100e6", withComp)
	}
}

func TestConditionerThrottlesHighPowerRequest(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	f.EnableConditioning(10) // 10 W active target, 1 core → 10 W budget
	hot := f.NewContainer("hot")
	// ~19 W unthrottled: must be throttled toward the 10 W budget.
	act := cpu.Activity{IPC: 1.5, LLCPC: 0.02, MemPC: 0.03}
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 200e6, Act: act}), hot)
	k.Eng.Run()

	if duty := hot.MeanDutyFraction(); duty > 0.85 {
		t.Fatalf("hot request duty %.2f, expected substantial throttling", duty)
	}
	if hot.OriginalMeanPowerW() < hot.MeanActivePowerW() {
		t.Fatalf("original power %.1f below observed %.1f", hot.OriginalMeanPowerW(), hot.MeanActivePowerW())
	}
}

func TestConditionerLeavesNormalRequestsAlone(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	f.EnableConditioning(20)
	cool := f.NewContainer("cool")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 100e6, Act: cpu.Activity{IPC: 1}}), cool)
	k.Eng.Run()
	if duty := cool.MeanDutyFraction(); duty < 0.99 {
		t.Fatalf("normal request throttled to duty %.2f", duty)
	}
}

func TestDisableConditioningRestoresFullSpeed(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	f.EnableConditioning(5)
	k.Cores[0].SetDutyLevel(3)
	f.DisableConditioning()
	if k.Cores[0].DutyLevel() != k.Cores[0].DutyMax() {
		t.Fatal("duty not restored")
	}
}

func TestDeviceEnergyAttribution(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	cont := f.NewContainer("req")
	k.Spawn("w", kernel.Script(kernel.OpDisk{Bytes: 12e6}), cont) // ~0.104 s
	k.Eng.Run()
	wantJ := 1.7 * (0.004 + 12e6/120e6)
	if math.Abs(cont.DeviceEnergyJ-wantJ)/wantJ > 0.02 {
		t.Fatalf("device energy %.4f J, want ≈%.4f J", cont.DeviceEnergyJ, wantJ)
	}
}

func TestStageStatsPerTaskName(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	cont := f.NewContainer("req")
	k.Spawn("httpd", kernel.Script(
		kernel.OpCompute{BaseCycles: 10e6, Act: cpu.Activity{IPC: 1}},
		kernel.OpFork{Name: "latex", Prog: kernel.Script(
			kernel.OpCompute{BaseCycles: 5e6, Act: cpu.Activity{IPC: 1}},
		)},
		kernel.OpWaitChild{},
	), cont)
	k.Eng.Run()
	stages := cont.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %v", stages)
	}
	byName := map[string]StageStat{}
	for _, s := range stages {
		byName[s.Task] = s
	}
	if byName["httpd"].CPUTime < byName["latex"].CPUTime {
		t.Fatal("httpd should have more busy time than latex")
	}
	if byName["latex"].MeanPowerW() <= 0 {
		t.Fatal("latex stage has no power")
	}
}

func TestTraceOnlyWhenEnabled(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	traced := f.NewContainer("traced")
	traced.EnableTrace()
	silent := f.NewContainer("silent")
	prog := func(c *Container) kernel.Program {
		return kernel.Script(
			kernel.OpCompute{BaseCycles: 1e6, Act: cpu.Activity{IPC: 1}},
			kernel.OpFork{Name: "child", Prog: kernel.Script(
				kernel.OpCompute{BaseCycles: 1e6, Act: cpu.Activity{IPC: 1}},
			)},
			kernel.OpWaitChild{},
		)
	}
	k.Spawn("a", prog(traced), traced)
	k.Spawn("b", prog(silent), silent)
	k.Eng.Run()
	if len(traced.Trace) == 0 {
		t.Fatal("traced container has no events")
	}
	if len(silent.Trace) != 0 {
		t.Fatalf("silent container has %d events", len(silent.Trace))
	}
}

func TestSampleNowAndRewind(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	cont := f.NewContainer("req")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 1e9, Act: cpu.Activity{IPC: 1}}), cont)
	k.Eng.RunUntil(5 * sim.Millisecond)
	before := cont.CPUEnergyJ
	k.Cores[0].AdvanceBusy(sim.Millisecond, cpu.Activity{IPC: 1})
	f.RewindBaseline(0, sim.Millisecond)
	f.SampleNow(0)
	if cont.CPUEnergyJ <= before {
		t.Fatal("SampleNow did not attribute the emulated period")
	}
}

func TestApproachStrings(t *testing.T) {
	if ApproachCoreOnly.String() != "core-only" ||
		ApproachChipShare.String() != "chip-share" ||
		ApproachRecalibrated.String() != "recalibrated" {
		t.Fatal("approach names wrong")
	}
	if KindRequest.String() != "request" || KindBackground.String() != "background" {
		t.Fatal("kind names wrong")
	}
}

func TestContainersListAndLabels(t *testing.T) {
	_, f := newRig(t, uniSpec, Config{})
	a := f.NewContainer("x")
	b := f.NewContainer("y")
	all := f.Containers()
	if len(all) != 3 { // background + 2
		t.Fatalf("containers = %d", len(all))
	}
	if a.ID == b.ID {
		t.Fatal("duplicate container ids")
	}
}

// TestAttributionConservation is a property test: across random concurrent
// workloads, the sum of attributed CPU time over ALL containers (requests +
// background) must equal total core busy time, and attributed energy must
// stay within the model's bounds — no cycles and no joules are lost or
// double-counted by the facility.
func TestAttributionConservation(t *testing.T) {
	trial := func(seed uint64) {
		eng := sim.NewEngine()
		k, err := kernel.New("cons", quadSpec, testProfile, eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		f := Attach(k, trueCoeff, Config{Approach: ApproachChipShare})
		rng := sim.NewRand(seed)

		var wantBusy sim.Time
		nTasks := 1 + rng.Intn(8)
		for i := 0; i < nTasks; i++ {
			cycles := float64(1+rng.Intn(40000)) * 1e3
			// quadSpec runs at 1 GHz with no stalls for IPC-only work.
			wantBusy += sim.Time(cycles)
			var ctx kernel.Context
			if rng.Intn(3) > 0 {
				ctx = f.NewContainer("req")
			}
			k.Spawn("t", kernel.Script(kernel.OpCompute{
				BaseCycles: cycles, Act: cpu.Activity{IPC: 1 + rng.Float64()},
			}), ctx)
		}
		eng.Run()

		var gotBusy sim.Time
		var gotEnergy float64
		for _, c := range f.Containers() {
			gotBusy += c.CPUTime
			gotEnergy += c.CPUEnergyJ
		}
		// Whole-nanosecond segment rounding can add ≤ a few ns per
		// segment; the busy totals must agree to within 0.1%.
		diff := float64(gotBusy - wantBusy)
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(wantBusy) > 0.001 {
			t.Fatalf("seed %d: attributed busy %v != executed %v", seed, gotBusy, wantBusy)
		}
		if gotEnergy <= 0 {
			t.Fatalf("seed %d: no energy attributed", seed)
		}
		// Energy bound: every attributed watt is ≤ the model's max for
		// the highest activity plus full chip share.
		maxP := trueCoeff.EstimateCPU(model.Metrics{Core: 1, Ins: 2, Chip: 1})
		if gotEnergy > maxP*float64(gotBusy)/1e9 {
			t.Fatalf("seed %d: energy %.4f exceeds model bound", seed, gotEnergy)
		}
	}
	for seed := uint64(1); seed <= 30; seed++ {
		trial(seed)
	}
}

func TestAnomalyDetectorFlagsPowerVirus(t *testing.T) {
	k, f := newRig(t, quadSpec, Config{Approach: ApproachChipShare})
	det := f.EnableAnomalyDetection()
	det.MinSamples = 50

	var fired []Anomaly
	det.OnAnomaly = func(a Anomaly) { fired = append(fired, a) }

	normalAct := cpu.Activity{IPC: 1}
	virusAct := cpu.Activity{IPC: 1.5, LLCPC: 0.02, MemPC: 0.03} // ~19 W

	// A steady population of normal requests...
	for i := 0; i < 8; i++ {
		c := f.NewContainer("normal")
		k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 40e6, Act: normalAct}), c)
	}
	// ...then a virus arrives mid-run.
	virus := f.NewContainer("virus")
	k.Eng.After(40*sim.Millisecond, func() {
		k.Spawn("v", kernel.Script(kernel.OpCompute{BaseCycles: 60e6, Act: virusAct}), virus)
	})
	k.Eng.Run()

	if len(fired) == 0 {
		t.Fatal("virus not detected")
	}
	for _, a := range fired {
		if a.Container != virus {
			t.Fatalf("false positive: flagged %s at %.1f W (baseline %.1f±%.1f)",
				a.Container.Label, a.PowerW, a.BaselineW, a.SigmaW)
		}
	}
	if n := len(det.Anomalies()); n != 1 {
		t.Fatalf("anomaly log = %d entries, want exactly one per container", n)
	}
	mean, sigma := det.Baseline()
	if mean <= 0 || sigma < 0 {
		t.Fatalf("baseline %g ± %g", mean, sigma)
	}
}

func TestAnomalyDetectorIgnoresBackground(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	det := f.EnableAnomalyDetection()
	det.MinSamples = 5
	// Unbound (background) high-power work must not be flagged: the
	// detector targets request principals.
	k.Spawn("daemon", kernel.Script(kernel.OpCompute{
		BaseCycles: 100e6, Act: cpu.Activity{IPC: 1.5, LLCPC: 0.02, MemPC: 0.03},
	}), nil)
	k.Eng.Run()
	if len(det.Anomalies()) != 0 {
		t.Fatal("background activity flagged as request anomaly")
	}
}

func TestConditionerWithSixteenDutyLevels(t *testing.T) {
	// Intel exposes duty multipliers of 1/8 or 1/16 (§3.4); the
	// conditioner must work at either granularity.
	spec := uniSpec
	spec.Name = "Uni16"
	spec.DutyLevels = 16
	eng := sim.NewEngine()
	k, err := kernel.New("t16", spec, testProfile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := Attach(k, trueCoeff, Config{})
	f.EnableConditioning(10)
	hot := f.NewContainer("hot")
	act := cpu.Activity{IPC: 1.5, LLCPC: 0.02, MemPC: 0.03}
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 200e6, Act: act}), hot)
	eng.Run()
	duty := hot.MeanDutyFraction()
	if duty > 0.85 {
		t.Fatalf("16-level conditioner did not throttle: duty %.2f", duty)
	}
	// Finer granularity settles close to the budget: observed power must
	// end near 10 W.
	if p := hot.MeanActivePowerW(); p < 8 || p > 13.5 {
		t.Fatalf("throttled power %.1f W, want near the 10 W budget", p)
	}
}
