// Package core implements the paper's contribution: the power-container
// facility. It hooks the kernel's sampling points (counter-overflow
// interrupts, scheduler switches, request-context binding changes, fork,
// exit, I/O completion), attributes per-period hardware events to the bound
// request's container through the Eq. 2 multicore power model with the
// Eq. 3 synchronization-free chip-share estimate, compensates the observer
// effect of its own maintenance operations, maintains the system-wide
// metric series used for measurement alignment and online recalibration,
// and applies per-request CPU duty-cycle conditioning.
package core

import (
	"fmt"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// Kind classifies containers.
type Kind int

const (
	// KindRequest is an individual client request's container.
	KindRequest Kind = iota
	// KindBackground is the special container that absorbs activity with
	// no traceable request binding — e.g. the Google App Engine
	// background processing of §4.2.
	KindBackground
)

func (k Kind) String() string {
	if k == KindBackground {
		return "background"
	}
	return "request"
}

// StageStat accumulates a request's activity inside one server component
// (the per-stage power/energy annotations of Figure 4).
type StageStat struct {
	// Task is the component name (e.g. "httpd", "mysqld", "latex").
	Task string
	// CPUTime is the busy time attributed to this stage.
	CPUTime sim.Time
	// EnergyJ is the modeled CPU energy attributed to this stage.
	EnergyJ float64
}

// MeanPowerW is the stage's mean active power while executing.
func (s StageStat) MeanPowerW() float64 {
	if s.CPUTime <= 0 {
		return 0
	}
	return s.EnergyJ / (float64(s.CPUTime) / float64(sim.Second))
}

// TraceEventKind enumerates captured request-flow events.
type TraceEventKind string

// Trace event kinds.
const (
	TraceBind TraceEventKind = "bind" // context adopted from a socket segment
	TraceFork TraceEventKind = "fork"
	TraceExit TraceEventKind = "exit"
	TraceIO   TraceEventKind = "io"
)

// TraceEvent is one captured request-flow event (Figure 4's arrows).
type TraceEvent struct {
	T      sim.Time
	Kind   TraceEventKind
	Task   string
	Detail string
}

// TraceInterval is one attributed execution period of a traced request:
// the raw material for Figure 4's per-component timelines, where darkened
// portions indicate active execution.
type TraceInterval struct {
	Task       string
	Start, End sim.Time
	PowerW     float64
}

// Container is one power container: the per-request accounting and control
// state of §3.3/§3.5. The real facility packs this into a 784-byte kernel
// structure freed when its task reference count reaches zero; here the
// Released flag marks that point while the statistics remain readable for
// experiments.
type Container struct {
	ID    int
	Label string
	Kind  Kind
	// Client identifies the principal the request belongs to, enabling
	// the client-oriented accounting of §1/§3.3 (e.g. billing the full
	// energy cost of web use to the users causing it).
	Client string

	// Tenant and Service name the hierarchy node the container is filed
	// under (empty in flat mode). Set by Facility.NewContainerIn; svc is
	// the resolved node, the nil-check gating every hierarchy code path
	// so flat-mode behavior stays bit-identical.
	Tenant  string
	Service string
	svc     *Service

	// Start is creation time; End is set by Finish (request completion).
	Start sim.Time
	End   sim.Time

	// Counters accumulates the hardware events attributed to the
	// container (after observer-effect compensation).
	Counters cpu.Counters
	// CPUTime is total attributed busy time across all cores and tasks.
	CPUTime sim.Time
	// CPUEnergyJ is modeled processor-side energy; ChipEnergyJ is the
	// portion of it attributed through the shared chip maintenance term
	// (the facility can decompose its own estimate); DeviceEnergyJ is
	// attributed disk/network energy.
	CPUEnergyJ    float64
	ChipEnergyJ   float64
	DeviceEnergyJ float64

	// LastPowerW is the modeled power of the most recent attribution
	// period — the signal the conditioner throttles on.
	LastPowerW float64

	// PowerTargetW is the per-request active power budget (0 = none).
	PowerTargetW float64

	// dutyLevel is the conditioner-assigned duty level (0 = unset: run
	// at full speed).
	dutyLevel int

	// dutyWeighted accumulates dutyFraction × seconds for the
	// time-averaged duty-cycle ratio of Figure 12; origEnergyJ is the
	// estimated unthrottled energy (observed power ÷ duty fraction,
	// using the paper's linear duty/power assumption).
	dutyWeighted float64
	origEnergyJ  float64

	refs     int
	Released bool

	stageIdx     map[string]int
	stages       []StageStat
	traceEnabled bool
	Trace        []TraceEvent
	// Intervals records attributed execution periods when tracing is on.
	Intervals []TraceInterval
}

// EnergyJ is total attributed energy: CPU plus devices.
func (c *Container) EnergyJ() float64 { return c.CPUEnergyJ + c.DeviceEnergyJ }

// cpuSeconds converts attributed busy time to seconds.
func (c *Container) cpuSeconds() float64 { return float64(c.CPUTime) / float64(sim.Second) }

// perSecond divides a lifetime-accumulated quantity by the container's
// attributed busy seconds. Every mean-value accessor funnels through this
// one guard so the zero-duration policy is consistent: power-like
// quantities fall back to 0 (a container that never ran drew nothing),
// ratio-like quantities fall back to their identity (1 = unthrottled).
func (c *Container) perSecond(num, fallback float64) float64 {
	s := c.cpuSeconds()
	if s <= 0 {
		return fallback
	}
	return num / s
}

// MeanActivePowerW is the mean modeled power over the container's busy
// execution (the "mean request power" of Figure 6).
func (c *Container) MeanActivePowerW() float64 {
	return c.perSecond(c.CPUEnergyJ, 0)
}

// MeanIntrinsicPowerW is the mean modeled power excluding the attributed
// share of chip maintenance — the request's own activity-driven draw. A
// request running alone legitimately carries the whole maintenance power,
// so anomaly detection compares intrinsic power, which does not depend on
// what the sibling cores happen to be doing.
func (c *Container) MeanIntrinsicPowerW() float64 {
	return c.perSecond(c.CPUEnergyJ-c.ChipEnergyJ, 0)
}

// MeanDutyFraction is the time-averaged duty-cycle ratio applied to the
// container's execution (Figure 12's y-axis). A zero-duration container
// was never modulated, so the fallback is the unthrottled identity 1.
func (c *Container) MeanDutyFraction() float64 {
	return c.perSecond(c.dutyWeighted, 1)
}

// OriginalMeanPowerW estimates the container's mean power had it never been
// throttled (Figure 12's x-axis). Periods with a non-positive duty
// fraction contribute no unthrottled-energy estimate (see addPeriod), the
// same exclusion this mean's zero-duration fallback of 0 applies globally.
func (c *Container) OriginalMeanPowerW() float64 {
	return c.perSecond(c.origEnergyJ, 0)
}

// Stages returns per-component stage statistics in first-seen order.
func (c *Container) Stages() []StageStat {
	return append([]StageStat(nil), c.stages...)
}

// Duration returns wall time from creation to Finish (or 0 if unfinished).
func (c *Container) Duration() sim.Time {
	if c.End <= c.Start {
		return 0
	}
	return c.End - c.Start
}

// Finish marks the request complete at time t.
func (c *Container) Finish(t sim.Time) { c.End = t }

// EnableTrace turns on request-flow event capture (Figure 4).
func (c *Container) EnableTrace() { c.traceEnabled = true }

// addPeriod folds one attribution period into the container.
func (c *Container) addPeriod(task string, end, wall sim.Time, ev cpu.Counters, energyJ, chipEnergyJ, powerW, dutyFrac float64) {
	c.Counters = c.Counters.Add(ev)
	c.CPUTime += wall
	c.CPUEnergyJ += energyJ
	c.ChipEnergyJ += chipEnergyJ
	c.LastPowerW = powerW
	seconds := float64(wall) / float64(sim.Second)
	c.dutyWeighted += dutyFrac * seconds
	// Zero-duty guard: the unthrottled-energy estimate divides by the duty
	// fraction (linear duty/power assumption, §3.4); a degenerate period
	// reporting dutyFrac <= 0 is excluded rather than poisoning the sum
	// with ±Inf — matching OriginalMeanPowerW's zero fallback.
	if dutyFrac > 0 {
		c.origEnergyJ += energyJ / dutyFrac
	}
	if c.stageIdx == nil {
		c.stageIdx = make(map[string]int)
	}
	i, ok := c.stageIdx[task]
	if !ok {
		i = len(c.stages)
		c.stageIdx[task] = i
		c.stages = append(c.stages, StageStat{Task: task})
	}
	c.stages[i].CPUTime += wall
	c.stages[i].EnergyJ += energyJ
	if c.traceEnabled {
		c.Intervals = append(c.Intervals, TraceInterval{Task: task, Start: end - wall, End: end, PowerW: powerW})
	}
}

// addTrace records a flow event when tracing is enabled.
func (c *Container) addTrace(t sim.Time, kind TraceEventKind, task, detail string) {
	if !c.traceEnabled {
		return
	}
	c.Trace = append(c.Trace, TraceEvent{T: t, Kind: kind, Task: task, Detail: detail})
}

// retain adds a task reference.
func (c *Container) retain() { c.refs++ }

// release drops a task reference, marking the container's kernel state
// reclaimable at zero (§3.5's leak-freedom property). Background containers
// are immortal.
func (c *Container) release() {
	if c.Kind == KindBackground {
		return
	}
	c.refs--
	if c.refs < 0 {
		panic(fmt.Sprintf("core: container %d refcount below zero", c.ID))
	}
	if c.refs == 0 {
		c.Released = true
	}
}

// Refs returns the live task reference count.
func (c *Container) Refs() int { return c.refs }
