package core

import (
	"sort"

	"powercontainers/internal/cpu"
)

// Conditioner implements §3.4's fair request power conditioning: each
// request gets an active power budget derived from the system target and
// the number of busy cores; requests exceeding their budget are throttled
// with per-core CPU duty-cycle modulation while normal requests run at full
// speed. Duty levels are reassessed after each periodic counter sampling
// (~once per millisecond) and applied whenever a core switches requests.
type Conditioner struct {
	// SystemTargetW is the whole-system active power target (e.g. the
	// 40 W cap of Figure 11).
	SystemTargetW float64

	f *Facility

	// ThrottleDecisions counts duty-level changes, for overhead
	// reporting.
	ThrottleDecisions uint64

	// BudgetThrottles counts the subset of decisions forced by tenant
	// budget enforcement (beyond fair per-request conditioning).
	BudgetThrottles uint64

	// scratch is the reusable worst-first ranking buffer; the conditioner
	// runs only on the simulation goroutine.
	scratch []*Container
}

// EnableConditioning activates fair power conditioning with the given
// system active power target and returns the conditioner.
func (f *Facility) EnableConditioning(systemTargetW float64) *Conditioner {
	f.cond = &Conditioner{SystemTargetW: systemTargetW, f: f}
	return f.cond
}

// DisableConditioning removes the conditioning policy and resets the duty
// machinery exactly once: every core's duty register returns to full speed
// immediately, and every container's conditioner-assigned duty level is
// cleared, so a later EnableConditioning starts from the same state a
// freshly conditioned facility would instead of resuming stale throttle
// levels. Calling it again without an intervening enable is a no-op.
func (f *Facility) DisableConditioning() {
	if f.cond == nil {
		return
	}
	f.cond = nil
	for _, c := range f.K.Cores {
		if c.DutyLevel() != c.DutyMax() {
			c.SetDutyLevel(c.DutyMax())
		}
	}
	for _, c := range f.containers {
		c.dutyLevel = 0
	}
}

// budget returns the current per-request power budget: the system target
// divided evenly among busy cores, so a request running while siblings
// idle legitimately enjoys a larger budget (the unthrottled viruses at the
// top-right of Figure 12).
func (c *Conditioner) budget() float64 {
	busy := c.f.K.BusyCores()
	if busy < 1 {
		busy = 1
	}
	return c.SystemTargetW / float64(busy)
}

// perRequestTarget returns the budget for one container, honouring an
// explicit per-container target when set.
func (c *Conditioner) perRequestTarget(cont *Container) float64 {
	if cont.PowerTargetW > 0 {
		return cont.PowerTargetW
	}
	return c.budget()
}

// adjust reassesses a running request's duty level from its most recent
// modeled power (called after each periodic sample). Fair per-request
// conditioning (§3.4) runs first; hierarchical budget enforcement then
// composes with it by only ever pushing the level further down, so a
// tenant cap can tighten but never loosen the fair policy.
func (c *Conditioner) adjust(core *cpu.Core, cont *Container) {
	target := c.perRequestTarget(cont)
	lvl := cont.dutyLevel
	if lvl == 0 {
		lvl = core.DutyMax()
	}
	cur := cont.LastPowerW
	switch {
	case cur > target && lvl > 1:
		lvl--
	case lvl < core.DutyMax():
		// Step back up only if the projected power at the higher
		// level (linear in duty, §3.4) stays within budget.
		projected := cur * float64(lvl+1) / float64(lvl)
		if projected <= target {
			lvl++
		}
	}
	fair := lvl
	switch act, floor := c.tenantEnforce(cont); act {
	case enforceThrottle:
		// One duty step down per sample relative to the request's
		// current level — the same gradual-descent cadence the fair
		// policy uses — but never below the enforcement floor, and never
		// above what fair conditioning chose.
		base := cont.dutyLevel
		if base == 0 {
			base = core.DutyMax()
		}
		step := base - 1
		if step < floor {
			step = floor
		}
		if step < lvl {
			lvl = step
		}
	case enforceHold:
		// The tenant is over budget but this request is outside the
		// worst-first prefix: it keeps its current level. Without the
		// hold, fair step-ups on the tenant's other requests would
		// cancel every enforcement step-down and the tenant's draw
		// would never descend to the budget.
		base := cont.dutyLevel
		if base == 0 {
			base = core.DutyMax()
		}
		if lvl > base {
			lvl = base
		}
	}
	if lvl != cont.dutyLevel {
		cont.dutyLevel = lvl
		c.ThrottleDecisions++
		if lvl < fair {
			c.BudgetThrottles++
			cont.svc.Tenant.budgetThrottles++
			if c.f.Audit != nil {
				c.f.Audit.OnBudgetThrottle(cont, cont.svc.Tenant.Name, lvl, c.f.K.Now())
			}
		}
	}
	c.apply(core, cont)
}

// enforceAction is tenant budget enforcement's verdict for one request.
type enforceAction int

const (
	// enforceNone leaves the request to fair conditioning alone.
	enforceNone enforceAction = iota
	// enforceHold freezes the request at its current duty level: its
	// tenant is over budget, but worse siblings are being throttled
	// first.
	enforceHold
	// enforceThrottle steps the request's duty level down.
	enforceThrottle
)

// tenantEnforce decides what hierarchical budget enforcement wants for
// this request right now, returning the duty floor to descend toward.
// An exhausted energy budget condemns every request of the tenant to the
// floor; a power budget throttles the tenant's worst requests first: the
// currently running requests are ranked by modeled power (descending, ID
// ascending as the deterministic tie-break) and the minimal prefix whose
// combined draw covers the overshoot is selected. Requests outside that
// prefix hold their level until the tenant is back under budget; every
// flat-mode container is left to fair conditioning alone.
func (c *Conditioner) tenantEnforce(cont *Container) (enforceAction, int) {
	if cont.svc == nil {
		return enforceNone, 0
	}
	ten := cont.svc.Tenant
	b := ten.Budget
	if b.EnergyJ > 0 && ten.acc.EnergyJ() >= b.EnergyJ {
		return enforceThrottle, 1
	}
	if b.PowerW <= 0 {
		return enforceNone, 0
	}
	running, sum := c.runningOf(ten)
	if sum <= b.PowerW {
		return enforceNone, 0
	}
	sort.Slice(running, func(i, j int) bool {
		if running[i].LastPowerW > running[j].LastPowerW {
			return true
		}
		if running[i].LastPowerW < running[j].LastPowerW {
			return false
		}
		return running[i].ID < running[j].ID
	})
	excess := sum - b.PowerW
	var covered float64
	for _, r := range running {
		if covered >= excess {
			break
		}
		if r == cont {
			return enforceThrottle, 1
		}
		covered += r.LastPowerW
	}
	return enforceHold, 0
}

// runningOf collects the tenant's currently running request containers in
// core-ID order with their summed modeled power — the synchronization-free
// live view enforcement ranks. The returned slice aliases the conditioner's
// scratch buffer.
func (c *Conditioner) runningOf(t *Tenant) ([]*Container, float64) {
	c.scratch = c.scratch[:0]
	var sum float64
	for _, core := range c.f.K.Cores {
		task := c.f.K.RunningTask(core.ID)
		if task == nil {
			continue
		}
		cont := c.f.containerOf(task)
		if cont.svc == nil || cont.svc.Tenant != t {
			continue
		}
		c.scratch = append(c.scratch, cont)
		sum += cont.LastPowerW
	}
	return c.scratch, sum
}

// apply programs the core's duty register for the request about to run
// (or continuing to run) on it.
func (c *Conditioner) apply(core *cpu.Core, cont *Container) {
	lvl := cont.dutyLevel
	if lvl == 0 {
		lvl = core.DutyMax()
	}
	if core.DutyLevel() != lvl {
		core.SetDutyLevel(lvl)
	}
}
