package core

import (
	"powercontainers/internal/cpu"
)

// Conditioner implements §3.4's fair request power conditioning: each
// request gets an active power budget derived from the system target and
// the number of busy cores; requests exceeding their budget are throttled
// with per-core CPU duty-cycle modulation while normal requests run at full
// speed. Duty levels are reassessed after each periodic counter sampling
// (~once per millisecond) and applied whenever a core switches requests.
type Conditioner struct {
	// SystemTargetW is the whole-system active power target (e.g. the
	// 40 W cap of Figure 11).
	SystemTargetW float64

	f *Facility

	// ThrottleDecisions counts duty-level changes, for overhead
	// reporting.
	ThrottleDecisions uint64
}

// EnableConditioning activates fair power conditioning with the given
// system active power target and returns the conditioner.
func (f *Facility) EnableConditioning(systemTargetW float64) *Conditioner {
	f.cond = &Conditioner{SystemTargetW: systemTargetW, f: f}
	return f.cond
}

// DisableConditioning removes the conditioning policy; cores return to full
// speed the next time each is adjusted... immediately for simplicity.
func (f *Facility) DisableConditioning() {
	f.cond = nil
	for _, c := range f.K.Cores {
		if c.DutyLevel() != c.DutyMax() {
			c.SetDutyLevel(c.DutyMax())
		}
	}
}

// budget returns the current per-request power budget: the system target
// divided evenly among busy cores, so a request running while siblings
// idle legitimately enjoys a larger budget (the unthrottled viruses at the
// top-right of Figure 12).
func (c *Conditioner) budget() float64 {
	busy := c.f.K.BusyCores()
	if busy < 1 {
		busy = 1
	}
	return c.SystemTargetW / float64(busy)
}

// perRequestTarget returns the budget for one container, honouring an
// explicit per-container target when set.
func (c *Conditioner) perRequestTarget(cont *Container) float64 {
	if cont.PowerTargetW > 0 {
		return cont.PowerTargetW
	}
	return c.budget()
}

// adjust reassesses a running request's duty level from its most recent
// modeled power (called after each periodic sample).
func (c *Conditioner) adjust(core *cpu.Core, cont *Container) {
	target := c.perRequestTarget(cont)
	lvl := cont.dutyLevel
	if lvl == 0 {
		lvl = core.DutyMax()
	}
	cur := cont.LastPowerW
	switch {
	case cur > target && lvl > 1:
		lvl--
	case lvl < core.DutyMax():
		// Step back up only if the projected power at the higher
		// level (linear in duty, §3.4) stays within budget.
		projected := cur * float64(lvl+1) / float64(lvl)
		if projected <= target {
			lvl++
		}
	}
	if lvl != cont.dutyLevel {
		cont.dutyLevel = lvl
		c.ThrottleDecisions++
	}
	c.apply(core, cont)
}

// apply programs the core's duty register for the request about to run
// (or continuing to run) on it.
func (c *Conditioner) apply(core *cpu.Core, cont *Container) {
	lvl := cont.dutyLevel
	if lvl == 0 {
		lvl = core.DutyMax()
	}
	if core.DutyLevel() != lvl {
		core.SetDutyLevel(lvl)
	}
}
