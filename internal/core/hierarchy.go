package core

import (
	"fmt"
	"sort"

	"powercontainers/internal/sim"
)

// This file implements the three-level container hierarchy of ROADMAP
// item 2: Tenant → Service → Container(request). The paper's accounting is
// client-oriented (§1, §3.3) — bill the principal causing the work for the
// full energy of the work — and the hierarchy generalizes the per-request
// container to the two aggregation levels a multi-tenant server actually
// bills and polices: the service a request arrived at, and the tenant that
// owns the service.
//
// Two parallel views of every node's usage are maintained:
//
//   - an incremental accumulator, charged in simulation order from the
//     facility's attribution paths (samplePeriod, OnIO). O(1) per period,
//     readable mid-run — this is what budget enforcement and the streaming
//     engine consume.
//   - a canonical roll-up, recomputed on demand by walking the node's
//     containers in creation (ID) order. Because float addition is not
//     associative, summing in a fixed order is what makes tenant totals
//     independent of request completion order (the same permutation-
//     invariance trick Eq. 3 uses for chip shares). The audit layer checks
//     the two views agree within 1e-9.

// Budget caps a tenant's resource draw. Zero values mean "uncapped".
type Budget struct {
	// PowerW caps the tenant's aggregate modeled active power. While the
	// tenant's running requests together draw more, the conditioner
	// throttles the worst (highest-power) of them first (§3.4 composed one
	// level up).
	PowerW float64 `json:"power_w,omitempty"`
	// EnergyJ caps the tenant's total attributed energy; once exhausted
	// every request of the tenant runs at the duty floor.
	EnergyJ float64 `json:"energy_j,omitempty"`
}

// IsZero reports whether no cap is configured.
func (b Budget) IsZero() bool { return b.PowerW <= 0 && b.EnergyJ <= 0 }

// Usage is a roll-up of attributed consumption at one hierarchy node.
type Usage struct {
	// CPUEnergyJ is modeled processor-side energy; ChipEnergyJ is the
	// chip-maintenance portion of it (attributed via Eq. 3); DeviceEnergyJ
	// is attributed disk/network energy.
	CPUEnergyJ    float64
	ChipEnergyJ   float64
	DeviceEnergyJ float64
	// CPUTime is total attributed busy time.
	CPUTime sim.Time
	// Requests counts containers filed under the node.
	Requests int
}

// EnergyJ is total attributed energy: CPU plus devices.
func (u Usage) EnergyJ() float64 { return u.CPUEnergyJ + u.DeviceEnergyJ }

// add folds a container's lifetime totals into the roll-up.
func (u *Usage) add(c *Container) {
	u.CPUEnergyJ += c.CPUEnergyJ
	u.ChipEnergyJ += c.ChipEnergyJ
	u.DeviceEnergyJ += c.DeviceEnergyJ
	u.CPUTime += c.CPUTime
	u.Requests++
}

// Service is the middle hierarchy level: one named service of a tenant,
// owning the request containers created on its behalf.
type Service struct {
	// Name is the service name, unique within its tenant.
	Name string
	// Tenant is the owning tenant.
	Tenant *Tenant
	// Index is the service's global registration order across the
	// hierarchy (creation order, used as its stable stream record ID).
	Index int

	containers []*Container // creation order
	acc        Usage        // incremental accumulator (simulation order)
}

// Qualified returns the "tenant/service" path.
func (s *Service) Qualified() string { return s.Tenant.Name + "/" + s.Name }

// Containers returns the service's request containers in creation order.
func (s *Service) Containers() []*Container {
	return append([]*Container(nil), s.containers...)
}

// Usage returns the incrementally charged accumulator — the live view, in
// lockstep with the facility's attribution.
func (s *Service) Usage() Usage { return s.acc }

// RollUp recomputes the service's usage by summing its containers in
// creation order — the canonical, permutation-invariant roll-up. The audit
// layer checks it matches the incremental view within 1e-9.
func (s *Service) RollUp() Usage {
	var u Usage
	for _, c := range s.containers {
		u.add(c)
	}
	return u
}

// adopt files a container under the service.
func (s *Service) adopt(c *Container) {
	c.Tenant = s.Tenant.Name
	c.Service = s.Name
	c.svc = s
	s.containers = append(s.containers, c)
	s.acc.Requests++
	s.Tenant.acc.Requests++
}

// charge folds one attribution period into the incremental accumulators of
// the service and its tenant.
func (s *Service) charge(wall sim.Time, energyJ, chipEnergyJ float64) {
	s.acc.CPUTime += wall
	s.acc.CPUEnergyJ += energyJ
	s.acc.ChipEnergyJ += chipEnergyJ
	t := s.Tenant
	t.acc.CPUTime += wall
	t.acc.CPUEnergyJ += energyJ
	t.acc.ChipEnergyJ += chipEnergyJ
}

// chargeDevice folds attributed device energy into the incremental
// accumulators.
func (s *Service) chargeDevice(joules float64) {
	s.acc.DeviceEnergyJ += joules
	s.Tenant.acc.DeviceEnergyJ += joules
}

// Tenant is the top hierarchy level: the billed principal.
type Tenant struct {
	// Name is the tenant name, unique within the hierarchy.
	Name string
	// Budget caps the tenant's draw; the conditioner enforces it.
	Budget Budget
	// Index is the tenant's registration order in the hierarchy.
	Index int

	services []*Service // registration order
	svcIdx   map[string]int
	acc      Usage

	// budgetThrottles counts conditioner decisions forced by this
	// tenant's budget (beyond what fair per-request conditioning chose).
	budgetThrottles uint64
}

// Services returns the tenant's services in registration order.
func (t *Tenant) Services() []*Service {
	return append([]*Service(nil), t.services...)
}

// Usage returns the incrementally charged accumulator.
func (t *Tenant) Usage() Usage { return t.acc }

// RollUp recomputes the tenant's usage from its services' canonical
// roll-ups in registration order.
func (t *Tenant) RollUp() Usage {
	var u Usage
	for _, s := range t.services {
		su := s.RollUp()
		u.CPUEnergyJ += su.CPUEnergyJ
		u.ChipEnergyJ += su.ChipEnergyJ
		u.DeviceEnergyJ += su.DeviceEnergyJ
		u.CPUTime += su.CPUTime
		u.Requests += su.Requests
	}
	return u
}

// BudgetThrottles returns how many conditioner decisions this tenant's
// budget forced.
func (t *Tenant) BudgetThrottles() uint64 { return t.budgetThrottles }

// Hierarchy is the tenant→service→request registry. It is not
// goroutine-safe; like the facility it belongs to exactly one simulated
// machine and is driven from its event loop.
type Hierarchy struct {
	tenants  []*Tenant // registration order
	tIdx     map[string]int
	services []*Service // global registration order
}

// NewHierarchy creates an empty registry.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{tIdx: make(map[string]int)}
}

// Tenant returns the named tenant, creating it on first use.
func (h *Hierarchy) Tenant(name string) *Tenant {
	if name == "" {
		panic("core: empty tenant name")
	}
	if i, ok := h.tIdx[name]; ok {
		return h.tenants[i]
	}
	t := &Tenant{Name: name, Index: len(h.tenants), svcIdx: make(map[string]int)}
	h.tIdx[name] = t.Index
	h.tenants = append(h.tenants, t)
	return t
}

// Service returns the tenant's named service, creating both on first use.
func (h *Hierarchy) Service(tenant, service string) *Service {
	if service == "" {
		panic("core: empty service name")
	}
	t := h.Tenant(tenant)
	if i, ok := t.svcIdx[service]; ok {
		return t.services[i]
	}
	s := &Service{Name: service, Tenant: t, Index: len(h.services)}
	t.svcIdx[service] = len(t.services)
	t.services = append(t.services, s)
	h.services = append(h.services, s)
	return s
}

// FindTenant looks up a tenant without creating it.
func (h *Hierarchy) FindTenant(name string) (*Tenant, bool) {
	i, ok := h.tIdx[name]
	if !ok {
		return nil, false
	}
	return h.tenants[i], true
}

// FindService looks up a service without creating it.
func (h *Hierarchy) FindService(tenant, service string) (*Service, bool) {
	t, ok := h.FindTenant(tenant)
	if !ok {
		return nil, false
	}
	i, ok := t.svcIdx[service]
	if !ok {
		return nil, false
	}
	return t.services[i], true
}

// NumTenants returns how many tenants are registered; TenantAt returns the
// i-th in registration order. The pair is the incremental-scan surface the
// streaming engine uses (mirroring Facility.NumContainers/ContainerAt).
func (h *Hierarchy) NumTenants() int          { return len(h.tenants) }
func (h *Hierarchy) TenantAt(i int) *Tenant   { return h.tenants[i] }
func (h *Hierarchy) NumServices() int         { return len(h.services) }
func (h *Hierarchy) ServiceAt(i int) *Service { return h.services[i] }

// TenantShare is one tenant's portion of the shared chip draw.
type TenantShare struct {
	Tenant string
	// Share is the tenant's fraction of all tenant-attributed chip
	// energy, in [0, 1]; shares sum to 1 when any chip energy exists.
	Share float64
	// ChipEnergyJ is the tenant's Eq. 3-attributed chip energy.
	ChipEnergyJ float64
}

// TenantChipShares apportions the shared chip maintenance draw one level
// up, as the tentpole requires: each request's chip share was already
// estimated synchronization-free by Eq. 3 at attribution time; the tenant
// level normalizes those per-request estimates into exact fractions. The
// computation iterates tenants in sorted-name order with canonical
// roll-ups, so the result is independent of both registration order and
// request completion order.
func (h *Hierarchy) TenantChipShares() []TenantShare {
	names := make([]string, 0, len(h.tenants))
	for _, t := range h.tenants {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	out := make([]TenantShare, 0, len(names))
	var total float64
	for _, name := range names {
		t, _ := h.FindTenant(name)
		chip := t.RollUp().ChipEnergyJ
		out = append(out, TenantShare{Tenant: name, ChipEnergyJ: chip})
		total += chip
	}
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].ChipEnergyJ / total
		}
	}
	return out
}

// ---- snapshots ----

// SnapshotVersion is the persistent hierarchy snapshot format version.
const SnapshotVersion = 1

// ServiceSnapshot is one service's persisted configuration and usage.
type ServiceSnapshot struct {
	Name          string  `json:"name"`
	CPUEnergyJ    float64 `json:"cpu_energy_j"`
	ChipEnergyJ   float64 `json:"chip_energy_j"`
	DeviceEnergyJ float64 `json:"device_energy_j"`
	CPUSeconds    float64 `json:"cpu_seconds"`
	Requests      int     `json:"requests"`
}

// TenantSnapshot is one tenant's persisted configuration and usage.
type TenantSnapshot struct {
	Name     string            `json:"name"`
	Budget   Budget            `json:"budget"`
	Services []ServiceSnapshot `json:"services,omitempty"`
}

// HierarchySnapshot is the versioned persistent form of a hierarchy:
// structure, budgets, and canonical usage roll-ups. Like podman's state
// stores it is configuration plus last-known stats — live request
// containers are run-scoped and never persisted.
type HierarchySnapshot struct {
	Version int              `json:"version"`
	Tenants []TenantSnapshot `json:"tenants,omitempty"`
	// Checksum is the CRC32C (hex) of the snapshot's canonical encoding
	// with this field empty, set by persistent stores on Save and
	// verified on Load. Empty means a legacy store written before
	// checksums existed, which loads without verification.
	Checksum string `json:"checksum,omitempty"`
}

// Snapshot captures the hierarchy's structure, budgets, and canonical
// roll-ups (creation-order sums, so byte-stable across completion-order
// permutations).
func (h *Hierarchy) Snapshot() HierarchySnapshot {
	snap := HierarchySnapshot{Version: SnapshotVersion}
	for _, t := range h.tenants {
		ts := TenantSnapshot{Name: t.Name, Budget: t.Budget}
		for _, s := range t.services {
			u := s.RollUp()
			ts.Services = append(ts.Services, ServiceSnapshot{
				Name:          s.Name,
				CPUEnergyJ:    u.CPUEnergyJ,
				ChipEnergyJ:   u.ChipEnergyJ,
				DeviceEnergyJ: u.DeviceEnergyJ,
				CPUSeconds:    float64(u.CPUTime) / float64(sim.Second),
				Requests:      u.Requests,
			})
		}
		snap.Tenants = append(snap.Tenants, ts)
	}
	return snap
}

// HierarchyFromSnapshot rebuilds a registry's structure and budgets from a
// snapshot. Usage numbers are not restored: roll-ups describe finished
// runs, and a new run's containers start from zero (the snapshot's stats
// remain in the store for powerctl to aggregate).
func HierarchyFromSnapshot(snap HierarchySnapshot) (*Hierarchy, error) {
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("core: hierarchy snapshot version %d (want %d)", snap.Version, SnapshotVersion)
	}
	h := NewHierarchy()
	for _, ts := range snap.Tenants {
		if ts.Name == "" {
			return nil, fmt.Errorf("core: hierarchy snapshot has a tenant with no name")
		}
		t := h.Tenant(ts.Name)
		t.Budget = ts.Budget
		for _, ss := range ts.Services {
			if ss.Name == "" {
				return nil, fmt.Errorf("core: tenant %q has a service with no name", ts.Name)
			}
			h.Service(ts.Name, ss.Name)
		}
	}
	return h, nil
}

// ---- snapshot helpers (powerctl's working set) ----

// FindTenant returns the named tenant snapshot, or nil.
func (s *HierarchySnapshot) FindTenant(name string) *TenantSnapshot {
	for i := range s.Tenants {
		if s.Tenants[i].Name == name {
			return &s.Tenants[i]
		}
	}
	return nil
}

// EnsureTenant returns the named tenant snapshot, appending it on first
// use.
func (s *HierarchySnapshot) EnsureTenant(name string) *TenantSnapshot {
	if t := s.FindTenant(name); t != nil {
		return t
	}
	s.Tenants = append(s.Tenants, TenantSnapshot{Name: name})
	return &s.Tenants[len(s.Tenants)-1]
}

// EnsureService returns the tenant's named service snapshot, appending
// tenant and service on first use.
func (s *HierarchySnapshot) EnsureService(tenant, service string) *ServiceSnapshot {
	t := s.EnsureTenant(tenant)
	for i := range t.Services {
		if t.Services[i].Name == service {
			return &t.Services[i]
		}
	}
	t.Services = append(t.Services, ServiceSnapshot{Name: service})
	return &t.Services[len(t.Services)-1]
}

// Merge folds another snapshot into this one: usage adds up, structure is
// adopted, and a non-zero budget in other replaces the stored one. This is
// how powerctl ingests per-run roll-ups into the long-lived store.
func (s *HierarchySnapshot) Merge(other HierarchySnapshot) {
	for _, ot := range other.Tenants {
		t := s.EnsureTenant(ot.Name)
		if !ot.Budget.IsZero() {
			t.Budget = ot.Budget
		}
		for _, os := range ot.Services {
			ss := s.EnsureService(ot.Name, os.Name)
			ss.CPUEnergyJ += os.CPUEnergyJ
			ss.ChipEnergyJ += os.ChipEnergyJ
			ss.DeviceEnergyJ += os.DeviceEnergyJ
			ss.CPUSeconds += os.CPUSeconds
			ss.Requests += os.Requests
		}
	}
}

// EnergyJ is the service snapshot's total attributed energy.
func (s ServiceSnapshot) EnergyJ() float64 { return s.CPUEnergyJ + s.DeviceEnergyJ }

// Totals sums the tenant snapshot's services.
func (t TenantSnapshot) Totals() ServiceSnapshot {
	var sum ServiceSnapshot
	sum.Name = t.Name
	for _, s := range t.Services {
		sum.CPUEnergyJ += s.CPUEnergyJ
		sum.ChipEnergyJ += s.ChipEnergyJ
		sum.DeviceEnergyJ += s.DeviceEnergyJ
		sum.CPUSeconds += s.CPUSeconds
		sum.Requests += s.Requests
	}
	return sum
}
