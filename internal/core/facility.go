package core

import (
	"fmt"

	"powercontainers/internal/align"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// Approach selects the power attribution scheme, matching the three
// approaches Figure 8 compares.
type Approach int

const (
	// ApproachCoreOnly is Eq. 1: core-level events only (Approach #1).
	ApproachCoreOnly Approach = iota
	// ApproachChipShare is Eq. 2: plus attributed shared chip
	// maintenance power (Approach #2).
	ApproachChipShare
	// ApproachRecalibrated is Eq. 2 plus measurement-aligned online
	// recalibration (Approach #3); enable it with EnableRecalibration.
	ApproachRecalibrated
)

func (a Approach) String() string {
	switch a {
	case ApproachCoreOnly:
		return "core-only"
	case ApproachChipShare:
		return "chip-share"
	case ApproachRecalibrated:
		return "recalibrated"
	}
	return fmt.Sprintf("Approach(%d)", int(a))
}

// DefaultSampleInterval is the periodic counter sampling cadence: the paper
// uses roughly one maintenance operation per millisecond of non-halt
// execution as "sufficiently fine-grained for many accounting and control
// purposes" (§3.5).
const DefaultSampleInterval = sim.Millisecond

// DefaultMaintenanceEvents is the measured per-operation observer effect of
// one container maintenance operation (§3.5): 2948 cycles, 1656
// instructions, 16 floating point operations, 3 last-level cache
// references, and no measurable memory transactions.
var DefaultMaintenanceEvents = cpu.Counters{
	Cycles:       2948,
	Instructions: 1656,
	Float:        16,
	Cache:        3,
	Mem:          0,
}

// Config tunes the facility.
type Config struct {
	// Approach selects the attribution scheme (default chip-share).
	Approach Approach
	// SampleInterval is the non-halt-cycle overflow interrupt cadence
	// (default DefaultSampleInterval).
	SampleInterval sim.Time
	// CompensateObserver subtracts maintenance-operation event counts
	// from each sampling period (default on; DisableObserverComp turns
	// it off for the ablation).
	DisableObserverComp bool
	// MaintenanceEvents overrides the per-operation observer cost.
	MaintenanceEvents *cpu.Counters
	// UseOracleChipShare replaces the paper's synchronization-free Eq. 3
	// estimate with an oracle that knows exactly which sibling cores are
	// busy — the ablation baseline for the coordination-free design.
	UseOracleChipShare bool
	// DisableCounterRepair turns off the counter-fault degradation
	// responses (wraparound unwrap and lost-interrupt extrapolation) for
	// the ablation; corrupted counter deltas then flow through unrepaired.
	DisableCounterRepair bool
}

// AuditHook observes attribution and container lifecycle events for
// runtime invariant checking (internal/audit). Callbacks run synchronously
// inside the facility's monitor paths; a nil hook — the default — costs
// only a nil check.
type AuditHook interface {
	// OnPeriod fires after one sampling period [start, end) on a core is
	// attributed to container c while a task named task was bound to it.
	// energyJ is the period's modeled CPU energy, chipEnergyJ the chip-
	// maintenance portion of it, and chipShare the Eq. 3 estimate used
	// (0 under the core-only approach or an idle period).
	OnPeriod(c *Container, task string, start, end sim.Time, energyJ, chipEnergyJ, chipShare float64)
	// OnDevicePeriod fires when device energy over [start, end) is
	// attributed to container c.
	OnDevicePeriod(c *Container, start, end sim.Time, energyJ float64)
	// OnRetain and OnRelease fire after container c gains or drops a
	// task reference.
	OnRetain(c *Container)
	OnRelease(c *Container)
	// OnCounterFix fires when the facility repairs a corrupted counter
	// delta: kind is "unwrap" (a wrapped-register delta was shifted back
	// up by the modulus) or "extrapolate" (a period too long to unwrap
	// unambiguously — lost overflow interrupts — was reconstructed from
	// the previous period's rates).
	OnCounterFix(coreID int, kind string, t sim.Time)
	// OnBudgetThrottle fires when tenant budget enforcement forces a
	// request's duty level below what fair per-request conditioning chose:
	// container c of tenant was assigned level lvl at time t.
	OnBudgetThrottle(c *Container, tenant string, lvl int, t sim.Time)
}

// coreState is the facility's per-core sampling baseline.
type coreState struct {
	valid    bool
	last     cpu.Counters
	lastTime sim.Time
	maintOps int
	// lastM remembers the previous period's (observer-compensated,
	// capped) metrics so a period whose counters are unrecoverable —
	// lost overflow interrupts under a wrapping register — can be
	// reconstructed by capped extrapolation.
	lastM      model.Metrics
	lastMValid bool
}

// Facility is the power-container facility attached to one kernel.
type Facility struct {
	K *kernel.Kernel
	// Coeff is the current model; recalibration replaces it online.
	Coeff model.Coefficients
	// Background absorbs activity with no request binding.
	Background *Container
	// Audit observes attribution and lifecycle events; nil disables.
	Audit AuditHook

	cfg        Config
	maint      cpu.Counters
	perCore    []coreState
	metrics    *model.MetricSeries
	containers []*Container
	nextID     int

	cond    *Conditioner
	recal   *align.Recalibrator
	anomaly *AnomalyDetector
	hier    *Hierarchy

	// SampleCount counts container maintenance operations performed.
	SampleCount uint64
}

// Attach creates a facility, installs it as the kernel's monitor, and
// programs every core's overflow interrupt threshold.
func Attach(k *kernel.Kernel, coeff model.Coefficients, cfg Config) *Facility {
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = DefaultSampleInterval
	}
	f := &Facility{
		K:       k,
		Coeff:   coeff,
		cfg:     cfg,
		maint:   DefaultMaintenanceEvents,
		perCore: make([]coreState, len(k.Cores)),
		metrics: model.NewMetricSeries(power.RecorderInterval),
	}
	if cfg.MaintenanceEvents != nil {
		f.maint = *cfg.MaintenanceEvents
	}
	f.Background = f.newContainer("background", KindBackground)
	f.Background.retain() // immortal
	k.Monitor = f
	intervalSec := float64(cfg.SampleInterval) / float64(sim.Second)
	for _, c := range k.Cores {
		c.SetOverflowThreshold(c.FreqHz * intervalSec)
	}
	return f
}

// Metrics exposes the system-wide metric series (recalibration input and
// the modeled power trace source).
func (f *Facility) Metrics() *model.MetricSeries { return f.metrics }

// Containers returns every container ever created, including Background.
func (f *Facility) Containers() []*Container {
	return append([]*Container(nil), f.containers...)
}

// NumContainers returns how many containers have ever been created. With
// ContainerAt it lets an incremental consumer (the streaming engine) scan
// only containers born since its last visit instead of copying the whole
// ever-growing list every period.
func (f *Facility) NumContainers() int { return len(f.containers) }

// ContainerAt returns the i-th container in creation order.
func (f *Facility) ContainerAt(i int) *Container { return f.containers[i] }

// NewContainer creates a request container; the harness binds it to the
// request's first message via kernel.Inject.
func (f *Facility) NewContainer(label string) *Container {
	return f.newContainer(label, KindRequest)
}

// AttachHierarchy installs the tenant→service→request registry. Every
// container subsequently created with NewContainerIn is filed under it and
// charged at both aggregation levels; containers from plain NewContainer
// (and Background) stay flat.
func (f *Facility) AttachHierarchy(h *Hierarchy) {
	if f.hier != nil && f.hier != h {
		panic("core: facility already has a hierarchy attached")
	}
	f.hier = h
}

// Hierarchy returns the attached registry, or nil in flat mode.
func (f *Facility) Hierarchy() *Hierarchy { return f.hier }

// NewContainerIn creates a request container filed under tenant/service,
// registering either on first use. Requires AttachHierarchy.
func (f *Facility) NewContainerIn(tenant, service, label string) *Container {
	if f.hier == nil {
		panic("core: NewContainerIn requires AttachHierarchy")
	}
	c := f.newContainer(label, KindRequest)
	f.hier.Service(tenant, service).adopt(c)
	return c
}

func (f *Facility) newContainer(label string, kind Kind) *Container {
	f.nextID++
	c := &Container{ID: f.nextID, Label: label, Kind: kind, Start: f.K.Now()}
	f.containers = append(f.containers, c)
	return c
}

// containerOf maps a task's binding to its container.
func (f *Facility) containerOf(t *kernel.Task) *Container {
	if t == nil || t.Ctx == nil {
		return f.Background
	}
	if c, ok := t.Ctx.(*Container); ok {
		return c
	}
	return f.Background
}

// ContainerOf exposes the binding lookup for harnesses.
func (f *Facility) ContainerOf(t *kernel.Task) *Container { return f.containerOf(t) }

// TotalAccountedEnergyJ sums attributed energy over every container
// including Background — the aggregate the validation experiment compares
// against measured system energy (§4.2).
func (f *Facility) TotalAccountedEnergyJ() float64 {
	var sum float64
	for _, c := range f.containers {
		sum += c.EnergyJ()
	}
	return sum
}

// resetBaseline starts a fresh sampling period on a core, charging the
// maintenance operation that the (re)entry sample performs.
//
//pclint:hotpath
func (f *Facility) resetBaseline(c *cpu.Core) {
	st := &f.perCore[c.ID]
	st.last = f.K.ReadCounters(c.ID) // read before charging: the op lands in the new period
	st.lastTime = f.K.Now()
	st.valid = true
	f.K.ChargeMaintenance(c.ID, f.maint)
	f.SampleCount++
	st.maintOps = 1
}

// samplePeriod closes the current sampling period on core c, attributing
// its events and modeled energy to the container bound to task t. It is
// the context-switch sampling sweep: one counter read, one model
// evaluation and one container charge per period, with every per-period
// allocation waived explicitly below so hotalloc flags anything new.
//
//pclint:hotpath
func (f *Facility) samplePeriod(c *cpu.Core, t *kernel.Task) {
	st := &f.perCore[c.ID]
	now := f.K.Now()
	if !st.valid {
		f.resetBaseline(c)
		return
	}
	cur := f.K.ReadCounters(c.ID)
	wall := now - st.lastTime
	if wall > 0 {
		delta := cur.Sub(st.last)
		elapsedCycles := float64(wall) / float64(sim.Second) * c.FreqHz
		fixKind := ""
		if w := f.K.CounterWrapModulus(); w > 0 && !f.cfg.DisableCounterRepair {
			// A wrapped register makes cur < last look like a negative
			// delta: shift back up by the modulus (a single missed wrap).
			if delta.Cycles < 0 || delta.Instructions < 0 || delta.Float < 0 ||
				delta.Cache < 0 || delta.Mem < 0 {
				delta = unwrapDelta(delta, w)
				fixKind = "unwrap"
			}
			// A period spanning at least one full modulus (lost overflow
			// interrupts kept the sampler away) cannot be unwrapped
			// unambiguously — a whole-modulus span even yields a plausible
			// non-negative delta that silently lost w counts. Reconstruct
			// it from the previous period's rates, capped at full
			// occupancy.
			if elapsedCycles >= w && st.lastMValid {
				delta = extrapolateDelta(st.lastM, elapsedCycles)
				fixKind = "extrapolate"
			}
		}
		// Extrapolated deltas derive from already-compensated metrics;
		// subtracting maintenance again would double-count it.
		if fixKind != "extrapolate" && !f.cfg.DisableObserverComp && st.maintOps > 0 {
			delta = delta.Sub(f.maint.Scale(float64(st.maintOps))).ClampNonNegative()
		}
		var m model.Metrics
		if elapsedCycles > 0 {
			m = model.Metrics{
				Core:  delta.Cycles / elapsedCycles,
				Ins:   delta.Instructions / elapsedCycles,
				Float: delta.Float / elapsedCycles,
				Cache: delta.Cache / elapsedCycles,
				Mem:   delta.Mem / elapsedCycles,
			}
		}
		if m.Core > 1 {
			m.Core = 1
		}
		if f.cfg.Approach != ApproachCoreOnly {
			if f.cfg.UseOracleChipShare {
				m.Chip = model.OracleChipShare(f.K.Spec, c.ID, m.Core, f.K)
			} else {
				m.Chip = model.ChipShare(f.K.Spec, f.K.Cores, c.ID, m.Core, f.K)
			}
		}
		c.PublishSample(now, m.Core)
		p := f.Coeff.EstimateCPU(m)
		if p < 0 {
			p = 0
		}
		chipP := f.Coeff.Chip * m.Chip
		if chipP < 0 || chipP > p {
			chipP = 0
		}
		seconds := float64(wall) / float64(sim.Second)
		cont := f.containerOf(t)
		name := "?"
		if t != nil {
			name = t.Name
		}
		cont.addPeriod(name, now, wall, delta, p*seconds, chipP*seconds, p, c.DutyFraction()) //pclint:allow hotalloc per-period container history growth, bounded by sample cadence not event count
		if cont.svc != nil {
			cont.svc.charge(wall, p*seconds, chipP*seconds)
		}
		if f.Audit != nil {
			f.Audit.OnPeriod(cont, name, st.lastTime, now, p*seconds, chipP*seconds, m.Chip)
		}
		f.metrics.AddSpread(st.lastTime, now, m) //pclint:allow hotalloc 1ms-bucket metric series growth, bounded by elapsed sim time
		f.hookAnomaly(c, t, p-chipP)             //pclint:allow hotalloc anomaly detector window growth, bounded by sample cadence
		if fixKind != "" && f.Audit != nil {
			f.Audit.OnCounterFix(c.ID, fixKind, now)
		}
		st.lastM = m
		st.lastMValid = true
	}
	// The maintenance operation this sample performs opens the next
	// period; its events (injected after the counter read above) belong
	// to that period and are compensated there.
	st.last = cur
	st.lastTime = now
	f.K.ChargeMaintenance(c.ID, f.maint)
	f.SampleCount++
	st.maintOps = 1
}

// unwrapDelta repairs a counter delta whose minuend wrapped once: negative
// components gain the modulus back.
func unwrapDelta(d cpu.Counters, w float64) cpu.Counters {
	return cpu.Counters{
		Cycles:       unwrapOne(d.Cycles, w),
		Instructions: unwrapOne(d.Instructions, w),
		Float:        unwrapOne(d.Float, w),
		Cache:        unwrapOne(d.Cache, w),
		Mem:          unwrapOne(d.Mem, w),
	}
}

func unwrapOne(v, w float64) float64 {
	if v < 0 {
		return v + w
	}
	return v
}

// extrapolateDelta reconstructs an unrecoverable period's counter delta
// from the previous period's per-cycle rates, capped at full occupancy
// (Core ≤ 1): the best available estimate when lost overflow interrupts
// let the register wrap an unknown number of times.
func extrapolateDelta(m model.Metrics, elapsedCycles float64) cpu.Counters {
	core := m.Core
	if core > 1 {
		core = 1
	}
	if core < 0 {
		core = 0
	}
	return cpu.Counters{
		Cycles:       core * elapsedCycles,
		Instructions: m.Ins * elapsedCycles,
		Float:        m.Float * elapsedCycles,
		Cache:        m.Cache * elapsedCycles,
		Mem:          m.Mem * elapsedCycles,
	}
}

// SampleNow performs one container maintenance operation on a core
// immediately — reading the hardware counters, computing modeled power and
// updating the bound container's statistics — outside the periodic
// schedule. Management policies can use it for on-demand readings; the
// §3.5 overhead benchmarks measure its cost.
func (f *Facility) SampleNow(coreID int) {
	c := f.K.Cores[coreID]
	f.samplePeriod(c, f.K.RunningTask(coreID))
}

// RewindBaseline moves a core's sampling-period start back by d without
// touching the virtual clock. It exists so overhead benchmarks can measure
// the full maintenance-operation path (counter read, metric computation,
// model evaluation, container update) in a tight loop: pairing it with a
// direct Core.AdvanceBusy emulates one elapsed sampling period per
// iteration without driving the event loop.
func (f *Facility) RewindBaseline(coreID int, d sim.Time) {
	st := &f.perCore[coreID]
	if st.valid && st.lastTime >= d {
		st.lastTime -= d
	}
}

// ---- kernel.Monitor implementation ----

// OnInterrupt implements kernel.Monitor: periodic counter sampling plus
// conditioner reassessment of the running request.
func (f *Facility) OnInterrupt(c *cpu.Core, t *kernel.Task) {
	f.samplePeriod(c, t)
	if f.cond != nil {
		f.cond.adjust(c, f.containerOf(t))
	}
}

// OnSwitch implements kernel.Monitor: request context switches sample the
// outgoing task's counters and apply the incoming request's duty policy.
//
//pclint:hotpath
func (f *Facility) OnSwitch(c *cpu.Core, prev, next *kernel.Task) {
	if prev != nil {
		f.samplePeriod(c, prev)
	}
	if next != nil {
		if prev == nil {
			f.resetBaseline(c)
		}
		if f.cond != nil {
			f.cond.apply(c, f.containerOf(next))
		}
	} else {
		f.perCore[c.ID].valid = false
	}
}

// OnBind implements kernel.Monitor: a task adopting a new request context
// from a socket segment is a request context switch — pre-switch counters
// attribute to the old binding.
func (f *Facility) OnBind(t *kernel.Task, newCtx kernel.Context) {
	if core := t.Core(); core >= 0 {
		f.samplePeriod(f.K.Cores[core], t)
	}
	old := f.containerOf(t)
	f.releaseRef(old)
	if nc, ok := newCtx.(*Container); ok && nc != nil {
		f.retainRef(nc)
		nc.addTrace(f.K.Now(), TraceBind, t.Name, fmt.Sprintf("from %s", old.Label))
		// Re-apply conditioning for the new binding if running.
		if f.cond != nil {
			if core := t.Core(); core >= 0 {
				f.cond.apply(f.K.Cores[core], nc)
			}
		}
	}
}

// OnFork implements kernel.Monitor: the child inherits the parent's
// binding; the container gains a task reference.
func (f *Facility) OnFork(parent, child *kernel.Task) {
	cont := f.containerOf(child)
	cont.addTrace(f.K.Now(), TraceFork, parent.Name, "forks "+child.Name)
}

// OnExit implements kernel.Monitor: drop the exiting task's reference.
func (f *Facility) OnExit(t *kernel.Task) {
	cont := f.containerOf(t)
	cont.addTrace(f.K.Now(), TraceExit, t.Name, "")
	f.releaseRef(cont)
}

// OnTaskStart implements kernel.Monitor: account the new task reference.
func (f *Facility) OnTaskStart(t *kernel.Task) {
	f.retainRef(f.containerOf(t))
}

// retainRef and releaseRef route reference-count changes through the audit
// hook so lifecycle legality (§3.5) is checkable at runtime.
func (f *Facility) retainRef(c *Container) {
	c.retain()
	if f.Audit != nil {
		f.Audit.OnRetain(c)
	}
}

func (f *Facility) releaseRef(c *Container) {
	c.release()
	if f.Audit != nil {
		f.Audit.OnRelease(c)
	}
}

// OnIO implements kernel.Monitor: attribute device energy to the
// responsible request and record device utilization in the metric series.
func (f *Facility) OnIO(t *kernel.Task, dev kernel.DeviceKind, bytes int64, busy sim.Time, watts float64) {
	cont := f.containerOf(t)
	joules := watts * float64(busy) / float64(sim.Second)
	cont.DeviceEnergyJ += joules
	if cont.svc != nil {
		cont.svc.chargeDevice(joules)
	}
	cont.addTrace(f.K.Now(), TraceIO, t.Name, fmt.Sprintf("%s %dB", dev, bytes))
	var m model.Metrics
	if dev == kernel.DeviceDisk {
		m.Disk = 1
	} else {
		m.Net = 1
	}
	end := f.K.Now()
	start := end - busy
	if start < 0 {
		start = 0
	}
	if f.Audit != nil {
		f.Audit.OnDevicePeriod(cont, start, end, joules)
	}
	f.metrics.AddSpread(start, end, m)
}

var _ kernel.Monitor = (*Facility)(nil)
