package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleSnapshot() HierarchySnapshot {
	var snap HierarchySnapshot
	snap.Version = SnapshotVersion
	snap.EnsureTenant("acme").Budget = Budget{PowerW: 25, EnergyJ: 100}
	s := snap.EnsureService("acme", "web")
	s.CPUEnergyJ = 1.5
	s.Requests = 7
	snap.EnsureService("mallory", "burn")
	return snap
}

func TestMemoryStateRoundTrip(t *testing.T) {
	st := NewMemoryState()
	if _, ok, err := st.Load(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	want := sampleSnapshot()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's copy must not reach the store (deep copy).
	want.Tenants[0].Services[0].Requests = 999
	got, ok, err := st.Load()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.FindTenant("acme").Services[0].Requests != 7 {
		t.Fatal("store aliased the caller's snapshot")
	}
	// Mutating the loaded copy must not reach the store either.
	got.Tenants[0].Services[0].Requests = 1000
	again, _, _ := st.Load()
	if again.FindTenant("acme").Services[0].Requests != 7 {
		t.Fatal("load aliased the store")
	}
}

func TestJSONStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hierarchy.json")
	st := NewJSONState(path)
	if _, ok, err := st.Load(); err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	want := sampleSnapshot()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Load()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.FindTenant("acme") == nil || got.FindTenant("acme").Budget.PowerW != 25 {
		t.Fatalf("loaded = %+v", got)
	}
	if got.FindTenant("acme").Services[0].CPUEnergyJ != 1.5 {
		t.Fatal("usage not persisted")
	}
	// The write is atomic: no temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".hierarchy-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	// Round-trip through the registry builder.
	if _, err := HierarchyFromSnapshot(got); err != nil {
		t.Fatal(err)
	}
}

func TestJSONStateRejectsCorruptAndWrongVersion(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewJSONState(bad).Load(); err == nil {
		t.Fatal("corrupt store accepted")
	}
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewJSONState(old).Load(); err == nil {
		t.Fatal("wrong version accepted")
	}
	var v0 HierarchySnapshot
	if err := NewJSONState(filepath.Join(dir, "x.json")).Save(v0); err == nil {
		t.Fatal("unversioned snapshot saved")
	}
}
