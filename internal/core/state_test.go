package core

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powercontainers/internal/durable"
)

func sampleSnapshot() HierarchySnapshot {
	var snap HierarchySnapshot
	snap.Version = SnapshotVersion
	snap.EnsureTenant("acme").Budget = Budget{PowerW: 25, EnergyJ: 100}
	s := snap.EnsureService("acme", "web")
	s.CPUEnergyJ = 1.5
	s.Requests = 7
	snap.EnsureService("mallory", "burn")
	return snap
}

func TestMemoryStateRoundTrip(t *testing.T) {
	st := NewMemoryState()
	if _, ok, err := st.Load(); err != nil || ok {
		t.Fatalf("fresh store: ok=%v err=%v", ok, err)
	}
	want := sampleSnapshot()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's copy must not reach the store (deep copy).
	want.Tenants[0].Services[0].Requests = 999
	got, ok, err := st.Load()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.FindTenant("acme").Services[0].Requests != 7 {
		t.Fatal("store aliased the caller's snapshot")
	}
	// Mutating the loaded copy must not reach the store either.
	got.Tenants[0].Services[0].Requests = 1000
	again, _, _ := st.Load()
	if again.FindTenant("acme").Services[0].Requests != 7 {
		t.Fatal("load aliased the store")
	}
}

func TestJSONStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hierarchy.json")
	st := NewJSONState(path)
	if _, ok, err := st.Load(); err != nil || ok {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}
	want := sampleSnapshot()
	if err := st.Save(want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := st.Load()
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if got.FindTenant("acme") == nil || got.FindTenant("acme").Budget.PowerW != 25 {
		t.Fatalf("loaded = %+v", got)
	}
	if got.FindTenant("acme").Services[0].CPUEnergyJ != 1.5 {
		t.Fatal("usage not persisted")
	}
	// The write is atomic: no temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
	// Round-trip through the registry builder.
	if _, err := HierarchyFromSnapshot(got); err != nil {
		t.Fatal(err)
	}
}

func TestJSONStateRejectsCorruptAndWrongVersion(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewJSONState(bad).Load(); err == nil {
		t.Fatal("corrupt store accepted")
	}
	old := filepath.Join(dir, "old.json")
	if err := os.WriteFile(old, []byte(`{"version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewJSONState(old).Load(); err == nil {
		t.Fatal("wrong version accepted")
	}
	var v0 HierarchySnapshot
	if err := NewJSONState(filepath.Join(dir, "x.json")).Save(v0); err == nil {
		t.Fatal("unversioned snapshot saved")
	}
}

// TestJSONStateRejectsBitFlip is the checksum half of corruption
// detection: a store whose JSON still parses but whose bytes were
// silently flipped must fail with ErrCorruptState — the case the
// existing torn-store ({nope) test cannot catch.
func TestJSONStateRejectsBitFlip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hierarchy.json")
	st := NewJSONState(path)
	if err := st.Save(sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside a stored value, keeping the JSON well-formed.
	idx := strings.Index(string(data), `"requests": 7`)
	if idx < 0 {
		t.Fatalf("fixture drifted: %s", data)
	}
	data[idx+len(`"requests": `)] = '8'
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(); !errors.Is(err, ErrCorruptState) {
		t.Fatalf("bit-flipped store: %v, want ErrCorruptState", err)
	}

	// A legacy store with no checksum field still loads.
	legacy := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"version": 1, "tenants": [{"name": "acme"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, ok, err := NewJSONState(legacy).Load()
	if err != nil || !ok || snap.FindTenant("acme") == nil {
		t.Fatalf("legacy store refused: ok=%v err=%v", ok, err)
	}
}

// TestJSONStateSurvivesCrashDuringSave cuts power at every filesystem
// step of a Save over the in-memory backend: whatever the cut, a
// subsequent Load sees either the complete old snapshot or the complete
// new one.
func TestJSONStateSurvivesCrashDuringSave(t *testing.T) {
	for keep := 0; keep <= 64; keep += 16 {
		mem := durable.NewMemFS()
		st := &JSONState{Path: "state/hierarchy.json", FS: mem}
		if err := mem.MkdirAll("state"); err != nil {
			t.Fatal(err)
		}
		old := sampleSnapshot()
		if err := st.Save(old); err != nil {
			t.Fatal(err)
		}
		next := sampleSnapshot()
		next.FindTenant("acme").Services[0].Requests = 99

		// Begin the replacement write by hand, then cut power before the
		// temp is synced: keep bytes of it survive as a torn prefix.
		sum, err := snapshotChecksum(next)
		if err != nil {
			t.Fatal(err)
		}
		next.Checksum = sum
		data, err := json.MarshalIndent(next, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		w, err := mem.Create("state/.hierarchy.json.tmp")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(data); err != nil {
			t.Fatal(err)
		}
		mem.Crash("state/.hierarchy.json.tmp", keep)

		snap, ok, err := st.Load()
		if err != nil || !ok {
			t.Fatalf("keep=%d: old snapshot lost: ok=%v err=%v", keep, ok, err)
		}
		if snap.FindTenant("acme").Services[0].Requests != 7 {
			t.Fatalf("keep=%d: torn save leaked into the store", keep)
		}
	}
}
