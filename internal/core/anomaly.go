package core

import (
	"math"

	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
)

// Anomaly is one detected power anomaly: a request whose modeled power sits
// far outside the running population — a power virus, accidental or
// malicious (§1, §3.4: "we can pinpoint the sources of power spikes and
// anomalies").
type Anomaly struct {
	// T is detection time; Container the offending request.
	T         sim.Time
	Container *Container
	// PowerW is the request power that triggered detection; BaselineW
	// and SigmaW describe the population at that moment.
	PowerW    float64
	BaselineW float64
	SigmaW    float64
}

// AnomalyDetector watches per-request *intrinsic* power online (modeled
// power excluding the chip-maintenance share, which depends on sibling
// activity rather than the request itself) against a streaming baseline of
// the request population, and flags requests whose mean intrinsic power
// exceeds baseline + Threshold·sigma. Each container is flagged at most
// once.
//
// The detector is a consumer of the facility's sampling stream, not part of
// the attribution path: disabling it changes nothing about accounting.
type AnomalyDetector struct {
	// Threshold is the flagging threshold in standard deviations
	// (default 3).
	Threshold float64
	// MinSamples is the population size required before flagging
	// (default 200 sampling periods).
	MinSamples int
	// MinSigmaW floors the deviation estimate so a perfectly homogeneous
	// population doesn't flag trivial fluctuations (default 0.5 W).
	MinSigmaW float64
	// MinExcessFrac additionally requires the flagged power to exceed
	// the baseline by this relative margin (default 0.25): a power virus
	// is an outlier in absolute terms, not a request at the edge of the
	// normal spread.
	MinExcessFrac float64
	// MinCPUTime is the attributed busy time a request needs before it
	// can be flagged (default 3 ms): flagging on a request's *mean*
	// power over at least a few sampling periods suppresses chip-share
	// transients, e.g. a lone request momentarily carrying the whole
	// maintenance power.
	MinCPUTime sim.Time

	// OnAnomaly, when set, fires once per flagged container.
	OnAnomaly func(Anomaly)

	f *Facility

	n        int
	mean, m2 float64
	flagged  map[int]bool
	log      []Anomaly
}

// EnableAnomalyDetection attaches a detector to the facility's sampling
// stream and returns it.
func (f *Facility) EnableAnomalyDetection() *AnomalyDetector {
	d := &AnomalyDetector{
		Threshold:     3,
		MinSamples:    200,
		MinSigmaW:     0.5,
		MinExcessFrac: 0.25,
		MinCPUTime:    3 * sim.Millisecond,
		f:             f,
		flagged:       map[int]bool{},
	}
	f.anomaly = d
	return d
}

// Anomalies returns the flagged anomalies in detection order.
func (d *AnomalyDetector) Anomalies() []Anomaly {
	return append([]Anomaly(nil), d.log...)
}

// Baseline returns the current population mean and standard deviation.
func (d *AnomalyDetector) Baseline() (mean, sigma float64) {
	if d.n < 2 {
		return d.mean, 0
	}
	return d.mean, math.Sqrt(d.m2 / float64(d.n-1))
}

// observe feeds one sampling period of a request container.
func (d *AnomalyDetector) observe(now sim.Time, cont *Container, powerW float64) {
	if cont.Kind != KindRequest {
		return
	}
	d.n++
	delta := powerW - d.mean
	//pclint:allow floatsafe d.n was incremented above, so the denominator is at least 1
	d.mean += delta / float64(d.n)
	d.m2 += delta * (powerW - d.mean)

	if d.n < d.MinSamples || d.flagged[cont.ID] || cont.CPUTime < d.MinCPUTime {
		return
	}
	_, sigma := d.Baseline()
	if sigma < d.MinSigmaW {
		sigma = d.MinSigmaW
	}
	// Judge the request on its mean intrinsic power over its whole
	// execution so far, not the instantaneous period.
	meanP := cont.MeanIntrinsicPowerW()
	floor := d.mean * (1 + d.MinExcessFrac)
	if meanP > d.mean+d.Threshold*sigma && meanP > floor {
		d.flagged[cont.ID] = true
		a := Anomaly{T: now, Container: cont, PowerW: meanP, BaselineW: d.mean, SigmaW: sigma}
		d.log = append(d.log, a)
		if d.OnAnomaly != nil {
			d.OnAnomaly(a)
		}
	}
}

// hookAnomaly is called from the facility's sampling path.
func (f *Facility) hookAnomaly(c *cpu.Core, t *kernel.Task, powerW float64) {
	if f.anomaly == nil || t == nil {
		return
	}
	f.anomaly.observe(f.K.Now(), f.containerOf(t), powerW)
}
