package core

import (
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
)

// hotAct draws ~19 W on the test profile; coolAct ~10 W.
var (
	hotAct  = cpu.Activity{IPC: 1.5, LLCPC: 0.02, MemPC: 0.03}
	coolAct = cpu.Activity{IPC: 1}
)

// spin returns an endless constant-activity program: the steady-state
// workload the enforcement and regression tests observe.
func spin(act cpu.Activity) kernel.Program {
	return kernel.FuncProgram(func(k *kernel.Kernel, t *kernel.Task) kernel.Op {
		return kernel.OpCompute{BaseCycles: 5e6, Act: act}
	})
}

func TestTenantPowerBudgetThrottlesWorstFirst(t *testing.T) {
	k, f := newRig(t, quadSpec, Config{Approach: ApproachChipShare})
	h := NewHierarchy()
	f.AttachHierarchy(h)
	h.Tenant("mallory").Budget = Budget{PowerW: 24}

	// mallory runs a ~20 W virus and a ~11.5 W worker (chip share
	// included): the sum ≈ 31.5 W exceeds the 24 W budget, and at the
	// enforcement equilibrium (virus near duty 5/8 ≈ 12.8 W) the virus is
	// still the tenant's worst request, so worst-first must throttle only
	// it. acme's request and the flat request see nothing at all.
	virus := f.NewContainerIn("mallory", "burn", "virus")
	worker := f.NewContainerIn("mallory", "burn", "worker")
	victim := f.NewContainerIn("acme", "web", "victim")
	flat := f.NewContainer("flat")

	k.Spawn("v", kernel.Script(kernel.OpCompute{BaseCycles: 400e6, Act: hotAct}), virus)
	k.Spawn("m", kernel.Script(kernel.OpCompute{BaseCycles: 400e6, Act: coolAct}), worker)
	k.Spawn("a", kernel.Script(kernel.OpCompute{BaseCycles: 400e6, Act: coolAct}), victim)
	k.Spawn("f", kernel.Script(kernel.OpCompute{BaseCycles: 400e6, Act: coolAct}), flat)
	cond := f.EnableConditioning(1000) // fair conditioning never binds
	k.Eng.Run()

	if duty := virus.MeanDutyFraction(); duty > 0.85 {
		t.Fatalf("virus duty %.2f, expected budget throttling", duty)
	}
	if duty := worker.MeanDutyFraction(); duty < 0.99 {
		t.Fatalf("worst-first violated: mallory's cool worker throttled to %.2f", duty)
	}
	if duty := victim.MeanDutyFraction(); duty < 0.99 {
		t.Fatalf("victim tenant throttled to %.2f", duty)
	}
	if duty := flat.MeanDutyFraction(); duty < 0.99 {
		t.Fatalf("flat request throttled to %.2f", duty)
	}
	if cond.BudgetThrottles == 0 || h.Tenant("mallory").BudgetThrottles() == 0 {
		t.Fatal("no budget throttles recorded")
	}
	if h.Tenant("acme").BudgetThrottles() != 0 {
		t.Fatal("budget throttles charged to the wrong tenant")
	}
}

func TestTenantEnergyBudgetFloorsTenant(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{Approach: ApproachChipShare})
	h := NewHierarchy()
	f.AttachHierarchy(h)
	h.Tenant("mallory").Budget = Budget{EnergyJ: 0.05}

	hog := f.NewContainerIn("mallory", "burn", "hog")
	k.Spawn("h", kernel.Script(kernel.OpCompute{BaseCycles: 400e6, Act: hotAct}), hog)
	f.EnableConditioning(1000)
	k.Eng.Run()

	// The 0.05 J allowance is gone within a few milliseconds of ~19 W
	// draw; the rest of the request runs pinned to the duty floor.
	if duty := hog.MeanDutyFraction(); duty > 0.35 {
		t.Fatalf("exhausted tenant still at duty %.2f", duty)
	}
	if h.Tenant("mallory").BudgetThrottles() == 0 {
		t.Fatal("no budget throttles recorded")
	}
}

func TestBudgetEnforcementInactiveInFlatMode(t *testing.T) {
	// Same workload as TestConditionerThrottlesHighPowerRequest: with no
	// hierarchy configured, only fair conditioning acts and no budget
	// throttles are ever counted.
	k, f := newRig(t, uniSpec, Config{})
	cond := f.EnableConditioning(10)
	hot := f.NewContainer("hot")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 200e6, Act: hotAct}), hot)
	k.Eng.Run()
	if hot.MeanDutyFraction() > 0.85 {
		t.Fatal("fair conditioning stopped working")
	}
	if cond.BudgetThrottles != 0 {
		t.Fatalf("flat mode counted %d budget throttles", cond.BudgetThrottles)
	}
}

func TestDisableConditioningResetsExactlyOnce(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{})
	f.EnableConditioning(10)
	hot := f.NewContainer("hot")
	k.Spawn("w", spin(hotAct), hot)
	k.Eng.RunUntil(200 * sim.Millisecond)
	if hot.dutyLevel == 0 {
		t.Fatal("setup failed: request never throttled")
	}
	f.DisableConditioning()
	if hot.dutyLevel != 0 {
		t.Fatal("container duty level not cleared")
	}
	if k.Cores[0].DutyLevel() != k.Cores[0].DutyMax() {
		t.Fatal("core duty not restored")
	}
	// A second disable without an intervening enable is a no-op — even if
	// someone poked the duty register in between, it is not reset again.
	k.Cores[0].SetDutyLevel(3)
	f.DisableConditioning()
	if k.Cores[0].DutyLevel() != 3 {
		t.Fatal("second disable was not a no-op")
	}
	k.Cores[0].SetDutyLevel(k.Cores[0].DutyMax())
}

// TestReenableAfterDisableReproducesThrottleDecisions is the satellite
// regression test: disabling conditioning must clear per-container duty
// state, so a later re-enable makes exactly the throttle decisions a fresh
// enable would. The workload is a steady-state spin, so the decision
// sequence depends only on the (reset) starting state.
func TestReenableAfterDisableReproducesThrottleDecisions(t *testing.T) {
	const window = sim.Second

	// Reference machine: conditioning enabled once, at t=1s.
	kA, fA := newRig(t, uniSpec, Config{})
	contA := fA.NewContainer("hot")
	kA.Spawn("w", spin(hotAct), contA)
	kA.Eng.RunUntil(1 * sim.Second)
	condA := fA.EnableConditioning(10)
	kA.Eng.RunUntil(1*sim.Second + window)
	decA := condA.ThrottleDecisions
	lvlA := contA.dutyLevel

	// Probed machine: an earlier enable throttles the request, then
	// conditioning is disabled, the workload recovers to steady state, and
	// conditioning is re-enabled for an identical window.
	kB, fB := newRig(t, uniSpec, Config{})
	contB := fB.NewContainer("hot")
	kB.Spawn("w", spin(hotAct), contB)
	kB.Eng.RunUntil(300 * sim.Millisecond)
	fB.EnableConditioning(10)
	kB.Eng.RunUntil(600 * sim.Millisecond)
	if contB.dutyLevel == 0 {
		t.Fatal("setup failed: first enable never throttled")
	}
	fB.DisableConditioning()
	kB.Eng.RunUntil(2 * sim.Second) // recover to full-speed steady state
	condB := fB.EnableConditioning(10)
	kB.Eng.RunUntil(2*sim.Second + window)
	decB := condB.ThrottleDecisions
	lvlB := contB.dutyLevel

	if decB != decA {
		t.Fatalf("re-enable made %d decisions, fresh enable made %d: stale duty state survived disable", decB, decA)
	}
	if lvlB != lvlA {
		t.Fatalf("re-enable settled at duty level %d, fresh enable at %d", lvlB, lvlA)
	}
}
