package core

import (
	"math"
	"strings"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/faults"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// fixHook records counter repairs and recalibration degradation actions; it
// implements both AuditHook and align.AuditSink so the facility's alignAudit
// adapter picks it up.
type fixHook struct {
	fixes     map[string]int
	rejects   int
	fallbacks []string
}

func (h *fixHook) OnPeriod(c *Container, task string, start, end sim.Time, energyJ, chipEnergyJ, chipShare float64) {
}
func (h *fixHook) OnDevicePeriod(c *Container, start, end sim.Time, energyJ float64) {}
func (h *fixHook) OnRetain(c *Container)                                             {}
func (h *fixHook) OnRelease(c *Container)                                            {}
func (h *fixHook) OnCounterFix(coreID int, kind string, t sim.Time)                  { h.fixes[kind]++ }
func (h *fixHook) OnBudgetThrottle(c *Container, tenant string, lvl int, t sim.Time) {}
func (h *fixHook) OnRecalReject(now sim.Time, deviationW, thresholdW float64)        { h.rejects++ }
func (h *fixHook) OnRecalFallback(now sim.Time, reason string) {
	h.fallbacks = append(h.fallbacks, reason)
}

// runCounterFaults runs a fixed single-core workload under the given counter
// faults and returns the attributed request energy plus the repair log.
func runCounterFaults(t *testing.T, counter *faults.CounterFaults, cfg Config) (float64, *fixHook) {
	t.Helper()
	k, f := newRig(t, uniSpec, cfg)
	h := &fixHook{fixes: map[string]int{}}
	f.Audit = h
	if counter != nil {
		p := &faults.Plan{Seed: 9, Counter: counter}
		k.Faults = p.KernelSurface()
	}
	cont := f.NewContainer("req")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 100e6, Act: cpu.Activity{IPC: 1}}), cont)
	k.Eng.Run()
	return cont.CPUEnergyJ, h
}

// TestCounterUnwrapRepairsWrappedRegisters: under a 5e6-cycle register
// modulus every fifth sampling period sees a wrapped (negative) delta; the
// unwrap repair must reconstruct the true delta exactly, leaving attributed
// energy identical to the fault-free run.
func TestCounterUnwrapRepairsWrappedRegisters(t *testing.T) {
	clean, h0 := runCounterFaults(t, nil, Config{Approach: ApproachChipShare})
	if len(h0.fixes) != 0 {
		t.Fatalf("fault-free run reported repairs: %v", h0.fixes)
	}
	repaired, h := runCounterFaults(t, &faults.CounterFaults{WrapEvery: 5e6},
		Config{Approach: ApproachChipShare})
	if h.fixes["unwrap"] == 0 {
		t.Fatal("no unwrap repairs reported under a wrapping register")
	}
	if math.Abs(repaired-clean)/clean > 1e-9 {
		t.Fatalf("unwrap-repaired energy %.9f J != clean %.9f J", repaired, clean)
	}

	// Ablation: with the repair disabled the same faults corrupt the
	// attribution visibly (negative deltas clamp to zero → undercount).
	broken, hb := runCounterFaults(t, &faults.CounterFaults{WrapEvery: 5e6},
		Config{Approach: ApproachChipShare, DisableCounterRepair: true})
	if len(hb.fixes) != 0 {
		t.Fatalf("disabled repair still reported fixes: %v", hb.fixes)
	}
	if err := math.Abs(broken-clean) / clean; err < 0.05 {
		t.Fatalf("unrepaired wrap error %.1f%% too small — fault injection lost its teeth", 100*err)
	}
}

// TestLostInterruptExtrapolation: lost overflow interrupts stretch sampling
// periods past the register modulus, where unwrapping is ambiguous; the
// capped extrapolation from the previous period's rates must keep attributed
// energy close to the fault-free run.
func TestLostInterruptExtrapolation(t *testing.T) {
	clean, _ := runCounterFaults(t, nil, Config{Approach: ApproachChipShare})
	repaired, h := runCounterFaults(t,
		&faults.CounterFaults{WrapEvery: 2e6, LostInterruptP: 0.6},
		Config{Approach: ApproachChipShare})
	if h.fixes["extrapolate"] == 0 {
		t.Fatalf("no extrapolation repairs under 60%% lost interrupts (fixes: %v)", h.fixes)
	}
	if err := math.Abs(repaired-clean) / clean; err > 0.05 {
		t.Fatalf("extrapolated energy %.4f J vs clean %.4f J (%.1f%% error)",
			repaired, clean, 100*err)
	}
}

// failoverOffline builds a small offline calibration block consistent with
// the rig's true coefficients on both meter scopes.
func failoverOffline() []model.CalSample {
	var out []model.CalSample
	for i := 0; i < 4; i++ {
		m := model.Metrics{Core: float64(i+1) / 4, Ins: float64(i) / 4}
		out = append(out, model.CalSample{
			M:              m,
			PkgActiveW:     trueCoeff.Core*m.Core + trueCoeff.Ins*m.Ins,
			MachineActiveW: trueCoeff.Core*m.Core + trueCoeff.Ins*m.Ins,
		})
	}
	return out
}

// TestRecalibrationFailoverToFallbackMeter: when the primary chip meter dies
// mid-run (injected meter death), the watchdog must detect the stalled
// delivery stream, audit the failover, and swap in a recalibrator on the
// wall meter that then receives samples.
func TestRecalibrationFailoverToFallbackMeter(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{Approach: ApproachChipShare})
	h := &fixHook{fixes: map[string]int{}}
	f.Audit = h
	chip := power.NewChipMeter(k.Rec, 11)
	wall := power.NewWattsupMeter(k.Rec, 12)
	plan := &faults.Plan{Seed: 3, Meter: &faults.MeterFaults{DeathAt: 500 * sim.Millisecond}}
	r := f.EnableRecalibrationFailover(FailoverConfig{
		Primary:       plan.WrapMeter(chip),
		PrimaryScope:  model.ScopePackage,
		Fallback:      wall,
		FallbackScope: model.ScopeMachine,
		Offline:       failoverOffline(),
		Period:        50 * sim.Millisecond,
		DeadAfter:     200 * sim.Millisecond,
	})
	cont := f.NewContainer("req")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 3e9, Act: cpu.Activity{IPC: 1}}), cont)
	k.Eng.RunUntil(3 * sim.Second)

	if d := r.Delivered(); d == 0 {
		t.Fatal("primary recalibrator never received samples before the death")
	}
	active := f.Recalibrator()
	if active == r {
		t.Fatal("watchdog did not fail over from the dead primary meter")
	}
	if active.Meter != wall {
		t.Fatalf("failover selected meter %q, want the wall meter", active.Meter.Name())
	}
	if active.Delivered() == 0 {
		t.Fatal("fallback recalibrator received no samples after failover")
	}
	found := false
	for _, reason := range h.fallbacks {
		if strings.Contains(reason, "failing over") {
			found = true
		}
	}
	if !found {
		t.Fatalf("failover not audited; fallback reasons: %v", h.fallbacks)
	}
}

// TestFailoverStaysOnHealthyPrimary: with no injected faults the watchdog
// must never fire — the primary keeps delivering and remains active.
func TestFailoverStaysOnHealthyPrimary(t *testing.T) {
	k, f := newRig(t, uniSpec, Config{Approach: ApproachChipShare})
	h := &fixHook{fixes: map[string]int{}}
	f.Audit = h
	chip := power.NewChipMeter(k.Rec, 11)
	wall := power.NewWattsupMeter(k.Rec, 12)
	r := f.EnableRecalibrationFailover(FailoverConfig{
		Primary:       chip,
		PrimaryScope:  model.ScopePackage,
		Fallback:      wall,
		FallbackScope: model.ScopeMachine,
		Offline:       failoverOffline(),
		Period:        50 * sim.Millisecond,
		DeadAfter:     200 * sim.Millisecond,
	})
	cont := f.NewContainer("req")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 2e9, Act: cpu.Activity{IPC: 1}}), cont)
	k.Eng.RunUntil(2 * sim.Second)
	if f.Recalibrator() != r {
		t.Fatal("healthy primary was failed over")
	}
	if len(h.fallbacks) != 0 {
		t.Fatalf("unexpected fallback events: %v", h.fallbacks)
	}
}
