// Package audit implements runtime invariant checking for the simulated
// power-container facility. An Auditor attaches to a machine through the
// lightweight hook seams the host packages expose (sim.Probe,
// kernel.AuditSink, power.AuditSink, core.AuditHook, cluster.AuditSink)
// and verifies, while an experiment runs, the properties the paper's
// accountability argument rests on:
//
//  1. Energy conservation (§3.2, Fig. 8): the modeled energy attributed
//     across containers must reconcile with the ground-truth recorder
//     within a stated tolerance, and the attribution stream must equal
//     the container ledger exactly.
//  2. Container lifecycle legality (§3.5): reference counts never go
//     negative, and nothing is attributed to a container after its final
//     release.
//  3. Socket tag conservation (§3.3): every buffered segment carries
//     exactly one context tag and segments deliver in FIFO order.
//  4. Chip-share sanity: Eq. 3 output stays in [0, 1].
//  5. Cluster ledger reconciliation (§3.4): dispatcher-side accounting
//     matches the executing machines' containers.
//  6. Simulation sanity: virtual time is monotone and simultaneous
//     events dispatch in FIFO order.
//
// Hooks are nil-checked at every call site, so a detached auditor costs
// nothing. An Auditor serves exactly one machine (or one dispatcher
// ledger) and must only be used from the simulation goroutine.
package audit

import (
	"fmt"
	"math"

	"powercontainers/internal/cluster"
	"powercontainers/internal/core"
	"powercontainers/internal/kernel"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
)

// Tolerances for the aggregate reconciliation checks. They are stated
// bounds, not guesses: the energy model's worst validation error in the
// paper's Figure 8 runs is ~40% (core-only on memory-bound work), so the
// conservation check flags only grosser divergence; the ledger snapshot
// is taken at request completion, before the final partial sampling
// period lands, so small per-request shortfalls are expected.
const (
	// DefaultEnergyTol is the relative tolerance between total modeled
	// attributed energy and the ground-truth recorder.
	DefaultEnergyTol = 0.5
	// DefaultLedgerTol is the relative shortfall tolerated between the
	// dispatcher ledger total and the executing containers' total.
	DefaultLedgerTol = 0.1
	// maxViolations bounds stored diagnostics; further violations are
	// counted but not recorded in detail.
	maxViolations = 64
)

// Violation is one detected invariant breach.
type Violation struct {
	// Check names the invariant ("energy-conservation", "lifecycle",
	// "socket-tags", "chip-share", "cluster-ledger", "sim-order",
	// "recorder").
	Check string
	// T is the virtual time of detection.
	T sim.Time
	// Detail describes the breach.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%s: %s", v.Check, sim.FormatTime(v.T), v.Detail)
}

// lifeState tracks one container's audited reference-count history.
type lifeState struct {
	retains, releases int
}

// reqState is the audited lifecycle of one cluster request.
type reqState struct {
	opened, finished, dropped bool
	redispatches              int
}

// inflightSeg is one enqueued-but-undelivered socket segment.
type inflightSeg struct {
	ctx   kernel.Context
	bytes int
}

// fifoState tracks one socket buffer (a connection direction or a
// listener) for tag conservation and FIFO delivery.
type fifoState struct {
	inflight      map[uint64]inflightSeg
	lastDelivered uint64
}

// Auditor implements every audit hook interface and accumulates
// violations. Create one per machine with New, wire it with
// AttachMachine, and collect results with FinalizeMachine.
type Auditor struct {
	// Label names the audited machine or subsystem in diagnostics.
	Label string
	// EnergyTol is the energy-conservation relative tolerance.
	EnergyTol float64
	// LedgerTol is the ledger-reconciliation relative tolerance.
	LedgerTol float64

	eng *sim.Engine
	k   *kernel.Kernel
	fac *core.Facility

	violations []Violation
	dropped    int

	// sim sanity
	lastAt  sim.Time
	lastSeq uint64

	// energy conservation
	attributed    *stats.Series // modeled joules per recorder bucket
	recordedTotal float64       // streamed ground-truth joules

	// lifecycle
	life map[*core.Container]*lifeState

	// degradation bookkeeping
	counterFixes   int
	recalRejects   int
	recalFallbacks int
	faultEvents    int

	// hierarchy / budget enforcement bookkeeping
	budgetThrottles int

	// streaming bookkeeping
	checkpoints     int
	checkpointBytes int

	// durability recovery bookkeeping
	walTruncates int
	recoveries   []string

	// cluster ledger per-request lifecycle
	reqs map[uint64]*reqState

	// socket tag conservation
	fifos map[any]*fifoState
}

// New returns an idle auditor with default tolerances.
func New(label string) *Auditor {
	return &Auditor{
		Label:      label,
		EnergyTol:  DefaultEnergyTol,
		LedgerTol:  DefaultLedgerTol,
		attributed: stats.NewSeries(power.RecorderInterval),
		life:       map[*core.Container]*lifeState{},
		fifos:      map[any]*fifoState{},
		reqs:       map[uint64]*reqState{},
	}
}

// AttachMachine wires the auditor into one assembled machine: the
// facility's attribution hooks, the kernel's socket audit sink, the
// recorder's energy sink and — if no probe is installed yet — the shared
// engine's step probe. Attach before the simulation starts.
func (a *Auditor) AttachMachine(f *core.Facility) {
	a.fac = f
	a.k = f.K
	a.eng = f.K.Eng
	f.Audit = a
	f.K.Audit = a
	f.K.Rec.Audit = a
	if a.eng.Probe() == nil {
		a.eng.SetProbe(a)
	}
}

// report records a violation (bounded; excess violations only counted).
func (a *Auditor) report(check string, t sim.Time, format string, args ...any) {
	if len(a.violations) >= maxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{Check: check, T: t, Detail: fmt.Sprintf(format, args...)})
}

// CounterFixes returns how many counter-fault repairs (unwraps and
// extrapolations) the attached facility reported.
func (a *Auditor) CounterFixes() int {
	return a.counterFixes
}

// RecalRejects returns how many aligned pairs robust ingestion rejected.
func (a *Auditor) RecalRejects() int { return a.recalRejects }

// RecalFallbacks returns how many degradation fallbacks (offline-fit
// replacements, meter failovers) were reported.
func (a *Auditor) RecalFallbacks() int { return a.recalFallbacks }

// FaultEvents returns how many injected faults were reported.
func (a *Auditor) FaultEvents() int { return a.faultEvents }

// BudgetThrottles returns how many tenant-budget enforcement decisions the
// conditioner reported.
func (a *Auditor) BudgetThrottles() int { return a.budgetThrottles }

// Violations returns every recorded violation.
func (a *Auditor) Violations() []Violation {
	return append([]Violation(nil), a.violations...)
}

// Err summarizes the violations as one error, or nil if the run is clean.
func (a *Auditor) Err() error {
	if len(a.violations) == 0 {
		return nil
	}
	msg := fmt.Sprintf("audit[%s]: %d violation(s)", a.Label, len(a.violations)+a.dropped)
	for i, v := range a.violations {
		if i >= 5 {
			msg += "\n  ..."
			break
		}
		msg += "\n  " + v.String()
	}
	return fmt.Errorf("%s", msg)
}

// now returns the current virtual time (0 when not attached to a machine,
// e.g. for a dispatcher-only auditor before CheckLedger).
func (a *Auditor) now() sim.Time {
	if a.eng == nil {
		return 0
	}
	return a.eng.Now()
}

// FinalizeMachine runs the end-of-run checks — energy conservation
// against the ground-truth recorder, attribution-stream/container-ledger
// identity, and lifecycle refcount reconciliation — and returns the
// accumulated violations as one error (nil if clean).
func (a *Auditor) FinalizeMachine() error {
	if a.k == nil {
		return a.Err()
	}
	now := a.eng.Now()
	a.k.Rec.FlushUntil(now)
	recorded := seriesTotal(a.k.Rec.PkgActiveSeries()) + seriesTotal(a.k.Rec.DeviceSeries())
	attributed := seriesTotal(a.attributed)
	ledger := a.fac.TotalAccountedEnergyJ()

	// The attribution stream seen through the hooks must equal the
	// container ledger to float round-off: any attribution path that
	// bypasses the hooks (or double-counts) breaks this identity.
	if !closeRel(attributed, ledger, 1e-6) {
		a.report("energy-conservation", now,
			"attribution stream %.6f J != container ledger %.6f J", attributed, ledger)
	}
	// The streamed ground-truth records must equal the recorder series.
	if !closeRel(a.recordedTotal, recorded, 1e-6) {
		a.report("recorder", now,
			"record stream %.6f J != recorder series %.6f J", a.recordedTotal, recorded)
	}
	// Modeled attribution reconciles with measured ground truth within
	// the stated model tolerance.
	if recorded > 1e-6 {
		rel := math.Abs(attributed-recorded) / recorded
		if rel > a.EnergyTol {
			a.report("energy-conservation", now,
				"attributed %.3f J vs ground truth %.3f J (%.1f%% > %.0f%% tolerance)",
				attributed, recorded, 100*rel, 100*a.EnergyTol)
		}
	}
	// Per-bucket sanity: attributed energy is never negative.
	for i, v := range a.attributed.Values() {
		if v < -1e-9 {
			a.report("energy-conservation", sim.Time(i)*power.RecorderInterval,
				"negative attributed energy %.9f J in bucket %d", v, i)
			break
		}
	}
	a.checkHierarchy(now)
	// Lifecycle reconciliation: the audited retain/release history must
	// match each container's final refcount, and released containers
	// must have balanced histories.
	for c, st := range a.life {
		if c.Kind == core.KindBackground {
			continue
		}
		if c.Released && st.retains != st.releases {
			a.report("lifecycle", now,
				"container %d (%s) released with %d retains vs %d releases",
				c.ID, c.Label, st.retains, st.releases)
		}
		if !c.Released && st.retains-st.releases != c.Refs() {
			a.report("lifecycle", now,
				"container %d (%s) holds %d refs but audit saw %d",
				c.ID, c.Label, c.Refs(), st.retains-st.releases)
		}
	}
	return a.Err()
}

// checkHierarchy reconciles the tenant→service→request hierarchy, if one
// is attached: at every node the canonical roll-up (containers summed in
// creation order) must match the incrementally charged accumulator within
// 1e-9, services must sum to their tenant, every tenant-tagged container
// must resolve to a registered service, and budget throttles may only hit
// budgeted tenants.
func (a *Auditor) checkHierarchy(now sim.Time) {
	h := a.fac.Hierarchy()
	if h == nil {
		if a.budgetThrottles > 0 {
			a.report("budget-enforcement", now,
				"%d budget throttles reported without a hierarchy", a.budgetThrottles)
		}
		return
	}
	for i := 0; i < h.NumServices(); i++ {
		s := h.ServiceAt(i)
		roll, acc := s.RollUp(), s.Usage()
		if !closeRel(roll.EnergyJ(), acc.EnergyJ(), 1e-9) {
			a.report("hierarchy", now,
				"service %s: Σ requests %.9f J != incremental %.9f J",
				s.Qualified(), roll.EnergyJ(), acc.EnergyJ())
		}
		if !closeRel(roll.ChipEnergyJ, acc.ChipEnergyJ, 1e-9) {
			a.report("hierarchy", now,
				"service %s: Σ request chip energy %.9f J != incremental %.9f J",
				s.Qualified(), roll.ChipEnergyJ, acc.ChipEnergyJ)
		}
		// Busy time is integer virtual time: the sums must agree exactly.
		if roll.CPUTime != acc.CPUTime || roll.Requests != acc.Requests {
			a.report("hierarchy", now,
				"service %s: roll-up cpu=%s n=%d vs incremental cpu=%s n=%d",
				s.Qualified(), sim.FormatTime(roll.CPUTime), roll.Requests,
				sim.FormatTime(acc.CPUTime), acc.Requests)
		}
	}
	for i := 0; i < h.NumTenants(); i++ {
		t := h.TenantAt(i)
		var svcSum float64
		for _, s := range t.Services() {
			svcSum += s.Usage().EnergyJ()
		}
		acc := t.Usage()
		if !closeRel(svcSum, acc.EnergyJ(), 1e-9) {
			a.report("hierarchy", now,
				"tenant %s: Σ services %.9f J != tenant %.9f J", t.Name, svcSum, acc.EnergyJ())
		}
		if roll := t.RollUp(); !closeRel(roll.EnergyJ(), acc.EnergyJ(), 1e-9) {
			a.report("hierarchy", now,
				"tenant %s: canonical roll-up %.9f J != incremental %.9f J",
				t.Name, roll.EnergyJ(), acc.EnergyJ())
		}
		if t.BudgetThrottles() > 0 && t.Budget.IsZero() {
			a.report("budget-enforcement", now,
				"tenant %s throttled %d times with no budget configured",
				t.Name, t.BudgetThrottles())
		}
	}
	for i := 0; i < a.fac.NumContainers(); i++ {
		c := a.fac.ContainerAt(i)
		if c.Tenant == "" {
			continue
		}
		if _, ok := h.FindService(c.Tenant, c.Service); !ok {
			a.report("hierarchy", now,
				"container %d (%s) tagged %s/%s but no such service is registered",
				c.ID, c.Label, c.Tenant, c.Service)
		}
	}
}

// CheckLedger reconciles a dispatcher's ledger against the executing
// machines' containers (§3.4): per request, the response tag's snapshot
// must never exceed the container's final statistics (it is taken at
// completion, before the final partial sampling period lands), and in
// aggregate the shortfall must stay within LedgerTol.
func (a *Auditor) CheckLedger(l *cluster.Ledger, completed []cluster.CompletedRequest, now sim.Time) {
	// Finished and Dropped are mutually exclusive outcomes: an entry with
	// both was double-accounted somewhere (e.g. a response accepted after
	// the dispatcher gave the request up).
	for _, e := range l.Entries() {
		if e.Finished && e.Dropped {
			a.report("cluster-ledger", now,
				"request %d both finished and dropped", e.Tag.RequestID)
		}
	}
	var ledgerJ, contJ float64
	n := 0
	for _, c := range completed {
		if c.Req == nil || !c.Req.Finished() || c.Req.Cont == nil {
			continue
		}
		e, ok := l.Entry(c.RequestID)
		if !ok || !e.Finished {
			a.report("cluster-ledger", now, "completed request %d missing from ledger", c.RequestID)
			continue
		}
		final := c.Req.Cont.EnergyJ()
		if e.Tag.EnergyJ > final+1e-9 {
			a.report("cluster-ledger", now,
				"request %d ledger energy %.6f J exceeds container final %.6f J",
				c.RequestID, e.Tag.EnergyJ, final)
		}
		if e.Tag.CPUTime > c.Req.Cont.CPUTime {
			a.report("cluster-ledger", now,
				"request %d ledger cpu %s exceeds container final %s",
				c.RequestID, sim.FormatTime(e.Tag.CPUTime), sim.FormatTime(c.Req.Cont.CPUTime))
		}
		if e.Done < e.Arrive {
			a.report("cluster-ledger", now, "request %d done %d before arrive %d",
				c.RequestID, e.Done, e.Arrive)
		}
		ledgerJ += e.Tag.EnergyJ
		contJ += final
		n++
	}
	if n > 0 && contJ > 1e-9 {
		rel := (contJ - ledgerJ) / contJ
		if rel > a.LedgerTol || rel < -1e-9 {
			a.report("cluster-ledger", now,
				"ledger total %.3f J vs container total %.3f J over %d requests (%.1f%% > %.0f%% tolerance)",
				ledgerJ, contJ, n, 100*rel, 100*a.LedgerTol)
		}
	}
}

func seriesTotal(s *stats.Series) float64 {
	var sum float64
	for _, v := range s.Values() {
		sum += v
	}
	return sum
}

// closeRel reports |x−y| ≤ tol·max(|x|,|y|, 1e-9).
func closeRel(x, y, tol float64) bool {
	scale := math.Max(math.Abs(x), math.Abs(y))
	if scale < 1e-9 {
		scale = 1e-9
	}
	return math.Abs(x-y) <= tol*scale
}
