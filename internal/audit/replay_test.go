package audit

import (
	"strings"
	"testing"

	"powercontainers/internal/export"
)

func sampleRecords() []export.RequestRecord {
	return []export.RequestRecord{
		{ID: 1, Type: "rsa/2048", Client: "alice", ArriveMs: 10, ResponseMs: 4.5,
			CPUTimeMs: 3.2, EnergyJ: 0.12, CPUEnergyJ: 0.11, DeviceEnergyJ: 0.01},
		{ID: 2, Type: "vosao/read", Client: "bob", ArriveMs: 12, ResponseMs: 7.25,
			CPUTimeMs: 5.0, EnergyJ: 0.31, CPUEnergyJ: 0.29, DeviceEnergyJ: 0.02},
	}
}

func TestHashAccountingDeterministic(t *testing.T) {
	h1, err := HashAccounting(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashAccounting(sampleRecords())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("same records hashed differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not hex SHA-256", h1)
	}

	changed := sampleRecords()
	changed[1].EnergyJ += 1e-9
	h3, err := HashAccounting(changed)
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("hash did not change when a record's energy changed")
	}
}

func TestReplayCheck(t *testing.T) {
	if err := ReplayCheck(func() ([]export.RequestRecord, error) {
		return sampleRecords(), nil
	}); err != nil {
		t.Fatalf("deterministic producer flagged: %v", err)
	}

	runs := 0
	err := ReplayCheck(func() ([]export.RequestRecord, error) {
		recs := sampleRecords()
		recs[0].EnergyJ += float64(runs) // drifts on the second run
		runs++
		return recs, nil
	})
	if err == nil {
		t.Fatal("divergent producer passed")
	}
	if !strings.Contains(err.Error(), "replay diverged") {
		t.Fatalf("unexpected divergence error: %v", err)
	}
}
