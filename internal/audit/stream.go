package audit

import (
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
)

// The auditor plugs into the streaming engine's audit seam: checkpoint
// events are counted and stream-level invariant breaches (the engine's
// online conservation ledger) land in the same violation log as every
// other audited property.
var _ stream.AuditSink = (*Auditor)(nil)

// OnCheckpoint implements stream.AuditSink. Checkpoints are bookkept, not
// judged: an empty encoding is impossible by construction (the engine
// encodes the checkpoint to measure it), so there is nothing to verify
// beyond counting.
func (a *Auditor) OnCheckpoint(tick int, t sim.Time, encodedBytes int) {
	a.checkpoints++
	a.checkpointBytes = encodedBytes
}

// OnStreamViolation implements stream.AuditSink: the streaming engine's
// own invariant checks report through the standard violation log, so a
// streamed run fails Err() exactly like a batch run would.
func (a *Auditor) OnStreamViolation(check string, t sim.Time, detail string) {
	a.report(check, t, "%s", detail)
}

// The auditor also plugs into the durable store's recovery seam: tail
// repairs and restart decisions are bookkept (they are legitimate
// recovery actions, not violations), so a supervised run's crash history
// is inspectable next to its conservation results.
var _ stream.StoreAuditSink = (*Auditor)(nil)

// OnWALTruncate implements stream.StoreAuditSink: recovery discarded a
// torn WAL tail. Counted, not judged — the torn-tail repair is the
// durability contract working as designed.
func (a *Auditor) OnWALTruncate(path string, off, lost int64, reason string) {
	a.walTruncates++
}

// OnRecovery implements stream.StoreAuditSink: one durable-store open
// completed with the given resume decision.
func (a *Auditor) OnRecovery(mode string, lastSeq int64, cpTick int, detail string) {
	a.recoveries = append(a.recoveries, mode)
}

// WALTruncates returns how many torn-tail repairs recovery performed.
func (a *Auditor) WALTruncates() int { return a.walTruncates }

// Recoveries returns the resume modes of every durable-store open, in
// order ("fresh", "checkpoint", or "scratch").
func (a *Auditor) Recoveries() []string { return append([]string(nil), a.recoveries...) }

// Checkpoints returns how many stream checkpoints the engine reported.
func (a *Auditor) Checkpoints() int { return a.checkpoints }

// LastCheckpointBytes returns the encoded size of the most recent stream
// checkpoint (0 before the first).
func (a *Auditor) LastCheckpointBytes() int { return a.checkpointBytes }
