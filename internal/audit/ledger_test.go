package audit

import (
	"testing"

	"powercontainers/internal/cluster"
	"powercontainers/internal/core"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// closeTag returns the response-path snapshot a machine would report for a
// finished request.
func closeTag(tag cluster.ContainerTag, energyJ float64, cpu sim.Time) cluster.ContainerTag {
	tag.Machine = "node-0"
	tag.EnergyJ = energyJ
	tag.CPUTime = cpu
	return tag
}

func TestLedgerHookDetection(t *testing.T) {
	t.Run("clean open and close", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 100*sim.Millisecond)
		if err := l.Close(closeTag(tag, 0.5, sim.Millisecond), 200*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := a.Err(); err != nil {
			t.Fatalf("clean ledger flow flagged: %v", err)
		}
	})
	t.Run("double close", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 100*sim.Millisecond)
		done := closeTag(tag, 0.5, sim.Millisecond)
		if err := l.Close(done, 200*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(done, 300*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("double close not detected")
		}
	})
	t.Run("open with non-zero usage", func(t *testing.T) {
		a := New("t")
		a.OnLedgerOpen(cluster.ContainerTag{RequestID: 9, EnergyJ: 1}, 0)
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("dirty open not detected")
		}
	})
	t.Run("close with negative usage", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		if err := l.Close(closeTag(tag, -0.5, 0), sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("negative usage close not detected")
		}
	})
	t.Run("close without machine", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		tag.EnergyJ = 0.5
		if err := l.Close(tag, sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("machineless close not detected")
		}
	})
	t.Run("drop after finish", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		if err := l.Close(closeTag(tag, 0.5, sim.Millisecond), sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.Drop(tag.RequestID, 2*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("drop after finish not detected")
		}
	})
	t.Run("double drop", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		if err := l.Drop(tag.RequestID, sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.Drop(tag.RequestID, 2*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("double drop not detected")
		}
	})
	t.Run("close after drop", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		if err := l.Drop(tag.RequestID, sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(closeTag(tag, 0.5, sim.Millisecond), 2*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("close after drop not detected")
		}
	})
	t.Run("clean redispatch then close", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		if err := l.NoteRedispatch(tag.RequestID, sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.NoteRedispatch(tag.RequestID, 2*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(closeTag(tag, 0.5, sim.Millisecond), 3*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := a.Err(); err != nil {
			t.Fatalf("clean redispatch flow flagged: %v", err)
		}
	})
	t.Run("redispatch after completion", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		l.Audit = a
		tag := l.Open("app", 0, 0)
		if err := l.Close(closeTag(tag, 0.5, sim.Millisecond), sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.NoteRedispatch(tag.RequestID, 2*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("redispatch after completion not detected")
		}
	})
	t.Run("redispatch count jump", func(t *testing.T) {
		a := New("t")
		// Fired directly: a well-behaved ledger cannot produce a jump, so
		// exercise the hook with attempts skipping from 0 to 3.
		a.OnLedgerOpen(cluster.ContainerTag{RequestID: 5}, 0)
		a.OnLedgerRedispatch(cluster.ContainerTag{RequestID: 5}, 3, sim.Millisecond)
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("redispatch count jump not detected")
		}
	})
}

// completed builds the dispatcher-side completion record for one request.
func completed(tag cluster.ContainerTag, c *core.Container) cluster.CompletedRequest {
	return cluster.CompletedRequest{
		App:       tag.App,
		RequestID: tag.RequestID,
		Req: &server.Request{
			Cont:   c,
			Arrive: 100 * sim.Millisecond,
			Done:   200 * sim.Millisecond,
		},
	}
}

func TestCheckLedgerReconciliation(t *testing.T) {
	t.Run("small snapshot shortfall tolerated", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		tag := l.Open("app", 0, 100*sim.Millisecond)
		// Snapshot 0.95 J of a 1.0 J container: the final partial sampling
		// period landed after the response tag was taken.
		c := &core.Container{Kind: core.KindRequest, CPUEnergyJ: 1.0, CPUTime: 2 * sim.Millisecond}
		if err := l.Close(closeTag(tag, 0.95, sim.Millisecond), 200*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		a.CheckLedger(l, []cluster.CompletedRequest{completed(tag, c)}, sim.Second)
		if err := a.Err(); err != nil {
			t.Fatalf("tolerable shortfall flagged: %v", err)
		}
	})
	t.Run("ledger exceeds container", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		tag := l.Open("app", 0, 100*sim.Millisecond)
		c := &core.Container{Kind: core.KindRequest, CPUEnergyJ: 0.5, CPUTime: sim.Millisecond}
		if err := l.Close(closeTag(tag, 1.0, 2*sim.Millisecond), 200*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		a.CheckLedger(l, []cluster.CompletedRequest{completed(tag, c)}, sim.Second)
		// Energy and CPU-time snapshots both exceed the container, and the
		// aggregate reconciliation flags the over-attribution as well.
		if countCheck(a, "cluster-ledger") != 3 {
			t.Fatalf("inflated ledger snapshot: %d violations, want 3 (got %v)",
				countCheck(a, "cluster-ledger"), a.Violations())
		}
	})
	t.Run("aggregate shortfall beyond tolerance", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		tag := l.Open("app", 0, 100*sim.Millisecond)
		c := &core.Container{Kind: core.KindRequest, CPUEnergyJ: 1.0, CPUTime: 2 * sim.Millisecond}
		if err := l.Close(closeTag(tag, 0.5, sim.Millisecond), 200*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		a.CheckLedger(l, []cluster.CompletedRequest{completed(tag, c)}, sim.Second)
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("50% ledger shortfall not detected")
		}
	})
	t.Run("completion missing from ledger", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		c := &core.Container{Kind: core.KindRequest, CPUEnergyJ: 1.0}
		orphan := cluster.ContainerTag{RequestID: 404, App: "app"}
		a.CheckLedger(l, []cluster.CompletedRequest{completed(orphan, c)}, sim.Second)
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatal("ledger-less completion not detected")
		}
	})
	t.Run("entry both finished and dropped", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger() // no online audit: end-of-run sweep must catch it
		tag := l.Open("app", 0, 100*sim.Millisecond)
		c := &core.Container{Kind: core.KindRequest, CPUEnergyJ: 1.0, CPUTime: 2 * sim.Millisecond}
		if err := l.Close(closeTag(tag, 0.95, sim.Millisecond), 200*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		if err := l.Drop(tag.RequestID, 300*sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		a.CheckLedger(l, []cluster.CompletedRequest{completed(tag, c)}, sim.Second)
		if countCheck(a, "cluster-ledger") != 1 {
			t.Fatalf("finished+dropped entry not detected: %v", a.Violations())
		}
	})
	t.Run("unfinished requests ignored", func(t *testing.T) {
		a := New("t")
		l := cluster.NewLedger()
		rec := cluster.CompletedRequest{RequestID: 1, Req: &server.Request{Arrive: 100, Done: 0}}
		a.CheckLedger(l, []cluster.CompletedRequest{rec}, sim.Second)
		if err := a.Err(); err != nil {
			t.Fatalf("unfinished request flagged: %v", err)
		}
	})
}
