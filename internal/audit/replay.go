package audit

// Determinism replay: the simulation is a pure function of its seed, so
// running an experiment twice must reproduce the exported per-request
// accounting bit for bit. The content hash covers both canonical export
// encodings (CSV and JSON), catching nondeterminism anywhere between the
// event queue and the serializers.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"powercontainers/internal/export"
)

// HashAccounting returns a hex SHA-256 content hash over the canonical
// CSV and JSON encodings of the given request records.
func HashAccounting(recs []export.RequestRecord) (string, error) {
	var buf bytes.Buffer
	if err := export.WriteCSV(&buf, recs); err != nil {
		return "", fmt.Errorf("audit: hash CSV: %w", err)
	}
	if err := export.WriteJSON(&buf, recs); err != nil {
		return "", fmt.Errorf("audit: hash JSON: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// ReplayCheck runs produce twice and verifies the exported accounting is
// bit-identical. produce must build a fresh simulation from a fixed seed
// on every call.
func ReplayCheck(produce func() ([]export.RequestRecord, error)) error {
	first, err := produce()
	if err != nil {
		return fmt.Errorf("audit: replay run 1: %w", err)
	}
	second, err := produce()
	if err != nil {
		return fmt.Errorf("audit: replay run 2: %w", err)
	}
	h1, err := HashAccounting(first)
	if err != nil {
		return err
	}
	h2, err := HashAccounting(second)
	if err != nil {
		return err
	}
	if h1 != h2 {
		return fmt.Errorf("audit: replay diverged: %d records hashing %s vs %d records hashing %s",
			len(first), h1, len(second), h2)
	}
	return nil
}
