package audit

import (
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/sim"
)

// countCheck returns how many recorded violations belong to one invariant.
func countCheck(a *Auditor, check string) int {
	n := 0
	for _, v := range a.Violations() {
		if v.Check == check {
			n++
		}
	}
	return n
}

func TestCleanAuditorHasNoError(t *testing.T) {
	a := New("clean")
	a.OnStep(0, sim.Millisecond, 1)
	a.OnStep(sim.Millisecond, sim.Millisecond, 2)
	a.OnSockEnqueue("buf", 1, 100, "ctx")
	a.OnSockDeliver("buf", 1, 100, "ctx")
	a.OnRecord("core", 0, sim.Millisecond, 0.5)
	if err := a.Err(); err != nil {
		t.Fatalf("clean auditor reported error: %v", err)
	}
}

func TestSimOrderDetection(t *testing.T) {
	a := New("t")
	a.OnStep(0, 2*sim.Millisecond, 1)
	// Clock at 2 ms, event stamped 1 ms: time went backwards.
	a.OnStep(2*sim.Millisecond, sim.Millisecond, 2)
	if got := countCheck(a, "sim-order"); got != 1 {
		t.Fatalf("backward time: %d sim-order violations, want 1", got)
	}

	b := New("t")
	b.OnStep(0, sim.Millisecond, 5)
	// Same instant, lower sequence number: FIFO order broken.
	b.OnStep(sim.Millisecond, sim.Millisecond, 3)
	if got := countCheck(b, "sim-order"); got != 1 {
		t.Fatalf("seq regression: %d sim-order violations, want 1", got)
	}
}

func TestSocketTagDetection(t *testing.T) {
	buf := "conn-a"

	t.Run("deliver without enqueue", func(t *testing.T) {
		a := New("t")
		a.OnSockDeliver(buf, 7, 10, "ctx")
		if countCheck(a, "socket-tags") != 1 {
			t.Fatal("orphan delivery not detected")
		}
	})
	t.Run("double enqueue", func(t *testing.T) {
		a := New("t")
		a.OnSockEnqueue(buf, 1, 10, "ctx")
		a.OnSockEnqueue(buf, 1, 10, "ctx")
		if countCheck(a, "socket-tags") != 1 {
			t.Fatal("duplicate enqueue not detected")
		}
	})
	t.Run("tag mutated in flight", func(t *testing.T) {
		a := New("t")
		a.OnSockEnqueue(buf, 1, 10, "ctx-a")
		a.OnSockDeliver(buf, 1, 10, "ctx-b")
		if countCheck(a, "socket-tags") != 1 {
			t.Fatal("tag mutation not detected")
		}
	})
	t.Run("size mutated in flight", func(t *testing.T) {
		a := New("t")
		a.OnSockEnqueue(buf, 1, 10, "ctx")
		a.OnSockDeliver(buf, 1, 99, "ctx")
		if countCheck(a, "socket-tags") != 1 {
			t.Fatal("size mutation not detected")
		}
	})
	t.Run("reordered delivery", func(t *testing.T) {
		a := New("t")
		a.OnSockEnqueue(buf, 1, 10, "ctx")
		a.OnSockEnqueue(buf, 2, 10, "ctx")
		a.OnSockDeliver(buf, 2, 10, "ctx")
		a.OnSockDeliver(buf, 1, 10, "ctx")
		if countCheck(a, "socket-tags") != 1 {
			t.Fatal("out-of-order delivery not detected")
		}
	})
	t.Run("independent buffers do not interfere", func(t *testing.T) {
		a := New("t")
		a.OnSockEnqueue("conn-a", 1, 10, "ctx")
		a.OnSockEnqueue("conn-b", 2, 20, "ctx")
		a.OnSockDeliver("conn-b", 2, 20, "ctx")
		a.OnSockDeliver("conn-a", 1, 10, "ctx")
		if err := a.Err(); err != nil {
			t.Fatalf("cross-buffer ordering falsely flagged: %v", err)
		}
	})
}

func TestLifecycleDetection(t *testing.T) {
	t.Run("attribution after final release", func(t *testing.T) {
		a := New("t")
		c := &core.Container{ID: 1, Label: "req-1", Kind: core.KindRequest, Released: true}
		a.OnPeriod(c, "srv", 0, sim.Millisecond, 0.01, 0.001, 0.5)
		if countCheck(a, "lifecycle") != 1 {
			t.Fatal("attribution after release not detected")
		}
	})
	t.Run("device attribution after final release", func(t *testing.T) {
		a := New("t")
		c := &core.Container{ID: 1, Label: "req-1", Kind: core.KindRequest, Released: true}
		a.OnDevicePeriod(c, 0, sim.Millisecond, 0.01)
		if countCheck(a, "lifecycle") != 1 {
			t.Fatal("device attribution after release not detected")
		}
	})
	t.Run("retain after final release", func(t *testing.T) {
		a := New("t")
		c := &core.Container{ID: 2, Label: "req-2", Kind: core.KindRequest, Released: true}
		a.OnRetain(c)
		if countCheck(a, "lifecycle") != 1 {
			t.Fatal("retain after release not detected")
		}
	})
	t.Run("background exempt from release rules", func(t *testing.T) {
		a := New("t")
		c := &core.Container{ID: 0, Label: "background", Kind: core.KindBackground}
		a.OnRetain(c)
		a.OnPeriod(c, "idle", 0, sim.Millisecond, 0.01, 0, 0)
		if err := a.Err(); err != nil {
			t.Fatalf("background container falsely flagged: %v", err)
		}
	})
}

func TestPeriodSanityDetection(t *testing.T) {
	c := &core.Container{ID: 1, Label: "req-1", Kind: core.KindRequest}

	a := New("t")
	a.OnPeriod(c, "srv", 2*sim.Millisecond, sim.Millisecond, 0.01, 0, 0.5)
	if countCheck(a, "energy-conservation") != 1 {
		t.Fatal("reversed period not detected")
	}

	a = New("t")
	// Negative energy also breaks the chip-energy ≤ period-energy bound,
	// so two conservation violations fire.
	a.OnPeriod(c, "srv", 0, sim.Millisecond, -0.01, 0, 0.5)
	if countCheck(a, "energy-conservation") != 2 {
		t.Fatal("negative period energy not detected")
	}

	a = New("t")
	a.OnPeriod(c, "srv", 0, sim.Millisecond, 0.01, 0.02, 0.5)
	if countCheck(a, "energy-conservation") != 1 {
		t.Fatal("chip energy above period energy not detected")
	}

	a = New("t")
	a.OnPeriod(c, "srv", 0, sim.Millisecond, 0.01, 0.001, 1.5)
	if countCheck(a, "chip-share") != 1 {
		t.Fatal("Eq. 3 share above 1 not detected")
	}
}

func TestRecorderDetection(t *testing.T) {
	a := New("t")
	a.OnRecord("core", 0, sim.Millisecond, -0.5)
	if countCheck(a, "recorder") != 1 {
		t.Fatal("negative record not detected")
	}
	if a.recordedTotal != 0 {
		t.Fatal("negative record leaked into the total")
	}

	a = New("t")
	a.OnRecord("device", 2*sim.Millisecond, sim.Millisecond, 0.5)
	if countCheck(a, "recorder") != 1 {
		t.Fatal("reversed record interval not detected")
	}
}

func TestViolationBoundAndErrSummary(t *testing.T) {
	a := New("bound")
	for i := 0; i < maxViolations+10; i++ {
		a.OnRecord("core", 0, sim.Millisecond, -1)
	}
	if got := len(a.Violations()); got != maxViolations {
		t.Fatalf("stored %d violations, want cap %d", got, maxViolations)
	}
	if a.dropped != 10 {
		t.Fatalf("dropped counter %d, want 10", a.dropped)
	}
	err := a.Err()
	if err == nil {
		t.Fatal("Err returned nil with violations present")
	}
	if !strings.Contains(err.Error(), "audit[bound]") {
		t.Fatalf("error missing label: %v", err)
	}
	// The summary includes the dropped count in the total.
	if !strings.Contains(err.Error(), "74 violation(s)") {
		t.Fatalf("error does not count dropped violations: %v", err)
	}
}
