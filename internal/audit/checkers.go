package audit

// This file implements the online (per-event) checkers: the hook methods
// the host packages call while the simulation runs. All of them are cheap
// constant-time updates; the expensive reconciliation happens once in
// FinalizeMachine.

import (
	"powercontainers/internal/align"
	"powercontainers/internal/cluster"
	"powercontainers/internal/core"
	"powercontainers/internal/faults"
	"powercontainers/internal/kernel"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// Compile-time checks that the Auditor satisfies every hook seam.
var (
	_ sim.Probe         = (*Auditor)(nil)
	_ kernel.AuditSink  = (*Auditor)(nil)
	_ power.AuditSink   = (*Auditor)(nil)
	_ core.AuditHook    = (*Auditor)(nil)
	_ cluster.AuditSink = (*Auditor)(nil)
	_ align.AuditSink   = (*Auditor)(nil)
	_ faults.AuditSink  = (*Auditor)(nil)
)

// ---- sim sanity ----

// OnStep implements sim.Probe: virtual time never moves backwards, and
// simultaneous events dispatch in FIFO (sequence) order.
func (a *Auditor) OnStep(now, at sim.Time, seq uint64) {
	if at < now {
		a.report("sim-order", now, "event at %s dispatched after clock reached %s",
			sim.FormatTime(at), sim.FormatTime(now))
	}
	if at == a.lastAt && seq <= a.lastSeq {
		a.report("sim-order", at, "event seq %d dispatched after seq %d at the same instant",
			seq, a.lastSeq)
	}
	a.lastAt, a.lastSeq = at, seq
}

// ---- socket tag conservation (§3.3) ----

func (a *Auditor) fifo(buf any) *fifoState {
	st := a.fifos[buf]
	if st == nil {
		st = &fifoState{inflight: map[uint64]inflightSeg{}}
		a.fifos[buf] = st
	}
	return st
}

// OnSockEnqueue implements kernel.AuditSink: a segment enters a buffer
// carrying exactly one context tag.
func (a *Auditor) OnSockEnqueue(buf any, seq uint64, bytes int, ctx kernel.Context) {
	st := a.fifo(buf)
	if _, dup := st.inflight[seq]; dup {
		a.report("socket-tags", a.now(), "segment %d enqueued twice", seq)
		return
	}
	st.inflight[seq] = inflightSeg{ctx: ctx, bytes: bytes}
}

// OnSockDeliver implements kernel.AuditSink: the delivered segment must
// have been enqueued on the same buffer with the same tag and size, and
// per-buffer delivery must be FIFO.
func (a *Auditor) OnSockDeliver(buf any, seq uint64, bytes int, ctx kernel.Context) {
	st := a.fifo(buf)
	seg, ok := st.inflight[seq]
	if !ok {
		a.report("socket-tags", a.now(), "segment %d delivered without matching enqueue", seq)
		return
	}
	delete(st.inflight, seq)
	if seg.ctx != ctx {
		a.report("socket-tags", a.now(), "segment %d tag changed in flight (%v -> %v)",
			seq, seg.ctx, ctx)
	}
	if seg.bytes != bytes {
		a.report("socket-tags", a.now(), "segment %d size changed in flight (%d -> %d)",
			seq, seg.bytes, bytes)
	}
	if seq <= st.lastDelivered {
		a.report("socket-tags", a.now(), "segment %d delivered after %d on the same buffer",
			seq, st.lastDelivered)
	}
	st.lastDelivered = seq
}

// ---- energy attribution & chip-share sanity (§3.2, Eq. 3) ----

// OnPeriod implements core.AuditHook: accumulate the attributed energy on
// the recorder grid and check period-level invariants.
func (a *Auditor) OnPeriod(c *core.Container, task string, start, end sim.Time, energyJ, chipEnergyJ, chipShare float64) {
	if end < start {
		a.report("energy-conservation", end, "period end %s before start %s (task %s)",
			sim.FormatTime(end), sim.FormatTime(start), task)
		return
	}
	if energyJ < 0 {
		a.report("energy-conservation", end, "negative period energy %.9f J (task %s)", energyJ, task)
	}
	if chipEnergyJ < 0 || chipEnergyJ > energyJ+1e-12 {
		a.report("energy-conservation", end,
			"chip energy %.9f J outside [0, period energy %.9f J] (task %s)",
			chipEnergyJ, energyJ, task)
	}
	if chipShare < 0 || chipShare > 1+1e-12 {
		a.report("chip-share", end, "Eq. 3 share %.9f outside [0, 1] (task %s)", chipShare, task)
	}
	if c.Released && c.Kind == core.KindRequest {
		a.report("lifecycle", end, "attribution to container %d (%s) after final release",
			c.ID, c.Label)
	}
	a.attributed.AddSpread(start, end, energyJ)
}

// OnDevicePeriod implements core.AuditHook.
func (a *Auditor) OnDevicePeriod(c *core.Container, start, end sim.Time, energyJ float64) {
	if energyJ < 0 {
		a.report("energy-conservation", end, "negative device energy %.9f J", energyJ)
	}
	if c.Released && c.Kind == core.KindRequest {
		a.report("lifecycle", end, "device attribution to container %d (%s) after final release",
			c.ID, c.Label)
	}
	a.attributed.AddSpread(start, end, energyJ)
}

// ---- counter repair sanity ----

// OnCounterFix implements core.AuditHook: a counter-fault repair
// (wraparound unwrap or lost-interrupt extrapolation) must name a known
// repair kind. The count is exposed for degradation experiments.
func (a *Auditor) OnCounterFix(coreID int, kind string, t sim.Time) {
	if kind != "unwrap" && kind != "extrapolate" {
		a.report("counter-fix", t, "core %d reported unknown counter repair %q", coreID, kind)
	}
	a.counterFixes++
}

// ---- hierarchical budget enforcement ----

// OnBudgetThrottle implements core.AuditHook: enforcement decisions must
// be legal — the throttled container is filed under the named tenant, that
// tenant is registered in the attached hierarchy and actually carries a
// budget, and the assigned duty level is a real throttle (at least the
// floor, below full speed).
func (a *Auditor) OnBudgetThrottle(c *core.Container, tenant string, lvl int, t sim.Time) {
	if c.Tenant != tenant {
		a.report("budget-enforcement", t, "container %d (%s) of tenant %q throttled as tenant %q",
			c.ID, c.Label, c.Tenant, tenant)
	}
	if lvl < 1 {
		a.report("budget-enforcement", t, "tenant %q assigned illegal duty level %d", tenant, lvl)
	}
	if a.fac != nil {
		h := a.fac.Hierarchy()
		if h == nil {
			a.report("budget-enforcement", t, "budget throttle for tenant %q without a hierarchy", tenant)
		} else if ten, ok := h.FindTenant(tenant); !ok {
			a.report("budget-enforcement", t, "budget throttle for unregistered tenant %q", tenant)
		} else if ten.Budget.IsZero() {
			a.report("budget-enforcement", t, "budget throttle for unbudgeted tenant %q", tenant)
		}
	}
	a.budgetThrottles++
}

// ---- container lifecycle legality (§3.5) ----

// OnRetain implements core.AuditHook: a released request container must
// never gain a reference again.
func (a *Auditor) OnRetain(c *core.Container) {
	st := a.life[c]
	if st == nil {
		st = &lifeState{}
		a.life[c] = st
	}
	// The container's own retain ran first, so a resurrected container
	// is observed here as Released with a positive refcount.
	if c.Released && c.Kind == core.KindRequest {
		a.report("lifecycle", a.now(), "container %d (%s) retained after final release",
			c.ID, c.Label)
	}
	st.retains++
	if c.Refs() < 0 {
		a.report("lifecycle", a.now(), "container %d (%s) refcount %d negative",
			c.ID, c.Label, c.Refs())
	}
}

// OnRelease implements core.AuditHook.
func (a *Auditor) OnRelease(c *core.Container) {
	st := a.life[c]
	if st == nil {
		st = &lifeState{}
		a.life[c] = st
	}
	st.releases++
	if c.Refs() < 0 {
		a.report("lifecycle", a.now(), "container %d (%s) refcount %d negative",
			c.ID, c.Label, c.Refs())
	}
}

// ---- ground-truth recorder stream ----

// OnRecord implements power.AuditSink: ground-truth energy records are
// non-negative and time-ordered; the streamed total is reconciled against
// the recorder series in FinalizeMachine.
func (a *Auditor) OnRecord(kind string, t0, t1 sim.Time, joules float64) {
	if joules < 0 {
		a.report("recorder", t1, "negative %s energy record %.9f J", kind, joules)
		return
	}
	if t1 < t0 {
		a.report("recorder", t1, "%s record interval [%s, %s] reversed",
			kind, sim.FormatTime(t0), sim.FormatTime(t1))
	}
	a.recordedTotal += joules
}

// ---- cluster ledger (§3.4) ----

// reqAudit returns the per-request lifecycle state, creating it on first
// sight so hooks observed out of order still accumulate.
func (a *Auditor) reqAudit(id uint64) *reqState {
	st := a.reqs[id]
	if st == nil {
		st = &reqState{}
		a.reqs[id] = st
	}
	return st
}

// OnLedgerOpen implements cluster.AuditSink.
func (a *Auditor) OnLedgerOpen(tag cluster.ContainerTag, now sim.Time) {
	if tag.EnergyJ != 0 || tag.CPUTime != 0 {
		a.report("cluster-ledger", now, "request %d opened with non-zero usage", tag.RequestID)
	}
	st := a.reqAudit(tag.RequestID)
	if st.opened {
		a.report("cluster-ledger", now, "request %d opened twice", tag.RequestID)
	}
	st.opened = true
}

// OnLedgerClose implements cluster.AuditSink.
func (a *Auditor) OnLedgerClose(tag cluster.ContainerTag, alreadyFinished bool, now sim.Time) {
	if alreadyFinished {
		a.report("cluster-ledger", now, "request %d closed twice", tag.RequestID)
	}
	if tag.EnergyJ < 0 || tag.CPUTime < 0 {
		a.report("cluster-ledger", now, "request %d closed with negative usage", tag.RequestID)
	}
	if tag.Machine == "" {
		a.report("cluster-ledger", now, "request %d closed without executing machine", tag.RequestID)
	}
	st := a.reqAudit(tag.RequestID)
	if st.dropped {
		a.report("cluster-ledger", now, "request %d closed after being dropped", tag.RequestID)
	}
	st.finished = true
}

// OnLedgerDrop implements cluster.AuditSink: a request may be given up on
// at most once, and never after it already finished.
func (a *Auditor) OnLedgerDrop(tag cluster.ContainerTag, alreadyFinished bool, now sim.Time) {
	st := a.reqAudit(tag.RequestID)
	if alreadyFinished || st.finished {
		a.report("cluster-ledger", now, "request %d dropped after finishing", tag.RequestID)
	}
	if st.dropped {
		a.report("cluster-ledger", now, "request %d dropped twice", tag.RequestID)
	}
	st.dropped = true
}

// OnLedgerRedispatch implements cluster.AuditSink: redispatch attempts
// count up one at a time, and a completed or dropped request must never be
// dispatched again (double-dispatch).
func (a *Auditor) OnLedgerRedispatch(tag cluster.ContainerTag, attempts int, now sim.Time) {
	st := a.reqAudit(tag.RequestID)
	if st.finished || st.dropped {
		a.report("cluster-ledger", now, "request %d re-dispatched after completion or drop", tag.RequestID)
	}
	if attempts != st.redispatches+1 {
		a.report("cluster-ledger", now, "request %d redispatch count jumped %d -> %d",
			tag.RequestID, st.redispatches, attempts)
	}
	st.redispatches = attempts
}

// ---- degradation actions (recalibration, fault injection) ----

// OnRecalReject implements align.AuditSink: every rejected pair's deviation
// must genuinely exceed its positive threshold.
func (a *Auditor) OnRecalReject(now sim.Time, deviationW, thresholdW float64) {
	if !(thresholdW > 0) {
		a.report("recalibration", now, "outlier rejected against non-positive threshold %g W", thresholdW)
	} else if dev := deviationW; dev < thresholdW && -dev < thresholdW {
		a.report("recalibration", now, "rejected pair deviation %g W within threshold %g W", dev, thresholdW)
	}
	a.recalRejects++
}

// OnRecalFallback implements align.AuditSink.
func (a *Auditor) OnRecalFallback(now sim.Time, reason string) {
	if reason == "" {
		a.report("recalibration", now, "degradation fallback without a reason")
	}
	a.recalFallbacks++
}

// OnFault implements faults.AuditSink: injected faults are counted so
// experiments can reconcile injected-vs-degraded totals; event shape is
// sanity-checked.
func (a *Auditor) OnFault(e faults.Event) {
	if e.Site == "" || e.Kind == "" {
		a.report("fault-injection", e.T, "fault event missing site or kind: %+v", e)
	}
	a.faultEvents++
}
