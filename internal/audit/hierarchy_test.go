package audit

import (
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

var hierSpec = cpu.MachineSpec{
	Name: "Quad", Chips: 1, CoresPerChip: 4, FreqHz: 1e9, DutyLevels: 8,
}

var hierProfile = power.TrueProfile{
	MachineIdleW: 40, PkgIdleW: 2, ChipMaintW: 6, CoreW: 8, InsW: 2,
	FloatW: 1, CacheW: 100, MemW: 200, DiskW: 1.7, NetW: 5.8,
}

var hierCoeff = model.Coefficients{
	IdleW: 40, Core: 8, Ins: 2, Float: 1, Cache: 100, Mem: 200,
	Chip: 6, Disk: 1.7, Net: 5.8, IncludesChipShare: true,
}

// hierMachine assembles an audited machine with an attached hierarchy and
// one budgeted tenant running a hot request next to a victim tenant.
func hierMachine(t *testing.T) (*kernel.Kernel, *core.Facility, *core.Hierarchy, *Auditor) {
	t.Helper()
	eng := sim.NewEngine()
	k, err := kernel.New("hier", hierSpec, hierProfile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := core.Attach(k, hierCoeff, core.Config{Approach: core.ApproachChipShare})
	a := New("hier")
	a.AttachMachine(f)
	h := core.NewHierarchy()
	f.AttachHierarchy(h)
	return k, f, h, a
}

// TestHierarchyConservationCleanRun drives a mixed multi-tenant workload —
// budget enforcement active, devices in play, a flat container alongside —
// and requires a clean audit: the conservation checker (Σ requests =
// service, Σ services = tenant, within 1e-9) and the budget-enforcement
// invariants must all hold on a healthy machine.
func TestHierarchyConservationCleanRun(t *testing.T) {
	k, f, h, a := hierMachine(t)
	h.Tenant("mallory").Budget = core.Budget{PowerW: 15}

	virus := f.NewContainerIn("mallory", "burn", "virus")
	web := f.NewContainerIn("acme", "web", "w")
	db := f.NewContainerIn("acme", "db", "d")
	flat := f.NewContainer("flat")

	hot := cpu.Activity{IPC: 1.5, LLCPC: 0.02, MemPC: 0.03}
	cool := cpu.Activity{IPC: 1}
	k.Spawn("v", kernel.Script(kernel.OpCompute{BaseCycles: 300e6, Act: hot}), virus)
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 100e6, Act: cool}, kernel.OpDisk{Bytes: 2e6}), web)
	k.Spawn("d", kernel.Script(kernel.OpCompute{BaseCycles: 50e6, Act: cool}), db)
	k.Spawn("f", kernel.Script(kernel.OpCompute{BaseCycles: 50e6, Act: cool}), flat)
	f.EnableConditioning(1000)
	k.Eng.Run()

	if err := a.FinalizeMachine(); err != nil {
		t.Fatalf("clean hierarchical run flagged: %v", err)
	}
	if a.BudgetThrottles() == 0 {
		t.Fatal("budgeted virus produced no enforcement decisions")
	}
	if virus.MeanDutyFraction() > 0.85 {
		t.Fatal("virus not throttled — enforcement inert")
	}
}

// TestHierarchyConservationDetectsDrift corrupts one request's ledger after
// the run (energy added to the container but not the service accumulator)
// and expects the conservation checker to fire.
func TestHierarchyConservationDetectsDrift(t *testing.T) {
	k, f, _, a := hierMachine(t)
	c := f.NewContainerIn("acme", "web", "w")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 50e6, Act: cpu.Activity{IPC: 1}}), c)
	k.Eng.Run()

	c.CPUEnergyJ += 0.5 // bypasses Service.charge: Σ requests ≠ service
	a.FinalizeMachine()
	if countCheck(a, "hierarchy") == 0 {
		t.Fatal("hierarchy drift not detected")
	}
}

func TestBudgetThrottleHookDetection(t *testing.T) {
	t.Run("tenant mismatch", func(t *testing.T) {
		a := New("t")
		c := &core.Container{ID: 1, Label: "r", Tenant: "acme", Service: "web"}
		a.OnBudgetThrottle(c, "mallory", 2, sim.Millisecond)
		if countCheck(a, "budget-enforcement") == 0 {
			t.Fatal("cross-tenant throttle not detected")
		}
	})
	t.Run("illegal level", func(t *testing.T) {
		a := New("t")
		c := &core.Container{ID: 1, Label: "r", Tenant: "acme", Service: "web"}
		a.OnBudgetThrottle(c, "acme", 0, sim.Millisecond)
		if countCheck(a, "budget-enforcement") == 0 {
			t.Fatal("duty level 0 not detected")
		}
	})
	t.Run("unbudgeted tenant", func(t *testing.T) {
		_, f, h, a := hierMachine(t)
		c := f.NewContainerIn("acme", "web", "r")
		_ = h.Tenant("acme") // registered, but no budget
		a.OnBudgetThrottle(c, "acme", 2, sim.Millisecond)
		if countCheck(a, "budget-enforcement") == 0 {
			t.Fatal("unbudgeted throttle not detected")
		}
	})
	t.Run("unregistered tenant", func(t *testing.T) {
		_, f, _, a := hierMachine(t)
		c := f.NewContainer("r")
		c.Tenant, c.Service = "ghost", "svc"
		a.OnBudgetThrottle(c, "ghost", 2, sim.Millisecond)
		if countCheck(a, "budget-enforcement") == 0 {
			t.Fatal("unregistered tenant throttle not detected")
		}
	})
}

// TestUnregisteredContainerTagDetected plants a container whose
// tenant/service tag resolves to nothing in the hierarchy.
func TestUnregisteredContainerTagDetected(t *testing.T) {
	k, f, _, a := hierMachine(t)
	c := f.NewContainer("r")
	c.Tenant, c.Service = "ghost", "svc"
	k.Eng.Run()
	a.FinalizeMachine()
	if countCheck(a, "hierarchy") == 0 {
		t.Fatal("dangling tenant tag not detected")
	}
}

// TestFlatMachineSkipsHierarchyChecks: no hierarchy attached — finalize
// stays clean and cheap.
func TestFlatMachineSkipsHierarchyChecks(t *testing.T) {
	eng := sim.NewEngine()
	k, err := kernel.New("flat", hierSpec, hierProfile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := core.Attach(k, hierCoeff, core.Config{Approach: core.ApproachChipShare})
	a := New("flat")
	a.AttachMachine(f)
	c := f.NewContainer("r")
	k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 50e6, Act: cpu.Activity{IPC: 1}}), c)
	eng.Run()
	if err := a.FinalizeMachine(); err != nil {
		t.Fatalf("flat machine flagged: %v", err)
	}
}
