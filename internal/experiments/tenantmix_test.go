package experiments

import (
	"math"
	"testing"
)

// TestTenantMixIsolationProperties pins the tenantmix acceptance claims:
// the budgeted arm caps the virus tenant's attributed power at its budget
// (±5%) while the victim tenant's latency stays within 1% of its solo run
// and its intrinsic per-request energy within rounding; the unbudgeted
// mix shows the budget genuinely binds; and enforcement decisions land
// only on the budgeted arm.
func TestTenantMixIsolationProperties(t *testing.T) {
	r, err := TenantMixEx(Exec{Jobs: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	solo, ok1 := r.Cell("solo")
	mix, ok2 := r.Cell("mix")
	budgeted, ok3 := r.Cell("budgeted")
	if !ok1 || !ok2 || !ok3 {
		t.Fatalf("missing arms in %+v", r.Cells)
	}
	if solo.VictimRequests == 0 || solo.VictimRequests != budgeted.VictimRequests {
		t.Fatalf("victim completions differ: solo %d, budgeted %d", solo.VictimRequests, budgeted.VictimRequests)
	}

	// The cap: budgeted virus tenant within ±5% of its budget; the
	// unbudgeted mix draws well beyond it, so the budget binds.
	if budgeted.VirusW < 0.95*TenantMixBudgetW || budgeted.VirusW > 1.05*TenantMixBudgetW {
		t.Fatalf("budgeted virus tenant at %.2f W, budget %d W (cap must hold within 5%%)",
			budgeted.VirusW, TenantMixBudgetW)
	}
	if mix.VirusW < 1.2*TenantMixBudgetW {
		t.Fatalf("unbudgeted virus tenant draws only %.2f W — the %d W budget never binds", mix.VirusW, TenantMixBudgetW)
	}

	// Enforcement fires exactly where a budget exists.
	if budgeted.BudgetThrottles == 0 {
		t.Fatal("budgeted arm recorded no enforcement decisions")
	}
	if solo.BudgetThrottles != 0 || mix.BudgetThrottles != 0 {
		t.Fatalf("unbudgeted arms recorded throttles: solo %d, mix %d", solo.BudgetThrottles, mix.BudgetThrottles)
	}

	// Victim isolation: latency within 1% of solo, intrinsic energy
	// within rounding (the Eq. 3 chip share legitimately dilutes, so
	// total energy is allowed to move; intrinsic must not).
	if d := relDiff(budgeted.VictimLatencyMs, solo.VictimLatencyMs); d > 0.01 {
		t.Fatalf("victim latency moved %.2f%% under the budgeted virus (%.3f ms vs solo %.3f ms)",
			100*d, budgeted.VictimLatencyMs, solo.VictimLatencyMs)
	}
	if d := relDiff(budgeted.VictimIntrinsicMJ, solo.VictimIntrinsicMJ); d > 1e-9 {
		t.Fatalf("victim intrinsic energy moved beyond rounding: %.6f mJ vs solo %.6f mJ",
			budgeted.VictimIntrinsicMJ, solo.VictimIntrinsicMJ)
	}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(b))
}
