package experiments

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/runner"
	"powercontainers/internal/workload"
)

// Fig8Cell is one bar of Figure 8.
type Fig8Cell struct {
	Machine  string
	Workload string
	Load     LoadLevel
	Approach core.Approach
	// Error is |aggregate profiled request power − measured active| /
	// measured active.
	Error float64
}

// Fig8Result reproduces Figure 8: the accuracy of the three attribution
// approaches — core-level events only (Eq. 1), plus shared chip power
// attribution (Eq. 2), plus measurement-aligned online recalibration —
// validated by summing all request (and background) energy and comparing
// against measured system active power.
type Fig8Result struct {
	Cells []Fig8Cell
	// WorstByApproach[machine][approach] is the worst-case error.
	WorstByApproach map[string]map[core.Approach]float64
}

// Fig8Options trims the experiment.
type Fig8Options struct {
	Machines  []cpu.MachineSpec
	Workloads []workload.Workload
	// Exec configures parallelism and per-run assembly.
	Exec Exec
}

// Approaches lists the three Figure 8 approaches in order.
func Approaches() []core.Approach {
	return []core.Approach{core.ApproachCoreOnly, core.ApproachChipShare, core.ApproachRecalibrated}
}

// fig8Plan decomposes the validation grid into one job per
// (machine, workload, load, approach) cell. The option sets must already
// be resolved to non-nil.
func fig8Plan(opt Fig8Options, seed uint64) *runner.Plan {
	machines := opt.Machines
	wls := opt.Workloads
	as := opt.Exec.Assembly
	plan := &runner.Plan{}
	for _, spec := range machines {
		for _, wl := range wls {
			for _, load := range []LoadLevel{PeakLoad, HalfLoad} {
				for _, ap := range Approaches() {
					key := fmt.Sprintf("fig8/%s/%s/%s/%s", spec.Name, wl.Name(), load, ap)
					plan.Add(key, func() (any, error) {
						r, err := as.Run(spec, ap, RunSpec{Workload: wl, Load: load}, seed)
						if err != nil {
							return nil, fmt.Errorf("fig8 %s/%s/%s/%s: %w", spec.Name, wl.Name(), load, ap, err)
						}
						return Fig8Cell{
							Machine: spec.Name, Workload: wl.Name(), Load: load,
							Approach: ap, Error: r.ValidationError(),
						}, nil
					})
				}
			}
		}
	}
	return plan
}

// Fig8 runs the full validation grid, fanning the independent cells out
// across opt.Exec.Jobs workers; the reduced result is byte-identical at
// any worker count.
func Fig8(opt Fig8Options, seed uint64) (*Fig8Result, error) {
	if opt.Machines == nil {
		opt.Machines = cpu.Specs()
	}
	if opt.Workloads == nil {
		opt.Workloads = EvalWorkloads()
	}
	cells, err := runner.Collect[Fig8Cell](fig8Plan(opt, seed), opt.Exec.Jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Cells: cells, WorstByApproach: map[string]map[core.Approach]float64{}}
	for _, spec := range opt.Machines {
		res.WorstByApproach[spec.Name] = map[core.Approach]float64{}
	}
	for _, c := range cells {
		if c.Error > res.WorstByApproach[c.Machine][c.Approach] {
			res.WorstByApproach[c.Machine][c.Approach] = c.Error
		}
	}
	return res, nil
}

// Render prints the error grid and the worst-case summary.
func (r *Fig8Result) Render() string {
	t := &Table{
		Title:  "Figure 8: validation error of attribution approaches",
		Header: []string{"machine", "workload", "load", "core-only", "chip-share", "recalibrated"},
		Caption: "error = |aggregate profiled request power - measured system active power|\n" +
			"        / measured system active power",
	}
	type key struct {
		m, w string
		l    LoadLevel
	}
	grid := map[key]map[core.Approach]float64{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Machine, c.Workload, c.Load}
		if grid[k] == nil {
			grid[k] = map[core.Approach]float64{}
			order = append(order, k)
		}
		grid[k][c.Approach] = c.Error
	}
	for _, k := range order {
		t.AddRow(k.m, k.w, k.l.String(),
			pct(grid[k][core.ApproachCoreOnly]),
			pct(grid[k][core.ApproachChipShare]),
			pct(grid[k][core.ApproachRecalibrated]))
	}
	out := t.String()

	t2 := &Table{
		Title:  "worst-case validation error by machine",
		Header: []string{"machine", "core-only", "chip-share", "recalibrated"},
		Caption: "paper: Woodcrest 29%/18%/8%, Westmere 41%/35%/9%, SandyBridge 20%/13%/6%\n" +
			"(each approach strictly improves the worst case)",
	}
	for _, spec := range cpu.Specs() {
		w, ok := r.WorstByApproach[spec.Name]
		if !ok {
			continue
		}
		t2.AddRow(spec.Name,
			pct(w[core.ApproachCoreOnly]),
			pct(w[core.ApproachChipShare]),
			pct(w[core.ApproachRecalibrated]))
	}
	return out + "\n" + t2.String()
}
