package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"powercontainers/internal/cluster"
	"powercontainers/internal/sim"
)

// fingerprintPolicy serializes a policy run's full numeric state at bit
// precision: any ulp-level divergence between execution modes shows up as
// a fingerprint mismatch, not a rounding-hidden near-miss.
func fingerprintPolicy(p *Fig14Policy) string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy=%d\n", int(p.Policy))
	var apps []string
	for app := range p.RespMs {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		fmt.Fprintf(&b, "resp[%s]=%016x\n", app, math.Float64bits(p.RespMs[app]))
	}
	for i, w := range p.ActiveW {
		fmt.Fprintf(&b, "active[%d]=%016x\n", i, math.Float64bits(w))
	}
	fmt.Fprintf(&b, "total=%016x\n", math.Float64bits(p.TotalW))
	for node, counts := range p.Dispatched {
		var names []string
		for app := range counts {
			names = append(names, app)
		}
		sort.Strings(names)
		for _, app := range names {
			fmt.Fprintf(&b, "dispatched[%d][%s]=%d\n", node, app, counts[app])
		}
	}
	return b.String()
}

// TestCluster3ShardedMatchesSingleEngine pins the sharding soundness
// argument: running each cluster machine on its own engine (merged by the
// seeded (done time, request id) order) is bit-identical to running all
// three on one shared timeline with the same pre-scheduled dispatch plan —
// and the sharded result is byte-identical at any worker count.
func TestCluster3ShardedMatchesSingleEngine(t *testing.T) {
	affinity := map[string]float64{"GAE-Vosao": 0.55, "RSA-crypto": 0.80}
	const (
		until = 10 * sim.Second
		t0    = 2 * sim.Second
		t1    = 8 * sim.Second
	)
	run := func(jobs int, singleEngine bool) string {
		t.Helper()
		p, err := cluster3Run(NewRunExec(jobs), cluster.WorkloadAware, affinity, 1, singleEngine, nil, until, t0, t1)
		if err != nil {
			t.Fatalf("jobs=%d singleEngine=%v: %v", jobs, singleEngine, err)
		}
		return fingerprintPolicy(p)
	}
	ref := run(1, true)
	for _, jobs := range []int{1, 4, 16} {
		if got := run(jobs, false); got != ref {
			t.Errorf("sharded run at jobs=%d diverged from single-engine reference:\n--- sharded ---\n%s--- reference ---\n%s", jobs, got, ref)
		}
	}
}

// TestCluster3HealthFallsBackToCoupledPath pins the graceful degradation
// when health checking is requested: EnableHealth rejects plan mode, so
// cluster3Run must route the run onto the fully coupled single-engine
// dispatcher — the path cluster3 used before the plan/shard pipeline —
// and, with no injected node failures, produce a result bit-identical to
// that pre-shard reference (probes draw only from their own seeded
// stream, so a healthy cluster is unperturbed by the monitoring).
func TestCluster3HealthFallsBackToCoupledPath(t *testing.T) {
	affinity := map[string]float64{"GAE-Vosao": 0.55, "RSA-crypto": 0.80}
	const (
		until = 10 * sim.Second
		t0    = 2 * sim.Second
		t1    = 8 * sim.Second
	)
	health := &cluster.HealthConfig{ProbeEvery: 50 * sim.Millisecond, Timeout: 10 * sim.Millisecond}
	got, err := cluster3Run(NewRunExec(1), cluster.WorkloadAware, affinity, 1, false, health, until, t0, t1)
	if err != nil {
		t.Fatalf("health-enabled run: %v", err)
	}
	ref, err := cluster3Coupled(NewRunExec(1), cluster.WorkloadAware, affinity, 1, nil, until, t0, t1)
	if err != nil {
		t.Fatalf("coupled reference: %v", err)
	}
	if g, r := fingerprintPolicy(got), fingerprintPolicy(ref); g != r {
		t.Errorf("health fallback diverged from the coupled reference:\n--- health ---\n%s--- reference ---\n%s", g, r)
	}
}
