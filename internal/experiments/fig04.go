package experiments

import (
	"fmt"
	"sort"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Fig4Result reproduces Figure 4: a captured WeBWorK request execution
// spanning Apache/httpd processing, a MySQL thread reached over a
// persistent socket, and shell/latex/dvipng processes created by fork —
// with attributed power and energy at each request stage and the identified
// data/control-flow events between components.
type Fig4Result struct {
	Request *server.Request
	Stages  []core.StageStat
	Events  []core.TraceEvent
	// TotalEnergyJ and Duration summarize the request.
	TotalEnergyJ float64
	Duration     sim.Time
}

// Fig4 runs WeBWorK on SandyBridge at low load with tracing enabled and
// captures a representative (near-median-energy) request.
func Fig4(seed uint64) (*Fig4Result, error) {
	m, err := NewMachine(cpu.SandyBridge, core.ApproachChipShare, seed)
	if err != nil {
		return nil, err
	}
	dep := workload.WeBWorK{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	gen.TraceRequests = true
	gen.RunOpenLoop(4, 6*sim.Second, m.Rng.Fork(13))
	m.Eng.RunUntil(8 * sim.Second)

	done := gen.Completed()
	if len(done) == 0 {
		return nil, fmt.Errorf("fig4: no completed WeBWorK requests")
	}
	// Pick the median-energy request as the representative capture.
	sort.Slice(done, func(i, j int) bool {
		return done[i].Cont.EnergyJ() < done[j].Cont.EnergyJ()
	})
	req := done[len(done)/2]
	return &Fig4Result{
		Request:      req,
		Stages:       req.Cont.Stages(),
		Events:       req.Cont.Trace,
		TotalEnergyJ: req.Cont.EnergyJ(),
		Duration:     req.ResponseTime(),
	}, nil
}

// Render prints the captured request in the style of Figure 4.
func (r *Fig4Result) Render() string {
	t := &Table{
		Title:  "Figure 4: a captured WeBWorK request execution",
		Header: []string{"stage", "mean power", "energy", "busy time"},
		Caption: fmt.Sprintf("request %s: total %.2f J over %s (wall)",
			r.Request.Type, r.TotalEnergyJ, sim.FormatTime(r.Duration)),
	}
	for _, s := range r.Stages {
		t.AddRow(s.Task, w1(s.MeanPowerW()), j2(s.EnergyJ), sim.FormatTime(s.CPUTime))
	}
	out := t.String()

	t2 := &Table{
		Title:  "identified data and control flows",
		Header: []string{"time", "event", "component", "detail"},
	}
	for _, e := range r.Events {
		t2.AddRow(sim.FormatTime(e.T-r.Request.Arrive), string(e.Kind), e.Task, e.Detail)
	}
	return out + "\n" + t2.String()
}
