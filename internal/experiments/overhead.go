package experiments

import (
	"fmt"
	"testing"
	"unsafe"

	"powercontainers/internal/align"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// OverheadResult reproduces §3.5's overhead assessment by actually
// benchmarking this implementation: the cost of one container maintenance
// operation, of one model recalibration, and of duty-cycle register access,
// plus the observer-effect event counts and the container structure size.
type OverheadResult struct {
	// MaintenanceNsPerOp is the measured cost of one container
	// maintenance operation (paper: ≈0.95 µs, i.e. ≈0.1% overhead at a
	// 1 ms sampling cadence).
	MaintenanceNsPerOp float64
	// OverheadAtOneMs is maintenance cost / 1 ms.
	OverheadAtOneMs float64
	// RecalibrationNsPerFit is the measured least-square refit cost
	// (paper: ≈16 µs).
	RecalibrationNsPerFit float64
	// DutyReadNs and DutyWriteNs are duty-cycle register access costs
	// (paper: ~265 and ~350 cycles, <0.2 µs at 3 GHz).
	DutyReadNs  float64
	DutyWriteNs float64
	// ObserverEvents is the per-operation observer effect the facility
	// compensates (paper: 2948 cycles, 1656 instructions, 16 flops,
	// 3 LLC references, no measurable memory transactions).
	ObserverEvents cpu.Counters
	// ObserverEnergyUJ is the modeled energy of one maintenance
	// operation (paper: ≈10 µJ at 1/4 chip share).
	ObserverEnergyUJ float64
	// ContainerBytes is the container state size (paper: 784 bytes).
	ContainerBytes uintptr
}

// overheadSeed pins the overhead measurement's machine; the experiment
// reports costs, not attribution values, so any fixed seed serves.
//
//pclint:seed
const overheadSeed = 1

// Overhead measures the facility's costs.
func Overhead() (*OverheadResult, error) {
	cal, err := CalibrationFor(cpu.SandyBridge)
	if err != nil {
		return nil, err
	}

	// A running machine with a busy task to sample.
	m, err := NewMachine(cpu.SandyBridge, core.ApproachChipShare, overheadSeed)
	if err != nil {
		return nil, err
	}
	m.K.Spawn("spin", kernel.Script(kernel.OpCompute{
		BaseCycles: 1e12, Act: workload.ActStress,
	}), nil)
	m.Eng.RunUntil(10 * sim.Millisecond)

	res := &OverheadResult{
		ObserverEvents: core.DefaultMaintenanceEvents,
		ContainerBytes: unsafe.Sizeof(core.Container{}),
	}

	act := workload.ActStress
	sample := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Emulate one elapsed 1 ms sampling period, then perform
			// the maintenance operation.
			m.K.Cores[0].AdvanceBusy(sim.Millisecond, act)
			m.Fac.RewindBaseline(0, sim.Millisecond)
			m.Fac.SampleNow(0)
		}
	})
	res.MaintenanceNsPerOp = float64(sample.NsPerOp())
	res.OverheadAtOneMs = res.MaintenanceNsPerOp / float64(sim.Millisecond)

	// Recalibration refit over a realistic sample set.
	rec := align.NewRecalibrator(m.Wattsup, model.ScopeMachine, cal.Samples)
	for i := 0; i < 200; i++ {
		s := cal.Samples[i%len(cal.Samples)]
		rec.Offline = append(rec.Offline, s)
	}
	rec.MinOnline = 0
	refit := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rec.Refit(cal.Eq2); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.RecalibrationNsPerFit = float64(refit.NsPerOp())

	c := m.K.Cores[0]
	nsPerOp := func(r testing.BenchmarkResult) float64 {
		if r.N == 0 {
			return 0
		}
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	read := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = c.DutyLevel()
		}
	})
	res.DutyReadNs = nsPerOp(read)
	write := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.SetDutyLevel(4 + i%2)
		}
	})
	res.DutyWriteNs = nsPerOp(write)

	// Energy of one maintenance op per the active model at 1/4 chip
	// share, mirroring the paper's estimate.
	ev := res.ObserverEvents
	mtr := model.Metrics{
		Core:  1,
		Ins:   ev.Instructions / ev.Cycles,
		Float: ev.Float / ev.Cycles,
		Cache: ev.Cache / ev.Cycles,
		Mem:   ev.Mem / ev.Cycles,
		Chip:  0.25,
	}
	watts := cal.Eq2.EstimateCPU(mtr)
	res.ObserverEnergyUJ = watts * ev.Cycles / cpu.SandyBridge.FreqHz * 1e6
	return res, nil
}

// Render prints the §3.5 table.
func (r *OverheadResult) Render() string {
	t := &Table{
		Title:  "§3.5 overhead assessment (measured on this implementation)",
		Header: []string{"quantity", "measured", "paper"},
	}
	t.AddRow("container maintenance op", fmt.Sprintf("%.0f ns", r.MaintenanceNsPerOp), "~950 ns")
	t.AddRow("overhead at 1 ms sampling", fmt.Sprintf("%.3f%%", 100*r.OverheadAtOneMs), "~0.1%")
	t.AddRow("model recalibration (least-square fit)", fmt.Sprintf("%.1f us", r.RecalibrationNsPerFit/1e3), "~16 us")
	t.AddRow("duty-cycle register read", fmt.Sprintf("%.1f ns", r.DutyReadNs), "~88 ns (265 cyc @3GHz)")
	t.AddRow("duty-cycle register write", fmt.Sprintf("%.1f ns", r.DutyWriteNs), "~117 ns (350 cyc @3GHz)")
	t.AddRow("observer effect per op", r.ObserverEvents.String(), "2948 cyc, 1656 ins, 16 flop, 3 LLC")
	t.AddRow("maintenance energy per op", fmt.Sprintf("%.1f uJ", r.ObserverEnergyUJ), "~10 uJ")
	t.AddRow("container state size", fmt.Sprintf("%d bytes", r.ContainerBytes), "784 bytes")
	return t.String()
}
