package experiments

import (
	"cmp"
	"sort"
)

// SortedKeys returns m's keys in ascending order. It is the shared
// sorted-iteration helper the maporder analyzer points renderers and
// aggregators at: `for _, k := range SortedKeys(m)` replaces a raw
// `for k := range m`, whose nondeterministic order would leak into
// rendered experiment output and break byte-identical replay.
func SortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	//pclint:allow maporder key collection is sorted before it is returned
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
