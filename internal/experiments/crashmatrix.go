package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/durable"
	"powercontainers/internal/faults"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// CrashMatrixCell is one crash point of the matrix: a supervised durable
// streaming run killed by the injected plan, restarted, and compared
// against the golden uninterrupted stream.
type CrashMatrixCell struct {
	// Spec is the canonical faults.CrashPlan that killed the run.
	Spec string
	// Restarts counts supervisor restarts (≥ 1 when the plan fired).
	Restarts int
	// Mode is the recovery decision of the restart attempt: "fresh",
	// "checkpoint", or "scratch".
	Mode string
	// Frontier is the durable record count surviving the crash.
	Frontier int64
	// Truncations counts WAL tail repairs during recovery.
	Truncations int
	// SHA is the SHA-256 of the recovered durable stream.
	SHA string
	// Exact reports SHA == the golden run's hash: no record lost,
	// duplicated, or reordered.
	Exact bool
}

// CrashMatrixResult is the exact-recovery sweep (robustness extension):
// the paper's facility is an always-on service, so its streaming output
// must survive a kill -9 at any filesystem operation. Every cell crashes
// a durable run at a scheduled WAL append, fsync, checkpoint write or
// rename — several with bit-flip or truncation damage inflicted while the
// process is down — and requires the recovered stream to hash identically
// to the run that never crashed.
type CrashMatrixResult struct {
	// GoldenSHA is the uninterrupted run's stream hash; Records its length.
	GoldenSHA string
	Records   int64
	Cells     []CrashMatrixCell
}

// CrashMatrixOptions trims the experiment.
type CrashMatrixOptions struct {
	// Specs are the crash-plan specs to sweep; nil selects the default
	// matrix below.
	Specs []string
	// Exec configures parallelism and per-run assembly.
	Exec Exec
}

// defaultCrashSpecs is the standing matrix: ≥ 12 distinct crash points
// covering WAL appends (torn at several depths), pre- and post-fsync
// deaths, every step of the checkpoint's write/fsync/rename pipeline, and
// stable-storage damage (bit flips and truncation) inflicted after the
// cut. Indexes are chosen to land inside a 40-tick run.
func defaultCrashSpecs() []string {
	return []string{
		"crash:op=write,match=wal-,index=1",
		"crash:op=write,match=wal-,index=40,keep=6",
		"crash:op=write,match=wal-,index=90,keep=3",
		"crash:op=sync,match=wal-,index=1",
		"crash:op=sync,match=wal-,index=7",
		"crash:op=sync,match=wal-,index=13,at=post",
		"crash:op=create,match=checkpoint.ck,index=1",
		"crash:op=write,match=checkpoint.ck,index=2,keep=9",
		"crash:op=sync,match=checkpoint.ck,index=1",
		"crash:op=rename,match=checkpoint.ck,index=1",
		"crash:op=rename,match=checkpoint.ck,index=2,at=post",
		"crash:op=sync,match=wal-,index=20,at=post;corrupt:file=.seg,off=-2,mask=64",
		"crash:op=sync,match=wal-,index=20,at=post;corrupt:file=checkpoint.ck,off=12,mask=1",
		"crash:op=sync,match=wal-,index=25,at=post;corrupt:file=.seg,trunc=200",
	}
}

// crashStreamGrid is the shared run shape: 40 ticks of GAE at 0.4·peak
// with a checkpoint every 10 ticks, identical across the golden run and
// every cell (the crash plans must kill the same stream they recover).
const (
	crashStreamHorizon = 4 * sim.Second
	crashStreamTick    = 100 * sim.Millisecond
	crashStreamCPEvery = 10
	crashStreamDir     = "cm"
)

// crashRecoveryProbe records what the latest OpenStore found.
type crashRecoveryProbe struct {
	mode     string
	frontier int64
	truncs   int
}

func (p *crashRecoveryProbe) OnWALTruncate(path string, off, lost int64, reason string) { p.truncs++ }
func (p *crashRecoveryProbe) OnRecovery(mode string, lastSeq int64, cpTick int, detail string) {
	p.mode, p.frontier = mode, lastSeq
}

// crashMatrixStream runs one durable streaming attempt over fsys: build
// the seeded machine, recover the store, resume, run to the horizon.
func crashMatrixStream(as Assembly, seed uint64, fsys durable.FS, probe stream.StoreAuditSink) error {
	m, err := as.NewMachine(cpu.SandyBridge, core.ApproachRecalibrated, seed)
	if err != nil {
		return err
	}
	dep := workload.GAE{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	gen.RunOpenLoop(0.4*PeakRate(m.K.Spec, dep), crashStreamHorizon, m.Rng.Fork(13))
	var meter power.Meter
	scope := model.ScopeMachine
	if r := m.Fac.Recalibrator(); r != nil {
		meter, scope = r.Meter, r.Scope
	} else {
		meter, scope = m.Chip, model.ScopePackage
	}
	src := stream.Sources{Eng: m.Eng, Fac: m.Fac, Meter: meter, Scope: scope}
	cfg := stream.Config{Tick: crashStreamTick, CheckpointEvery: crashStreamCPEvery}
	st, rec, err := stream.OpenStore(fsys, crashStreamDir, probe)
	if err != nil {
		return err
	}
	e, err := stream.Resume(src, cfg, st, rec)
	if err != nil {
		return err
	}
	e.RunUntil(crashStreamHorizon)
	return st.Close()
}

// hashDurableStream reads the store's record stream back and hashes it.
func hashDurableStream(fsys durable.FS) (string, int64, error) {
	h := sha256.New()
	var records int64
	err := stream.ReadStream(fsys, crashStreamDir, func(seq int64, line []byte) error {
		records = seq
		h.Write(line)
		return nil
	})
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), records, nil
}

// crashMatrixCell executes one crash point: attempt 1 runs over a CrashFS
// armed with the plan, the supervisor absorbs the death, and the restart
// recovers and finishes on the bare in-memory filesystem.
func crashMatrixCell(as Assembly, seed uint64, spec string) (CrashMatrixCell, error) {
	plan, err := faults.ParseCrashPlan(spec)
	if err != nil {
		return CrashMatrixCell{}, err
	}
	mem := durable.NewMemFS()
	probe := &crashRecoveryProbe{}
	cell := CrashMatrixCell{Spec: plan.String()}
	attempt := 0
	sup := &stream.Supervisor{
		IsCrash:   func(r any) bool { _, ok := r.(faults.Crash); return ok },
		Progress:  func() int64 { return probe.frontier },
		OnRestart: func(n int, cause string) { cell.Restarts = n },
	}
	if err := sup.Run(func() error {
		var f durable.FS = mem
		if attempt == 0 {
			f = faults.NewCrashFS(mem, plan)
		}
		attempt++
		return crashMatrixStream(as, seed, f, probe)
	}); err != nil {
		return cell, err
	}
	cell.Mode, cell.Frontier, cell.Truncations = probe.mode, probe.frontier, probe.truncs
	if cell.SHA, _, err = hashDurableStream(mem); err != nil {
		return cell, err
	}
	return cell, nil
}

// CrashMatrix runs the golden stream and sweeps the crash points, fanning
// independent cells across opt.Exec.Jobs workers.
func CrashMatrix(opt CrashMatrixOptions, seed uint64) (*CrashMatrixResult, error) {
	if opt.Specs == nil {
		opt.Specs = defaultCrashSpecs()
	}
	as := opt.Exec.Assembly

	res := &CrashMatrixResult{}
	mem := durable.NewMemFS()
	if err := crashMatrixStream(as, seed, mem, nil); err != nil {
		return nil, fmt.Errorf("crashmatrix golden run: %w", err)
	}
	var err error
	if res.GoldenSHA, res.Records, err = hashDurableStream(mem); err != nil {
		return nil, fmt.Errorf("crashmatrix golden run: %w", err)
	}

	plan := &runner.Plan{}
	for _, spec := range opt.Specs {
		spec := spec
		plan.Add("crashmatrix/"+spec, func() (any, error) {
			cell, err := crashMatrixCell(as, seed, spec)
			if err != nil {
				return nil, fmt.Errorf("crashmatrix %q: %w", spec, err)
			}
			return cell, nil
		})
	}
	cells, err := runner.Collect[CrashMatrixCell](plan, opt.Exec.Jobs)
	if err != nil {
		return nil, err
	}
	for i := range cells {
		cells[i].Exact = cells[i].SHA == res.GoldenSHA
	}
	res.Cells = cells
	return res, nil
}

// CrashMatrixEx runs the default matrix under an execution configuration.
func CrashMatrixEx(ex Exec, seed uint64) (*CrashMatrixResult, error) {
	return CrashMatrix(CrashMatrixOptions{Exec: ex}, seed)
}

// Render prints one row per crash point.
func (r *CrashMatrixResult) Render() string {
	t := &Table{
		Title:  "crashmatrix: exact recovery of the durable record stream across injected crash points",
		Header: []string{"crash point", "restarts", "recovery", "frontier", "repairs", "exact"},
		Caption: fmt.Sprintf("golden run: %d records, sha256 %s…\n"+
			"frontier = durable records surviving the cut; repairs = WAL torn-tail truncations;\n"+
			"exact = recovered stream hash equals the uninterrupted run's", r.Records, r.GoldenSHA[:16]),
	}
	for _, c := range r.Cells {
		exact := "YES"
		if !c.Exact {
			exact = "NO"
		}
		t.AddRow(c.Spec, fmt.Sprintf("%d", c.Restarts), c.Mode,
			fmt.Sprintf("%d", c.Frontier), fmt.Sprintf("%d", c.Truncations), exact)
	}
	return t.String()
}
