package experiments

import (
	"fmt"

	"powercontainers/internal/cpu"
	"powercontainers/internal/model"
)

// CoeffResult reproduces the §4.1 calibrated-coefficient listing: Cidle and
// C·Mmax for each model term, where Mmax is the maximum observed value of
// the metric for the whole machine including all cores.
type CoeffResult struct {
	Machine string
	Coeff   model.Coefficients
	Mmax    model.Metrics
	// CMmax[i] pairs MetricNames[i] with its maximum active power impact.
	CMmax []float64
	// FitErr is the calibration fit error.
	FitErr float64
}

// Coefficients calibrates a machine and reports the table (the paper lists
// SandyBridge).
func Coefficients(spec cpu.MachineSpec) (*CoeffResult, error) {
	cal, err := CalibrationFor(spec)
	if err != nil {
		return nil, err
	}
	cv := cal.Eq2.Vector()
	mv := cal.Mmax.Vector()
	res := &CoeffResult{
		Machine: spec.Name,
		Coeff:   cal.Eq2,
		Mmax:    cal.Mmax,
		FitErr:  cal.FitErrEq2,
	}
	for i := range cv {
		res.CMmax = append(res.CMmax, cv[i]*mv[i])
	}
	return res, nil
}

// Render prints the coefficient table in the paper's format.
func (r *CoeffResult) Render() string {
	t := &Table{
		Title:  fmt.Sprintf("§4.1 calibrated offline model for %s", r.Machine),
		Header: []string{"term", "C·Mmax (max active power impact)"},
		Caption: fmt.Sprintf("calibration fit error %s; paper's SandyBridge values: core 33.1 W, ins 12.4 W,\n"+
			"cache 13.9 W, mem 8.2 W, chipshare 5.6 W, disk 1.7 W, net 5.8 W; Cidle 26.1 W",
			pct(r.FitErr)),
	}
	t.AddRow("Cidle", w1(r.Coeff.IdleW))
	for i, name := range model.MetricNames {
		t.AddRow("C"+name+" · Mmax", w1(r.CMmax[i]))
	}
	return t.String()
}
