package experiments

import (
	"fmt"
	"math"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
	"powercontainers/internal/workload"
)

// Fig11Result reproduces Figures 11 and 12: fair request power conditioning
// of a Google App Engine workload with injected power viruses. Run (A) is
// the original system; run (B) applies container-based conditioning with a
// system active power target, throttling only the requests that exceed
// their share.
type Fig11Result struct {
	// TargetActiveW is the conditioning target (package active watts).
	TargetActiveW float64
	// VirusStart is when viruses begin arriving.
	VirusStart sim.Time
	// OriginalTrace and ConditionedTrace are package full power (W) per
	// 100 ms bucket over the run.
	OriginalTrace    []float64
	ConditionedTrace []float64
	// PeakOriginalW / PeakConditionedW are the peak package active power
	// after virus introduction.
	PeakOriginalW    float64
	PeakConditionedW float64

	// Figure 12 companion: per-request scatter from the conditioned run.
	Scatter []Fig12Point
	// Mean slowdown (1 − mean duty fraction) for normal requests and for
	// viruses.
	NormalSlowdown float64
	VirusSlowdown  float64
}

// Fig12Point is one request of the Figure 12 scatter.
type Fig12Point struct {
	Type string
	// OriginalPowerW estimates the unthrottled request power; DutyRatio
	// is the time-averaged duty-cycle ratio applied to it.
	OriginalPowerW float64
	DutyRatio      float64
}

// Fig11 runs both systems on SandyBridge.
func Fig11(seed uint64) (*Fig11Result, error) {
	const (
		runFor     = 20 * sim.Second
		virusStart = 10 * sim.Second
		virusRate  = 1.0 // sporadic, ~one per second (§4.3)
	)

	run := func(condition bool, targetW float64) (*Machine, *server.LoadGen, error) {
		m, err := NewMachine(cpu.SandyBridge, core.ApproachRecalibrated, seed)
		if err != nil {
			return nil, nil, err
		}
		if condition {
			m.Fac.EnableConditioning(targetW)
		}
		dep := workload.GAE{}.Deploy(m.K, m.Rng.Fork(11))
		gen := server.NewLoadGen(m.K, m.Fac, dep)
		gen.RunClosedLoop(PeakClients(m.K.Spec), runFor)

		vdep := workload.GAE{VirusLoadFraction: 1, DisableBackground: true}.Deploy(m.K, m.Rng.Fork(12))
		vgen := server.NewLoadGen(m.K, m.Fac, vdep)
		vrng := m.Rng.Fork(14)
		m.Eng.At(virusStart, func() {
			vgen.RunOpenLoop(virusRate, runFor, vrng)
		})
		m.Eng.RunUntil(runFor + 2*sim.Second)
		// Merge virus requests into the main generator's view for the
		// scatter.
		for _, r := range vgen.Completed() {
			gen.InjectedExternally(r)
		}
		return m, gen, nil
	}

	// Run (A): original system; derive the conditioning target from its
	// pre-virus baseline, as the paper derives 40 W from the Vosao load.
	mA, _, err := run(false, 0)
	if err != nil {
		return nil, err
	}
	baseline := mA.K.Rec.PkgActivePowerW(2*sim.Second, virusStart)
	target := baseline * 1.02

	mB, genB, err := run(true, target)
	if err != nil {
		return nil, err
	}

	res := &Fig11Result{
		TargetActiveW:    target,
		VirusStart:       virusStart,
		OriginalTrace:    packageTrace(mA, runFor),
		ConditionedTrace: packageTrace(mB, runFor),
	}
	res.PeakOriginalW = peakAfter(mA, virusStart, runFor)
	res.PeakConditionedW = peakAfter(mB, virusStart, runFor)

	var normal, virus stats.Summary
	for _, req := range genB.Completed() {
		if !req.Finished() || req.Done < virusStart || req.Cont == nil {
			continue
		}
		pt := Fig12Point{
			Type:           req.Type,
			OriginalPowerW: req.Cont.OriginalMeanPowerW(),
			DutyRatio:      req.Cont.MeanDutyFraction(),
		}
		res.Scatter = append(res.Scatter, pt)
		if req.Type == "gae/virus" {
			virus.Observe(1 - pt.DutyRatio)
		} else {
			normal.Observe(1 - pt.DutyRatio)
		}
	}
	res.NormalSlowdown = math.Max(0, normal.Mean())
	res.VirusSlowdown = math.Max(0, virus.Mean())
	return res, nil
}

// packageTrace returns package full power per 100 ms bucket.
func packageTrace(m *Machine, until sim.Time) []float64 {
	m.K.Rec.FlushUntil(until)
	series := m.K.Rec.PkgActiveSeries().Rebucket(100)
	idle := m.Chip.IdleW()
	out := make([]float64, series.Len())
	for i := range out {
		out[i] = series.RatePerSecond(i) + idle
	}
	return out
}

// peakAfter returns the peak 100 ms package active power in [from, to).
func peakAfter(m *Machine, from, to sim.Time) float64 {
	m.K.Rec.FlushUntil(to)
	series := m.K.Rec.PkgActiveSeries().Rebucket(100)
	lo := int(from / (100 * sim.Millisecond))
	hi := int(to / (100 * sim.Millisecond))
	peak := 0.0
	for b := lo; b < hi && b < series.Len(); b++ {
		if w := series.RatePerSecond(b); w > peak {
			peak = w
		}
	}
	return peak
}

// Render prints the conditioning traces and the fairness summary.
func (r *Fig11Result) Render() string {
	t := &Table{
		Title:  "Figure 11: power-conditioned execution of GAE with power viruses (SandyBridge)",
		Header: []string{"time", "original (pkg W)", "conditioned (pkg W)"},
		Caption: fmt.Sprintf("viruses from t=%s; active power target %.1f W; peak active after viruses:\n"+
			"original %.1f W vs conditioned %.1f W",
			sim.FormatTime(r.VirusStart), r.TargetActiveW, r.PeakOriginalW, r.PeakConditionedW),
	}
	for b := 0; b < len(r.OriginalTrace) && b < len(r.ConditionedTrace); b += 5 {
		t.AddRow(sim.FormatTime(sim.Time(b)*100*sim.Millisecond),
			w1(r.OriginalTrace[b]), w1(r.ConditionedTrace[b]))
	}
	out := t.String()

	t2 := &Table{
		Title:  "Figure 12: original request power vs applied duty-cycle ratio",
		Header: []string{"request class", "count", "mean original power", "mean duty ratio", "mean slowdown"},
		Caption: fmt.Sprintf("normal requests slowed %.1f%% on average, power viruses %.1f%%\n"+
			"(paper: ~2%% and ~33%%; full-machine throttling would slow everything ~13%%)",
			100*r.NormalSlowdown, 100*r.VirusSlowdown),
	}
	type agg struct {
		n         int
		pow, duty float64
	}
	classes := map[string]*agg{}
	for _, p := range r.Scatter {
		cls := "normal"
		if p.Type == "gae/virus" {
			cls = "virus"
		}
		a := classes[cls]
		if a == nil {
			a = &agg{}
			classes[cls] = a
		}
		a.n++
		a.pow += p.OriginalPowerW
		a.duty += p.DutyRatio
	}
	for _, cls := range []string{"normal", "virus"} {
		a := classes[cls]
		if a == nil {
			continue
		}
		n := float64(a.n)
		t2.AddRow(cls, fmt.Sprintf("%d", a.n), w1(a.pow/n),
			fmt.Sprintf("%.2f", a.duty/n), pct(1-a.duty/n))
	}
	return out + "\n" + t2.String()
}
