package experiments

import (
	"fmt"
	"math"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Fig10App identifies one of the two composition-change applications.
type Fig10App struct {
	Name string
	// Original and NewComposition deployments.
	Original workload.Workload
	NewComp  workload.Workload
	// NewMixLabels and weights describe the new composition's request-
	// type distribution, for assembling per-type energy profiles.
	NewMixLabels  []string
	NewMixWeights []float64
}

// Fig10Point is one (load level, approach) prediction.
type Fig10Point struct {
	App string
	// UtilTarget is the intended CPU utilization of the hypothetical
	// condition (the paper's "median (~50%)", "~65%", "~80%").
	UtilTarget float64
	RatePerSec float64
	// MeasuredW is the actual active power running the new composition.
	MeasuredW float64
	// Predicted powers under the three schemes.
	ContainersW float64
	CPUUtilW    float64
	RateW       float64
}

// Errors returns the three relative prediction errors.
func (p Fig10Point) Errors() (containers, cpuUtil, rate float64) {
	e := func(pred float64) float64 {
		if p.MeasuredW <= 0 {
			return 0
		}
		return math.Abs(pred-p.MeasuredW) / p.MeasuredW
	}
	return e(p.ContainersW), e(p.CPUUtilW), e(p.RateW)
}

// Fig10Result reproduces Figure 10: predicting system active power at new
// request compositions from per-request energy profiles, versus the
// request-rate-proportional and CPU-utilization-proportional alternatives.
type Fig10Result struct {
	Points []Fig10Point
	// Worst errors per approach across all points.
	WorstContainers, WorstCPUUtil, WorstRate float64
}

// typeProfile is the per-request-type energy/CPU profile learned from the
// original workload run.
type typeProfile struct {
	count     int
	energyJ   float64 // mean CPU energy per request, chip share excluded
	chipJ     float64 // mean chip-share energy per request
	deviceJ   float64
	cpuSec    float64
	totEnergy float64
}

// Fig10 runs the profiling and prediction procedure on SandyBridge.
func Fig10(seed uint64) (*Fig10Result, error) {
	return Fig10Ex(Exec{}, seed)
}

// Fig10Ex runs Figure 10 with explicit execution configuration. The two
// applications are independent jobs (profiling feeds prediction within an
// app, so each app's pipeline stays sequential inside its job).
func Fig10Ex(ex Exec, seed uint64) (*Fig10Result, error) {
	top := 10
	topLabels := make([]string, top)
	topWeights := workload.ProblemWeights()[:top]
	for i := range topLabels {
		topLabels[i] = workload.ProblemLabel(i)
	}
	apps := []Fig10App{
		{
			Name:          "RSA-crypto",
			Original:      workload.RSA{},
			NewComp:       workload.RSA{OnlyLargestKey: true},
			NewMixLabels:  []string{"rsa/2048"},
			NewMixWeights: []float64{1},
		},
		{
			Name:          "WeBWorK",
			Original:      workload.WeBWorK{},
			NewComp:       workload.WeBWorK{TopProblems: top},
			NewMixLabels:  topLabels,
			NewMixWeights: topWeights,
		},
	}

	plan := &runner.Plan{}
	for ai, app := range apps {
		appSeed := seed + uint64(ai)*101
		plan.Add("fig10/"+app.Name, func() (any, error) {
			pts, err := fig10App(ex.Assembly, app, appSeed)
			if err != nil {
				return nil, fmt.Errorf("fig10 %s: %w", app.Name, err)
			}
			return pts, nil
		})
	}
	perApp, err := runner.Collect[[]Fig10Point](plan, ex.Jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{}
	for _, pts := range perApp {
		res.Points = append(res.Points, pts...)
	}
	for _, p := range res.Points {
		c, u, rr := p.Errors()
		res.WorstContainers = math.Max(res.WorstContainers, c)
		res.WorstCPUUtil = math.Max(res.WorstCPUUtil, u)
		res.WorstRate = math.Max(res.WorstRate, rr)
	}
	return res, nil
}

func fig10App(as Assembly, app Fig10App, seed uint64) ([]Fig10Point, error) {
	spec := cpu.SandyBridge

	// --- Profiling phase: run the ORIGINAL workload at median load. ---
	m, err := as.NewMachine(spec, core.ApproachRecalibrated, seed)
	if err != nil {
		return nil, err
	}
	dep := app.Original.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	origRate := 0.5 * PeakRate(spec, dep)
	t0, t1 := 2*sim.Second, 62*sim.Second
	gen.RunOpenLoop(origRate, t1, m.Rng.Fork(13))
	m.Eng.RunUntil(t1 + 3*sim.Second)
	origMeasured, err := wattsupWindowMean(m.Wattsup, m.Eng.Now(), t0, t1)
	if err != nil {
		return nil, err
	}

	profiles := map[string]*typeProfile{}
	var overall typeProfile
	completedRate := 0.0
	for _, req := range gen.Completed() {
		if !req.Finished() || req.Done < t0 || req.Done >= t1 {
			continue
		}
		completedRate += 1
		tp := profiles[req.Type]
		if tp == nil {
			tp = &typeProfile{}
			profiles[req.Type] = tp
		}
		for _, dst := range []*typeProfile{tp, &overall} {
			dst.count++
			dst.energyJ += req.Cont.CPUEnergyJ - req.Cont.ChipEnergyJ
			dst.chipJ += req.Cont.ChipEnergyJ
			dst.deviceJ += req.Cont.DeviceEnergyJ
			dst.cpuSec += float64(req.Cont.CPUTime) / float64(sim.Second)
			dst.totEnergy += req.Cont.EnergyJ()
		}
	}
	windowSec := float64(t1-t0) / float64(sim.Second)
	completedRate /= windowSec
	if overall.count == 0 {
		return nil, fmt.Errorf("no profiled requests")
	}
	norm := func(tp *typeProfile) {
		n := float64(tp.count)
		tp.energyJ /= n
		tp.chipJ /= n
		tp.deviceJ /= n
		tp.cpuSec /= n
		tp.totEnergy /= n
	}
	norm(&overall)
	for _, lbl := range SortedKeys(profiles) {
		norm(profiles[lbl])
	}

	// Expected per-request profile under the new composition, weighting
	// per-type profiles by the new mix; types never profiled fall back to
	// the overall mean.
	var wsum float64
	mix := typeProfile{}
	for i, lbl := range app.NewMixLabels {
		w := app.NewMixWeights[i]
		tp := profiles[lbl]
		if tp == nil || tp.count == 0 {
			tp = &overall
		}
		wsum += w
		mix.energyJ += w * tp.energyJ
		mix.deviceJ += w * tp.deviceJ
		mix.cpuSec += w * tp.cpuSec
	}
	mix.energyJ /= wsum
	mix.deviceJ /= wsum
	mix.cpuSec /= wsum

	origUtil := completedRate * overall.cpuSec / float64(spec.Cores())
	chip := m.Fac.Coeff.Chip // maintenance coefficient known to the facility

	// --- Prediction/measurement phase at three hypothetical loads. ---
	var points []Fig10Point
	for pi, util := range []float64{0.50, 0.65, 0.80} {
		// The rate that would produce the target utilization given the
		// new mix's profiled per-request CPU demand.
		rate := util * float64(spec.Cores()) / mix.cpuSec

		// Power containers prediction: per-request core-level energy ×
		// rate, plus chip maintenance at the predicted concurrency.
		containersW := rate*(mix.energyJ+mix.deviceJ) + chip*float64(spec.Chips)
		// CPU-utilization-proportional.
		cpuUtilW := origMeasured * (rate * mix.cpuSec / float64(spec.Cores())) / origUtil
		// Request-rate-proportional.
		rateW := origMeasured * rate / completedRate

		// Measure the new composition at this rate.
		m2, err := as.NewMachine(spec, core.ApproachChipShare, seed+100+uint64(pi))
		if err != nil {
			return nil, err
		}
		dep2 := app.NewComp.Deploy(m2.K, m2.Rng.Fork(11))
		gen2 := server.NewLoadGen(m2.K, m2.Fac, dep2)
		mt0, mt1 := 2*sim.Second, 27*sim.Second
		gen2.RunOpenLoop(rate, mt1, m2.Rng.Fork(13))
		m2.Eng.RunUntil(mt1 + 3*sim.Second)
		measured, err := wattsupWindowMean(m2.Wattsup, m2.Eng.Now(), mt0, mt1)
		if err != nil {
			return nil, err
		}
		points = append(points, Fig10Point{
			App: app.Name, UtilTarget: util, RatePerSec: rate,
			MeasuredW: measured, ContainersW: containersW,
			CPUUtilW: cpuUtilW, RateW: rateW,
		})
	}
	return points, nil
}

// Render prints predictions vs measurements.
func (r *Fig10Result) Render() string {
	t := &Table{
		Title: "Figure 10: power prediction at new request compositions (SandyBridge)",
		Header: []string{"app", "target util", "rate", "measured",
			"containers", "cpu-util-prop", "rate-prop"},
		Caption: fmt.Sprintf("worst errors: containers %s, cpu-util-proportional %s, rate-proportional %s\n"+
			"(paper: up to 11%%, 19%% and 56%% respectively)",
			pct(r.WorstContainers), pct(r.WorstCPUUtil), pct(r.WorstRate)),
	}
	for _, p := range r.Points {
		c, u, rr := p.Errors()
		t.AddRow(p.App, pct(p.UtilTarget), fmt.Sprintf("%.1f/s", p.RatePerSec), w1(p.MeasuredW),
			fmt.Sprintf("%s (%s)", w1(p.ContainersW), pct(c)),
			fmt.Sprintf("%s (%s)", w1(p.CPUUtilW), pct(u)),
			fmt.Sprintf("%s (%s)", w1(p.RateW), pct(rr)))
	}
	return t.String()
}
