package experiments

import (
	"fmt"

	"powercontainers/internal/audit"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/export"
	"powercontainers/internal/model"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stream"
	"powercontainers/internal/workload"
)

// StreamEquivCell compares one fig8-style validation cell computed twice
// over the identical deterministic trace: once by the batch harness
// (RunOn: one RunUntil to the horizon) and once by the streaming engine
// (tick-by-tick consumption with per-container records).
type StreamEquivCell struct {
	Workload string
	Load     LoadLevel
	Approach core.Approach
	// BatchError is the batch harness's Figure 8 validation error.
	BatchError float64
	// StreamError is the same metric derived from the streaming engine's
	// record stream (cumulative attributed energy at the window's tick
	// boundaries) and the stream-arm machine's Wattsup window mean.
	StreamError float64
	// BatchHash and StreamHash are the canonical per-request accounting
	// hashes (audit.HashAccounting) of each arm's completed requests;
	// equality means the two arms attributed identically.
	BatchHash  string
	StreamHash string
	// Records counts the streaming arm's emitted records.
	Records int64
}

// Identical reports whether the arms' request accounting hashes match.
func (c StreamEquivCell) Identical() bool { return c.BatchHash == c.StreamHash }

// StreamEquivResult reports the streaming-vs-batch equivalence grid.
type StreamEquivResult struct {
	Cells []StreamEquivCell
}

// StreamEquivOptions trims the experiment.
type StreamEquivOptions struct {
	// Exec configures parallelism and per-run assembly.
	Exec Exec
}

// streamEquivRun executes one cell's two arms on identically seeded
// SandyBridge machines.
func streamEquivRun(as Assembly, ap core.Approach, load LoadLevel, seed uint64) (StreamEquivCell, error) {
	wl := workload.Stress{}

	// Batch arm: the established harness path.
	batch, err := as.Run(cpu.SandyBridge, ap, RunSpec{Workload: wl, Load: load}, seed)
	if err != nil {
		return StreamEquivCell{}, err
	}
	batchHash, err := audit.HashAccounting(export.Collect(batch.Gen.Completed()))
	if err != nil {
		return StreamEquivCell{}, err
	}

	// Streaming arm: identical machine and load schedule (RunOn's exact
	// deployment sequence), but the engine is driven tick-by-tick through
	// the streaming consumer.
	m, err := as.NewMachine(cpu.SandyBridge, ap, seed)
	if err != nil {
		return StreamEquivCell{}, err
	}
	dep := wl.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	t0 := defaultWarmup
	t1 := t0 + defaultWindow
	if load == PeakLoad {
		gen.RunClosedLoop(PeakClients(m.K.Spec), t1)
	} else {
		gen.RunOpenLoop(0.5*PeakRate(m.K.Spec, dep), t1, m.Rng.Fork(13))
	}
	e := stream.New(stream.Sources{Eng: m.Eng, Fac: m.Fac, Meter: m.Chip, Scope: model.ScopePackage}, stream.Config{})
	h := stream.NewHasher()
	e.Sink = h
	if m.Audit != nil {
		e.Audit = m.Audit
	}
	// The warmup/window bounds are tick multiples, so the cumulative
	// attributed ledger at those ticks is the window's energy.
	e.RunUntil(t0)
	cum0 := e.CumAttributedJ()
	e.RunUntil(t1)
	cum1 := e.CumAttributedJ()
	e.RunUntil(t1 + 3*sim.Second)
	if err := m.FinalizeAudit(); err != nil {
		return StreamEquivCell{}, err
	}
	measured, err := WattsupActiveMean(m, m.Eng.Now(), t0, t1)
	if err != nil {
		return StreamEquivCell{}, err
	}
	streamHash, err := audit.HashAccounting(export.Collect(gen.Completed()))
	if err != nil {
		return StreamEquivCell{}, err
	}
	windowSec := float64(t1-t0) / float64(sim.Second)
	accountedW := (cum1 - cum0) / windowSec
	streamErr := 0.0
	if measured > 0 {
		d := accountedW - measured
		if d < 0 {
			d = -d
		}
		streamErr = d / measured
	}
	return StreamEquivCell{
		Workload: wl.Name(), Load: load, Approach: ap,
		BatchError: batch.ValidationError(), StreamError: streamErr,
		BatchHash: batchHash, StreamHash: streamHash,
		Records: h.Count(),
	}, nil
}

// streamEquivPlan decomposes the grid into one job per (load, approach)
// cell.
func streamEquivPlan(opt StreamEquivOptions, seed uint64) *runner.Plan {
	as := opt.Exec.Assembly
	plan := &runner.Plan{}
	for _, load := range []LoadLevel{PeakLoad, HalfLoad} {
		for _, ap := range Approaches() {
			load, ap := load, ap
			key := fmt.Sprintf("streamequiv/%s/%s", load, ap)
			plan.Add(key, func() (any, error) {
				cell, err := streamEquivRun(as, ap, load, seed)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", key, err)
				}
				return cell, nil
			})
		}
	}
	return plan
}

// StreamEquiv runs the streaming-vs-batch grid: SandyBridge, the stress
// workload, both load levels, all three attribution approaches.
func StreamEquiv(opt StreamEquivOptions, seed uint64) (*StreamEquivResult, error) {
	cells, err := runner.Collect[StreamEquivCell](streamEquivPlan(opt, seed), opt.Exec.Jobs)
	if err != nil {
		return nil, err
	}
	return &StreamEquivResult{Cells: cells}, nil
}

// StreamEquivEx runs the default grid under an execution configuration.
func StreamEquivEx(ex Exec, seed uint64) (*StreamEquivResult, error) {
	return StreamEquiv(StreamEquivOptions{Exec: ex}, seed)
}

// AllIdentical reports whether every cell's two arms attributed
// identically.
func (r *StreamEquivResult) AllIdentical() bool {
	for _, c := range r.Cells {
		if !c.Identical() {
			return false
		}
	}
	return len(r.Cells) > 0
}

// errTable renders the cells in the Figure 8 row format from one arm's
// errors. The batch and stream tables must be byte-identical — the
// rendered form of the equivalence claim, pinned by the experiment test.
func (r *StreamEquivResult) errTable(title string, pick func(StreamEquivCell) float64) string {
	t := &Table{
		Title:  title,
		Header: []string{"machine", "workload", "load", "core-only", "chip-share", "recalibrated"},
	}
	type key struct {
		w string
		l LoadLevel
	}
	grid := map[key]map[core.Approach]float64{}
	var order []key
	for _, c := range r.Cells {
		k := key{c.Workload, c.Load}
		if grid[k] == nil {
			grid[k] = map[core.Approach]float64{}
			order = append(order, k)
		}
		grid[k][c.Approach] = pick(c)
	}
	for _, k := range order {
		t.AddRow(cpu.SandyBridge.Name, k.w, k.l.String(),
			pct(grid[k][core.ApproachCoreOnly]),
			pct(grid[k][core.ApproachChipShare]),
			pct(grid[k][core.ApproachRecalibrated]))
	}
	return t.String()
}

// BatchTable renders the batch arm's validation errors in fig8 format.
func (r *StreamEquivResult) BatchTable() string {
	return r.errTable("validation error (batch harness)", func(c StreamEquivCell) float64 { return c.BatchError })
}

// StreamTable renders the streaming arm's validation errors in fig8
// format.
func (r *StreamEquivResult) StreamTable() string {
	return r.errTable("validation error (streaming engine)", func(c StreamEquivCell) float64 { return c.StreamError })
}

// Render prints both arms' fig8-format tables and the per-cell identity
// verdicts.
func (r *StreamEquivResult) Render() string {
	t := &Table{
		Title:  "streaming vs batch attribution equivalence",
		Header: []string{"load", "approach", "batch err", "stream err", "records", "identical"},
		Caption: "identical = SHA-256 of canonical per-request accounting matches between the\n" +
			"batch harness and the streaming engine on the same deterministic trace",
	}
	for _, c := range r.Cells {
		ident := "YES"
		if !c.Identical() {
			ident = "NO"
		}
		t.AddRow(c.Load.String(), c.Approach.String(),
			pct(c.BatchError), pct(c.StreamError),
			fmt.Sprintf("%d", c.Records), ident)
	}
	return r.BatchTable() + "\n" + r.StreamTable() + "\n" + t.String()
}
