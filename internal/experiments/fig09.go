package experiments

import (
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/workload"
)

// Fig9Cell is one stacked bar of Figure 9.
type Fig9Cell struct {
	Load LoadLevel
	// MeasuredW is the measured system active power; SumOfRequestsW and
	// BackgroundW are the modeled components.
	MeasuredW       float64
	SumOfRequestsW  float64
	BackgroundW     float64
	BackgroundShare float64
}

// Fig9Result reproduces Figure 9: the Google App Engine system's background
// processing — activity with no traceable connection to any request, which
// the facility accounts in a special container — amounts to roughly a third
// of total system active power for GAE-Vosao on SandyBridge.
type Fig9Result struct {
	Cells []Fig9Cell
}

// Fig9 measures GAE-Vosao at peak and half load.
func Fig9(seed uint64) (*Fig9Result, error) {
	res := &Fig9Result{}
	for _, load := range []LoadLevel{PeakLoad, HalfLoad} {
		r, err := Run(cpu.SandyBridge, core.ApproachRecalibrated,
			RunSpec{Workload: workload.GAE{}, Load: load}, seed)
		if err != nil {
			return nil, err
		}
		cell := Fig9Cell{
			Load:           load,
			MeasuredW:      r.MeasuredActiveW,
			SumOfRequestsW: r.AccountedW - r.BackgroundW,
			BackgroundW:    r.BackgroundW,
		}
		if r.AccountedW > 0 {
			cell.BackgroundShare = r.BackgroundW / r.AccountedW
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render prints the stacked bars.
func (r *Fig9Result) Render() string {
	t := &Table{
		Title:  "Figure 9: GAE background processing (GAE-Vosao on SandyBridge)",
		Header: []string{"load", "measured", "sum of requests", "background", "background share"},
		Caption: "Almost one third of total system active power is attributable to GAE\n" +
			"background processing, captured by the special background container.",
	}
	for _, c := range r.Cells {
		t.AddRow(c.Load.String(), w1(c.MeasuredW), w1(c.SumOfRequestsW), w1(c.BackgroundW), pct(c.BackgroundShare))
	}
	return t.String()
}
