package experiments

import (
	"strings"
	"testing"
)

// TestStreamEquivIdenticalToBatch is the experiment-level acceptance
// criterion of the streaming engine: on the fig8 trace (SandyBridge,
// stress workload, both load levels, all three attribution approaches)
// the streaming engine's per-request accounting hashes equal the batch
// harness's in every cell, and the streaming arm's rendered fig8-format
// validation table is byte-identical to the batch renderer's.
func TestStreamEquivIdenticalToBatch(t *testing.T) {
	r, err := StreamEquiv(StreamEquivOptions{Exec: Exec{Jobs: 4}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(r.Cells))
	}
	for _, c := range r.Cells {
		if !c.Identical() {
			t.Errorf("%s/%s: accounting hashes differ: batch %s, stream %s",
				c.Load, c.Approach, c.BatchHash, c.StreamHash)
		}
		if c.Records == 0 {
			t.Errorf("%s/%s: streaming arm emitted no records", c.Load, c.Approach)
		}
	}
	batch, streamed := r.BatchTable(), r.StreamTable()
	stripTitle := func(s string) string {
		_, rest, _ := strings.Cut(s, "\n")
		return rest
	}
	if stripTitle(batch) != stripTitle(streamed) {
		t.Fatalf("streaming fig8 table not byte-identical to batch renderer:\n--- batch ---\n%s\n--- stream ---\n%s", batch, streamed)
	}
	if !r.AllIdentical() {
		t.Fatal("AllIdentical is false on an identical grid")
	}
	if !strings.Contains(r.Render(), "YES") || strings.Contains(r.Render(), "\tNO") {
		t.Fatalf("render disagrees with cells:\n%s", r.Render())
	}
}
