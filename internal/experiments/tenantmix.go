package experiments

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
	"powercontainers/internal/workload"
)

// TenantMixBudgetW is the power budget imposed on the virus tenant in the
// budgeted arm. Two closed-loop viruses draw roughly 19 W unthrottled on
// Westmere, so the budget binds hard while staying far above the two
// requests' duty-floor draw — the regime where worst-first enforcement
// dithers tightly around the cap.
const TenantMixBudgetW = 12

// tenantMix window bounds: the virtual measurement window over which
// per-tenant attributed power, victim latency and victim energy are taken.
const (
	tenantMixWarmup = 2 * sim.Second
	tenantMixEnd    = 10 * sim.Second
)

// TenantMixCell is one arm of the multi-tenant isolation experiment.
type TenantMixCell struct {
	// Arm is "solo" (victim tenant alone), "mix" (virus tenant added,
	// no budget) or "budgeted" (virus tenant under TenantMixBudgetW).
	Arm string
	// BudgetW is the virus tenant's power budget (0 = none).
	BudgetW float64
	// VictimW / VirusW are the tenants' attributed active power over the
	// measurement window, from the hierarchy accumulators.
	VictimW float64
	VirusW  float64
	// VictimLatencyMs is the mean response time of victim requests
	// completed in the window.
	VictimLatencyMs float64
	// VictimEnergyMJ is the mean attributed energy per completed victim
	// request in the window, in millijoules.
	VictimEnergyMJ float64
	// VictimIntrinsicMJ is the chip-share-free portion of VictimEnergyMJ:
	// the victim's own activity energy. The chip-maintenance share a
	// request is apportioned legitimately shrinks when more cores are
	// active (Eq. 3), so intrinsic energy is the isolation metric — it
	// must not move when a virus tenant appears.
	VictimIntrinsicMJ float64
	// VictimRequests counts the victim completions in the window.
	VictimRequests int
	// BudgetThrottles counts enforcement decisions against the virus
	// tenant.
	BudgetThrottles uint64
}

// TenantMixResult reports the three-arm grid.
type TenantMixResult struct {
	Cells []TenantMixCell
}

// tenantMixRun executes one arm. Every arm uses the same seed, so the
// victim tenant's arrival process and request parameters are identical
// across arms (the virus deployment draws from independent rng forks):
// comparing the victim's latency and energy across arms isolates the
// interference the virus tenant actually causes.
func tenantMixRun(as Assembly, arm string, seed uint64) (TenantMixCell, error) {
	m, err := as.NewMachine(cpu.Westmere, core.ApproachChipShare, seed)
	if err != nil {
		return TenantMixCell{}, err
	}
	h := core.NewHierarchy()
	m.Fac.AttachHierarchy(h)
	cell := TenantMixCell{Arm: arm}
	if arm == "budgeted" {
		cell.BudgetW = TenantMixBudgetW
		h.Tenant("mallory").Budget = core.Budget{PowerW: TenantMixBudgetW}
	}

	// Victim tenant: the GAE Vosao application at a light open-loop load,
	// filed under acme/web.
	dep := workload.GAE{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	gen.ServiceFor = func(string) (string, string) { return "acme", "web" }
	t0, t1 := tenantMixWarmup, tenantMixEnd
	gen.RunOpenLoop(0.3*PeakRate(m.K.Spec, dep), t1, m.Rng.Fork(13))

	// Virus tenant: two closed-loop clients of pure power viruses, filed
	// under mallory/burn (absent in the solo arm).
	if arm != "solo" {
		vdep := workload.GAE{VirusLoadFraction: 1, DisableBackground: true}.Deploy(m.K, m.Rng.Fork(12))
		vgen := server.NewLoadGen(m.K, m.Fac, vdep)
		vgen.ServiceFor = func(string) (string, string) { return "mallory", "burn" }
		vgen.RunClosedLoop(2, t1)
	}

	// A far-above-draw system target keeps §3.4 fair conditioning from
	// ever binding: whatever throttling happens is budget enforcement.
	m.Fac.EnableConditioning(1e6)

	var acme0, mallory0 core.Usage
	m.Eng.At(t0, func() {
		acme0 = h.Tenant("acme").Usage()
		mallory0 = h.Tenant("mallory").Usage()
	})
	var acme1, mallory1 core.Usage
	m.Eng.At(t1, func() {
		acme1 = h.Tenant("acme").Usage()
		mallory1 = h.Tenant("mallory").Usage()
	})
	m.Eng.RunUntil(t1 + 2*sim.Second)
	if err := m.FinalizeAudit(); err != nil {
		return TenantMixCell{}, err
	}

	windowSec := float64(t1-t0) / float64(sim.Second)
	cell.VictimW = (acme1.EnergyJ() - acme0.EnergyJ()) / windowSec
	cell.VirusW = (mallory1.EnergyJ() - mallory0.EnergyJ()) / windowSec
	cell.BudgetThrottles = h.Tenant("mallory").BudgetThrottles()

	var lat, energy, intrinsic stats.Sample
	for _, r := range gen.Completed() {
		if !r.Finished() || r.Done < t0 || r.Done >= t1 || r.Cont == nil {
			continue
		}
		lat.Observe(float64(r.ResponseTime()) / float64(sim.Millisecond))
		energy.Observe(1e3 * r.Cont.EnergyJ())
		intrinsic.Observe(1e3 * (r.Cont.EnergyJ() - r.Cont.ChipEnergyJ))
	}
	cell.VictimRequests = lat.Count()
	cell.VictimLatencyMs = lat.Mean()
	cell.VictimEnergyMJ = energy.Mean()
	cell.VictimIntrinsicMJ = intrinsic.Mean()
	return cell, nil
}

// tenantMixPlan decomposes the experiment into one job per arm. Every arm
// derives the same per-experiment seed, so the victim trace is common.
func tenantMixPlan(ex Exec, seed uint64) *runner.Plan {
	as := ex.Assembly
	cellSeed := runner.SeedFor(seed, "tenantmix")
	plan := &runner.Plan{}
	for _, arm := range []string{"solo", "mix", "budgeted"} {
		arm := arm
		plan.Add("tenantmix/"+arm, func() (any, error) {
			cell, err := tenantMixRun(as, arm, cellSeed)
			if err != nil {
				return nil, fmt.Errorf("tenantmix/%s: %w", arm, err)
			}
			return cell, nil
		})
	}
	return plan
}

// TenantMixEx runs the multi-tenant isolation experiment: a victim tenant
// under light load, a virus tenant hammering the machine, and the same mix
// with the virus tenant under a power budget. The budgeted arm must cap
// the virus tenant near its budget while leaving the victim's latency and
// per-request energy at their solo values.
func TenantMixEx(ex Exec, seed uint64) (*TenantMixResult, error) {
	cells, err := runner.Collect[TenantMixCell](tenantMixPlan(ex, seed), ex.Jobs)
	if err != nil {
		return nil, err
	}
	return &TenantMixResult{Cells: cells}, nil
}

// Cell returns the named arm.
func (r *TenantMixResult) Cell(arm string) (TenantMixCell, bool) {
	for _, c := range r.Cells {
		if c.Arm == arm {
			return c, true
		}
	}
	return TenantMixCell{}, false
}

// Render prints the three arms side by side.
func (r *TenantMixResult) Render() string {
	t := &Table{
		Title:  "tenantmix: per-tenant budget enforcement under a virus tenant (Westmere)",
		Header: []string{"arm", "budget", "victim W", "virus W", "victim ms", "victim mJ/req", "intrinsic mJ", "requests", "throttles"},
		Caption: "victim = acme/web (GAE Vosao, open loop); virus = mallory/burn (2 closed-loop\n" +
			"power viruses); budgeted arm caps mallory's attributed power at its budget while\n" +
			"the victim's latency and intrinsic energy stay at their solo values (total mJ/req\n" +
			"moves only by the Eq. 3 chip-share dilution more active cores legitimately cause)",
	}
	for _, c := range r.Cells {
		budget := "—"
		if c.BudgetW > 0 {
			budget = w1(c.BudgetW)
		}
		t.AddRow(c.Arm, budget, w1(c.VictimW), w1(c.VirusW),
			fmt.Sprintf("%.2f ms", c.VictimLatencyMs),
			fmt.Sprintf("%.1f mJ", c.VictimEnergyMJ),
			fmt.Sprintf("%.1f mJ", c.VictimIntrinsicMJ),
			fmt.Sprintf("%d", c.VictimRequests),
			fmt.Sprintf("%d", c.BudgetThrottles))
	}
	return t.String()
}
