package experiments

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Fig1Result reproduces Figure 1: the incremental (per-core) power increase
// as 1..N cores of a CPU-spinning microbenchmark are utilized, on the
// quad-core SandyBridge and the dual-socket dual-core Woodcrest. The
// non-proportional first increments expose the shared chip maintenance
// power; on Woodcrest the first TWO increments are high because the
// scheduler spreads the first two tasks across both sockets.
type Fig1Result struct {
	Machines []Fig1Machine
}

// Fig1Machine is one machine's incremental power staircase.
type Fig1Machine struct {
	Spec cpu.MachineSpec
	// ActiveW[k] is measured machine active power with k busy cores
	// (index 0 = idle = 0 active watts).
	ActiveW []float64
	// IncrementW[k] is ActiveW[k+1] − ActiveW[k].
	IncrementW []float64
}

// Fig1 measures the incremental power staircases.
func Fig1(seed uint64) (*Fig1Result, error) {
	res := &Fig1Result{}
	// The paper's figure shows SandyBridge and Woodcrest; Westmere's
	// twelve-core staircase is included as a bonus row (its first two
	// increments also activate the two sockets).
	for _, spec := range []cpu.MachineSpec{cpu.SandyBridge, cpu.Woodcrest, cpu.Westmere} {
		m := Fig1Machine{Spec: spec, ActiveW: []float64{0}}
		for k := 1; k <= spec.Cores(); k++ {
			w, err := spinActivePower(spec, k, seed+uint64(k))
			if err != nil {
				return nil, err
			}
			m.ActiveW = append(m.ActiveW, w)
		}
		for k := 1; k < len(m.ActiveW); k++ {
			m.IncrementW = append(m.IncrementW, m.ActiveW[k]-m.ActiveW[k-1])
		}
		res.Machines = append(res.Machines, m)
	}
	return res, nil
}

// spinActivePower measures machine active power with k spinning tasks.
// The caller derives a distinct seed per point (base+k), keeping the
// derivation where both inputs are in scope.
func spinActivePower(spec cpu.MachineSpec, k int, seed uint64) (float64, error) {
	m, err := NewMachine(spec, core.ApproachChipShare, seed)
	if err != nil {
		return 0, err
	}
	spin := workload.MicroBenches()[0] // cpu-spin
	for i := 0; i < k; i++ {
		m.K.Spawn("spin", kernel.Script(kernel.OpCompute{
			BaseCycles: 1e12, Act: spin.Act,
		}), nil)
	}
	m.Eng.RunUntil(6 * sim.Second)
	return wattsupWindowMean(m.Wattsup, m.Eng.Now(), 1*sim.Second, 3*sim.Second)
}

// Render prints the figure as text.
func (r *Fig1Result) Render() string {
	t := &Table{
		Title:  "Figure 1: incremental (per-core) power of a CPU-spinning microbenchmark",
		Header: []string{"machine", "transition", "incremental power"},
		Caption: "The increment from idle to the first busy core (and, on the dual-socket\n" +
			"Woodcrest, to the second, which activates the second socket) exceeds later\n" +
			"increments: shared chip maintenance power does not scale with core events.",
	}
	for _, m := range r.Machines {
		for k, inc := range m.IncrementW {
			var trans string
			if k == 0 {
				trans = "idle -> 1 core"
			} else {
				trans = fmt.Sprintf("%d -> %d cores", k, k+1)
			}
			t.AddRow(m.Spec.Name, trans, w1(inc))
		}
	}
	return t.String()
}
