package experiments

import (
	"strings"
	"testing"
)

// TestCrashMatrixExactRecovery is the tentpole property: for every crash
// point in the default matrix — WAL appends torn at several depths, pre-
// and post-fsync deaths, the checkpoint write/fsync/rename pipeline, and
// bit-flip/truncation damage applied while the process is down — the
// supervised restart recovers a durable stream whose SHA-256 equals the
// uninterrupted golden run's. Every plan must actually fire (a crash
// point that never triggers proves nothing), and the sweep must exercise
// both recovery modes.
func TestCrashMatrixExactRecovery(t *testing.T) {
	r, err := CrashMatrixEx(NewRunExec(0), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) < 12 {
		t.Fatalf("matrix has %d crash points, want ≥ 12", len(r.Cells))
	}
	if r.Records == 0 || r.GoldenSHA == "" {
		t.Fatalf("golden run empty: %d records, sha %q", r.Records, r.GoldenSHA)
	}
	modes := map[string]int{}
	for _, c := range r.Cells {
		if c.Restarts < 1 {
			t.Errorf("%s: crash never fired (0 restarts)", c.Spec)
		}
		if !c.Exact {
			t.Errorf("%s: recovered stream sha %s != golden %s (frontier %d, mode %s)",
				c.Spec, c.SHA, r.GoldenSHA, c.Frontier, c.Mode)
		}
		modes[c.Mode]++
	}
	if modes["checkpoint"] == 0 || modes["scratch"] == 0 {
		t.Errorf("sweep did not exercise both recovery modes: %v", modes)
	}
	// Corruption cells must have needed a tail repair somewhere.
	repaired := 0
	for _, c := range r.Cells {
		if strings.Contains(c.Spec, "corrupt:") && c.Truncations > 0 {
			repaired++
		}
	}
	if repaired == 0 {
		t.Error("no corruption cell recorded a WAL tail repair")
	}
	if !strings.Contains(r.Render(), "YES") {
		t.Fatal("render missing exact column")
	}
}
