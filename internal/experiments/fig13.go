package experiments

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/runner"
	"powercontainers/internal/stats"
	"powercontainers/internal/workload"
)

// Fig13Row is one workload's cross-machine energy comparison.
type Fig13Row struct {
	Workload string
	// EnergySB and EnergyWC are mean per-request active energy (J) on
	// SandyBridge and Woodcrest at peak load, from container profiles.
	EnergySB float64
	EnergyWC float64
	// Ratio is EnergySB / EnergyWC — the paper's cross-machine active
	// energy usage ratio (lower = SandyBridge relatively more efficient).
	Ratio float64
}

// Fig13Result reproduces Figure 13: per-workload cross-machine active
// energy usage ratios between the newer SandyBridge and the older
// Woodcrest machine, captured by container energy profiling at peak load.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13Workloads lists the figure's five workloads.
func Fig13Workloads() []workload.Workload {
	return []workload.Workload{
		workload.RSA{},
		workload.Solr{},
		workload.WeBWorK{},
		workload.Stress{},
		workload.GAE{},
	}
}

// Fig13 profiles request energy on both machines.
func Fig13(seed uint64) (*Fig13Result, error) {
	return Fig13Ex(Exec{}, seed)
}

// Fig13Ex runs Figure 13 with explicit execution configuration: one job
// per (workload, machine) profiling run, reduced into per-workload ratio
// rows in workload order.
func Fig13Ex(ex Exec, seed uint64) (*Fig13Result, error) {
	wls := Fig13Workloads()
	specs := []cpu.MachineSpec{cpu.SandyBridge, cpu.Woodcrest}
	as := ex.Assembly
	plan := &runner.Plan{}
	for _, wl := range wls {
		for _, spec := range specs {
			key := fmt.Sprintf("fig13/%s/%s", wl.Name(), spec.Name)
			plan.Add(key, func() (any, error) {
				r, err := as.Run(spec, core.ApproachRecalibrated, RunSpec{Workload: wl, Load: PeakLoad}, seed)
				if err != nil {
					return nil, fmt.Errorf("fig13 %s on %s: %w", wl.Name(), spec.Name, err)
				}
				var e stats.Summary
				for _, req := range r.Gen.Completed() {
					if req.Finished() && req.Done >= r.T0 && req.Done < r.T1 {
						e.Observe(req.Cont.EnergyJ())
					}
				}
				if e.Count() == 0 {
					return nil, fmt.Errorf("fig13 %s on %s: no requests", wl.Name(), spec.Name)
				}
				return e.Mean(), nil
			})
		}
	}
	means, err := runner.Collect[float64](plan, ex.Jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{}
	for i, wl := range wls {
		sb, wc := means[2*i], means[2*i+1]
		res.Rows = append(res.Rows, Fig13Row{
			Workload: wl.Name(),
			EnergySB: sb,
			EnergyWC: wc,
			Ratio:    sb / wc,
		})
	}
	return res, nil
}

// Render prints the ratios.
func (r *Fig13Result) Render() string {
	t := &Table{
		Title:  "Figure 13: cross-machine active energy usage ratio (SandyBridge / Woodcrest)",
		Header: []string{"workload", "energy on SandyBridge", "energy on Woodcrest", "ratio"},
		Caption: "paper's ratios range from 0.22 (RSA-crypto) to 0.91 (Stress): compute-bound\n" +
			"work strongly prefers the newer machine, memory-bound work much less so.",
	}
	for _, row := range r.Rows {
		t.AddRow(row.Workload, j2(row.EnergySB), j2(row.EnergyWC), fmt.Sprintf("%.2f", row.Ratio))
	}
	return t.String()
}
