package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple text table for rendering experiment results in the
// paper's row/series format.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Caption string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	return b.String()
}

// w1 formats watts with one decimal.
func w1(v float64) string { return fmt.Sprintf("%.1f W", v) }

// pct formats a fraction as a percentage.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// j2 formats joules with two decimals.
func j2(v float64) string { return fmt.Sprintf("%.2f J", v) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
