package experiments

import (
	"fmt"

	"powercontainers/internal/cluster"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Fig14Policy is one distribution policy's outcome.
type Fig14Policy struct {
	Policy cluster.Policy
	// ActiveW[node] is each machine's measured active power over the
	// window (node 0 = SandyBridge, node 1 = Woodcrest); TotalW is the
	// combined active energy usage rate of Figure 14.
	ActiveW []float64
	TotalW  float64
	// RespMs[app] is the mean response time (Table 1).
	RespMs map[string]float64
	// Dispatched[node][app] counts placements.
	Dispatched []map[string]int
}

// Fig14Result reproduces Figure 14 and Table 1: energy usage rate and mean
// response times of a combined GAE-Vosao + RSA-crypto workload on a
// two-machine heterogeneous cluster under the three distribution policies.
type Fig14Result struct {
	Policies []Fig14Policy
	// AffinityGAE and AffinityRSA are the container-profiled
	// cross-machine energy ratios the workload-aware policy used.
	AffinityGAE, AffinityRSA float64
	// SavingVsSimple and SavingVsMachineAware are the workload-aware
	// policy's combined-energy savings.
	SavingVsSimple       float64
	SavingVsMachineAware float64
}

// fig14Specs returns the cluster machines: the newer SandyBridge first.
func fig14Specs() []cpu.MachineSpec {
	return []cpu.MachineSpec{cpu.SandyBridge, cpu.Woodcrest}
}

// Fig14 runs the cluster experiment.
func Fig14(seed uint64) (*Fig14Result, error) {
	return Fig14Ex(Exec{}, seed)
}

// Fig14Ex runs the cluster experiment with explicit execution
// configuration. The whole experiment is one job: its machines
// intentionally share one timeline (and the profiling phase feeds the
// distribution phase), so only the per-run audit config is threaded.
func Fig14Ex(ex Exec, seed uint64) (*Fig14Result, error) {
	as := ex.Assembly
	specs := fig14Specs()

	// --- Profiling phase: container energy profiles on both machines
	// give each app's cross-machine affinity ratio (§3.4). ---
	affinity := map[string]float64{}
	svcSec := map[string][]float64{}
	for _, wl := range []workload.Workload{workload.GAE{}, workload.RSA{}} {
		var mean [2]float64
		for i, spec := range specs {
			r, err := as.Run(spec, core.ApproachRecalibrated, RunSpec{Workload: wl, Load: PeakLoad}, seed)
			if err != nil {
				return nil, err
			}
			var sum float64
			n := 0
			for _, req := range r.Gen.Completed() {
				if req.Finished() && req.Done >= r.T0 && req.Done < r.T1 {
					sum += req.Cont.EnergyJ()
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("fig14 profiling: no %s requests on %s", wl.Name(), spec.Name)
			}
			mean[i] = sum / float64(n)
		}
		affinity[wl.Name()] = mean[0] / mean[1]
	}

	res := &Fig14Result{
		AffinityGAE: affinity["GAE-Vosao"],
		AffinityRSA: affinity["RSA-crypto"],
	}

	// --- Distribution phase. ---
	for _, pol := range []cluster.Policy{cluster.SimpleBalance, cluster.MachineAware, cluster.WorkloadAware} {
		p, err := fig14Run(as, pol, affinity, svcSec, seed)
		if err != nil {
			return nil, fmt.Errorf("fig14 %s: %w", pol, err)
		}
		res.Policies = append(res.Policies, *p)
	}
	simple := res.Policies[0].TotalW
	machine := res.Policies[1].TotalW
	aware := res.Policies[2].TotalW
	if simple > 0 {
		res.SavingVsSimple = 1 - aware/simple
	}
	if machine > 0 {
		res.SavingVsMachineAware = 1 - aware/machine
	}
	return res, nil
}

func fig14Run(as Assembly, pol cluster.Policy, affinity map[string]float64, _ map[string][]float64, seed uint64) (*Fig14Policy, error) {
	specs := fig14Specs()
	eng := sim.NewEngine()
	rng := sim.NewRand(seed * 31)

	var nodes []*cluster.Node
	var meters []*power.WattsupMeter
	var machines []*Machine
	deps := make([]map[string]*server.Deployment, len(specs))

	wls := map[string]workload.Workload{
		"GAE-Vosao":  workload.GAE{},
		"RSA-crypto": workload.RSA{},
	}
	appNames := []string{"GAE-Vosao", "RSA-crypto"}

	var apps []*cluster.App
	for _, name := range appNames {
		apps = append(apps, &cluster.App{Name: name, AffinityRatio: affinity[name]})
	}

	for i, spec := range specs {
		m, err := as.NewMachineOnEngine(eng, spec, core.ApproachChipShare, seed+uint64(i)*17)
		if err != nil {
			return nil, err
		}
		deps[i] = map[string]*server.Deployment{}
		node := cluster.NewNode(m.K, m.Fac, apps, func(app *cluster.App, k *kernel.Kernel) *server.Deployment {
			dep := wls[app.Name].Deploy(k, m.Rng.Fork(uint64(len(app.Name))))
			deps[i][app.Name] = dep
			return dep
		})
		// GAE's background processing permanently occupies part of the
		// node; the dispatcher must plan around it.
		node.ReservedUtil = workload.GAEBackgroundCoreDemand(spec) / float64(spec.Cores())
		nodes = append(nodes, node)
		meters = append(meters, m.Wattsup)
		machines = append(machines, m)
	}

	// Per-node service demands and the request factories (payloads are
	// machine-independent; use node 0's factory).
	for _, app := range apps {
		for i := range specs {
			app.SvcSec = append(app.SvcSec, deps[i][app.Name].MeanServiceSec)
		}
		app.NewRequest = deps[0][app.Name].NewRequest
	}

	d := cluster.NewDispatcher(eng, nodes, apps, pol)
	laud := as.collector().newAuditor(fmt.Sprintf("cluster/%s", pol))
	if laud != nil {
		d.Ledger.Audit = laud
	}

	// Offered volume: the maximum supportable under simple load balance —
	// the Woodcrest machine saturates first at half of each app's volume
	// — with a 50/50 busy-time composition between the two apps, after
	// the capacity its standing background processing consumes.
	wcCores := float64(specs[1].Cores()) * (1 - nodes[1].ReservedUtil)
	rates := map[string]float64{}
	for _, app := range apps {
		rates[app.Name] = 1.03 * wcCores / app.SvcSec[1]
	}

	const (
		until = 30 * sim.Second
		t0    = 5 * sim.Second
		t1    = 25 * sim.Second
	)
	d.RunOpenLoop(rates, until, rng)
	eng.RunUntil(until + 3*sim.Second)

	for _, m := range machines {
		if err := m.FinalizeAudit(); err != nil {
			return nil, err
		}
	}
	if laud != nil {
		laud.CheckLedger(d.Ledger, d.Completed(), eng.Now())
		if err := laud.Err(); err != nil {
			return nil, err
		}
	}

	out := &Fig14Policy{Policy: pol, RespMs: d.ResponseTimes(), Dispatched: d.DispatchCounts()}
	for _, meter := range meters {
		w, err := wattsupWindowMean(meter, eng.Now(), t0, t1)
		if err != nil {
			return nil, err
		}
		out.ActiveW = append(out.ActiveW, w)
		out.TotalW += w
	}
	return out, nil
}

// Render prints Figure 14 and Table 1.
func (r *Fig14Result) Render() string {
	t := &Table{
		Title:  "Figure 14: active energy usage rate under three request distribution policies",
		Header: []string{"policy", "SandyBridge", "Woodcrest", "combined"},
		Caption: fmt.Sprintf("workload-aware saves %s vs simple balance and %s vs machine-aware\n"+
			"(paper: 30%% and 25%%); profiled affinity ratios: GAE %.2f, RSA %.2f",
			pct(r.SavingVsSimple), pct(r.SavingVsMachineAware), r.AffinityGAE, r.AffinityRSA),
	}
	for _, p := range r.Policies {
		t.AddRow(p.Policy.String(), w1(p.ActiveW[0]), w1(p.ActiveW[1]), w1(p.TotalW))
	}
	out := t.String()

	t2 := &Table{
		Title:  "Table 1: average request response time under the three policies",
		Header: []string{"policy", "GAE-Vosao", "RSA-crypto"},
		Caption: "paper: simple balance 537/1728 ms, machine-aware 159/66 ms,\n" +
			"workload-aware 131/50 ms",
	}
	for _, p := range r.Policies {
		t2.AddRow(p.Policy.String(),
			fmt.Sprintf("%.0f ms", p.RespMs["GAE-Vosao"]),
			fmt.Sprintf("%.0f ms", p.RespMs["RSA-crypto"]))
	}
	t3 := &Table{
		Title:  "request placement (diagnostic)",
		Header: []string{"policy", "node", "GAE-Vosao", "RSA-crypto"},
	}
	for _, p := range r.Policies {
		for node, counts := range p.Dispatched {
			name := fig14Specs()[node].Name
			t3.AddRow(p.Policy.String(), name,
				fmt.Sprintf("%d", counts["GAE-Vosao"]), fmt.Sprintf("%d", counts["RSA-crypto"]))
		}
	}
	return out + "\n" + t2.String() + "\n" + t3.String()
}
