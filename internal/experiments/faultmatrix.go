package experiments

import (
	"fmt"

	"powercontainers/internal/align"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/faults"
	"powercontainers/internal/model"
	"powercontainers/internal/runner"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// FaultMatrixCell is one run of the fault matrix: a meter-fault rate with
// the degradation machinery either armed or disabled.
type FaultMatrixCell struct {
	// Rate is the per-sample fault probability driving the injected
	// meter faults (dropout at Rate, spikes at Rate·SpikeFrac).
	Rate float64
	// Degraded selects whether robust recalibration (MAD outlier
	// rejection + refit sanity gating) was enabled.
	Degraded bool
	// AccountedW is the facility's aggregate profiled request power.
	AccountedW float64
	// Injected counts fault events the plan actually delivered into the
	// meter stream.
	Injected int
	// Rejects counts aligned pairs the robust recalibrator discarded.
	Rejects int
	// Error is the attribution error against the same-configuration
	// fault-free run, filled in during reduction.
	Error float64
}

// FaultMatrixResult reports attribution error versus injected meter-fault
// rate, with and without graceful degradation (robustness extension; the
// paper's recalibration of §3.2 assumes a trustworthy meter).
type FaultMatrixResult struct {
	Cells []FaultMatrixCell
}

// FaultMatrixOptions trims the experiment.
type FaultMatrixOptions struct {
	// Rates are the per-sample fault probabilities; the 0 cell doubles
	// as the fault-free baseline. Default {0, 0.05, 0.10, 0.20}.
	Rates []float64
	// SpikeFrac scales the spike probability relative to the rate
	// (default 0.5: at rate p, dropout p and spikes 0.5p).
	SpikeFrac float64
	// SpikeMag is the spike multiplier (default 8).
	SpikeMag float64
	// Exec configures parallelism and per-run assembly.
	Exec Exec
}

// faultCounter counts delivered fault events, forwarding to an optional
// downstream sink (the run's auditor when auditing is enabled).
type faultCounter struct {
	n    int
	next faults.AuditSink
}

func (c *faultCounter) OnFault(e faults.Event) {
	c.n++
	if c.next != nil {
		c.next.OnFault(e)
	}
}

// faultMatrixRun executes one cell: a SandyBridge machine whose on-chip
// meter is wrapped with the cell's fault plan before recalibration is
// wired against it.
func faultMatrixRun(as Assembly, opt FaultMatrixOptions, rate float64, degraded bool,
	seed, planSeed uint64) (FaultMatrixCell, error) {

	if !degraded && rate > 0 {
		// The plain faulted cells run with every defense ablated: their
		// attribution is supposed to diverge from ground truth, so the
		// conservation auditor does not apply (the ablations experiment
		// builds its deliberately-broken machines un-audited for the
		// same reason).
		as = Assembly{Audit: NewAuditCollector(false)}
	}
	m, err := as.NewMachine(cpu.SandyBridge, core.ApproachChipShare, seed)
	if err != nil {
		return FaultMatrixCell{}, err
	}
	counter := &faultCounter{}
	if m.Audit != nil {
		counter.next = m.Audit
	}
	plan := &faults.Plan{
		Seed: planSeed,
		Meter: &faults.MeterFaults{
			DropoutP: rate,
			SpikeP:   rate * opt.SpikeFrac,
			SpikeMag: opt.SpikeMag,
		},
		Audit: counter,
	}
	meter := plan.WrapMeter(m.Chip)
	r := m.Fac.EnableRecalibration(meter, model.ScopePackage, m.Calib.Samples, 0)
	// Pin the known chip-meter delivery lag: the paper notes the lag on a
	// given system is unlikely to change dynamically, and estimating it
	// from a spiked sample stream would confound the degradation axis
	// with delay-search error.
	r.SetDelay(sim.Millisecond)
	if degraded {
		r.Robust = align.Robust{Enabled: true}
	}
	res, err := RunOn(m, RunSpec{Workload: workload.Stress{}, Load: HalfLoad})
	if err != nil {
		return FaultMatrixCell{}, err
	}
	return FaultMatrixCell{
		Rate:       rate,
		Degraded:   degraded,
		AccountedW: res.AccountedW,
		Injected:   counter.n,
		Rejects:    r.Rejected(),
	}, nil
}

// faultMatrixPlan decomposes the matrix into one job per (degraded, rate)
// cell. Every cell uses the same machine seed — the workload is identical
// across the grid — while the fault stream is seeded per cell.
func faultMatrixPlan(opt FaultMatrixOptions, seed uint64) *runner.Plan {
	as := opt.Exec.Assembly
	plan := &runner.Plan{}
	for _, degraded := range []bool{false, true} {
		for _, rate := range opt.Rates {
			rate, degraded := rate, degraded
			key := fmt.Sprintf("faultmatrix/p=%g/degraded=%v", rate, degraded)
			plan.Add(key, func() (any, error) {
				cell, err := faultMatrixRun(as, opt, rate, degraded, seed, runner.SeedFor(seed, key))
				if err != nil {
					return nil, fmt.Errorf("%s: %w", key, err)
				}
				return cell, nil
			})
		}
	}
	return plan
}

// FaultMatrix runs the fault grid, fanning independent cells out across
// opt.Exec.Jobs workers, and reduces each cell's attribution error against
// the fault-free cell of the same degradation setting.
func FaultMatrix(opt FaultMatrixOptions, seed uint64) (*FaultMatrixResult, error) {
	if opt.Rates == nil {
		opt.Rates = []float64{0, 0.05, 0.10, 0.20}
	}
	if opt.SpikeFrac == 0 {
		opt.SpikeFrac = 0.5
	}
	if opt.SpikeMag == 0 {
		opt.SpikeMag = 8
	}
	cells, err := runner.Collect[FaultMatrixCell](faultMatrixPlan(opt, seed), opt.Exec.Jobs)
	if err != nil {
		return nil, err
	}
	baseline := map[bool]float64{}
	for _, c := range cells {
		if c.Rate == 0 {
			baseline[c.Degraded] = c.AccountedW
		}
	}
	for i, c := range cells {
		base := baseline[c.Degraded]
		if base <= 0 {
			return nil, fmt.Errorf("faultmatrix: no fault-free baseline for degraded=%v", c.Degraded)
		}
		d := c.AccountedW - base
		if d < 0 {
			d = -d
		}
		cells[i].Error = d / base
	}
	return &FaultMatrixResult{Cells: cells}, nil
}

// FaultMatrixEx runs the default grid under an execution configuration.
func FaultMatrixEx(ex Exec, seed uint64) (*FaultMatrixResult, error) {
	return FaultMatrix(FaultMatrixOptions{Exec: ex}, seed)
}

// Cell returns the (rate, degraded) cell, if present.
func (r *FaultMatrixResult) Cell(rate float64, degraded bool) (FaultMatrixCell, bool) {
	for _, c := range r.Cells {
		if c.Rate == rate && c.Degraded == degraded {
			return c, true
		}
	}
	return FaultMatrixCell{}, false
}

// Render prints attribution error versus fault rate with degradation off
// and on.
func (r *FaultMatrixResult) Render() string {
	t := &Table{
		Title:  "fault matrix: attribution error vs injected meter-fault rate",
		Header: []string{"fault rate", "injected", "error (plain)", "error (degraded)", "rejected pairs"},
		Caption: "error = |aggregate profiled request power - fault-free same-config run| / fault-free\n" +
			"faults: sample dropout at rate p, x8 spikes at p/2; degraded = MAD outlier\n" +
			"rejection + refit sanity gating in the online recalibrator",
	}
	type row struct {
		plain, degraded FaultMatrixCell
	}
	grid := map[float64]*row{}
	var order []float64
	for _, c := range r.Cells {
		g := grid[c.Rate]
		if g == nil {
			g = &row{}
			grid[c.Rate] = g
			order = append(order, c.Rate)
		}
		if c.Degraded {
			g.degraded = c
		} else {
			g.plain = c
		}
	}
	for _, rate := range order {
		g := grid[rate]
		t.AddRow(
			fmt.Sprintf("%.0f%%", 100*rate),
			fmt.Sprintf("%d", g.plain.Injected),
			pct(g.plain.Error),
			pct(g.degraded.Error),
			fmt.Sprintf("%d", g.degraded.Rejects),
		)
	}
	return t.String()
}
