package experiments

import "testing"

// TestFaultMatrixDegradationProperty is the robustness acceptance
// criterion: under 10% meter dropout (plus spikes at half that rate),
// attribution stays within 5% of the fault-free run when degradation is
// enabled — and demonstrably does not when it is disabled.
func TestFaultMatrixDegradationProperty(t *testing.T) {
	r, err := FaultMatrix(FaultMatrixOptions{
		Rates: []float64{0, 0.10},
		Exec:  Exec{Jobs: 4},
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	degraded, ok := r.Cell(0.10, true)
	if !ok {
		t.Fatal("degraded 10% cell missing")
	}
	plain, ok := r.Cell(0.10, false)
	if !ok {
		t.Fatal("plain 10% cell missing")
	}
	if degraded.Injected == 0 || plain.Injected == 0 {
		t.Fatalf("fault injection inert: injected %d/%d events", plain.Injected, degraded.Injected)
	}
	if degraded.Error > 0.05 {
		t.Errorf("degraded attribution error %.1f%% exceeds 5%% under 10%% dropout", 100*degraded.Error)
	}
	if plain.Error <= 0.05 {
		t.Errorf("ablation inert: error without degradation is only %.1f%%", 100*plain.Error)
	}
	if degraded.Rejects == 0 {
		t.Error("robust recalibrator rejected no pairs under faults")
	}
	// The baseline cells define the error metric; they must be exact.
	for _, deg := range []bool{false, true} {
		if c, ok := r.Cell(0, deg); !ok || c.Error != 0 {
			t.Errorf("fault-free cell (degraded=%v) error %.3f, want 0", deg, c.Error)
		}
	}
}
