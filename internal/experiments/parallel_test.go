package experiments

import (
	"sync"
	"testing"

	"powercontainers/internal/calib"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// TestParallelMatchesSerial is the determinism contract of the runner
// refactor: a plan-decomposed experiment renders byte-identically whether
// its jobs run one at a time or fan out across eight workers.
func TestParallelMatchesSerial(t *testing.T) {
	cases := []struct {
		name   string
		render func(jobs int) (string, error)
	}{
		{"fig5", func(jobs int) (string, error) {
			r, err := Fig5(Fig5Options{
				Machines:  []cpu.MachineSpec{cpu.Woodcrest},
				Workloads: []workload.Workload{workload.Stress{}, workload.RSA{}},
				Exec:      Exec{Jobs: jobs},
			}, 7)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"fig8", func(jobs int) (string, error) {
			r, err := Fig8(Fig8Options{
				Machines:  []cpu.MachineSpec{cpu.SandyBridge},
				Workloads: []workload.Workload{workload.Stress{}},
				Exec:      Exec{Jobs: jobs},
			}, 7)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"ablations", func(jobs int) (string, error) {
			r, err := AblationsEx(Exec{Jobs: jobs}, 7)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// A hierarchical plan: per-tenant accounting and budget
		// enforcement must replay identically regardless of worker count.
		{"tenantmix", func(jobs int) (string, error) {
			r, err := TenantMixEx(Exec{Jobs: jobs}, 7)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		// A faulted plan: injected fault streams, robust rejection, and
		// the reduction against the fault-free baseline must all replay
		// identically regardless of worker count.
		{"faultmatrix", func(jobs int) (string, error) {
			r, err := FaultMatrix(FaultMatrixOptions{
				Rates: []float64{0, 0.10, 0.20},
				Exec:  Exec{Jobs: jobs},
			}, 7)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			serial, err := tc.render(1)
			if err != nil {
				t.Fatalf("jobs=1: %v", err)
			}
			parallel, err := tc.render(8)
			if err != nil {
				t.Fatalf("jobs=8: %v", err)
			}
			if serial != parallel {
				t.Errorf("rendering differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
					serial, parallel)
			}
		})
	}
}

// TestPerRunAuditIsolation runs two audited machines concurrently, each
// against its own collector, tampers with one, and requires the
// violations to land only in the tampered run's collector — never in the
// sibling's or the process default's.
func TestPerRunAuditIsolation(t *testing.T) {
	type outcome struct {
		c   *AuditCollector
		err error
	}
	runOne := func(seed uint64, tamper bool) outcome {
		c := NewAuditCollector(true)
		as := Assembly{Audit: c}
		m, err := as.NewMachine(cpu.SandyBridge, core.ApproachChipShare, seed)
		if err != nil {
			return outcome{c, err}
		}
		if m.Audit == nil {
			t.Error("enabled per-run collector did not attach an auditor")
			return outcome{c, nil}
		}
		if _, err := RunOn(m, RunSpec{
			Workload: workload.Stress{},
			Load:     HalfLoad,
			Window:   2 * sim.Second,
		}); err != nil {
			return outcome{c, err}
		}
		if tamper {
			// A ground-truth record with no matching recorder write is
			// what a broken accounting path would produce.
			m.Audit.OnRecord("core", 0, sim.Millisecond, 1e6)
			if err := m.FinalizeAudit(); err == nil {
				t.Error("tampered run finalized clean")
			}
		}
		return outcome{c, nil}
	}

	var wg sync.WaitGroup
	var clean, tampered outcome
	wg.Add(2)
	go func() { defer wg.Done(); clean = runOne(41, false) }()
	go func() { defer wg.Done(); tampered = runOne(43, true) }()
	wg.Wait()

	if clean.err != nil {
		t.Fatalf("clean run: %v", clean.err)
	}
	if tampered.err != nil {
		t.Fatalf("tampered run: %v", tampered.err)
	}
	if vs := clean.c.Violations(); len(vs) != 0 {
		t.Errorf("clean run's collector picked up %d violations: %v", len(vs), vs)
	}
	if vs := tampered.c.Violations(); len(vs) == 0 {
		t.Error("tampered run's collector saw no violations")
	}
	if vs := DefaultAudit().Violations(); len(vs) != 0 {
		t.Errorf("process-default collector picked up %d violations from per-run machines: %v", len(vs), vs)
	}
}

// TestPCAuditEnvCompat covers the PC_AUDIT=1 compatibility path: the
// process default enables, machines assembled without an explicit
// collector get auditors, and NewRunExec inherits the enablement into a
// distinct per-run collector.
func TestPCAuditEnvCompat(t *testing.T) {
	prev := DefaultAudit()
	defer setDefaultAudit(prev)

	t.Setenv("PC_AUDIT", "1")
	initDefaultAudit()
	if !DefaultAudit().Enabled() {
		t.Fatal("PC_AUDIT=1 left the default collector disabled")
	}
	m, err := NewMachine(cpu.SandyBridge, core.ApproachChipShare, 47)
	if err != nil {
		t.Fatal(err)
	}
	if m.Audit == nil {
		t.Error("PC_AUDIT=1 machine assembled without an auditor")
	}
	ex := NewRunExec(1)
	if ex.Assembly.Audit == nil || !ex.Assembly.Audit.Enabled() {
		t.Error("NewRunExec did not inherit the default collector's enablement")
	}
	if ex.Assembly.Audit == DefaultAudit() {
		t.Error("NewRunExec reused the process-default collector instead of a per-run one")
	}

	t.Setenv("PC_AUDIT", "0")
	initDefaultAudit()
	if DefaultAudit().Enabled() {
		t.Fatal("PC_AUDIT=0 left the default collector enabled")
	}
	if ex := NewRunExec(1); ex.Assembly.Audit.Enabled() {
		t.Error("NewRunExec enabled auditing with PC_AUDIT=0")
	}
}

// TestCalibrationForConcurrent hammers the calibration cache from many
// goroutines across all machine specs: every caller for a spec must get
// the same memoized result and calibration must run exactly once per spec
// (the per-entry sync.Once), without holding the cache lock across the
// calibration itself.
func TestCalibrationForConcurrent(t *testing.T) {
	specs := cpu.Specs()
	const per = 8
	results := make([]*calib.Result, len(specs)*per)
	errs := make([]error, len(specs)*per)
	var wg sync.WaitGroup
	for i, spec := range specs {
		for j := 0; j < per; j++ {
			wg.Add(1)
			go func(slot int, spec cpu.MachineSpec) {
				defer wg.Done()
				results[slot], errs[slot] = CalibrationFor(spec)
			}(i*per+j, spec)
		}
	}
	wg.Wait()
	for i, spec := range specs {
		base := results[i*per]
		for j := 0; j < per; j++ {
			slot := i*per + j
			if errs[slot] != nil {
				t.Fatalf("%s: %v", spec.Name, errs[slot])
			}
			if results[slot] != base {
				t.Errorf("%s: caller %d got a different calibration instance", spec.Name, j)
			}
		}
	}
}
