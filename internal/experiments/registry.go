package experiments

import (
	"fmt"
	"sort"

	"powercontainers/internal/cpu"
)

// Renderable is any experiment result that can print itself in the paper's
// row/series format.
type Renderable interface {
	Render() string
}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the registry key (fig1..fig14, table1, coeffs, overhead).
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Aliases name results folded into the same run (fig3 ships with
	// fig2, fig7 with fig6, fig12 with fig11, table1 with fig14).
	Aliases []string
	// Run executes the experiment with the given execution
	// configuration (worker-pool bound, per-run assembly) and seed.
	// Experiments whose grids decompose into independent jobs fan out
	// across ex.Jobs workers; the rest run as one job and ignore
	// ex.Jobs. Results are byte-identical at any worker count.
	Run func(ex Exec, seed uint64) (Renderable, error)
	// Exclusive marks experiments that measure real host wall-clock
	// (not virtual time) and therefore must not overlap with other
	// running experiments, which would inflate their timings.
	Exclusive bool
}

// Registry returns every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{
			ID: "intro", Title: "motivating measurements: idle proportions, power variation (§1)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Intro(seed) },
		},
		{
			ID: "fig1", Title: "incremental per-core power (shared chip maintenance power)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig1(seed) },
		},
		{
			ID: "fig2", Title: "measurement/model alignment cross-correlation", Aliases: []string{"fig3"},
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig2(seed) },
		},
		{
			ID: "fig4", Title: "captured WeBWorK request execution with per-stage power/energy",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig4(seed) },
		},
		{
			ID: "coeffs", Title: "calibrated offline model coefficients (§4.1)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Coefficients(cpu.SandyBridge) },
		},
		{
			ID: "fig5", Title: "measured active power of application workloads",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig5(Fig5Options{Exec: ex}, seed) },
		},
		{
			ID: "fig6", Title: "request power and energy distributions", Aliases: []string{"fig7"},
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig6(seed) },
		},
		{
			ID: "fig8", Title: "validation error of the three attribution approaches",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig8(Fig8Options{Exec: ex}, seed) },
		},
		{
			ID: "fig9", Title: "GAE background processing power",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig9(seed) },
		},
		{
			ID: "fig10", Title: "power prediction at new request compositions",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig10Ex(ex, seed) },
		},
		{
			ID: "fig11", Title: "fair request power conditioning with power viruses", Aliases: []string{"fig12"},
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig11(seed) },
		},
		{
			ID: "fig13", Title: "cross-machine energy usage ratios",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig13Ex(ex, seed) },
		},
		{
			ID: "fig14", Title: "heterogeneity-aware request distribution", Aliases: []string{"table1"},
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Fig14Ex(ex, seed) },
		},
		{
			ID: "overhead", Title: "facility overhead assessment (§3.5)",
			Run:       func(ex Exec, seed uint64) (Renderable, error) { return Overhead() },
			Exclusive: true,
		},
		{
			ID: "ablations", Title: "design-choice ablations (chip share, tagging, observer effect, user-level transfers)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return AblationsEx(ex, seed) },
		},
		{
			ID: "cluster3", Title: "three-tier heterogeneous cluster distribution (extension of §4.4)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return Cluster3Ex(ex, seed) },
		},
		{
			ID: "faultmatrix", Title: "attribution error vs injected meter-fault rate, degradation on/off (robustness extension)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return FaultMatrixEx(ex, seed) },
		},
		{
			ID: "streamequiv", Title: "streaming vs batch attribution equivalence (online engine extension)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return StreamEquivEx(ex, seed) },
		},
		{
			ID: "tenantmix", Title: "multi-tenant budget enforcement and isolation (hierarchy extension)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return TenantMixEx(ex, seed) },
		},
		{
			ID: "crashmatrix", Title: "exact recovery of the durable record stream across injected crash points (durability extension)",
			Run: func(ex Exec, seed uint64) (Renderable, error) { return CrashMatrixEx(ex, seed) },
		},
	}
}

// Lookup resolves an experiment id or alias.
func Lookup(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
		for _, a := range e.Aliases {
			if a == id {
				return e, nil
			}
		}
	}
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
		ids = append(ids, e.Aliases...)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, ids)
}
