package experiments

import (
	"fmt"

	"powercontainers/internal/cluster"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/power"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Cluster3Result extends the paper's two-machine distribution case study
// (§4.4) to a three-tier heterogeneous cluster — SandyBridge, Westmere and
// Woodcrest — exercising the N-tier placement plan: both aware policies
// fill tiers in efficiency order; the workload-aware one additionally fills
// each tier in ascending affinity-ratio order.
type Cluster3Result struct {
	Policies []Fig14Policy
	// Affinity[app][node] is the profiled per-request energy (J) on each
	// node; ratios are vs node 0.
	Energy map[string][]float64
	// Savings of the workload-aware policy.
	SavingVsSimple       float64
	SavingVsMachineAware float64
}

func cluster3Specs() []cpu.MachineSpec {
	return []cpu.MachineSpec{cpu.SandyBridge, cpu.Westmere, cpu.Woodcrest}
}

func cluster3Workloads() map[string]workload.Workload {
	return map[string]workload.Workload{
		"GAE-Vosao":  workload.GAE{},
		"RSA-crypto": workload.RSA{},
	}
}

var cluster3AppNames = []string{"GAE-Vosao", "RSA-crypto"}

// Cluster3 runs the three-machine distribution experiment.
func Cluster3(seed uint64) (*Cluster3Result, error) {
	return Cluster3Ex(Exec{}, seed)
}

// Cluster3Ex runs the three-machine distribution experiment with explicit
// execution configuration. Profiling decomposes into one runner job per
// (workload, machine) cell; each policy run shards its three machines onto
// per-node engines (cluster.RunSharded), so the whole experiment uses the
// worker pool while rendering byte-identically at any Exec.Jobs.
func Cluster3Ex(ex Exec, seed uint64) (*Cluster3Result, error) {
	as := ex.Assembly
	specs := cluster3Specs()
	wls := cluster3Workloads()

	// Profiling: per-app mean request energy on every machine, one
	// independent job per cell.
	var plan runner.Plan
	for _, name := range cluster3AppNames {
		for _, spec := range specs {
			wl, spec := wls[name], spec
			plan.Add(fmt.Sprintf("cluster3/profile/%s/%s", wl.Name(), spec.Name), func() (any, error) {
				r, err := as.Run(spec, core.ApproachRecalibrated, RunSpec{Workload: wl, Load: PeakLoad}, seed)
				if err != nil {
					return nil, err
				}
				var sum float64
				n := 0
				for _, req := range r.Gen.Completed() {
					if req.Finished() && req.Done >= r.T0 && req.Done < r.T1 {
						sum += req.Cont.EnergyJ()
						n++
					}
				}
				if n == 0 {
					return nil, fmt.Errorf("cluster3 profiling: no %s requests on %s", wl.Name(), spec.Name)
				}
				return sum / float64(n), nil
			})
		}
	}
	cells, err := runner.Collect[float64](&plan, ex.Jobs)
	if err != nil {
		return nil, err
	}
	energy := map[string][]float64{}
	affinity := map[string]float64{}
	for ai, name := range cluster3AppNames {
		energy[name] = cells[ai*len(specs) : (ai+1)*len(specs) : (ai+1)*len(specs)]
		// Affinity ratio vs the least efficient tier (node 0 / last).
		e := energy[name]
		affinity[name] = e[0] / e[len(e)-1]
	}

	res := &Cluster3Result{Energy: energy}
	for _, pol := range []cluster.Policy{cluster.SimpleBalance, cluster.MachineAware, cluster.WorkloadAware} {
		p, err := cluster3Run(ex, pol, affinity, seed, false, nil, 30*sim.Second, 5*sim.Second, 25*sim.Second)
		if err != nil {
			return nil, fmt.Errorf("cluster3 %s: %w", pol, err)
		}
		res.Policies = append(res.Policies, *p)
	}
	if simple := res.Policies[0].TotalW; simple > 0 {
		res.SavingVsSimple = 1 - res.Policies[2].TotalW/simple
	}
	if machine := res.Policies[1].TotalW; machine > 0 {
		res.SavingVsMachineAware = 1 - res.Policies[2].TotalW/machine
	}
	return res, nil
}

// cluster3Run executes one policy over the three-tier cluster through the
// plan/shard/merge pipeline: the dispatch plan is generated first against
// plan-only nodes, then each machine simulates its share on its own engine
// (or all on one shared engine when singleEngine is set — the reference
// mode the shard-equivalence regression test compares against).
//
// When health checking is requested the run falls back to the fully
// coupled single-engine dispatcher instead: failure probes and redispatch
// couple dispatch decisions to node execution, which the plan pipeline
// cannot express (EnableHealth rejects plan mode outright), so the
// request is honored on the path that can run it rather than rejected.
func cluster3Run(ex Exec, pol cluster.Policy, affinity map[string]float64, seed uint64, singleEngine bool, health *cluster.HealthConfig, until, t0, t1 sim.Time) (*Fig14Policy, error) {
	if health != nil {
		return cluster3Coupled(ex, pol, affinity, seed, health, until, t0, t1)
	}
	as := ex.Assembly
	specs := cluster3Specs()
	wls := cluster3Workloads()

	var apps []*cluster.App
	for _, name := range cluster3AppNames {
		apps = append(apps, &cluster.App{Name: name, AffinityRatio: affinity[name]})
	}

	var shared *sim.Engine
	if singleEngine {
		shared = sim.NewEngine()
	}
	var nodes []*cluster.ShardNode
	var planNodes []*cluster.Node
	var meters []*power.WattsupMeter
	var machines []*Machine
	deps := make([]map[string]*server.Deployment, len(specs))
	for i, spec := range specs {
		eng := shared
		if eng == nil {
			eng = sim.NewEngine()
		}
		m, err := as.NewMachineOnEngine(eng, spec, core.ApproachChipShare,
			runner.SeedFor(seed, "cluster3/node/"+spec.Name))
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
		deps[i] = map[string]*server.Deployment{}
		gens := map[string]*server.LoadGen{}
		reqs := map[string]func() *server.Request{}
		for _, name := range cluster3AppNames {
			dep := wls[name].Deploy(m.K, m.Rng.Fork(uint64(len(name))))
			deps[i][name] = dep
			gens[name] = server.NewLoadGen(m.K, m.Fac, dep)
			reqs[name] = dep.NewRequest
		}
		reserved := workload.GAEBackgroundCoreDemand(spec) / float64(spec.Cores())
		planNodes = append(planNodes, cluster.PlanNode(spec.Cores(), reserved))
		nodes = append(nodes, &cluster.ShardNode{
			Eng: eng, Name: m.K.Name(), Fac: m.Fac, Gens: gens, NewRequest: reqs,
		})
		meters = append(meters, m.Wattsup)
	}
	for _, app := range apps {
		for i := range specs {
			app.SvcSec = append(app.SvcSec, deps[i][app.Name].MeanServiceSec)
		}
	}

	// Offered volume: under simple balance every node takes a third of
	// each app's volume; the slow Woodcrest saturates first.
	wcAvail := float64(specs[2].Cores()) * (1 - planNodes[2].ReservedUtil)
	rates := map[string]float64{}
	for _, app := range apps {
		rates[app.Name] = 3.0 * 1.03 * wcAvail / app.SvcSec[2]
	}

	dplan := cluster.PlanOpenLoop(planNodes, apps, pol, nil, rates, until, sim.NewRand(seed*37))

	laud := as.collector().newAuditor(fmt.Sprintf("cluster3/%s", pol))
	var sink cluster.AuditSink
	if laud != nil {
		sink = laud
	}
	horizon := until + 3*sim.Second
	sres, err := cluster.RunSharded(cluster.ShardedRunConfig{
		Plan: dplan, Nodes: nodes, RunUntil: horizon, Jobs: ex.Jobs, LedgerAudit: sink,
	})
	if err != nil {
		return nil, err
	}

	for _, m := range machines {
		if err := m.FinalizeAudit(); err != nil {
			return nil, err
		}
	}
	if laud != nil {
		laud.CheckLedger(sres.Ledger, sres.Completed, horizon)
		if err := laud.Err(); err != nil {
			return nil, err
		}
	}

	out := &Fig14Policy{Policy: pol, RespMs: sres.ResponseTimes(), Dispatched: sres.PerApp}
	for i, meter := range meters {
		w, err := wattsupWindowMean(meter, machines[i].Eng.Now(), t0, t1)
		if err != nil {
			return nil, err
		}
		out.ActiveW = append(out.ActiveW, w)
		out.TotalW += w
	}
	return out, nil
}

// cluster3Coupled is the fully coupled reference path: all three machines
// and the live dispatcher share one engine, exactly as cluster3 ran before
// the plan/shard pipeline existed. Health checking (when non-nil) probes
// from its own seeded stream, so with no injected node failures the run is
// bit-identical to the same run without health — the regression test pins
// this against the resurrected pre-shard behavior.
func cluster3Coupled(ex Exec, pol cluster.Policy, affinity map[string]float64, seed uint64, health *cluster.HealthConfig, until, t0, t1 sim.Time) (*Fig14Policy, error) {
	as := ex.Assembly
	specs := cluster3Specs()
	wls := cluster3Workloads()
	eng := sim.NewEngine()
	rng := sim.NewRand(seed * 37)

	var apps []*cluster.App
	for _, name := range cluster3AppNames {
		apps = append(apps, &cluster.App{Name: name, AffinityRatio: affinity[name]})
	}

	var nodes []*cluster.Node
	var meters []*power.WattsupMeter
	var machines []*Machine
	deps := make([]map[string]*server.Deployment, len(specs))
	for i, spec := range specs {
		m, err := as.NewMachineOnEngine(eng, spec, core.ApproachChipShare, seed+uint64(i)*29)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
		deps[i] = map[string]*server.Deployment{}
		node := cluster.NewNode(m.K, m.Fac, apps, func(app *cluster.App, k *kernel.Kernel) *server.Deployment {
			dep := wls[app.Name].Deploy(k, m.Rng.Fork(uint64(len(app.Name))))
			deps[i][app.Name] = dep
			return dep
		})
		node.ReservedUtil = workload.GAEBackgroundCoreDemand(spec) / float64(spec.Cores())
		nodes = append(nodes, node)
		meters = append(meters, m.Wattsup)
	}
	for _, app := range apps {
		for i := range specs {
			app.SvcSec = append(app.SvcSec, deps[i][app.Name].MeanServiceSec)
		}
		app.NewRequest = deps[0][app.Name].NewRequest
	}

	d := cluster.NewDispatcher(eng, nodes, apps, pol)
	laud := as.collector().newAuditor(fmt.Sprintf("cluster3/%s", pol))
	if laud != nil {
		d.Ledger.Audit = laud
	}
	if health != nil {
		d.EnableHealth(*health, sim.NewRand(seed*41))
	}

	// Offered volume: under simple balance every node takes a third of
	// each app's volume; the slow Woodcrest saturates first.
	wcAvail := float64(specs[2].Cores()) * (1 - nodes[2].ReservedUtil)
	rates := map[string]float64{}
	for _, app := range apps {
		rates[app.Name] = 3.0 * 1.03 * wcAvail / app.SvcSec[2]
	}

	d.RunOpenLoop(rates, until, rng)
	eng.RunUntil(until + 3*sim.Second)

	for _, m := range machines {
		if err := m.FinalizeAudit(); err != nil {
			return nil, err
		}
	}
	if laud != nil {
		laud.CheckLedger(d.Ledger, d.Completed(), eng.Now())
		if err := laud.Err(); err != nil {
			return nil, err
		}
	}

	out := &Fig14Policy{Policy: pol, RespMs: d.ResponseTimes(), Dispatched: d.DispatchCounts()}
	for _, meter := range meters {
		w, err := wattsupWindowMean(meter, eng.Now(), t0, t1)
		if err != nil {
			return nil, err
		}
		out.ActiveW = append(out.ActiveW, w)
		out.TotalW += w
	}
	return out, nil
}

// Render prints the three-tier results.
func (r *Cluster3Result) Render() string {
	specs := cluster3Specs()
	t := &Table{
		Title:  "Three-tier cluster (extension): energy usage rate under the three policies",
		Header: []string{"policy", specs[0].Name, specs[1].Name, specs[2].Name, "combined", "GAE ms", "RSA ms"},
		Caption: fmt.Sprintf("workload-aware saves %s vs simple balance and %s vs machine-aware",
			pct(r.SavingVsSimple), pct(r.SavingVsMachineAware)),
	}
	for _, p := range r.Policies {
		t.AddRow(p.Policy.String(), w1(p.ActiveW[0]), w1(p.ActiveW[1]), w1(p.ActiveW[2]), w1(p.TotalW),
			fmt.Sprintf("%.0f", p.RespMs["GAE-Vosao"]), fmt.Sprintf("%.0f", p.RespMs["RSA-crypto"]))
	}
	t2 := &Table{
		Title:  "profiled per-request energy (J)",
		Header: []string{"app", specs[0].Name, specs[1].Name, specs[2].Name},
	}
	for _, app := range SortedKeys(r.Energy) {
		e := r.Energy[app]
		t2.AddRow(app, j2(e[0]), j2(e[1]), j2(e[2]))
	}
	return t.String() + "\n" + t2.String()
}
