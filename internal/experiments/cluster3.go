package experiments

import (
	"fmt"

	"powercontainers/internal/cluster"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Cluster3Result extends the paper's two-machine distribution case study
// (§4.4) to a three-tier heterogeneous cluster — SandyBridge, Westmere and
// Woodcrest — exercising the N-tier placement plan: both aware policies
// fill tiers in efficiency order; the workload-aware one additionally fills
// each tier in ascending affinity-ratio order.
type Cluster3Result struct {
	Policies []Fig14Policy
	// Affinity[app][node] is the profiled per-request energy (J) on each
	// node; ratios are vs node 0.
	Energy map[string][]float64
	// Savings of the workload-aware policy.
	SavingVsSimple       float64
	SavingVsMachineAware float64
}

func cluster3Specs() []cpu.MachineSpec {
	return []cpu.MachineSpec{cpu.SandyBridge, cpu.Westmere, cpu.Woodcrest}
}

// Cluster3 runs the three-machine distribution experiment.
func Cluster3(seed uint64) (*Cluster3Result, error) {
	return Cluster3Ex(Exec{}, seed)
}

// Cluster3Ex runs the three-machine distribution experiment with explicit
// execution configuration. Like Fig14 it stays a single job — the cluster
// machines share one timeline — so only the per-run audit config is
// threaded.
func Cluster3Ex(ex Exec, seed uint64) (*Cluster3Result, error) {
	as := ex.Assembly
	specs := cluster3Specs()

	// Profiling: per-app mean request energy on every machine.
	energy := map[string][]float64{}
	affinity := map[string]float64{}
	for _, wl := range []workload.Workload{workload.GAE{}, workload.RSA{}} {
		for _, spec := range specs {
			r, err := as.Run(spec, core.ApproachRecalibrated, RunSpec{Workload: wl, Load: PeakLoad}, seed)
			if err != nil {
				return nil, err
			}
			var sum float64
			n := 0
			for _, req := range r.Gen.Completed() {
				if req.Finished() && req.Done >= r.T0 && req.Done < r.T1 {
					sum += req.Cont.EnergyJ()
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("cluster3 profiling: no %s requests on %s", wl.Name(), spec.Name)
			}
			energy[wl.Name()] = append(energy[wl.Name()], sum/float64(n))
		}
		// Affinity ratio vs the least efficient tier (node 0 / last).
		e := energy[wl.Name()]
		affinity[wl.Name()] = e[0] / e[len(e)-1]
	}

	res := &Cluster3Result{Energy: energy}
	for _, pol := range []cluster.Policy{cluster.SimpleBalance, cluster.MachineAware, cluster.WorkloadAware} {
		p, err := cluster3Run(as, pol, affinity, seed)
		if err != nil {
			return nil, fmt.Errorf("cluster3 %s: %w", pol, err)
		}
		res.Policies = append(res.Policies, *p)
	}
	if simple := res.Policies[0].TotalW; simple > 0 {
		res.SavingVsSimple = 1 - res.Policies[2].TotalW/simple
	}
	if machine := res.Policies[1].TotalW; machine > 0 {
		res.SavingVsMachineAware = 1 - res.Policies[2].TotalW/machine
	}
	return res, nil
}

func cluster3Run(as Assembly, pol cluster.Policy, affinity map[string]float64, seed uint64) (*Fig14Policy, error) {
	specs := cluster3Specs()
	eng := sim.NewEngine()
	rng := sim.NewRand(seed * 37)

	wls := map[string]workload.Workload{
		"GAE-Vosao":  workload.GAE{},
		"RSA-crypto": workload.RSA{},
	}
	var apps []*cluster.App
	for _, name := range []string{"GAE-Vosao", "RSA-crypto"} {
		apps = append(apps, &cluster.App{Name: name, AffinityRatio: affinity[name]})
	}

	var nodes []*cluster.Node
	var meters []*power.WattsupMeter
	var machines []*Machine
	deps := make([]map[string]*server.Deployment, len(specs))
	for i, spec := range specs {
		m, err := as.NewMachineOnEngine(eng, spec, core.ApproachChipShare, seed+uint64(i)*29)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
		deps[i] = map[string]*server.Deployment{}
		node := cluster.NewNode(m.K, m.Fac, apps, func(app *cluster.App, k *kernel.Kernel) *server.Deployment {
			dep := wls[app.Name].Deploy(k, m.Rng.Fork(uint64(len(app.Name))))
			deps[i][app.Name] = dep
			return dep
		})
		node.ReservedUtil = workload.GAEBackgroundCoreDemand(spec) / float64(spec.Cores())
		nodes = append(nodes, node)
		meters = append(meters, m.Wattsup)
	}
	for _, app := range apps {
		for i := range specs {
			app.SvcSec = append(app.SvcSec, deps[i][app.Name].MeanServiceSec)
		}
		app.NewRequest = deps[0][app.Name].NewRequest
	}

	d := cluster.NewDispatcher(eng, nodes, apps, pol)
	laud := as.collector().newAuditor(fmt.Sprintf("cluster3/%s", pol))
	if laud != nil {
		d.Ledger.Audit = laud
	}

	// Offered volume: under simple balance every node takes a third of
	// each app's volume; the slow Woodcrest saturates first.
	wcAvail := float64(specs[2].Cores()) * (1 - nodes[2].ReservedUtil)
	rates := map[string]float64{}
	for _, app := range apps {
		rates[app.Name] = 3.0 * 1.03 * wcAvail / app.SvcSec[2]
	}

	const (
		until = 30 * sim.Second
		t0    = 5 * sim.Second
		t1    = 25 * sim.Second
	)
	d.RunOpenLoop(rates, until, rng)
	eng.RunUntil(until + 3*sim.Second)

	for _, m := range machines {
		if err := m.FinalizeAudit(); err != nil {
			return nil, err
		}
	}
	if laud != nil {
		laud.CheckLedger(d.Ledger, d.Completed(), eng.Now())
		if err := laud.Err(); err != nil {
			return nil, err
		}
	}

	out := &Fig14Policy{Policy: pol, RespMs: d.ResponseTimes(), Dispatched: d.DispatchCounts()}
	for _, meter := range meters {
		w, err := wattsupWindowMean(meter, eng.Now(), t0, t1)
		if err != nil {
			return nil, err
		}
		out.ActiveW = append(out.ActiveW, w)
		out.TotalW += w
	}
	return out, nil
}

// Render prints the three-tier results.
func (r *Cluster3Result) Render() string {
	specs := cluster3Specs()
	t := &Table{
		Title:  "Three-tier cluster (extension): energy usage rate under the three policies",
		Header: []string{"policy", specs[0].Name, specs[1].Name, specs[2].Name, "combined", "GAE ms", "RSA ms"},
		Caption: fmt.Sprintf("workload-aware saves %s vs simple balance and %s vs machine-aware",
			pct(r.SavingVsSimple), pct(r.SavingVsMachineAware)),
	}
	for _, p := range r.Policies {
		t.AddRow(p.Policy.String(), w1(p.ActiveW[0]), w1(p.ActiveW[1]), w1(p.ActiveW[2]), w1(p.TotalW),
			fmt.Sprintf("%.0f", p.RespMs["GAE-Vosao"]), fmt.Sprintf("%.0f", p.RespMs["RSA-crypto"]))
	}
	t2 := &Table{
		Title:  "profiled per-request energy (J)",
		Header: []string{"app", specs[0].Name, specs[1].Name, specs[2].Name},
	}
	for _, app := range SortedKeys(r.Energy) {
		e := r.Energy[app]
		t2.AddRow(app, j2(e[0]), j2(e[1]), j2(e[2]))
	}
	return t.String() + "\n" + t2.String()
}
