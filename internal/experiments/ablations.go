package experiments

import (
	"fmt"
	"math"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/power"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// AblationResult quantifies the design choices DESIGN.md calls out:
//
//   - the synchronization-free Eq. 3 chip-share estimate vs an oracle with
//     global knowledge of sibling activity;
//   - per-segment socket context tagging vs the naive single-tag scheme the
//     paper warns against (§3.3);
//   - observer-effect compensation (§3.5);
//   - kernel-observable user-level stage transfers (the §3.3 future-work
//     extension) vs the published facility's blindness to them.
type AblationResult struct {
	// ChipShareDeviation is the mean absolute deviation of the system
	// chip-share metric vs the oracle, relative to the oracle's total;
	// ChipShareMaxSum is the estimate's worst instantaneous sum (an
	// exact estimate never exceeds the chip count).
	ChipShareDeviation float64
	ChipShareMaxSum    float64
	// TaggingMisattribution is the mean relative per-request energy
	// error of naive tagging on a pipelined shared connection.
	TaggingMisattribution float64
	// ObserverInflation is the relative instruction-count inflation
	// without compensation.
	ObserverInflation float64
	// UserTransferMisattribution is the mean relative per-request energy
	// error of an event-driven server without transfer trapping.
	UserTransferMisattribution float64
}

// ablationKernel builds a bare SandyBridge kernel + facility with the
// offline Eq. 2 model.
func ablationKernel(seed uint64, configure func(*kernel.Kernel)) (*kernel.Kernel, *core.Facility, error) {
	eng := sim.NewEngine()
	spec := cpu.SandyBridge
	profile, err := power.Profiles(spec)
	if err != nil {
		return nil, nil, err
	}
	k, err := kernel.New("abl", spec, profile, eng, nil)
	if err != nil {
		return nil, nil, err
	}
	if configure != nil {
		configure(k)
	}
	cal, err := CalibrationFor(spec)
	if err != nil {
		return nil, nil, err
	}
	fac := core.Attach(k, cal.Eq2, core.Config{Approach: core.ApproachChipShare})
	_ = seed
	return k, fac, nil
}

// AblationChipShare measures the Eq. 3 estimate against the oracle.
func AblationChipShare(seed uint64) (deviation, maxSum float64, err error) {
	run := func(oracle bool) (*core.Facility, error) {
		eng := sim.NewEngine()
		spec := cpu.SandyBridge
		profile, err := power.Profiles(spec)
		if err != nil {
			return nil, err
		}
		k, err := kernel.New("abl", spec, profile, eng, nil)
		if err != nil {
			return nil, err
		}
		cal, err := CalibrationFor(spec)
		if err != nil {
			return nil, err
		}
		fac := core.Attach(k, cal.Eq2, core.Config{
			Approach: core.ApproachChipShare, UseOracleChipShare: oracle,
		})
		rng := sim.NewRand(seed)
		dep := workload.GAE{}.Deploy(k, rng)
		gen := server.NewLoadGen(k, fac, dep)
		gen.RunOpenLoop(0.5*PeakRate(spec, dep), 6*sim.Second, rng.Fork(2))
		eng.RunUntil(6 * sim.Second)
		return fac, nil
	}
	approx, err := run(false)
	if err != nil {
		return 0, 0, err
	}
	oracle, err := run(true)
	if err != nil {
		return 0, 0, err
	}
	var dev, ref float64
	n := oracle.Metrics().Len()
	for b := 0; b < n; b++ {
		a, o := approx.Metrics().At(b).Chip, oracle.Metrics().At(b).Chip
		dev += math.Abs(a - o)
		ref += o
		if a > maxSum {
			maxSum = a
		}
	}
	if ref == 0 {
		return 0, 0, fmt.Errorf("ablation: empty chip-share series")
	}
	return dev / ref, maxSum, nil
}

// AblationTagging measures naive-vs-per-segment misattribution on a
// pipelined shared connection (several front workers multiplexing
// fire-and-forget messages to one backend thread).
func AblationTagging(seed uint64) (float64, error) {
	type job struct{ cycles float64 }
	run := func(perSegment bool) ([]float64, error) {
		k, fac, err := ablationKernel(seed, func(k *kernel.Kernel) {
			k.PerSegmentTagging = perSegment
		})
		if err != nil {
			return nil, err
		}
		frontEnd, backEnd := kernel.NewConn()
		server.NewAuxWorker(k, "auditd", backEnd, func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			return []kernel.Op{kernel.OpCompute{BaseCycles: payload.(job).cycles, Act: workload.ActMySQL}}
		})
		entry := kernel.NewListener("front")
		rng := sim.NewRand(seed + 2)
		server.NewEntryPool(k, "front", 8, entry, func(int) server.Handler {
			return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
				env := payload.(*server.Envelope)
				j := env.Req.Payload.(job)
				return []kernel.Op{
					kernel.OpCompute{BaseCycles: j.cycles, Act: workload.ActPerl},
					kernel.OpSend{End: frontEnd, Bytes: 512, Payload: job{cycles: 4 * j.cycles}},
				}
			}
		})
		dep := &server.Deployment{
			Entry: entry,
			NewRequest: func() *server.Request {
				return &server.Request{Type: "audit", Payload: job{cycles: 2e6 * (1 + 4*rng.Float64())}}
			},
			MeanServiceSec: 0.005,
		}
		gen := server.NewLoadGen(k, fac, dep)
		gen.RunOpenLoop(500, 4*sim.Second, rng.Fork(3))
		k.Eng.RunUntil(5 * sim.Second)
		var out []float64
		for _, r := range gen.Completed() {
			out = append(out, r.Cont.EnergyJ())
		}
		return out, nil
	}
	safe, err := run(true)
	if err != nil {
		return 0, err
	}
	naive, err := run(false)
	if err != nil {
		return 0, err
	}
	n := len(safe)
	if len(naive) < n {
		n = len(naive)
	}
	if n == 0 {
		return 0, fmt.Errorf("ablation: no completed audit requests")
	}
	var sum float64
	for i := 0; i < n; i++ {
		if safe[i] > 0 {
			sum += math.Abs(naive[i]-safe[i]) / safe[i]
		}
	}
	return sum / float64(n), nil
}

// AblationObserver measures the counter inflation compensation removes.
func AblationObserver(seed uint64) (float64, error) {
	run := func(disable bool) (float64, error) {
		eng := sim.NewEngine()
		spec := cpu.SandyBridge
		profile, err := power.Profiles(spec)
		if err != nil {
			return 0, err
		}
		k, err := kernel.New("abl", spec, profile, eng, nil)
		if err != nil {
			return 0, err
		}
		cal, err := CalibrationFor(spec)
		if err != nil {
			return 0, err
		}
		fac := core.Attach(k, cal.Eq2, core.Config{DisableObserverComp: disable})
		cont := fac.NewContainer("req")
		k.Spawn("w", kernel.Script(kernel.OpCompute{BaseCycles: 3.1e9, Act: cpu.Activity{IPC: 1}}), cont)
		eng.Run()
		return cont.Counters.Instructions, nil
	}
	comp, err := run(false)
	if err != nil {
		return 0, err
	}
	raw, err := run(true)
	if err != nil {
		return 0, err
	}
	if comp <= 0 {
		return 0, fmt.Errorf("ablation: no instructions attributed")
	}
	return (raw - comp) / comp, nil
}

// AblationUserTransfers measures event-driven-server misattribution with
// the published (blind) facility vs the trapping extension.
func AblationUserTransfers(seed uint64) (float64, error) {
	run := func(trap bool) ([]float64, error) {
		k, fac, err := ablationKernel(seed, func(k *kernel.Kernel) {
			k.TrapUserTransfers = trap
		})
		if err != nil {
			return nil, err
		}
		rng := sim.NewRand(seed + 5)
		dep := workload.EventServer{PhasesPerRequest: 4}.Deploy(k, rng)
		gen := server.NewLoadGen(k, fac, dep)
		gen.RunOpenLoop(0.9*PeakRate(cpu.SandyBridge, dep), 4*sim.Second, rng.Fork(2))
		k.Eng.RunUntil(5 * sim.Second)
		var out []float64
		for _, r := range gen.Completed() {
			out = append(out, r.Cont.EnergyJ())
		}
		return out, nil
	}
	trapped, err := run(true)
	if err != nil {
		return 0, err
	}
	blind, err := run(false)
	if err != nil {
		return 0, err
	}
	n := len(trapped)
	if len(blind) < n {
		n = len(blind)
	}
	if n == 0 {
		return 0, fmt.Errorf("ablation: no completed event requests")
	}
	var sum float64
	m := 0
	for i := 0; i < n; i++ {
		if trapped[i] > 0 {
			sum += math.Abs(blind[i]-trapped[i]) / trapped[i]
			m++
		}
	}
	return sum / float64(m), nil
}

// Ablations runs all four.
func Ablations(seed uint64) (*AblationResult, error) {
	return AblationsEx(Exec{}, seed)
}

// ablationCell carries one ablation job's metrics; jobs that produce a
// single metric leave the second field zero.
type ablationCell [2]float64

// AblationsEx runs all four ablations as independent jobs. Each ablation
// builds its own kernels and facilities, so they parallelize cleanly.
func AblationsEx(ex Exec, seed uint64) (*AblationResult, error) {
	plan := &runner.Plan{}
	plan.Add("ablation/chip-share", func() (any, error) {
		dev, maxSum, err := AblationChipShare(seed)
		return ablationCell{dev, maxSum}, err
	})
	plan.Add("ablation/tagging", func() (any, error) {
		mis, err := AblationTagging(seed)
		return ablationCell{mis}, err
	})
	plan.Add("ablation/observer", func() (any, error) {
		inf, err := AblationObserver(seed)
		return ablationCell{inf}, err
	})
	plan.Add("ablation/user-transfers", func() (any, error) {
		mis, err := AblationUserTransfers(seed)
		return ablationCell{mis}, err
	})
	cells, err := runner.Collect[ablationCell](plan, ex.Jobs)
	if err != nil {
		return nil, err
	}
	return &AblationResult{
		ChipShareDeviation:         cells[0][0],
		ChipShareMaxSum:            cells[0][1],
		TaggingMisattribution:      cells[1][0],
		ObserverInflation:          cells[2][0],
		UserTransferMisattribution: cells[3][0],
	}, nil
}

// Render prints the ablation table.
func (r *AblationResult) Render() string {
	t := &Table{
		Title:  "Design-choice ablations",
		Header: []string{"design choice", "metric", "value"},
	}
	t.AddRow("sync-free chip share (Eq. 3) vs oracle", "mean chip-share deviation", fmt.Sprintf("%.3f%%", 100*r.ChipShareDeviation))
	t.AddRow("", "max instantaneous share sum", fmt.Sprintf("%.2f (chips=1)", r.ChipShareMaxSum))
	t.AddRow("per-segment socket tagging vs naive", "per-request energy misattribution", pct(r.TaggingMisattribution))
	t.AddRow("observer-effect compensation off", "instruction-count inflation", pct(r.ObserverInflation))
	t.AddRow("user-level transfers untrapped (§3.3 limit)", "per-request energy misattribution", pct(r.UserTransferMisattribution))
	return t.String()
}
