package experiments

import (
	"fmt"

	"powercontainers/internal/align"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// Fig2Result reproduces Figure 2: measurement/model alignment
// cross-correlation over hypothetical measurement delays, for the
// SandyBridge on-chip power meter (peak expected near 1 ms) and the Wattsup
// wall meter (peak expected near 1.2 s), plus Figure 3's aligned traces.
type Fig2Result struct {
	// ChipCurve and WattsupCurve are the correlation curves.
	ChipCurve    []align.LagPoint
	WattsupCurve []align.LagPoint
	// ChipPeak and WattsupPeak are the estimated delays.
	ChipPeak    sim.Time
	WattsupPeak sim.Time
	// TrueChipDelay and TrueWattsupDelay are the simulator's actual
	// delivery delays, for verification.
	TrueChipDelay    sim.Time
	TrueWattsupDelay sim.Time

	// Fig. 3 companion: aligned measured/modeled package power traces
	// over a short span, at 1 ms resolution.
	TraceStart    sim.Time
	TraceMeasured []float64
	TraceModeled  []float64
}

// Fig2 runs a fluctuating workload (GAE-Vosao at half load, whose request
// mix and background bursts produce strong power phases) and computes the
// alignment curves.
func Fig2(seed uint64) (*Fig2Result, error) {
	m, err := NewMachine(cpu.SandyBridge, core.ApproachChipShare, seed)
	if err != nil {
		return nil, err
	}
	dep := workload.GAE{}.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)
	const runFor = 24 * sim.Second
	gen.RunOpenLoop(0.5*PeakRate(m.K.Spec, dep), runFor, m.Rng.Fork(13))
	m.Eng.RunUntil(runFor + 3*sim.Second)

	ms := m.Fac.Metrics()
	modelPower := ms.ModeledPower(m.Fac.Coeff, ms.Len())

	chipSamples := m.Chip.Read(m.Eng.Now())
	wattsupSamples := m.Wattsup.Read(m.Eng.Now())

	res := &Fig2Result{
		TrueChipDelay:    m.Chip.Delay(),
		TrueWattsupDelay: m.Wattsup.Delay(),
	}
	res.ChipCurve = align.CorrelationCurve(chipSamples, m.Chip.IdleW(), m.Chip.Interval(),
		modelPower, ms.Interval(), sim.Millisecond, -100*sim.Millisecond, 100*sim.Millisecond)
	res.WattsupCurve = align.CorrelationCurve(wattsupSamples, m.Wattsup.IdleW(), m.Wattsup.Interval(),
		modelPower, ms.Interval(), 5*sim.Millisecond, 0, 2000*sim.Millisecond)

	if res.ChipPeak, err = align.EstimateDelay(res.ChipCurve); err != nil {
		return nil, fmt.Errorf("chip meter alignment: %w", err)
	}
	if res.WattsupPeak, err = align.EstimateDelay(res.WattsupCurve); err != nil {
		return nil, fmt.Errorf("wattsup alignment: %w", err)
	}

	// Figure 3: overlay measured package power (shifted by the estimated
	// delay) with the model estimate over 600 ms of steady execution.
	res.TraceStart = 10 * sim.Second
	start := res.TraceStart
	nBuckets := int(600 * sim.Millisecond / ms.Interval())
	res.TraceModeled = make([]float64, nBuckets)
	for b := 0; b < nBuckets; b++ {
		res.TraceModeled[b] = modelPower[int(start/ms.Interval())+b] + m.Chip.IdleW()
	}
	res.TraceMeasured = make([]float64, nBuckets)
	idx := map[sim.Time]power.Sample{}
	for _, s := range chipSamples {
		idx[s.Arrival] = s
	}
	for b := 0; b < nBuckets; b++ {
		windowStart := start + sim.Time(b)*ms.Interval()
		arrival := windowStart + m.Chip.Interval() + res.ChipPeak
		if s, ok := idx[arrival]; ok {
			res.TraceMeasured[b] = s.Watts
		}
	}
	return res, nil
}

// Render prints the correlation peaks and a down-sampled curve.
func (r *Fig2Result) Render() string {
	t := &Table{
		Title:  "Figure 2: measurement/model alignment cross-correlation",
		Header: []string{"meter", "estimated delay", "true delay", "curve points"},
		Caption: "The correlation peak over hypothetical measurement delays identifies each\n" +
			"meter's delivery lag (Eq. 4): ~1 ms for the on-chip meter, ~1.2 s for the\n" +
			"Wattsup (coarse windows plus USB propagation).",
	}
	t.AddRow("SandyBridge on-chip", sim.FormatTime(r.ChipPeak), sim.FormatTime(r.TrueChipDelay), fmt.Sprintf("%d", len(r.ChipCurve)))
	t.AddRow("Wattsup", sim.FormatTime(r.WattsupPeak), sim.FormatTime(r.TrueWattsupDelay), fmt.Sprintf("%d", len(r.WattsupCurve)))
	out := t.String()

	t2 := &Table{
		Title:  "Figure 3: aligned measurement/model power traces (chip meter, 600 ms)",
		Header: []string{"offset", "measured", "modeled"},
	}
	for b := 0; b < len(r.TraceMeasured); b += 50 {
		t2.AddRow(sim.FormatTime(sim.Time(b)*sim.Millisecond), w1(r.TraceMeasured[b]), w1(r.TraceModeled[b]))
	}
	return out + "\n" + t2.String()
}
