// Package experiments implements every table and figure of the paper's
// evaluation (§4) as a reproducible function over the simulated testbed.
// Each experiment returns a structured result that cmd/pcbench renders in
// the paper's format and bench_test.go exercises as a benchmark.
package experiments

import (
	"fmt"
	"os"
	"sync"

	"powercontainers/internal/audit"
	"powercontainers/internal/calib"
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// AuditCollector gathers the invariant auditors of one run. Each parallel
// experiment run owns its own collector, so concurrent runs never
// interleave violation lists; the process-default collector (PC_AUDIT /
// EnableAudit) backs the compatibility API and machines assembled without
// an explicit Assembly.
type AuditCollector struct {
	mu       sync.Mutex
	enabled  bool
	auditors []*audit.Auditor
}

// NewAuditCollector returns an empty collector; enabled selects whether
// machines assembled against it get an auditor attached.
func NewAuditCollector(enabled bool) *AuditCollector {
	return &AuditCollector{enabled: enabled}
}

// Enabled reports whether the collector attaches auditors.
func (c *AuditCollector) Enabled() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enabled
}

// Violations returns every violation collected by this run's auditors.
func (c *AuditCollector) Violations() []audit.Violation {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []audit.Violation
	for _, a := range c.auditors {
		out = append(out, a.Violations()...)
	}
	return out
}

// newAuditor registers a fresh auditor when the collector is enabled.
func (c *AuditCollector) newAuditor(label string) *audit.Auditor {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		return nil
	}
	a := audit.New(label)
	c.auditors = append(c.auditors, a)
	return a
}

// defaultAudit is the process-default collector, the PC_AUDIT/EnableAudit
// compatibility path. Auditing is off by default (zero overhead beyond
// nil checks); tests enable it with EnableAudit, and PC_AUDIT=1 in the
// environment turns it on for a whole test run.
var defaultAudit struct {
	sync.Mutex
	c *AuditCollector
}

func init() { initDefaultAudit() }

// initDefaultAudit (re)reads PC_AUDIT into a fresh default collector.
func initDefaultAudit() {
	enabled := false
	switch os.Getenv("PC_AUDIT") {
	case "", "0", "false", "off":
		// disabled
	default:
		enabled = true
	}
	setDefaultAudit(NewAuditCollector(enabled))
}

func setDefaultAudit(c *AuditCollector) {
	defaultAudit.Lock()
	defer defaultAudit.Unlock()
	defaultAudit.c = c
}

// DefaultAudit returns the process-default audit collector.
func DefaultAudit() *AuditCollector {
	defaultAudit.Lock()
	defer defaultAudit.Unlock()
	return defaultAudit.c
}

// EnableAudit turns on invariant auditing for machines assembled from now
// on (without an explicit per-run collector) and clears previously
// collected auditors.
func EnableAudit() { setDefaultAudit(NewAuditCollector(true)) }

// DisableAudit turns auditing back off and clears collected auditors.
func DisableAudit() { setDefaultAudit(NewAuditCollector(false)) }

// AuditViolations returns every violation collected since auditing was
// enabled, across all machines audited through the default collector.
func AuditViolations() []audit.Violation { return DefaultAudit().Violations() }

// Assembly is per-run machine-assembly configuration, threaded through
// every machine a run builds so parallel runs stay isolated.
type Assembly struct {
	// Audit receives the run's machine auditors; nil falls back to the
	// process-default collector (PC_AUDIT / EnableAudit).
	Audit *AuditCollector
}

// collector resolves the run's audit collector.
func (as Assembly) collector() *AuditCollector {
	if as.Audit != nil {
		return as.Audit
	}
	return DefaultAudit()
}

// Exec configures one experiment run's execution: the worker-pool bound
// for the run's job plan and the per-run machine assembly.
type Exec struct {
	// Jobs bounds how many of the run's jobs execute concurrently
	// (0 = runner.DefaultJobs()). Results are byte-identical at any
	// value; Jobs trades only wall-clock for cores.
	Jobs int
	// Assembly threads the per-run audit configuration into every
	// machine the run assembles.
	Assembly
}

// NewRunExec returns the Exec for one experiment run: the given worker
// bound and a fresh audit collector inheriting the process default's
// enablement, so parallel runs collect violations separately.
func NewRunExec(jobs int) Exec {
	return Exec{
		Jobs:     jobs,
		Assembly: Assembly{Audit: NewAuditCollector(DefaultAudit().Enabled())},
	}
}

// calibCache memoizes offline calibration per machine: it is a controlled
// one-time procedure in the paper too ("performed once for each target
// machine configuration"). Each machine gets its own once-guarded entry,
// so under the parallel runner distinct machines calibrate concurrently
// while duplicate work is still avoided.
var calibCache struct {
	sync.Mutex
	m map[string]*calibEntry
}

type calibEntry struct {
	once sync.Once
	res  *calib.Result
	err  error
}

// CalibrationFor returns the (cached) offline calibration of a machine.
func CalibrationFor(spec cpu.MachineSpec) (*calib.Result, error) {
	calibCache.Lock()
	if calibCache.m == nil {
		calibCache.m = make(map[string]*calibEntry)
	}
	e := calibCache.m[spec.Name]
	if e == nil {
		e = &calibEntry{}
		calibCache.m[spec.Name] = e
	}
	calibCache.Unlock()
	e.once.Do(func() {
		e.res, e.err = calib.Calibrate(spec, calib.DefaultConfig())
	})
	return e.res, e.err
}

// Machine is a fully assembled machine under test: kernel, facility, and
// meters, with the offline-calibrated model installed.
type Machine struct {
	Eng     *sim.Engine
	K       *kernel.Kernel
	Fac     *core.Facility
	Wattsup *power.WattsupMeter
	Chip    *power.ChipMeter
	Calib   *calib.Result
	Rng     *sim.Rand
	// Audit is the machine's invariant auditor when auditing is enabled
	// (EnableAudit or PC_AUDIT=1), nil otherwise.
	Audit *audit.Auditor
}

// FinalizeAudit runs the machine's end-of-run audit checks, returning
// their violations as an error. It is a no-op without an attached auditor.
func (m *Machine) FinalizeAudit() error {
	if m.Audit == nil {
		return nil
	}
	return m.Audit.FinalizeMachine()
}

// NewMachine assembles a machine with the given attribution approach
// against the process-default audit collector.
func NewMachine(spec cpu.MachineSpec, approach core.Approach, seed uint64) (*Machine, error) {
	return Assembly{}.NewMachine(spec, approach, seed)
}

// NewMachineOnEngine assembles a machine onto a shared engine against the
// process-default audit collector.
func NewMachineOnEngine(eng *sim.Engine, spec cpu.MachineSpec, approach core.Approach, seed uint64) (*Machine, error) {
	return Assembly{}.NewMachineOnEngine(eng, spec, approach, seed)
}

// NewMachine assembles a machine with the given attribution approach.
// ApproachRecalibrated additionally wires online recalibration against the
// machine's best meter (the on-chip meter on SandyBridge, the Wattsup
// elsewhere).
func (as Assembly) NewMachine(spec cpu.MachineSpec, approach core.Approach, seed uint64) (*Machine, error) {
	return as.NewMachineOnEngine(sim.NewEngine(), spec, approach, seed)
}

// NewMachineOnEngine assembles a machine onto a shared engine (cluster
// experiments put several machines on one timeline).
func (as Assembly) NewMachineOnEngine(eng *sim.Engine, spec cpu.MachineSpec, approach core.Approach, seed uint64) (*Machine, error) {
	cal, err := CalibrationFor(spec)
	if err != nil {
		return nil, err
	}
	profile, err := power.Profiles(spec)
	if err != nil {
		return nil, err
	}
	k, err := kernel.New(spec.Name, spec, profile, eng, nil)
	if err != nil {
		return nil, err
	}
	coeff := cal.Eq2
	if approach == core.ApproachCoreOnly {
		coeff = cal.Eq1
	}
	facApproach := approach
	if approach == core.ApproachRecalibrated {
		facApproach = core.ApproachChipShare // recalibration wiring flips it below
	}
	fac := core.Attach(k, coeff, core.Config{Approach: facApproach})
	m := &Machine{
		Eng:     eng,
		K:       k,
		Fac:     fac,
		Wattsup: power.NewWattsupMeter(k.Rec, seed*7919+1),
		Chip:    power.NewChipMeter(k.Rec, seed*7919+2),
		Calib:   cal,
		Rng:     sim.NewRand(seed),
	}
	if approach == core.ApproachRecalibrated {
		if calib.HasChipMeter(spec) {
			fac.EnableRecalibration(m.Chip, model.ScopePackage, cal.Samples, 0)
		} else {
			fac.EnableRecalibration(m.Wattsup, model.ScopeMachine, cal.Samples, 0)
		}
	}
	if a := as.collector().newAuditor(fmt.Sprintf("%s/%s", spec.Name, approach)); a != nil {
		a.AttachMachine(fac)
		m.Audit = a
	}
	return m, nil
}

// LoadLevel selects the paper's two operating points.
type LoadLevel int

const (
	// PeakLoad fully utilizes the server (closed loop, zero think time).
	PeakLoad LoadLevel = iota
	// HalfLoad drives ≈50% utilization (open-loop Poisson arrivals).
	HalfLoad
)

func (l LoadLevel) String() string {
	if l == PeakLoad {
		return "peak load"
	}
	return "half load"
}

// RunSpec configures a workload run.
type RunSpec struct {
	Workload workload.Workload
	Load     LoadLevel
	// Rate overrides the arrival rate (requests/sec) when positive;
	// otherwise it is derived from the load level.
	Rate float64
	// Warmup and Window bound the measurement window.
	Warmup, Window sim.Time
}

// RunResult is one workload run's measurements.
type RunResult struct {
	Spec cpu.MachineSpec
	Gen  *server.LoadGen
	// T0, T1 bound the measurement window.
	T0, T1 sim.Time
	// MeasuredActiveW is the Wattsup machine-active power over the
	// window (reading minus idle).
	MeasuredActiveW float64
	// AccountedW is the facility's aggregate profiled request power:
	// total container energy accrued in the window divided by its
	// length (§4.2's validation quantity).
	AccountedW float64
	// BackgroundW is the background container's share of AccountedW.
	BackgroundW float64
	// Machine retains the assembled machine for further inspection.
	Machine *Machine
}

// ValidationError is the paper's Figure 8 metric:
// |aggregate profiled request power − measured active| / measured.
func (r *RunResult) ValidationError() float64 {
	if r.MeasuredActiveW <= 0 {
		return 0
	}
	d := r.AccountedW - r.MeasuredActiveW
	if d < 0 {
		d = -d
	}
	return d / r.MeasuredActiveW
}

// defaultWarmup and defaultWindow are aligned to Wattsup one-second
// windows so window-mean measurement is exact.
const (
	defaultWarmup = 2 * sim.Second
	defaultWindow = 8 * sim.Second
)

// PeakClients returns the closed-loop client count that saturates a
// deployment on a machine.
func PeakClients(spec cpu.MachineSpec) int { return 3 * spec.Cores() }

// PeakRate estimates a deployment's saturation throughput (req/s).
func PeakRate(spec cpu.MachineSpec, dep *server.Deployment) float64 {
	return float64(spec.Cores()) / dep.MeanServiceSec
}

// Run executes a workload on a fresh machine and measures the window,
// against the process-default audit collector.
func Run(spec cpu.MachineSpec, approach core.Approach, rs RunSpec, seed uint64) (*RunResult, error) {
	return Assembly{}.Run(spec, approach, rs, seed)
}

// Run executes a workload on a fresh machine and measures the window.
func (as Assembly) Run(spec cpu.MachineSpec, approach core.Approach, rs RunSpec, seed uint64) (*RunResult, error) {
	m, err := as.NewMachine(spec, approach, seed)
	if err != nil {
		return nil, err
	}
	return RunOn(m, rs)
}

// RunOn executes a workload run on an assembled machine.
func RunOn(m *Machine, rs RunSpec) (*RunResult, error) {
	if rs.Warmup <= 0 {
		rs.Warmup = defaultWarmup
		// Recalibration against a slow wall meter (1 s windows,
		// 1.2 s delivery lag) needs tens of seconds of samples before
		// the delay estimate and the first refits settle.
		if r := m.Fac.Recalibrator(); r != nil && r.Meter.Interval() >= sim.Second {
			rs.Warmup = 16 * sim.Second
		}
	}
	if rs.Window <= 0 {
		rs.Window = defaultWindow
	}
	dep := rs.Workload.Deploy(m.K, m.Rng.Fork(11))
	gen := server.NewLoadGen(m.K, m.Fac, dep)

	t0 := rs.Warmup
	t1 := rs.Warmup + rs.Window
	switch {
	case rs.Rate > 0:
		gen.RunOpenLoop(rs.Rate, t1, m.Rng.Fork(13))
	case rs.Load == PeakLoad:
		gen.RunClosedLoop(PeakClients(m.K.Spec), t1)
	default:
		gen.RunOpenLoop(0.5*PeakRate(m.K.Spec, dep), t1, m.Rng.Fork(13))
	}

	var accounted0, background0 float64
	m.Eng.At(t0, func() {
		accounted0 = m.Fac.TotalAccountedEnergyJ()
		background0 = m.Fac.Background.EnergyJ()
	})
	var accounted1, background1 float64
	m.Eng.At(t1, func() {
		accounted1 = m.Fac.TotalAccountedEnergyJ()
		background1 = m.Fac.Background.EnergyJ()
	})
	// Run past t1 so delayed meter samples are delivered.
	m.Eng.RunUntil(t1 + 3*sim.Second)

	if err := m.FinalizeAudit(); err != nil {
		return nil, err
	}

	windowSec := float64(t1-t0) / float64(sim.Second)
	measured, err := wattsupWindowMean(m.Wattsup, m.Eng.Now(), t0, t1)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Spec:            m.K.Spec,
		Gen:             gen,
		T0:              t0,
		T1:              t1,
		MeasuredActiveW: measured,
		AccountedW:      (accounted1 - accounted0) / windowSec,
		BackgroundW:     (background1 - background0) / windowSec,
		Machine:         m,
	}, nil
}

// WattsupActiveMean averages a machine's Wattsup active power over
// [t0, t1); the window must be aligned to whole seconds.
func WattsupActiveMean(m *Machine, now, t0, t1 sim.Time) (float64, error) {
	return wattsupWindowMean(m.Wattsup, now, t0, t1)
}

// wattsupWindowMean averages Wattsup active power over [t0, t1).
func wattsupWindowMean(m *power.WattsupMeter, now, t0, t1 sim.Time) (float64, error) {
	var sum float64
	n := 0
	for _, s := range m.Read(now) {
		if s.Start >= t0 && s.Start+m.Interval() <= t1 {
			sum += s.Watts - m.IdleW()
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("experiments: no wattsup samples in [%s,%s)", sim.FormatTime(t0), sim.FormatTime(t1))
	}
	return sum / float64(n), nil
}
