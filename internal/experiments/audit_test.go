package experiments

import (
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// TestAuditedRunIsClean runs a full machine workload with the auditor
// attached and requires a clean bill: energy conservation, lifecycle,
// socket tagging and sim ordering all hold on the real simulation paths.
func TestAuditedRunIsClean(t *testing.T) {
	EnableAudit()
	defer DisableAudit()

	m, err := NewMachine(cpu.SandyBridge, core.ApproachChipShare, 21)
	if err != nil {
		t.Fatal(err)
	}
	if m.Audit == nil {
		t.Fatal("EnableAudit did not attach an auditor to the machine")
	}
	if _, err := RunOn(m, RunSpec{
		Workload: workload.Stress{},
		Load:     HalfLoad,
		Window:   4 * sim.Second,
	}); err != nil {
		t.Fatalf("audited run: %v", err)
	}
	// RunOn already finalized; re-finalizing must stay clean too.
	if err := m.FinalizeAudit(); err != nil {
		t.Fatalf("audit violations on a clean run: %v", err)
	}
	if vs := AuditViolations(); len(vs) != 0 {
		t.Fatalf("registry reports %d violations: %v", len(vs), vs)
	}
}

// TestAuditCatchesTamperedGroundTruth injects a bogus ground-truth energy
// record after a clean run and checks the reconciliation trips: the
// streamed record total no longer matches the recorder series, and the
// attributed energy no longer reconciles with ground truth.
func TestAuditCatchesTamperedGroundTruth(t *testing.T) {
	EnableAudit()
	defer DisableAudit()

	m, err := NewMachine(cpu.SandyBridge, core.ApproachChipShare, 23)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOn(m, RunSpec{
		Workload: workload.Stress{},
		Load:     HalfLoad,
		Window:   2 * sim.Second,
	}); err != nil {
		t.Fatalf("audited run: %v", err)
	}
	// A record stream entry with no matching recorder series write is
	// exactly what a broken accounting path would produce.
	m.Audit.OnRecord("core", 0, sim.Millisecond, 1e6)
	err = m.FinalizeAudit()
	if err == nil {
		t.Fatal("tampered ground truth passed the audit")
	}
	if !strings.Contains(err.Error(), "recorder") {
		t.Fatalf("tampering not attributed to the recorder check: %v", err)
	}
}
