package experiments

import (
	"fmt"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/runner"
	"powercontainers/internal/workload"
)

// EvalWorkloads returns the paper's six evaluation workloads in Figure 5's
// order.
func EvalWorkloads() []workload.Workload {
	return []workload.Workload{
		workload.RSA{},
		workload.Solr{},
		workload.WeBWorK{},
		workload.Stress{},
		workload.GAE{},
		workload.GAE{VirusLoadFraction: 0.5},
	}
}

// Fig5Cell is one bar of Figure 5.
type Fig5Cell struct {
	Machine  string
	Workload string
	Load     LoadLevel
	// ActiveW is measured machine active power.
	ActiveW float64
	// Throughput is completed requests/sec over the window.
	Throughput float64
}

// Fig5Result reproduces Figure 5: measured active power of the application
// workloads on the three machines at peak and half load.
type Fig5Result struct {
	Cells []Fig5Cell
}

// Fig5Options trims the experiment for quick runs.
type Fig5Options struct {
	// Machines restricts the machine set (nil = all three).
	Machines []cpu.MachineSpec
	// Workloads restricts the workload set (nil = all six).
	Workloads []workload.Workload
	// Exec configures parallelism and per-run assembly.
	Exec Exec
}

// fig5Plan decomposes the grid into one self-contained job per
// (machine, workload, load) cell; each job owns its machine simulation.
func fig5Plan(opt Fig5Options, seed uint64) *runner.Plan {
	machines := opt.Machines
	if machines == nil {
		machines = cpu.Specs()
	}
	wls := opt.Workloads
	if wls == nil {
		wls = EvalWorkloads()
	}
	as := opt.Exec.Assembly
	plan := &runner.Plan{}
	for _, spec := range machines {
		for _, wl := range wls {
			for _, load := range []LoadLevel{PeakLoad, HalfLoad} {
				key := fmt.Sprintf("fig5/%s/%s/%s", spec.Name, wl.Name(), load)
				plan.Add(key, func() (any, error) {
					r, err := as.Run(spec, core.ApproachChipShare, RunSpec{Workload: wl, Load: load}, seed)
					if err != nil {
						return nil, err
					}
					return Fig5Cell{
						Machine:    spec.Name,
						Workload:   wl.Name(),
						Load:       load,
						ActiveW:    r.MeasuredActiveW,
						Throughput: r.Gen.Throughput(r.T0, r.T1),
					}, nil
				})
			}
		}
	}
	return plan
}

// Fig5 measures every (machine, workload, load) combination. Cells are
// independent simulations fanned out across opt.Exec.Jobs workers; the
// result is byte-identical at any worker count.
func Fig5(opt Fig5Options, seed uint64) (*Fig5Result, error) {
	cells, err := runner.Collect[Fig5Cell](fig5Plan(opt, seed), opt.Exec.Jobs)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Cells: cells}, nil
}

// Render prints the figure as text.
func (r *Fig5Result) Render() string {
	t := &Table{
		Title:  "Figure 5: measured active power of application workloads",
		Header: []string{"machine", "workload", "load", "active power", "throughput"},
	}
	for _, c := range r.Cells {
		t.AddRow(c.Machine, c.Workload, c.Load.String(), w1(c.ActiveW),
			fmt.Sprintf("%.1f req/s", c.Throughput))
	}
	return t.String()
}
