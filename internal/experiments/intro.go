package experiments

import (
	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// IntroResult reproduces the §1 motivating measurements on SandyBridge:
//
//   - idle power is ≈5% of CPU package power under load (excellent
//     processor energy proportionality) but ≈32% of full machine power;
//   - at the same full CPU utilization, a cache/memory-intensive
//     application consumes substantially more power (paper: 49%) than a
//     CPU spinning program — the dynamic power variation that makes
//     request-level accounting necessary.
type IntroResult struct {
	// PkgIdleW and PkgLoadedW are package idle and package full power
	// under the loaded reference workload.
	PkgIdleW    float64
	PkgLoadedW  float64
	PkgIdleFrac float64
	// MachineIdleW / MachineLoadedW cover the whole machine.
	MachineIdleW    float64
	MachineLoadedW  float64
	MachineIdleFrac float64
	// SpinActiveW and MemActiveW are machine active power for the
	// CPU-spin and cache/memory-intensive microbenchmarks at full
	// utilization; MemOverSpin is their ratio − 1.
	SpinActiveW float64
	MemActiveW  float64
	MemOverSpin float64
}

// Intro measures the motivating numbers.
func Intro(seed uint64) (*IntroResult, error) {
	spec := cpu.SandyBridge
	res := &IntroResult{}

	measure := func(mb workload.MicroBench) (machineActive, pkgFull float64, err error) {
		m, err := NewMachine(spec, core.ApproachChipShare, seed)
		if err != nil {
			return 0, 0, err
		}
		mb.SpawnLoop(m.K, spec.Cores(), 1.0)
		m.Eng.RunUntil(6 * sim.Second)
		machineActive, err = wattsupWindowMean(m.Wattsup, m.Eng.Now(), 1*sim.Second, 3*sim.Second)
		if err != nil {
			return 0, 0, err
		}
		pkgFull = m.K.Rec.PkgActivePowerW(1*sim.Second, 3*sim.Second) + m.Chip.IdleW()
		return machineActive, pkgFull, nil
	}

	benches := workload.MicroBenches()
	spinActive, _, err := measure(benches[0]) // cpu-spin
	if err != nil {
		return nil, err
	}
	memActive, _, err := measure(benches[4]) // mem-heavy
	if err != nil {
		return nil, err
	}
	res.SpinActiveW = spinActive
	res.MemActiveW = memActive
	res.MemOverSpin = memActive/spinActive - 1

	// Idle baselines come straight from the meters; loaded references use
	// a busy mixed workload (GAE-Hybrid peak, the observed high-load
	// scenario of §4).
	m, err := NewMachine(spec, core.ApproachChipShare, seed+1)
	if err != nil {
		return nil, err
	}
	res.PkgIdleW = m.Chip.IdleW()
	res.MachineIdleW = m.Wattsup.IdleW()
	r, err := RunOn(m, RunSpec{Workload: workload.GAE{VirusLoadFraction: 0.5}, Load: PeakLoad})
	if err != nil {
		return nil, err
	}
	res.MachineLoadedW = r.MeasuredActiveW + res.MachineIdleW
	res.PkgLoadedW = m.K.Rec.PkgActivePowerW(r.T0, r.T1) + res.PkgIdleW
	res.PkgIdleFrac = res.PkgIdleW / res.PkgLoadedW
	res.MachineIdleFrac = res.MachineIdleW / res.MachineLoadedW
	return res, nil
}

// Render prints the motivating numbers next to the paper's.
func (r *IntroResult) Render() string {
	t := &Table{
		Title:  "§1 motivating measurements (SandyBridge)",
		Header: []string{"quantity", "measured", "paper"},
	}
	t.AddRow("package idle / package power at high load", pct(r.PkgIdleFrac), "~5%")
	t.AddRow("machine idle / full machine power", pct(r.MachineIdleFrac), "~32%")
	t.AddRow("CPU-spin active power (full util)", w1(r.SpinActiveW), "-")
	t.AddRow("cache/memory-intensive active power", w1(r.MemActiveW), "-")
	t.AddRow("cache/memory-intensive over spin", pct(r.MemOverSpin), "+49%")
	return t.String()
}
