package experiments

import (
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

func TestFig1IncrementalPowerShape(t *testing.T) {
	r, err := Fig1(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Machines {
		inc := m.IncrementW
		if len(inc) != m.Spec.Cores() {
			t.Fatalf("%s: %d increments", m.Spec.Name, len(inc))
		}
		switch m.Spec.Name {
		case "SandyBridge":
			// First increment carries the chip maintenance power.
			if inc[0] < 1.3*inc[1] {
				t.Errorf("SandyBridge first increment %.1f not above later %.1f", inc[0], inc[1])
			}
		case "Woodcrest":
			// First two increments activate the two sockets.
			if inc[0] < 1.2*inc[2] || inc[1] < 1.2*inc[3] {
				t.Errorf("Woodcrest socket-activation increments not elevated: %v", inc)
			}
		}
	}
}

func TestFig2AlignmentFindsTrueDelays(t *testing.T) {
	r, err := Fig2(1)
	if err != nil {
		t.Fatal(err)
	}
	if d := r.ChipPeak; d < 0 || d > 3*sim.Millisecond {
		t.Errorf("chip meter delay estimate %s, want ≈1ms", sim.FormatTime(d))
	}
	if d := r.WattsupPeak; d < sim.Second || d > 1400*sim.Millisecond {
		t.Errorf("wattsup delay estimate %s, want ≈1.2s", sim.FormatTime(d))
	}
	// Figure 3: the aligned traces must correlate strongly.
	var sx, sy, sxy, sxx, syy float64
	n := 0
	for i := range r.TraceMeasured {
		if r.TraceMeasured[i] == 0 {
			continue
		}
		x, y := r.TraceMeasured[i], r.TraceModeled[i]
		sx += x
		sy += y
		sxy += x * y
		sxx += x * x
		syy += y * y
		n++
	}
	if n < 100 {
		t.Fatalf("aligned trace too short: %d points", n)
	}
	fn := float64(n)
	cov := sxy - sx*sy/fn
	vx, vy := sxx-sx*sx/fn, syy-sy*sy/fn
	if corr := cov / (sqrt(vx) * sqrt(vy)); corr < 0.8 {
		t.Errorf("aligned trace correlation %.2f, want ≥0.8", corr)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton iterations suffice for test purposes.
	g := x
	for i := 0; i < 40; i++ {
		g = (g + x/g) / 2
	}
	return g
}

func TestFig4CapturesMultiStageRequest(t *testing.T) {
	r, err := Fig4(1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	var httpdJ, totalJ float64
	for _, s := range r.Stages {
		names[s.Task] = true
		totalJ += s.EnergyJ
		if s.Task == "httpd" {
			httpdJ = s.EnergyJ
		}
	}
	for _, want := range []string{"apache", "httpd", "mysqld", "sh", "latex", "dvipng"} {
		if !names[want] {
			t.Errorf("stage %s not captured", want)
		}
	}
	if httpdJ < 0.4*totalJ {
		t.Errorf("httpd energy %.2f J should dominate the %.2f J total", httpdJ, totalJ)
	}
	// Flow events include forks and socket binds.
	kinds := map[core.TraceEventKind]int{}
	for _, e := range r.Events {
		kinds[e.Kind]++
	}
	if kinds[core.TraceFork] < 3 || kinds[core.TraceBind] < 3 {
		t.Errorf("flow events incomplete: %v", kinds)
	}
}

func TestCoefficientsTableShape(t *testing.T) {
	r, err := Coefficients(cpu.SandyBridge)
	if err != nil {
		t.Fatal(err)
	}
	if r.Coeff.IdleW != 26.1 {
		t.Errorf("Cidle = %.1f, want 26.1", r.Coeff.IdleW)
	}
	// Utilization must be the dominant active power term, as in §4.1.
	coreIdx := 0
	for i, v := range r.CMmax {
		if v > r.CMmax[coreIdx] {
			coreIdx = i
		}
	}
	if coreIdx != 0 {
		t.Errorf("dominant C·Mmax is term %d, want core utilization", coreIdx)
	}
	if !strings.Contains(r.Render(), "Cidle") {
		t.Error("render missing Cidle row")
	}
}

func TestFig5SubsetRuns(t *testing.T) {
	r, err := Fig5(Fig5Options{
		Machines:  []cpu.MachineSpec{cpu.SandyBridge},
		Workloads: []workload.Workload{workload.RSA{}, workload.Stress{}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(r.Cells))
	}
	byKey := map[string]float64{}
	for _, c := range r.Cells {
		byKey[c.Workload+"/"+c.Load.String()] = c.ActiveW
		if c.ActiveW <= 0 || c.Throughput <= 0 {
			t.Fatalf("degenerate cell %+v", c)
		}
	}
	if byKey["Stress/peak load"] <= byKey["RSA-crypto/peak load"] {
		t.Error("Stress should draw more power than RSA at peak")
	}
	if byKey["RSA-crypto/peak load"] <= byKey["RSA-crypto/half load"] {
		t.Error("peak load should draw more than half load")
	}
}

func TestFig6DistributionsBimodalForHybrid(t *testing.T) {
	r, err := Fig6(1)
	if err != nil {
		t.Fatal(err)
	}
	var hybrid *Fig6Workload
	for i := range r.Workloads {
		if r.Workloads[i].Name == "GAE-Hybrid" {
			hybrid = &r.Workloads[i]
		}
	}
	if hybrid == nil {
		t.Fatal("GAE-Hybrid missing")
	}
	if len(hybrid.PowerModes) < 2 {
		t.Fatalf("hybrid power modes %v, want bimodal", hybrid.PowerModes)
	}
	lo, hi := hybrid.PowerModes[0], hybrid.PowerModes[len(hybrid.PowerModes)-1]
	if hi-lo < 2.5 {
		t.Fatalf("modes %v not separated (Vosao vs virus)", hybrid.PowerModes)
	}
	virus := hybrid.ByType["gae/virus"]
	vosao := hybrid.ByType["vosao/read"]
	if virus == nil || vosao == nil {
		t.Fatal("per-type stats missing")
	}
	// The recalibrated model's single shared mem coefficient compresses
	// the virus/Vosao gap relative to the paper's (~17 vs 9 W); the
	// separation must still be unmistakable.
	if virus.MeanPowerW.Mean() < 1.15*vosao.MeanPowerW.Mean() {
		t.Error("virus requests should be distinctly higher power")
	}
	if virus.MeanEnergyJ.Mean() < 4*vosao.MeanEnergyJ.Mean() {
		t.Error("virus requests should use far more energy")
	}
}

func TestFig8OrderingOnSandyBridge(t *testing.T) {
	r, err := Fig8(Fig8Options{
		Machines:  []cpu.MachineSpec{cpu.SandyBridge},
		Workloads: []workload.Workload{workload.Stress{}, workload.GAE{VirusLoadFraction: 0.5}},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := r.WorstByApproach["SandyBridge"]
	if !(w[core.ApproachRecalibrated] < w[core.ApproachChipShare]) {
		t.Errorf("recalibration did not improve worst case: %v", w)
	}
	if w[core.ApproachCoreOnly] < 0.05 {
		t.Errorf("core-only worst case %.1f%% implausibly low", 100*w[core.ApproachCoreOnly])
	}
	if w[core.ApproachRecalibrated] > 0.10 {
		t.Errorf("recalibrated worst case %.1f%% too high", 100*w[core.ApproachRecalibrated])
	}
}

func TestFig9BackgroundShare(t *testing.T) {
	r, err := Fig9(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 2 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.BackgroundShare < 0.10 || c.BackgroundShare > 0.50 {
			t.Errorf("%s background share %.2f outside the 'about one third' band", c.Load, c.BackgroundShare)
		}
		if c.SumOfRequestsW <= 0 {
			t.Errorf("%s requests power missing", c.Load)
		}
	}
}

func TestFig10PredictionOrdering(t *testing.T) {
	r, err := Fig10(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("points = %d, want 6", len(r.Points))
	}
	// The paper's headline: per-request profiles predict well (≤ low
	// double digits), rate-proportional fails badly (up to ~56%).
	if r.WorstContainers > 0.15 {
		t.Errorf("containers worst error %.1f%%, want ≤15%%", 100*r.WorstContainers)
	}
	if r.WorstRate < 2.5*r.WorstContainers {
		t.Errorf("rate-proportional (%.1f%%) should fail much worse than containers (%.1f%%)",
			100*r.WorstRate, 100*r.WorstContainers)
	}
}

func TestFig11ConditioningFairness(t *testing.T) {
	r, err := Fig11(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakConditionedW >= r.PeakOriginalW {
		t.Errorf("conditioning did not cut the peak: %.1f vs %.1f", r.PeakConditionedW, r.PeakOriginalW)
	}
	if r.PeakConditionedW > r.TargetActiveW*1.05 {
		t.Errorf("conditioned peak %.1f W exceeds target %.1f W", r.PeakConditionedW, r.TargetActiveW)
	}
	if r.VirusSlowdown < 0.10 {
		t.Errorf("virus slowdown %.1f%%, want substantial", 100*r.VirusSlowdown)
	}
	if r.NormalSlowdown > 0.05 {
		t.Errorf("normal requests slowed %.1f%%, want ≈0", 100*r.NormalSlowdown)
	}
	if r.VirusSlowdown < 5*r.NormalSlowdown {
		t.Errorf("throttling not fair: virus %.2f vs normal %.2f", r.VirusSlowdown, r.NormalSlowdown)
	}
}

func TestFig13AffinitySpread(t *testing.T) {
	r, err := Fig13(1)
	if err != nil {
		t.Fatal(err)
	}
	ratios := map[string]float64{}
	for _, row := range r.Rows {
		if row.Ratio <= 0 || row.Ratio >= 1 {
			t.Errorf("%s ratio %.2f outside (0,1)", row.Workload, row.Ratio)
		}
		ratios[row.Workload] = row.Ratio
	}
	if ratios["RSA-crypto"] > 0.3 {
		t.Errorf("RSA ratio %.2f, want ≤0.3 (paper 0.22)", ratios["RSA-crypto"])
	}
	if ratios["Stress"] < 2*ratios["RSA-crypto"] {
		t.Errorf("Stress ratio %.2f not well above RSA %.2f", ratios["Stress"], ratios["RSA-crypto"])
	}
}

func TestFig14SavingsAndResponseTimes(t *testing.T) {
	r, err := Fig14(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 3 {
		t.Fatalf("policies = %d", len(r.Policies))
	}
	if r.SavingVsSimple < 0.10 {
		t.Errorf("saving vs simple %.1f%%, want substantial (paper 30%%)", 100*r.SavingVsSimple)
	}
	if r.SavingVsMachineAware < 0.05 {
		t.Errorf("saving vs machine-aware %.1f%%, want substantial (paper 25%%)", 100*r.SavingVsMachineAware)
	}
	simple, machine, aware := r.Policies[0], r.Policies[1], r.Policies[2]
	// Table 1: simple balance overloads the slow machine; the aware
	// policies keep both healthy.
	for _, app := range []string{"GAE-Vosao", "RSA-crypto"} {
		if simple.RespMs[app] < 3*machine.RespMs[app] {
			t.Errorf("%s: simple %.0f ms not clearly worse than machine-aware %.0f ms",
				app, simple.RespMs[app], machine.RespMs[app])
		}
		if aware.RespMs[app] > 200 {
			t.Errorf("%s: workload-aware response %.0f ms unhealthy", app, aware.RespMs[app])
		}
	}
	// The workload-aware policy must pin the low-ratio app (RSA) to the
	// efficient machine.
	if aware.Dispatched[1]["RSA-crypto"] > aware.Dispatched[0]["RSA-crypto"]/10 {
		t.Errorf("workload-aware leaked RSA to Woodcrest: %v", aware.Dispatched)
	}
}

func TestOverheadWithinPaperBallpark(t *testing.T) {
	r, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if r.MaintenanceNsPerOp <= 0 || r.MaintenanceNsPerOp > 5000 {
		t.Errorf("maintenance op %.0f ns implausible", r.MaintenanceNsPerOp)
	}
	if r.OverheadAtOneMs > 0.005 {
		t.Errorf("overhead %.3f%% at 1 ms sampling, want ≲0.1%%", 100*r.OverheadAtOneMs)
	}
	if r.RecalibrationNsPerFit <= 0 || r.RecalibrationNsPerFit > 2e6 {
		t.Errorf("refit %.0f ns implausible", r.RecalibrationNsPerFit)
	}
	if r.ObserverEnergyUJ < 1 || r.ObserverEnergyUJ > 30 {
		t.Errorf("maintenance energy %.1f µJ, paper ≈10 µJ", r.ObserverEnergyUJ)
	}
	if r.ContainerBytes == 0 {
		t.Error("container size missing")
	}
}

func TestRegistryResolvesAllIDs(t *testing.T) {
	for _, e := range Registry() {
		if _, err := Lookup(e.ID); err != nil {
			t.Errorf("lookup %s: %v", e.ID, err)
		}
		for _, a := range e.Aliases {
			if got, err := Lookup(a); err != nil || got.ID != e.ID {
				t.Errorf("alias %s: %v", a, err)
			}
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id resolved")
	}
}

func TestRunDeterminism(t *testing.T) {
	run := func() float64 {
		r, err := Run(cpu.SandyBridge, core.ApproachChipShare,
			RunSpec{Workload: workload.Solr{}, Load: HalfLoad}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return r.AccountedW
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds diverged: %g vs %g", a, b)
	}
}

func TestCluster3ThreeTierHealthy(t *testing.T) {
	r, err := Cluster3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 3 {
		t.Fatalf("policies = %d", len(r.Policies))
	}
	simple, machine, aware := r.Policies[0], r.Policies[1], r.Policies[2]
	// Simple balance saturates the weakest tier; the aware policies must
	// keep every app healthy thanks to the capacity-aware plan and the
	// rebalance pass.
	for _, app := range []string{"GAE-Vosao", "RSA-crypto"} {
		if simple.RespMs[app] < 400 {
			t.Errorf("%s: simple balance unexpectedly healthy (%.0f ms)", app, simple.RespMs[app])
		}
		if machine.RespMs[app] > 200 || aware.RespMs[app] > 200 {
			t.Errorf("%s: aware policies unhealthy (%.0f / %.0f ms)",
				app, machine.RespMs[app], aware.RespMs[app])
		}
	}
	if aware.TotalW >= simple.TotalW {
		t.Errorf("workload-aware %.1f W not below simple %.1f W", aware.TotalW, simple.TotalW)
	}
	// Every app's per-node energy profile exists on all three machines.
	for app, e := range r.Energy {
		if len(e) != 3 {
			t.Fatalf("%s energy profile has %d nodes", app, len(e))
		}
	}
}

// TestRendersDoNotPanic exercises every result's text rendering on cheap
// runs; pcbench depends on these formats.
func TestRendersDoNotPanic(t *testing.T) {
	check := func(name string, r Renderable, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out := r.Render(); len(out) < 40 {
			t.Fatalf("%s render too short:\n%s", name, out)
		}
	}
	r1, err := Fig1(2)
	check("fig1", r1, err)
	r2, err := Fig2(2)
	check("fig2", r2, err)
	r4, err := Fig4(2)
	check("fig4", r4, err)
	rc, err := Coefficients(cpu.Westmere)
	check("coeffs", rc, err)
	r5, err := Fig5(Fig5Options{
		Machines:  []cpu.MachineSpec{cpu.SandyBridge},
		Workloads: []workload.Workload{workload.Solr{}},
	}, 2)
	check("fig5", r5, err)
	r6, err := Fig6(2)
	check("fig6", r6, err)
	r9, err := Fig9(2)
	check("fig9", r9, err)
	ri, err := Intro(2)
	check("intro", ri, err)
	ra, err := Ablations(2)
	check("ablations", ra, err)
	ro, err := Overhead()
	check("overhead", ro, err)
}
