package experiments

import (
	"fmt"
	"strings"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/stats"
	"powercontainers/internal/workload"
)

// Fig6Result reproduces Figures 6 and 7: the distributions of mean request
// power and of request energy usage for the Solr search engine and the
// GAE-Hybrid workload on the SandyBridge machine at half load. GAE-Hybrid
// is bimodal in power (Vosao requests vs power viruses); Solr's energy
// spread comes mostly from execution-time differences.
type Fig6Result struct {
	Workloads []Fig6Workload
}

// Fig6Workload is one workload's request distributions.
type Fig6Workload struct {
	Name string
	// PowerHist bins mean request power (W); EnergyHist bins request
	// energy (J).
	PowerHist  *stats.Histogram
	EnergyHist *stats.Histogram
	// PowerModes are the detected distribution masses (W), e.g. the
	// Vosao mass and the power-virus mass for GAE-Hybrid.
	PowerModes []float64
	// ByType summarizes mean power and energy per request type.
	ByType map[string]*Fig6TypeStats
}

// Fig6TypeStats summarizes one request type.
type Fig6TypeStats struct {
	Count       int
	MeanPowerW  stats.Summary
	MeanEnergyJ stats.Summary
}

// Fig6 collects request power/energy distributions.
func Fig6(seed uint64) (*Fig6Result, error) {
	res := &Fig6Result{}
	for _, wl := range []workload.Workload{workload.Solr{}, workload.GAE{VirusLoadFraction: 0.5}} {
		r, err := Run(cpu.SandyBridge, core.ApproachRecalibrated,
			RunSpec{Workload: wl, Load: HalfLoad}, seed)
		if err != nil {
			return nil, err
		}
		w := Fig6Workload{
			Name:       wl.Name(),
			PowerHist:  stats.NewHistogram(0, 25, 50),
			EnergyHist: stats.NewHistogram(0, 2.5, 50),
			ByType:     map[string]*Fig6TypeStats{},
		}
		for _, req := range r.Gen.Completed() {
			if !req.Finished() || req.Done < r.T0 {
				continue
			}
			p := req.Cont.MeanActivePowerW()
			e := req.Cont.EnergyJ()
			w.PowerHist.Observe(p)
			w.EnergyHist.Observe(e)
			ts := w.ByType[req.Type]
			if ts == nil {
				ts = &Fig6TypeStats{}
				w.ByType[req.Type] = ts
			}
			ts.Count++
			ts.MeanPowerW.Observe(p)
			ts.MeanEnergyJ.Observe(e)
		}
		w.PowerModes = w.PowerHist.Modes(0.03)
		res.Workloads = append(res.Workloads, w)
	}
	return res, nil
}

// Render prints the distributions as text histograms.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "== Figures 6/7: request distributions, %s (SandyBridge, half load) ==\n", w.Name)
		fmt.Fprintf(&b, "mean request power distribution (W):\n%s", asciiHist(w.PowerHist, 40))
		fmt.Fprintf(&b, "request energy distribution (J):\n%s", asciiHist(w.EnergyHist, 40))
		fmt.Fprintf(&b, "power modes: %v\n", fmtFloats(w.PowerModes))
		for _, name := range SortedKeys(w.ByType) {
			ts := w.ByType[name]
			fmt.Fprintf(&b, "  %-14s n=%4d  mean power %5.1f W  mean energy %5.2f J\n",
				name, ts.Count, ts.MeanPowerW.Mean(), ts.MeanEnergyJ.Mean())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// asciiHist renders a histogram as bars.
func asciiHist(h *stats.Histogram, width int) string {
	var b strings.Builder
	maxFrac := 0.0
	for i := range h.Bins {
		if f := h.Fraction(i); f > maxFrac {
			maxFrac = f
		}
	}
	if maxFrac == 0 {
		return "(empty)\n"
	}
	for i := range h.Bins {
		f := h.Fraction(i)
		if f == 0 {
			continue
		}
		n := int(f / maxFrac * float64(width))
		fmt.Fprintf(&b, "  %6.2f | %s %.1f%%\n", h.BinCenter(i), strings.Repeat("#", n), 100*f)
	}
	return b.String()
}

func fmtFloats(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.1f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
