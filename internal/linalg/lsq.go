// Package linalg implements the small dense linear algebra needed for power
// model calibration: least-squares fitting via the normal equations and
// Gaussian elimination with partial pivoting. The systems involved are tiny
// (≤ ~10 unknowns), so numerical sophistication beyond pivoting and a
// ridge fallback for rank-deficient designs is unnecessary.
package linalg

import (
	"errors"
	"fmt"
)

// ErrSingular is returned when a linear system has no unique solution even
// after regularization.
var ErrSingular = errors.New("linalg: singular system")

// Solve solves the square system a·x = b in place (a and b are clobbered)
// using Gaussian elimination with partial pivoting.
func Solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, errors.New("linalg: empty system")
	}
	for i, row := range a {
		if len(row) != n {
			return nil, fmt.Errorf("linalg: row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs has %d entries, want %d", len(b), n)
	}

	for col := 0; col < n; col++ {
		// Partial pivot: find the largest magnitude entry in this column.
		pivot := col
		max := abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if m := abs(a[r][col]); m > max {
				max, pivot = m, r
			}
		}
		// Written as a negated >= so a NaN pivot (from NaN/Inf inputs)
		// also lands in the singular branch: NaN compares false both ways.
		if !(max >= 1e-12) {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]

		//pclint:allow floatsafe pivot magnitude is checked >= 1e-12 above before the swap
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			//pclint:allow floatsafe exact-zero fast path skipping a no-op row update
			if f == 0 {
				continue
			}
			a[r][col] = 0
			for c := col + 1; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}

	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for c := i + 1; c < n; c++ {
			sum -= a[i][c] * x[c]
		}
		//pclint:allow floatsafe pivots are >= 1e-12 and non-finite solutions are rejected below
		x[i] = sum / a[i][i]
	}
	// Finite pivots do not guarantee a finite solution: intermediate
	// elimination can overflow on extreme (or non-finite) inputs. A
	// non-finite solution is useless to callers, so classify it singular.
	for _, v := range x {
		if !isFinite(v) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
//
//pclint:allow floatsafe v-v == 0 is the canonical finiteness test (NaN and Inf fail it)
func isFinite(v float64) bool { return v-v == 0 }

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// LeastSquares fits coefficients beta minimizing Σ w_i (y_i − x_i·beta)²
// over the rows of the design matrix. weights may be nil for uniform
// weighting. If the normal equations are singular (a metric never varies in
// the calibration set), a small ridge term is added; if that still fails,
// ErrSingular is returned.
//
// This is the regression the paper uses both for offline model calibration
// (§4.1) and for measurement-aligned online recalibration (§3.2), where
// offline samples and online samples are "weighed equally in the square
// error minimization target".
func LeastSquares(rows [][]float64, y []float64, weights []float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: no samples")
	}
	if len(rows) != len(y) {
		return nil, fmt.Errorf("linalg: %d rows but %d targets", len(rows), len(y))
	}
	if weights != nil && len(weights) != len(rows) {
		return nil, fmt.Errorf("linalg: %d rows but %d weights", len(rows), len(weights))
	}
	k := len(rows[0])
	for i, r := range rows {
		if len(r) != k {
			return nil, fmt.Errorf("linalg: row %d has %d features, want %d", i, len(r), k)
		}
	}

	// Accumulate the normal equations XᵀWX beta = XᵀWy and solve. Gram's
	// Add/Solve reproduce the historical in-place accumulation and ridge
	// fallback bit-for-bit (see the Gram bit-exactness contract).
	g := NewGram(k)
	for n, row := range rows {
		w := 1.0
		if weights != nil {
			w = weights[n]
		}
		g.Add(row, y[n], w)
	}
	return g.Solve()
}

// cloneMatrix deep-copies a row-major matrix.
func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
