package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"powercontainers/internal/sim"
)

func TestSolveIdentity(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := []float64{3, 4}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 4 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := [][]float64{{0, 1}, {1, 0}}
	b := []float64{5, 7}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-5) > 1e-12 {
		t.Fatalf("x = %v, want [7 5]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := [][]float64{{1, 2}, {2, 4}}
	b := []float64{1, 2}
	if _, err := Solve(a, b); err == nil {
		t.Fatal("singular system did not error")
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(nil, nil); err == nil {
		t.Fatal("empty system did not error")
	}
	if _, err := Solve([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("non-square system did not error")
	}
	if _, err := Solve([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched rhs did not error")
	}
}

// TestSolveRandomRoundTrip generates random well-conditioned systems,
// computes b = A·x, and verifies Solve recovers x.
func TestSolveRandomRoundTrip(t *testing.T) {
	r := sim.NewRand(99)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(6)
		a := make([][]float64, n)
		x := make([]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = r.Float64()*2 - 1
			}
			a[i][i] += float64(n) // diagonal dominance for conditioning
			x[i] = r.Float64()*10 - 5
		}
		b := make([]float64, n)
		for i := range b {
			for j := range x {
				b[i] += a[i][j] * x[j]
			}
		}
		got, err := Solve(cloneMatrix(a), append([]float64(nil), b...))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], x[i])
			}
		}
	}
}

func TestLeastSquaresExactFit(t *testing.T) {
	// y = 2 + 3a − b with more samples than unknowns: residuals are zero
	// so the fit must be exact.
	rows := [][]float64{
		{1, 0, 0},
		{1, 1, 0},
		{1, 0, 1},
		{1, 2, 3},
		{1, 5, 1},
	}
	beta := []float64{2, 3, -1}
	y := make([]float64, len(rows))
	for i, r := range rows {
		y[i] = Dot(r, beta)
	}
	got, err := LeastSquares(rows, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range beta {
		if math.Abs(got[i]-beta[i]) > 1e-9 {
			t.Fatalf("beta = %v, want %v", got, beta)
		}
	}
}

func TestLeastSquaresNoisyFit(t *testing.T) {
	r := sim.NewRand(123)
	trueBeta := []float64{5, 1.5, -0.5}
	var rows [][]float64
	var y []float64
	for i := 0; i < 2000; i++ {
		row := []float64{1, r.Float64() * 4, r.Float64() * 4}
		rows = append(rows, row)
		y = append(y, Dot(row, trueBeta)+r.NormFloat64(0.2))
	}
	got, err := LeastSquares(rows, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range trueBeta {
		if math.Abs(got[i]-trueBeta[i]) > 0.05 {
			t.Fatalf("beta[%d] = %g, want ≈%g", i, got[i], trueBeta[i])
		}
	}
}

func TestLeastSquaresWeighted(t *testing.T) {
	// Two inconsistent observations of a constant; the weighted mean must
	// track the weights.
	rows := [][]float64{{1}, {1}}
	y := []float64{0, 10}
	got, err := LeastSquares(rows, y, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-2.5) > 1e-9 {
		t.Fatalf("weighted mean = %g, want 2.5", got[0])
	}
}

func TestLeastSquaresDegenerateColumn(t *testing.T) {
	// A feature that is always zero would make the normal equations
	// singular; the ridge fallback must shrink its coefficient to ~0 and
	// still fit the live features.
	rows := [][]float64{
		{1, 2, 0},
		{1, 3, 0},
		{1, 5, 0},
		{1, 7, 0},
	}
	y := []float64{5, 7, 11, 15} // y = 1 + 2a
	got, err := LeastSquares(rows, y, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-3 || math.Abs(got[1]-2) > 1e-3 {
		t.Fatalf("fit = %v, want ≈[1 2 0]", got)
	}
	if math.Abs(got[2]) > 1e-3 {
		t.Fatalf("dead feature coefficient = %g, want ≈0", got[2])
	}
}

func TestLeastSquaresShapeErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil, nil); err == nil {
		t.Fatal("no samples did not error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("target length mismatch did not error")
	}
	if _, err := LeastSquares([][]float64{{1}}, []float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("weight length mismatch did not error")
	}
	if _, err := LeastSquares([][]float64{{1}, {1, 2}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("ragged rows did not error")
	}
}

// Property: least squares residual is orthogonal to every feature column.
func TestLeastSquaresNormalEquationsProperty(t *testing.T) {
	r := sim.NewRand(7)
	f := func(seed uint16) bool {
		rr := r.Fork(uint64(seed))
		n, k := 20, 3
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := range rows {
			rows[i] = []float64{1, rr.Float64() * 3, rr.Float64() * 3}
			y[i] = rr.Float64() * 10
		}
		beta, err := LeastSquares(rows, y, nil)
		if err != nil {
			return false
		}
		for j := 0; j < k; j++ {
			var dot float64
			for i := range rows {
				dot += rows[i][j] * (y[i] - Dot(rows[i], beta))
			}
			if math.Abs(dot) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
