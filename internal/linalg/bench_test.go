package linalg

import "testing"

// Benchmark shapes match the recalibrator's working set: k=8 features
// (machine-scope Eq. 2 fit), a 4032-row design (32 offline + MaxOnline=4000
// online samples).
const (
	benchRows = 4032
	benchK    = 8
)

func benchDesign(b *testing.B) (rows [][]float64, y, w []float64) {
	b.Helper()
	rows, y, w = testRows(42, benchRows, benchK)
	return rows, y, w
}

// BenchmarkLeastSquares is the historical batch path: one full O(n·k²)
// accumulation plus solve per call — what Refit used to pay every period.
func BenchmarkLeastSquares(b *testing.B) {
	rows, y, w := benchDesign(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(rows, y, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGramSolve is the incremental path's per-refit cost: the O(k³)
// solve over already-accumulated sufficient statistics.
func BenchmarkGramSolve(b *testing.B) {
	rows, y, w := benchDesign(b)
	g := NewGram(benchK)
	for i, row := range rows {
		g.Add(row, y[i], w[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGramFold is the incremental path's per-sample cost: one Add plus
// one Remove (a full steady-state eviction cycle).
func BenchmarkGramFold(b *testing.B) {
	rows, y, w := benchDesign(b)
	g := NewGram(benchK)
	for i, row := range rows {
		g.Add(row, y[i], w[i])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % benchRows
		g.Add(rows[j], y[j], w[j])
		if err := g.Remove(rows[j], y[j], w[j]); err != nil {
			b.Fatal(err)
		}
	}
}
