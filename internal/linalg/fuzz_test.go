package linalg

import (
	"encoding/binary"
	"math"
	"testing"
)

// floatsFrom decodes n float64 values from raw fuzz bytes: full 8-byte
// words while they last (so the fuzzer can reach NaN/Inf/denormal bit
// patterns), then single bytes, then a deterministic filler.
func floatsFrom(data []byte, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch {
		case (i+1)*8 <= len(data):
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		case i < len(data):
			out[i] = float64(int8(data[i]))
		default:
			out[i] = float64(i%7) - 3
		}
	}
	return out
}

// FuzzSolveLeastSquares hammers LeastSquares (and Solve underneath) with
// arbitrary designs, including rank-deficient, NaN- and Inf-carrying, and
// overflow-prone ones. The contract under test: a nil error implies a
// solution of the right length whose entries are all finite — degenerate
// systems must surface as ErrSingular, never as garbage coefficients.
func FuzzSolveLeastSquares(f *testing.F) {
	f.Add(uint8(2), uint8(5), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add(uint8(3), uint8(3), []byte{})                       // underdetermined filler design
	f.Add(uint8(1), uint8(4), []byte{0, 0, 0, 0, 0, 0, 0, 0}) // all-zero: singular
	// A NaN in the design used to pass the pivot check and come back as a
	// NaN solution with a nil error.
	nan := make([]byte, 24)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(uint8(2), uint8(6), nan)
	// Huge finite values overflow the normal equations to Inf.
	huge := make([]byte, 32)
	binary.LittleEndian.PutUint64(huge, math.Float64bits(1e308))
	binary.LittleEndian.PutUint64(huge[8:], math.Float64bits(-1e308))
	f.Add(uint8(3), uint8(7), huge)
	f.Fuzz(func(t *testing.T, kRaw, nRaw uint8, data []byte) {
		k := int(kRaw)%5 + 1
		n := int(nRaw)%10 + 1
		vals := floatsFrom(data, n*(k+1))
		rows := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			rows[i] = vals[i*(k+1) : i*(k+1)+k]
			y[i] = vals[i*(k+1)+k]
		}
		sol, err := LeastSquares(rows, y, nil)
		if err == nil {
			if len(sol) != k {
				t.Fatalf("solution has %d coefficients, want %d", len(sol), k)
			}
			for _, v := range sol {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("nil error but non-finite solution %v", sol)
				}
			}
		}

		// Hammer Solve directly on a k×k slice of the same data.
		sq := make([][]float64, k)
		b := make([]float64, k)
		vals2 := floatsFrom(data, k*(k+1))
		for i := 0; i < k; i++ {
			sq[i] = append([]float64(nil), vals2[i*(k+1):i*(k+1)+k]...)
			b[i] = vals2[i*(k+1)+k]
		}
		if x, err := Solve(sq, b); err == nil {
			if len(x) != k {
				t.Fatalf("Solve returned %d entries, want %d", len(x), k)
			}
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("Solve nil error but non-finite solution %v", x)
				}
			}
		}
	})
}
