package linalg

import (
	"encoding/json"
	"math"
	"testing"
)

// deterministic pseudo-random stream for test designs (no math/rand in this
// repo's test idiom where reproducibility matters).
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) float() float64 {
	return float64(s.next()>>11)/(1<<53)*4 - 2
}

func testRows(seed uint64, n, k int) (rows [][]float64, y, w []float64) {
	rng := &splitmix{state: seed}
	rows = make([][]float64, n)
	y = make([]float64, n)
	w = make([]float64, n)
	for i := range rows {
		rows[i] = make([]float64, k)
		for j := range rows[i] {
			rows[i][j] = rng.float()
		}
		y[i] = rng.float()
		w[i] = 0.5 + rng.float()*0.25 + 1 // in [0.75, 1.75] roughly, always positive
	}
	return rows, y, w
}

// TestGramMatchesLeastSquaresExactly pins the bit-exactness contract: folding
// rows through Add and solving must reproduce LeastSquares bit-for-bit.
func TestGramMatchesLeastSquaresExactly(t *testing.T) {
	for _, k := range []int{1, 3, 8} {
		rows, y, w := testRows(uint64(k)*7+1, 40, k)
		want, err := LeastSquares(rows, y, w)
		if err != nil {
			t.Fatalf("k=%d: LeastSquares: %v", k, err)
		}
		g := NewGram(k)
		for i, row := range rows {
			g.Add(row, y[i], w[i])
		}
		got, err := g.Solve()
		if err != nil {
			t.Fatalf("k=%d: Gram.Solve: %v", k, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("k=%d: coefficient %d differs: gram %v vs batch %v", k, i, got[i], want[i])
			}
		}
	}
}

// TestGramAddRemoveWindow slides a window over a sample stream and checks the
// downdated solution against a from-scratch batch fit of the retained rows.
func TestGramAddRemoveWindow(t *testing.T) {
	const n, k, window = 60, 4, 25
	rows, y, w := testRows(99, n, k)
	g := NewGram(k)
	for i := 0; i < n; i++ {
		g.Add(rows[i], y[i], w[i])
		if i >= window {
			evict := i - window
			if err := g.Remove(rows[evict], y[evict], w[evict]); err != nil {
				t.Fatalf("Remove(%d): %v", evict, err)
			}
		}
	}
	lo := n - window
	if g.N() != window {
		t.Fatalf("N = %d, want %d", g.N(), window)
	}
	want, err := LeastSquares(rows[lo:], y[lo:], w[lo:])
	if err != nil {
		t.Fatalf("batch fit: %v", err)
	}
	got, err := g.Solve()
	if err != nil {
		t.Fatalf("Gram.Solve: %v", err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
			t.Fatalf("coefficient %d drifted past tolerance: gram %v vs batch %v", i, got[i], want[i])
		}
	}
}

func TestGramRemoveUnderflow(t *testing.T) {
	g := NewGram(2)
	row := []float64{1, 2}
	if err := g.Remove(row, 1, 1); err != ErrEmptyGram {
		t.Fatalf("Remove on empty Gram: err = %v, want ErrEmptyGram", err)
	}
	g.Add(row, 1, 1)
	if err := g.Remove(row, 1, 1); err != nil {
		t.Fatalf("Remove after Add: %v", err)
	}
	if err := g.Remove(row, 1, 1); err != ErrEmptyGram {
		t.Fatalf("second Remove: err = %v, want ErrEmptyGram", err)
	}
}

// TestGramSubsetMatchesProjectedFit checks that projecting an accumulated
// Gram onto a column subset equals a Gram built directly from the projected
// rows — bit-for-bit, since the retained accumulator entries saw identical
// addition sequences.
func TestGramSubsetMatchesProjectedFit(t *testing.T) {
	const n, k = 30, 6
	cols := []int{0, 2, 3, 5}
	rows, y, w := testRows(7, n, k)
	full := NewGram(k)
	proj := NewGram(len(cols))
	for i, row := range rows {
		full.Add(row, y[i], w[i])
		sub := make([]float64, len(cols))
		for j, c := range cols {
			sub[j] = row[c]
		}
		proj.Add(sub, y[i], w[i])
	}
	got, err := full.Subset(cols).Solve()
	if err != nil {
		t.Fatalf("subset solve: %v", err)
	}
	want, err := proj.Solve()
	if err != nil {
		t.Fatalf("projected solve: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coefficient %d differs: subset %v vs projected %v", i, got[i], want[i])
		}
	}
}

func TestGramSubsetValidation(t *testing.T) {
	g := NewGram(4)
	for _, cols := range [][]int{{}, {2, 1}, {0, 0}, {3, 4}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Subset(%v) did not panic", cols)
				}
			}()
			g.Subset(cols)
		}()
	}
}

func TestGramCloneIndependence(t *testing.T) {
	rows, y, w := testRows(3, 10, 3)
	g := NewGram(3)
	for i, row := range rows {
		g.Add(row, y[i], w[i])
	}
	snap := g.Clone()
	base, err := snap.Solve()
	if err != nil {
		t.Fatalf("snapshot solve: %v", err)
	}
	// Mutate the original; the clone's solution must not move.
	g.Add([]float64{9, 9, 9}, 100, 2)
	after, err := snap.Solve()
	if err != nil {
		t.Fatalf("snapshot solve after mutation: %v", err)
	}
	for i := range base {
		if base[i] != after[i] {
			t.Fatalf("clone aliased original: coefficient %d moved %v -> %v", i, base[i], after[i])
		}
	}
}

func TestGramEmptySolve(t *testing.T) {
	if _, err := NewGram(3).Solve(); err == nil {
		t.Fatal("Solve on empty Gram succeeded")
	}
}

func TestGramStateRoundTripPreservesResidue(t *testing.T) {
	rng := &splitmix{state: 41}
	g := NewGram(3)
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{1, rng.float(), rng.float()}
		g.Add(rows[i], 3*rng.float(), 1)
	}
	// Introduce Remove residue so the snapshot differs from a clean rebuild.
	for _, r := range rows[:17] {
		if err := g.Remove(r, 0.5, 1); err != nil {
			t.Fatal(err)
		}
	}
	enc, err := json.Marshal(g.State())
	if err != nil {
		t.Fatal(err)
	}
	var st GramState
	if err := json.Unmarshal(enc, &st); err != nil {
		t.Fatal(err)
	}
	back, err := GramFromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != g.K() || back.N() != g.N() {
		t.Fatalf("restored k/n = %d/%d, want %d/%d", back.K(), back.N(), g.K(), g.N())
	}
	a, errA := g.Solve()
	b, errB := back.Solve()
	if errA != nil || errB != nil {
		t.Fatalf("solve errors: %v, %v", errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coef %d: restored %v, want %v (bit-exact)", i, b[i], a[i])
		}
	}
}

func TestGramFromStateRejectsBadState(t *testing.T) {
	bad := []GramState{
		{K: 0},
		{K: 2, N: -1, XtY: []float64{0, 0}, XtX: [][]float64{{0, 0}, {0}}},
		{K: 2, XtY: []float64{0}, XtX: [][]float64{{0, 0}, {0}}},
		{K: 2, XtY: []float64{0, 0}, XtX: [][]float64{{0, 0}}},
		{K: 2, XtY: []float64{0, 0}, XtX: [][]float64{{0}, {0}}},
	}
	for i, st := range bad {
		if _, err := GramFromState(st); err == nil {
			t.Fatalf("bad state %d accepted", i)
		}
	}
}
