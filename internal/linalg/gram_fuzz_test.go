package linalg

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzGramCycle hammers the Gram add/remove/rebuild cycle with arbitrary
// observations — including NaN/Inf-carrying and overflow-prone ones — and an
// arbitrary op script. The contract under test mirrors FuzzSolveLeastSquares:
// a nil Solve error implies a finite solution of the right length, removing
// past empty must error (never drive N negative), and a rebuild (fresh Gram,
// re-Add of the live window) must solve to the same coefficients as a batch
// LeastSquares over that window, bit-for-bit.
func FuzzGramCycle(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{0, 0, 1, 0, 2})
	f.Add(uint8(1), []byte{}, []byte{1, 1, 1}) // remove-more-than-added
	nan := make([]byte, 16)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add(uint8(2), nan, []byte{0, 0, 0, 2})
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint64(huge, math.Float64bits(1e308))
	binary.LittleEndian.PutUint64(huge[8:], math.Float64bits(-1e308))
	f.Add(uint8(4), huge, []byte{0, 0, 0, 0, 1, 1, 2, 0})
	f.Fuzz(func(t *testing.T, kRaw uint8, data, ops []byte) {
		k := int(kRaw)%5 + 1
		if len(ops) > 64 {
			ops = ops[:64]
		}
		vals := floatsFrom(data, (len(ops)+1)*(k+2))
		g := NewGram(k)
		// live is the window of observations currently folded in, in fold
		// order: op 0 adds the next observation, op 1 removes the oldest,
		// op 2 rebuilds from scratch and cross-checks against the batch path.
		type obs struct {
			row  []float64
			y, w float64
		}
		var live []obs
		next := 0
		takeObs := func() obs {
			o := obs{
				row: vals[next*(k+2) : next*(k+2)+k],
				y:   vals[next*(k+2)+k],
				w:   vals[next*(k+2)+k+1],
			}
			next++
			return o
		}
		checkSolve := func(g *Gram) {
			sol, err := g.Solve()
			if err != nil {
				return
			}
			if len(sol) != k {
				t.Fatalf("solution has %d coefficients, want %d", len(sol), k)
			}
			for _, v := range sol {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("nil error but non-finite solution %v", sol)
				}
			}
		}
		for _, op := range ops {
			switch op % 3 {
			case 0:
				o := takeObs()
				g.Add(o.row, o.y, o.w)
				live = append(live, o)
			case 1:
				if len(live) == 0 {
					if err := g.Remove(vals[:k], 0, 1); err != ErrEmptyGram {
						t.Fatalf("Remove on empty Gram: err = %v, want ErrEmptyGram", err)
					}
					continue
				}
				o := live[0]
				live = live[1:]
				if err := g.Remove(o.row, o.y, o.w); err != nil {
					t.Fatalf("Remove with %d live observations: %v", len(live)+1, err)
				}
			case 2:
				rebuilt := NewGram(k)
				rows := make([][]float64, len(live))
				ys := make([]float64, len(live))
				ws := make([]float64, len(live))
				for i, o := range live {
					rebuilt.Add(o.row, o.y, o.w)
					rows[i], ys[i], ws[i] = o.row, o.y, o.w
				}
				if len(live) > 0 {
					bSol, bErr := LeastSquares(rows, ys, ws)
					gSol, gErr := rebuilt.Solve()
					if (bErr == nil) != (gErr == nil) {
						t.Fatalf("rebuild diverged from batch: gram err %v, batch err %v", gErr, bErr)
					}
					if bErr == nil {
						for i := range bSol {
							if gSol[i] != bSol[i] {
								t.Fatalf("rebuild coefficient %d differs: gram %v vs batch %v", i, gSol[i], bSol[i])
							}
						}
					}
				}
				g = rebuilt
			}
			if g.N() != len(live) {
				t.Fatalf("N = %d, want %d live observations", g.N(), len(live))
			}
			checkSolve(g)
		}
	})
}
