package linalg

import (
	"errors"
	"fmt"
)

// Gram holds the sufficient statistics of a weighted least-squares problem:
// the normal-equation accumulators XᵀWX and XᵀWy plus the folded row count.
// It turns the O(n·k²) per-refit accumulation of LeastSquares into O(k²)
// incremental updates: Add folds one observation in, Remove folds one out
// (exact rank-1 downdate of the accumulators), and Solve runs the same
// pivoted elimination + ridge fallback as LeastSquares on the current state.
//
// Bit-exactness contract: folding rows via Add in order performs the exact
// same floating-point additions, in the same order, as one LeastSquares call
// over those rows — so Gram-based fits reproduce batch fits bit-for-bit
// until the first Remove. Remove introduces rounding-level residue (float
// addition does not associate), which callers bound with periodic exact
// rebuilds from a retained base (see Clone).
type Gram struct {
	k   int
	n   int
	xtx [][]float64 // upper triangle maintained; mirrored on Solve
	xty []float64

	// Solve scratch, lazily built and reused across calls: the streaming
	// engine refits every tick, and a fresh dense mirror per solve was a
	// measurable share of its steady-state allocations. Solve clobbers
	// the scratch and returns a freshly allocated solution, so nothing
	// the caller retains aliases it.
	scratchM    [][]float64
	scratchBack []float64
	scratchB    []float64
}

// NewGram returns an empty accumulator for k-feature rows.
func NewGram(k int) *Gram {
	if k <= 0 {
		panic(fmt.Sprintf("linalg: NewGram with %d features", k))
	}
	g := &Gram{k: k, xty: make([]float64, k), xtx: make([][]float64, k)}
	for i := range g.xtx {
		g.xtx[i] = make([]float64, k)
	}
	return g
}

// K returns the feature count.
func (g *Gram) K() int { return g.k }

// N returns the number of folded observations (adds minus removes).
func (g *Gram) N() int { return g.n }

// Add folds one weighted observation into the accumulators. The loop body
// mirrors LeastSquares' accumulation exactly (same products, same addition
// order) to preserve the bit-exactness contract.
func (g *Gram) Add(row []float64, y, w float64) {
	if len(row) != g.k {
		panic(fmt.Sprintf("linalg: Gram.Add row has %d features, want %d", len(row), g.k))
	}
	for i := 0; i < g.k; i++ {
		wi := w * row[i]
		g.xty[i] += wi * y
		for j := i; j < g.k; j++ {
			g.xtx[i][j] += wi * row[j]
		}
	}
	g.n++
}

// ErrEmptyGram is returned by Remove when no observations remain.
var ErrEmptyGram = errors.New("linalg: remove from empty Gram")

// Remove folds one observation out of the accumulators by subtracting the
// exact terms Add contributed. The subtraction is algebraically exact but
// floats do not associate, so repeated Remove accumulates rounding residue;
// callers rebuild periodically (Clone a retained base and re-Add).
func (g *Gram) Remove(row []float64, y, w float64) error {
	if len(row) != g.k {
		panic(fmt.Sprintf("linalg: Gram.Remove row has %d features, want %d", len(row), g.k))
	}
	if g.n == 0 {
		return ErrEmptyGram
	}
	for i := 0; i < g.k; i++ {
		wi := w * row[i]
		g.xty[i] -= wi * y
		for j := i; j < g.k; j++ {
			g.xtx[i][j] -= wi * row[j]
		}
	}
	g.n--
	return nil
}

// Clone returns an independent deep copy; the snapshot pattern for the
// rebuild policy (clone the never-evicted offline base, re-fold the live
// online window).
func (g *Gram) Clone() *Gram {
	out := &Gram{k: g.k, n: g.n, xty: append([]float64(nil), g.xty...)}
	out.xtx = make([][]float64, g.k)
	for i, row := range g.xtx {
		out.xtx[i] = append([]float64(nil), row...)
	}
	return out
}

// GramState is the serializable snapshot of a Gram accumulator. Streaming
// checkpoints must carry the accumulators verbatim — rebuilding from the
// retained observation window would yield the algebraically equal but
// bit-different "clean" accumulators (Remove leaves rounding residue), and
// the restored engine would diverge from the uninterrupted one at the ulp
// level. JSON round-trips float64 exactly, so State/GramFromState preserve
// every bit, residue included.
type GramState struct {
	K   int         `json:"k"`
	N   int         `json:"n"`
	XtX [][]float64 `json:"xtx"` // upper triangle, row i holds columns [i, k)
	XtY []float64   `json:"xty"`
}

// State returns a deep-copied snapshot of the accumulators.
func (g *Gram) State() GramState {
	st := GramState{K: g.k, N: g.n, XtY: append([]float64(nil), g.xty...)}
	st.XtX = make([][]float64, g.k)
	for i, row := range g.xtx {
		st.XtX[i] = append([]float64(nil), row[i:]...)
	}
	return st
}

// GramFromState reconstructs an accumulator from a snapshot.
func GramFromState(st GramState) (*Gram, error) {
	if st.K <= 0 || st.N < 0 || len(st.XtY) != st.K || len(st.XtX) != st.K {
		return nil, fmt.Errorf("linalg: invalid Gram state (k=%d n=%d |xty|=%d |xtx|=%d)", st.K, st.N, len(st.XtY), len(st.XtX))
	}
	g := NewGram(st.K)
	g.n = st.N
	copy(g.xty, st.XtY)
	for i, row := range st.XtX {
		if len(row) != st.K-i {
			return nil, fmt.Errorf("linalg: Gram state row %d has %d entries, want %d", i, len(row), st.K-i)
		}
		copy(g.xtx[i][i:], row)
	}
	return g, nil
}

// Subset projects the accumulators onto the given strictly-increasing column
// indices, returning the Gram a fit over only those features would have
// produced from the same rows — entry (i,j) of the result is entry
// (cols[i], cols[j]) of g, which was accumulated from the identical product
// sequence. This lets one pass over calibration samples serve nested feature
// layouts (Eq. 1 is Eq. 2 minus the chip-share column).
func (g *Gram) Subset(cols []int) *Gram {
	if len(cols) == 0 {
		panic("linalg: Gram.Subset with no columns")
	}
	prev := -1
	for _, c := range cols {
		if c <= prev || c >= g.k {
			panic(fmt.Sprintf("linalg: Gram.Subset columns %v not strictly increasing within [0,%d)", cols, g.k))
		}
		prev = c
	}
	out := NewGram(len(cols))
	out.n = g.n
	for i, ci := range cols {
		out.xty[i] = g.xty[ci]
		for j, cj := range cols {
			if j < i {
				continue // upper triangle only; ci<cj holds since cols ascend
			}
			out.xtx[i][j] = g.xtx[ci][cj]
		}
	}
	return out
}

// dense fills the reusable scratch with the mirrored full normal matrix.
// Each call refreshes the scratch from the accumulators, so clobbering by
// a previous Solve does not leak into the next one.
func (g *Gram) dense() [][]float64 {
	if g.scratchM == nil {
		g.scratchBack = make([]float64, g.k*g.k)
		g.scratchM = make([][]float64, g.k)
		for i := range g.scratchM {
			g.scratchM[i] = g.scratchBack[i*g.k : (i+1)*g.k : (i+1)*g.k]
		}
	}
	out := g.scratchM
	for i := range out {
		copy(out[i], g.xtx[i])
	}
	for i := 0; i < g.k; i++ {
		for j := 0; j < i; j++ {
			out[i][j] = out[j][i]
		}
	}
	return out
}

// Solve solves the accumulated normal equations with the same pivoted
// elimination and ridge fallback as LeastSquares, leaving the accumulators
// untouched. With no folded observations there is no meaningful system.
func (g *Gram) Solve() ([]float64, error) {
	if g.n == 0 {
		return nil, errors.New("linalg: no samples")
	}
	sol, err := Solve(g.dense(), g.rhs())
	if err == nil {
		return sol, nil
	}
	// Ridge fallback: a metric that never varies in the calibration
	// workloads makes XᵀX singular; shrink its coefficient toward zero
	// instead of failing the whole calibration.
	const ridge = 1e-6
	reg := g.dense()
	for i := 0; i < g.k; i++ {
		reg[i][i] += ridge * (1 + g.xtx[i][i])
	}
	sol, err = Solve(reg, g.rhs())
	if err != nil {
		return nil, ErrSingular
	}
	return sol, nil
}

// rhs copies the accumulated XᵀY into the reusable right-hand-side
// scratch (Solve clobbers its b argument).
func (g *Gram) rhs() []float64 {
	if g.scratchB == nil {
		g.scratchB = make([]float64, g.k)
	}
	copy(g.scratchB, g.xty)
	return g.scratchB
}
