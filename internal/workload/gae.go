package workload

import (
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// GAE is the Google App Engine cloud workload (§4.2): the Vosao content
// management application on a local GAE Java server, modeling collaborative
// web content editing at a 9:1 read/write ratio, plus the GAE system's
// untraceable background processing — and, for GAE-Hybrid, a mixture with
// simple power-virus requests that keep the cache/memory and instruction
// pipelining units simultaneously busy.
type GAE struct {
	// VirusLoadFraction is the fraction of offered busy-time generated
	// by power-virus requests: 0 for GAE-Vosao, ≈0.5 for GAE-Hybrid.
	VirusLoadFraction float64
	// DisableBackground suppresses the GAE background processing tasks.
	DisableBackground bool
}

// Name implements Workload.
func (w GAE) Name() string {
	if w.VirusLoadFraction > 0 {
		return "GAE-Hybrid"
	}
	return "GAE-Vosao"
}

// Request work parameters.
const (
	gaeReadCycles  = 30e6
	gaeWriteCycles = 55e6
	// VirusCycles yields ≈100 ms on SandyBridge after stall inflation;
	// the virus "occupies a CPU core for about 100 msecs" (§4.3).
	VirusCycles = 125e6

	// Background processing: each of two system tasks alternates a
	// ≈10 ms burst with a 6 ms pause, together drawing roughly a third
	// of the system's active power at load (Figure 9).
	gaeBackgroundBurst = 30e6
	gaeBackgroundPause = 6 * sim.Millisecond
	gaeBackgroundTasks = 2
)

type gaeParams struct {
	cycles    float64
	act       string // "jvm" or "virus"
	diskBytes int64
	netBytes  int64
}

// Deploy implements Workload.
func (w GAE) Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment {
	entry := kernel.NewListener("gae")
	handler := func(worker int) server.Handler {
		return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			env := payload.(*server.Envelope)
			p := env.Req.Payload.(gaeParams)
			act := ActJVM
			if p.act == "virus" {
				act = ActVirus
			}
			ops := []kernel.Op{kernel.OpCompute{BaseCycles: p.cycles, Act: act}}
			if p.diskBytes > 0 {
				ops = append(ops, kernel.OpDisk{Bytes: p.diskBytes})
			}
			if p.netBytes > 0 {
				ops = append(ops, kernel.OpNet{Bytes: p.netBytes})
			}
			return ops
		}
	}
	pool := server.NewEntryPool(k, "gae-java", 2*k.Spec.Cores(), entry, handler)

	if !w.DisableBackground {
		SpawnGAEBackground(k)
	}

	// Convert the virus *load* fraction into a request-count probability
	// using the per-type mean busy times.
	vosaoSec := 0.9*meanServiceSec(k.Spec, gaeReadCycles, ActJVM) +
		0.1*meanServiceSec(k.Spec, gaeWriteCycles, ActJVM)
	virusSec := meanServiceSec(k.Spec, VirusCycles, ActVirus)
	virusProb := 0.0
	if w.VirusLoadFraction > 0 {
		lf := w.VirusLoadFraction
		virusProb = (lf / virusSec) / (lf/virusSec + (1-lf)/vosaoSec)
	}

	newRequest := func() *server.Request {
		if virusProb > 0 && rng.Float64() < virusProb {
			return VirusRequest(rng)
		}
		if rng.Float64() < 0.9 {
			p := gaeParams{cycles: gaeReadCycles * jitter(rng, 0.15), act: "jvm", netBytes: 30 << 10}
			if rng.Float64() < 0.2 {
				p.diskBytes = 100 << 10
			}
			return &server.Request{Type: "vosao/read", Payload: p}
		}
		return &server.Request{Type: "vosao/write", Payload: gaeParams{
			cycles: gaeWriteCycles * jitter(rng, 0.15), act: "jvm",
			diskBytes: 250 << 10, netBytes: 10 << 10,
		}}
	}
	mean := (1-virusProb)*vosaoSec + virusProb*virusSec
	return &server.Deployment{
		Entry:          entry,
		NewRequest:     newRequest,
		MeanServiceSec: mean,
		Pools:          []*server.Pool{pool},
	}
}

// VirusRequest builds one power-virus request; the Figure 11 conditioning
// experiment injects these sporadically into a running Vosao deployment.
func VirusRequest(rng *sim.Rand) *server.Request {
	return &server.Request{Type: "gae/virus", Payload: gaeParams{
		cycles: VirusCycles * jitter(rng, 0.05), act: "virus", netBytes: 1 << 10,
	}}
}

// GAEBackgroundCoreDemand returns the expected busy-core demand of the GAE
// background tasks on a machine — capacity planners must reserve for it.
func GAEBackgroundCoreDemand(spec cpu.MachineSpec) float64 {
	burstSec := meanServiceSec(spec, gaeBackgroundBurst, ActGAEBackground)
	pauseSec := float64(gaeBackgroundPause) / float64(sim.Second)
	return gaeBackgroundTasks * burstSec / (burstSec + pauseSec)
}

// SpawnGAEBackground starts the GAE system's background processing tasks:
// long-running unbound tasks whose activity lands in the facility's special
// background container because it "presents no traceable connections to
// application request executions" (§4.2).
func SpawnGAEBackground(k *kernel.Kernel) []*kernel.Task {
	var tasks []*kernel.Task
	for i := 0; i < gaeBackgroundTasks; i++ {
		burst := true
		prog := kernel.FuncProgram(func(k *kernel.Kernel, t *kernel.Task) kernel.Op {
			// Alternate burst and pause forever.
			if burst {
				burst = false
				return kernel.OpCompute{BaseCycles: gaeBackgroundBurst, Act: ActGAEBackground}
			}
			burst = true
			return kernel.OpSleep{D: gaeBackgroundPause}
		})
		t := k.Spawn("gae-system", prog, nil)
		// Platform services run at elevated priority, so background
		// processing keeps its share even under request floods — the
		// paper measured it at roughly a third of active power at both
		// peak and half load (Figure 9).
		t.Priority = 1
		tasks = append(tasks, t)
	}
	return tasks
}
