package workload

import (
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// Solr is the Apache Solr / Lucene search workload: full-text queries over
// an in-memory Wikipedia index served from a Tomcat servlet container
// (§4.2). Request energy varies mostly through execution-time differences
// across queries (Figure 7), not through power differences.
type Solr struct{}

// Name implements Workload.
func (Solr) Name() string { return "Solr" }

type solrParams struct {
	parseCycles  float64
	searchCycles float64
	resultBytes  int64
}

const (
	solrParseCycles      = 2e6
	solrSearchBaseCycles = 8e6
	solrSearchMeanExtra  = 26e6
	solrSearchMaxCycles  = 150e6
)

// Deploy implements Workload.
func (Solr) Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment {
	entry := kernel.NewListener("solr")
	handler := func(worker int) server.Handler {
		return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			env := payload.(*server.Envelope)
			p := env.Req.Payload.(solrParams)
			return []kernel.Op{
				kernel.OpCompute{BaseCycles: p.parseCycles, Act: ActSolrParse},
				kernel.OpCompute{BaseCycles: p.searchCycles, Act: ActSolrSearch},
				kernel.OpNet{Bytes: p.resultBytes},
			}
		}
	}
	pool := server.NewEntryPool(k, "tomcat", 2*k.Spec.Cores(), entry, handler)

	newRequest := func() *server.Request {
		// Query cost: exponential tail over a base, like the skewed
		// popularity/length mix of Wikipedia-title queries.
		search := solrSearchBaseCycles + rng.ExpFloat64(solrSearchMeanExtra)
		if search > solrSearchMaxCycles {
			search = solrSearchMaxCycles
		}
		return &server.Request{
			Type: "solr/query",
			Payload: solrParams{
				parseCycles:  solrParseCycles * jitter(rng, 0.1),
				searchCycles: search,
				resultBytes:  20<<10 + int64(rng.Intn(60<<10)),
			},
		}
	}
	mean := meanServiceSec(k.Spec, solrParseCycles, ActSolrParse) +
		meanServiceSec(k.Spec, solrSearchBaseCycles+solrSearchMeanExtra, ActSolrSearch)
	return &server.Deployment{
		Entry:          entry,
		NewRequest:     newRequest,
		MeanServiceSec: mean,
		Pools:          []*server.Pool{pool},
	}
}
