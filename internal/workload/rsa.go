package workload

import (
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// RSA key classes and their per-request work. Costs scale roughly 4× per
// key-size doubling, like OpenSSL private-key operations; larger keys also
// touch a bigger working set, so their per-cycle power differs slightly —
// which is what per-request energy profiles capture and coarse
// CPU-utilization scaling misses (Figure 10).
var rsaKeys = []struct {
	Name   string
	Cycles float64
	Act    cpu.Activity
}{
	{"rsa/512", 9e6, cpu.Activity{IPC: 2.2, FLOPC: 0.02, LLCPC: 0.0005, MemPC: 0.00005}},
	{"rsa/1024", 36e6, cpu.Activity{IPC: 2.2, FLOPC: 0.02, LLCPC: 0.001, MemPC: 0.0001}},
	{"rsa/2048", 144e6, cpu.Activity{IPC: 2.2, FLOPC: 0.02, LLCPC: 0.003, MemPC: 0.0004}},
}

// RSA is the synthetic security-processing workload: each request runs RSA
// encryption/decryption procedures with one of three example keys (§4.2).
type RSA struct {
	// OnlyLargestKey restricts the mix to the 2048-bit key — the "new
	// request composition" of the Figure 10 prediction experiment.
	OnlyLargestKey bool
}

// Name implements Workload.
func (w RSA) Name() string { return "RSA-crypto" }

type rsaParams struct {
	key    int
	cycles float64
	act    cpu.Activity
}

// Deploy implements Workload.
func (w RSA) Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment {
	entry := kernel.NewListener("rsa")
	handler := func(worker int) server.Handler {
		return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			env := payload.(*server.Envelope)
			p := env.Req.Payload.(rsaParams)
			return []kernel.Op{
				kernel.OpCompute{BaseCycles: p.cycles, Act: p.act},
				kernel.OpNet{Bytes: 2 << 10},
			}
		}
	}
	pool := server.NewEntryPool(k, "openssl", 2*k.Spec.Cores(), entry, handler)

	var meanCycles float64
	if w.OnlyLargestKey {
		meanCycles = rsaKeys[2].Cycles
	} else {
		for _, key := range rsaKeys {
			meanCycles += key.Cycles / float64(len(rsaKeys))
		}
	}
	newRequest := func() *server.Request {
		i := 2
		if !w.OnlyLargestKey {
			i = rng.Intn(len(rsaKeys))
		}
		cycles := rsaKeys[i].Cycles * jitter(rng, 0.08)
		return &server.Request{
			Type:    rsaKeys[i].Name,
			Payload: rsaParams{key: i, cycles: cycles, act: rsaKeys[i].Act},
		}
	}
	return &server.Deployment{
		Entry:          entry,
		NewRequest:     newRequest,
		MeanServiceSec: meanServiceSec(k.Spec, meanCycles, ActRSA),
		Pools:          []*server.Pool{pool},
	}
}
