package workload

import (
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/sim"
)

// MicroBench is one of the §4.1 calibration microbenchmarks: a
// single-signature workload run at controlled load levels to stress one
// part of the system at a time. The calibration set deliberately exercises
// each model metric in isolation (plus one mixture), which is also why
// offline calibration cannot learn cross-activity synergies.
type MicroBench struct {
	Name string
	Act  cpu.Activity
	// DiskBytes/NetBytes per iteration, for the I/O benchmarks.
	DiskBytes int64
	NetBytes  int64
}

// MicroBenches returns the paper's eight calibration microbenchmarks: raw
// CPU spin, spin with high instruction rate, spin with high floating point,
// high last-level cache access, high memory access, high disk I/O, high
// network I/O, and a mixed-pattern benchmark.
func MicroBenches() []MicroBench {
	return []MicroBench{
		{Name: "cpu-spin", Act: cpu.Activity{IPC: 1.0}},
		{Name: "spin-high-ins", Act: cpu.Activity{IPC: 2.4}},
		{Name: "spin-float", Act: cpu.Activity{IPC: 1.6, FLOPC: 0.9}},
		{Name: "cache-heavy", Act: cpu.Activity{IPC: 0.9, LLCPC: 0.030, MemPC: 0.0002}},
		{Name: "mem-heavy", Act: cpu.Activity{IPC: 0.25, LLCPC: 0.020, MemPC: 0.010}},
		{Name: "disk-io", Act: cpu.Activity{IPC: 0.8, LLCPC: 0.002}, DiskBytes: 2 << 20},
		{Name: "net-io", Act: cpu.Activity{IPC: 0.9, LLCPC: 0.002}, NetBytes: 1 << 20},
		{Name: "mixed", Act: cpu.Activity{IPC: 1.2, FLOPC: 0.2, LLCPC: 0.010, MemPC: 0.0004}},
	}
}

// CalibrationLoadLevels are the paper's calibration load levels (fractions
// of peak load).
var CalibrationLoadLevels = []float64{1.0, 0.75, 0.50, 0.25}

// burstCycles is the compute burst per loop iteration (≈2 ms at 3 GHz).
const burstCycles = 6e6

// SpawnLoop starts `tasks` looping workers running the microbenchmark at
// the given utilization fraction: each iteration computes a burst and then
// sleeps long enough to average the requested load.
func (m MicroBench) SpawnLoop(k *kernel.Kernel, tasks int, util float64) []*kernel.Task {
	if util <= 0 || util > 1 {
		panic("workload: microbenchmark utilization out of (0,1]")
	}
	effCycles, _ := cpu.Execution(k.Spec, burstCycles, m.Act)
	busyNs := effCycles / k.Spec.FreqHz * float64(sim.Second)
	ioNs := float64(0)
	if m.DiskBytes > 0 {
		ioNs += float64(k.Disk.LatencyNs) + float64(m.DiskBytes)/k.Disk.BytesPerSec*float64(sim.Second)
	}
	if m.NetBytes > 0 {
		ioNs += float64(k.Net.LatencyNs) + float64(m.NetBytes)/k.Net.BytesPerSec*float64(sim.Second)
	}
	// Pause so that busy/(busy+io+pause) ≈ util of the CPU; blocking I/O
	// already keeps the core off-CPU, so it counts against the pause.
	pauseNs := busyNs*(1-util)/util - ioNs
	if pauseNs < 0 {
		pauseNs = 0
	}
	pause := sim.Time(pauseNs)

	// Stagger task phases across the loop period. Without this every
	// task bursts and sleeps in lockstep, which makes chip-busy time
	// collinear with utilization and the chip-share coefficient
	// unidentifiable — real calibration runs are never phase-locked.
	period := busyNs + ioNs + pauseNs

	var out []*kernel.Task
	for i := 0; i < tasks; i++ {
		step := 0
		offset := sim.Time(period * float64(i) / float64(tasks))
		prog := kernel.FuncProgram(func(k *kernel.Kernel, t *kernel.Task) kernel.Op {
			if offset > 0 {
				d := offset
				offset = 0
				return kernel.OpSleep{D: d}
			}
			step++
			switch step % 4 {
			case 1:
				return kernel.OpCompute{BaseCycles: burstCycles, Act: m.Act}
			case 2:
				if m.DiskBytes > 0 {
					return kernel.OpDisk{Bytes: m.DiskBytes}
				}
				return kernel.OpCompute{BaseCycles: 1, Act: m.Act}
			case 3:
				if m.NetBytes > 0 {
					return kernel.OpNet{Bytes: m.NetBytes}
				}
				return kernel.OpCompute{BaseCycles: 1, Act: m.Act}
			default:
				if pause < 1 {
					return kernel.OpCompute{BaseCycles: 1, Act: m.Act}
				}
				return kernel.OpSleep{D: pause}
			}
		})
		out = append(out, k.Spawn("micro-"+m.Name, prog, nil))
	}
	return out
}
