package workload

import (
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// EventServer is an event-driven server in the style the paper's request
// tracking explicitly does NOT cover (§3.3): one event-loop task per core
// multiplexes many in-flight requests, switching between them with
// user-level stage transfers that issue no kernel-visible system call.
// Under the published facility the kernel keeps charging whichever request
// last bound through a socket read; with the kernel's TrapUserTransfers
// extension (the paper's future-work idea) each transfer is observed and
// attribution follows the request actually being served.
//
// The workload exists to quantify that limitation and the fix — see
// BenchmarkAblationUserLevelTransfers.
type EventServer struct {
	// PhasesPerRequest is how many interleaved processing phases each
	// request needs (≥1); more phases mean more user-level transfers.
	PhasesPerRequest int
}

// Name implements Workload.
func (EventServer) Name() string { return "EventServer" }

const (
	evPhaseCycles   = 8e6
	evDefaultPhases = 3
)

type evParams struct {
	phases int
	cycles float64
}

// evJob is one in-flight request inside an event loop.
type evJob struct {
	env    *server.Envelope
	left   int
	cycles float64
}

// eventLoop is the event-driven worker: it alternates between accepting new
// requests from the listener and advancing one phase of one queued request,
// announcing each switch with a user-level stage transfer.
type eventLoop struct {
	l       *kernel.Listener
	queue   []*evJob
	pending []kernel.Op
	awaited bool
}

// Next implements kernel.Program.
func (e *eventLoop) Next(k *kernel.Kernel, t *kernel.Task) kernel.Op {
	for {
		if len(e.pending) > 0 {
			op := e.pending[0]
			e.pending = e.pending[1:]
			return op
		}
		if e.awaited {
			// A listener recv just completed: enqueue the new request.
			e.awaited = false
			env, ok := t.LastRecv.(*server.Envelope)
			if ok {
				p := env.Req.Payload.(evParams)
				e.queue = append(e.queue, &evJob{env: env, left: p.phases, cycles: p.cycles})
			}
			continue
		}
		// Prefer to drain newly arrived requests so the multiplexing
		// degree grows under load; block on the listener only when idle.
		if e.l.Pending() > 0 || len(e.queue) == 0 {
			e.awaited = true
			return kernel.OpRecvListener{L: e.l}
		}
		// Advance one phase of the oldest request: a user-level stage
		// transfer followed by its compute slice.
		job := e.queue[0]
		e.queue = e.queue[1:]
		job.left--
		e.pending = append(e.pending,
			kernel.OpUserStage{Ctx: job.env.Req.Cont},
			kernel.OpCompute{BaseCycles: job.cycles, Act: ActSolrSearch},
		)
		if job.left > 0 {
			e.queue = append(e.queue, job)
		} else {
			env := job.env
			e.pending = append(e.pending,
				kernel.OpNet{Bytes: 16 << 10},
				kernel.OpCall{Fn: func(k *kernel.Kernel, t *kernel.Task) {
					if env.Done != nil {
						env.Done(k, t)
					}
				}},
				kernel.OpUserStage{Ctx: nil},
			)
		}
	}
}

// Deploy implements Workload.
func (w EventServer) Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment {
	phases := w.PhasesPerRequest
	if phases <= 0 {
		phases = evDefaultPhases
	}
	entry := kernel.NewListener("events")
	pool := &server.Pool{Name: "eventloop"}
	for i := 0; i < k.Spec.Cores(); i++ {
		pool.Workers = append(pool.Workers, k.Spawn("eventloop", &eventLoop{l: entry}, nil))
	}
	newRequest := func() *server.Request {
		return &server.Request{
			Type: "event/search",
			Payload: evParams{
				phases: phases,
				cycles: evPhaseCycles * jitter(rng, 0.4),
			},
		}
	}
	return &server.Deployment{
		Entry:          entry,
		NewRequest:     newRequest,
		MeanServiceSec: meanServiceSec(k.Spec, float64(phases)*evPhaseCycles, ActSolrSearch),
		Pools:          []*server.Pool{pool},
	}
}
