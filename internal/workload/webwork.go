package workload

import (
	"fmt"
	"math"

	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// WeBWorK is the web-based homework system (§4.2): a multi-stage request
// flow matching the captured execution of Figure 4 — an Apache front end,
// a Perl httpd worker, a MySQL thread reached over a persistent socket, and
// external latex/dvipng processes forked through a shell. Tests are driven
// by ~3,000 teacher-created problem sets with a Zipf popularity skew.
type WeBWorK struct {
	// TopProblems restricts the workload to the N most popular problem
	// sets (Figure 10's "new composition" uses the top 10); 0 means all.
	TopProblems int
}

// Name implements Workload.
func (WeBWorK) Name() string { return "WeBWorK" }

// NumProblems is the problem-set catalog size.
const NumProblems = 3000

// Per-stage base cycle budgets at difficulty 1.0, chosen to land near the
// Figure 4 stage energies (httpd ≈1.8 J, latex ≈0.5 J, dvipng ≈0.3 J...).
const (
	wwApacheCycles = 50e6
	wwPHP1Cycles   = 120e6
	wwPHP2Cycles   = 150e6
	wwPHP3Cycles   = 100e6
	wwMySQLCycles  = 9e6
	wwShellCycles  = 14e6
	wwLatexCycles  = 110e6
	wwDvipngCycles = 52e6
)

// ProblemDifficulty returns problem i's deterministic work scale factor:
// a golden-ratio scramble in [0.3, 1.7] boosted for popular problems (the
// heavily-assigned problem sets at the real site are the more elaborate
// ones). The top-10 prefix therefore has a distinctly higher mean than the
// catalog, which is what makes Figure 10's composition-change prediction
// non-trivial.
func ProblemDifficulty(i int) float64 {
	const phi = 0.6180339887498949
	_, frac := math.Modf(float64(i+1) * phi)
	base := 0.3 + 1.4*frac
	return base * (1 + 0.6*math.Exp(-float64(i)/6))
}

// ProblemLabel is the request-type label of problem i, so per-problem
// energy profiles accumulate in distinct container labels (Figure 10
// predicts power for a composition of specific problem sets).
func ProblemLabel(i int) string {
	return fmt.Sprintf("webwork/p%04d", i)
}

// ProblemWeights returns the Zipf-ish popularity weights of the catalog.
func ProblemWeights() []float64 {
	w := make([]float64, NumProblems)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), 0.8)
	}
	return w
}

type wwParams struct {
	problem int
	d       float64 // difficulty scale
}

type wwQuery struct {
	cycles float64
}

type wwJob struct {
	p wwParams
}

// Deploy implements Workload.
func (w WeBWorK) Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment {
	entry := kernel.NewListener("webwork")
	nWorkers := 3 * k.Spec.Cores()

	factory := func(worker int) server.Handler {
		// Each apache worker owns a persistent connection to its
		// httpd worker, which owns one to its MySQL thread — the
		// paper's persistent-socket request propagation scenario.
		apacheEnd, httpdEnd := kernel.NewConn()
		httpdDBEnd, mysqlEnd := kernel.NewConn()

		server.NewAuxWorker(k, "mysqld", mysqlEnd, func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			q := payload.(wwQuery)
			return []kernel.Op{
				kernel.OpCompute{BaseCycles: q.cycles, Act: ActMySQL},
				kernel.OpSend{End: mysqlEnd, Bytes: 4 << 10},
			}
		})

		server.NewAuxWorker(k, "httpd", httpdEnd, func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			job := payload.(wwJob)
			d := job.p.d
			shell := kernel.Script(
				kernel.OpCompute{BaseCycles: wwShellCycles, Act: ActShell},
				kernel.OpFork{Name: "latex", Prog: kernel.Script(
					kernel.OpCompute{BaseCycles: wwLatexCycles * d, Act: ActLatex},
				)},
				kernel.OpWaitChild{},
				// Harder problems render disproportionately more
				// images: dvipng work grows quadratically with
				// difficulty, shifting the request's power mix
				// toward the hottest stage.
				kernel.OpFork{Name: "dvipng", Prog: kernel.Script(
					kernel.OpCompute{BaseCycles: wwDvipngCycles * d * d, Act: ActDvipng},
				)},
				kernel.OpWaitChild{},
			)
			return []kernel.Op{
				kernel.OpCompute{BaseCycles: wwPHP1Cycles * d, Act: ActPerl},
				kernel.OpSend{End: httpdDBEnd, Bytes: 900, Payload: wwQuery{cycles: wwMySQLCycles * d}},
				kernel.OpRecv{End: httpdDBEnd},
				kernel.OpCompute{BaseCycles: wwPHP2Cycles * d, Act: ActPerl},
				kernel.OpFork{Name: "sh", Prog: shell},
				kernel.OpWaitChild{},
				kernel.OpCompute{BaseCycles: wwPHP3Cycles * d, Act: ActPerl},
				kernel.OpDisk{Bytes: 50 << 10},
				kernel.OpSend{End: httpdEnd, Bytes: 30 << 10},
			}
		})

		return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			env := payload.(*server.Envelope)
			p := env.Req.Payload.(wwParams)
			return []kernel.Op{
				kernel.OpCompute{BaseCycles: wwApacheCycles, Act: ActPerl},
				kernel.OpSend{End: apacheEnd, Bytes: 2 << 10, Payload: wwJob{p: p}},
				kernel.OpRecv{End: apacheEnd},
				kernel.OpNet{Bytes: 60 << 10},
			}
		}
	}
	pool := server.NewEntryPool(k, "apache", nWorkers, entry, factory)

	weights := ProblemWeights()
	if w.TopProblems > 0 && w.TopProblems < len(weights) {
		weights = weights[:w.TopProblems]
	}
	newRequest := func() *server.Request {
		i := rng.Pick(weights)
		return &server.Request{
			Type:    ProblemLabel(i),
			Payload: wwParams{problem: i, d: ProblemDifficulty(i) * jitter(rng, 0.05)},
		}
	}

	// Mean difficulty (and squared difficulty, for the quadratic dvipng
	// stage) over the possibly restricted catalog, weighted by popularity.
	var wsum, dsum, d2sum float64
	for i, wt := range weights {
		d := ProblemDifficulty(i)
		wsum += wt
		dsum += wt * d
		d2sum += wt * d * d
	}
	meanD := dsum / wsum
	meanD2 := d2sum / wsum
	perReq := wwApacheCycles + meanD*(wwPHP1Cycles+wwPHP2Cycles+wwPHP3Cycles+
		wwMySQLCycles+wwLatexCycles) + meanD2*wwDvipngCycles + wwShellCycles
	return &server.Deployment{
		Entry:          entry,
		NewRequest:     newRequest,
		MeanServiceSec: meanServiceSec(k.Spec, perReq, ActPerl),
		Pools:          []*server.Pool{pool},
	}
}
