// Package workload defines the paper's evaluation workloads (§4.2) as
// multi-stage server deployments over the simulated OS: RSA-crypto, the
// Solr search engine, the WeBWorK homework system, the Stress benchmark,
// Google App Engine running the Vosao CMS (with its untraceable background
// processing), the GAE power virus, and the GAE-Hybrid mixture — plus the
// calibration microbenchmarks of §4.1.
//
// Each workload specifies machine-independent work (base cycles plus an
// activity signature); cpu.Execution translates it per machine, which is
// what makes the cross-machine energy-affinity experiments meaningful.
package workload

import (
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// Activity signatures of the evaluation workloads. Rates are per
// stall-free base cycle; memory stalls inflate cycle counts per machine.
var (
	// ActRSA models OpenSSL big-integer arithmetic: very high IPC,
	// almost no cache or memory traffic.
	ActRSA = cpu.Activity{IPC: 2.2, FLOPC: 0.02, LLCPC: 0.001, MemPC: 0.0001}

	// ActSolrParse models query parsing in Tomcat.
	ActSolrParse = cpu.Activity{IPC: 1.6, FLOPC: 0.0, LLCPC: 0.002, MemPC: 0.0005}

	// ActSolrSearch models Lucene index traversal over an in-memory
	// index: cache-heavy with moderate memory traffic.
	ActSolrSearch = cpu.Activity{IPC: 1.1, FLOPC: 0.0, LLCPC: 0.016, MemPC: 0.004}

	// ActPerl models WeBWorK's Apache/Perl PHP-style processing.
	ActPerl = cpu.Activity{IPC: 1.3, FLOPC: 0.01, LLCPC: 0.006, MemPC: 0.0015}

	// ActMySQL models the database thread's lookups.
	ActMySQL = cpu.Activity{IPC: 1.0, FLOPC: 0.0, LLCPC: 0.012, MemPC: 0.004}

	// ActShell models shells and small utilities.
	ActShell = cpu.Activity{IPC: 1.2, FLOPC: 0.0, LLCPC: 0.004, MemPC: 0.001}

	// ActLatex models LaTeX typesetting of a problem.
	ActLatex = cpu.Activity{IPC: 1.5, FLOPC: 0.05, LLCPC: 0.008, MemPC: 0.002}

	// ActDvipng models image rendering.
	ActDvipng = cpu.Activity{IPC: 1.1, FLOPC: 0.10, LLCPC: 0.014, MemPC: 0.005}

	// ActStress models the Stressful Application Test: Adler-32 over a
	// large memory segment with added floating point — core, FPU and
	// cache/memory units simultaneously busy (§4.2).
	ActStress = cpu.Activity{IPC: 0.9, FLOPC: 0.5, LLCPC: 0.025, MemPC: 0.008}

	// ActJVM models Google App Engine's Java server executing Vosao.
	ActJVM = cpu.Activity{IPC: 0.9, FLOPC: 0.05, LLCPC: 0.007, MemPC: 0.0015}

	// ActGAEBackground models the GAE system's untraceable background
	// processing (suspected security management, §4.2).
	ActGAEBackground = cpu.Activity{IPC: 1.0, FLOPC: 0.02, LLCPC: 0.009, MemPC: 0.002}

	// ActVirus models the paper's simple ~200-line power virus: writing
	// one of every four bytes over a 16 MB block keeps the cache/memory
	// and instruction pipelining units simultaneously busy.
	ActVirus = cpu.Activity{IPC: 1.5, FLOPC: 0.02, LLCPC: 0.030, MemPC: 0.012}
)

// Workload instantiates one of the evaluation workloads on a machine.
type Workload interface {
	// Name is the paper's workload label, e.g. "WeBWorK".
	Name() string
	// Deploy builds the workload's stages on the kernel and returns the
	// deployment the load generator drives. rng covers all of the
	// workload's per-request randomness.
	Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment
}

// meanServiceSec estimates the busy seconds a request with the given
// stall-free base cycles and signature needs on the machine.
func meanServiceSec(spec cpu.MachineSpec, baseCycles float64, act cpu.Activity) float64 {
	cycles, _ := cpu.Execution(spec, baseCycles, act)
	return cycles / spec.FreqHz
}

// jitter returns a multiplicative jitter factor in [1-amp, 1+amp].
func jitter(rng *sim.Rand, amp float64) float64 {
	return 1 + amp*(2*rng.Float64()-1)
}
