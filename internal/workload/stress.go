package workload

import (
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// Stress is the Stressful Application Test benchmark adapted to a
// server-style workload: each request runs the Adler-32 checksum over a
// large memory segment with added floating point operations for about
// 100 ms, keeping core, FPU and cache/memory units simultaneously busy
// (§4.2). It is the highest-power workload and the one whose behaviour the
// offline-calibrated linear model misses the most.
type Stress struct{}

// Name implements Workload.
func (Stress) Name() string { return "Stress" }

// stressCycles yields ≈100 ms of execution on SandyBridge after memory
// stall inflation.
const stressCycles = 135e6

type stressParams struct {
	cycles float64
}

// Deploy implements Workload.
func (Stress) Deploy(k *kernel.Kernel, rng *sim.Rand) *server.Deployment {
	entry := kernel.NewListener("stress")
	handler := func(worker int) server.Handler {
		return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
			env := payload.(*server.Envelope)
			p := env.Req.Payload.(stressParams)
			return []kernel.Op{
				kernel.OpCompute{BaseCycles: p.cycles, Act: ActStress},
				kernel.OpNet{Bytes: 1 << 10},
			}
		}
	}
	pool := server.NewEntryPool(k, "stressapp", 2*k.Spec.Cores(), entry, handler)
	newRequest := func() *server.Request {
		return &server.Request{
			Type:    "stress/checksum",
			Payload: stressParams{cycles: stressCycles * jitter(rng, 0.05)},
		}
	}
	return &server.Deployment{
		Entry:          entry,
		NewRequest:     newRequest,
		MeanServiceSec: meanServiceSec(k.Spec, stressCycles, ActStress),
		Pools:          []*server.Pool{pool},
	}
}
