package workload

import (
	"math"
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

func newRig(t *testing.T, spec cpu.MachineSpec) (*kernel.Kernel, *core.Facility) {
	t.Helper()
	eng := sim.NewEngine()
	profile := power.MustProfile(spec)
	k, err := kernel.New("test", spec, profile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Coefficients resembling the offline-calibrated SandyBridge model
	// (the fitted mem term absorbs part of the hidden synergy).
	coeff := model.Coefficients{Core: 6, Ins: 1.5, Cache: 130, Mem: 950, Chip: 5, Disk: 1.7, Net: 5.8, IncludesChipShare: true}
	fac := core.Attach(k, coeff, core.Config{Approach: core.ApproachChipShare})
	return k, fac
}

// runWorkload deploys wl at a modest open-loop rate and returns completions.
func runWorkload(t *testing.T, wl Workload, d sim.Time) []*server.Request {
	t.Helper()
	k, fac := newRig(t, cpu.SandyBridge)
	rng := sim.NewRand(9)
	dep := wl.Deploy(k, rng)
	gen := server.NewLoadGen(k, fac, dep)
	rate := 0.4 * float64(cpu.SandyBridge.Cores()) / dep.MeanServiceSec
	gen.RunOpenLoop(rate, d, rng.Fork(2))
	k.Eng.RunUntil(d + sim.Second)
	return gen.Completed()
}

func TestAllWorkloadsComplete(t *testing.T) {
	wls := []Workload{RSA{}, Solr{}, WeBWorK{}, Stress{}, GAE{}, GAE{VirusLoadFraction: 0.5}}
	for _, wl := range wls {
		wl := wl
		t.Run(wl.Name(), func(t *testing.T) {
			done := runWorkload(t, wl, 3*sim.Second)
			if len(done) < 5 {
				t.Fatalf("%s completed only %d requests", wl.Name(), len(done))
			}
			for _, r := range done[:5] {
				if r.Cont.EnergyJ() <= 0 {
					t.Fatalf("%s request %s has zero energy", wl.Name(), r.Type)
				}
				if r.ResponseTime() <= 0 {
					t.Fatalf("%s request has zero response time", wl.Name())
				}
			}
		})
	}
}

func TestRSAKeyMix(t *testing.T) {
	done := runWorkload(t, RSA{}, 3*sim.Second)
	seen := map[string]int{}
	for _, r := range done {
		seen[r.Type]++
	}
	for _, k := range []string{"rsa/512", "rsa/1024", "rsa/2048"} {
		if seen[k] == 0 {
			t.Fatalf("key class %s never drawn (seen %v)", k, seen)
		}
	}
	only := runWorkload(t, RSA{OnlyLargestKey: true}, 3*sim.Second)
	for _, r := range only {
		if r.Type != "rsa/2048" {
			t.Fatalf("OnlyLargestKey drew %s", r.Type)
		}
	}
}

func TestRSAEnergyScalesWithKeySize(t *testing.T) {
	done := runWorkload(t, RSA{}, 4*sim.Second)
	mean := map[string]*struct {
		sum float64
		n   int
	}{}
	for _, r := range done {
		m := mean[r.Type]
		if m == nil {
			m = &struct {
				sum float64
				n   int
			}{}
			mean[r.Type] = m
		}
		m.sum += r.Cont.EnergyJ()
		m.n++
	}
	e := func(k string) float64 { return mean[k].sum / float64(mean[k].n) }
	if !(e("rsa/512") < e("rsa/1024") && e("rsa/1024") < e("rsa/2048")) {
		t.Fatalf("energy ordering broken: %g %g %g", e("rsa/512"), e("rsa/1024"), e("rsa/2048"))
	}
}

func TestWeBWorKStagesAppear(t *testing.T) {
	done := runWorkload(t, WeBWorK{}, 4*sim.Second)
	if len(done) == 0 {
		t.Fatal("no WeBWorK requests")
	}
	stages := map[string]bool{}
	for _, s := range done[0].Cont.Stages() {
		stages[s.Task] = true
	}
	for _, want := range []string{"apache", "httpd", "mysqld", "sh", "latex", "dvipng"} {
		if !stages[want] {
			t.Fatalf("stage %s missing from request (got %v)", want, stages)
		}
	}
	if !strings.HasPrefix(done[0].Type, "webwork/p") {
		t.Fatalf("request type %q not per-problem", done[0].Type)
	}
}

func TestProblemDifficultyProperties(t *testing.T) {
	var sum float64
	for i := 0; i < NumProblems; i++ {
		d := ProblemDifficulty(i)
		if d < 0.2 || d > 2.8 {
			t.Fatalf("difficulty %d = %g out of range", i, d)
		}
		sum += d
	}
	mean := sum / NumProblems
	if mean < 0.9 || mean > 1.15 {
		t.Fatalf("catalog mean difficulty %g, want ≈1.0", mean)
	}
	// The top-10 prefix is distinctly harder than the catalog mean.
	var topSum float64
	for i := 0; i < 10; i++ {
		topSum += ProblemDifficulty(i)
	}
	if topSum/10 < mean*1.15 {
		t.Fatalf("top-10 mean %g not distinct from catalog mean %g", topSum/10, mean)
	}
	w := ProblemWeights()
	if len(w) != NumProblems || w[0] <= w[100] {
		t.Fatal("weights not Zipf-decreasing")
	}
	if ProblemLabel(7) != "webwork/p0007" {
		t.Fatalf("label = %s", ProblemLabel(7))
	}
}

func TestGAEReadWriteRatio(t *testing.T) {
	done := runWorkload(t, GAE{}, 4*sim.Second)
	reads, writes := 0, 0
	for _, r := range done {
		switch r.Type {
		case "vosao/read":
			reads++
		case "vosao/write":
			writes++
		default:
			t.Fatalf("unexpected type %s in pure Vosao", r.Type)
		}
	}
	frac := float64(reads) / float64(reads+writes)
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("read fraction %.2f, want ≈0.9", frac)
	}
}

func TestGAEHybridLoadSplit(t *testing.T) {
	done := runWorkload(t, GAE{VirusLoadFraction: 0.5}, 6*sim.Second)
	var virusCPU, vosaoCPU float64
	for _, r := range done {
		sec := float64(r.Cont.CPUTime) / float64(sim.Second)
		if r.Type == "gae/virus" {
			virusCPU += sec
		} else {
			vosaoCPU += sec
		}
	}
	frac := virusCPU / (virusCPU + vosaoCPU)
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("virus busy-time fraction %.2f, want ≈0.5", frac)
	}
}

func TestVirusIsHighestPower(t *testing.T) {
	done := runWorkload(t, GAE{VirusLoadFraction: 0.5}, 6*sim.Second)
	var virus, vosao struct {
		sum float64
		n   int
	}
	for _, r := range done {
		if r.Type == "gae/virus" {
			virus.sum += r.Cont.MeanActivePowerW()
			virus.n++
		} else {
			vosao.sum += r.Cont.MeanActivePowerW()
			vosao.n++
		}
	}
	if virus.n == 0 || vosao.n == 0 {
		t.Fatal("missing classes")
	}
	if virus.sum/float64(virus.n) < 1.25*vosao.sum/float64(vosao.n) {
		t.Fatalf("virus power %.1f not clearly above vosao %.1f",
			virus.sum/float64(virus.n), vosao.sum/float64(vosao.n))
	}
}

func TestGAEBackgroundTasksRun(t *testing.T) {
	k, fac := newRig(t, cpu.SandyBridge)
	SpawnGAEBackground(k)
	k.Eng.RunUntil(500 * sim.Millisecond)
	if fac.Background.CPUEnergyJ <= 0 {
		t.Fatal("background tasks produced no energy")
	}
	util := float64(fac.Background.CPUTime) / float64(500*sim.Millisecond)
	if util < 0.8 || util > 1.8 { // two tasks at ~60-65% each
		t.Fatalf("background utilization %.2f cores, want ≈1.2", util)
	}
}

func TestMicroBenchUtilization(t *testing.T) {
	for _, util := range []float64{1.0, 0.5, 0.25} {
		k, fac := newRig(t, cpu.SandyBridge)
		MicroBenches()[0].SpawnLoop(k, 4, util)
		k.Eng.RunUntil(2 * sim.Second)
		got := float64(fac.Background.CPUTime) / float64(2*sim.Second) / 4
		if math.Abs(got-util) > 0.08 {
			t.Fatalf("target util %.2f, achieved %.2f", util, got)
		}
	}
}

func TestMicroBenchIOVariantsTouchDevices(t *testing.T) {
	k, fac := newRig(t, cpu.SandyBridge)
	for _, mb := range MicroBenches() {
		if mb.DiskBytes > 0 || mb.NetBytes > 0 {
			mb.SpawnLoop(k, 1, 0.5)
		}
	}
	k.Eng.RunUntil(2 * sim.Second)
	if fac.Background.DeviceEnergyJ <= 0 {
		t.Fatal("I/O benches attributed no device energy")
	}
}

func TestMeanServiceSecReasonable(t *testing.T) {
	k, _ := newRig(t, cpu.SandyBridge)
	rng := sim.NewRand(1)
	for _, wl := range []Workload{RSA{}, Solr{}, WeBWorK{}, Stress{}, GAE{}} {
		dep := wl.Deploy(k, rng)
		if dep.MeanServiceSec <= 0 || dep.MeanServiceSec > 1 {
			t.Fatalf("%s mean service %.3fs implausible", wl.Name(), dep.MeanServiceSec)
		}
	}
}

// TestEventServerUserTransferTracking verifies the §3.3 future-work
// extension: without trapping, user-level stage transfers are invisible and
// per-request attribution collapses; with TrapUserTransfers the facility
// follows the event loop across requests.
func TestEventServerUserTransferTracking(t *testing.T) {
	run := func(trap bool) (done []*server.Request) {
		k, fac := newRig(t, cpu.SandyBridge)
		k.TrapUserTransfers = trap
		rng := sim.NewRand(31)
		dep := EventServer{PhasesPerRequest: 4}.Deploy(k, rng)
		gen := server.NewLoadGen(k, fac, dep)
		// High load: the loops multiplex several requests, so user-level
		// transfers actually interleave different requests' phases.
		gen.RunOpenLoop(0.9*float64(cpu.SandyBridge.Cores())/dep.MeanServiceSec, 3*sim.Second, rng.Fork(2))
		k.Eng.RunUntil(4 * sim.Second)
		return gen.Completed()
	}

	trapped := run(true)
	if len(trapped) < 50 {
		t.Fatalf("only %d requests completed", len(trapped))
	}
	// With trapping, every request gets a plausible CPU-time attribution
	// (≈ its own phases) and the spread is modest.
	var mean float64
	for _, r := range trapped {
		mean += float64(r.Cont.CPUTime)
	}
	mean /= float64(len(trapped))
	outliers := 0
	for _, r := range trapped {
		ratio := float64(r.Cont.CPUTime) / mean
		if ratio < 0.25 || ratio > 4 {
			outliers++
		}
	}
	if frac := float64(outliers) / float64(len(trapped)); frac > 0.05 {
		t.Fatalf("trapped attribution has %.0f%% outliers", 100*frac)
	}

	// Without trapping, attribution collapses: many requests get almost
	// nothing while a few absorb their neighbours' phases.
	untracked := run(false)
	starved := 0
	for _, r := range untracked {
		if float64(r.Cont.CPUTime) < 0.25*mean {
			starved++
		}
	}
	if frac := float64(starved) / float64(len(untracked)); frac < 0.1 {
		t.Fatalf("expected substantial misattribution without trapping, starved frac %.2f", frac)
	}
}
