package cpu

import (
	"testing"
	"testing/quick"

	"powercontainers/internal/sim"
)

// TestWallForMonotoneInDuty checks the property the §3.5 duty-cycle power
// capping loop relies on: lowering the modulation level never makes a fixed
// amount of work finish sooner, and raising it never makes it slower. Any
// violation would let the capping controller oscillate.
func TestWallForMonotoneInDuty(t *testing.T) {
	core := NewCore(0, SandyBridge)
	prop := func(rawCycles uint32, rawLo, rawHi uint8) bool {
		cycles := float64(rawCycles) + 1
		lo := int(rawLo)%core.DutyMax() + 1
		hi := int(rawHi)%core.DutyMax() + 1
		if lo > hi {
			lo, hi = hi, lo
		}
		core.SetDutyLevel(lo)
		wallLo := core.WallFor(cycles)
		core.SetDutyLevel(hi)
		wallHi := core.WallFor(cycles)
		// Lower level ⇒ smaller duty fraction ⇒ at least as much wall time.
		return wallLo >= wallHi && wallHi >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestCyclesInWallForInverse checks the round-trip bound at every duty
// level: WallFor(CyclesIn(w)) reproduces the wall time up to the 1 ns
// ceiling WallFor applies.
func TestCyclesInWallForInverse(t *testing.T) {
	core := NewCore(0, Woodcrest)
	prop := func(rawWall uint32, rawLevel uint8) bool {
		wall := sim.Time(rawWall) + 1
		core.SetDutyLevel(int(rawLevel)%core.DutyMax() + 1)
		back := core.WallFor(core.CyclesIn(wall))
		diff := back - wall
		return diff >= 0 && diff <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
