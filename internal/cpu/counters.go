package cpu

import "fmt"

// Counters holds cumulative hardware event counts for one core: the five
// events the paper's model consumes (§3.1). Counts are stored as float64
// accumulators internally so that fractional event rates integrate exactly
// over arbitrarily short execution segments; the facility only ever consumes
// deltas and rates, matching how real counters are used.
type Counters struct {
	// Cycles counts non-halt core cycles.
	Cycles float64
	// Instructions counts retired instructions.
	Instructions float64
	// Float counts floating point operations.
	Float float64
	// Cache counts last-level cache references.
	Cache float64
	// Mem counts memory transactions.
	Mem float64
}

// Sub returns the element-wise difference c − o, i.e. the events that
// occurred between two samples.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles - o.Cycles,
		Instructions: c.Instructions - o.Instructions,
		Float:        c.Float - o.Float,
		Cache:        c.Cache - o.Cache,
		Mem:          c.Mem - o.Mem,
	}
}

// Add returns the element-wise sum c + o.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Cycles:       c.Cycles + o.Cycles,
		Instructions: c.Instructions + o.Instructions,
		Float:        c.Float + o.Float,
		Cache:        c.Cache + o.Cache,
		Mem:          c.Mem + o.Mem,
	}
}

// Scale returns c with every field multiplied by f.
func (c Counters) Scale(f float64) Counters {
	return Counters{
		Cycles:       c.Cycles * f,
		Instructions: c.Instructions * f,
		Float:        c.Float * f,
		Cache:        c.Cache * f,
		Mem:          c.Mem * f,
	}
}

// ClampNonNegative zeroes any negative field. The facility uses it after
// observer-effect compensation, which can slightly over-subtract when a
// sampling period contained fewer events than the calibrated per-operation
// maintenance cost.
func (c Counters) ClampNonNegative() Counters {
	return Counters{
		Cycles:       clampNonNeg(c.Cycles),
		Instructions: clampNonNeg(c.Instructions),
		Float:        clampNonNeg(c.Float),
		Cache:        clampNonNeg(c.Cache),
		Mem:          clampNonNeg(c.Mem),
	}
}

func clampNonNeg(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

func (c Counters) String() string {
	return fmt.Sprintf("cyc=%.0f ins=%.0f flop=%.0f llc=%.0f mem=%.0f",
		c.Cycles, c.Instructions, c.Float, c.Cache, c.Mem)
}

// Activity is a workload's hardware event signature: event rates per
// non-halt core cycle. Together with busy time it fully determines what the
// counters observe and (through the hidden ground-truth model) what power
// the hardware draws.
type Activity struct {
	// IPC is retired instructions per non-halt cycle.
	IPC float64
	// FLOPC is floating point operations per non-halt cycle.
	FLOPC float64
	// LLCPC is last-level cache references per non-halt cycle.
	LLCPC float64
	// MemPC is memory transactions per non-halt cycle.
	MemPC float64
}

// Events returns the counter increments produced by executing the given
// number of non-halt cycles under this activity profile.
func (a Activity) Events(cycles float64) Counters {
	return Counters{
		Cycles:       cycles,
		Instructions: cycles * a.IPC,
		Float:        cycles * a.FLOPC,
		Cache:        cycles * a.LLCPC,
		Mem:          cycles * a.MemPC,
	}
}

// Blend returns a weighted mix of two activity profiles, used by workloads
// whose phases interpolate between signatures.
func Blend(a, b Activity, wa float64) Activity {
	wb := 1 - wa
	return Activity{
		IPC:   a.IPC*wa + b.IPC*wb,
		FLOPC: a.FLOPC*wa + b.FLOPC*wb,
		LLCPC: a.LLCPC*wa + b.LLCPC*wb,
		MemPC: a.MemPC*wa + b.MemPC*wb,
	}
}
