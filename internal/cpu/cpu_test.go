package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"powercontainers/internal/sim"
)

func TestSpecsValid(t *testing.T) {
	for _, s := range Specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	if Woodcrest.Cores() != 4 || Westmere.Cores() != 12 || SandyBridge.Cores() != 4 {
		t.Fatal("core counts do not match the paper's machines")
	}
}

func TestSpecValidateRejections(t *testing.T) {
	cases := []MachineSpec{
		{},
		{Name: "x", Chips: 0, CoresPerChip: 2, FreqHz: 1e9, DutyLevels: 8},
		{Name: "x", Chips: 1, CoresPerChip: 2, FreqHz: 0, DutyLevels: 8},
		{Name: "x", Chips: 1, CoresPerChip: 2, FreqHz: 1e9, DutyLevels: 1},
		{Name: "x", Chips: 1, CoresPerChip: 2, FreqHz: 1e9, DutyLevels: 8, MemStallCycles: -1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec validated", i)
		}
	}
}

func TestChipOf(t *testing.T) {
	for core := 0; core < 12; core++ {
		want := core / 6
		if got := Westmere.ChipOf(core); got != want {
			t.Errorf("ChipOf(%d) = %d, want %d", core, got, want)
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("Westmere")
	if err != nil || s.Name != "Westmere" {
		t.Fatalf("SpecByName: %v %v", s, err)
	}
	if _, err := SpecByName("Itanium"); err == nil {
		t.Fatal("unknown spec did not error")
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := Counters{Cycles: 10, Instructions: 20, Float: 1, Cache: 2, Mem: 3}
	b := Counters{Cycles: 4, Instructions: 5, Float: 1, Cache: 1, Mem: 1}
	d := a.Sub(b)
	if d.Cycles != 6 || d.Instructions != 15 || d.Float != 0 || d.Cache != 1 || d.Mem != 2 {
		t.Fatalf("Sub = %+v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add did not invert Sub: %+v", s)
	}
	if sc := b.Scale(2); sc.Cycles != 8 || sc.Mem != 2 {
		t.Fatalf("Scale = %+v", sc)
	}
	neg := Counters{Cycles: -1, Instructions: 5}
	cl := neg.ClampNonNegative()
	if cl.Cycles != 0 || cl.Instructions != 5 {
		t.Fatalf("Clamp = %+v", cl)
	}
}

func TestActivityEvents(t *testing.T) {
	act := Activity{IPC: 1.5, FLOPC: 0.25, LLCPC: 0.01, MemPC: 0.002}
	ev := act.Events(1000)
	if ev.Cycles != 1000 || ev.Instructions != 1500 || ev.Float != 250 || ev.Cache != 10 || ev.Mem != 2 {
		t.Fatalf("Events = %+v", ev)
	}
}

func TestBlend(t *testing.T) {
	a := Activity{IPC: 2}
	b := Activity{IPC: 0, MemPC: 0.01}
	m := Blend(a, b, 0.25)
	if math.Abs(m.IPC-0.5) > 1e-12 || math.Abs(m.MemPC-0.0075) > 1e-12 {
		t.Fatalf("Blend = %+v", m)
	}
}

func TestCoreAdvanceBusyCounters(t *testing.T) {
	c := NewCore(0, SandyBridge)
	act := Activity{IPC: 2, FLOPC: 0.5, LLCPC: 0.01, MemPC: 0.001}
	ev := c.AdvanceBusy(sim.Millisecond, act)
	wantCycles := 3.1e9 * 1e-3
	if math.Abs(ev.Cycles-wantCycles) > 1 {
		t.Fatalf("cycles = %g, want %g", ev.Cycles, wantCycles)
	}
	if math.Abs(c.Counters().Instructions-2*wantCycles) > 2 {
		t.Fatalf("instructions = %g", c.Counters().Instructions)
	}
}

func TestCoreDutyModulationScalesProgress(t *testing.T) {
	c := NewCore(0, SandyBridge)
	c.SetDutyLevel(4) // half duty
	if f := c.DutyFraction(); f != 0.5 {
		t.Fatalf("duty fraction = %g", f)
	}
	ev := c.AdvanceBusy(sim.Millisecond, Activity{IPC: 1})
	want := 3.1e9 * 1e-3 * 0.5
	if math.Abs(ev.Cycles-want) > 1 {
		t.Fatalf("half-duty cycles = %g, want %g", ev.Cycles, want)
	}
}

func TestCoreDutyClamping(t *testing.T) {
	c := NewCore(0, SandyBridge)
	c.SetDutyLevel(0)
	if c.DutyLevel() != 1 {
		t.Fatal("duty did not clamp to 1")
	}
	c.SetDutyLevel(99)
	if c.DutyLevel() != 8 {
		t.Fatal("duty did not clamp to max")
	}
	if c.DutyRegReads != 2 || c.DutyRegWrites != 2 {
		t.Fatalf("register access counts = %d/%d", c.DutyRegReads, c.DutyRegWrites)
	}
}

func TestCoreWallForRoundTrip(t *testing.T) {
	c := NewCore(0, Woodcrest)
	f := func(kcycles uint16) bool {
		cycles := float64(kcycles) + 1
		wall := c.WallFor(cycles)
		got := c.CyclesIn(wall)
		// WallFor rounds up to whole nanoseconds (a ns is ~3 cycles);
		// allow sub-cycle float error on the low side.
		return got > cycles-0.01 && got < cycles+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if c.WallFor(0) != 0 {
		t.Fatal("WallFor(0) != 0")
	}
	if c.WallFor(0.001) < 1 {
		t.Fatal("WallFor must round up to ≥1ns for positive work")
	}
}

func TestCoreOverflowInterruptTiming(t *testing.T) {
	c := NewCore(0, SandyBridge)
	threshold := 3.1e6 // 1 ms worth of non-halt cycles
	c.SetOverflowThreshold(threshold)
	if c.TimeToOverflow() != sim.Millisecond {
		t.Fatalf("time to overflow = %d, want 1ms", c.TimeToOverflow())
	}
	c.AdvanceBusy(sim.Millisecond/2, Activity{})
	if got := c.TimeToOverflow(); got != sim.Millisecond/2 {
		t.Fatalf("after half: %d, want 0.5ms", got)
	}
	if c.Overflowed() {
		t.Fatal("overflowed early")
	}
	c.AdvanceBusy(sim.Millisecond/2, Activity{})
	if !c.Overflowed() {
		t.Fatal("did not overflow at threshold")
	}
	if c.Overflowed() {
		t.Fatal("overflow flag did not reset")
	}
}

func TestCoreOverflowAtHalfDutySlowsDown(t *testing.T) {
	c := NewCore(0, SandyBridge)
	c.SetOverflowThreshold(3.1e6)
	c.SetDutyLevel(4)
	if got := c.TimeToOverflow(); got != 2*sim.Millisecond {
		t.Fatalf("half-duty time to overflow = %d, want 2ms", got)
	}
}

func TestCoreOverflowDisabled(t *testing.T) {
	c := NewCore(0, SandyBridge)
	if c.TimeToOverflow() != NoOverflow {
		t.Fatal("disabled overflow should report NoOverflow")
	}
	c.AdvanceBusy(10*sim.Millisecond, Activity{})
	if c.Overflowed() {
		t.Fatal("disabled overflow fired")
	}
}

func TestExecutionMemoryStallInflation(t *testing.T) {
	act := Activity{IPC: 2, MemPC: 0.01}
	cycles, eff := Execution(Woodcrest, 1e6, act)
	wantInflate := Woodcrest.WorkScale + 0.01*Woodcrest.MemStallCycles
	if math.Abs(cycles-1e6*wantInflate) > 1 {
		t.Fatalf("cycles = %g, want %g", cycles, 1e6*wantInflate)
	}
	// Total event counts are preserved: rate × cycles is constant.
	if math.Abs(eff.IPC*cycles-2e6) > 1 {
		t.Fatalf("instructions not preserved: %g", eff.IPC*cycles)
	}
	if math.Abs(eff.MemPC*cycles-1e4) > 1e-6 {
		t.Fatalf("mem transactions not preserved: %g", eff.MemPC*cycles)
	}
}

func TestExecutionNoMemNoInflation(t *testing.T) {
	cycles, eff := Execution(SandyBridge, 5e5, Activity{IPC: 1.8})
	if cycles != 5e5 || eff.IPC != 1.8 {
		t.Fatalf("stall-free op changed: %g %+v", cycles, eff)
	}
}

func TestExecutionRelativeMachineSpeed(t *testing.T) {
	// A memory-heavy op must take relatively more cycles on Woodcrest
	// than on SandyBridge.
	act := Activity{IPC: 0.8, MemPC: 0.008}
	sb, _ := Execution(SandyBridge, 1e6, act)
	wc, _ := Execution(Woodcrest, 1e6, act)
	if wc <= sb {
		t.Fatalf("Woodcrest (%g) should need more cycles than SandyBridge (%g)", wc, sb)
	}
}

func TestPublishSample(t *testing.T) {
	c := NewCore(2, Westmere)
	c.PublishSample(5*sim.Millisecond, 0.75)
	if c.LastSampleTime != 5*sim.Millisecond || c.LastUtil != 0.75 {
		t.Fatal("published sample not stored")
	}
}
