// Package cpu models the processor hardware visible to the power-container
// facility: multicore chips with per-core hardware event counters (non-halt
// cycles, retired instructions, floating point operations, last-level cache
// references, memory transactions), threshold-based counter overflow
// interrupts, and per-core duty-cycle modulation.
//
// The three machine models mirror the paper's evaluation platforms: a
// dual-socket dual-core Intel Xeon 5160 "Woodcrest", a dual-socket six-core
// Xeon L5640 "Westmere", and a single-socket quad-core Xeon E31220
// "SandyBridge".
package cpu

import "fmt"

// MachineSpec describes the processor topology and timing of a simulated
// machine. Power characteristics live in package power, keyed by this spec,
// so the facility's observation surface (counters, duty cycle) stays
// separate from the hidden ground truth it tries to model.
type MachineSpec struct {
	// Name identifies the machine model, e.g. "SandyBridge".
	Name string
	// Chips is the number of processor sockets.
	Chips int
	// CoresPerChip is the number of cores per socket.
	CoresPerChip int
	// FreqHz is the core clock frequency.
	FreqHz float64
	// MemStallCycles is the number of extra stall cycles a memory
	// transaction costs on this machine; it makes memory-bound work
	// relatively slower on older platforms, which drives the
	// cross-machine energy-affinity differences of Figure 13.
	MemStallCycles float64
	// WorkScale is the cycle multiplier for one unit of reference work
	// (1.0 = SandyBridge-generation IPC): older microarchitectures need
	// more cycles for the same instructions. Zero means 1.0.
	WorkScale float64
	// DutyLevels is the number of duty-cycle modulation steps (Intel
	// exposes multipliers of 1/8 or 1/16; the paper uses 1/8).
	DutyLevels int
}

// Cores returns the total core count.
func (s MachineSpec) Cores() int { return s.Chips * s.CoresPerChip }

// ChipOf returns the chip index owning the given global core index.
func (s MachineSpec) ChipOf(core int) int { return core / s.CoresPerChip }

// Validate reports a descriptive error for malformed specs.
func (s MachineSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("cpu: spec has empty name")
	case s.Chips <= 0 || s.CoresPerChip <= 0:
		return fmt.Errorf("cpu: spec %q has invalid topology %dx%d", s.Name, s.Chips, s.CoresPerChip)
	case s.FreqHz <= 0:
		return fmt.Errorf("cpu: spec %q has invalid frequency %g", s.Name, s.FreqHz)
	case s.DutyLevels < 2:
		return fmt.Errorf("cpu: spec %q has too few duty levels %d", s.Name, s.DutyLevels)
	case s.MemStallCycles < 0:
		return fmt.Errorf("cpu: spec %q has negative memory stall cycles", s.Name)
	case s.WorkScale < 0:
		return fmt.Errorf("cpu: spec %q has negative work scale", s.Name)
	}
	return nil
}

// The paper's three evaluation machines (§4): release years 2006, 2010 and
// 2011. Frequencies are the nominal clock rates reported in the paper.
var (
	// Woodcrest is the dual-socket, dual-core Xeon 5160 machine (3.0 GHz,
	// 4 MB shared L2 per chip).
	Woodcrest = MachineSpec{
		Name:           "Woodcrest",
		Chips:          2,
		CoresPerChip:   2,
		FreqHz:         3.0e9,
		MemStallCycles: 200,
		WorkScale:      1.9,
		DutyLevels:     8,
	}

	// Westmere is the dual-socket, six-core Xeon L5640 machine (2.26 GHz
	// low-power parts, 12 MB shared L3 per chip).
	Westmere = MachineSpec{
		Name:           "Westmere",
		Chips:          2,
		CoresPerChip:   6,
		FreqHz:         2.26e9,
		MemStallCycles: 170,
		WorkScale:      1.15,
		DutyLevels:     8,
	}

	// SandyBridge is the single-socket, quad-core Xeon E31220 machine
	// (3.1 GHz, 8 MB shared L3).
	SandyBridge = MachineSpec{
		Name:           "SandyBridge",
		Chips:          1,
		CoresPerChip:   4,
		FreqHz:         3.1e9,
		MemStallCycles: 120,
		WorkScale:      1.0,
		DutyLevels:     8,
	}
)

// Specs lists the three evaluation machines in the paper's order.
func Specs() []MachineSpec {
	return []MachineSpec{Woodcrest, Westmere, SandyBridge}
}

// SpecByName looks a machine model up by name.
func SpecByName(name string) (MachineSpec, error) {
	for _, s := range Specs() {
		if s.Name == name {
			return s, nil
		}
	}
	return MachineSpec{}, fmt.Errorf("cpu: unknown machine spec %q", name)
}
