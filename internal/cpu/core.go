package cpu

import (
	"fmt"
	"math"

	"powercontainers/internal/sim"
)

// NoOverflow is returned by TimeToOverflow when overflow interrupts are
// disabled or the core is configured with no threshold.
const NoOverflow = sim.Time(math.MaxInt64)

// Core is one simulated CPU core. It exposes exactly the hardware surface
// the paper's facility programs: cumulative event counters, a non-halt-cycle
// overflow threshold for the local interrupt controller, and the duty-cycle
// modulation register.
//
// A Core is passive: the kernel drives it by calling AdvanceBusy for each
// execution segment. Counter state uses float64 accumulators so fractional
// event rates integrate exactly across segments of any length.
type Core struct {
	// ID is the global core index; Chip is the owning socket.
	ID   int
	Chip int
	// FreqHz is the core clock frequency.
	FreqHz float64

	dutyLevel int // current duty level, 1..dutyMax
	dutyMax   int

	counters Counters

	overflowThreshold float64 // non-halt cycles between interrupts, 0 = off
	sinceOverflow     float64

	// LastSampleTime and LastUtil are the most recent hardware counter
	// sample "in memory": the per-core published statistics that sibling
	// cores read without synchronization when estimating the chip power
	// share (Eq. 3). Because overflow interrupts stop on an idle core,
	// these values go stale exactly as the paper describes.
	LastSampleTime sim.Time
	LastUtil       float64

	// DutyRegReads and DutyRegWrites count accesses to the duty-cycle
	// control register, mirroring the paper's §3.5 overhead accounting
	// (~265 cycles to read, ~350 to write).
	DutyRegReads  uint64
	DutyRegWrites uint64
}

// NewCore returns a core running at full duty with interrupts disabled.
func NewCore(id int, spec MachineSpec) *Core {
	return &Core{
		ID:        id,
		Chip:      spec.ChipOf(id),
		FreqHz:    spec.FreqHz,
		dutyLevel: spec.DutyLevels,
		dutyMax:   spec.DutyLevels,
	}
}

// Counters returns the cumulative event counts.
func (c *Core) Counters() Counters { return c.counters }

// AddEvents injects extra events into the counters. The facility uses it to
// model the observer effect: each container maintenance operation itself
// retires instructions and touches the cache, perturbing the very counters
// being sampled.
func (c *Core) AddEvents(ev Counters) {
	c.counters = c.counters.Add(ev)
}

// DutyLevel reads the duty-cycle modulation register (level out of
// DutyMax; DutyMax means no modulation).
func (c *Core) DutyLevel() int {
	c.DutyRegReads++
	return c.dutyLevel
}

// DutyMax returns the number of modulation steps.
func (c *Core) DutyMax() int { return c.dutyMax }

// SetDutyLevel writes the duty-cycle modulation register, clamping to the
// valid range [1, DutyMax].
func (c *Core) SetDutyLevel(level int) {
	c.DutyRegWrites++
	if level < 1 {
		level = 1
	}
	if level > c.dutyMax {
		level = c.dutyMax
	}
	c.dutyLevel = level
}

// DutyFraction returns the fraction of regular cycles that are duty cycles.
// During non-duty periods the core is effectively halted: work progress,
// event rates and non-halt cycle accumulation all scale by this fraction.
func (c *Core) DutyFraction() float64 {
	return float64(c.dutyLevel) / float64(c.dutyMax)
}

// effectiveHz is the rate at which non-halt cycles accrue while busy.
func (c *Core) effectiveHz() float64 { return c.FreqHz * c.DutyFraction() }

// CyclesIn returns the non-halt cycles accrued over a busy wall-clock span
// at the current duty level.
func (c *Core) CyclesIn(wall sim.Time) float64 {
	return float64(wall) / float64(sim.Second) * c.effectiveHz()
}

// WallFor returns the busy wall-clock time needed to accrue the given
// number of non-halt cycles at the current duty level, rounded up to at
// least 1 ns so that progress is always made.
func (c *Core) WallFor(cycles float64) sim.Time {
	if cycles <= 0 {
		return 0
	}
	ns := cycles / c.effectiveHz() * float64(sim.Second)
	t := sim.Time(math.Ceil(ns))
	if t < 1 {
		t = 1
	}
	return t
}

// AdvanceBusy accrues wall nanoseconds of busy execution under the given
// activity profile, updating counters and overflow progress. It returns the
// counter delta for the segment.
func (c *Core) AdvanceBusy(wall sim.Time, act Activity) Counters {
	cycles := c.CyclesIn(wall)
	ev := act.Events(cycles)
	c.counters = c.counters.Add(ev)
	if c.overflowThreshold > 0 {
		c.sinceOverflow += cycles
	}
	return ev
}

// SetOverflowThreshold programs the interrupt controller to fire after the
// given number of non-halt cycles; 0 disables overflow interrupts. Non-halt
// triggering means interrupts are naturally suppressed while the core idles.
func (c *Core) SetOverflowThreshold(cycles float64) {
	if cycles < 0 {
		panic(fmt.Sprintf("cpu: negative overflow threshold %g", cycles))
	}
	c.overflowThreshold = cycles
	c.sinceOverflow = 0
}

// OverflowThreshold returns the programmed threshold (0 when disabled).
func (c *Core) OverflowThreshold() float64 { return c.overflowThreshold }

// TimeToOverflow returns the busy wall-clock time remaining until the next
// overflow interrupt at the current duty level, or NoOverflow when disabled.
func (c *Core) TimeToOverflow() sim.Time {
	if c.overflowThreshold <= 0 {
		return NoOverflow
	}
	remaining := c.overflowThreshold - c.sinceOverflow
	if remaining <= 0 {
		return 0
	}
	return c.WallFor(remaining)
}

// Overflowed reports whether the overflow threshold has been crossed, and
// resets the progress counter when it has.
func (c *Core) Overflowed() bool {
	if c.overflowThreshold <= 0 || c.sinceOverflow < c.overflowThreshold {
		return false
	}
	c.sinceOverflow -= c.overflowThreshold
	if c.sinceOverflow < 0 || c.sinceOverflow >= c.overflowThreshold {
		c.sinceOverflow = 0
	}
	return true
}

// PublishSample records the core's most recent utilization sample where
// sibling cores can read it without synchronization (Eq. 3 input).
func (c *Core) PublishSample(now sim.Time, util float64) {
	c.LastSampleTime = now
	c.LastUtil = util
}

// Execution translates a workload op's machine-independent work description
// (base reference cycles plus an activity signature) into this machine's
// effective cycle count and on-machine activity rates. Two effects inflate
// the cycle count: the machine's microarchitectural work scale (older cores
// retire the same instructions in more cycles) and memory stalls. Total
// event counts stay fixed while the cycle count inflates, so per-cycle
// rates deflate accordingly.
func Execution(spec MachineSpec, baseCycles float64, act Activity) (cycles float64, eff Activity) {
	ws := spec.WorkScale
	if ws == 0 {
		ws = 1
	}
	inflate := ws + act.MemPC*spec.MemStallCycles
	cycles = baseCycles * inflate
	if inflate <= 0 {
		panic("cpu: non-positive cycle inflation")
	}
	eff = Activity{
		IPC:   act.IPC / inflate,
		FLOPC: act.FLOPC / inflate,
		LLCPC: act.LLCPC / inflate,
		MemPC: act.MemPC / inflate,
	}
	return cycles, eff
}
