// Package export serializes per-request power-container accounting to CSV
// and JSON, for downstream analysis tooling (billing, anomaly detection,
// capacity planning — the consumers §1 motivates).
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"powercontainers/internal/core"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// RequestRecord is the flat export schema of one request's container.
type RequestRecord struct {
	ID              int     `json:"id"`
	Type            string  `json:"type"`
	Client          string  `json:"client,omitempty"`
	ArriveMs        float64 `json:"arrive_ms"`
	ResponseMs      float64 `json:"response_ms"`
	CPUTimeMs       float64 `json:"cpu_time_ms"`
	EnergyJ         float64 `json:"energy_j"`
	CPUEnergyJ      float64 `json:"cpu_energy_j"`
	ChipEnergyJ     float64 `json:"chip_energy_j"`
	DeviceEnergyJ   float64 `json:"device_energy_j"`
	MeanActivePower float64 `json:"mean_active_power_w"`
	DutyRatio       float64 `json:"duty_ratio"`
	Instructions    float64 `json:"instructions"`
	CacheRefs       float64 `json:"cache_refs"`
	MemTransactions float64 `json:"mem_transactions"`
}

// FromRequest flattens one finished request.
func FromRequest(r *server.Request) (RequestRecord, error) {
	if r.Cont == nil {
		return RequestRecord{}, fmt.Errorf("export: request %q has no container", r.Type)
	}
	c := r.Cont
	return RequestRecord{
		ID:              c.ID,
		Type:            r.Type,
		Client:          r.Client,
		ArriveMs:        float64(r.Arrive) / float64(sim.Millisecond),
		ResponseMs:      float64(r.ResponseTime()) / float64(sim.Millisecond),
		CPUTimeMs:       float64(c.CPUTime) / float64(sim.Millisecond),
		EnergyJ:         c.EnergyJ(),
		CPUEnergyJ:      c.CPUEnergyJ,
		ChipEnergyJ:     c.ChipEnergyJ,
		DeviceEnergyJ:   c.DeviceEnergyJ,
		MeanActivePower: c.MeanActivePowerW(),
		DutyRatio:       c.MeanDutyFraction(),
		Instructions:    c.Counters.Instructions,
		CacheRefs:       c.Counters.Cache,
		MemTransactions: c.Counters.Mem,
	}, nil
}

// Collect flattens every finished request (skipping ones without
// containers).
func Collect(reqs []*server.Request) []RequestRecord {
	var out []RequestRecord
	for _, r := range reqs {
		if !r.Finished() {
			continue
		}
		rec, err := FromRequest(r)
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// csvHeader lists the CSV columns in schema order.
var csvHeader = []string{
	"id", "type", "client", "arrive_ms", "response_ms", "cpu_time_ms",
	"energy_j", "cpu_energy_j", "chip_energy_j", "device_energy_j",
	"mean_active_power_w", "duty_ratio",
	"instructions", "cache_refs", "mem_transactions",
}

// WriteCSV writes records as CSV with a header row.
func WriteCSV(w io.Writer, records []RequestRecord) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	for _, r := range records {
		row := []string{
			strconv.Itoa(r.ID), r.Type, r.Client,
			f(r.ArriveMs), f(r.ResponseMs), f(r.CPUTimeMs),
			f(r.EnergyJ), f(r.CPUEnergyJ), f(r.ChipEnergyJ), f(r.DeviceEnergyJ),
			f(r.MeanActivePower), f(r.DutyRatio),
			f(r.Instructions), f(r.CacheRefs), f(r.MemTransactions),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes records as a JSON array (indented).
func WriteJSON(w io.Writer, records []RequestRecord) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}

// ClientUsage aggregates one client's accounted usage.
type ClientUsage struct {
	Client    string  `json:"client"`
	Requests  int     `json:"requests"`
	EnergyJ   float64 `json:"energy_j"`
	CPUTimeMs float64 `json:"cpu_time_ms"`
}

// AggregateByClient folds request records into per-client usage, sorted by
// descending energy — the billing/accounting view the paper motivates.
func AggregateByClient(records []RequestRecord) []ClientUsage {
	byClient := map[string]*ClientUsage{}
	for _, r := range records {
		name := r.Client
		if name == "" {
			name = "(anonymous)"
		}
		u := byClient[name]
		if u == nil {
			u = &ClientUsage{Client: name}
			byClient[name] = u
		}
		u.Requests++
		u.EnergyJ += r.EnergyJ
		u.CPUTimeMs += r.CPUTimeMs
	}
	out := make([]ClientUsage, 0, len(byClient))
	//pclint:allow maporder collected rows are fully ordered by sortClients below
	for _, u := range byClient {
		out = append(out, *u)
	}
	sortClients(out)
	return out
}

func sortClients(us []ClientUsage) {
	for i := 1; i < len(us); i++ {
		for j := i; j > 0 && (us[j].EnergyJ > us[j-1].EnergyJ ||
			(us[j].EnergyJ == us[j-1].EnergyJ && us[j].Client < us[j-1].Client)); j-- {
			us[j], us[j-1] = us[j-1], us[j]
		}
	}
}

// ContainerRecord exports a container independent of a request (e.g. the
// background container).
type ContainerRecord struct {
	ID        int     `json:"id"`
	Label     string  `json:"label"`
	Kind      string  `json:"kind"`
	CPUTimeMs float64 `json:"cpu_time_ms"`
	EnergyJ   float64 `json:"energy_j"`
}

// FromContainer flattens one container.
func FromContainer(c *core.Container) ContainerRecord {
	return ContainerRecord{
		ID:        c.ID,
		Label:     c.Label,
		Kind:      c.Kind.String(),
		CPUTimeMs: float64(c.CPUTime) / float64(sim.Millisecond),
		EnergyJ:   c.EnergyJ(),
	}
}
