package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
	"powercontainers/internal/workload"
)

// runSample produces a handful of finished requests.
func runSample(t *testing.T) ([]*server.Request, *core.Facility) {
	t.Helper()
	eng := sim.NewEngine()
	profile := power.MustProfile(cpu.SandyBridge)
	k, err := kernel.New("exp", cpu.SandyBridge, profile, eng, nil)
	if err != nil {
		t.Fatal(err)
	}
	coeff := model.Coefficients{Core: 6, Ins: 1.5, Cache: 130, Mem: 900, Chip: 5, Disk: 1.7, Net: 5.8, IncludesChipShare: true}
	fac := core.Attach(k, coeff, core.Config{Approach: core.ApproachChipShare})
	rng := sim.NewRand(3)
	dep := workload.RSA{}.Deploy(k, rng)
	gen := server.NewLoadGen(k, fac, dep)
	gen.RunOpenLoop(50, sim.Second, rng.Fork(1))
	eng.RunUntil(2 * sim.Second)
	return gen.Completed(), fac
}

func TestCollectAndCSVRoundTrip(t *testing.T) {
	reqs, _ := runSample(t)
	records := Collect(reqs)
	if len(records) < 10 {
		t.Fatalf("records = %d", len(records))
	}
	for _, r := range records[:5] {
		if r.EnergyJ <= 0 || r.CPUTimeMs <= 0 || r.Type == "" {
			t.Fatalf("degenerate record %+v", r)
		}
		if r.ChipEnergyJ > r.CPUEnergyJ {
			t.Fatalf("chip energy exceeds CPU energy: %+v", r)
		}
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, records); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(records)+1 {
		t.Fatalf("csv rows = %d, want %d", len(rows), len(records)+1)
	}
	if rows[0][0] != "id" || rows[0][1] != "type" {
		t.Fatalf("header = %v", rows[0])
	}
	if len(rows[1]) != len(csvHeader) {
		t.Fatalf("row width = %d, want %d", len(rows[1]), len(csvHeader))
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	reqs, _ := runSample(t)
	records := Collect(reqs)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, records); err != nil {
		t.Fatal(err)
	}
	var back []RequestRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(records) {
		t.Fatalf("json round trip lost records: %d vs %d", len(back), len(records))
	}
	if back[0] != records[0] {
		t.Fatalf("record changed: %+v vs %+v", back[0], records[0])
	}
}

func TestFromContainer(t *testing.T) {
	_, fac := runSample(t)
	rec := FromContainer(fac.Background)
	if rec.Kind != "background" || rec.Label != "background" {
		t.Fatalf("container record %+v", rec)
	}
}

func TestFromRequestWithoutContainer(t *testing.T) {
	if _, err := FromRequest(&server.Request{Type: "x"}); err == nil {
		t.Fatal("containerless request accepted")
	}
}

func TestCollectSkipsUnfinished(t *testing.T) {
	reqs, _ := runSample(t)
	// Append an unfinished request.
	reqs = append(reqs, &server.Request{Type: "pending"})
	records := Collect(reqs)
	for _, r := range records {
		if strings.Contains(r.Type, "pending") {
			t.Fatal("unfinished request exported")
		}
	}
}

func TestAggregateByClient(t *testing.T) {
	records := []RequestRecord{
		{Client: "a", EnergyJ: 1, CPUTimeMs: 5},
		{Client: "b", EnergyJ: 4, CPUTimeMs: 2},
		{Client: "a", EnergyJ: 2, CPUTimeMs: 1},
		{EnergyJ: 0.5},
	}
	us := AggregateByClient(records)
	if len(us) != 3 {
		t.Fatalf("clients = %d", len(us))
	}
	if us[0].Client != "b" || us[1].Client != "a" {
		t.Fatalf("order wrong: %+v", us)
	}
	if us[1].Requests != 2 || us[1].EnergyJ != 3 || us[1].CPUTimeMs != 6 {
		t.Fatalf("aggregation wrong: %+v", us[1])
	}
	if us[2].Client != "(anonymous)" {
		t.Fatalf("anonymous bucket missing: %+v", us[2])
	}
}
