// Package faults is a deterministic, seeded fault-injection subsystem for
// the attribution pipeline. A Plan describes which faults to inject — meter
// faults (dropouts, spikes, stuck readings, delay jitter, death), counter
// faults (MSR-style wraparound, lost overflow interrupts), socket-tag loss,
// and node failure windows — and every injection decision is a pure
// function of the plan seed and a per-site sample/call index. No wall
// clock, no shared mutable RNG: the same seeded plan replays byte-identically
// whether an experiment runs at -jobs 1 or -jobs N, and regardless of how
// interleaved the call sites are.
//
// Per-site seeds are derived from the plan seed with runner.SeedFor, and
// per-index uniform draws use the same splitmix-style pure hash the power
// meters use for bucket noise, so injection composes with the existing
// determinism story instead of fighting it.
package faults

import (
	"powercontainers/internal/sim"
)

// Event describes one injected fault or one degradation-relevant state
// change, emitted through the plan's nil-guarded audit sink.
type Event struct {
	// T is the sim time the fault took effect.
	T sim.Time
	// Site names the injection point (meter name, "counter", "socket",
	// "node3", ...).
	Site string
	// Kind is the fault class ("dropout", "spike", "stuck", "jitter",
	// "death", "wrap", "lost-interrupt", "tag-loss", "node-fail",
	// "node-recover").
	Kind string
	// Detail carries optional human-readable context.
	Detail string
}

// AuditSink receives fault events. Implemented by internal/audit; every
// call site nil-guards the sink, so plans run standalone without one.
type AuditSink interface {
	OnFault(e Event)
}

// mix64 is the splitmix64 finalizer used across the repo for pure-hash
// deterministic noise (see power.bucketNoise, runner.SeedFor).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit returns a deterministic uniform [0,1) draw for (seed, index). It is
// the injection analogue of power.bucketNoise: a pure function, so the
// decision for sample i does not depend on how many times, or in what
// order, the surrounding code was called.
func unit(seed, index uint64) float64 {
	x := seed ^ (index+1)*0x9e3779b97f4a7c15
	return (float64(mix64(x)>>11) + 0.5) / (1 << 53)
}
