package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"powercontainers/internal/sim"
)

// Schedule is the parsed, validated form of a fault-plan spec string. The
// text format exists so experiments and the pcbench command line can name a
// fault mix compactly:
//
//	meter:drop=0.1,spike=0.05,spikemag=8;counter:wrap=5e7,lostirq=0.01;node1:fail@5000000000-10000000000
//
// Clauses are ';'-separated, each "target:key=value,...". Targets are
// "meter", "counter", "socket", and "node<i>"; durations and times are
// plain nanosecond integers. ParseSchedule validates probabilities,
// ordering, and overlap; String re-encodes canonically, and
// ParseSchedule(s.String()) round-trips to an equal schedule.
type Schedule struct {
	Meter   *MeterFaults
	Counter *CounterFaults
	Socket  *SocketFaults
	// Nodes is sorted by node index, one entry per node, each with
	// sorted non-overlapping windows.
	Nodes []NodeFault
}

// Plan derives the seeded injection plan for this schedule.
func (s *Schedule) Plan(seed uint64) *Plan {
	p := &Plan{Seed: seed}
	if s.Meter != nil {
		m := *s.Meter
		p.Meter = &m
	}
	if s.Counter != nil {
		c := *s.Counter
		p.Counter = &c
	}
	if s.Socket != nil {
		sk := *s.Socket
		p.Socket = &sk
	}
	for _, nf := range s.Nodes {
		cp := NodeFault{Node: nf.Node, Windows: append([]Window(nil), nf.Windows...)}
		p.Nodes = append(p.Nodes, cp)
	}
	return p
}

func parseProb(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %v", key, err)
	}
	if math.IsNaN(f) || f < 0 || f > 1 {
		return 0, fmt.Errorf("faults: %s=%v outside [0,1]", key, f)
	}
	return f, nil
}

func parseNonNeg(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %v", key, err)
	}
	if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("faults: %s=%v must be finite and ≥ 0", key, f)
	}
	return f, nil
}

func parseTime(key, val string) (sim.Time, error) {
	n, err := strconv.ParseInt(val, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %v", key, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("faults: %s=%d must be ≥ 0", key, n)
	}
	return sim.Time(n), nil
}

// splitParams tolerates an empty param list ("meter:" is a valid, inert
// clause — the canonical encoding of an all-zero config).
func splitParams(params string) []string {
	if params == "" {
		return nil
	}
	return strings.Split(params, ",")
}

func parseMeterClause(params string) (*MeterFaults, error) {
	m := &MeterFaults{}
	for _, kv := range splitParams(params) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: meter param %q is not key=value", kv)
		}
		var err error
		switch key {
		case "drop":
			m.DropoutP, err = parseProb("drop", val)
		case "spike":
			m.SpikeP, err = parseProb("spike", val)
		case "spikemag":
			m.SpikeMag, err = parseNonNeg("spikemag", val)
		case "stuck":
			m.StuckP, err = parseProb("stuck", val)
		case "jitter":
			m.JitterP, err = parseProb("jitter", val)
		case "jittermax":
			m.JitterMax, err = parseTime("jittermax", val)
		case "death":
			m.DeathAt, err = parseTime("death", val)
		default:
			return nil, fmt.Errorf("faults: unknown meter param %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	if sum := m.DropoutP + m.SpikeP + m.StuckP; sum > 1 {
		return nil, fmt.Errorf("faults: drop+spike+stuck=%v exceeds 1", sum)
	}
	return m, nil
}

func parseCounterClause(params string) (*CounterFaults, error) {
	c := &CounterFaults{}
	for _, kv := range splitParams(params) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: counter param %q is not key=value", kv)
		}
		var err error
		switch key {
		case "wrap":
			c.WrapEvery, err = parseNonNeg("wrap", val)
		case "lostirq":
			c.LostInterruptP, err = parseProb("lostirq", val)
		default:
			return nil, fmt.Errorf("faults: unknown counter param %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return c, nil
}

func parseSocketClause(params string) (*SocketFaults, error) {
	s := &SocketFaults{}
	for _, kv := range splitParams(params) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("faults: socket param %q is not key=value", kv)
		}
		var err error
		switch key {
		case "injectloss":
			s.InjectTagLossP, err = parseProb("injectloss", val)
		case "sendloss":
			s.SendTagLossP, err = parseProb("sendloss", val)
		default:
			return nil, fmt.Errorf("faults: unknown socket param %q", key)
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func parseNodeClause(node int, params string) (NodeFault, error) {
	nf := NodeFault{Node: node}
	for _, kv := range splitParams(params) {
		spec, ok := strings.CutPrefix(kv, "fail@")
		if !ok {
			return nf, fmt.Errorf("faults: node param %q is not fail@from-to", kv)
		}
		fromS, toS, ok := strings.Cut(spec, "-")
		if !ok {
			return nf, fmt.Errorf("faults: node window %q is not from-to", spec)
		}
		from, err := parseTime("fail window start", fromS)
		if err != nil {
			return nf, err
		}
		to, err := parseTime("fail window end", toS)
		if err != nil {
			return nf, err
		}
		if to <= from {
			return nf, fmt.Errorf("faults: node%d window [%d,%d) is empty or inverted", node, from, to)
		}
		if n := len(nf.Windows); n > 0 && from < nf.Windows[n-1].To {
			return nf, fmt.Errorf("faults: node%d windows out of order or overlapping at [%d,%d)", node, from, to)
		}
		nf.Windows = append(nf.Windows, Window{From: from, To: to})
	}
	return nf, nil
}

// ParseSchedule parses and validates a fault-plan spec. An empty spec
// yields an empty (inject-nothing) schedule. Accepted schedules always
// satisfy: probabilities in [0,1] with drop+spike+stuck ≤ 1, times ≥ 0,
// at most one clause per target, node indexes unique, and per-node failure
// windows non-empty, sorted, and non-overlapping.
func ParseSchedule(spec string) (*Schedule, error) {
	s := &Schedule{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	seenNodes := map[int]bool{}
	for _, clause := range strings.Split(spec, ";") {
		target, params, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faults: clause %q is not target:params", clause)
		}
		switch {
		case target == "meter":
			if s.Meter != nil {
				return nil, fmt.Errorf("faults: duplicate meter clause")
			}
			m, err := parseMeterClause(params)
			if err != nil {
				return nil, err
			}
			s.Meter = m
		case target == "counter":
			if s.Counter != nil {
				return nil, fmt.Errorf("faults: duplicate counter clause")
			}
			c, err := parseCounterClause(params)
			if err != nil {
				return nil, err
			}
			s.Counter = c
		case target == "socket":
			if s.Socket != nil {
				return nil, fmt.Errorf("faults: duplicate socket clause")
			}
			sk, err := parseSocketClause(params)
			if err != nil {
				return nil, err
			}
			s.Socket = sk
		case strings.HasPrefix(target, "node"):
			idx, err := strconv.Atoi(strings.TrimPrefix(target, "node"))
			if err != nil || idx < 0 {
				return nil, fmt.Errorf("faults: bad node target %q", target)
			}
			if seenNodes[idx] {
				return nil, fmt.Errorf("faults: duplicate clause for node%d", idx)
			}
			seenNodes[idx] = true
			nf, err := parseNodeClause(idx, params)
			if err != nil {
				return nil, err
			}
			s.Nodes = append(s.Nodes, nf)
		default:
			return nil, fmt.Errorf("faults: unknown target %q", target)
		}
	}
	sort.Slice(s.Nodes, func(i, j int) bool { return s.Nodes[i].Node < s.Nodes[j].Node })
	return s, nil
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String re-encodes the schedule canonically: clause order meter, counter,
// socket, then nodes ascending; zero-valued params omitted. The canonical
// form parses back to an equal schedule.
func (s *Schedule) String() string {
	var clauses []string
	if m := s.Meter; m != nil {
		var ps []string
		if m.DropoutP > 0 {
			ps = append(ps, "drop="+fmtF(m.DropoutP))
		}
		if m.SpikeP > 0 {
			ps = append(ps, "spike="+fmtF(m.SpikeP))
		}
		if m.SpikeMag > 0 {
			ps = append(ps, "spikemag="+fmtF(m.SpikeMag))
		}
		if m.StuckP > 0 {
			ps = append(ps, "stuck="+fmtF(m.StuckP))
		}
		if m.JitterP > 0 {
			ps = append(ps, "jitter="+fmtF(m.JitterP))
		}
		if m.JitterMax > 0 {
			ps = append(ps, "jittermax="+strconv.FormatInt(int64(m.JitterMax), 10))
		}
		if m.DeathAt > 0 {
			ps = append(ps, "death="+strconv.FormatInt(int64(m.DeathAt), 10))
		}
		clauses = append(clauses, "meter:"+strings.Join(ps, ","))
	}
	if c := s.Counter; c != nil {
		var ps []string
		if c.WrapEvery > 0 {
			ps = append(ps, "wrap="+fmtF(c.WrapEvery))
		}
		if c.LostInterruptP > 0 {
			ps = append(ps, "lostirq="+fmtF(c.LostInterruptP))
		}
		clauses = append(clauses, "counter:"+strings.Join(ps, ","))
	}
	if sk := s.Socket; sk != nil {
		var ps []string
		if sk.InjectTagLossP > 0 {
			ps = append(ps, "injectloss="+fmtF(sk.InjectTagLossP))
		}
		if sk.SendTagLossP > 0 {
			ps = append(ps, "sendloss="+fmtF(sk.SendTagLossP))
		}
		clauses = append(clauses, "socket:"+strings.Join(ps, ","))
	}
	for _, nf := range s.Nodes {
		var ps []string
		for _, w := range nf.Windows {
			ps = append(ps, fmt.Sprintf("fail@%d-%d", int64(w.From), int64(w.To)))
		}
		clauses = append(clauses, fmt.Sprintf("node%d:%s", nf.Node, strings.Join(ps, ",")))
	}
	return strings.Join(clauses, ";")
}
