package faults

import (
	"strings"
	"testing"

	"powercontainers/internal/durable"
)

func TestParseCrashPlanRoundTrip(t *testing.T) {
	specs := []string{
		"",
		"crash:op=sync,index=1",
		"crash:op=write,match=wal-,index=3,keep=5",
		"crash:op=rename,match=checkpoint,index=2,at=post",
		"crash:op=sync,index=1;corrupt:file=.seg,off=-1,mask=64",
		"corrupt:file=checkpoint,trunc=12",
		"crash:op=truncate,index=1;corrupt:file=a,mask=1;corrupt:file=b,off=9,mask=128",
	}
	for _, spec := range specs {
		p, err := ParseCrashPlan(spec)
		if err != nil {
			t.Fatalf("ParseCrashPlan(%q): %v", spec, err)
		}
		canon := p.String()
		p2, err := ParseCrashPlan(canon)
		if err != nil {
			t.Fatalf("reparse %q (from %q): %v", canon, spec, err)
		}
		if p2.String() != canon {
			t.Fatalf("round-trip of %q: %q then %q", spec, canon, p2.String())
		}
	}
}

func TestParseCrashPlanRejects(t *testing.T) {
	bad := []string{
		"crash:op=fsync,index=1",                      // unknown op
		"crash:index=1",                               // missing op
		"crash:op=sync,index=0",                       // index < 1
		"crash:op=sync,index=1,keep=-1",               // negative keep
		"crash:op=sync,index=1,at=during",             // bad phase
		"crash:op=sync,index=1;crash:op=sync,index=2", // duplicate
		"corrupt:file=x",                              // neither mask nor trunc
		"corrupt:file=x,mask=3,trunc=4",               // both modes
		"corrupt:file=x,mask=0",                       // mask outside 1..255
		"corrupt:file=x,mask=256",
		"boom:op=sync", // unknown target
		"crash:op",     // not key=value
	}
	for _, spec := range bad {
		if _, err := ParseCrashPlan(spec); err == nil {
			t.Errorf("ParseCrashPlan(%q) accepted, want error", spec)
		}
	}
}

// mustPanicCrash runs fn expecting a Crash panic and returns it.
func mustPanicCrash(t *testing.T, fn func()) Crash {
	t.Helper()
	var got Crash
	func() {
		defer func() {
			r := recover()
			c, ok := r.(Crash)
			if !ok {
				t.Fatalf("expected Crash panic, got %v", r)
			}
			got = c
		}()
		fn()
	}()
	return got
}

func TestCrashFSWriteTorn(t *testing.T) {
	m := durable.NewMemFS()
	plan, err := ParseCrashPlan("crash:op=write,match=log,index=2,keep=3")
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewCrashFS(m, plan)
	f, err := cfs.Create("log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	c := mustPanicCrash(t, func() { f.Write([]byte("second")) })
	if c.Op != "write" || c.Name != "log" {
		t.Fatalf("crash = %+v", c)
	}
	data, err := m.ReadFile("log")
	if err != nil {
		t.Fatal(err)
	}
	// Synced prefix plus keep=3 torn bytes of the second write.
	if string(data) != "firstsec" {
		t.Fatalf("surviving contents %q, want %q", data, "firstsec")
	}
	if !cfs.Fired() {
		t.Fatal("Fired() = false after crash")
	}
}

func TestCrashFSSyncPreAndPost(t *testing.T) {
	run := func(spec string) string {
		m := durable.NewMemFS()
		plan, err := ParseCrashPlan(spec)
		if err != nil {
			t.Fatal(err)
		}
		cfs := NewCrashFS(m, plan)
		f, err := cfs.Create("f")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("payload")); err != nil {
			t.Fatal(err)
		}
		mustPanicCrash(t, func() { f.Sync() })
		data, err := m.ReadFile("f")
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	if got := run("crash:op=sync,index=1"); got != "" {
		t.Fatalf("pre-fsync crash kept %q, want nothing", got)
	}
	if got := run("crash:op=sync,index=1,at=post"); got != "payload" {
		t.Fatalf("post-fsync crash kept %q, want full payload", got)
	}
}

func TestCrashFSMidRenameLeavesTemp(t *testing.T) {
	m := durable.NewMemFS()
	plan, err := ParseCrashPlan("crash:op=rename,match=target,index=1")
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewCrashFS(m, plan)
	f, err := cfs.Create(".target.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("next")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustPanicCrash(t, func() { cfs.Rename(".target.tmp", "target") })
	if m.Size("target") != 0 {
		t.Fatal("rename took effect despite pre crash")
	}
	data, err := m.ReadFile(".target.tmp")
	if err != nil || string(data) != "next" {
		t.Fatalf("synced temp should survive mid-rename crash: %q, %v", data, err)
	}
}

func TestCrashFSAppliesCorruptions(t *testing.T) {
	m := durable.NewMemFS()
	plan, err := ParseCrashPlan("crash:op=sync,index=2,at=post;corrupt:file=seg,off=-1,mask=255")
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewCrashFS(m, plan)
	f, err := cfs.Create("dir/a.seg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	mustPanicCrash(t, func() { f.Sync() })
	data, err := m.ReadFile("dir/a.seg")
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != 0xff {
		t.Fatalf("corruption not applied: % x", data)
	}
}

func TestCrashFSFiresOnce(t *testing.T) {
	m := durable.NewMemFS()
	plan, err := ParseCrashPlan("crash:op=sync,index=1")
	if err != nil {
		t.Fatal(err)
	}
	cfs := NewCrashFS(m, plan)
	f, err := cfs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	mustPanicCrash(t, func() { f.Sync() })
	// Recovery on the same wrapped filesystem must not crash again.
	f2, err := cfs.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyCorruptionsTargetsLastMatch(t *testing.T) {
	m := durable.NewMemFS()
	for _, name := range []string{"wal/wal-00000001.seg", "wal/wal-00000002.seg"} {
		f, err := m.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte("AB")); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := ParseCrashPlan("corrupt:file=.seg,mask=32")
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.ApplyCorruptions(m); err != nil {
		t.Fatal(err)
	}
	d1, _ := m.ReadFile("wal/wal-00000001.seg")
	d2, _ := m.ReadFile("wal/wal-00000002.seg")
	if string(d1) != "AB" || string(d2) != "aB" {
		t.Fatalf("corruption hit wrong file: %q / %q", d1, d2)
	}
	// A clause matching nothing is an error, not a silent no-op.
	miss, err := ParseCrashPlan("corrupt:file=nothing,mask=1")
	if err != nil {
		t.Fatal(err)
	}
	if err := miss.ApplyCorruptions(m); err == nil || !strings.Contains(err.Error(), "matches no file") {
		t.Fatalf("ApplyCorruptions miss = %v, want matches-no-file error", err)
	}
}
