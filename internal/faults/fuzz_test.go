package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultPlan fuzzes the schedule decoder. Accepted schedules must
// satisfy the documented invariants — probabilities in range, node windows
// sorted and non-overlapping with positive width, node indexes unique and
// ascending — and the canonical String form must reparse to an equal
// schedule (fixpoint). Rejection is always an error value, never a panic.
func FuzzFaultPlan(f *testing.F) {
	f.Add("meter:drop=0.1,spike=0.05,spikemag=8;counter:wrap=5e+07,lostirq=0.01")
	f.Add("socket:injectloss=0.05,sendloss=0.01;node0:fail@0-1000;node3:fail@5-6,fail@7-9")
	f.Add("meter:;counter:;node0:")
	f.Add("")
	f.Add("node0:fail@0-10,fail@5-20")  // overlap: must reject
	f.Add("node0:fail@20-30,fail@0-10") // unordered: must reject
	f.Add("meter:drop=0.5,spike=0.6")   // partition sum > 1: must reject
	f.Add("meter:drop=1e309")           // inf: must reject
	f.Add("node-1:fail@0-1")            // negative node: must reject
	f.Add("node0:fail@-5-10")           // negative time: must reject
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSchedule(spec)
		if err != nil {
			return
		}
		check := func(sc *Schedule, which string) {
			probs := map[string]float64{}
			if m := sc.Meter; m != nil {
				probs["drop"] = m.DropoutP
				probs["spike"] = m.SpikeP
				probs["stuck"] = m.StuckP
				probs["jitter"] = m.JitterP
				if m.DropoutP+m.SpikeP+m.StuckP > 1 {
					t.Fatalf("%s: accepted partition sum > 1: %+v", which, m)
				}
				if m.JitterMax < 0 || m.DeathAt < 0 || m.SpikeMag < 0 {
					t.Fatalf("%s: accepted negative meter magnitude: %+v", which, m)
				}
			}
			if c := sc.Counter; c != nil {
				probs["lostirq"] = c.LostInterruptP
				if c.WrapEvery < 0 {
					t.Fatalf("%s: accepted negative wrap modulus", which)
				}
			}
			if sk := sc.Socket; sk != nil {
				probs["injectloss"] = sk.InjectTagLossP
				probs["sendloss"] = sk.SendTagLossP
			}
			for k, p := range probs {
				if !(p >= 0 && p <= 1) {
					t.Fatalf("%s: accepted %s=%v outside [0,1]", which, k, p)
				}
			}
			lastNode := -1
			for _, nf := range sc.Nodes {
				if nf.Node <= lastNode {
					t.Fatalf("%s: node indexes not unique/ascending: %+v", which, sc.Nodes)
				}
				lastNode = nf.Node
				for i, w := range nf.Windows {
					if w.From < 0 || w.To <= w.From {
						t.Fatalf("%s: node%d accepted bad window %+v", which, nf.Node, w)
					}
					if i > 0 && w.From < nf.Windows[i-1].To {
						t.Fatalf("%s: node%d accepted overlapping windows %+v", which, nf.Node, nf.Windows)
					}
				}
			}
		}
		check(s, "first parse")
		canon := s.String()
		re, err := ParseSchedule(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", canon, spec, err)
		}
		check(re, "reparse")
		if !reflect.DeepEqual(s, re) {
			t.Fatalf("canonical round trip diverged for %q:\n  %+v\n  %+v", spec, s, re)
		}
		if re.String() != canon {
			t.Fatalf("String not a fixpoint: %q vs %q", canon, re.String())
		}
		// Deriving a plan from any accepted schedule must be safe.
		_ = s.Plan(1)
	})
}

// FuzzCrashPlan fuzzes the crash-plan decoder the same way: accepted
// plans must satisfy the documented invariants — a known op with index
// ≥ 1 and keep ≥ 0 when a crash clause is present, every corruption in
// exactly one of bit-flip (mask 1..255) or truncate (trunc ≥ 0) mode —
// and the canonical String form must reparse to an equal plan.
// Rejection is always an error value, never a panic.
func FuzzCrashPlan(f *testing.F) {
	f.Add("crash:op=sync,match=wal-,index=3,keep=5,at=post;corrupt:file=.seg,off=-1,mask=64")
	f.Add("crash:op=write,match=wal-,index=40,keep=6")
	f.Add("crash:op=rename,match=checkpoint.ck,index=2,at=post")
	f.Add("corrupt:file=.seg,trunc=200")
	f.Add("")
	f.Add("crash:op=sync;crash:op=write")  // duplicate crash: must reject
	f.Add("crash:op=chmod,index=1")        // unknown op: must reject
	f.Add("crash:op=sync,index=0")         // index < 1: must reject
	f.Add("crash:op=sync,keep=-1")         // negative keep: must reject
	f.Add("corrupt:file=x,mask=0")         // mask 0: must reject
	f.Add("corrupt:file=x,mask=1,trunc=2") // both modes: must reject
	f.Add("corrupt:file=x,off=5,trunc=3")  // off in trunc mode: must reject
	f.Add("crash:op=sync,at=mid")          // bad at: must reject
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := ParseCrashPlan(spec)
		if err != nil {
			return
		}
		check := func(pl *CrashPlan, which string) {
			if pl.Point.Op != "" {
				if !crashOpKnown(pl.Point.Op) {
					t.Fatalf("%s: accepted unknown op %q", which, pl.Point.Op)
				}
				if pl.Point.Index < 1 || pl.Point.Keep < 0 {
					t.Fatalf("%s: accepted bad crash point %+v", which, pl.Point)
				}
			}
			for _, c := range pl.Corruptions {
				if c.Mask == 0 && c.Trunc < 0 {
					t.Fatalf("%s: accepted negative trunc %+v", which, c)
				}
				if c.Mask == 0 && c.Off != 0 {
					t.Fatalf("%s: accepted off in truncate mode %+v", which, c)
				}
			}
		}
		check(p, "first parse")
		canon := p.String()
		re, err := ParseCrashPlan(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q rejected: %v", canon, spec, err)
		}
		check(re, "reparse")
		if !reflect.DeepEqual(p, re) {
			t.Fatalf("canonical round trip diverged for %q:\n  %+v\n  %+v", spec, p, re)
		}
		if re.String() != canon {
			t.Fatalf("String not a fixpoint: %q vs %q", canon, re.String())
		}
	})
}
