package faults

import (
	"reflect"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// fakeMeter is a deterministic base meter: one sample per millisecond
// bucket, watts a pure function of the bucket index, delivered with a 1 ms
// lag. It intentionally does NOT implement SinceReader so the decorator's
// full-Read fallback path is exercised too (see sinceFake below).
type fakeMeter struct{}

func (fakeMeter) Name() string       { return "fake" }
func (fakeMeter) Interval() sim.Time { return sim.Millisecond }
func (fakeMeter) Delay() sim.Time    { return sim.Millisecond }
func (fakeMeter) Scope() power.Scope { return power.ScopePackage }
func (fakeMeter) IdleW() float64     { return 5 }

func fakeSample(b int) power.Sample {
	start := sim.Time(b) * sim.Millisecond
	return power.Sample{
		Start:   start,
		Arrival: start + 2*sim.Millisecond,
		Watts:   10 + float64(b%7),
	}
}

func (fakeMeter) Read(now sim.Time) []power.Sample {
	var out []power.Sample
	for b := 0; ; b++ {
		s := fakeSample(b)
		if s.Arrival > now {
			break
		}
		out = append(out, s)
	}
	return out
}

// sinceFake adds the SinceReader capability on top of fakeMeter.
type sinceFake struct{ fakeMeter }

func (m sinceFake) ReadSince(now sim.Time, skip int) []power.Sample {
	all := m.Read(now)
	if skip < 0 {
		skip = 0
	}
	if skip > len(all) {
		skip = len(all)
	}
	return all[skip:]
}

type eventLog struct{ events []Event }

func (l *eventLog) OnFault(e Event) { l.events = append(l.events, e) }

func testPlan(m *MeterFaults) *Plan {
	return &Plan{Seed: 42, Meter: m}
}

func TestWrapMeterIdentityWhenUnconfigured(t *testing.T) {
	base := sinceFake{}
	if got := (&Plan{Seed: 1}).WrapMeter(base); got != power.Meter(base) {
		t.Fatalf("plan without meter faults must return the base meter unchanged")
	}
	var nilPlan *Plan
	if got := nilPlan.WrapMeter(base); got != power.Meter(base) {
		t.Fatalf("nil plan must return the base meter unchanged")
	}
}

func TestFaultyMeterReadSinceContract(t *testing.T) {
	p := testPlan(&MeterFaults{DropoutP: 0.2, SpikeP: 0.1, SpikeMag: 4, StuckP: 0.1,
		JitterP: 0.3, JitterMax: 5 * sim.Millisecond})
	fm := p.WrapMeter(sinceFake{}).(*FaultyMeter)
	for _, now := range []sim.Time{10 * sim.Millisecond, 55 * sim.Millisecond, 200 * sim.Millisecond} {
		all := fm.Read(now)
		for k := 0; k <= len(all)+5; k++ {
			got := fm.ReadSince(now, k)
			want := all
			if k < len(all) {
				want = all[k:]
			} else {
				want = nil
			}
			if len(got) != len(want) {
				t.Fatalf("ReadSince(%d, %d): got %d samples, want %d", now, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("ReadSince(%d, %d)[%d] = %+v, want %+v", now, k, i, got[i], want[i])
				}
			}
		}
		if got := fm.ReadSince(now, -3); len(got) != len(all) {
			t.Fatalf("negative skip must clamp to 0")
		}
	}
}

// TestFaultyMeterPollingInvariance pins the core determinism property: the
// faulted stream is identical whether the decorator is polled every
// millisecond or once at the end, and identical across the SinceReader and
// plain-Read base paths.
func TestFaultyMeterPollingInvariance(t *testing.T) {
	cfg := &MeterFaults{DropoutP: 0.15, SpikeP: 0.1, SpikeMag: 6, StuckP: 0.1,
		JitterP: 0.25, JitterMax: 7 * sim.Millisecond}
	end := sim.Time(300) * sim.Millisecond

	polled := testPlan(cfg).WrapMeter(sinceFake{}).(*FaultyMeter)
	for now := sim.Time(0); now <= end; now += sim.Millisecond {
		polled.Read(now)
	}
	once := testPlan(cfg).WrapMeter(sinceFake{}).(*FaultyMeter)
	noSince := testPlan(cfg).WrapMeter(fakeMeter{}).(*FaultyMeter)

	a := polled.Read(end)
	b := once.Read(end)
	c := noSince.Read(end)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("polled (%d samples) and one-shot (%d samples) streams diverge", len(a), len(b))
	}
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("SinceReader and plain-Read base paths diverge")
	}
}

func TestFaultyMeterDropoutRate(t *testing.T) {
	p := testPlan(&MeterFaults{DropoutP: 0.3})
	log := &eventLog{}
	p.Audit = log
	fm := p.WrapMeter(sinceFake{})
	end := sim.Time(2000)*sim.Millisecond + 2*sim.Millisecond
	got := len(fm.Read(end))
	base := len(sinceFake{}.Read(end))
	dropped := base - got
	frac := float64(dropped) / float64(base)
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("dropout fraction %.3f far from configured 0.3 (%d of %d)", frac, dropped, base)
	}
	if len(log.events) != dropped {
		t.Fatalf("audit saw %d dropout events, expected %d", len(log.events), dropped)
	}
	for _, e := range log.events {
		if e.Kind != "dropout" || e.Site != "meter/fake" {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}

func TestFaultyMeterMonotoneArrivalsUnderJitter(t *testing.T) {
	p := testPlan(&MeterFaults{JitterP: 0.5, JitterMax: 20 * sim.Millisecond})
	fm := p.WrapMeter(sinceFake{})
	end := sim.Time(500) * sim.Millisecond
	samples := fm.Read(end)
	if len(samples) == 0 {
		t.Fatalf("no samples delivered")
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].Arrival < samples[i-1].Arrival {
			t.Fatalf("arrival order violated at %d: %d < %d", i, samples[i].Arrival, samples[i-1].Arrival)
		}
	}
	// Jittered samples must never be visible before they arrive.
	mid := 100 * sim.Millisecond
	fresh := testPlan(&MeterFaults{JitterP: 0.5, JitterMax: 20 * sim.Millisecond}).WrapMeter(sinceFake{})
	for _, s := range fresh.Read(mid) {
		if s.Arrival > mid {
			t.Fatalf("sample with arrival %d delivered at %d", s.Arrival, mid)
		}
	}
}

func TestFaultyMeterDeath(t *testing.T) {
	death := 50 * sim.Millisecond
	p := testPlan(&MeterFaults{DeathAt: death})
	log := &eventLog{}
	p.Audit = log
	fm := p.WrapMeter(sinceFake{})
	samples := fm.Read(400 * sim.Millisecond)
	if len(samples) == 0 {
		t.Fatalf("meter died before delivering anything")
	}
	for _, s := range samples {
		if s.Arrival > death {
			t.Fatalf("sample arrived at %d after meter death at %d", s.Arrival, death)
		}
	}
	deaths := 0
	for _, e := range log.events {
		if e.Kind == "death" {
			deaths++
		}
	}
	if deaths != 1 {
		t.Fatalf("expected exactly one death event, got %d", deaths)
	}
}

func TestFaultyMeterSpikeAndStuck(t *testing.T) {
	p := testPlan(&MeterFaults{SpikeP: 0.2, SpikeMag: 8, StuckP: 0.2})
	log := &eventLog{}
	p.Audit = log
	fm := p.WrapMeter(sinceFake{})
	end := sim.Time(1000)*sim.Millisecond + 2*sim.Millisecond
	samples := fm.Read(end)
	base := sinceFake{}.Read(end)
	if len(samples) != len(base) {
		t.Fatalf("spike/stuck faults must not change sample count: %d vs %d", len(samples), len(base))
	}
	spikes, stucks := 0, 0
	for _, e := range log.events {
		switch e.Kind {
		case "spike":
			spikes++
		case "stuck":
			stucks++
		}
	}
	if spikes == 0 || stucks == 0 {
		t.Fatalf("expected both spike and stuck events, got %d / %d", spikes, stucks)
	}
	// Spot-check magnitudes: every spiked sample is base×8, every stuck
	// sample equals some earlier delivered value.
	seenSpike := false
	for i, s := range samples {
		if s.Watts == base[i].Watts*8 {
			seenSpike = true
		}
	}
	if !seenSpike {
		t.Fatalf("no delivered sample shows the 8x spike magnitude")
	}
}

func TestKernelSurfaceWrapAndDeterminism(t *testing.T) {
	mk := func() *KernelSurface {
		return (&Plan{Seed: 9, Counter: &CounterFaults{WrapEvery: 1000, LostInterruptP: 0.3},
			Socket: &SocketFaults{InjectTagLossP: 0.2, SendTagLossP: 0.1}}).KernelSurface()
	}
	a, b := mk(), mk()
	if a == nil {
		t.Fatalf("surface must be non-nil when counter faults configured")
	}
	raw := cpu.Counters{Cycles: 12345, Instructions: 2345, Float: 999, Cache: 1000, Mem: 0}
	w := a.WrapCounters(0, raw)
	want := cpu.Counters{Cycles: 345, Instructions: 345, Float: 999, Cache: 0, Mem: 0}
	if w != want {
		t.Fatalf("WrapCounters = %+v, want %+v", w, want)
	}
	if a.WrapModulus() != 1000 {
		t.Fatalf("WrapModulus = %v", a.WrapModulus())
	}
	for i := 0; i < 200; i++ {
		now := sim.Time(i) * sim.Millisecond
		if a.DropInterrupt(i%4, now) != b.DropInterrupt(i%4, now) {
			t.Fatalf("DropInterrupt diverged at call %d", i)
		}
		if a.DropInjectTag(now) != b.DropInjectTag(now) {
			t.Fatalf("DropInjectTag diverged at call %d", i)
		}
		if a.DropSendTag(now) != b.DropSendTag(now) {
			t.Fatalf("DropSendTag diverged at call %d", i)
		}
	}
	if (&Plan{Seed: 9}).KernelSurface() != nil {
		t.Fatalf("surface must be nil when no kernel faults configured")
	}
}

type flag struct{ failed bool }

func (f *flag) SetFailed(v bool) { f.failed = v }

func TestArmNodesTogglesTargets(t *testing.T) {
	eng := sim.NewEngine()
	p := &Plan{Seed: 1, Nodes: []NodeFault{
		{Node: 0, Windows: []Window{{From: 10 * sim.Millisecond, To: 20 * sim.Millisecond}}},
		{Node: 7, Windows: []Window{{From: 5 * sim.Millisecond, To: 6 * sim.Millisecond}}}, // out of range: ignored
	}}
	log := &eventLog{}
	p.Audit = log
	n0 := &flag{}
	p.ArmNodes(eng, []FailureTarget{n0})
	eng.RunUntil(15 * sim.Millisecond)
	if !n0.failed {
		t.Fatalf("node 0 should be failed inside the window")
	}
	eng.RunUntil(25 * sim.Millisecond)
	if n0.failed {
		t.Fatalf("node 0 should have recovered after the window")
	}
	if len(log.events) != 2 || log.events[0].Kind != "node-fail" || log.events[1].Kind != "node-recover" {
		t.Fatalf("unexpected node events: %+v", log.events)
	}
}
