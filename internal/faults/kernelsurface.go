package faults

import (
	"math"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// KernelSurface is the kernel-side injection surface: counter wraparound,
// lost overflow interrupts, and socket-tag loss. It implements
// kernel.FaultSurface without faults importing kernel (the interface is
// satisfied structurally with cpu/sim types only).
//
// Decision streams are indexed by per-site call counters. The simulation is
// single-threaded per job and kernel call order is itself deterministic, so
// the counters — and therefore every decision — replay identically.
type KernelSurface struct {
	plan *Plan
	cfg  CounterFaults
	sock SocketFaults

	irqSeed    uint64
	injectSeed uint64
	sendSeed   uint64

	irqCalls    map[int]uint64 // per-core OnInterrupt deliveries seen
	injectCalls uint64
	sendCalls   uint64
}

func newKernelSurface(p *Plan) *KernelSurface {
	s := &KernelSurface{plan: p, irqCalls: make(map[int]uint64)}
	if p.Counter != nil {
		s.cfg = *p.Counter
	}
	if p.Socket != nil {
		s.sock = *p.Socket
	}
	s.irqSeed = p.siteSeed("counter/irq")
	s.injectSeed = p.siteSeed("socket/inject")
	s.sendSeed = p.siteSeed("socket/send")
	return s
}

// WrapModulus reports the wraparound modulus (0 disables unwrapping).
func (s *KernelSurface) WrapModulus() float64 { return s.cfg.WrapEvery }

// WrapCounters reduces the raw cumulative counters modulo the wrap
// modulus, emulating a narrow MSR energy/event register.
func (s *KernelSurface) WrapCounters(coreID int, raw cpu.Counters) cpu.Counters {
	w := s.cfg.WrapEvery
	if w <= 0 {
		return raw
	}
	return cpu.Counters{
		Cycles:       math.Mod(raw.Cycles, w),
		Instructions: math.Mod(raw.Instructions, w),
		Float:        math.Mod(raw.Float, w),
		Cache:        math.Mod(raw.Cache, w),
		Mem:          math.Mod(raw.Mem, w),
	}
}

// DropInterrupt reports whether this overflow-interrupt delivery is lost.
func (s *KernelSurface) DropInterrupt(coreID int, now sim.Time) bool {
	i := s.irqCalls[coreID]
	s.irqCalls[coreID] = i + 1
	if s.cfg.LostInterruptP <= 0 {
		return false
	}
	seed := s.irqSeed ^ mix64(uint64(coreID)+0x9e3779b97f4a7c15)
	if unit(seed, i) < s.cfg.LostInterruptP {
		s.plan.emit(Event{T: now, Site: "counter", Kind: "lost-interrupt"})
		return true
	}
	return false
}

// DropInjectTag reports whether an externally injected segment loses its
// container tag at the listener boundary.
func (s *KernelSurface) DropInjectTag(now sim.Time) bool {
	i := s.injectCalls
	s.injectCalls++
	if s.sock.InjectTagLossP <= 0 {
		return false
	}
	if unit(s.injectSeed, i) < s.sock.InjectTagLossP {
		s.plan.emit(Event{T: now, Site: "socket", Kind: "tag-loss", Detail: "inject"})
		return true
	}
	return false
}

// DropSendTag reports whether an in-flight send loses its container tag.
func (s *KernelSurface) DropSendTag(now sim.Time) bool {
	i := s.sendCalls
	s.sendCalls++
	if s.sock.SendTagLossP <= 0 {
		return false
	}
	if unit(s.sendSeed, i) < s.sock.SendTagLossP {
		s.plan.emit(Event{T: now, Site: "socket", Kind: "tag-loss", Detail: "send"})
		return true
	}
	return false
}
