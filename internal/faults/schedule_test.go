package faults

import (
	"reflect"
	"strings"
	"testing"

	"powercontainers/internal/sim"
)

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "meter:drop=0.1,spike=0.05,spikemag=8,stuck=0.02,jitter=0.1,jittermax=50000000,death=5000000000;" +
		"counter:wrap=5e+07,lostirq=0.01;socket:injectloss=0.05,sendloss=0.01;" +
		"node0:fail@1000000000-2000000000,fail@3000000000-4000000000;node2:fail@0-1000"
	s, err := ParseSchedule(spec)
	if err != nil {
		t.Fatalf("ParseSchedule: %v", err)
	}
	if s.Meter.DropoutP != 0.1 || s.Meter.JitterMax != 50*sim.Millisecond || s.Meter.DeathAt != 5*sim.Second {
		t.Fatalf("meter clause misparsed: %+v", s.Meter)
	}
	if s.Counter.WrapEvery != 5e7 || s.Counter.LostInterruptP != 0.01 {
		t.Fatalf("counter clause misparsed: %+v", s.Counter)
	}
	if len(s.Nodes) != 2 || s.Nodes[0].Node != 0 || s.Nodes[1].Node != 2 || len(s.Nodes[0].Windows) != 2 {
		t.Fatalf("node clauses misparsed: %+v", s.Nodes)
	}
	re, err := ParseSchedule(s.String())
	if err != nil {
		t.Fatalf("reparse of canonical form %q: %v", s.String(), err)
	}
	if !reflect.DeepEqual(s, re) {
		t.Fatalf("round trip diverged:\n  first:  %+v\n  second: %+v", s, re)
	}
	if s.String() != re.String() {
		t.Fatalf("canonical form is not a fixpoint: %q vs %q", s.String(), re.String())
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	s, err := ParseSchedule("  ")
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if s.Meter != nil || s.Counter != nil || s.Socket != nil || len(s.Nodes) != 0 {
		t.Fatalf("empty spec must yield an inert schedule: %+v", s)
	}
	if s.String() != "" {
		t.Fatalf("inert schedule must encode to empty string, got %q", s.String())
	}
}

func TestParseScheduleRejects(t *testing.T) {
	cases := []struct{ name, spec, wantErr string }{
		{"prob>1", "meter:drop=1.5", "outside [0,1]"},
		{"prob<0", "meter:spike=-0.1", "outside [0,1]"},
		{"nan", "meter:drop=NaN", "outside [0,1]"},
		{"sum>1", "meter:drop=0.5,spike=0.4,stuck=0.2", "exceeds 1"},
		{"badkey", "meter:frobs=1", "unknown meter param"},
		{"badtarget", "disk:x=1", "unknown target"},
		{"dupmeter", "meter:drop=0.1;meter:drop=0.2", "duplicate meter"},
		{"dupnode", "node1:fail@0-5;node1:fail@10-20", "duplicate clause for node1"},
		{"inverted", "node0:fail@10-5", "empty or inverted"},
		{"empty-window", "node0:fail@5-5", "empty or inverted"},
		{"overlap", "node0:fail@0-10,fail@5-20", "out of order or overlapping"},
		{"unordered", "node0:fail@20-30,fail@0-10", "out of order or overlapping"},
		{"negwrap", "counter:wrap=-1", "must be finite"},
		{"negtime", "meter:jittermax=-5", "must be ≥ 0"},
		{"noclause", "meter", "not target:params"},
		{"nokv", "socket:yes", "not key=value"},
		{"badnode", "nodeX:fail@0-1", "bad node target"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSchedule(c.spec)
			if err == nil {
				t.Fatalf("ParseSchedule(%q) accepted invalid spec", c.spec)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ParseSchedule(%q) error %q does not mention %q", c.spec, err, c.wantErr)
			}
		})
	}
}

func TestSchedulePlanIsDeepCopy(t *testing.T) {
	s, err := ParseSchedule("meter:drop=0.1;node0:fail@0-10")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p := s.Plan(7)
	if p.Seed != 7 || p.Meter.DropoutP != 0.1 || len(p.Nodes) != 1 {
		t.Fatalf("plan misderived: %+v", p)
	}
	p.Meter.DropoutP = 0.9
	p.Nodes[0].Windows[0].To = 999
	if s.Meter.DropoutP != 0.1 || s.Nodes[0].Windows[0].To != 10 {
		t.Fatalf("Plan must deep-copy the schedule")
	}
}
