package faults

import (
	"fmt"

	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// FaultyMeter decorates a power.Meter with the plan's meter faults. Every
// per-sample decision is a pure function of (plan seed, absolute base
// sample index), so two FaultyMeters over the same base stream deliver
// identical faulted streams regardless of polling cadence — the property
// the SinceReader contract (ReadSince(now, skip) ≡ Read(now)[skip:])
// depends on.
//
// Delivered samples are kept in an append-only log; jittered samples sit in
// a pending queue until their effective arrival passes. Effective arrivals
// are forced monotone (a jittered sample delays everything behind it, like
// a stalled serial link), which keeps the delivered log in arrival order.
type FaultyMeter struct {
	plan *Plan
	base power.Meter
	cfg  MeterFaults

	faultSeed  uint64 // partitioned dropout/spike/stuck draw
	jitterSeed uint64 // jitter gate draw
	lagSeed    uint64 // jitter magnitude draw

	baseSeen  int // base samples consumed (absolute index of the next one)
	lastWatts float64
	haveLast  bool
	lastArr   sim.Time // running max of effective arrivals
	dead      bool

	pending   []power.Sample // faulted, waiting for effective arrival
	delivered []power.Sample // append-only delivered log
}

var _ power.Meter = (*FaultyMeter)(nil)
var _ power.SinceReader = (*FaultyMeter)(nil)

func newFaultyMeter(p *Plan, base power.Meter) *FaultyMeter {
	cfg := *p.Meter
	if cfg.SpikeMag == 0 {
		cfg.SpikeMag = 8
	}
	site := "meter/" + base.Name()
	return &FaultyMeter{
		plan:       p,
		base:       base,
		cfg:        cfg,
		faultSeed:  p.siteSeed(site + "/fault"),
		jitterSeed: p.siteSeed(site + "/jitter"),
		lagSeed:    p.siteSeed(site + "/lag"),
	}
}

// Name implements power.Meter.
func (m *FaultyMeter) Name() string { return m.base.Name() }

// Interval implements power.Meter.
func (m *FaultyMeter) Interval() sim.Time { return m.base.Interval() }

// Delay implements power.Meter.
func (m *FaultyMeter) Delay() sim.Time { return m.base.Delay() }

// Scope implements power.Meter.
func (m *FaultyMeter) Scope() power.Scope { return m.base.Scope() }

// IdleW implements power.Meter.
func (m *FaultyMeter) IdleW() float64 { return m.base.IdleW() }

// Read implements power.Meter.
func (m *FaultyMeter) Read(now sim.Time) []power.Sample {
	return m.ReadSince(now, 0)
}

// ReadSince implements power.SinceReader. skip is clamped to
// [0, len(delivered)] — a cursor that outran the faulted history (samples
// the decorator dropped) yields an empty tail, not a panic.
func (m *FaultyMeter) ReadSince(now sim.Time, skip int) []power.Sample {
	m.advance(now)
	if skip < 0 {
		skip = 0
	}
	if skip > len(m.delivered) {
		skip = len(m.delivered)
	}
	return m.delivered[skip:]
}

// advance consumes newly available base samples, applies faults, and
// releases pending samples whose effective arrival has passed.
func (m *FaultyMeter) advance(now sim.Time) {
	var fresh []power.Sample
	if sr, ok := m.base.(power.SinceReader); ok {
		fresh = sr.ReadSince(now, m.baseSeen)
	} else {
		all := m.base.Read(now)
		if m.baseSeen < len(all) {
			fresh = all[m.baseSeen:]
		}
	}
	for _, s := range fresh {
		m.ingest(s, uint64(m.baseSeen))
		m.baseSeen++
	}
	// Release the pending prefix that has arrived. Pending is in
	// effective-arrival order by construction (monotone arrivals).
	n := 0
	for n < len(m.pending) && m.pending[n].Arrival <= now {
		n++
	}
	if n > 0 {
		m.delivered = append(m.delivered, m.pending[:n]...)
		m.pending = append(m.pending[:0], m.pending[n:]...)
	}
}

// ingest applies the per-sample fault decisions to base sample i.
func (m *FaultyMeter) ingest(s power.Sample, i uint64) {
	if m.dead {
		return
	}
	site := "meter/" + m.base.Name()
	u := unit(m.faultSeed, i)
	switch {
	case u < m.cfg.DropoutP:
		m.plan.emit(Event{T: s.Arrival, Site: site, Kind: "dropout"})
		return
	case u < m.cfg.DropoutP+m.cfg.SpikeP:
		m.plan.emit(Event{T: s.Arrival, Site: site, Kind: "spike",
			Detail: fmt.Sprintf("x%g", m.cfg.SpikeMag)})
		s.Watts *= m.cfg.SpikeMag
	case u < m.cfg.DropoutP+m.cfg.SpikeP+m.cfg.StuckP:
		if m.haveLast {
			m.plan.emit(Event{T: s.Arrival, Site: site, Kind: "stuck"})
			s.Watts = m.lastWatts
		}
	}
	m.lastWatts = s.Watts
	m.haveLast = true

	if m.cfg.JitterP > 0 && m.cfg.JitterMax > 0 && unit(m.jitterSeed, i) < m.cfg.JitterP {
		extra := sim.Time(unit(m.lagSeed, i) * float64(m.cfg.JitterMax))
		if extra > 0 {
			m.plan.emit(Event{T: s.Arrival, Site: site, Kind: "jitter",
				Detail: sim.FormatTime(extra)})
			s.Arrival += extra
		}
	}
	if s.Arrival < m.lastArr {
		s.Arrival = m.lastArr // a delayed sample delays everything behind it
	}
	m.lastArr = s.Arrival

	if m.cfg.DeathAt > 0 && s.Arrival > m.cfg.DeathAt {
		if !m.dead {
			m.dead = true
			m.plan.emit(Event{T: m.cfg.DeathAt, Site: site, Kind: "death"})
		}
		return
	}
	m.pending = append(m.pending, s)
}
