package faults

import (
	"fmt"

	"powercontainers/internal/power"
	"powercontainers/internal/runner"
	"powercontainers/internal/sim"
)

// MeterFaults configures the meter decorator. Dropout, spike, and stuck
// probabilities partition a single per-sample uniform draw, so their sum
// must be ≤ 1 (ParseSchedule validates this; WrapMeter trusts it).
type MeterFaults struct {
	// DropoutP is the probability a sample is silently lost.
	DropoutP float64
	// SpikeP is the probability a sample's reading is multiplied by
	// SpikeMag (an outlier spike).
	SpikeP float64
	// SpikeMag is the spike multiplier (default 8 when zero).
	SpikeMag float64
	// StuckP is the probability a sample repeats the previously
	// delivered reading (a stuck/stale register).
	StuckP float64
	// JitterP is the probability a sample's delivery is delayed by a
	// uniform extra lag in (0, JitterMax].
	JitterP float64
	// JitterMax bounds the extra delivery lag (default 0 disables).
	JitterMax sim.Time
	// DeathAt, when > 0, kills the meter: no sample with effective
	// arrival after DeathAt is ever delivered.
	DeathAt sim.Time
}

// CounterFaults configures counter-read corruption in the kernel.
type CounterFaults struct {
	// WrapEvery, when > 0, is the MSR-style wraparound modulus: raw
	// cumulative counters are reduced mod WrapEvery before the monitor
	// sees them.
	WrapEvery float64
	// LostInterruptP is the probability an overflow interrupt delivery
	// is dropped.
	LostInterruptP float64
}

// SocketFaults configures container-tag loss on socket transfers.
type SocketFaults struct {
	// InjectTagLossP is the probability an externally injected segment
	// (a request entering a listener socket) loses its container tag.
	InjectTagLossP float64
	// SendTagLossP is the probability an in-flight send loses its tag.
	SendTagLossP float64
}

// Window is a half-open sim-time interval [From, To).
type Window struct {
	From sim.Time
	To   sim.Time
}

// NodeFault schedules failure windows for one cluster node.
type NodeFault struct {
	// Node indexes into the dispatcher's node slice.
	Node int
	// Windows are the failure intervals, sorted and non-overlapping.
	Windows []Window
}

// FailureTarget is anything whose availability a node-failure window can
// toggle; cluster.Node implements it.
type FailureTarget interface {
	SetFailed(failed bool)
}

// Plan is a composable fault-injection plan. A nil sub-config disables
// that fault family entirely; an unused Plan injects nothing.
type Plan struct {
	// Seed roots every per-site decision stream.
	Seed    uint64
	Meter   *MeterFaults
	Counter *CounterFaults
	Socket  *SocketFaults
	Nodes   []NodeFault
	// Audit, when non-nil, receives every injected fault.
	Audit AuditSink
}

// emit reports a fault through the nil-guarded audit seam.
func (p *Plan) emit(e Event) {
	if p.Audit != nil {
		p.Audit.OnFault(e)
	}
}

// siteSeed derives the decision-stream seed for one injection site.
func (p *Plan) siteSeed(site string) uint64 {
	return runner.SeedFor(p.Seed, "faults/"+site)
}

// WrapMeter wraps base in the plan's meter-fault decorator. With no meter
// faults configured the base meter is returned untouched, so callers can
// wrap unconditionally.
func (p *Plan) WrapMeter(base power.Meter) power.Meter {
	if p == nil || p.Meter == nil {
		return base
	}
	return newFaultyMeter(p, base)
}

// KernelSurface returns the kernel-side injection surface (counter
// corruption, interrupt loss, socket-tag loss), or nil when the plan
// configures neither fault family. The result implements
// kernel.FaultSurface.
func (p *Plan) KernelSurface() *KernelSurface {
	if p == nil || (p.Counter == nil && p.Socket == nil) {
		return nil
	}
	return newKernelSurface(p)
}

// ArmNodes schedules the plan's node-failure windows on the engine,
// toggling the matching targets. Node indexes outside the target slice are
// ignored, so plans can be reused across cluster sizes.
func (p *Plan) ArmNodes(eng *sim.Engine, targets []FailureTarget) {
	if p == nil {
		return
	}
	for _, nf := range p.Nodes {
		if nf.Node < 0 || nf.Node >= len(targets) {
			continue
		}
		t := targets[nf.Node]
		site := fmt.Sprintf("node%d", nf.Node)
		for _, w := range nf.Windows {
			from, to := w.From, w.To
			eng.At(from, func() {
				t.SetFailed(true)
				p.emit(Event{T: from, Site: site, Kind: "node-fail"})
			})
			eng.At(to, func() {
				t.SetFailed(false)
				p.emit(Event{T: to, Site: site, Kind: "node-recover"})
			})
		}
	}
}
