package faults

import (
	"fmt"
	"strconv"
	"strings"

	"powercontainers/internal/durable"
)

// CrashPlan schedules one process death at an exact filesystem operation,
// optionally followed by stable-storage damage inflicted while the
// process is down. Like Schedule, a plan has a compact text form so the
// crashmatrix experiment and tests can name a crash point in one string:
//
//	crash:op=sync,match=wal-,index=3,keep=5,at=post;corrupt:file=.seg,off=-1,mask=64
//
// The crash clause picks the Index-th (1-based) operation of kind Op
// whose file name contains Match; Keep is the number of unsynced bytes of
// that file that survive the cut (the torn-write tail); at=post lets the
// operation take effect before dying (default is dying in its place).
// Each corrupt clause edits the last (sorted) surviving file whose path
// contains File: either XOR the byte at Off with Mask, or — with
// trunc=<n> instead — cut the file to n bytes. ParseCrashPlan validates,
// String re-encodes canonically, and ParseCrashPlan(p.String())
// round-trips to an equal plan.
type CrashPlan struct {
	Point       CrashPoint
	Corruptions []Corruption
}

// CrashOps are the operation kinds a CrashPoint can target, matching the
// op clock durable.MemFS keeps.
var CrashOps = []string{"create", "write", "sync", "rename", "remove", "truncate"}

// CrashPoint selects the operation to die at. A zero Op means the plan
// never crashes (corruption-only plans, applied via ApplyCorruptions).
type CrashPoint struct {
	Op    string // one of CrashOps
	Match string // substring the file name must contain ("" matches all)
	Index int    // 1-based count of matching operations
	Keep  int    // unsynced bytes of the target file surviving the cut
	After bool   // die after the op takes effect instead of in its place
}

// Corruption is one piece of stable-storage damage applied while the
// process is down. Exactly one of Mask / Trunc modes is active.
type Corruption struct {
	File  string // substring; the last sorted matching path is hit
	Off   int64  // byte offset; negative counts back from the end
	Mask  byte   // XOR mask (bit-flip mode; 0 selects truncate mode)
	Trunc int64  // truncate-to length, used when Mask == 0
}

// Crash is the panic value a CrashFS dies with — the in-process stand-in
// for kill -9. Supervisors recover it by type; any other panic value is
// a real bug and must propagate.
type Crash struct {
	Op   string // operation kind that triggered the death
	Name string // file the operation targeted
	Spec string // canonical plan spec, for the crash report
}

func (c Crash) String() string {
	return fmt.Sprintf("crash at %s(%s) [%s]", c.Op, c.Name, c.Spec)
}

func crashOpKnown(op string) bool {
	for _, k := range CrashOps {
		if op == k {
			return true
		}
	}
	return false
}

// ParseCrashPlan parses and validates a crash-plan spec. An empty spec
// yields an inert plan. Accepted plans satisfy: at most one crash clause
// with a known op and index ≥ 1, keep ≥ 0, and every corrupt clause in
// exactly one of bit-flip (mask 1..255) or truncate (trunc ≥ 0) mode.
func ParseCrashPlan(spec string) (*CrashPlan, error) {
	p := &CrashPlan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	seenCrash := false
	for _, clause := range strings.Split(spec, ";") {
		target, params, ok := strings.Cut(clause, ":")
		if !ok {
			return nil, fmt.Errorf("faults: crash clause %q is not target:params", clause)
		}
		switch target {
		case "crash":
			if seenCrash {
				return nil, fmt.Errorf("faults: duplicate crash clause")
			}
			seenCrash = true
			pt, err := parseCrashClause(params)
			if err != nil {
				return nil, err
			}
			p.Point = pt
		case "corrupt":
			c, err := parseCorruptClause(params)
			if err != nil {
				return nil, err
			}
			p.Corruptions = append(p.Corruptions, c)
		default:
			return nil, fmt.Errorf("faults: unknown crash target %q", target)
		}
	}
	return p, nil
}

func parseCrashClause(params string) (CrashPoint, error) {
	pt := CrashPoint{Index: 1}
	for _, kv := range splitParams(params) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return pt, fmt.Errorf("faults: crash param %q is not key=value", kv)
		}
		switch key {
		case "op":
			if !crashOpKnown(val) {
				return pt, fmt.Errorf("faults: unknown crash op %q", val)
			}
			pt.Op = val
		case "match":
			pt.Match = val
		case "index":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return pt, fmt.Errorf("faults: crash index %q must be ≥ 1", val)
			}
			pt.Index = n
		case "keep":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return pt, fmt.Errorf("faults: crash keep %q must be ≥ 0", val)
			}
			pt.Keep = n
		case "at":
			switch val {
			case "pre":
				pt.After = false
			case "post":
				pt.After = true
			default:
				return pt, fmt.Errorf("faults: crash at=%q must be pre or post", val)
			}
		default:
			return pt, fmt.Errorf("faults: unknown crash param %q", key)
		}
	}
	if pt.Op == "" {
		return pt, fmt.Errorf("faults: crash clause needs op=")
	}
	return pt, nil
}

func parseCorruptClause(params string) (Corruption, error) {
	c := Corruption{}
	sawMask, sawTrunc, sawOff := false, false, false
	for _, kv := range splitParams(params) {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("faults: corrupt param %q is not key=value", kv)
		}
		switch key {
		case "file":
			c.File = val
		case "off":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return c, fmt.Errorf("faults: corrupt off %q: %v", val, err)
			}
			c.Off = n
			sawOff = true
		case "mask":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 || n > 255 {
				return c, fmt.Errorf("faults: corrupt mask %q must be 1..255", val)
			}
			c.Mask = byte(n)
			sawMask = true
		case "trunc":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return c, fmt.Errorf("faults: corrupt trunc %q must be ≥ 0", val)
			}
			c.Trunc = n
			sawTrunc = true
		default:
			return c, fmt.Errorf("faults: unknown corrupt param %q", key)
		}
	}
	if sawMask == sawTrunc {
		return c, fmt.Errorf("faults: corrupt clause needs exactly one of mask= or trunc=")
	}
	if sawTrunc && sawOff {
		return c, fmt.Errorf("faults: corrupt off= only applies to mask mode")
	}
	return c, nil
}

// String re-encodes the plan canonically: crash clause first (zero-valued
// params omitted, index always explicit), then corrupt clauses in input
// order. The canonical form parses back to an equal plan.
func (p *CrashPlan) String() string {
	var clauses []string
	if p.Point.Op != "" {
		ps := []string{"op=" + p.Point.Op}
		if p.Point.Match != "" {
			ps = append(ps, "match="+p.Point.Match)
		}
		ps = append(ps, "index="+strconv.Itoa(p.Point.Index))
		if p.Point.Keep > 0 {
			ps = append(ps, "keep="+strconv.Itoa(p.Point.Keep))
		}
		if p.Point.After {
			ps = append(ps, "at=post")
		}
		clauses = append(clauses, "crash:"+strings.Join(ps, ","))
	}
	for _, c := range p.Corruptions {
		var ps []string
		if c.File != "" {
			ps = append(ps, "file="+c.File)
		}
		if c.Mask != 0 {
			if c.Off != 0 {
				ps = append(ps, "off="+strconv.FormatInt(c.Off, 10))
			}
			ps = append(ps, "mask="+strconv.Itoa(int(c.Mask)))
		} else {
			ps = append(ps, "trunc="+strconv.FormatInt(c.Trunc, 10))
		}
		clauses = append(clauses, "corrupt:"+strings.Join(ps, ","))
	}
	return strings.Join(clauses, ";")
}

// ApplyCorruptions inflicts the plan's corruption clauses on m: for each
// clause, the last sorted path containing File is bit-flipped at Off
// (negative Off counts from the end) or truncated to Trunc bytes. A
// clause matching no file is an error — a corruption test that silently
// corrupts nothing proves nothing.
func (p *CrashPlan) ApplyCorruptions(m *durable.MemFS) error {
	for _, c := range p.Corruptions {
		var hit string
		for _, path := range m.Paths() {
			if strings.Contains(path, c.File) {
				hit = path
			}
		}
		if hit == "" {
			return fmt.Errorf("faults: corrupt clause %q matches no file", c.File)
		}
		if c.Mask != 0 {
			off := c.Off
			if off < 0 {
				off += m.Size(hit)
			}
			if err := m.Corrupt(hit, off, c.Mask); err != nil {
				return err
			}
		} else {
			size := c.Trunc
			if size > m.Size(hit) {
				size = m.Size(hit)
			}
			if err := m.Truncate(hit, size); err != nil {
				return err
			}
		}
	}
	return nil
}

// CrashFS decorates a MemFS with the plan's crash point: when the
// scheduled operation arrives, the filesystem reverts to its post-cut
// state (durable prefixes plus Keep torn bytes of the target file),
// corruption clauses fire, and the goroutine dies with a Crash panic —
// the closest in-process analogue of the kernel killing the daemon
// mid-syscall. A write always lands in the unsynced pool before the cut,
// so Keep alone decides how much of it survives; for the other ops After
// selects dying before or after the effect. Each CrashFS fires at most
// once, so recovery runs on the same filesystem proceed undisturbed.
type CrashFS struct {
	mem  *durable.MemFS
	plan *CrashPlan

	seen  int
	fired bool
}

// NewCrashFS wraps m with plan's crash point. A nil or crash-less plan
// yields a transparent wrapper.
func NewCrashFS(m *durable.MemFS, plan *CrashPlan) *CrashFS {
	return &CrashFS{mem: m, plan: plan}
}

// Fired reports whether the crash point has gone off.
func (c *CrashFS) Fired() bool { return c.fired }

// fire executes the scheduled death for op on name. apply is the op's
// effect; applied reports whether the caller already ran it.
func (c *CrashFS) check(op, name string, applied bool, apply func() error) error {
	if c.plan == nil || c.fired || c.plan.Point.Op != op || !strings.Contains(name, c.plan.Point.Match) {
		if applied {
			return nil
		}
		return apply()
	}
	c.seen++
	if c.seen != c.plan.Point.Index {
		if applied {
			return nil
		}
		return apply()
	}
	c.fired = true
	if c.plan.Point.After && !applied {
		if err := apply(); err != nil {
			return err
		}
	}
	c.mem.Crash(name, c.plan.Point.Keep)
	if err := c.plan.ApplyCorruptions(c.mem); err != nil {
		panic(fmt.Sprintf("faults: crash corruption failed: %v", err))
	}
	panic(Crash{Op: op, Name: name, Spec: c.plan.String()})
}

// crashFile wraps a file handle so writes and syncs hit the op clock.
type crashFile struct {
	c    *CrashFS
	name string
	f    durable.File
}

// Write implements durable.File. The bytes always reach the unsynced
// pool first: a torn write is "the write happened, the cut kept a
// prefix", which Keep expresses directly.
func (w *crashFile) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	if err != nil {
		return n, err
	}
	return n, w.c.check("write", w.name, true, nil)
}

// Sync implements durable.File.
func (w *crashFile) Sync() error { return w.c.check("sync", w.name, false, w.f.Sync) }

// Close implements durable.File.
func (w *crashFile) Close() error { return w.f.Close() }

// Create implements durable.FS.
func (c *CrashFS) Create(name string) (durable.File, error) {
	var f durable.File
	err := c.check("create", name, false, func() error {
		var err error
		f, err = c.mem.Create(name)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &crashFile{c: c, name: name, f: f}, nil
}

// OpenAppend implements durable.FS.
func (c *CrashFS) OpenAppend(name string) (durable.File, error) {
	f, err := c.mem.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &crashFile{c: c, name: name, f: f}, nil
}

// ReadFile implements durable.FS.
func (c *CrashFS) ReadFile(name string) ([]byte, error) { return c.mem.ReadFile(name) }

// Rename implements durable.FS. The point matches against the
// destination name — plans name the file being replaced — and a pre
// crash dies with the temp still under its old name: the mid-rename
// point.
func (c *CrashFS) Rename(oldname, newname string) error {
	return c.check("rename", newname, false, func() error { return c.mem.Rename(oldname, newname) })
}

// Remove implements durable.FS.
func (c *CrashFS) Remove(name string) error {
	return c.check("remove", name, false, func() error { return c.mem.Remove(name) })
}

// Truncate implements durable.FS.
func (c *CrashFS) Truncate(name string, size int64) error {
	return c.check("truncate", name, false, func() error { return c.mem.Truncate(name, size) })
}

// ReadDir implements durable.FS.
func (c *CrashFS) ReadDir(dir string) ([]string, error) { return c.mem.ReadDir(dir) }

// MkdirAll implements durable.FS.
func (c *CrashFS) MkdirAll(dir string) error { return c.mem.MkdirAll(dir) }

// SyncDir implements durable.FS.
func (c *CrashFS) SyncDir(dir string) error { return c.mem.SyncDir(dir) }

var _ durable.FS = (*CrashFS)(nil)
