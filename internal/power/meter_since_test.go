package power

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// TestReadSinceClampsSkip pins the SinceReader cursor contract under
// out-of-range cursors: ReadSince(now, skip) must equal Read(now)[skip:]
// for in-range skips and degrade to an empty tail — never a panic or an
// int64 overflow in the bucket arithmetic — when the cursor outruns the
// delivered history.
func TestReadSinceClampsSkip(t *testing.T) {
	spec := cpu.SandyBridge
	rec := NewRecorder(spec, MustProfile(spec))
	rec.SetChipBusyCores(0, 1, 0)
	rec.AddCoreSegment(0, 3*sim.Second, cpu.Activity{IPC: 1}, 1.0)
	rec.SetChipBusyCores(0, 0, 3*sim.Second)

	meters := []struct {
		name string
		m    interface {
			Meter
			SinceReader
		}
	}{
		{"chip", NewChipMeter(rec, 11)},
		{"wattsup", NewWattsupMeter(rec, 12)},
	}
	for _, tc := range meters {
		t.Run(tc.name, func(t *testing.T) {
			now := 3 * sim.Second
			all := tc.m.Read(now)
			if len(all) == 0 {
				t.Fatalf("no samples delivered by %s", tc.name)
			}
			mid := len(all) / 2
			got := tc.m.ReadSince(now, mid)
			if len(got) != len(all)-mid {
				t.Fatalf("mid skip: got %d samples, want %d", len(got), len(all)-mid)
			}
			for i := range got {
				if got[i] != all[mid+i] {
					t.Fatalf("mid skip sample %d = %+v, want %+v", i, got[i], all[mid+i])
				}
			}
			for _, skip := range []int{len(all), len(all) + 1, len(all) + 1000, math.MaxInt64 / 2, math.MaxInt64} {
				if out := tc.m.ReadSince(now, skip); len(out) != 0 {
					t.Fatalf("skip %d beyond history returned %d samples", skip, len(out))
				}
			}
			if out := tc.m.ReadSince(now, -5); len(out) != len(all) {
				t.Fatalf("negative skip: got %d samples, want %d", len(out), len(all))
			}
			// A cursor beyond history at an early time must not panic
			// either when now precedes the meter delay entirely.
			if out := tc.m.ReadSince(tc.m.Delay()/2, math.MaxInt64); len(out) != 0 {
				t.Fatalf("pre-delivery oversized skip returned %d samples", len(out))
			}
		})
	}
}

// plainMeter hides the SinceReader implementation so ReadFresh exercises
// its full-read fallback path.
type plainMeter struct{ Meter }

// TestReadFreshCursor pins the shared cursor helper: fresh tails across
// consecutive pulls must concatenate to Read(now), for SinceReader meters
// and for the full-read fallback alike.
func TestReadFreshCursor(t *testing.T) {
	spec := cpu.SandyBridge
	rec := NewRecorder(spec, MustProfile(spec))
	rec.SetChipBusyCores(0, 1, 0)
	rec.AddCoreSegment(0, 3*sim.Second, cpu.Activity{IPC: 1}, 1.0)
	rec.SetChipBusyCores(0, 0, 3*sim.Second)

	for _, tc := range []struct {
		name string
		m    Meter
	}{
		{"since-reader", NewChipMeter(rec, 11)},
		{"fallback", plainMeter{NewChipMeter(rec, 11)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var got []Sample
			seen := 0
			for _, now := range []sim.Time{sim.Second, sim.Second, 2 * sim.Second, 3 * sim.Second} {
				var fresh []Sample
				fresh, seen = ReadFresh(tc.m, now, seen)
				got = append(got, fresh...)
				if seen != len(got) {
					t.Fatalf("cursor %d after %d consumed samples", seen, len(got))
				}
			}
			want := tc.m.Read(3 * sim.Second)
			if len(got) != len(want) {
				t.Fatalf("consumed %d samples across pulls, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("sample %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}
