// Package power holds the simulated machines' hidden ground truth: the
// actual power each machine draws as a function of its activity, plus the
// two measurement instruments the paper uses (an on-chip package meter on
// SandyBridge and a Wattsup wall meter on every machine).
//
// The facility under test never reads ground truth directly — it sees only
// hardware counters and delayed meter samples, exactly like the paper's
// kernel facility. Ground truth deliberately contains power the linear
// event model cannot express (a pipeline×memory synergy term and per-chip
// maintenance power), because that mismatch between calibration and
// production behaviour is what the paper's recalibration technique exists
// to fix.
package power

import (
	"fmt"

	"powercontainers/internal/cpu"
)

// TrueProfile is the hidden ground-truth power function of one machine.
// All "W" fields are watts. Per-event fields are watts per unit of
// per-cycle event rate on one fully-busy core (e.g. InsW is the wattage a
// core adds when retiring one instruction per non-halt cycle).
type TrueProfile struct {
	// MachineIdleW is whole-machine idle power (PSU, fans, DRAM refresh,
	// spun disks); the Wattsup baseline.
	MachineIdleW float64
	// PkgIdleW is processor-package idle power per chip; the on-chip
	// meter baseline.
	PkgIdleW float64
	// ChipMaintW is the shared maintenance power one chip draws whenever
	// at least one of its cores is running (clock distribution, voltage
	// regulators, uncore). This is the component Eq. 2's chip-share term
	// models and Eq. 1 misses (Figure 1).
	ChipMaintW float64
	// CoreW is the busy power of one core at full duty, independent of
	// instruction mix.
	CoreW float64
	// InsW, FloatW, CacheW, MemW are event-rate powers (see above).
	InsW, FloatW, CacheW, MemW float64
	// SynW is a nonlinear pipeline×memory interaction (watts per unit of
	// IPC·MemPC product): simultaneously-busy pipelines and memory
	// controllers draw extra power that single-dimension calibration
	// microbenchmarks never exhibit. Power-virus-style workloads
	// (Stress, the GAE virus) sit exactly in this regime.
	SynW float64
	// DiskW and NetW are device powers at 100% device utilization.
	DiskW, NetW float64
	// MeterNoiseSD is the per-sample gaussian noise of this machine's
	// meters, in watts.
	MeterNoiseSD float64
}

// CorePowerW returns the actual power one core draws while running a task
// with the given on-machine activity at the given duty fraction. Duty
// modulation halts the core during non-duty periods, so all activity-driven
// power scales approximately linearly with the duty fraction, matching the
// paper's observation in §3.4.
func (p TrueProfile) CorePowerW(act cpu.Activity, duty float64) float64 {
	if duty < 0 || duty > 1 {
		panic(fmt.Sprintf("power: duty fraction %g out of range", duty)) //pclint:allow hotalloc panic-path formatting on an invariant violation
	}
	linear := p.CoreW +
		p.InsW*act.IPC +
		p.FloatW*act.FLOPC +
		p.CacheW*act.LLCPC +
		p.MemW*act.MemPC
	synergy := p.SynW * act.IPC * act.MemPC
	return duty * (linear + synergy)
}

// Profiles returns the hidden ground truth for a machine spec. Values are
// chosen so that whole-machine numbers land in the ranges the paper reports
// (§1, §4.1, Fig. 5) and so that the cross-machine energy-affinity spread of
// Fig. 13 emerges: SandyBridge is far more efficient on compute-bound work,
// while memory-bound work (Stress) narrows the gap because SandyBridge's
// aggressive uncore/memory subsystem draws high power when saturated and
// Woodcrest's stalled cores draw comparatively little extra.
func Profiles(spec cpu.MachineSpec) (TrueProfile, error) {
	switch spec.Name {
	case "SandyBridge":
		// Efficient compute (low per-instruction energy) but a hungry
		// uncore/memory subsystem when saturated.
		return TrueProfile{
			MachineIdleW: 26.1,
			PkgIdleW:     2.3,
			ChipMaintW:   5.4,
			CoreW:        6.5,
			InsW:         1.4,
			FloatW:       1.6,
			CacheW:       130,
			MemW:         700,
			SynW:         1600,
			DiskW:        1.7,
			NetW:         5.8,
			MeterNoiseSD: 0.25,
		}, nil
	case "Westmere":
		// Two low-power six-core chips: modest per-core power, but the
		// largest synergy term — the paper measured its worst model
		// errors (41%) on this machine.
		return TrueProfile{
			MachineIdleW: 94.0,
			PkgIdleW:     5.5,
			ChipMaintW:   7.0,
			CoreW:        2.2,
			InsW:         2.0,
			FloatW:       1.2,
			CacheW:       120,
			MemW:         520,
			SynW:         2600,
			DiskW:        1.7,
			NetW:         5.8,
			MeterNoiseSD: 0.6,
		}, nil
	case "Woodcrest":
		// 2006-era 65 nm parts: very expensive per-instruction
		// switching energy but aggressive clock gating while stalled,
		// so memory-bound work narrows the efficiency gap to newer
		// machines (the Figure 13 spread).
		return TrueProfile{
			MachineIdleW: 155.0,
			PkgIdleW:     14.0,
			ChipMaintW:   8.0,
			CoreW:        3.0,
			InsW:         28.0,
			FloatW:       3.0,
			CacheW:       200,
			MemW:         420,
			SynW:         4000,
			DiskW:        2.4,
			NetW:         6.2,
			MeterNoiseSD: 0.8,
		}, nil
	}
	return TrueProfile{}, fmt.Errorf("power: no ground-truth profile for machine %q", spec.Name)
}

// MustProfile is Profiles for the three built-in machines; it panics on an
// unknown spec and exists for experiment setup code.
func MustProfile(spec cpu.MachineSpec) TrueProfile {
	p, err := Profiles(spec)
	if err != nil {
		panic(err)
	}
	return p
}
