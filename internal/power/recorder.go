package power

import (
	"fmt"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
	"powercontainers/internal/stats"
)

// RecorderInterval is the ground-truth energy bucketing granularity. The
// SandyBridge on-chip meter accumulates energy once per millisecond, so the
// recorder matches that resolution.
const RecorderInterval = sim.Millisecond

// AuditSink observes every ground-truth energy record for invariant
// checking (internal/audit): recorded energy must be non-negative and
// time-ordered, and the streamed total must equal the series content. A
// nil sink — the default — costs only a nil check.
type AuditSink interface {
	// OnRecord fires for each energy record: kind is one of "core",
	// "observer", "maint", "device"; [t0, t1] the interval (t0 == t1 for
	// point records) and joules the energy added.
	OnRecord(kind string, t0, t1 sim.Time, joules float64)
}

// Recorder integrates a machine's actual energy use on a 1 ms grid. The
// kernel reports every execution segment and device transfer; the recorder
// additionally integrates per-chip maintenance power from chip busy/idle
// transitions. Meters read the recorder; the facility never does.
type Recorder struct {
	spec    cpu.MachineSpec
	profile TrueProfile

	// Audit observes every record; nil disables.
	Audit AuditSink

	pkgActive *stats.Series // joules per bucket: cores + chip maintenance
	device    *stats.Series // joules per bucket: disk + net

	chipBusy []int // currently busy core count per chip
	// activeChips counts chips with at least one busy core, maintained
	// incrementally at busy transitions so FlushUntil — called on every
	// context switch — does not rescan chipBusy.
	activeChips int
	maintUpTo   sim.Time // maintenance integrated up to this instant
}

// NewRecorder returns a recorder for the given machine.
func NewRecorder(spec cpu.MachineSpec, profile TrueProfile) *Recorder {
	return &Recorder{
		spec:      spec,
		profile:   profile,
		pkgActive: stats.NewSeries(RecorderInterval),
		device:    stats.NewSeries(RecorderInterval),
		chipBusy:  make([]int, spec.Chips),
	}
}

// Spec returns the machine spec the recorder belongs to.
func (r *Recorder) Spec() cpu.MachineSpec { return r.spec }

// Profile returns the hidden ground-truth profile (experiments use it to
// validate; the facility must not).
func (r *Recorder) Profile() TrueProfile { return r.profile }

// AddCoreSegment integrates the actual energy of one core running a task
// over [t0, t1) with the given on-machine activity and duty fraction.
//
//pclint:hotpath
func (r *Recorder) AddCoreSegment(t0, t1 sim.Time, act cpu.Activity, duty float64) {
	if t1 <= t0 {
		return
	}
	watts := r.profile.CorePowerW(act, duty)
	joules := watts * float64(t1-t0) / float64(sim.Second)
	if r.Audit != nil {
		r.Audit.OnRecord("core", t0, t1, joules)
	}
	r.pkgActive.AddSpread(t0, t1, joules) //pclint:allow hotalloc 1ms-bucket series growth is bounded by elapsed sim time, not event count
}

// AddObserverEnergy charges the energy of facility maintenance operations
// themselves (the observer effect) at time t. The paper estimates ~10 µJ
// per maintenance operation on SandyBridge (§3.5).
//
//pclint:hotpath
func (r *Recorder) AddObserverEnergy(t sim.Time, joules float64) {
	if joules <= 0 {
		return
	}
	if r.Audit != nil {
		r.Audit.OnRecord("observer", t, t, joules)
	}
	r.pkgActive.Add(t, joules) //pclint:allow hotalloc 1ms-bucket series growth is bounded by elapsed sim time, not event count
}

// SetChipBusyCores integrates maintenance power up to now and records the
// new busy-core count of a chip. Maintenance power is drawn at the full
// ChipMaintW whenever at least one core of the chip is running — the
// non-proportional component Figure 1 exposes.
//
//pclint:hotpath
func (r *Recorder) SetChipBusyCores(chip int, busy int, now sim.Time) {
	if chip < 0 || chip >= len(r.chipBusy) {
		panic(fmt.Sprintf("power: chip %d out of range", chip)) //pclint:allow hotalloc panic-path formatting on an invariant violation
	}
	if busy < 0 || busy > r.spec.CoresPerChip {
		panic(fmt.Sprintf("power: chip %d busy count %d out of range", chip, busy)) //pclint:allow hotalloc panic-path formatting on an invariant violation
	}
	// Flush with the old busy set first: the transition takes effect at
	// now, so energy up to now is drawn at the previous active count.
	r.FlushUntil(now)
	if (busy > 0) != (r.chipBusy[chip] > 0) {
		if busy > 0 {
			r.activeChips++
		} else {
			r.activeChips--
		}
	}
	r.chipBusy[chip] = busy
}

// FlushUntil integrates chip maintenance energy up to now. The kernel calls
// it before any read of the series and at every busy-transition; the
// incrementally maintained active-chip count makes it O(1) outside the
// series write itself.
//
//pclint:hotpath
func (r *Recorder) FlushUntil(now sim.Time) {
	if now <= r.maintUpTo {
		return
	}
	if r.activeChips > 0 {
		watts := float64(r.activeChips) * r.profile.ChipMaintW
		joules := watts * float64(now-r.maintUpTo) / float64(sim.Second)
		if r.Audit != nil {
			r.Audit.OnRecord("maint", r.maintUpTo, now, joules)
		}
		r.pkgActive.AddSpread(r.maintUpTo, now, joules) //pclint:allow hotalloc 1ms-bucket series growth is bounded by elapsed sim time, not event count
	}
	r.maintUpTo = now
}

// AddDeviceSegment integrates disk/net device energy over [t0, t1) at the
// given utilization of the named device power budget.
func (r *Recorder) AddDeviceSegment(t0, t1 sim.Time, watts float64) {
	if t1 <= t0 || watts <= 0 {
		return
	}
	joules := watts * float64(t1-t0) / float64(sim.Second)
	if r.Audit != nil {
		r.Audit.OnRecord("device", t0, t1, joules)
	}
	r.device.AddSpread(t0, t1, joules)
}

// PkgActiveSeries returns the package active-energy series (joules per 1 ms
// bucket). Callers must FlushUntil first for up-to-date maintenance energy.
func (r *Recorder) PkgActiveSeries() *stats.Series { return r.pkgActive }

// DeviceSeries returns the device energy series (joules per 1 ms bucket).
func (r *Recorder) DeviceSeries() *stats.Series { return r.device }

// MachineActivePowerW returns the mean whole-machine active power (package
// active + devices, excluding idle baselines) over [t0, t1).
func (r *Recorder) MachineActivePowerW(t0, t1 sim.Time) float64 {
	r.FlushUntil(t1)
	lo := int(t0 / RecorderInterval)
	hi := int(t1 / RecorderInterval)
	if hi <= lo {
		return 0
	}
	var joules float64
	for b := lo; b < hi; b++ {
		joules += r.pkgActive.Bucket(b) + r.device.Bucket(b)
	}
	return joules / (float64(hi-lo) * float64(RecorderInterval) / float64(sim.Second))
}

// PkgActivePowerW returns mean package active power over [t0, t1).
func (r *Recorder) PkgActivePowerW(t0, t1 sim.Time) float64 {
	r.FlushUntil(t1)
	lo := int(t0 / RecorderInterval)
	hi := int(t1 / RecorderInterval)
	if hi <= lo {
		return 0
	}
	var joules float64
	for b := lo; b < hi; b++ {
		joules += r.pkgActive.Bucket(b)
	}
	return joules / (float64(hi-lo) * float64(RecorderInterval) / float64(sim.Second))
}
