package power

import (
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

func TestProfilesExistForAllMachines(t *testing.T) {
	for _, spec := range cpu.Specs() {
		p, err := Profiles(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if p.CoreW <= 0 || p.ChipMaintW <= 0 || p.MachineIdleW <= 0 {
			t.Errorf("%s: degenerate profile %+v", spec.Name, p)
		}
	}
	if _, err := Profiles(cpu.MachineSpec{Name: "nope"}); err == nil {
		t.Fatal("unknown machine did not error")
	}
}

func TestCorePowerScalesWithDuty(t *testing.T) {
	p := MustProfile(cpu.SandyBridge)
	act := cpu.Activity{IPC: 1.5, MemPC: 0.004}
	full := p.CorePowerW(act, 1.0)
	half := p.CorePowerW(act, 0.5)
	if math.Abs(half-full/2) > 1e-9 {
		t.Fatalf("duty scaling not linear: full=%g half=%g", full, half)
	}
}

func TestCorePowerSynergy(t *testing.T) {
	p := MustProfile(cpu.Westmere)
	linearOnly := p
	linearOnly.SynW = 0
	act := cpu.Activity{IPC: 1.4, MemPC: 0.006}
	if p.CorePowerW(act, 1) <= linearOnly.CorePowerW(act, 1) {
		t.Fatal("synergy term should add power for pipeline×memory workloads")
	}
	// No synergy without simultaneous pipeline and memory activity.
	cpuOnly := cpu.Activity{IPC: 1.4}
	if math.Abs(p.CorePowerW(cpuOnly, 1)-linearOnly.CorePowerW(cpuOnly, 1)) > 1e-12 {
		t.Fatal("synergy leaked into a memory-free workload")
	}
}

func TestSandyBridgeIdleProportions(t *testing.T) {
	// §1: package idle is ≈5% of package power under load; machine idle
	// is ≈32% of full machine power.
	p := MustProfile(cpu.SandyBridge)
	act := cpu.Activity{IPC: 1.2, LLCPC: 0.008, MemPC: 0.002}
	pkgBusy := 4*p.CorePowerW(act, 1) + p.ChipMaintW + p.PkgIdleW
	frac := p.PkgIdleW / pkgBusy
	if frac > 0.10 {
		t.Fatalf("package idle fraction %.2f, want ≈0.05", frac)
	}
	machineFull := p.MachineIdleW + pkgBusy - p.PkgIdleW
	mfrac := p.MachineIdleW / machineFull
	if mfrac < 0.2 || mfrac > 0.45 {
		t.Fatalf("machine idle fraction %.2f, want ≈0.32", mfrac)
	}
}

func TestRecorderCoreSegment(t *testing.T) {
	spec := cpu.SandyBridge
	p := MustProfile(spec)
	r := NewRecorder(spec, p)
	act := cpu.Activity{IPC: 1}
	r.AddCoreSegment(0, 10*sim.Millisecond, act, 1.0)
	want := p.CorePowerW(act, 1.0)
	got := r.PkgActivePowerW(0, 10*sim.Millisecond)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("recorded power = %g, want %g", got, want)
	}
}

func TestRecorderMaintenanceIntegration(t *testing.T) {
	spec := cpu.Woodcrest // two chips
	p := MustProfile(spec)
	r := NewRecorder(spec, p)
	// Chip 0 busy for first 10ms, both chips busy next 10ms.
	r.SetChipBusyCores(0, 1, 0)
	r.SetChipBusyCores(1, 1, 10*sim.Millisecond)
	r.SetChipBusyCores(0, 0, 20*sim.Millisecond)
	r.SetChipBusyCores(1, 0, 20*sim.Millisecond)
	r.FlushUntil(30 * sim.Millisecond)

	first := r.PkgActivePowerW(0, 10*sim.Millisecond)
	second := r.PkgActivePowerW(10*sim.Millisecond, 20*sim.Millisecond)
	third := r.PkgActivePowerW(20*sim.Millisecond, 30*sim.Millisecond)
	if math.Abs(first-p.ChipMaintW) > 1e-9 {
		t.Fatalf("one-chip maintenance = %g, want %g", first, p.ChipMaintW)
	}
	if math.Abs(second-2*p.ChipMaintW) > 1e-9 {
		t.Fatalf("two-chip maintenance = %g, want %g", second, 2*p.ChipMaintW)
	}
	if third != 0 {
		t.Fatalf("idle maintenance = %g, want 0", third)
	}
}

func TestRecorderMaintenanceNotProportionalToCores(t *testing.T) {
	// The Figure 1 effect: going from 1 to 2 busy cores on the same chip
	// must NOT double maintenance power.
	spec := cpu.SandyBridge
	p := MustProfile(spec)
	r := NewRecorder(spec, p)
	r.SetChipBusyCores(0, 1, 0)
	r.SetChipBusyCores(0, 2, 10*sim.Millisecond)
	r.FlushUntil(20 * sim.Millisecond)
	one := r.PkgActivePowerW(0, 10*sim.Millisecond)
	two := r.PkgActivePowerW(10*sim.Millisecond, 20*sim.Millisecond)
	if math.Abs(one-two) > 1e-9 {
		t.Fatalf("maintenance changed with core count: %g vs %g", one, two)
	}
}

func TestRecorderDeviceEnergy(t *testing.T) {
	spec := cpu.SandyBridge
	r := NewRecorder(spec, MustProfile(spec))
	r.AddDeviceSegment(0, sim.Second, 1.7)
	if got := r.MachineActivePowerW(0, sim.Second); math.Abs(got-1.7) > 1e-9 {
		t.Fatalf("device power = %g, want 1.7", got)
	}
	if got := r.PkgActivePowerW(0, sim.Second); got != 0 {
		t.Fatalf("device energy leaked into package: %g", got)
	}
}

func TestChipMeterReportsWithDelay(t *testing.T) {
	spec := cpu.SandyBridge
	p := MustProfile(spec)
	p.MeterNoiseSD = 0
	r := NewRecorder(spec, p)
	act := cpu.Activity{IPC: 1}
	r.AddCoreSegment(0, 5*sim.Millisecond, act, 1.0)
	m := NewChipMeter(r, 1)

	// At t=3ms only buckets ending ≤ 2ms are delivered (1ms delay).
	got := m.Read(3 * sim.Millisecond)
	if len(got) != 2 {
		t.Fatalf("delivered %d samples at 3ms, want 2", len(got))
	}
	want := p.CorePowerW(act, 1.0) + m.IdleW()
	if math.Abs(got[0].Watts-want) > 1e-9 {
		t.Fatalf("meter sample = %g, want %g", got[0].Watts, want)
	}
	if m.Delay() != sim.Millisecond || m.Scope() != ScopePackage {
		t.Fatal("chip meter metadata wrong")
	}
}

func TestChipMeterNoiseDeterministic(t *testing.T) {
	spec := cpu.SandyBridge
	r := NewRecorder(spec, MustProfile(spec))
	r.AddCoreSegment(0, 5*sim.Millisecond, cpu.Activity{IPC: 1}, 1.0)
	m := NewChipMeter(r, 42)
	a := m.Read(10 * sim.Millisecond)
	b := m.Read(10 * sim.Millisecond)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("repeated reads returned different samples")
		}
	}
}

func TestWattsupMeterWindowAndDelay(t *testing.T) {
	spec := cpu.SandyBridge
	p := MustProfile(spec)
	p.MeterNoiseSD = 0
	r := NewRecorder(spec, p)
	act := cpu.Activity{IPC: 1}
	r.AddCoreSegment(0, 3*sim.Second, act, 1.0)
	m := NewWattsupMeter(r, 1)

	if got := m.Read(2 * sim.Second); len(got) != 0 {
		t.Fatalf("wattsup delivered %d samples before delay elapsed", len(got))
	}
	got := m.Read(2*sim.Second + 300*sim.Millisecond)
	if len(got) != 1 {
		t.Fatalf("wattsup delivered %d samples, want 1", len(got))
	}
	want := p.CorePowerW(act, 1.0) + p.MachineIdleW
	if math.Abs(got[0].Watts-want) > 1e-9 {
		t.Fatalf("wattsup sample = %g, want %g", got[0].Watts, want)
	}
	if m.Scope() != ScopeMachine || m.Interval() != sim.Second {
		t.Fatal("wattsup metadata wrong")
	}
}

func TestMeterIdleBaselines(t *testing.T) {
	for _, spec := range cpu.Specs() {
		p := MustProfile(spec)
		r := NewRecorder(spec, p)
		cm := NewChipMeter(r, 0)
		wm := NewWattsupMeter(r, 0)
		if want := p.PkgIdleW * float64(spec.Chips); cm.IdleW() != want {
			t.Errorf("%s chip idle = %g, want %g", spec.Name, cm.IdleW(), want)
		}
		if wm.IdleW() != p.MachineIdleW {
			t.Errorf("%s machine idle = %g", spec.Name, wm.IdleW())
		}
	}
}
