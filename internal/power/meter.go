package power

import (
	"math"

	"powercontainers/internal/sim"
)

// Meter drift: real instruments wander slowly with temperature and supply
// conditions. Readings are scaled by 1 + amp·sin(2πt/period + φ), with the
// phase derived from the meter seed. Drift is what keeps online
// recalibration from ever driving its residual to exactly zero.
const (
	chipDriftAmp       = 0.004
	chipDriftPeriod    = 7 * sim.Second
	wattsupDriftAmp    = 0.015
	wattsupDriftPeriod = 13 * sim.Second
)

// driftFactor returns the multiplicative drift at time t.
func driftFactor(seed uint64, amp float64, period, t sim.Time) float64 {
	phase := 2 * math.Pi * float64(seed%997) / 997
	//pclint:allow floatsafe callers pass the positive drift-period constants above
	return 1 + amp*math.Sin(2*math.Pi*float64(t)/float64(period)+phase)
}

// Scope identifies what a meter measures.
type Scope int

const (
	// ScopePackage covers the processor socket package: cores, uncore,
	// memory controller and interconnect (the SandyBridge on-chip meter).
	ScopePackage Scope = iota
	// ScopeMachine covers the whole machine at the wall (Wattsup).
	ScopeMachine
)

func (s Scope) String() string {
	if s == ScopePackage {
		return "package"
	}
	return "machine"
}

// ReadFresh returns the meter samples a cursor-tracking consumer has not
// yet seen — Read(now)[seen:] — along with the advanced cursor. Meters
// implementing SinceReader skip rematerializing the already-consumed
// prefix, so a long-running consumer's per-pull cost is proportional to
// the fresh tail, not the full history. The recalibrator and the
// streaming engine both sit on this helper.
func ReadFresh(m Meter, now sim.Time, seen int) ([]Sample, int) {
	if sr, ok := m.(SinceReader); ok {
		fresh := sr.ReadSince(now, seen)
		return fresh, seen + len(fresh)
	}
	all := m.Read(now)
	if len(all) <= seen {
		return nil, seen
	}
	return all[seen:], len(all)
}

// Sample is one delivered meter reading.
type Sample struct {
	// Start is the true beginning of the measurement window. It is
	// ground truth for tests and figure rendering only: online
	// consumers (alignment, recalibration) must use Arrival and the
	// delay they estimated, exactly as the paper's facility must.
	Start sim.Time
	// Arrival is when the reading became available (window end plus the
	// meter's delivery delay).
	Arrival sim.Time
	// Watts is the mean power over the window.
	Watts float64
}

// Meter is a power measurement instrument. Readings arrive with a delivery
// delay (meter reporting plus data I/O latency, §3.2), which is exactly the
// lag the alignment machinery has to discover via cross-correlation.
type Meter interface {
	// Name identifies the instrument.
	Name() string
	// Interval is the measurement window width.
	Interval() sim.Time
	// Delay is the true delivery lag. Consumers must not use it for
	// alignment — it exists so tests can verify the estimated delay.
	Delay() sim.Time
	// Scope reports what the meter covers.
	Scope() Scope
	// IdleW is the constant idle power within the meter's scope.
	// Operators measure it once on a quiescent machine; experiments use
	// it to convert full readings to active power.
	IdleW() float64
	// Read returns all samples whose delivery time (window end + delay)
	// is ≤ now, in window order.
	Read(now sim.Time) []Sample
}

// SinceReader is an optional Meter capability: ReadSince(now, skip) returns
// Read(now)[skip:] without materializing the skipped prefix. Consumers that
// poll repeatedly (online recalibration) would otherwise pay O(t) per poll
// re-deriving samples they have already consumed — O(t²) over a run. Both
// simulated meters derive each sample independently per bucket (noise and
// drift are pure functions of the bucket index), so starting mid-stream
// yields bit-identical samples to a full Read.
type SinceReader interface {
	ReadSince(now sim.Time, skip int) []Sample
}

// bucketNoise derives a deterministic gaussian noise value for a bucket
// index so that repeated Reads of the same window return identical samples.
func bucketNoise(seed uint64, bucket int, sd float64) float64 {
	if sd <= 0 {
		return 0
	}
	x := seed ^ (uint64(bucket)+1)*0x9e3779b97f4a7c15
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	a := mix(x)
	b := mix(x ^ 0xd1b54a32d192ed03)
	u1 := (float64(a>>11) + 0.5) / (1 << 53)
	u2 := float64(b>>11) / (1 << 53)
	return sd * math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ChipMeter models the SandyBridge on-chip package power meter: it
// accumulates package energy once per millisecond and delivers readings
// with roughly a millisecond of lag (§3.2 measured ≈1 ms).
type ChipMeter struct {
	rec   *Recorder
	delay sim.Time
	seed  uint64
}

// NewChipMeter returns the on-chip meter for the recorder's machine.
func NewChipMeter(rec *Recorder, seed uint64) *ChipMeter {
	return &ChipMeter{rec: rec, delay: 1 * sim.Millisecond, seed: seed}
}

// Name implements Meter.
func (m *ChipMeter) Name() string { return "chip-meter" }

// Interval implements Meter.
func (m *ChipMeter) Interval() sim.Time { return RecorderInterval }

// Delay implements Meter.
func (m *ChipMeter) Delay() sim.Time { return m.delay }

// Scope implements Meter.
func (m *ChipMeter) Scope() Scope { return ScopePackage }

// IdleW implements Meter: total package idle across all chips.
func (m *ChipMeter) IdleW() float64 {
	return m.rec.Profile().PkgIdleW * float64(m.rec.Spec().Chips)
}

// Read implements Meter.
func (m *ChipMeter) Read(now sim.Time) []Sample {
	return m.ReadSince(now, 0)
}

// ReadSince implements SinceReader: each bucket's sample is a pure function
// of the bucket index, so starting the scan at skip returns exactly
// Read(now)[skip:].
func (m *ChipMeter) ReadSince(now sim.Time, skip int) []Sample {
	m.rec.FlushUntil(now)
	series := m.rec.PkgActiveSeries()
	// Clamp skip to [0, delivered]: bucket b is delivered iff
	// (b+1)·interval + delay ≤ now, so `avail` below is exactly
	// len(Read(now)). An oversized cursor (one that outran a truncated or
	// faulted history) must yield an empty tail — and must be clamped
	// before the scan loop, where sim.Time(b)*RecorderInterval would
	// overflow for huge skips.
	if skip < 0 {
		skip = 0
	}
	if avail := int((now - m.delay) / RecorderInterval); skip > avail {
		if avail < 0 {
			avail = 0
		}
		skip = avail
	}
	var out []Sample
	if n := int((now-m.delay)/RecorderInterval) - skip; n > 0 {
		out = make([]Sample, 0, n) // capacity hint only; the loop is authoritative
	}
	for b := skip; ; b++ {
		start := sim.Time(b) * RecorderInterval
		end := start + RecorderInterval
		if end+m.delay > now {
			break
		}
		watts := series.RatePerSecond(b) + m.IdleW()
		if m.rec.Profile().MeterNoiseSD > 0 { // σ=0 selects an ideal meter
			watts *= driftFactor(m.seed, chipDriftAmp, chipDriftPeriod, start)
			watts += bucketNoise(m.seed, b, m.rec.Profile().MeterNoiseSD)
		}
		out = append(out, Sample{Start: start, Arrival: end + m.delay, Watts: watts})
	}
	return out
}

// WattsupMeter models the external wall meter: whole-machine power averaged
// over one-second windows, delivered ≈1.2 s late through its USB link
// (§3.2 measured ≈1.2 s for the Wattsup).
type WattsupMeter struct {
	rec   *Recorder
	delay sim.Time
	seed  uint64
}

// NewWattsupMeter returns the wall meter for the recorder's machine.
func NewWattsupMeter(rec *Recorder, seed uint64) *WattsupMeter {
	return &WattsupMeter{rec: rec, delay: 1200 * sim.Millisecond, seed: seed}
}

// Name implements Meter.
func (m *WattsupMeter) Name() string { return "wattsup" }

// Interval implements Meter.
func (m *WattsupMeter) Interval() sim.Time { return sim.Second }

// Delay implements Meter.
func (m *WattsupMeter) Delay() sim.Time { return m.delay }

// Scope implements Meter.
func (m *WattsupMeter) Scope() Scope { return ScopeMachine }

// IdleW implements Meter.
func (m *WattsupMeter) IdleW() float64 { return m.rec.Profile().MachineIdleW }

// Read implements Meter.
func (m *WattsupMeter) Read(now sim.Time) []Sample {
	return m.ReadSince(now, 0)
}

// ReadSince implements SinceReader; see ChipMeter.ReadSince.
func (m *WattsupMeter) ReadSince(now sim.Time, skip int) []Sample {
	m.rec.FlushUntil(now)
	pkg := m.rec.PkgActiveSeries()
	dev := m.rec.DeviceSeries()
	perWindow := int(sim.Second / RecorderInterval)
	// Same clamp as ChipMeter.ReadSince: window w is delivered iff
	// (w+1)·second + delay ≤ now, so skip is bounded by the delivered
	// count before the scan loop can overflow on sim.Time(w)*sim.Second.
	if skip < 0 {
		skip = 0
	}
	if avail := int((now - m.delay) / sim.Second); skip > avail {
		if avail < 0 {
			avail = 0
		}
		skip = avail
	}
	var out []Sample
	if n := int((now-m.delay)/sim.Second) - skip; n > 0 {
		out = make([]Sample, 0, n) // capacity hint only; the loop is authoritative
	}
	for w := skip; ; w++ {
		start := sim.Time(w) * sim.Second
		end := start + sim.Second
		if end+m.delay > now {
			break
		}
		var joules float64
		for b := w * perWindow; b < (w+1)*perWindow; b++ {
			joules += pkg.Bucket(b) + dev.Bucket(b)
		}
		// The window is exactly one second, so joules == mean watts.
		watts := joules + m.IdleW()
		if m.rec.Profile().MeterNoiseSD > 0 { // σ=0 selects an ideal meter
			watts *= driftFactor(m.seed, wattsupDriftAmp, wattsupDriftPeriod, start)
			watts += bucketNoise(m.seed, w, m.rec.Profile().MeterNoiseSD*2)
		}
		out = append(out, Sample{Start: start, Arrival: end + m.delay, Watts: watts})
	}
	return out
}
