// Sharded deterministic execution: a cluster run decomposes into a plan
// phase (the dispatcher's decision process alone), one self-contained
// simulation per node, and a seeded merge — so multi-machine experiments
// simulate in parallel yet produce byte-identical results at any worker
// count.
//
// The decomposition is sound because, without health checking, no
// dispatcher decision depends on node *execution*: placement reads only
// the dispatch history (the offered-load estimate is bumped at dispatch
// time from static per-app service demand), the static split plan, and
// the dispatcher's own random stream. Health-enabled dispatch is excluded
// — failure probes and redispatch couple decisions to node timelines —
// and EnableHealth rejects plan mode explicitly.
//
// Each node's simulation is interleaving-invariant: machines on a shared
// engine never schedule events for one another, so a machine's events
// keep their relative FIFO order whether or not another machine's events
// interleave between them. Running every node on one engine (the
// reference mode) and running each on its own engine (the sharded mode)
// therefore yield bit-identical per-node results; the regression test in
// internal/experiments pins this.
package cluster

import (
	"fmt"
	"sort"

	"powercontainers/internal/core"
	"powercontainers/internal/runner"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// PlannedDispatch is one dispatcher decision, replayed identically by
// every execution mode.
type PlannedDispatch struct {
	// At is the request's arrival time at the dispatcher.
	At sim.Time
	// App names the dispatched application.
	App string
	// Node is the chosen machine (0 when Dropped).
	Node int
	// Dropped marks an arrival no node could take.
	Dropped bool
	// Tag is the ledger tag opened for the request; request ids are
	// assigned sequentially in dispatch order, which is what lets the
	// merge phase rebuild the ledger by replay.
	Tag ContainerTag
}

// DispatchPlan is the complete, execution-independent record of a
// dispatcher run: every arrival, placement and ledger open, in dispatch
// order.
type DispatchPlan struct {
	Dispatches []PlannedDispatch
	// PerApp[node][app] counts planned dispatches, for diagnostics.
	PerApp []map[string]int
	// Until is the arrival horizon the plan was generated for.
	Until sim.Time
}

// PlanNode returns a plan-only node: placement planning needs just the
// machine's core count and its standing reserved utilization, not an
// assembled kernel.
func PlanNode(cores int, reservedUtil float64) *Node {
	return &Node{cores: cores, ReservedUtil: reservedUtil}
}

// PlanOpenLoop runs the dispatcher's decision process alone — Poisson
// arrivals, placement and ledger opens on a private engine carrying no
// other events — and records every decision. Given the same nodes, apps,
// policy, rates and random stream, the plan reproduces exactly the
// decisions a fully coupled single-engine run would make.
func PlanOpenLoop(nodes []*Node, apps []*App, policy Policy, powerTargets map[string]float64, rates map[string]float64, until sim.Time, rng *sim.Rand) *DispatchPlan {
	eng := sim.NewEngine()
	d := NewDispatcher(eng, nodes, apps, policy)
	for app, w := range powerTargets {
		d.PowerTargets[app] = w
	}
	plan := &DispatchPlan{Until: until}
	d.record = func(node int, app *App, tag ContainerTag, dropped bool) {
		plan.Dispatches = append(plan.Dispatches, PlannedDispatch{
			At: eng.Now(), App: app.Name, Node: node, Dropped: dropped, Tag: tag,
		})
	}
	d.RunOpenLoop(rates, until, rng)
	eng.RunUntil(until)
	plan.PerApp = d.DispatchCounts()
	return plan
}

// ShardNode is one node's executable half of a sharded run: the engine it
// simulates on (private in sharded mode, shared in the single-engine
// reference mode), its facility for materializing remote containers, and
// the per-app load generators and request factories deployed on it.
type ShardNode struct {
	Eng *sim.Engine
	// Name is the executing machine's name, stamped into response tags.
	Name string
	Fac  *core.Facility
	// Gens and NewRequest are keyed by app name.
	Gens       map[string]*server.LoadGen
	NewRequest map[string]func() *server.Request
}

// ShardedRunConfig configures one plan execution.
type ShardedRunConfig struct {
	Plan  *DispatchPlan
	Nodes []*ShardNode
	// RunUntil is the simulation horizon for every node engine; it must
	// extend past Plan.Until far enough for in-flight requests to drain.
	RunUntil sim.Time
	// Jobs bounds shard concurrency (runner.Run semantics; 0 = default).
	// Results are byte-identical at any value.
	Jobs int
	// LedgerAudit observes the rebuilt ledger's opens, closes and drops.
	LedgerAudit AuditSink
}

// ShardedResult is a merged sharded run.
type ShardedResult struct {
	// Completed holds every finished request in the canonical merge
	// order: (done time, request id). The order is a pure function of
	// per-node outcomes, independent of shard scheduling.
	Completed []CompletedRequest
	// Ledger is the dispatcher-side ledger rebuilt from the plan's opens
	// and the merged response tags.
	Ledger *Ledger
	// PerApp[node][app] counts dispatches, as planned.
	PerApp []map[string]int
}

// ResponseTimes returns mean response time (ms) per app across the
// cluster, folded in the canonical merge order.
func (r *ShardedResult) ResponseTimes() map[string]float64 {
	return meanResponseMs(r.Completed)
}

// RunSharded executes a dispatch plan over the nodes and merges the
// shards. Every node's injections are pre-scheduled at their planned
// arrival times in plan order (the engine's FIFO tie-break keeps
// same-instant injections in dispatch order), each distinct engine runs
// to the horizon on the worker pool, and completions merge by
// (done time, request id) — so the result is byte-identical at any Jobs,
// and identical between per-node engines and a shared one.
func RunSharded(cfg ShardedRunConfig) (*ShardedResult, error) {
	// Rebuild the dispatcher-side ledger by replaying the plan's opens:
	// ids are assigned sequentially in dispatch order, so replay
	// reproduces them exactly.
	l := NewLedger()
	l.Audit = cfg.LedgerAudit
	for _, pd := range cfg.Plan.Dispatches {
		tag := l.Open(pd.App, pd.Tag.PowerTargetW, pd.At)
		if tag.RequestID != pd.Tag.RequestID {
			return nil, fmt.Errorf("cluster: ledger replay id %d != planned %d", tag.RequestID, pd.Tag.RequestID)
		}
		if pd.Dropped {
			if err := l.Drop(tag.RequestID, pd.At); err != nil {
				return nil, err
			}
		}
	}
	// Pre-schedule every planned injection on its node's engine. The
	// completion callback mirrors Dispatcher.dispatchTo: the executing
	// machine materializes the remote container and applies the
	// propagated power target before the request runs.
	outs := make([][]CompletedRequest, len(cfg.Nodes))
	for _, pd := range cfg.Plan.Dispatches {
		if pd.Dropped {
			continue
		}
		if pd.Node >= len(cfg.Nodes) {
			return nil, fmt.Errorf("cluster: plan targets node %d of %d", pd.Node, len(cfg.Nodes))
		}
		pd := pd
		sn := cfg.Nodes[pd.Node]
		sn.Eng.At(pd.At, func() {
			req := sn.NewRequest[pd.App]()
			req.Cont = sn.Fac.NewContainer(req.Type)
			req.Cont.PowerTargetW = pd.Tag.PowerTargetW
			sn.Gens[pd.App].InjectPrepared(req, func(r *server.Request) {
				outs[pd.Node] = append(outs[pd.Node], CompletedRequest{
					App: pd.App, Node: pd.Node, RequestID: pd.Tag.RequestID, Req: r,
				})
			})
		})
	}
	// Drive each distinct engine to the horizon. Shard simulations are
	// fully independent, so they fan out on the runner's worker pool; a
	// shared engine (the single-timeline reference mode) runs once.
	var p runner.Plan
	seen := map[*sim.Engine]bool{}
	for i, sn := range cfg.Nodes {
		if seen[sn.Eng] {
			continue
		}
		seen[sn.Eng] = true
		eng := sn.Eng
		p.Add(fmt.Sprintf("shard/%d/%s", i, sn.Name), func() (any, error) {
			eng.RunUntil(cfg.RunUntil)
			return nil, nil
		})
	}
	if _, err := runner.Run(&p, cfg.Jobs); err != nil {
		return nil, err
	}
	// Seeded merge: order completions by (done time, request id) — a
	// total order, since ids are unique — and fold the response tags
	// into the ledger in that order.
	var merged []CompletedRequest
	for _, o := range outs {
		merged = append(merged, o...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Req.Done != merged[j].Req.Done {
			return merged[i].Req.Done < merged[j].Req.Done
		}
		return merged[i].RequestID < merged[j].RequestID
	})
	for _, c := range merged {
		e, ok := l.Entry(c.RequestID)
		if !ok {
			return nil, fmt.Errorf("cluster: completed request %d missing from replayed ledger", c.RequestID)
		}
		if err := l.Close(responseTag(e.Tag, cfg.Nodes[c.Node].Name, c.Req), c.Req.Done); err != nil {
			return nil, err
		}
	}
	return &ShardedResult{Completed: merged, Ledger: l, PerApp: cfg.Plan.PerApp}, nil
}
