package cluster

import (
	"fmt"
	"sort"

	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// ContainerTag is the cross-machine request context of §3.4: when a request
// message crosses a machine boundary the dispatcher tags it with the
// container identifier and control policy settings; the response message
// comes back tagged with cumulative runtime, energy usage and most recent
// power, so the dispatcher keeps comprehensive per-request accounting for
// work executed elsewhere.
type ContainerTag struct {
	// RequestID is the dispatcher-global container identifier.
	RequestID uint64
	// App is the owning application.
	App string
	// PowerTargetW is the per-request power control policy the executing
	// machine must honour (0 = none).
	PowerTargetW float64

	// Response-path fields, filled by the executing machine.
	Machine    string
	CPUTime    sim.Time
	EnergyJ    float64
	LastPowerW float64
}

// LedgerEntry is the dispatcher-side view of one request's containers
// across the cluster.
type LedgerEntry struct {
	Tag      ContainerTag
	Arrive   sim.Time
	Done     sim.Time
	Finished bool
	// Dropped marks a request the dispatcher gave up on (node failure
	// with no healthy target, or redispatch budget exhausted); Finished
	// and Dropped are mutually exclusive.
	Dropped bool
	// Redispatches counts how many times the request was re-sent to
	// another node after its executing node failed.
	Redispatches int
}

// ResponseTime returns the request's cluster residence time.
func (e *LedgerEntry) ResponseTime() sim.Time {
	if !e.Finished {
		return 0
	}
	return e.Done - e.Arrive
}

// AuditSink observes ledger activity for invariant checking
// (internal/audit). A nil sink — the default — disables auditing.
type AuditSink interface {
	// OnLedgerOpen fires when an outbound request is registered.
	OnLedgerOpen(tag ContainerTag, now sim.Time)
	// OnLedgerClose fires when a response tag folds into the ledger;
	// alreadyFinished flags a double close of the same request.
	OnLedgerClose(tag ContainerTag, alreadyFinished bool, now sim.Time)
	// OnLedgerDrop fires when the dispatcher gives up on a request;
	// alreadyFinished flags a drop after the request completed.
	OnLedgerDrop(tag ContainerTag, alreadyFinished bool, now sim.Time)
	// OnLedgerRedispatch fires when a request is re-sent after a node
	// failure; attempts is its cumulative redispatch count.
	OnLedgerRedispatch(tag ContainerTag, attempts int, now sim.Time)
}

// Ledger aggregates cross-machine request accounting at the dispatcher.
type Ledger struct {
	// Audit observes open/close activity; nil disables.
	Audit AuditSink

	entries map[uint64]*LedgerEntry
	nextID  uint64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{entries: map[uint64]*LedgerEntry{}}
}

// Open registers a new outbound request and returns its tag.
func (l *Ledger) Open(app string, powerTargetW float64, now sim.Time) ContainerTag {
	l.nextID++
	tag := ContainerTag{RequestID: l.nextID, App: app, PowerTargetW: powerTargetW}
	l.entries[tag.RequestID] = &LedgerEntry{Tag: tag, Arrive: now}
	if l.Audit != nil {
		l.Audit.OnLedgerOpen(tag, now)
	}
	return tag
}

// Close records a response tag, folding the executing machine's container
// statistics into the dispatcher-side entry.
func (l *Ledger) Close(tag ContainerTag, now sim.Time) error {
	e, ok := l.entries[tag.RequestID]
	if !ok {
		return fmt.Errorf("cluster: response for unknown request %d", tag.RequestID)
	}
	if l.Audit != nil {
		l.Audit.OnLedgerClose(tag, e.Finished, now)
	}
	e.Tag.Machine = tag.Machine
	e.Tag.CPUTime = tag.CPUTime
	e.Tag.EnergyJ = tag.EnergyJ
	e.Tag.LastPowerW = tag.LastPowerW
	e.Done = now
	e.Finished = true
	return nil
}

// Drop marks a request as explicitly given up: its node failed with no
// healthy target left, or its redispatch budget ran out. Dropped entries
// keep the ledger's accounting identity (opened = finished + dropped +
// in flight) intact under node loss.
func (l *Ledger) Drop(id uint64, now sim.Time) error {
	e, ok := l.entries[id]
	if !ok {
		return fmt.Errorf("cluster: drop of unknown request %d", id)
	}
	if l.Audit != nil {
		l.Audit.OnLedgerDrop(e.Tag, e.Finished, now)
	}
	e.Dropped = true
	e.Done = now
	return nil
}

// NoteRedispatch records that a request was re-sent to another node after
// its executing node failed.
func (l *Ledger) NoteRedispatch(id uint64, now sim.Time) error {
	e, ok := l.entries[id]
	if !ok {
		return fmt.Errorf("cluster: redispatch of unknown request %d", id)
	}
	e.Redispatches++
	if l.Audit != nil {
		l.Audit.OnLedgerRedispatch(e.Tag, e.Redispatches, now)
	}
	return nil
}

// Counts returns the ledger's accounting totals: requests opened, finished
// and dropped, plus cumulative redispatches. Opened − finished − dropped
// is the dispatcher's in-flight population.
func (l *Ledger) Counts() (opened, finished, dropped, redispatches int) {
	for _, e := range l.entries {
		opened++
		if e.Finished {
			finished++
		}
		if e.Dropped {
			dropped++
		}
		redispatches += e.Redispatches
	}
	return
}

// Entries returns every ledger entry in request-id order.
func (l *Ledger) Entries() []*LedgerEntry {
	var out []*LedgerEntry
	for _, e := range l.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag.RequestID < out[j].Tag.RequestID })
	return out
}

// Entry returns a request's ledger entry.
func (l *Ledger) Entry(id uint64) (*LedgerEntry, bool) {
	e, ok := l.entries[id]
	return e, ok
}

// Finished returns all finished entries in request-id order.
func (l *Ledger) Finished() []*LedgerEntry {
	var out []*LedgerEntry
	for _, e := range l.entries {
		if e.Finished {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tag.RequestID < out[j].Tag.RequestID })
	return out
}

// TotalEnergyJ sums attributed energy over finished entries, optionally per
// app ("" = all) and per machine ("" = all).
func (l *Ledger) TotalEnergyJ(app, machine string) float64 {
	var sum float64
	for _, e := range l.entries {
		if !e.Finished {
			continue
		}
		if app != "" && e.Tag.App != app {
			continue
		}
		if machine != "" && e.Tag.Machine != machine {
			continue
		}
		sum += e.Tag.EnergyJ
	}
	return sum
}

// responseTag builds the response-path tag from a finished request's
// node-local container.
func responseTag(tag ContainerTag, machine string, req *server.Request) ContainerTag {
	if req.Cont != nil {
		tag.CPUTime = req.Cont.CPUTime
		tag.EnergyJ = req.Cont.EnergyJ()
		tag.LastPowerW = req.Cont.LastPowerW
	}
	tag.Machine = machine
	return tag
}
