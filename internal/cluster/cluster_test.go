package cluster

import (
	"math"
	"testing"

	"powercontainers/internal/core"
	"powercontainers/internal/cpu"
	"powercontainers/internal/kernel"
	"powercontainers/internal/model"
	"powercontainers/internal/power"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

var quadSpec = cpu.MachineSpec{
	Name: "Quad", Chips: 1, CoresPerChip: 4, FreqHz: 1e9, DutyLevels: 8,
}

var testProfile = power.TrueProfile{
	MachineIdleW: 40, PkgIdleW: 2, ChipMaintW: 5,
	CoreW: 8, InsW: 2, DiskW: 1.7, NetW: 5.8,
}

// echoApp builds an App served by a fixed-burst deployment on every node.
func echoApp(name string, burst float64, affinity float64) (*App, func(*App, *kernel.Kernel) *server.Deployment) {
	deploy := func(app *App, k *kernel.Kernel) *server.Deployment {
		entry := kernel.NewListener(name)
		pool := server.NewEntryPool(k, name, 8, entry, func(int) server.Handler {
			return func(k *kernel.Kernel, t *kernel.Task, payload any) []kernel.Op {
				return []kernel.Op{kernel.OpCompute{BaseCycles: burst, Act: cpu.Activity{IPC: 1}}}
			}
		})
		return &server.Deployment{
			Entry:          entry,
			NewRequest:     func() *server.Request { return &server.Request{Type: name} },
			MeanServiceSec: burst / 1e9,
			Pools:          []*server.Pool{pool},
		}
	}
	return &App{Name: name, AffinityRatio: affinity}, deploy
}

func newCluster(t *testing.T, policy Policy, apps []*App,
	deploys map[string]func(*App, *kernel.Kernel) *server.Deployment) (*sim.Engine, *Dispatcher) {
	t.Helper()
	eng := sim.NewEngine()
	var nodes []*Node
	for i := 0; i < 2; i++ {
		k, err := kernel.New("n", quadSpec, testProfile, eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		fac := core.Attach(k, model.Coefficients{Core: 8, Ins: 2, Chip: 5, IncludesChipShare: true},
			core.Config{})
		node := NewNode(k, fac, apps, func(app *App, kk *kernel.Kernel) *server.Deployment {
			return deploys[app.Name](app, kk)
		})
		nodes = append(nodes, node)
	}
	for _, app := range apps {
		app.SvcSec = []float64{0.004, 0.004}
		dep := deploys[app.Name](app, nodes[0].K) // factory source
		app.NewRequest = dep.NewRequest
	}
	return eng, NewDispatcher(eng, nodes, apps, policy)
}

func buildApps() ([]*App, map[string]func(*App, *kernel.Kernel) *server.Deployment) {
	a, da := echoApp("alpha", 4e6, 0.2) // strongly prefers node 0
	b, db := echoApp("beta", 4e6, 0.6)  // weakly prefers node 0
	return []*App{a, b}, map[string]func(*App, *kernel.Kernel) *server.Deployment{
		"alpha": da, "beta": db,
	}
}

func TestSimpleBalanceSplitsEvenly(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, SimpleBalance, apps, deploys)
	d.RunOpenLoop(map[string]float64{"alpha": 200, "beta": 200}, 4*sim.Second, sim.NewRand(1))
	eng.RunUntil(5 * sim.Second)
	counts := d.DispatchCounts()
	for _, app := range []string{"alpha", "beta"} {
		n0, n1 := counts[0][app], counts[1][app]
		frac := float64(n0) / float64(n0+n1)
		if math.Abs(frac-0.5) > 0.06 {
			t.Fatalf("%s split %.2f, want ≈0.5", app, frac)
		}
	}
}

func TestMachineAwareFillsEfficientNodeFirst(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, MachineAware, apps, deploys)
	// Total demand on node 0: (200+200)×0.004/4 = 0.4 < cap → all on 0.
	d.RunOpenLoop(map[string]float64{"alpha": 200, "beta": 200}, 3*sim.Second, sim.NewRand(1))
	eng.RunUntil(4 * sim.Second)
	counts := d.DispatchCounts()
	if counts[1]["alpha"]+counts[1]["beta"] > (counts[0]["alpha"]+counts[0]["beta"])/20 {
		t.Fatalf("underloaded cluster spilled to node 1: %v", counts)
	}
}

func TestMachineAwareSpillsSameComposition(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, MachineAware, apps, deploys)
	// Demand on node 0 = (700+700)×0.004/4 = 1.4 → f = 0.7/1.4 = 0.5.
	d.RunOpenLoop(map[string]float64{"alpha": 700, "beta": 700}, 4*sim.Second, sim.NewRand(1))
	eng.RunUntil(5 * sim.Second)
	counts := d.DispatchCounts()
	for _, app := range []string{"alpha", "beta"} {
		n0, n1 := counts[0][app], counts[1][app]
		frac := float64(n0) / float64(n0+n1)
		if math.Abs(frac-0.5) > 0.08 {
			t.Fatalf("%s node0 fraction %.2f, want ≈0.5 for both apps", app, frac)
		}
	}
}

func TestWorkloadAwareSpillsHighRatioFirst(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, WorkloadAware, apps, deploys)
	// alpha (ratio 0.2) claims node 0 first: its demand 0.7 consumes the
	// whole cap; beta (ratio 0.6) spills entirely.
	d.RunOpenLoop(map[string]float64{"alpha": 700, "beta": 700}, 4*sim.Second, sim.NewRand(1))
	eng.RunUntil(5 * sim.Second)
	counts := d.DispatchCounts()
	alphaFrac := float64(counts[0]["alpha"]) / float64(counts[0]["alpha"]+counts[1]["alpha"])
	betaFrac := float64(counts[0]["beta"]) / float64(counts[0]["beta"]+counts[1]["beta"])
	if alphaFrac < 0.9 {
		t.Fatalf("low-ratio app node0 fraction %.2f, want ≈1.0", alphaFrac)
	}
	if betaFrac > 0.15 {
		t.Fatalf("high-ratio app node0 fraction %.2f, want ≈0", betaFrac)
	}
}

func TestResponseTimesPerApp(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, SimpleBalance, apps, deploys)
	d.RunOpenLoop(map[string]float64{"alpha": 50, "beta": 50}, 2*sim.Second, sim.NewRand(1))
	eng.RunUntil(3 * sim.Second)
	rts := d.ResponseTimes()
	for _, app := range []string{"alpha", "beta"} {
		if rts[app] < 3.9 || rts[app] > 20 {
			t.Fatalf("%s mean response %.1f ms, want ≥ service 4 ms and small", app, rts[app])
		}
	}
	if len(d.Completed()) == 0 {
		t.Fatal("no completions recorded")
	}
}

func TestOverloadGuardReroutes(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, MachineAware, apps, deploys)
	// The plan believes 100/s (all fits on node 0), but actual arrivals
	// run at 3000/s: the overload guard must shift load to node 1.
	d.SetRates(map[string]float64{"alpha": 100, "beta": 0}, sim.NewRand(1))
	var arrive func()
	n := 0
	arrive = func() {
		if n >= 3000 {
			return
		}
		n++
		d.Dispatch(apps[0])
		eng.After(sim.Millisecond/3, arrive)
	}
	eng.After(1, arrive)
	eng.RunUntil(2 * sim.Second)
	counts := d.DispatchCounts()
	if counts[1]["alpha"] == 0 {
		t.Fatal("overload guard never rerouted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if SimpleBalance.String() == "" || MachineAware.String() == "" || WorkloadAware.String() == "" {
		t.Fatal("empty policy names")
	}
}

func TestLedgerCrossMachineAccounting(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, SimpleBalance, apps, deploys)
	d.RunOpenLoop(map[string]float64{"alpha": 100, "beta": 100}, 2*sim.Second, sim.NewRand(5))
	eng.RunUntil(3 * sim.Second)

	entries := d.Ledger.Finished()
	if len(entries) < 100 {
		t.Fatalf("ledger finished = %d", len(entries))
	}
	// Response tags carry the executing machine's container stats.
	for _, e := range entries[:20] {
		if e.Tag.Machine == "" {
			t.Fatal("response tag missing machine")
		}
		if e.Tag.EnergyJ <= 0 || e.Tag.CPUTime <= 0 {
			t.Fatalf("response tag missing stats: %+v", e.Tag)
		}
		if e.ResponseTime() <= 0 {
			t.Fatal("ledger response time missing")
		}
	}
	// Ledger totals must equal the sum over the dispatcher's completion
	// records (same containers, two views).
	var direct float64
	for _, c := range d.Completed() {
		direct += c.Req.Cont.EnergyJ()
	}
	if total := d.Ledger.TotalEnergyJ("", ""); total <= 0 || total > direct+1e-9 || total < direct-1e-9 {
		t.Fatalf("ledger total %.3f J != direct %.3f J", total, direct)
	}
	// Per-app filtering partitions the total.
	a := d.Ledger.TotalEnergyJ("alpha", "")
	bb := d.Ledger.TotalEnergyJ("beta", "")
	if a <= 0 || bb <= 0 || a+bb > direct+1e-9 {
		t.Fatalf("per-app totals %.3f + %.3f vs %.3f", a, bb, direct)
	}
}

func TestPowerTargetPropagatesAcrossMachines(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, SimpleBalance, apps, deploys)
	// Throttle alpha remotely; beta runs at full speed.
	d.PowerTargets["alpha"] = 4 // below alpha's ~10 W request power
	for _, n := range d.Nodes {
		n.Fac.EnableConditioning(1e9) // per-request targets only
	}
	d.RunOpenLoop(map[string]float64{"alpha": 50, "beta": 50}, 2*sim.Second, sim.NewRand(5))
	eng.RunUntil(3 * sim.Second)

	var alphaDuty, betaDuty float64
	var na, nb int
	for _, c := range d.Completed() {
		duty := c.Req.Cont.MeanDutyFraction()
		if c.App == "alpha" {
			alphaDuty += duty
			na++
		} else {
			betaDuty += duty
			nb++
		}
	}
	if na == 0 || nb == 0 {
		t.Fatal("missing completions")
	}
	if alphaDuty/float64(na) > 0.8 {
		t.Fatalf("alpha not throttled remotely: duty %.2f", alphaDuty/float64(na))
	}
	if betaDuty/float64(nb) < 0.99 {
		t.Fatalf("beta throttled without a target: duty %.2f", betaDuty/float64(nb))
	}
}

// newTriCluster builds a three-node cluster: two fast nodes and one slow
// node (double service time), efficiency order 0 > 1 > 2.
func newTriCluster(t *testing.T, policy Policy) (*sim.Engine, *Dispatcher, []*App) {
	t.Helper()
	apps, deploys := buildApps()
	eng := sim.NewEngine()
	var nodes []*Node
	for i := 0; i < 3; i++ {
		k, err := kernel.New("n", quadSpec, testProfile, eng, nil)
		if err != nil {
			t.Fatal(err)
		}
		fac := core.Attach(k, model.Coefficients{Core: 8, Ins: 2, Chip: 5, IncludesChipShare: true}, core.Config{})
		node := NewNode(k, fac, apps, func(app *App, kk *kernel.Kernel) *server.Deployment {
			return deploys[app.Name](app, kk)
		})
		nodes = append(nodes, node)
	}
	for _, app := range apps {
		app.SvcSec = []float64{0.004, 0.004, 0.008}
		dep := deploys[app.Name](app, nodes[0].K)
		app.NewRequest = dep.NewRequest
	}
	return eng, NewDispatcher(eng, nodes, apps, policy), apps
}

func TestThreeTierMachineAwareFillsInOrder(t *testing.T) {
	eng, d, _ := newTriCluster(t, MachineAware)
	// Demand per fast node: (900+900)×0.004/4 = 1.8 of node0's cores →
	// tier 0 takes 0.7/1.8 ≈ 0.39 of volume, tier 1 the same of the
	// remainder, tier 2 the rest.
	d.RunOpenLoop(map[string]float64{"alpha": 900, "beta": 900}, 4*sim.Second, sim.NewRand(3))
	eng.RunUntil(5 * sim.Second)
	counts := d.DispatchCounts()
	tot := func(node int) int { return counts[node]["alpha"] + counts[node]["beta"] }
	if tot(0) == 0 || tot(1) == 0 || tot(2) == 0 {
		t.Fatalf("three-tier fill skipped a node: %d/%d/%d", tot(0), tot(1), tot(2))
	}
	// Tier 0 and 1 get similar shares (both capped); tier 2 absorbs the
	// remainder.
	if f := float64(tot(0)) / float64(tot(0)+tot(1)+tot(2)); f < 0.25 || f > 0.55 {
		t.Fatalf("tier-0 share %.2f implausible", f)
	}
}

func TestThreeTierWorkloadAwarePinsLowRatioApp(t *testing.T) {
	eng, d, _ := newTriCluster(t, WorkloadAware)
	// alpha (low ratio) demand = 900×0.004/4 = 0.9 > cap 0.7 of tier 0:
	// alpha fills tier 0 entirely and spills to tier 1; beta is pushed
	// further down the tiers.
	d.RunOpenLoop(map[string]float64{"alpha": 900, "beta": 900}, 4*sim.Second, sim.NewRand(3))
	eng.RunUntil(5 * sim.Second)
	counts := d.DispatchCounts()
	if counts[0]["beta"] > counts[0]["alpha"]/10 {
		t.Fatalf("tier 0 not reserved for the low-ratio app: %v", counts)
	}
	if counts[2]["beta"] == 0 {
		t.Fatalf("high-ratio app never reached the last tier: %v", counts)
	}
}
