package cluster

import (
	"testing"

	"powercontainers/internal/faults"
	"powercontainers/internal/sim"
)

// recordingSink counts ledger audit events so tests can reconcile them
// against the ledger's own totals.
type recordingSink struct {
	opens, closes, drops, redispatches int
	dropAfterFinish                    bool
}

func (s *recordingSink) OnLedgerOpen(tag ContainerTag, now sim.Time) { s.opens++ }
func (s *recordingSink) OnLedgerClose(tag ContainerTag, alreadyFinished bool, now sim.Time) {
	s.closes++
}
func (s *recordingSink) OnLedgerDrop(tag ContainerTag, alreadyFinished bool, now sim.Time) {
	s.drops++
	if alreadyFinished {
		s.dropAfterFinish = true
	}
}
func (s *recordingSink) OnLedgerRedispatch(tag ContainerTag, attempts int, now sim.Time) {
	s.redispatches++
}

func TestDispatchToleratesEmptyNodeSet(t *testing.T) {
	eng := sim.NewEngine()
	apps, _ := buildApps()
	apps[0].NewRequest = nil // must never be consulted without a node
	d := NewDispatcher(eng, nil, apps, SimpleBalance)
	sink := &recordingSink{}
	d.Ledger.Audit = sink
	d.Dispatch(apps[0]) // must not panic (legacy code divided by len(Nodes))
	opened, finished, dropped, _ := d.Ledger.Counts()
	if opened != 1 || finished != 0 || dropped != 1 {
		t.Fatalf("empty-cluster dispatch: opened=%d finished=%d dropped=%d", opened, finished, dropped)
	}
	if sink.drops != 1 {
		t.Fatalf("drop not audited: %d events", sink.drops)
	}
}

func TestDispatchDropsWhenAllNodesUnhealthy(t *testing.T) {
	apps, deploys := buildApps()
	eng, d := newCluster(t, SimpleBalance, apps, deploys)
	d.EnableHealth(HealthConfig{ProbeEvery: 50 * sim.Millisecond, Timeout: 10 * sim.Millisecond},
		sim.NewRand(42))
	for _, n := range d.Nodes {
		n.SetFailed(true)
	}
	// Let the probes time out and mark both nodes down.
	eng.RunUntil(300 * sim.Millisecond)
	if d.Healthy(0) || d.Healthy(1) {
		t.Fatal("probes did not mark failed nodes unhealthy")
	}
	d.SetRates(map[string]float64{"alpha": 10}, sim.NewRand(7))
	d.Dispatch(apps[0])
	opened, _, dropped, _ := d.Ledger.Counts()
	if opened != 1 || dropped != 1 {
		t.Fatalf("all-unhealthy dispatch: opened=%d dropped=%d", opened, dropped)
	}
	// Recovery: once nodes come back, dispatch proceeds normally again.
	for _, n := range d.Nodes {
		n.SetFailed(false)
	}
	eng.RunUntil(800 * sim.Millisecond)
	if !d.Healthy(0) || !d.Healthy(1) {
		t.Fatal("recovered nodes not re-marked healthy")
	}
	d.Dispatch(apps[0])
	eng.RunUntil(2 * sim.Second)
	if _, finished, _, _ := d.Ledger.Counts(); finished != 1 {
		t.Fatal("post-recovery dispatch did not complete")
	}
}

// failoverRun drives a 2-node cluster through overlapping node-failure
// windows (node 0 down 1–2 s, node 1 down 1.2–1.6 s: briefly no healthy
// node at all) and returns the dispatcher and audit sink after drain.
func failoverRun(t *testing.T, seed uint64) (*Dispatcher, *recordingSink) {
	t.Helper()
	apps, deploys := buildApps()
	eng, d := newCluster(t, SimpleBalance, apps, deploys)
	sink := &recordingSink{}
	d.Ledger.Audit = sink
	d.EnableHealth(HealthConfig{
		ProbeEvery: 50 * sim.Millisecond,
		Timeout:    10 * sim.Millisecond,
	}, sim.NewRand(seed))
	plan := &faults.Plan{Seed: seed, Nodes: []faults.NodeFault{
		{Node: 0, Windows: []faults.Window{{From: sim.Second, To: 2 * sim.Second}}},
		{Node: 1, Windows: []faults.Window{{From: 1200 * sim.Millisecond, To: 1600 * sim.Millisecond}}},
	}}
	plan.ArmNodes(eng, []faults.FailureTarget{d.Nodes[0], d.Nodes[1]})
	d.RunOpenLoop(map[string]float64{"alpha": 150, "beta": 150}, 3*sim.Second, sim.NewRand(seed))
	eng.RunUntil(6 * sim.Second)
	return d, sink
}

// TestLedgerConservationUnderNodeFailure is the node-loss accounting
// property: after a mid-run node failure with redispatch and drops, every
// opened request is exactly one of finished, dropped, or still in flight —
// none lost, none double-counted.
func TestLedgerConservationUnderNodeFailure(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		d, sink := failoverRun(t, seed)
		opened, finished, dropped, redispatches := d.Ledger.Counts()
		if opened == 0 {
			t.Fatalf("seed %d: no requests dispatched", seed)
		}
		if got := finished + dropped + d.InflightCount(); got != opened {
			t.Fatalf("seed %d: conservation broken: opened %d != finished %d + dropped %d + inflight %d",
				seed, opened, finished, dropped, d.InflightCount())
		}
		// The failure windows must actually exercise both degradation
		// paths: redispatch off the dead node, and explicit drops while no
		// node was healthy.
		if redispatches == 0 {
			t.Fatalf("seed %d: node failure caused no redispatches", seed)
		}
		if dropped == 0 {
			t.Fatalf("seed %d: all-nodes-down window caused no drops", seed)
		}
		if sink.drops != dropped || sink.redispatches != redispatches {
			t.Fatalf("seed %d: audit saw %d drops / %d redispatches, ledger has %d / %d",
				seed, sink.drops, sink.redispatches, dropped, redispatches)
		}
		if sink.dropAfterFinish {
			t.Fatalf("seed %d: a finished request was dropped", seed)
		}
		// No double-counted completions, and no entry both finished and
		// dropped.
		seen := map[uint64]bool{}
		for _, c := range d.Completed() {
			if seen[c.RequestID] {
				t.Fatalf("seed %d: request %d completed twice", seed, c.RequestID)
			}
			seen[c.RequestID] = true
		}
		for _, e := range d.Ledger.Entries() {
			if e.Finished && e.Dropped {
				t.Fatalf("seed %d: request %d both finished and dropped", seed, e.Tag.RequestID)
			}
			if e.Finished && !seen[e.Tag.RequestID] {
				t.Fatalf("seed %d: ledger-finished request %d missing from completions", seed, e.Tag.RequestID)
			}
		}
	}
}

// TestFaultedClusterIsDeterministic: the same seed must reproduce the exact
// same accounting totals — fault windows, probes, backoff jitter, and
// redispatch all draw from seeded streams.
func TestFaultedClusterIsDeterministic(t *testing.T) {
	type totals struct{ opened, finished, dropped, redispatches, completed int }
	run := func() totals {
		d, _ := failoverRun(t, 5)
		o, f, dr, re := d.Ledger.Counts()
		return totals{o, f, dr, re, len(d.Completed())}
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed runs diverged: %+v vs %+v", a, b)
	}
}
