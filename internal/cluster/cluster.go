// Package cluster implements §3.4's heterogeneity-aware request
// distribution: a dispatcher spreads a mixed workload over machines of
// different generations, using per-request cross-machine energy profiles
// captured by power containers to place each request where its relative
// energy efficiency is high. Request context (the container identity and
// statistics) crosses machines with the tagged dispatch message, as the
// paper propagates containers over socket messages between machines.
package cluster

import (
	"fmt"
	"math"
	"sort"

	"powercontainers/internal/core"
	"powercontainers/internal/kernel"
	"powercontainers/internal/server"
	"powercontainers/internal/sim"
)

// Policy selects the request distribution scheme of §4.4.
type Policy int

const (
	// SimpleBalance directs an equal amount of load to every machine,
	// oblivious to heterogeneity.
	SimpleBalance Policy = iota
	// MachineAware loads the most energy-efficient machine to a healthy
	// high utilization (~70%) before spilling to others, but distributes
	// the same request composition everywhere.
	MachineAware
	// WorkloadAware additionally places requests by their cross-machine
	// energy affinity: when the efficient machine nears its cap,
	// requests whose relative efficiency there is low are spilled first.
	WorkloadAware
)

func (p Policy) String() string {
	switch p {
	case SimpleBalance:
		return "simple load balance"
	case MachineAware:
		return "machine heterogeneity-aware"
	case WorkloadAware:
		return "workload heterogeneity-aware"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// App is one application hosted on every node of the cluster.
type App struct {
	Name string
	// NewRequest draws a request (node-independent payload).
	NewRequest func() *server.Request
	// SvcSec[node] is the app's mean per-request busy time on each node
	// (dispatchers know service demand from standard monitoring).
	SvcSec []float64
	// AffinityRatio is the cross-machine active energy usage ratio
	// (node0 energy / node1 energy) captured by power containers; lower
	// means node0 is relatively much more efficient for this app.
	// Only the workload-aware policy may consult it.
	AffinityRatio float64
}

// loadTauSec is the decay horizon of the dispatcher's per-node offered-load
// estimate.
const loadTauSec = 1.0

// Node is one machine of the cluster with the apps deployed on it.
type Node struct {
	K    *kernel.Kernel
	Fac  *core.Facility
	Gens map[string]*server.LoadGen

	// cores caches the machine's core count for capacity planning, so
	// plan-only nodes (PlanNode) work without an assembled kernel.
	cores int

	// ReservedUtil is the utilization fraction standing system services
	// (e.g. GAE background processing) consume on this node regardless
	// of dispatched load; capacity planning subtracts it.
	ReservedUtil float64

	// loadEWMA tracks recently dispatched busy-seconds with exponential
	// decay; loadEWMA/ (τ·cores) estimates the node's offered
	// utilization.
	loadEWMA    float64
	loadUpdated float64

	// failed marks the node dead: responses from it are lost and the
	// dispatcher's health checks steer new work away. Fault plans toggle
	// it (the node implements faults.FailureTarget).
	failed bool
}

// SetFailed marks or clears node failure; fault-injection plans call it
// through the faults.FailureTarget interface.
func (n *Node) SetFailed(failed bool) { n.failed = failed }

// Failed reports whether the node is currently down.
func (n *Node) Failed() bool { return n.failed }

// noteDispatch decays and bumps the node's offered-load estimate.
func (n *Node) noteDispatch(nowSec, svcSec float64) {
	n.decay(nowSec)
	n.loadEWMA += svcSec
}

func (n *Node) decay(nowSec float64) {
	if nowSec > n.loadUpdated {
		n.loadEWMA *= math.Exp(-(nowSec - n.loadUpdated) / loadTauSec)
		n.loadUpdated = nowSec
	}
}

// estUtil estimates the node's offered utilization, including its standing
// reserved load.
func (n *Node) estUtil(nowSec float64) float64 {
	n.decay(nowSec)
	return n.ReservedUtil + n.loadEWMA/(loadTauSec*float64(n.cores))
}

// NewNode deploys every app on a machine.
func NewNode(k *kernel.Kernel, fac *core.Facility, apps []*App, deploy func(app *App, k *kernel.Kernel) *server.Deployment) *Node {
	n := &Node{K: k, Fac: fac, Gens: map[string]*server.LoadGen{}, cores: k.Spec.Cores()}
	for _, app := range apps {
		dep := deploy(app, k)
		n.Gens[app.Name] = server.NewLoadGen(k, fac, dep)
	}
	return n
}

// Dispatcher routes requests to nodes under a policy. Node 0 must be the
// most energy-efficient machine.
type Dispatcher struct {
	Eng    *sim.Engine
	Nodes  []*Node
	Apps   []*App
	Policy Policy
	// UtilCap is the healthy utilization bound for the efficient machine
	// (the paper uses ~70%).
	UtilCap float64

	// Ledger tracks cross-machine request accounting via tagged dispatch
	// and response messages (§3.4).
	Ledger *Ledger
	// PowerTargets holds optional per-app request power targets that the
	// dispatcher propagates to executing machines with the dispatch tag.
	PowerTargets map[string]float64

	rr        int
	completed []CompletedRequest
	// perApp[node][app] counts dispatched requests, for diagnostics.
	perApp []map[string]int
	// splits[app][node] is the placement plan: the probability that a
	// request of the app goes to the node. Computed by SetRates.
	splits map[string][]float64
	rng    *sim.Rand

	// Health-check state (EnableHealth); all nil/empty when disabled, and
	// every fault-tolerance path is skipped so the legacy dispatch
	// behaviour — including rng consumption — is untouched.
	health   *HealthConfig
	healthy  []bool
	strikes  []int
	probeRng []*sim.Rand
	inflight map[uint64]*inflightReq

	// record, when set, puts the dispatcher in plan mode (PlanOpenLoop):
	// every decision is accounted exactly as a live dispatch — the
	// offered-load estimate and per-app counts feed later picks — but
	// recorded instead of executed. Mutually exclusive with health
	// checking, whose failure recovery couples dispatch to node execution.
	record func(node int, app *App, tag ContainerTag, dropped bool)
}

// inflightReq is a dispatched-but-unanswered request the dispatcher may
// need to redispatch if its node fails.
type inflightReq struct {
	app     *App
	node    int
	attempt int
}

// CompletedRequest records one finished request and the app and node it
// belonged to. RequestID links the request back to its ledger entry, so
// the dispatcher-side accounting can be reconciled against the executing
// machine's container.
type CompletedRequest struct {
	App       string
	Node      int
	RequestID uint64
	Req       *server.Request
}

// NewDispatcher assembles a dispatcher.
func NewDispatcher(eng *sim.Engine, nodes []*Node, apps []*App, policy Policy) *Dispatcher {
	d := &Dispatcher{
		Eng: eng, Nodes: nodes, Apps: apps, Policy: policy,
		UtilCap: 0.70, Ledger: NewLedger(), PowerTargets: map[string]float64{},
	}
	for range nodes {
		d.perApp = append(d.perApp, map[string]int{})
	}
	return d
}

// Completed returns all finished requests across nodes.
func (d *Dispatcher) Completed() []CompletedRequest { return d.completed }

// DispatchCounts returns per-node, per-app dispatch counts.
func (d *Dispatcher) DispatchCounts() []map[string]int { return d.perApp }

// nowSec returns the dispatcher's wall clock in seconds.
func (d *Dispatcher) nowSec() float64 {
	return float64(d.Eng.Now()) / float64(sim.Second)
}

// SetRates informs the dispatcher of the offered per-app request rates and
// computes the placement plan. Both heterogeneity-aware policies fill the
// efficient machine to the healthy cap before spilling; the workload-aware
// policy additionally fills it in ascending affinity-ratio order, so the
// requests that would waste the most energy on the older machine stay on
// the efficient one (§3.4).
func (d *Dispatcher) SetRates(rates map[string]float64, rng *sim.Rand) {
	d.rng = rng
	d.splits = map[string][]float64{}
	n := len(d.Nodes)
	if n == 0 {
		return
	}
	// demand(a, node) is the fraction of node's cores app a's full volume
	// would keep busy.
	demand := func(a *App, node int) float64 {
		return rates[a.Name] * a.SvcSec[node] / float64(d.Nodes[node].cores)
	}
	switch d.Policy {
	case SimpleBalance:
		for _, a := range d.Apps {
			d.splits[a.Name] = equalSplit(n)
		}

	case MachineAware:
		// Tier filling with the same composition everywhere: every app
		// contributes the same fraction to each tier; each tier up to
		// the last is filled to the cap in efficiency order.
		remainingVolume := 1.0 // fraction of every app's volume unplaced
		for _, a := range d.Apps {
			d.splits[a.Name] = make([]float64, n)
		}
		for node := 0; node < n && remainingVolume > 1e-9; node++ {
			frac := remainingVolume
			if node < n-1 {
				var total float64
				for _, a := range d.Apps {
					total += demand(a, node)
				}
				avail := d.UtilCap - d.Nodes[node].ReservedUtil
				if avail < 0.05 {
					avail = 0.05
				}
				if total > 0 && remainingVolume*total > avail {
					frac = avail / total
				}
			}
			for _, a := range d.Apps {
				d.splits[a.Name][node] = frac
			}
			remainingVolume -= frac
		}

	case WorkloadAware:
		// Tier filling in ascending affinity-ratio order: the apps with
		// the strongest affinity to the efficient tiers claim their
		// capacity first; each subsequent tier absorbs the spill.
		order := append([]*App(nil), d.Apps...)
		sort.Slice(order, func(i, j int) bool {
			return order[i].AffinityRatio < order[j].AffinityRatio
		})
		left := map[string]float64{} // unplaced fraction per app
		for _, a := range d.Apps {
			d.splits[a.Name] = make([]float64, n)
			left[a.Name] = 1
		}
		for node := 0; node < n; node++ {
			capacity := d.UtilCap - d.Nodes[node].ReservedUtil
			if capacity < 0.05 {
				capacity = 0.05
			}
			if node == n-1 {
				capacity = 1e18 // the last tier absorbs everything
			}
			for _, a := range order {
				if left[a.Name] <= 1e-12 {
					continue
				}
				dem := demand(a, node) * left[a.Name]
				share := left[a.Name]
				if dem > 0 && dem > capacity {
					share = left[a.Name] * capacity / dem
				}
				d.splits[a.Name][node] = share
				left[a.Name] -= share
				capacity -= demand(a, node) * share
				if capacity < 0 {
					capacity = 0
				}
			}
		}
	}
	d.rebalance(demand)
}

// rebalance relaxes the healthy-utilization caps when the last tier would
// be driven past saturation while earlier tiers still have headroom:
// keeping every machine responsive takes precedence over the efficiency
// ordering. For the workload-aware policy the volume moved up is the
// lowest-affinity-ratio work on the overloaded tier, preserving as much of
// the placement preference as possible.
func (d *Dispatcher) rebalance(demand func(a *App, node int) float64) {
	n := len(d.Nodes)
	if n < 2 || d.Policy == SimpleBalance {
		return
	}
	const hardCap = 0.92
	util := func(node int) float64 {
		u := d.Nodes[node].ReservedUtil
		for _, a := range d.Apps {
			u += d.splits[a.Name][node] * demand(a, node)
		}
		return u
	}
	order := append([]*App(nil), d.Apps...)
	sort.Slice(order, func(i, j int) bool {
		return order[i].AffinityRatio < order[j].AffinityRatio
	})
	last := n - 1
	for iter := 0; iter < 100; iter++ {
		over := util(last) - hardCap
		if over <= 1e-9 {
			return
		}
		moved := false
		for recv := 0; recv < last && over > 1e-9; recv++ {
			headroom := hardCap - util(recv)
			if headroom <= 1e-9 {
				continue
			}
			for _, a := range order {
				frac := d.splits[a.Name][last]
				if frac <= 1e-12 {
					continue
				}
				dRecv, dLast := demand(a, recv), demand(a, last)
				if dRecv <= 0 || dLast <= 0 {
					continue
				}
				move := frac
				if move*dRecv > headroom {
					move = headroom / dRecv
				}
				if move*dLast > over {
					move = over / dLast
				}
				if move <= 1e-12 {
					continue
				}
				d.splits[a.Name][last] -= move
				d.splits[a.Name][recv] += move
				headroom -= move * dRecv
				over -= move * dLast
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

func equalSplit(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1 / float64(n)
	}
	return s
}

// pick chooses the node for a request of the given app: the planned split
// when one exists, with an overload guard that reroutes when the chosen
// node's offered load runs far past saturation while the other has room.
// The second result is false when no node can take the request — an empty
// node set, or (with health checks enabled) every node marked unhealthy —
// so callers degrade to an explicit drop instead of panicking.
func (d *Dispatcher) pick(app *App) (int, bool) {
	if len(d.Nodes) == 0 {
		return 0, false
	}
	var node int
	if d.splits != nil && d.rng != nil {
		if split, ok := d.splits[app.Name]; ok && splitTotal(split) > 0 {
			node = d.rng.Pick(split)
		}
	} else {
		d.rr++
		node = d.rr % len(d.Nodes)
	}
	if d.Policy != SimpleBalance && len(d.Nodes) > 1 {
		// Overload guard: if the planned node's offered load runs far
		// past saturation, reroute to the least-loaded node with room.
		now := d.nowSec()
		if d.Nodes[node].estUtil(now) > 1.1 {
			best, bestUtil := node, d.Nodes[node].estUtil(now)
			for i := range d.Nodes {
				if u := d.Nodes[i].estUtil(now); u < bestUtil {
					best, bestUtil = i, u
				}
			}
			if bestUtil < 0.9 {
				node = best
			}
		}
	}
	if d.health != nil && !d.healthy[node] {
		return d.pickHealthy()
	}
	return node, true
}

// pickHealthy returns the least-loaded node currently believed healthy
// (lowest index breaking ties), or false when none is.
func (d *Dispatcher) pickHealthy() (int, bool) {
	now := d.nowSec()
	best, bestUtil, found := 0, 0.0, false
	for i := range d.Nodes {
		if d.health != nil && !d.healthy[i] {
			continue
		}
		if u := d.Nodes[i].estUtil(now); !found || u < bestUtil {
			best, bestUtil, found = i, u, true
		}
	}
	return best, found
}

func splitTotal(split []float64) float64 {
	var t float64
	for _, v := range split {
		t += v
	}
	return t
}

// Dispatch routes one request of the app. The dispatch message carries a
// container tag with the request identifier and control policy; the
// completion path returns cumulative statistics to the dispatcher's ledger.
// When no node can take the request it is opened and immediately dropped,
// keeping the ledger's accounting complete (opened = finished + dropped +
// in flight) instead of losing the request silently.
func (d *Dispatcher) Dispatch(app *App) {
	node, ok := d.pick(app)
	tag := d.Ledger.Open(app.Name, d.PowerTargets[app.Name], d.Eng.Now())
	if !ok {
		d.Ledger.Drop(tag.RequestID, d.Eng.Now())
		if d.record != nil {
			d.record(0, app, tag, true)
		}
		return
	}
	if d.record != nil {
		// Plan mode: mirror dispatchTo's dispatcher-side accounting —
		// later picks read the offered-load estimate it maintains — and
		// record the decision instead of executing it.
		d.Nodes[node].noteDispatch(d.nowSec(), app.SvcSec[node])
		d.perApp[node][app.Name]++
		d.record(node, app, tag, false)
		return
	}
	if d.health != nil {
		d.inflight[tag.RequestID] = &inflightReq{app: app, node: node}
	}
	d.dispatchTo(node, app, tag, 0)
}

// dispatchTo sends one (possibly re-dispatched) request attempt to a node.
// The completion callback is attempt-guarded: a response from an attempt
// superseded by a redispatch, or from a node that failed before the
// response left it, is discarded rather than double-counted.
func (d *Dispatcher) dispatchTo(node int, app *App, tag ContainerTag, attempt int) {
	n := d.Nodes[node]
	req := app.NewRequest()
	// The executing machine materializes the remote container and applies
	// the propagated control policy before the request runs.
	req.Cont = n.Fac.NewContainer(req.Type)
	req.Cont.PowerTargetW = tag.PowerTargetW
	n.noteDispatch(d.nowSec(), app.SvcSec[node])
	d.perApp[node][app.Name]++
	machine := n.K.Name()
	n.Gens[app.Name].InjectPrepared(req, func(r *server.Request) {
		if d.health != nil {
			fl, live := d.inflight[tag.RequestID]
			if !live || fl.attempt != attempt {
				return // superseded by a redispatch
			}
			if n.Failed() {
				return // response lost with the failed node
			}
			delete(d.inflight, tag.RequestID)
		}
		d.completed = append(d.completed, CompletedRequest{App: app.Name, Node: node, RequestID: tag.RequestID, Req: r})
		// Response message tagged with cumulative usage (§3.4).
		if err := d.Ledger.Close(responseTag(tag, machine, r), d.Eng.Now()); err != nil {
			panic(err)
		}
	})
}

// HealthConfig tunes the dispatcher's per-node health checks and the
// graceful-degradation response to node failure: unhealthy nodes are probed
// on a seeded-jitter exponential backoff, their in-flight requests are
// re-dispatched to healthy nodes a bounded number of times, and requests
// out of redispatch budget (or with no healthy node left) are explicitly
// dropped in the ledger.
type HealthConfig struct {
	// ProbeEvery is the healthy-node probe cadence (default 100 ms).
	ProbeEvery sim.Time
	// Timeout is the probe response deadline: a dead node is only
	// declared after its probe times out (default 20 ms).
	Timeout sim.Time
	// BackoffBase is the first retry gap after a failed probe; successive
	// failures double it (default ProbeEvery).
	BackoffBase sim.Time
	// BackoffMax caps the exponential backoff (default 8×BackoffBase).
	BackoffMax sim.Time
	// JitterFrac spreads every probe gap by ±JitterFrac using the seeded
	// rng, desynchronizing probe storms deterministically (default 0.1).
	JitterFrac float64
	// MaxRedispatch bounds how many times one request may be re-dispatched
	// before it is dropped (default 2).
	MaxRedispatch int
}

func (c *HealthConfig) fill() {
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 100 * sim.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 20 * sim.Millisecond
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = c.ProbeEvery
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 8 * c.BackoffBase
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.1
	}
	if c.MaxRedispatch <= 0 {
		c.MaxRedispatch = 2
	}
}

// EnableHealth starts per-node health checking. Each node's probe stream
// draws jitter from its own fork of rng, so probe timing is deterministic
// regardless of how node events interleave. Call before the simulation
// starts; with health never enabled the dispatcher behaves exactly as
// before, including its random-stream consumption.
func (d *Dispatcher) EnableHealth(cfg HealthConfig, rng *sim.Rand) {
	if d.record != nil {
		panic("cluster: health checking cannot be combined with dispatch planning (failure recovery couples dispatch to node execution)")
	}
	cfg.fill()
	d.health = &cfg
	d.healthy = make([]bool, len(d.Nodes))
	d.strikes = make([]int, len(d.Nodes))
	d.inflight = map[uint64]*inflightReq{}
	d.probeRng = make([]*sim.Rand, len(d.Nodes))
	for i := range d.Nodes {
		d.healthy[i] = true
		d.probeRng[i] = rng.Fork(uint64(i) + 1)
		d.scheduleProbe(i, cfg.ProbeEvery)
	}
}

// InflightCount returns how many dispatched requests await a response.
func (d *Dispatcher) InflightCount() int { return len(d.inflight) }

// Healthy reports the dispatcher's current belief about a node.
func (d *Dispatcher) Healthy(node int) bool {
	return d.health == nil || d.healthy[node]
}

// jittered spreads a probe gap by ±JitterFrac with the node's seeded rng.
func (d *Dispatcher) jittered(node int, gap sim.Time) sim.Time {
	j := d.health.JitterFrac * (2*d.probeRng[node].Float64() - 1)
	out := gap + sim.Time(float64(gap)*j)
	if out < 1 {
		out = 1
	}
	return out
}

func (d *Dispatcher) scheduleProbe(node int, gap sim.Time) {
	d.Eng.After(d.jittered(node, gap), func() { d.probe(node) })
}

// probe checks one node. A responsive node is (re)marked healthy and
// re-probed at the base cadence; an unresponsive probe times out first,
// then marks the node unhealthy, re-dispatches its in-flight requests and
// backs off exponentially.
func (d *Dispatcher) probe(node int) {
	if !d.Nodes[node].Failed() {
		d.healthy[node] = true
		d.strikes[node] = 0
		d.scheduleProbe(node, d.health.ProbeEvery)
		return
	}
	d.Eng.After(d.health.Timeout, func() {
		if d.Nodes[node].Failed() {
			d.healthy[node] = false
			d.strikes[node]++
			d.redispatchNode(node)
			gap := d.health.BackoffBase
			for s := 1; s < d.strikes[node] && gap < d.health.BackoffMax; s++ {
				gap *= 2
			}
			if gap > d.health.BackoffMax {
				gap = d.health.BackoffMax
			}
			d.scheduleProbe(node, gap)
			return
		}
		// Recovered between probe and timeout.
		d.healthy[node] = true
		d.strikes[node] = 0
		d.scheduleProbe(node, d.health.ProbeEvery)
	})
}

// redispatchNode moves a failed node's in-flight requests to healthy nodes
// in request-id order (deterministic: never ranges over the map directly).
// A request past its redispatch budget, or with nowhere to go, is dropped
// explicitly so the ledger still accounts for it.
func (d *Dispatcher) redispatchNode(node int) {
	var ids []uint64
	for id, fl := range d.inflight {
		if fl.node == node {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	now := d.Eng.Now()
	for _, id := range ids {
		fl := d.inflight[id]
		fl.attempt++
		target, ok := d.pickHealthy()
		if !ok || fl.attempt > d.health.MaxRedispatch {
			delete(d.inflight, id)
			d.Ledger.Drop(id, now)
			continue
		}
		d.Ledger.NoteRedispatch(id, now)
		fl.node = target
		e, _ := d.Ledger.Entry(id)
		d.dispatchTo(target, fl.app, e.Tag, fl.attempt)
	}
}

// RunOpenLoop drives Poisson arrivals for every app at the given per-app
// rates until the deadline, planning placements from the rates first.
func (d *Dispatcher) RunOpenLoop(rates map[string]float64, until sim.Time, rng *sim.Rand) {
	d.SetRates(rates, rng.Fork(99))
	for _, app := range d.Apps {
		app := app
		rate, ok := rates[app.Name]
		if !ok || rate <= 0 {
			continue
		}
		meanGap := float64(sim.Second) / rate
		r := rng.Fork(uint64(len(app.Name)) + uint64(app.Name[0]))
		var arrive func()
		arrive = func() {
			if d.Eng.Now() >= until {
				return
			}
			d.Dispatch(app)
			gap := sim.Time(r.ExpFloat64(meanGap))
			if gap < 1 {
				gap = 1
			}
			d.Eng.After(gap, arrive)
		}
		d.Eng.After(sim.Time(r.ExpFloat64(meanGap)), arrive)
	}
}

// ResponseTimes returns mean response time (ms) per app across the cluster.
func (d *Dispatcher) ResponseTimes() map[string]float64 {
	return meanResponseMs(d.completed)
}

// meanResponseMs averages response times (ms) per app over completed
// requests, folding in the given iteration order.
func meanResponseMs(completed []CompletedRequest) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, c := range completed {
		if !c.Req.Finished() {
			continue
		}
		sums[c.App] += float64(c.Req.ResponseTime()) / float64(sim.Millisecond)
		counts[c.App]++
	}
	out := map[string]float64{}
	for name, s := range sums {
		if counts[name] > 0 {
			out[name] = s / float64(counts[name])
		}
	}
	return out
}
