package cluster

import (
	"reflect"
	"testing"

	"powercontainers/internal/sim"
)

func testPlan(t *testing.T, seed uint64) *DispatchPlan {
	t.Helper()
	nodes := []*Node{PlanNode(8, 0.1), PlanNode(4, 0.05), PlanNode(2, 0.0)}
	apps := []*App{
		{Name: "alpha", SvcSec: []float64{0.010, 0.015, 0.030}, AffinityRatio: 0.5},
		{Name: "beta", SvcSec: []float64{0.020, 0.025, 0.040}, AffinityRatio: 0.9},
	}
	rates := map[string]float64{"alpha": 120, "beta": 60}
	return PlanOpenLoop(nodes, apps, WorkloadAware, map[string]float64{"alpha": 2.5},
		rates, 5*sim.Second, sim.NewRand(seed))
}

// TestPlanOpenLoopDeterministic pins that planning is a pure function of
// its inputs: same nodes, apps, rates and seed, same plan — the property
// the shard execution modes rely on.
func TestPlanOpenLoopDeterministic(t *testing.T) {
	a, b := testPlan(t, 7), testPlan(t, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical planning inputs produced different plans")
	}
	if c := testPlan(t, 8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans (suspicious)")
	}
}

// TestPlanLedgerReplayInvariants checks the properties the merge phase's
// ledger replay depends on: request ids are assigned sequentially in
// dispatch order, arrivals are chronological, power targets propagate into
// the tags, and the per-app counts reconcile with the dispatch list.
func TestPlanLedgerReplayInvariants(t *testing.T) {
	plan := testPlan(t, 7)
	if len(plan.Dispatches) == 0 {
		t.Fatal("empty plan")
	}
	counts := make([]map[string]int, 3)
	for i := range counts {
		counts[i] = map[string]int{}
	}
	var lastAt sim.Time
	for i, pd := range plan.Dispatches {
		if pd.Tag.RequestID != uint64(i+1) {
			t.Fatalf("dispatch %d has request id %d", i, pd.Tag.RequestID)
		}
		if pd.At < lastAt {
			t.Fatalf("dispatch %d at %d before predecessor at %d", i, pd.At, lastAt)
		}
		lastAt = pd.At
		if pd.App == "alpha" && pd.Tag.PowerTargetW != 2.5 {
			t.Fatalf("dispatch %d lost its power target: %v", i, pd.Tag.PowerTargetW)
		}
		if pd.Dropped {
			t.Fatalf("dispatch %d dropped with healthy nodes", i)
		}
		counts[pd.Node][pd.App]++
	}
	if !reflect.DeepEqual(counts, plan.PerApp) {
		t.Fatalf("per-app counts %v do not reconcile with dispatch list %v", plan.PerApp, counts)
	}
}
