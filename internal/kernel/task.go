// Package kernel is the operating-system simulator that power containers
// run inside: tasks executing op-based programs, per-core run queues with a
// socket-spreading wakeup policy, sockets whose buffered segments carry
// request-context tags, fork/wait/exit, counter-overflow interrupts, and
// synchronous disk/network devices.
//
// The kernel reports every sampling-relevant event to a Monitor (the power
// container facility implements it) and every execution segment to the
// ground-truth power recorder. Facility maintenance operations perturb the
// hardware counters and true energy (the observer effect) but are modeled
// as instantaneous: at the paper's measured 0.95 µs per operation and
// ~1 kHz sampling they would distort wall-clock time by only ~0.1%.
package kernel

import (
	"fmt"

	"powercontainers/internal/cpu"
	"powercontainers/internal/sim"
)

// Context is an opaque request-context binding. The kernel propagates it
// through socket segments, fork and task bindings without interpreting it;
// the power-container facility stores its container pointers here.
type Context any

// TaskState enumerates the lifecycle of a task.
type TaskState int

const (
	// TaskReady means runnable, waiting in a run queue.
	TaskReady TaskState = iota
	// TaskRunning means currently executing on a core.
	TaskRunning
	// TaskBlocked means waiting for a message, child, timer or device.
	TaskBlocked
	// TaskZombie means exited but not yet reaped by its parent.
	TaskZombie
	// TaskDead means fully reaped.
	TaskDead
)

func (s TaskState) String() string {
	switch s {
	case TaskReady:
		return "ready"
	case TaskRunning:
		return "running"
	case TaskBlocked:
		return "blocked"
	case TaskZombie:
		return "zombie"
	case TaskDead:
		return "dead"
	}
	return fmt.Sprintf("TaskState(%d)", int(s))
}

// Program supplies a task's next operation. Next is called whenever the
// previous op completes; returning nil exits the task. Programs may be
// stateful (server workers loop forever serving messages).
type Program interface {
	Next(k *Kernel, t *Task) Op
}

// scriptProgram runs a fixed op list once.
type scriptProgram struct {
	ops []Op
	i   int
}

func (p *scriptProgram) Next(k *Kernel, t *Task) Op {
	if p.i >= len(p.ops) {
		return nil
	}
	op := p.ops[p.i]
	p.i++
	return op
}

// Script returns a Program that executes the given ops in order, then
// exits. Each Script value is single-use.
func Script(ops ...Op) Program { return &scriptProgram{ops: ops} }

// FuncProgram adapts a function to the Program interface.
type FuncProgram func(k *Kernel, t *Task) Op

// Next implements Program.
func (f FuncProgram) Next(k *Kernel, t *Task) Op { return f(k, t) }

// Task is a simulated process or thread.
type Task struct {
	PID  int
	Name string
	// Ctx is the task's current request-context binding (nil means
	// unbound; the facility attributes unbound activity to a special
	// background container, as the paper does for GAE system activity).
	Ctx Context

	state TaskState
	core  int // core currently running on, -1 otherwise
	prog  Program

	// Current compute op progress.
	computing    bool
	remCycles    float64
	effAct       cpu.Activity
	sliceExpiry  sim.Time
	pendingWake  func() // deferred continuation after a blocking op
	wakeFn       func() // cached "wake this task" timer callback (OpSleep)
	parent       *Task
	liveChildren int
	zombies      []*Task
	waitingChild bool

	// blockedRecv marks the endpoint or listener the task is waiting on.
	blockedRecv *sockBuf
	blockedLst  *Listener

	// LastRecv is the payload of the most recently received message
	// (socket or listener); handlers read it after an OpRecv completes.
	LastRecv any

	// UserCtx is the request the application is *actually* serving after
	// user-level stage transfers — ground truth the kernel cannot see
	// unless TrapUserTransfers is on. Experiments compare attribution
	// against it.
	UserCtx Context

	// Priority orders run-queue selection: higher runs first (0 is the
	// default). System daemons (e.g. the GAE background processing) run
	// at elevated priority, as real platform services do.
	Priority int

	created sim.Time
	exited  sim.Time
}

// State returns the task's lifecycle state.
func (t *Task) State() TaskState { return t.state }

// Core returns the core the task currently runs on, or -1.
func (t *Task) Core() int { return t.core }

// Parent returns the forking parent, or nil.
func (t *Task) Parent() *Task { return t.parent }

// Created returns the task creation time.
func (t *Task) Created() sim.Time { return t.created }

func (t *Task) String() string {
	return fmt.Sprintf("task %d (%s, %s)", t.PID, t.Name, t.state)
}

// Op is one operation of a task program.
type Op interface{ isOp() }

// OpCompute executes BaseCycles of machine-independent work with the given
// activity signature. The kernel translates base cycles into this machine's
// effective cycles (memory stalls inflate them) via cpu.Execution.
type OpCompute struct {
	BaseCycles float64
	Act        cpu.Activity
}

// OpSend sends a message of Bytes through the endpoint. The segment is
// tagged with the sender's current context (the paper's TCP-option tag) and
// may carry an opaque payload (the application-level message body, e.g. a
// query's parameters). Send never blocks (buffers are unbounded).
type OpSend struct {
	End     *Endpoint
	Bytes   int
	Payload any
}

// OpRecv receives one message from the endpoint, blocking until one is
// buffered. The receiving task adopts the segment's context tag — a request
// context switch if it differs from the current binding.
type OpRecv struct {
	End *Endpoint
}

// OpRecvListener receives one externally injected message (a new request)
// from a listener.
type OpRecvListener struct {
	L *Listener
}

// OpFork creates a child task running Prog. The child inherits the parent's
// context binding.
type OpFork struct {
	Name string
	Prog Program
}

// OpWaitChild blocks until one child has exited, then reaps it.
type OpWaitChild struct{}

// OpSleep blocks for a fixed duration.
type OpSleep struct {
	D sim.Time
}

// OpDisk performs synchronous disk I/O of Bytes through the shared disk
// device; the task blocks until the transfer completes.
type OpDisk struct {
	Bytes int64
}

// OpNet performs synchronous network I/O of Bytes through the shared NIC.
type OpNet struct {
	Bytes int64
}

// OpCall invokes a harness callback synchronously. Experiment harnesses use
// it to record request completions and to chain cross-machine hops.
type OpCall struct {
	Fn func(k *Kernel, t *Task)
}

// OpUserStage models a user-level request stage transfer: an event-driven
// server (or user-level thread runtime) switching which request it serves
// purely in user space, with no kernel-visible system call. By default the
// kernel cannot observe it — the paper's stated limitation (§3.3) — so the
// task's binding is left unchanged and power keeps charging the old
// request. With Kernel.TrapUserTransfers enabled (the paper's future-work
// idea of trapping accesses to critical synchronization data structures),
// the kernel observes the transfer and rebinds exactly like a socket read.
type OpUserStage struct {
	Ctx Context
}

func (OpCompute) isOp()      {}
func (OpSend) isOp()         {}
func (OpRecv) isOp()         {}
func (OpRecvListener) isOp() {}
func (OpFork) isOp()         {}
func (OpWaitChild) isOp()    {}
func (OpSleep) isOp()        {}
func (OpDisk) isOp()         {}
func (OpNet) isOp()          {}
func (OpCall) isOp()         {}
func (OpUserStage) isOp()    {}
