package kernel

import (
	"fmt"
	"math"
	"testing"

	"powercontainers/internal/cpu"
	"powercontainers/internal/power"
	"powercontainers/internal/sim"
)

// uniSpec is a single-core machine for deterministic scheduling tests.
var uniSpec = cpu.MachineSpec{
	Name:         "Uni",
	Chips:        1,
	CoresPerChip: 1,
	FreqHz:       1e9,
	DutyLevels:   8,
}

var testProfile = power.TrueProfile{
	MachineIdleW: 50,
	PkgIdleW:     2,
	ChipMaintW:   5,
	CoreW:        10,
	InsW:         2,
	FloatW:       1,
	CacheW:       100,
	MemW:         200,
	SynW:         0,
	DiskW:        1.7,
	NetW:         5.8,
}

func newTestKernel(t *testing.T, spec cpu.MachineSpec, mon Monitor) *Kernel {
	t.Helper()
	eng := sim.NewEngine()
	k, err := New("test", spec, testProfile, eng, mon)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// recordingMonitor captures the callback stream.
type recordingMonitor struct {
	NopMonitor
	interrupts int
	switches   []string
	binds      []string
	forks      int
	exits      int
	ios        []string
	starts     int
}

func (m *recordingMonitor) OnInterrupt(c *cpu.Core, t *Task) { m.interrupts++ }
func (m *recordingMonitor) OnSwitch(c *cpu.Core, prev, next *Task) {
	name := func(t *Task) string {
		if t == nil {
			return "-"
		}
		return t.Name
	}
	m.switches = append(m.switches, fmt.Sprintf("%d:%s->%s", c.ID, name(prev), name(next)))
}
func (m *recordingMonitor) OnBind(t *Task, ctx Context) {
	m.binds = append(m.binds, fmt.Sprintf("%s=%v", t.Name, ctx))
}
func (m *recordingMonitor) OnFork(p, c *Task) { m.forks++ }
func (m *recordingMonitor) OnExit(t *Task)    { m.exits++ }
func (m *recordingMonitor) OnIO(t *Task, d DeviceKind, bytes int64, busy sim.Time, w float64) {
	m.ios = append(m.ios, fmt.Sprintf("%s:%s:%d", t.Name, d, bytes))
}
func (m *recordingMonitor) OnTaskStart(t *Task) { m.starts++ }

func TestSingleComputeTask(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	act := cpu.Activity{IPC: 2}
	tk := k.Spawn("worker", Script(OpCompute{BaseCycles: 5e6, Act: act}), nil)
	k.Eng.Run()

	if tk.State() != TaskDead {
		t.Fatalf("task state = %v, want dead", tk.State())
	}
	// 5e6 cycles at 1 GHz = 5 ms.
	if got := k.Eng.Now(); got < 5*sim.Millisecond || got > 5*sim.Millisecond+sim.Microsecond {
		t.Fatalf("finished at %s, want ≈5ms", sim.FormatTime(got))
	}
	cnt := k.Cores[0].Counters()
	if math.Abs(cnt.Cycles-5e6) > 10 {
		t.Fatalf("cycles = %g, want 5e6", cnt.Cycles)
	}
	if math.Abs(cnt.Instructions-1e7) > 20 {
		t.Fatalf("instructions = %g, want 1e7", cnt.Instructions)
	}
	// Ground truth: (CoreW + InsW·2) for 5 ms, plus maintenance 5 W.
	wantW := testProfile.CoreW + 2*testProfile.InsW + testProfile.ChipMaintW
	gotW := k.Rec.PkgActivePowerW(0, 5*sim.Millisecond)
	if math.Abs(gotW-wantW) > 0.05 {
		t.Fatalf("recorded power = %g, want %g", gotW, wantW)
	}
}

func TestWakeupSpreadsAcrossChips(t *testing.T) {
	// Two tasks on a 2-chip machine must land on different chips
	// (Figure 1's Woodcrest behaviour).
	k := newTestKernel(t, cpu.Woodcrest, nil)
	a := k.Spawn("a", Script(OpCompute{BaseCycles: 1e9, Act: cpu.Activity{}}), nil)
	b := k.Spawn("b", Script(OpCompute{BaseCycles: 1e9, Act: cpu.Activity{}}), nil)
	k.Eng.RunUntil(sim.Millisecond)
	ca, cb := a.Core(), b.Core()
	if ca < 0 || cb < 0 {
		t.Fatalf("tasks not running: cores %d %d", ca, cb)
	}
	if cpu.Woodcrest.ChipOf(ca) == cpu.Woodcrest.ChipOf(cb) {
		t.Fatalf("both tasks on chip %d; scheduler should spread sockets", cpu.Woodcrest.ChipOf(ca))
	}
}

func TestQuantumRotationSharesCore(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	var doneA, doneB sim.Time
	a := Script(
		OpCompute{BaseCycles: 10e6, Act: cpu.Activity{}},
		OpCall{Fn: func(k *Kernel, _ *Task) { doneA = k.Now() }},
	)
	b := Script(
		OpCompute{BaseCycles: 10e6, Act: cpu.Activity{}},
		OpCall{Fn: func(k *Kernel, _ *Task) { doneB = k.Now() }},
	)
	k.Spawn("a", a, nil)
	k.Spawn("b", b, nil)
	k.Eng.Run()
	// Each needs 10 ms of CPU; with rotation both finish near 20 ms
	// rather than one at 10 ms and the other at 20 ms.
	if doneA < 18*sim.Millisecond || doneB < 18*sim.Millisecond {
		t.Fatalf("rotation unfair: a=%s b=%s", sim.FormatTime(doneA), sim.FormatTime(doneB))
	}
	if k.Eng.Now() > 21*sim.Millisecond {
		t.Fatalf("total runtime %s, want ≈20ms", sim.FormatTime(k.Eng.Now()))
	}
}

func TestSocketContextPropagation(t *testing.T) {
	mon := &recordingMonitor{}
	k := newTestKernel(t, uniSpec, mon)
	a, b := NewConn()
	var served []Context
	server := FuncProgram(func(k *Kernel, t *Task) Op {
		if len(served) >= 2 {
			return nil
		}
		return OpRecv{End: b}
	})
	// Wrap to record binding after each recv: use OpCall interleave.
	_ = server
	var step int
	serverProg := FuncProgram(func(k *Kernel, t *Task) Op {
		step++
		switch step {
		case 1, 3:
			return OpRecv{End: b}
		case 2, 4:
			served = append(served, t.Ctx)
			return OpCompute{BaseCycles: 1000, Act: cpu.Activity{}}
		}
		return nil
	})
	k.Spawn("server", serverProg, nil)
	client := Script(
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req1" }},
		OpSend{End: a, Bytes: 100},
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req2" }},
		OpSend{End: a, Bytes: 100},
	)
	k.Spawn("client", client, nil)
	k.Eng.Run()

	if len(served) != 2 || served[0] != "req1" || served[1] != "req2" {
		t.Fatalf("server bindings = %v, want [req1 req2]", served)
	}
	if len(mon.binds) == 0 {
		t.Fatal("no OnBind events recorded")
	}
}

func TestPerSegmentTaggingOnPersistentConnection(t *testing.T) {
	// The paper's unsafe scenario: two messages with different contexts
	// buffered before the receiver reads. Per-segment tagging must give
	// the receiver req1 then req2; the naive scheme gives req2 twice.
	run := func(perSegment bool) []Context {
		k := newTestKernel(t, uniSpec, nil)
		k.PerSegmentTagging = perSegment
		a, b := NewConn()
		// Sender enqueues both messages before the receiver starts.
		k.Spawn("sender", Script(
			OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req1" }},
			OpSend{End: a, Bytes: 10},
			OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "req2" }},
			OpSend{End: a, Bytes: 10},
		), nil)
		var got []Context
		var step int
		k.Spawn("receiver", FuncProgram(func(k *Kernel, t *Task) Op {
			step++
			switch step {
			case 1:
				// Let the sender run first.
				return OpSleep{D: sim.Millisecond}
			case 2, 4:
				return OpRecv{End: b}
			case 3, 5:
				got = append(got, t.Ctx)
				return OpCompute{BaseCycles: 100, Act: cpu.Activity{}}
			}
			return nil
		}), nil)
		k.Eng.Run()
		return got
	}

	safe := run(true)
	if len(safe) != 2 || safe[0] != "req1" || safe[1] != "req2" {
		t.Fatalf("per-segment tagging gave %v, want [req1 req2]", safe)
	}
	naive := run(false)
	if len(naive) != 2 || naive[0] != "req2" {
		t.Fatalf("naive tagging gave %v, expected misattribution [req2 req2]", naive)
	}
}

func TestForkInheritsContextAndWait(t *testing.T) {
	mon := &recordingMonitor{}
	k := newTestKernel(t, uniSpec, mon)
	var childCtx Context
	var waitDone sim.Time
	parent := Script(
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "reqX" }},
		OpFork{Name: "latex", Prog: Script(
			OpCall{Fn: func(k *Kernel, t *Task) { childCtx = t.Ctx }},
			OpCompute{BaseCycles: 2e6, Act: cpu.Activity{}},
		)},
		OpWaitChild{},
		OpCall{Fn: func(k *Kernel, t *Task) { waitDone = k.Now() }},
	)
	k.Spawn("shell", parent, nil)
	k.Eng.Run()

	if childCtx != "reqX" {
		t.Fatalf("child ctx = %v, want reqX", childCtx)
	}
	if waitDone < 2*sim.Millisecond {
		t.Fatalf("wait returned at %s, before child finished", sim.FormatTime(waitDone))
	}
	if mon.forks != 1 || mon.exits != 2 || mon.starts != 2 {
		t.Fatalf("forks=%d exits=%d starts=%d", mon.forks, mon.exits, mon.starts)
	}
}

func TestWaitChildWithNoChildrenDoesNotBlock(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	done := false
	k.Spawn("p", Script(OpWaitChild{}, OpCall{Fn: func(*Kernel, *Task) { done = true }}), nil)
	k.Eng.Run()
	if !done {
		t.Fatal("WaitChild with no children blocked forever")
	}
}

func TestWaitChildReapsAlreadyExited(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	order := []string{}
	parent := Script(
		OpFork{Name: "c", Prog: Script(OpCall{Fn: func(*Kernel, *Task) { order = append(order, "child") }})},
		OpCompute{BaseCycles: 5e6, Act: cpu.Activity{}}, // child exits while parent computes
		OpWaitChild{},
		OpCall{Fn: func(*Kernel, *Task) { order = append(order, "reaped") }},
	)
	k.Spawn("p", parent, nil)
	k.Eng.Run()
	if len(order) != 2 || order[0] != "child" || order[1] != "reaped" {
		t.Fatalf("order = %v", order)
	}
}

func TestListenerInjectAndRecv(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	l := NewListener("http")
	var got []Context
	var step int
	k.Spawn("worker", FuncProgram(func(k *Kernel, t *Task) Op {
		step++
		switch {
		case step%2 == 1 && step < 6:
			return OpRecvListener{L: l}
		case step%2 == 0:
			got = append(got, t.Ctx)
			return OpCompute{BaseCycles: 1000, Act: cpu.Activity{}}
		}
		return nil
	}), nil)
	// One message before the worker blocks, two after.
	k.Inject(l, 10, "r0", nil)
	k.Eng.After(sim.Millisecond, func() { k.Inject(l, 10, "r1", nil) })
	k.Eng.After(2*sim.Millisecond, func() { k.Inject(l, 10, "r2", nil) })
	k.Eng.Run()
	if len(got) != 3 || got[0] != "r0" || got[1] != "r1" || got[2] != "r2" {
		t.Fatalf("got %v", got)
	}
}

func TestSleepDuration(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	var woke sim.Time
	k.Spawn("s", Script(
		OpSleep{D: 7 * sim.Millisecond},
		OpCall{Fn: func(k *Kernel, _ *Task) { woke = k.Now() }},
	), nil)
	k.Eng.Run()
	if woke != 7*sim.Millisecond {
		t.Fatalf("woke at %s, want 7ms", sim.FormatTime(woke))
	}
}

func TestDeviceOpsSerializeAndAttribute(t *testing.T) {
	mon := &recordingMonitor{}
	k := newTestKernel(t, cpu.SandyBridge, mon)
	// Two tasks each read 12 MB from disk concurrently; the device FIFO
	// serializes so total time ≈ 2 × (4ms + 0.1s).
	mb12 := int64(12e6)
	k.Spawn("d1", Script(OpDisk{Bytes: mb12}), nil)
	k.Spawn("d2", Script(OpDisk{Bytes: mb12}), nil)
	k.Eng.Run()
	perOp := 4*sim.Millisecond + sim.Time(12e6/120e6*1e9)
	want := 2 * perOp
	if got := k.Eng.Now(); got < want-sim.Millisecond || got > want+sim.Millisecond {
		t.Fatalf("disk ops finished at %s, want ≈%s", sim.FormatTime(got), sim.FormatTime(want))
	}
	if len(mon.ios) != 2 {
		t.Fatalf("OnIO events = %v", mon.ios)
	}
	// Device energy recorded at DiskW for the busy span.
	gotW := k.Rec.MachineActivePowerW(0, want)
	if math.Abs(gotW-testProfile.DiskW) > 0.2 {
		t.Fatalf("disk power = %g, want ≈%g", gotW, testProfile.DiskW)
	}
}

func TestOverflowInterruptsFire(t *testing.T) {
	mon := &recordingMonitor{}
	k := newTestKernel(t, uniSpec, mon)
	// 1 ms worth of cycles at 1 GHz.
	k.Cores[0].SetOverflowThreshold(1e6)
	k.Spawn("w", Script(OpCompute{BaseCycles: 10.5e6, Act: cpu.Activity{}}), nil)
	k.Eng.Run()
	if mon.interrupts != 10 {
		t.Fatalf("interrupts = %d, want 10", mon.interrupts)
	}
}

func TestMonitorSwitchSequence(t *testing.T) {
	mon := &recordingMonitor{}
	k := newTestKernel(t, uniSpec, mon)
	k.Spawn("w", Script(OpCompute{BaseCycles: 1e6, Act: cpu.Activity{}}), nil)
	k.Eng.Run()
	if len(mon.switches) != 2 || mon.switches[0] != "0:-->w" || mon.switches[1] != "0:w->-" {
		t.Fatalf("switches = %v", mon.switches)
	}
}

func TestChargeMaintenance(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	ev := cpu.Counters{Cycles: 2948, Instructions: 1656, Float: 16, Cache: 3}
	before := k.Cores[0].Counters()
	k.ChargeMaintenance(0, ev)
	delta := k.Cores[0].Counters().Sub(before)
	if delta.Cycles != 2948 || delta.Instructions != 1656 {
		t.Fatalf("maintenance events not injected: %+v", delta)
	}
	// Energy landed in bucket 0.
	k.Rec.FlushUntil(sim.Millisecond)
	if k.Rec.PkgActiveSeries().Bucket(0) <= 0 {
		t.Fatal("maintenance energy not charged")
	}
}

func TestBusyCoresAndIdleCheck(t *testing.T) {
	k := newTestKernel(t, cpu.SandyBridge, nil)
	if !k.CoreIdle(0) || k.BusyCores() != 0 {
		t.Fatal("fresh kernel should be idle")
	}
	tk := k.Spawn("w", Script(OpCompute{BaseCycles: 5e6, Act: cpu.Activity{}}), nil)
	k.Eng.RunUntil(100 * sim.Microsecond)
	if k.BusyCores() != 1 || k.CoreIdle(tk.Core()) {
		t.Fatal("running task not visible")
	}
	k.Eng.Run()
	if k.BusyCores() != 0 {
		t.Fatal("kernel should return to idle")
	}
}

func TestStealBalancesLoad(t *testing.T) {
	// 8 compute tasks on 4 cores: total time should be ≈ 2 rounds, not 8.
	k := newTestKernel(t, cpu.SandyBridge, nil)
	cycles := 3.1e6 * 5 // 5 ms each
	for i := 0; i < 8; i++ {
		k.Spawn(fmt.Sprintf("w%d", i), Script(OpCompute{BaseCycles: cycles, Act: cpu.Activity{}}), nil)
	}
	k.Eng.Run()
	if got := k.Eng.Now(); got > 11*sim.Millisecond {
		t.Fatalf("8 tasks on 4 cores took %s, want ≈10ms", sim.FormatTime(got))
	}
}

func TestTaskAccounting(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	k.Spawn("a", Script(), nil)
	k.Spawn("b", Script(), nil)
	k.Eng.Run()
	if len(k.Tasks()) != 2 {
		t.Fatalf("tasks = %d", len(k.Tasks()))
	}
	if k.Tasks()[0].PID >= k.Tasks()[1].PID {
		t.Fatal("PIDs not ordered")
	}
}

func TestKernelNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New("x", cpu.MachineSpec{}, testProfile, eng, nil); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := New("x", cpu.SandyBridge, testProfile, nil, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestPrioritySchedulingJumpsQueue(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	var order []string
	mk := func(name string, prio int) {
		tk := k.Spawn(name, Script(
			OpCompute{BaseCycles: 3e6, Act: cpu.Activity{}},
			OpCall{Fn: func(*Kernel, *Task) { order = append(order, name) }},
		), nil)
		tk.Priority = prio
	}
	// Fill the single core, then queue one normal and one high-priority
	// task: the high-priority task must finish first despite arriving
	// later in the queue.
	mk("running", 0)
	mk("normal", 0)
	mk("urgent", 1)
	k.Eng.Run()
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	// With quantum rotation the high-priority task overtakes both others.
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["urgent"] > pos["normal"] {
		t.Fatalf("high-priority task did not jump the queue: %v", order)
	}
}

func TestPipeContextPropagation(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	r, w := NewPipe()
	var got []Context
	step := 0
	k.Spawn("reader", FuncProgram(func(k *Kernel, t *Task) Op {
		step++
		switch step {
		case 1, 3:
			return OpRecv{End: r}
		case 2, 4:
			got = append(got, t.Ctx)
			return OpCompute{BaseCycles: 100, Act: cpu.Activity{}}
		}
		return nil
	}), nil)
	k.Spawn("writer", Script(
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "p1" }},
		OpSend{End: w, Bytes: 32},
		OpCall{Fn: func(k *Kernel, t *Task) { t.Ctx = "p2" }},
		OpSend{End: w, Bytes: 32},
	), nil)
	k.Eng.Run()
	if len(got) != 2 || got[0] != "p1" || got[1] != "p2" {
		t.Fatalf("pipe contexts = %v", got)
	}
}

func TestEndpointPeerAndBuffered(t *testing.T) {
	a, b := NewConn()
	if a.Peer().side != b.side || b.Peer().side != a.side {
		t.Fatal("Peer sides wrong")
	}
	k := newTestKernel(t, uniSpec, nil)
	k.Spawn("s", Script(OpSend{End: a, Bytes: 8}, OpSend{End: a, Bytes: 8}), nil)
	k.Eng.Run()
	if b.Buffered() != 2 {
		t.Fatalf("buffered = %d, want 2", b.Buffered())
	}
	if a.Buffered() != 0 {
		t.Fatalf("reverse direction buffered = %d", a.Buffered())
	}
}

func TestListenerIntrospection(t *testing.T) {
	k := newTestKernel(t, uniSpec, nil)
	l := NewListener("x")
	k.Inject(l, 1, nil, nil)
	if l.Pending() != 1 || l.QueuedWaiters() != 0 {
		t.Fatalf("pending=%d waiters=%d", l.Pending(), l.QueuedWaiters())
	}
}

func TestUserStageTransferTrap(t *testing.T) {
	for _, trap := range []bool{false, true} {
		k := newTestKernel(t, uniSpec, nil)
		k.TrapUserTransfers = trap
		var boundCtx Context
		k.Spawn("loop", Script(
			OpUserStage{Ctx: "reqZ"},
			OpCompute{BaseCycles: 1e6, Act: cpu.Activity{}},
			OpCall{Fn: func(k *Kernel, t *Task) { boundCtx = t.Ctx }},
		), nil)
		k.Eng.Run()
		if trap && boundCtx != "reqZ" {
			t.Fatalf("trap on: binding %v, want reqZ", boundCtx)
		}
		if !trap && boundCtx != nil {
			t.Fatalf("trap off: kernel observed user transfer: %v", boundCtx)
		}
	}
}

func TestDeviceKindStrings(t *testing.T) {
	if DeviceDisk.String() != "disk" || DeviceNet.String() != "net" {
		t.Fatal("device kind names wrong")
	}
}

func TestTaskStateStrings(t *testing.T) {
	for st, want := range map[TaskState]string{
		TaskReady: "ready", TaskRunning: "running", TaskBlocked: "blocked",
		TaskZombie: "zombie", TaskDead: "dead",
	} {
		if st.String() != want {
			t.Fatalf("%d = %q", st, st.String())
		}
	}
}
